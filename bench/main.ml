(* Benchmark and reproduction harness: regenerates every table and figure
   of the paper's evaluation over the synthetic corpus, then runs Bechamel
   micro-benchmarks of the analysis kernels (one per table).

   Usage:
     main.exe                 run everything on the full 1,432-binary corpus
     main.exe --scale 0.1     shrink the corpus (fraction of programs)
     main.exe --domains 4     domain count for the parallel perf run
     main.exe perf --check BENCH_pipeline.json
                              regression gate: rerun the perf section at the
                              baseline's scale and fail on detection drift or
                              speed-adjusted stage-time regressions
     main.exe table1|table2|fig5|errors|table3|table4|ablation|pe|perf|micro *)

let scale = ref 1.0
let scale_set = ref false
let domains = ref 0 (* 0 = Fetch_par.Pool.default_domains () *)
let sections = ref []
let check_file = ref None
let tolerance = ref 0.5

(* Every name [want] is queried with below, including the aliases —
   a misspelled section must be an error, not a silent no-op run. *)
let known_sections =
  [
    "table1"; "table2"; "q1"; "fig5"; "q2"; "q3"; "errors"; "xref"; "alg1";
    "rop"; "table3"; "table5"; "table4"; "ablation"; "adversarial"; "pe";
    "perf"; "serve"; "micro";
  ]

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "error: %s\n" msg;
      Printf.eprintf
        "usage: main.exe [--scale FRACTION] [--domains N] [--check BASELINE \
         [--tolerance T]] [SECTION]...\n";
      Printf.eprintf "sections: %s\n" (String.concat " " known_sections);
      exit 2)
    fmt

let () =
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s > 0.0 && s <= 1.0 ->
            scale := s;
            scale_set := true;
            parse rest
        | Some _ -> usage_error "--scale %s is out of range (0, 1]" v
        | None -> usage_error "--scale expects a number, got %S" v)
    | [ "--scale" ] -> usage_error "--scale expects a value"
    | "--check" :: v :: rest ->
        check_file := Some v;
        sections := "perf" :: !sections;
        parse rest
    | [ "--check" ] -> usage_error "--check expects a baseline file"
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0.0 ->
            tolerance := t;
            parse rest
        | _ -> usage_error "--tolerance expects a non-negative number, got %S" v)
    | [ "--tolerance" ] -> usage_error "--tolerance expects a value"
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            domains := n;
            parse rest
        | _ -> usage_error "--domains expects a positive integer, got %S" v)
    | [ "--domains" ] -> usage_error "--domains expects a value"
    | s :: rest when List.mem s known_sections ->
        sections := s :: !sections;
        parse rest
    | s :: _ -> usage_error "unknown section %S" s
  in
  parse (List.tl (Array.to_list Sys.argv))

let want s = !sections = [] || List.mem s !sections

let banner title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let time name f =
  (* monotonic wall clock: Sys.time is CPU time, which is not what the
     paper's Table V reports *)
  let r, dt = Fetch_obs.Clock.time_s f in
  Printf.printf "[%s finished in %.1fs]\n%!" name dt;
  r

(* ------------------------------------------------------------------ *)
(* Per-stage pipeline perf snapshot: run the instrumented FETCH        *)
(* pipeline over the corpus — once sequentially, once on a domain pool *)
(* — verify the parallel run reproduces the sequential results, and    *)
(* write per-stage totals plus both wall clocks to BENCH_pipeline.json *)
(* so later PRs can compare trajectories.                              *)
(* ------------------------------------------------------------------ *)

let snapshot_file = "BENCH_pipeline.json"

module Gate = Fetch_obs.Bench_gate

let read_baseline path =
  match open_in_bin path with
  | exception Sys_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Gate.of_json_string text with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "error: %s: %s\n" path e;
          exit 2)

let perf () =
  let baseline = Option.map read_baseline !check_file in
  (* gate runs must compare like with like: rerun at the baseline's
     scale unless the user explicitly forced one *)
  (match baseline with
  | Some b when not !scale_set ->
      scale := b.Gate.scale;
      Printf.printf "checking against %s (scale %g, %d binaries)\n"
        (Option.get !check_file) b.Gate.scale b.Gate.binaries
  | _ -> ());
  let analyze (bin : Fetch_eval.Corpus.binary) =
    let r, report =
      Fetch_obs.Trace.with_run (fun () ->
          let stripped = Fetch_elf.Image.strip bin.built.image in
          let loaded = Fetch_analysis.Loaded.load stripped in
          let r = Fetch_core.Pipeline.run_loaded loaded in
          (* fact base over the finished run, so the facts.extract /
             facts.eval stage spans and facts.* counters land in the
             snapshot and are gated like any other stage *)
          (match Fetch_core.Fact_base.of_result r with
          | Ok _ -> ()
          | Error e ->
              Printf.eprintf "fact base failed on %s: %s\n" bin.id e;
              exit 1);
          r)
    in
    (bin.id, r.Fetch_core.Pipeline.starts, report)
  in
  let jobs = Fetch_eval.Corpus.jobs_selfbuilt ~scale:!scale () in
  let binaries = List.length jobs in
  let n_domains =
    if !domains > 0 then !domains else Fetch_par.Pool.default_domains ()
  in
  Printf.printf "sequential baseline (%d binaries)...\n%!" binaries;
  let seq, seq_wall =
    Fetch_obs.Clock.time_s (fun () ->
        List.map (fun (j : Fetch_eval.Corpus.job) -> analyze (j.build ())) jobs)
  in
  Printf.printf "parallel run (%d domains)...\n%!" n_domains;
  let par_outcomes, par_wall =
    Fetch_obs.Clock.time_s (fun () ->
        Fetch_par.Pool.with_pool ~domains:n_domains (fun pool ->
            Fetch_eval.Corpus.map_selfbuilt_par pool ~scale:!scale analyze))
  in
  let par =
    List.map
      (function
        | Ok v -> v
        | Error f ->
            Printf.eprintf "parallel corpus run failed:\n%s\n"
              (Fetch_par.Pool.failure_to_string f);
            exit 1)
      par_outcomes
  in
  (* the parallel run must be a drop-in replacement: same binaries, same
     per-binary starts, same merged counter totals *)
  let key (id, starts, _) = (id, starts) in
  if List.map key seq <> List.map key par then begin
    Printf.eprintf "parallel per-binary results differ from sequential run\n";
    exit 1
  end;
  let merged l = Fetch_obs.Trace.merge (List.map (fun (_, _, r) -> r) l) in
  let seq_merged = merged seq and par_merged = merged par in
  if seq_merged.Fetch_obs.Trace.counters <> par_merged.Fetch_obs.Trace.counters
  then begin
    Printf.eprintf "merged parallel counters differ from sequential run\n";
    exit 1
  end;
  Printf.printf
    "sequential %.3fs, parallel %.3fs on %d domains (speedup %.2fx); \
     per-binary results and merged counters identical\n"
    seq_wall par_wall n_domains
    (seq_wall /. par_wall);
  let aggs = Fetch_obs.Report.aggregate_spans seq_merged in
  let pipeline_total_ns =
    List.fold_left
      (fun acc (a : Fetch_obs.Report.agg) ->
        if a.agg_name = "pipeline" then Int64.add acc a.agg_total_ns else acc)
      0L aggs
  in
  let snapshot =
    {
      Gate.schema = Gate.schema_current;
      scale = !scale;
      binaries;
      domains = n_domains;
      host = Some (Gate.this_host ());
      seq_wall_s = seq_wall;
      par_wall_s = par_wall;
      pipeline_total_ms = Int64.to_float pipeline_total_ns /. 1e6;
      stages =
        List.map
          (fun (a : Fetch_obs.Report.agg) ->
            {
              Gate.s_name = a.agg_name;
              s_calls = a.agg_calls;
              s_total_ms = Int64.to_float a.agg_total_ns /. 1e6;
              s_mean_ms =
                Int64.to_float a.agg_total_ns /. 1e6 /. float_of_int binaries;
            })
          aggs;
      counters = seq_merged.Fetch_obs.Trace.counters;
      histograms =
        List.filter
          (fun (_, h) -> h.Fetch_obs.Trace.count > 0)
          seq_merged.Fetch_obs.Trace.histograms;
    }
  in
  match baseline with
  | None ->
      let oc = open_out snapshot_file in
      output_string oc (Gate.to_json snapshot);
      close_out oc;
      Printf.printf "wrote %s (%d binaries)\n" snapshot_file binaries;
      print_string (Fetch_obs.Report.text seq_merged)
  | Some b -> (
      match Gate.check ~tolerance:!tolerance ~baseline:b ~current:snapshot () with
      | [] ->
          Printf.printf
            "gate passed: %d counters identical, stage means within %g%% \
             (speed-adjusted)\n"
            (List.length b.Gate.counters)
            (!tolerance *. 100.0)
      | issues ->
          Printf.eprintf "bench gate FAILED (%d issue%s):\n"
            (List.length issues)
            (if List.length issues = 1 then "" else "s");
          List.iter
            (fun i -> Printf.eprintf "  %s\n" (Gate.issue_to_string i))
            issues;
          exit 1)

(* ------------------------------------------------------------------ *)
(* Serve daemon: cold vs warm throughput through the ordered engine.   *)
(* The warm pass resubmits the identical corpus; every response must   *)
(* come from the content-addressed cache, byte-identical to its cold   *)
(* counterpart — the speedup ratio is the cache's whole value prop.    *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  let module Engine = Fetch_serve.Engine in
  let n = max 4 (int_of_float (32.0 *. !scale)) in
  let profile =
    Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2
  in
  let lines =
    List.init n (fun i ->
        let raw =
          (Fetch_synth.Link.build_random ~profile ~seed:(3000 + i)
             { Fetch_synth.Gen.default_spec with n_funcs = 20 })
            .raw
        in
        Printf.sprintf {|{"id":%d,"bytes_b64":%s}|} i
          (Fetch_util.Json.escape (Fetch_util.B64.encode raw)))
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          domains =
            (if !domains = 0 then Fetch_par.Pool.default_domains ()
             else !domains);
          cache_bytes = 256 * 1024 * 1024;
          queue_bound = 2 * n;
        }
      ()
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let pass label =
        let t0 = Fetch_obs.Clock.now_s () in
        List.iter (Engine.submit_line engine) lines;
        let responses = Engine.flush engine in
        let dt = Fetch_obs.Clock.now_s () -. t0 in
        Printf.printf "  %-5s %4d requests in %7.3fs  (%8.1f req/s)\n" label n
          dt
          (float_of_int n /. dt);
        (responses, dt)
      in
      let cold, cold_dt = pass "cold" in
      let warm, warm_dt = pass "warm" in
      if cold <> warm then begin
        Printf.eprintf
          "serve bench FAILED: warm responses differ from cold responses\n";
        exit 1
      end;
      let stats = Engine.stats_json engine in
      let hits =
        match Fetch_util.Json.parse stats with
        | Ok j ->
            Option.bind (Fetch_util.Json.member "cache" j)
              (Fetch_util.Json.member "hits")
            |> Fun.flip Option.bind Fetch_util.Json.to_int
            |> Option.value ~default:0
        | Error _ -> 0
      in
      if hits < n then begin
        Printf.eprintf
          "serve bench FAILED: warm pass hit the cache %d/%d times\n" hits n;
        exit 1
      end;
      Printf.printf
        "  warm pass served entirely from cache (%d hits), speedup %.0fx\n"
        hits
        (cold_dt /. Float.max warm_dt 1e-9))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper table.           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let built =
    Fetch_synth.Link.build_random ~profile ~seed:4242
      { Fetch_synth.Gen.default_spec with n_funcs = 80 }
  in
  let stripped = Fetch_elf.Image.strip built.image in
  let loaded = Fetch_analysis.Loaded.load stripped in
  let xref_seeds =
    List.filteri (fun i _ -> i mod 2 = 0) loaded.Fetch_analysis.Loaded.fde_starts
  in
  let tests =
    [
      (* Table I/II kernel: eh_frame parsing *)
      Test.make ~name:"table1_2/eh_frame_decode"
        (Staged.stage (fun () ->
             ignore (Fetch_dwarf.Eh_frame.of_image built.image)));
      (* Q1/Fig5 kernel: safe recursive disassembly *)
      Test.make ~name:"fig5/safe_recursive_disassembly"
        (Staged.stage (fun () ->
             ignore
               (Fetch_analysis.Recursive.run loaded
                  ~seeds:loaded.Fetch_analysis.Loaded.fde_starts)));
      (* SIV-E / Table III kernel: full FETCH pipeline *)
      Test.make ~name:"table3/fetch_pipeline"
        (Staged.stage (fun () ->
             ignore (Fetch_core.Pipeline.run_loaded loaded)));
      (* Table IV kernel: static stack-height analysis *)
      Test.make ~name:"table4/stack_height_analysis"
        (Staged.stage (fun () ->
             List.iter
               (fun s ->
                 ignore
                   (Fetch_analysis.Stack_height.analyze loaded
                      ~style:Fetch_analysis.Stack_height.dyninst_style s))
               loaded.Fetch_analysis.Loaded.fde_starts));
      (* SV-A kernel: ROP gadget scan *)
      Test.make ~name:"errors/rop_scan"
        (Staged.stage (fun () ->
             List.iter
               (fun (lo, hi) ->
                 ignore
                   (Fetch_rop.Gadget.in_range loaded ~depth:3 ~lo
                      ~hi:(min hi (lo + 512))))
               (Fetch_analysis.Loaded.text_ranges loaded)));
      (* §IV-E kernel, both substrates: the incremental driver
         (extend + persistent refs) against the from-scratch rescan it
         replaced, with half the FDE seeds withheld so pointer rounds
         actually iterate *)
      Test.make ~name:"xref/incremental"
        (Staged.stage (fun () ->
             ignore
               (Fetch_core.Xref.detect ~strategy:Fetch_core.Xref.Incremental
                  loaded ~seeds:xref_seeds)));
      Test.make ~name:"xref/rescan"
        (Staged.stage (fun () ->
             ignore
               (Fetch_core.Xref.detect ~strategy:Fetch_core.Xref.Rescan loaded
                  ~seeds:xref_seeds)));
      (* Table V kernel: synthetic compiler end-to-end *)
      Test.make ~name:"table5/synth_build"
        (Staged.stage (fun () ->
             ignore
               (Fetch_synth.Link.build_random ~profile ~seed:99
                  { Fetch_synth.Gen.default_spec with n_funcs = 40 })));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  banner "Bechamel micro-benchmarks (one kernel per paper table)";
  List.iter
    (fun t ->
      let results = benchmark t in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "FETCH reproduction harness (scale %.2f: %d self-built binaries)\n"
    !scale
    (Fetch_eval.Corpus.count_selfbuilt ~scale:!scale ());
  if want "table1" then begin
    banner "Table I — wild binaries";
    print_string (time "table1" (fun () -> Fetch_eval.Exp_dataset.table1 ()))
  end;
  if want "table2" || want "q1" then begin
    banner "Table II + Q1 — self-built corpus, FDE coverage";
    print_string
      (time "table2+q1" (fun () -> Fetch_eval.Exp_dataset.table2_q1 ~scale:!scale ()))
  end;
  if want "fig5" || want "q2" || want "q3" then begin
    banner "Figure 5 + Q2 + Q3 — strategy stacks";
    let results = time "fig5" (fun () -> Fetch_eval.Exp_strategies.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_strategies.render results)
  end;
  if want "errors" || want "xref" || want "alg1" || want "rop" then begin
    banner "SIV-E + SV-A + SV-C — pointer detection, FDE errors, Algorithm 1";
    let t = time "errors" (fun () -> Fetch_eval.Exp_errors.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_errors.render t)
  end;
  if want "table3" || want "table5" then begin
    banner "Table III + Table V — tool comparison and timing";
    let cells = time "table3+5" (fun () -> Fetch_eval.Exp_tools.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_tools.render cells)
  end;
  if want "table4" then begin
    banner "Table IV — stack-height analyses vs CFI";
    let table = time "table4" (fun () -> Fetch_eval.Exp_heights.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_heights.render table)
  end;
  if want "ablation" then begin
    banner "Ablation — Algorithm 1 height sources (SV-B design choice)";
    let cells = time "ablation" (fun () -> Fetch_eval.Exp_ablation.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_ablation.render cells)
  end;
  if want "adversarial" then begin
    banner "Adversarial scenarios — per-scenario robustness (F1 vs clean)";
    let t =
      time "adversarial" (fun () ->
          Fetch_eval.Exp_adversarial.run ~scale:!scale ())
    in
    print_string (Fetch_eval.Exp_adversarial.render t)
  end;
  if want "pe" then begin
    banner "SVII-B — generality: x64 PE exception directory coverage";
    let t = time "pe" (fun () -> Fetch_eval.Exp_pe.run ~scale:!scale ()) in
    print_string (Fetch_eval.Exp_pe.render t)
  end;
  if want "perf" then begin
    banner "Pipeline perf snapshot — per-stage wall clock over the corpus";
    time "perf" perf
  end;
  if want "serve" then begin
    banner "Serve daemon — cold vs warm throughput, content-addressed cache";
    time "serve" serve_bench
  end;
  if want "micro" then micro ()
