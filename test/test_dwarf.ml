(* Tests for fetch.dwarf: CFI codec, eh_frame codec, CFA tables, heights,
   and the reference unwinder. *)

open Fetch_dwarf

let check = Alcotest.check

(* The FDE from the paper's Figure 4 (IDA-Pro 7.2 function at 0xb0). *)
let figure4_fde =
  {
    Eh_frame.pc_begin = 0xb0;
    pc_range = 56;
    lsda = None;
    instrs =
      [
        Cfi.Advance_loc 1;
        (* to b1 *)
        Cfi.Def_cfa_offset 16;
        Cfi.Offset (6, 2);
        (* rbp at cfa-16 *)
        Cfi.Advance_loc 12;
        (* to bd *)
        Cfi.Def_cfa_offset 24;
        Cfi.Offset (3, 3);
        (* rbx at cfa-24 *)
        Cfi.Advance_loc 11;
        (* to c8 *)
        Cfi.Def_cfa_offset 32;
        Cfi.Advance_loc 29;
        (* to e5 *)
        Cfi.Def_cfa_offset 24;
        Cfi.Advance_loc 1;
        (* to e6 *)
        Cfi.Def_cfa_offset 16;
        Cfi.Advance_loc 1;
        (* to e7 *)
        Cfi.Def_cfa_offset 8;
      ];
  }

let figure4_cie = Eh_frame.default_cie ~fdes:[ figure4_fde ] ()

let test_cfi_roundtrip () =
  let instrs =
    [
      Cfi.Def_cfa (7, 8);
      Cfi.Offset (16, 1);
      Cfi.Advance_loc 1;
      Cfi.Advance_loc 63;
      Cfi.Advance_loc 64;
      Cfi.Advance_loc 300;
      Cfi.Advance_loc 70000;
      Cfi.Def_cfa_offset 16;
      Cfi.Def_cfa_register 6;
      Cfi.Offset (6, 2);
      Cfi.Offset (80, 3);
      (* extended form *)
      Cfi.Restore 3;
      Cfi.Restore 70;
      Cfi.Same_value 12;
      Cfi.Undefined 13;
      Cfi.Register (3, 12);
      Cfi.Remember_state;
      Cfi.Restore_state;
      Cfi.Def_cfa_expression "\x77\x08";
      Cfi.Expression (8, "\x77\x2e");
      Cfi.Nop;
    ]
  in
  let b = Fetch_util.Byte_buf.create () in
  List.iter (Cfi.encode b) instrs;
  let decoded =
    Cfi.decode_all (Fetch_util.Byte_cursor.of_string (Fetch_util.Byte_buf.contents b))
  in
  check Alcotest.int "count" (List.length instrs) (List.length decoded);
  List.iter2
    (fun a d ->
      if a <> d then
        Alcotest.failf "cfi mismatch: %s vs %s" (Cfi.to_string a) (Cfi.to_string d))
    instrs decoded

let test_eh_frame_roundtrip () =
  let addr = 0x700000 in
  let fde2 =
    { Eh_frame.pc_begin = 0x200; pc_range = 16; lsda = None; instrs = [ Cfi.Advance_loc 4; Cfi.Def_cfa_offset 16 ] }
  in
  let cies =
    [
      Eh_frame.default_cie ~fdes:[ figure4_fde; fde2 ] ();
      Eh_frame.default_cie ~fdes:[ { Eh_frame.pc_begin = 0x300; pc_range = 8; lsda = None; instrs = [] } ] ();
    ]
  in
  let encoded = Eh_frame.encode ~addr cies in
  match (Eh_frame.decode ~addr encoded).cies with
  | cies' ->
      check Alcotest.int "CIE count" 2 (List.length cies');
      let all = Eh_frame.all_fdes cies' in
      check Alcotest.int "FDE count" 3 (List.length all);
      let f1 = List.nth all 0 in
      check Alcotest.int "pc_begin" 0xb0 f1.pc_begin;
      check Alcotest.int "pc_range" 56 f1.pc_range;
      (* CFI programs survive modulo trailing padding nops *)
      let strip_nops l = List.filter (fun i -> i <> Cfi.Nop) l in
      check Alcotest.int "fde1 instr count"
        (List.length figure4_fde.instrs)
        (List.length (strip_nops f1.instrs));
      let c1 = List.nth cies' 0 in
      check Alcotest.int "code align" 1 c1.code_align;
      check Alcotest.int "data align" (-8) c1.data_align;
      check Alcotest.int "ra reg" 16 c1.ra_reg

let test_eh_frame_terminator_and_empty () =
  let encoded = Eh_frame.encode ~addr:0 [] in
  check Alcotest.int "empty is just terminator" 4 (String.length encoded);
  let d = Eh_frame.decode ~addr:0 encoded in
  check Alcotest.bool "decodes empty" true (d.cies = [] && d.diags = [])

(* Figure 4's run-time stack: heights at each point of the function. *)
let test_figure4_heights () =
  let rows = Cfa_table.rows ~cie:figure4_cie figure4_fde in
  let height off = Cfa_table.height_at rows off in
  check (Alcotest.option Alcotest.int) "entry" (Some 0) (height 0);
  check (Alcotest.option Alcotest.int) "after push rbp" (Some 8) (height 0x1);
  check (Alcotest.option Alcotest.int) "after push rbx" (Some 16) (height 0xd);
  check (Alcotest.option Alcotest.int) "after sub rsp,8" (Some 24) (height 0x18);
  check (Alcotest.option Alcotest.int) "mid body" (Some 24) (height 0x20);
  check (Alcotest.option Alcotest.int) "after add rsp,8" (Some 16) (height 0x35);
  check (Alcotest.option Alcotest.int) "after pop rbx" (Some 8) (height 0x36);
  check (Alcotest.option Alcotest.int) "at ret" (Some 0) (height 0x37);
  check Alcotest.bool "complete" true (Cfa_table.complete_rsp_heights rows)

let test_rbp_based_incomplete () =
  let fde =
    {
      Eh_frame.pc_begin = 0;
      pc_range = 32;
      lsda = None;
      instrs =
        [
          Cfi.Advance_loc 1;
          Cfi.Def_cfa_offset 16;
          Cfi.Offset (6, 2);
          Cfi.Advance_loc 3;
          Cfi.Def_cfa_register 6;
          (* CFA now rbp-based *)
        ];
    }
  in
  let rows = Cfa_table.rows ~cie:figure4_cie fde in
  check Alcotest.bool "incomplete" false (Cfa_table.complete_rsp_heights rows);
  check (Alcotest.option Alcotest.int) "height before rebase" (Some 8)
    (Cfa_table.height_at rows 2);
  check (Alcotest.option Alcotest.int) "no height after rebase" None
    (Cfa_table.height_at rows 10)

let test_remember_restore () =
  let fde =
    {
      Eh_frame.pc_begin = 0;
      pc_range = 64;
      lsda = None;
      instrs =
        [
          Cfi.Advance_loc 1;
          Cfi.Def_cfa_offset 16;
          Cfi.Advance_loc 9;
          Cfi.Remember_state;
          Cfi.Advance_loc 2;
          Cfi.Def_cfa_offset 8;
          (* inline epilogue *)
          Cfi.Advance_loc 8;
          Cfi.Restore_state;
          (* back to offset 16 *)
        ];
    }
  in
  let rows = Cfa_table.rows ~cie:figure4_cie fde in
  check (Alcotest.option Alcotest.int) "inside epilogue" (Some 0)
    (Cfa_table.height_at rows 13);
  check (Alcotest.option Alcotest.int) "after restore" (Some 8)
    (Cfa_table.height_at rows 20);
  check Alcotest.bool "still complete" true (Cfa_table.complete_rsp_heights rows)

let test_height_oracle () =
  let oracle = Height_oracle.create [ figure4_cie ] in
  check (Alcotest.option Alcotest.int) "abs height" (Some 24)
    (Height_oracle.height_at oracle (0xb0 + 0x20));
  check Alcotest.bool "complete" true (Height_oracle.complete_at oracle 0xb0);
  check (Alcotest.option Alcotest.int) "outside" None
    (Height_oracle.height_at oracle 0x500);
  match Height_oracle.fde_starting_at oracle 0xb0 with
  | Some f -> check Alcotest.int "fde lookup" 56 f.pc_range
  | None -> Alcotest.fail "fde_starting_at"

(* Unwinder: simulate the Figure 4 function mid-body and unwind one frame.
   Stack layout at offset 0x20 (height 24): [rsp] pad, [rsp+8] rbx,
   [rsp+16] rbp, [rsp+24] return address. *)
let test_unwind_figure4 () =
  let rsp = 0x7fff0000 in
  let ra = 0x404242 in
  let mem = Hashtbl.create 8 in
  Hashtbl.replace mem (rsp + 8) 0x1111;
  (* saved rbx *)
  Hashtbl.replace mem (rsp + 16) 0x2222;
  (* saved rbp *)
  Hashtbl.replace mem (rsp + 24) ra;
  let oracle = Height_oracle.create [ figure4_cie ] in
  let m =
    {
      Unwind.pc = 0xb0 + 0x20;
      regs = [ (Cfa_table.dw_rsp, rsp); (6, 0xdead); (3, 0xbeef) ];
      read_u64 = (fun a -> Hashtbl.find_opt mem a);
    }
  in
  match Unwind.step oracle m with
  | Error _ -> Alcotest.fail "unwind failed"
  | Ok f ->
      check Alcotest.int "cfa" (rsp + 32) f.cfa;
      check Alcotest.int "return address" ra f.return_address;
      check (Alcotest.option Alcotest.int) "rbx restored" (Some 0x1111)
        (List.assoc_opt 3 f.caller_regs);
      check (Alcotest.option Alcotest.int) "rbp restored" (Some 0x2222)
        (List.assoc_opt 6 f.caller_regs);
      check (Alcotest.option Alcotest.int) "rsp is cfa" (Some (rsp + 32))
        (List.assoc_opt Cfa_table.dw_rsp f.caller_regs)

let test_unwind_no_fde () =
  let oracle = Height_oracle.create [ figure4_cie ] in
  let m =
    { Unwind.pc = 0x9999; regs = [ (7, 0) ]; read_u64 = (fun _ -> None) }
  in
  match Unwind.step oracle m with
  | Error (Unwind.No_fde 0x9999) -> ()
  | _ -> Alcotest.fail "expected No_fde"

(* Property: random push/sub CFI programs produce heights that match a
   direct simulation. *)
let prop_heights_match_simulation =
  QCheck.Test.make ~name:"cfa rows match simulated stack heights" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) (QCheck.int_range 1 6))
    (fun deltas ->
      (* build: at offset i+1, stack grows by deltas[i]*8 bytes *)
      let instrs =
        List.concat
          (List.mapi
             (fun _i d ->
               [ Cfi.Advance_loc 1; Cfi.Def_cfa_offset (8 + (8 * d)) ])
             deltas)
      in
      let fde =
        { Eh_frame.pc_begin = 0; pc_range = List.length deltas + 2; lsda = None; instrs }
      in
      let rows = Cfa_table.rows ~cie:figure4_cie fde in
      let ok = ref (Cfa_table.height_at rows 0 = Some 0) in
      List.iteri
        (fun i d ->
          if Cfa_table.height_at rows (i + 1) <> Some (8 * d) then ok := false)
        deltas;
      !ok)

let suite =
  [
    Alcotest.test_case "cfi codec roundtrip" `Quick test_cfi_roundtrip;
    Alcotest.test_case "eh_frame codec roundtrip" `Quick test_eh_frame_roundtrip;
    Alcotest.test_case "eh_frame empty/terminator" `Quick test_eh_frame_terminator_and_empty;
    Alcotest.test_case "figure 4 heights" `Quick test_figure4_heights;
    Alcotest.test_case "rbp-based CFI is incomplete" `Quick test_rbp_based_incomplete;
    Alcotest.test_case "remember/restore state" `Quick test_remember_restore;
    Alcotest.test_case "height oracle" `Quick test_height_oracle;
    Alcotest.test_case "unwind figure 4 frame" `Quick test_unwind_figure4;
    Alcotest.test_case "unwind without FDE fails" `Quick test_unwind_no_fde;
    QCheck_alcotest.to_alcotest prop_heights_match_simulation;
  ]

(* --- personality / LSDA augmentations and .eh_frame_hdr --- *)

let test_personality_lsda_roundtrip () =
  let fde_with =
    Eh_frame.make_fde ~lsda:0x6f0010 ~pc_begin:0x1000 ~pc_range:32
      [ Cfi.Advance_loc 4; Cfi.Def_cfa_offset 16 ]
  in
  let fde_without = Eh_frame.make_fde ~pc_begin:0x1040 ~pc_range:16 [] in
  let cies =
    [ Eh_frame.default_cie ~personality:0x402000 ~fdes:[ fde_with; fde_without ] () ]
  in
  let encoded = Eh_frame.encode ~addr:0x700000 cies in
  match (Eh_frame.decode ~addr:0x700000 encoded).cies with
  | [ cie ] ->
      check (Alcotest.option Alcotest.int) "personality" (Some 0x402000)
        cie.personality;
      (match cie.fdes with
      | [ a; b ] ->
          check (Alcotest.option Alcotest.int) "lsda kept" (Some 0x6f0010) a.lsda;
          check (Alcotest.option Alcotest.int) "no lsda" None b.lsda
      | _ -> Alcotest.fail "fde count");
      (* heights still work through the augmented CIE *)
      let rows = Cfa_table.rows ~cie (List.hd cie.fdes) in
      check (Alcotest.option Alcotest.int) "height" (Some 8)
        (Cfa_table.height_at rows 6)
  | _ -> Alcotest.fail "cie count"

let test_eh_frame_hdr_roundtrip () =
  let index = [ (0x1400, 0x700040); (0x1000, 0x700010); (0x1200, 0x700028) ] in
  let encoded = Eh_frame_hdr.encode ~addr:0x6ff000 ~eh_frame_addr:0x700000 index in
  match Eh_frame_hdr.decode ~addr:0x6ff000 encoded with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok h ->
      check Alcotest.int "eh_frame ptr" 0x700000 h.eh_frame_ptr;
      check Alcotest.int "entries" 3 (Array.length h.entries);
      (* sorted by pc *)
      check Alcotest.int "first pc" 0x1000 (fst h.entries.(0));
      (* binary search semantics *)
      check (Alcotest.option Alcotest.int) "exact" (Some 0x700010)
        (Eh_frame_hdr.search h 0x1000);
      check (Alcotest.option Alcotest.int) "inside" (Some 0x700028)
        (Eh_frame_hdr.search h 0x13ff);
      check (Alcotest.option Alcotest.int) "last" (Some 0x700040)
        (Eh_frame_hdr.search h 0x9999);
      check (Alcotest.option Alcotest.int) "before all" None
        (Eh_frame_hdr.search h 0xfff)

let suite =
  suite
  @ [
      Alcotest.test_case "personality/LSDA roundtrip" `Quick
        test_personality_lsda_roundtrip;
      Alcotest.test_case "eh_frame_hdr roundtrip + search" `Quick
        test_eh_frame_hdr_roundtrip;
    ]

(* Property: arbitrary CFI-sane FDE sets round-trip through the eh_frame
   codec (pc values, ranges and instruction streams survive). *)
let prop_eh_frame_roundtrip =
  let gen =
    QCheck.Gen.(
      let instr =
        oneof
          [
            (let* d = int_range 1 5000 in return (Cfi.Advance_loc d));
            (let* o = int_range 8 512 in return (Cfi.Def_cfa_offset o));
            (let* r = int_bound 15 and* o = int_range 1 16 in
             return (Cfi.Offset (r, o)));
            (let* r = int_bound 15 in return (Cfi.Restore r));
            return Cfi.Remember_state;
            return Cfi.Restore_state;
          ]
      in
      let fde =
        let* pc = int_range 0x1000 0x100000 in
        let* range = int_range 1 4096 in
        let* instrs = list_size (int_bound 8) instr in
        return (Eh_frame.make_fde ~pc_begin:pc ~pc_range:range instrs)
      in
      list_size (int_range 1 6) fde)
  in
  QCheck.Test.make ~name:"eh_frame roundtrip on arbitrary FDEs" ~count:200
    (QCheck.make gen)
    (fun fdes ->
      let cies = [ Eh_frame.default_cie ~fdes () ] in
      let addr = 0x700000 in
      let d = Eh_frame.decode ~addr (Eh_frame.encode ~addr cies) in
      match d.cies with
      | _ when d.diags <> [] -> false
      | [ cie ] ->
          let strip l = List.filter (fun i -> i <> Cfi.Nop) l in
          List.length cie.fdes = List.length fdes
          && List.for_all2
               (fun (a : Eh_frame.fde) (b : Eh_frame.fde) ->
                 a.pc_begin = b.pc_begin && a.pc_range = b.pc_range
                 && strip a.instrs = strip b.instrs)
               cie.fdes fdes
      | _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_eh_frame_roundtrip ]

(* --- parser totality: per-record recovery and the full DW_EH_PE menu --- *)

open Fetch_util

(* Hand-build one raw length-delimited record (length + id + body + nop
   padding), like the encoder does. *)
let add_record b ~id body =
  let len_at = Byte_buf.length b in
  Byte_buf.u32 b 0;
  Byte_buf.u32 b id;
  body ();
  while (Byte_buf.length b - len_at) mod 8 <> 0 do
    Byte_buf.u8 b 0x00
  done;
  Byte_buf.patch_u32 b ~at:len_at (Byte_buf.length b - len_at - 4)

(* A minimal "zR" CIE with pointer encoding [enc], at the buffer start. *)
let add_zr_cie b ~enc =
  add_record b ~id:0 (fun () ->
      Byte_buf.u8 b 1;
      (* version *)
      Byte_buf.cstring b "zR";
      Byte_buf.uleb128 b 1;
      Byte_buf.sleb128 b (-8);
      Byte_buf.uleb128 b 16;
      Byte_buf.uleb128 b 1;
      (* aug data: just the R encoding *)
      Byte_buf.u8 b enc)

(* CIE + one FDE whose pc_begin/pc_range bytes are produced by
   [write_pc]/[write_range] (given the buffer and the field's virtual
   address), decoded at [addr]. *)
let one_fde_section ?ptr_width ?deref ~addr ~enc ~write_pc ~write_range () =
  let b = Byte_buf.create () in
  add_zr_cie b ~enc;
  let fde_start = Byte_buf.length b in
  add_record b ~id:(fde_start + 4) (fun () ->
      write_pc b (addr + Byte_buf.length b);
      write_range b (addr + Byte_buf.length b);
      Byte_buf.uleb128 b 0 (* aug length *));
  Byte_buf.u32 b 0;
  Eh_frame.decode ?ptr_width ?deref ~addr (Byte_buf.contents b)

let check_single_fde ?(msg = "fde") d ~pc ~range =
  check Alcotest.int (msg ^ ": skips") 0 d.Eh_frame.records_skipped;
  match Eh_frame.all_fdes d.Eh_frame.cies with
  | [ f ] ->
      check Alcotest.int (msg ^ ": pc_begin") pc f.pc_begin;
      check Alcotest.int (msg ^ ": pc_range") range f.pc_range
  | l -> Alcotest.failf "%s: expected 1 FDE, got %d" msg (List.length l)

let test_pe_uleb_sleb () =
  let addr = 0x10000 in
  (* DW_EH_PE_uleb128, absolute *)
  let d =
    one_fde_section ~addr ~enc:0x01
      ~write_pc:(fun b _ -> Byte_buf.uleb128 b 0x54321)
      ~write_range:(fun b _ -> Byte_buf.uleb128 b 0x321)
      ()
  in
  check_single_fde ~msg:"uleb128" d ~pc:0x54321 ~range:0x321;
  (* DW_EH_PE_sleb128 | pcrel: negative delta back from the field *)
  let d =
    one_fde_section ~addr ~enc:0x19
      ~write_pc:(fun b field -> Byte_buf.sleb128 b (0x9000 - field))
      ~write_range:(fun b _ -> Byte_buf.sleb128 b 64)
      ()
  in
  check_single_fde ~msg:"sleb128 pcrel" d ~pc:0x9000 ~range:64

let test_pe_data2 () =
  let addr = 0x20000 in
  (* DW_EH_PE_udata2, absolute *)
  let d =
    one_fde_section ~addr ~enc:0x02
      ~write_pc:(fun b _ -> Byte_buf.u16 b 0xbeef)
      ~write_range:(fun b _ -> Byte_buf.u16 b 0x9000)
      ()
  in
  (* range 0x9000 > 2^15: must stay unsigned *)
  check_single_fde ~msg:"udata2" d ~pc:0xbeef ~range:0x9000;
  (* DW_EH_PE_sdata2 | pcrel *)
  let d =
    one_fde_section ~addr ~enc:0x1a
      ~write_pc:(fun b field -> Byte_buf.u16 b ((0x20000 - 4 - field) land 0xffff))
      ~write_range:(fun b _ -> Byte_buf.u16 b 8)
      ()
  in
  check_single_fde ~msg:"sdata2 pcrel" d ~pc:(0x20000 - 4) ~range:8

let test_pe_absptr_and_udata8 () =
  let addr = 0x30000 in
  (* DW_EH_PE_absptr in 64-bit mode *)
  let d =
    one_fde_section ~addr ~enc:0x00
      ~write_pc:(fun b _ -> Byte_buf.u64 b 0x123456789)
      ~write_range:(fun b _ -> Byte_buf.u64 b 0x1000)
      ()
  in
  check_single_fde ~msg:"absptr64" d ~pc:0x123456789 ~range:0x1000;
  (* DW_EH_PE_absptr in 32-bit mode (4-byte pointers) *)
  let d =
    one_fde_section ~ptr_width:4 ~addr ~enc:0x00
      ~write_pc:(fun b _ -> Byte_buf.u32 b 0x80001234)
      ~write_range:(fun b _ -> Byte_buf.u32 b 0x40)
      ()
  in
  check_single_fde ~msg:"absptr32" d ~pc:0x80001234 ~range:0x40;
  (* DW_EH_PE_udata8 *)
  let d =
    one_fde_section ~addr ~enc:0x04
      ~write_pc:(fun b _ -> Byte_buf.u64 b 0xabcdef0)
      ~write_range:(fun b _ -> Byte_buf.u64 b 24)
      ()
  in
  check_single_fde ~msg:"udata8" d ~pc:0xabcdef0 ~range:24

let test_pe_datarel_indirect () =
  let addr = 0x40000 in
  (* DW_EH_PE_datarel | udata4: relative to the section start *)
  let d =
    one_fde_section ~addr ~enc:0x33
      ~write_pc:(fun b _ -> Byte_buf.u32 b 0x500)
      ~write_range:(fun b _ -> Byte_buf.u32 b 16)
      ()
  in
  check_single_fde ~msg:"datarel" d ~pc:(addr + 0x500) ~range:16;
  (* DW_EH_PE_indirect | udata4: value is the address of the pointer *)
  let d =
    one_fde_section ~addr ~enc:0x83
      ~deref:(fun a -> if a = 0x7000 then Some 0x424242 else None)
      ~write_pc:(fun b _ -> Byte_buf.u32 b 0x7000)
      ~write_range:(fun b _ -> Byte_buf.u32 b 32)
      ()
  in
  check_single_fde ~msg:"indirect" d ~pc:0x424242 ~range:32

(* Satellite: a 4-byte pc_range >= 2^31 must not go negative (the old
   parser read it through i32). *)
let test_pc_range_unsigned () =
  let addr = 0x50000 in
  let d =
    one_fde_section ~addr ~enc:0x1b (* pcrel sdata4, GCC's default *)
      ~write_pc:(fun b field -> Byte_buf.i32 b (0x51000 - field))
      ~write_range:(fun b _ -> Byte_buf.u32 b 0x88888888)
      ()
  in
  check_single_fde ~msg:"huge range" d ~pc:0x51000 ~range:0x88888888

let test_pe_omit_personality () =
  (* "zPR" CIE whose P encoding is DW_EH_PE_omit: no personality bytes *)
  let addr = 0x60000 in
  let b = Byte_buf.create () in
  add_record b ~id:0 (fun () ->
      Byte_buf.u8 b 1;
      Byte_buf.cstring b "zPR";
      Byte_buf.uleb128 b 1;
      Byte_buf.sleb128 b (-8);
      Byte_buf.uleb128 b 16;
      Byte_buf.uleb128 b 2;
      Byte_buf.u8 b 0xff;
      (* P: omit *)
      Byte_buf.u8 b 0x1b (* R: pcrel sdata4 *));
  let fde_start = Byte_buf.length b in
  add_record b ~id:(fde_start + 4) (fun () ->
      Byte_buf.i32 b (0x61000 - (addr + Byte_buf.length b));
      Byte_buf.u32 b 48;
      Byte_buf.uleb128 b 0);
  Byte_buf.u32 b 0;
  let d = Eh_frame.decode ~addr (Byte_buf.contents b) in
  check Alcotest.int "no skips" 0 d.records_skipped;
  (match d.cies with
  | [ cie ] ->
      check (Alcotest.option Alcotest.int) "personality omitted" None
        cie.personality
  | _ -> Alcotest.fail "cie count");
  check_single_fde ~msg:"omit-P" d ~pc:0x61000 ~range:48

(* Unknown augmentation characters are skipped via the 'z' length and the
   record survives with a warning diagnostic. *)
let test_unknown_augmentation_tolerated () =
  let addr = 0x70000 in
  let b = Byte_buf.create () in
  add_record b ~id:0 (fun () ->
      Byte_buf.u8 b 1;
      Byte_buf.cstring b "zRX";
      (* X: unknown *)
      Byte_buf.uleb128 b 1;
      Byte_buf.sleb128 b (-8);
      Byte_buf.uleb128 b 16;
      Byte_buf.uleb128 b 3;
      Byte_buf.u8 b 0x1b;
      (* R *)
      Byte_buf.u16 b 0xdead (* X's unknown payload, skipped via length *));
  let fde_start = Byte_buf.length b in
  add_record b ~id:(fde_start + 4) (fun () ->
      Byte_buf.i32 b (0x71000 - (addr + Byte_buf.length b));
      Byte_buf.u32 b 16;
      Byte_buf.uleb128 b 0);
  Byte_buf.u32 b 0;
  let d = Eh_frame.decode ~addr (Byte_buf.contents b) in
  check Alcotest.int "both records decoded" 2 d.records_ok;
  check Alcotest.int "no skips" 0 d.records_skipped;
  (match d.diags with
  | [ { kind = Diag.Unknown_augmentation; fatal = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected one non-fatal unknown-augmentation diag");
  check_single_fde ~msg:"aug-tolerant" d ~pc:0x71000 ~range:16

(* Acceptance criterion: a section with one corrupted record still yields
   every other FDE (recovered count = total - 1). *)
let test_one_bad_record_recovers_rest () =
  let addr = 0x700000 in
  let fdes =
    List.map
      (fun i ->
        Eh_frame.make_fde ~pc_begin:(0x1000 + (0x100 * i)) ~pc_range:0x40
          [ Cfi.Advance_loc 1; Cfi.Def_cfa_offset 16 ])
      [ 0; 1; 2; 3; 4 ]
  in
  let cies = [ Eh_frame.default_cie ~fdes () ] in
  let encoded, index = Eh_frame.encode_with_index ~addr cies in
  check Alcotest.int "index size" 5 (List.length index);
  (* smash the middle FDE's CIE pointer so it references no CIE *)
  let victim_pc, victim_vaddr = List.nth index 2 in
  let victim_off = victim_vaddr - addr in
  let bytes = Bytes.of_string encoded in
  Bytes.set_int32_le bytes (victim_off + 4) 0x66666666l;
  let d = Eh_frame.decode ~addr (Bytes.to_string bytes) in
  let recovered = Eh_frame.all_fdes d.cies in
  check Alcotest.int "recovered = total - 1" 4 (List.length recovered);
  check Alcotest.int "one record skipped" 1 d.records_skipped;
  check Alcotest.int "records ok (CIE + 4 FDEs)" 5 d.records_ok;
  check Alcotest.bool "victim gone" false
    (List.exists (fun (f : Eh_frame.fde) -> f.pc_begin = victim_pc) recovered);
  (match d.diags with
  | [ { kind = Diag.Unknown_cie; fatal = true; offset; _ } ] ->
      check Alcotest.int "diag offset" victim_off offset
  | _ -> Alcotest.fail "expected exactly one unknown-CIE diag");
  List.iteri
    (fun i (pc, _) ->
      if i <> 2 then
        check Alcotest.bool (Printf.sprintf "fde %d survives" i) true
          (List.exists
             (fun (f : Eh_frame.fde) -> f.pc_begin = pc)
             recovered))
    index

let test_truncated_section_recovers_prefix () =
  let addr = 0x700000 in
  let fdes =
    List.map
      (fun i -> Eh_frame.make_fde ~pc_begin:(0x2000 + (0x80 * i)) ~pc_range:16 [])
      [ 0; 1; 2 ]
  in
  let encoded, index =
    Eh_frame.encode_with_index ~addr [ Eh_frame.default_cie ~fdes () ]
  in
  (* cut into the last FDE's body *)
  let _, last_vaddr = List.nth index 2 in
  let cut = last_vaddr - addr + 6 in
  let d = Eh_frame.decode ~addr (String.sub encoded 0 cut) in
  check Alcotest.int "two FDEs recovered" 2
    (List.length (Eh_frame.all_fdes d.cies));
  check Alcotest.bool "truncation reported" true
    (List.exists (fun (g : Diag.t) -> g.kind = Diag.Truncated) d.diags)

let test_terminator_stops_parse () =
  let addr = 0x700000 in
  let encoded =
    Eh_frame.encode ~addr
      [
        Eh_frame.default_cie
          ~fdes:[ Eh_frame.make_fde ~pc_begin:0x3000 ~pc_range:8 [] ]
          ();
      ]
  in
  (* garbage after the zero-length terminator is never looked at *)
  let d = Eh_frame.decode ~addr (encoded ^ "\xde\xad\xbe\xef\x01\x02\x03") in
  check Alcotest.int "records" 2 d.records_ok;
  check Alcotest.bool "no diags" true (d.diags = []);
  check_single_fde ~msg:"pre-terminator" d ~pc:0x3000 ~range:8

(* A record whose length field is garbage: skipped with a diagnostic, and
   the parser resynchronizes at the declared boundary. *)
let test_bad_length_resync () =
  let addr = 0x700000 in
  let b = Byte_buf.create () in
  (* length 2: too short to hold an id field; resync lands just past it *)
  Byte_buf.u32 b 2;
  Byte_buf.u16 b 0xeeee;
  let good_start = Byte_buf.length b in
  let inner = Byte_buf.create () in
  add_zr_cie inner ~enc:0x1b;
  let fde_start = Byte_buf.length inner in
  add_record inner ~id:(fde_start + 4) (fun () ->
      Byte_buf.i32 inner (0x4000 - (addr + good_start + Byte_buf.length inner));
      Byte_buf.u32 inner 32;
      Byte_buf.uleb128 inner 0);
  Byte_buf.u32 inner 0;
  Byte_buf.string b (Byte_buf.contents inner);
  let d = Eh_frame.decode ~addr (Byte_buf.contents b) in
  check Alcotest.int "resynced records" 2 d.records_ok;
  check Alcotest.int "bad record skipped" 1 d.records_skipped;
  match Eh_frame.all_fdes d.cies with
  | [ f ] ->
      check Alcotest.int "post-resync pc" 0x4000 f.pc_begin;
      check Alcotest.int "post-resync range" 32 f.pc_range
  | l -> Alcotest.failf "expected 1 FDE, got %d" (List.length l)

(* 64-bit DWARF records (0xffffffff marker + 8-byte length + 8-byte id)
   round-trip through the encoder and decode like their 32-bit siblings. *)
let test_dwarf64_roundtrip () =
  let addr = 0x700000 in
  let cies =
    [
      Eh_frame.default_cie ~personality:0x401234
        ~fdes:
          [
            Eh_frame.make_fde ~pc_begin:0x5000 ~pc_range:16
              [ Cfi.Def_cfa_offset 16 ];
            Eh_frame.make_fde ~lsda:0x6f0010 ~pc_begin:0x5100 ~pc_range:64 [];
          ]
        ();
    ]
  in
  let encoded = Eh_frame.encode ~format64:true ~addr cies in
  (* every record leads with the 64-bit length marker *)
  check Alcotest.int "marker" 0xffffffff
    (Int32.to_int (String.get_int32_le encoded 0) land 0xffffffff);
  let d = Eh_frame.decode ~addr encoded in
  check Alcotest.int "records ok" 3 d.records_ok;
  check Alcotest.int "none skipped" 0 d.records_skipped;
  match d.cies with
  | [ c ] ->
      check (Alcotest.option Alcotest.int) "personality" (Some 0x401234)
        c.personality;
      (match c.fdes with
      | [ f1; f2 ] ->
          check Alcotest.int "pc1" 0x5000 f1.pc_begin;
          check Alcotest.int "range1" 16 f1.pc_range;
          check Alcotest.bool "instrs1" true
            (List.mem (Cfi.Def_cfa_offset 16) f1.instrs);
          check Alcotest.int "pc2" 0x5100 f2.pc_begin;
          check (Alcotest.option Alcotest.int) "lsda2" (Some 0x6f0010) f2.lsda
      | l -> Alcotest.failf "expected 2 FDEs, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 CIE, got %d" (List.length l)

(* 32- and 64-bit records interleave in one section, and a malformed
   64-bit record is skipped with resync like any other. *)
let test_dwarf64_mixed_and_resync () =
  let addr = 0x700000 in
  let b = Byte_buf.create () in
  (* malformed 64-bit record: length 8 covers only the id field, so the
     CIE body truncates inside its own boundary *)
  Byte_buf.u32 b 0xffffffff;
  Byte_buf.u64 b 8;
  Byte_buf.u64 b 0;
  (* a good 64-bit CIE + FDE, terminator stripped *)
  let blob64 =
    Eh_frame.encode ~format64:true
      ~addr:(addr + Byte_buf.length b)
      [
        Eh_frame.default_cie
          ~fdes:[ Eh_frame.make_fde ~pc_begin:0x5000 ~pc_range:16 [] ]
          ();
      ]
  in
  Byte_buf.string b (String.sub blob64 0 (String.length blob64 - 4));
  (* then a 32-bit CIE + FDE *)
  let blob32 =
    Eh_frame.encode
      ~addr:(addr + Byte_buf.length b)
      [
        Eh_frame.default_cie
          ~fdes:[ Eh_frame.make_fde ~pc_begin:0x6000 ~pc_range:32 [] ]
          ();
      ]
  in
  Byte_buf.string b blob32;
  let d = Eh_frame.decode ~addr (Byte_buf.contents b) in
  check Alcotest.int "four good records" 4 d.records_ok;
  check Alcotest.int "one skipped" 1 d.records_skipped;
  check Alcotest.bool "truncation diag" true
    (List.exists
       (fun (g : Diag.t) -> g.kind = Diag.Truncated && g.fatal)
       d.diags);
  let pcs =
    List.map (fun (f : Eh_frame.fde) -> f.pc_begin) (Eh_frame.all_fdes d.cies)
  in
  check Alcotest.(list int) "both FDEs survive" [ 0x5000; 0x6000 ]
    (List.sort compare pcs)

(* An undecodable CFI opcode degrades the one record (prefix kept) with a
   warning — it no longer aborts the whole section. *)
let test_bad_cfi_keeps_record () =
  let addr = 0x700000 in
  let b = Byte_buf.create () in
  add_zr_cie b ~enc:0x1b;
  let fde_start = Byte_buf.length b in
  add_record b ~id:(fde_start + 4) (fun () ->
      Byte_buf.i32 b (0x6000 - (addr + Byte_buf.length b));
      Byte_buf.u32 b 64;
      Byte_buf.uleb128 b 0;
      Cfi.encode b (Cfi.Def_cfa_offset 16);
      Byte_buf.u8 b 0x3d (* DW_CFA vendor-range opcode we don't decode *));
  Byte_buf.u32 b 0;
  let d = Eh_frame.decode ~addr (Byte_buf.contents b) in
  check Alcotest.int "no skips" 0 d.records_skipped;
  (match Eh_frame.all_fdes d.cies with
  | [ f ] ->
      check Alcotest.int "pc" 0x6000 f.pc_begin;
      check Alcotest.bool "prefix kept" true
        (List.mem (Cfi.Def_cfa_offset 16) f.instrs)
  | _ -> Alcotest.fail "fde count");
  check Alcotest.bool "bad_cfi diag" true
    (List.exists
       (fun (g : Diag.t) -> g.kind = Diag.Bad_cfi && not g.fatal)
       d.diags)

(* Regression seeds: inputs that crashed (or would have crashed) earlier
   parsers — each must decode without raising.  Kept as raw fixtures. *)
let fuzz_regression_fixtures =
  [
    (* uleb128 augmentation length whose 63-bit overflow went negative *)
    ( "negative aug_len",
      "\x14\x00\x00\x00\x00\x00\x00\x00\x01zR\x00\x01\x78\x10\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01\x1b" );
    (* cstring (augmentation) running to the end of the section *)
    ("unterminated augmentation", "\x10\x00\x00\x00\x00\x00\x00\x00\x01zRzRzRzRzRzR");
    (* record length pointing one byte past the section end *)
    ("length overruns by one", "\x09\x00\x00\x00\x00\x00\x00\x00\x01z\x00\x00");
    (* FDE before any CIE *)
    ("orphan FDE", "\x0c\x00\x00\x00\x10\x00\x00\x00\x00\x10\x40\x00\x20\x00\x00\x00");
    (* 64-bit DWARF marker with a truncated extended length *)
    ("truncated dwarf64", "\xff\xff\xff\xff\x01\x02\x03");
    (* zero-length-terminator only *)
    ("bare terminator", "\x00\x00\x00\x00");
    (* sub-4-byte tail *)
    ("tiny tail", "\x01\x02");
  ]

let test_fuzz_fixtures_total () =
  List.iter
    (fun (name, bytes) ->
      let d = Eh_frame.decode ~addr:0x10000 bytes in
      (* decoding completed without raising; sanity: counters consistent *)
      check Alcotest.int name d.records_skipped
        (List.length (List.filter (fun (g : Diag.t) -> g.fatal) d.diags)))
    fuzz_regression_fixtures

(* Surviving mutants promoted from fuzz_eh_frame runs over the
   adversarial-scenario bases (DWARF64 and overlap-mangled sections,
   mutation seed 24221), minimized to their shortest interesting prefix.
   Each pins the exact recovery the decoder achieved when promoted:
   (name, bytes, records_ok, records_skipped, fdes recovered). *)
let adversarial_fuzz_fixtures =
  [
    (* 64-bit zPLR CIE decoded in full, then a 64-bit record whose
       extended length overruns the section: skipped, nothing lost *)
    ( "dwarf64 CIE kept ahead of truncated 64-bit record",
      "\xff\xff\xff\xff\x24\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x7a\x50\x4c\x52\x00\x01\x78\x10\x07\x1b\x41\x1d\xd0\xff\x1b\x1b\x0c\x07\x08\x90\x01\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\x1c\x00\x00\x00",
      1, 1, 0 );
    (* corrupt 64-bit FDE body mid-section: the record is dropped but
       resynchronization still reaches and decodes the FDE after it *)
    ( "dwarf64 resync recovers FDE after corrupt record",
      "\xff\xff\xff\xff\x24\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x7a\x50\x4c\x52\x00\x01\x78\x10\x07\x1b\x41\x1d\xd0\xff\x1b\x1b\x0c\x07\x08\x90\x01\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\x1c\x00\x00\x00\x00\x00\x00\x00\x3c\x00\x00\x00\x00\x00\x00\x00\xbc\x0f\xd0\xff\x09\x00\x00\x00\x04\xb3\xff\x8f\xff\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\x24\x00\x00\x00",
      2, 1, 1 );
    (* overlap-mangled section truncated inside its first FDE: the zR
       CIE survives *)
    ( "overlap CIE kept ahead of truncated FDE",
      "\x14\x00\x00\x00\x00\x00\x00\x00\x01\x7a\x52\x00\x01\x78\x10\x01\x1b\x0c\x07\x08\x90\x01\x00\x00\x14\x00\x00\x00\x1c\x00\x00\x00",
      1, 1, 0 );
    (* corrupt FDE in an overlap-mangled list: dropped, next FDE kept *)
    ( "overlap resync recovers FDE after corrupt record",
      "\x14\x00\x00\x00\x00\x00\x00\x00\x01\x7a\x52\x00\x01\x78\x10\x01\x1b\x0c\x07\x08\x90\x01\x00\x00\x14\x00\x00\x00\x1c\x00\x00\x00\x00\x12\xd0\xff\x1d\x00\x00\x00\x00\x48\x0e\x10\x00\x00\x00\x00\x1c\x00\x00\x00\x34\x00\x00\x00",
      2, 1, 1 );
  ]

let test_adversarial_fuzz_fixtures () =
  List.iter
    (fun (name, bytes, ok, skipped, fdes) ->
      let d = Eh_frame.decode ~addr:0x700000 bytes in
      check Alcotest.int (name ^ ": records_ok") ok d.records_ok;
      check Alcotest.int (name ^ ": records_skipped") skipped d.records_skipped;
      check Alcotest.int (name ^ ": fdes recovered") fdes
        (List.length (Eh_frame.all_fdes d.cies)))
    adversarial_fuzz_fixtures

(* Property: decode is total on arbitrary bytes. *)
let prop_decode_total =
  QCheck.Test.make ~name:"eh_frame decode is total on arbitrary bytes"
    ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 256))
    (fun s ->
      let d = Eh_frame.decode ~addr:0x400000 s in
      d.records_skipped = List.length (List.filter (fun (g : Diag.t) -> g.fatal) d.diags))

let suite =
  suite
  @ [
      Alcotest.test_case "DW_EH_PE uleb128/sleb128" `Quick test_pe_uleb_sleb;
      Alcotest.test_case "DW_EH_PE udata2/sdata2" `Quick test_pe_data2;
      Alcotest.test_case "DW_EH_PE absptr/udata8" `Quick test_pe_absptr_and_udata8;
      Alcotest.test_case "DW_EH_PE datarel/indirect" `Quick test_pe_datarel_indirect;
      Alcotest.test_case "pc_range >= 2^31 stays unsigned" `Quick test_pc_range_unsigned;
      Alcotest.test_case "DW_EH_PE omit personality" `Quick test_pe_omit_personality;
      Alcotest.test_case "unknown augmentation tolerated" `Quick
        test_unknown_augmentation_tolerated;
      Alcotest.test_case "one bad record: rest recovered" `Quick
        test_one_bad_record_recovers_rest;
      Alcotest.test_case "truncated section: prefix recovered" `Quick
        test_truncated_section_recovers_prefix;
      Alcotest.test_case "terminator stops the parse" `Quick test_terminator_stops_parse;
      Alcotest.test_case "bad length: skip + resync" `Quick test_bad_length_resync;
      Alcotest.test_case "64-bit DWARF roundtrip" `Quick test_dwarf64_roundtrip;
      Alcotest.test_case "64-bit DWARF mixed + resync" `Quick
        test_dwarf64_mixed_and_resync;
      Alcotest.test_case "bad CFI degrades one record" `Quick test_bad_cfi_keeps_record;
      Alcotest.test_case "fuzz regression fixtures" `Quick test_fuzz_fixtures_total;
      Alcotest.test_case "adversarial fuzz mutants (promoted)" `Quick
        test_adversarial_fuzz_fixtures;
      QCheck_alcotest.to_alcotest prop_decode_total;
    ]
