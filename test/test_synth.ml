(* Tests for fetch.synth: generated binaries are well-formed end to end —
   the ELF round-trips, the .eh_frame parses, every function body decodes
   as instructions, CFI heights are internally consistent, and the ground
   truth matches the section contents. *)

open Fetch_synth

let check = Alcotest.check

let profile = Profile.make Profile.Synthgcc Profile.O2

let spec =
  {
    Gen.default_spec with
    n_funcs = 40;
    n_asm_called = 2;
    n_asm_tailonly = 1;
    n_asm_pointer = 1;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
    n_broken_fde = 1;
    cxx = true;
  }

let built = lazy (Link.build_random ~profile ~seed:12345 spec)

let test_deterministic () =
  let a = Link.build_random ~profile ~seed:777 spec in
  let b = Link.build_random ~profile ~seed:777 spec in
  check Alcotest.bool "same bytes" true (String.equal a.raw b.raw);
  let c = Link.build_random ~profile ~seed:778 spec in
  check Alcotest.bool "different seed differs" false (String.equal a.raw c.raw)

let test_elf_roundtrip () =
  let b = Lazy.force built in
  match Fetch_elf.Decode.decode b.raw with
  | Error e -> Alcotest.failf "ELF decode: %s" e
  | Ok img ->
      List.iter
        (fun name ->
          check Alcotest.bool (name ^ " present") true
            (Fetch_elf.Image.has_section img name))
        [ ".text"; ".rodata"; ".data"; ".eh_frame" ];
      let t = Option.get (Fetch_elf.Image.section img ".text") in
      let t0 = Option.get (Fetch_elf.Image.section b.image ".text") in
      check Alcotest.string "text preserved" t0.data t.data;
      check Alcotest.int "entry preserved" b.image.entry img.entry

let test_eh_frame_parses () =
  let b = Lazy.force built in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let fdes = Fetch_dwarf.Eh_frame.all_fdes cies in
  let with_fde =
        List.filter (fun (f : Truth.fn_truth) -> f.has_fde) b.truth.fns
      in
      let cold_parts =
        List.fold_left
          (fun acc (f : Truth.fn_truth) ->
            acc + if f.has_fde then List.length f.parts - 1 else 0)
          0 b.truth.fns
      in
      check Alcotest.int "FDE count = funcs-with-fde + cold parts"
        (List.length with_fde + cold_parts)
        (List.length fdes);
      (* every non-broken FDE pc_begin is a true start or a cold part *)
      let starts = Truth.start_set b.truth in
      let parts = Truth.part_starts b.truth in
      List.iter
        (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
          let ok =
            Hashtbl.mem starts fde.pc_begin
            || List.mem fde.pc_begin parts
            || List.exists
                 (fun (f : Truth.fn_truth) ->
                   (not f.has_fde) || f.start - fde.pc_begin = 3
                   (* broken FDE points 3 bytes early *))
                 b.truth.fns
          in
          if not ok then Alcotest.failf "stray FDE at %#x" fde.pc_begin)
        fdes

let test_fde_covers_non_asm () =
  let b = Lazy.force built in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let fdes = Fetch_dwarf.Eh_frame.all_fdes cies in
  let fde_begins = List.map (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.pc_begin) fdes in
  List.iter
    (fun (f : Truth.fn_truth) ->
      if f.has_fde && not f.is_assembly then
        check Alcotest.bool (f.name ^ " has FDE") true
          (List.mem f.start fde_begins))
    b.truth.fns

(* Every part of every function must decode as a clean instruction stream
   ending exactly at the part boundary. *)
let test_function_bodies_decode () =
  let b = Lazy.force built in
  let text = Option.get (Fetch_elf.Image.section b.image ".text") in
  List.iter
    (fun (f : Truth.fn_truth) ->
      List.iter
        (fun (lo, size) ->
          let rec walk addr =
            if addr < lo + size then begin
              let pos = addr - text.addr in
              match Fetch_x86.Decode.decode ~pos ~addr text.data with
              | Some (_, len) -> walk (addr + len)
              | None ->
                  (* the broken-FDE functions embed raw prefix bytes inside
                     the FDE range but not inside the function part itself *)
                  Alcotest.failf "%s: invalid instruction at %#x" f.name addr
            end
            else
              check Alcotest.int (f.name ^ " part ends on boundary") (lo + size) addr
          in
          walk lo)
        f.parts)
    b.truth.fns

let test_truth_consistency () =
  let b = Lazy.force built in
  let names = List.map (fun (f : Truth.fn_truth) -> f.name) b.truth.fns in
  check Alcotest.bool "_start present" true (List.mem "_start" names);
  check Alcotest.bool "main present" true (List.mem "main" names);
  check Alcotest.int "unreachable pair" 2
    (Truth.count_if (fun f -> f.unreachable) b.truth);
  check Alcotest.int "tail-only count" 1
    (Truth.count_if (fun f -> f.tail_only) b.truth);
  (* all starts inside text *)
  List.iter
    (fun (f : Truth.fn_truth) ->
      if f.start < b.truth.text_lo || f.start >= b.truth.text_hi then
        Alcotest.failf "%s outside text" f.name)
    b.truth.fns;
  (* parts don't overlap across functions *)
  let m = Fetch_util.Interval_map.create () in
  List.iter
    (fun (f : Truth.fn_truth) ->
      List.iter
        (fun (lo, size) ->
          if size > 0 then
            try Fetch_util.Interval_map.add m ~lo ~hi:(lo + size) f.name
            with Invalid_argument _ -> Alcotest.failf "%s overlaps" f.name)
        f.parts)
    b.truth.fns

let test_jump_tables_resolvable () =
  let b = Lazy.force built in
  List.iter
    (fun (table_addr, targets) ->
      List.iteri
        (fun i target ->
          if profile.pic_tables then begin
            match Fetch_elf.Image.read b.image ~addr:(table_addr + (4 * i)) ~len:4 with
            | Some s ->
                let off = Int32.to_int (String.get_int32_le s 0) in
                check Alcotest.int "pic entry" target (table_addr + off)
            | None -> Alcotest.fail "table read"
          end
          else
            match Fetch_elf.Image.read_u64 b.image (table_addr + (8 * i)) with
            | Some v -> check Alcotest.int "abs entry" target v
            | None -> Alcotest.fail "table read")
        targets;
      (* all targets are code addresses *)
      List.iter
        (fun t ->
          check Alcotest.bool "target in text" true
            (Fetch_elf.Image.in_exec_range b.image t))
        targets)
    b.truth.jump_tables

let test_symbols_when_not_stripped () =
  let unstripped =
    Link.build_random ~profile ~seed:999 { spec with Gen.strip = false }
  in
  let img = Result.get_ok (Fetch_elf.Decode.decode unstripped.raw) in
  let syms = Fetch_elf.Image.func_symbols img in
  check Alcotest.bool "has function symbols" true (List.length syms > 0);
  (* one symbol per function plus one per cold part *)
  let parts =
    List.fold_left
      (fun acc (f : Truth.fn_truth) -> acc + List.length f.parts)
      0 unstripped.truth.fns
  in
  check Alcotest.int "symbol count" parts (List.length syms);
  (* cold symbols exist and are false starts *)
  let cold_syms =
    List.filter
      (fun (s : Fetch_elf.Image.symbol) ->
        let n = s.sym_name in
        String.length n > 5 && String.sub n (String.length n - 5) 5 = ".cold")
      syms
  in
  let cold_parts = List.length (Truth.part_starts unstripped.truth) in
  check Alcotest.int "cold symbols" cold_parts (List.length cold_syms)

(* The emitted CFI must agree with an instruction-level simulation of the
   stack pointer: walk each rsp-complete function linearly and compare the
   oracle height against accumulated sp deltas at every instruction. *)
let test_cfi_matches_sp_simulation () =
  let b = Lazy.force built in
  let text = Option.get (Fetch_elf.Image.section b.image ".text") in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let oracle = Fetch_dwarf.Height_oracle.create cies in
  let checked = ref 0 in
  List.iter
    (fun (f : Truth.fn_truth) ->
      if f.has_fde && Fetch_dwarf.Height_oracle.complete_at oracle f.start then begin
        (* Linear walk only until the first control transfer that could
           leave the straight-line prologue region. *)
        let rec walk addr h =
          if addr < f.start + f.size then
            let pos = addr - text.addr in
            match Fetch_x86.Decode.decode ~pos ~addr text.data with
            | None -> ()
            | Some (insn, len) -> (
                (match Fetch_dwarf.Height_oracle.height_at oracle addr with
                | Some oh ->
                    incr checked;
                    if oh <> h then
                      Alcotest.failf "%s@%#x: oracle %d vs simulated %d" f.name
                        addr oh h
                | None -> ());
                match Fetch_x86.Semantics.flow insn with
                | Fetch_x86.Semantics.Fall | Fetch_x86.Semantics.Callf _ -> (
                    match Fetch_x86.Semantics.sp_delta insn with
                    | Some d -> walk (addr + len) (h - d)
                    | None -> ())
                | _ -> ())
        in
        walk f.start 0
      end)
    b.truth.fns;
  check Alcotest.bool "checked some functions" true (!checked > 50)

let suite =
  [
    Alcotest.test_case "deterministic generation" `Quick test_deterministic;
    Alcotest.test_case "built ELF round-trips" `Quick test_elf_roundtrip;
    Alcotest.test_case "eh_frame parses and matches truth" `Quick test_eh_frame_parses;
    Alcotest.test_case "FDEs cover compiled functions" `Quick test_fde_covers_non_asm;
    Alcotest.test_case "function bodies decode cleanly" `Quick test_function_bodies_decode;
    Alcotest.test_case "ground truth is consistent" `Quick test_truth_consistency;
    Alcotest.test_case "jump tables resolvable" `Quick test_jump_tables_resolvable;
    Alcotest.test_case "symbols when not stripped" `Quick test_symbols_when_not_stripped;
    Alcotest.test_case "CFI heights match sp simulation" `Quick test_cfi_matches_sp_simulation;
  ]

(* --- .eh_frame_hdr and C++ metadata in generated binaries --- *)

let test_eh_frame_hdr_in_binary () =
  let b = Lazy.force built in
  match Fetch_dwarf.Eh_frame_hdr.of_image b.image with
  | Error e -> Alcotest.failf "hdr: %s" e
  | Ok None -> Alcotest.fail "no .eh_frame_hdr section"
  | Ok (Some h) ->
      check Alcotest.int "points at .eh_frame" Link.eh_frame_base h.eh_frame_ptr;
      (* the search table finds an FDE for every FDE-covered function *)
      List.iter
        (fun (f : Truth.fn_truth) ->
          if f.has_fde then
            match Fetch_dwarf.Eh_frame_hdr.search h f.start with
            | Some _ -> ()
            | None -> Alcotest.failf "%s missing from eh_frame_hdr" f.name)
        b.truth.fns

let test_cxx_personality_and_lsda () =
  (* built with cxx = true: CIEs must carry the personality and some FDEs
     an LSDA into .gcc_except_table *)
  let b = Lazy.force built in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let pers =
    List.find_map (fun (c : Fetch_dwarf.Eh_frame.cie) -> c.personality) cies
  in
  check Alcotest.bool "personality present" true (pers <> None);
  let pers_addr = Option.get pers in
  let gxx =
    List.find
      (fun (f : Truth.fn_truth) -> f.name = "__gxx_personality_v0")
      b.truth.fns
  in
  check Alcotest.int "personality = __gxx_personality_v0" gxx.start pers_addr;
  let sect = Fetch_elf.Image.section b.image ".gcc_except_table" in
  check Alcotest.bool "except table present" true (sect <> None);
  let s = Option.get sect in
  let lsdas =
    List.filter_map
      (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.lsda)
      (Fetch_dwarf.Eh_frame.all_fdes cies)
  in
  check Alcotest.bool "some FDEs have LSDAs" true (lsdas <> []);
  List.iter
    (fun l ->
      if l < s.addr || l >= s.addr + String.length s.data then
        Alcotest.failf "LSDA %#x outside .gcc_except_table" l)
    lsdas

let suite =
  suite
  @ [
      Alcotest.test_case ".eh_frame_hdr covers all FDE functions" `Quick
        test_eh_frame_hdr_in_binary;
      Alcotest.test_case "C++ personality and LSDAs" `Quick
        test_cxx_personality_and_lsda;
    ]

(* Corpus-level unwinder validation: for every rsp-complete function, build
   a synthetic frame at a mid-function point from the CFI rows themselves
   (return address at CFA-8, each saved register at its recorded slot) and
   check the unwinder recovers everything — tasks T1/T2/T3 end to end
   against generated CFI. *)
let test_unwind_every_complete_function () =
  let b = Lazy.force built in
  let loaded_oracle =
    Fetch_dwarf.Height_oracle.create
      (Fetch_dwarf.Eh_frame.of_image b.image).cies
  in
  let checked = ref 0 in
  List.iter
    (fun (f : Truth.fn_truth) ->
      if f.has_fde then
        match Fetch_dwarf.Height_oracle.entry_at loaded_oracle f.start with
        | Some entry when entry.complete ->
            (* pick the row with the greatest height (deepest frame) *)
            let best =
              List.fold_left
                (fun acc (row : Fetch_dwarf.Cfa_table.row) ->
                  match
                    Fetch_dwarf.Cfa_table.height_at entry.rows row.loc
                  with
                  | Some h -> (
                      match acc with
                      | Some (_, bh) when bh >= h -> acc
                      | _ -> Some (row, h))
                  | None -> acc)
                None entry.rows
            in
            (match best with
            | None -> ()
            | Some (row, h) ->
                let pc = f.start + row.loc in
                let rsp = 0x7fff0000 in
                let cfa = rsp + h + 8 in
                let ra = 0x404040 in
                let mem = Hashtbl.create 8 in
                Hashtbl.replace mem (cfa - 8) ra;
                let expected_regs = ref [] in
                List.iter
                  (fun (reg, rule) ->
                    match rule with
                    | Fetch_dwarf.Cfa_table.Saved_at_cfa off when reg <> 16 ->
                        let v = 0x1000 + reg in
                        Hashtbl.replace mem (cfa + off) v;
                        expected_regs := (reg, v) :: !expected_regs
                    | _ -> ())
                  row.regs;
                let machine =
                  {
                    Fetch_dwarf.Unwind.pc;
                    regs = [ (Fetch_dwarf.Cfa_table.dw_rsp, rsp) ];
                    read_u64 = (fun a -> Hashtbl.find_opt mem a);
                  }
                in
                match Fetch_dwarf.Unwind.step loaded_oracle machine with
                | Error _ -> Alcotest.failf "%s: unwind failed at +%d" f.name row.loc
                | Ok frame ->
                    incr checked;
                    check Alcotest.int (f.name ^ " cfa") cfa frame.cfa;
                    check Alcotest.int (f.name ^ " ra") ra frame.return_address;
                    List.iter
                      (fun (reg, v) ->
                        check (Alcotest.option Alcotest.int)
                          (Printf.sprintf "%s r%d" f.name reg)
                          (Some v)
                          (List.assoc_opt reg frame.caller_regs))
                      !expected_regs)
        | _ -> ())
    b.truth.fns;
  check Alcotest.bool "validated many frames" true (!checked > 20)

let suite =
  suite
  @ [
      Alcotest.test_case "unwind every complete function" `Quick
        test_unwind_every_complete_function;
    ]

(* LSDA call-site tables in generated C++ binaries: every LSDA parses, its
   call sites and landing pads lie inside the owning function, and the
   landing pads are invisible to recursive disassembly (reachable only via
   the unwinder). *)
let test_lsda_call_sites () =
  let b = Lazy.force built in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let except =
    match Fetch_elf.Image.section b.image ".gcc_except_table" with
    | Some s -> s
    | None -> Alcotest.fail "no .gcc_except_table"
  in
  let parsed = ref 0 in
  List.iter
    (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
      match fde.lsda with
      | None -> ()
      | Some addr -> (
          if addr < except.addr || addr >= except.addr + String.length except.data
          then Alcotest.failf "LSDA %#x outside .gcc_except_table" addr;
          let off = addr - except.addr in
          match
            Fetch_dwarf.Lsda.decode
              (String.sub except.data off (String.length except.data - off))
          with
          | Error e -> Alcotest.failf "LSDA parse: %s" e
          | Ok lsda ->
              incr parsed;
              check Alcotest.bool "has call sites" true (lsda.call_sites <> []);
              List.iter
                (fun (cs : Fetch_dwarf.Lsda.call_site) ->
                  check Alcotest.bool "site in range" true
                    (cs.cs_start >= 0 && cs.cs_start + cs.cs_len <= fde.pc_range);
                  check Alcotest.bool "lp in range" true
                    (cs.landing_pad > 0 && cs.landing_pad < fde.pc_range))
                lsda.call_sites))
    (Fetch_dwarf.Eh_frame.all_fdes cies);
  check Alcotest.bool "some LSDAs" true (!parsed > 0)

let test_landing_pads_unreachable_by_cfg () =
  let b = Lazy.force built in
  let loaded = Fetch_analysis.Loaded.load (Fetch_elf.Image.strip b.image) in
  let res = Fetch_analysis.Recursive.run loaded ~seeds:loaded.fde_starts in
  let cies = (Fetch_dwarf.Eh_frame.of_image b.image).cies in
  let except = Option.get (Fetch_elf.Image.section b.image ".gcc_except_table") in
  let checked = ref 0 in
  List.iter
    (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
      match fde.lsda with
      | None -> ()
      | Some addr ->
          let off = addr - except.addr in
          let lsda =
            Result.get_ok
              (Fetch_dwarf.Lsda.decode
                 (String.sub except.data off (String.length except.data - off)))
          in
          List.iter
            (fun (cs : Fetch_dwarf.Lsda.call_site) ->
              incr checked;
              let lp = fde.pc_begin + cs.landing_pad in
              check Alcotest.bool "landing pad not disassembled" false
                (Fetch_util.Interval_map.mem res.insn_spans lp);
              (* but it is real code *)
              check Alcotest.bool "landing pad decodes" true
                (Fetch_analysis.Loaded.insn_at loaded lp <> None))
            lsda.call_sites)
    (Fetch_dwarf.Eh_frame.all_fdes cies);
  check Alcotest.bool "checked landing pads" true (!checked > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "LSDA call sites well-formed" `Quick test_lsda_call_sites;
      Alcotest.test_case "landing pads outside the CFG" `Quick
        test_landing_pads_unreachable_by_cfg;
    ]
