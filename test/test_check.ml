(* Tests for fetch.check: the shared worklist dataflow engine (merge
   disciplines, fuel, fatal verdicts, edge hooks) and the cross-layer
   consistency linter (each rule against a fabricated inconsistency). *)

open Fetch_x86
open Fetch_analysis
module I = Insn
module Dataflow = Fetch_check.Dataflow
module Lint = Fetch_check.Lint
module Finding = Fetch_check.Finding

let check = Alcotest.check

(* Hand-assemble a tiny image: text at 0x1000 (same shape as the
   analysis tests). *)
let image_of items =
  let asm = Asm.assemble ~base:0x1000 items in
  let open Fetch_elf.Image in
  let sections =
    [
      {
        sec_name = ".text";
        kind = Progbits;
        flags = shf_alloc lor shf_execinstr;
        addr = 0x1000;
        data = asm.code;
        addralign = 16;
        entsize = 0;
      };
    ]
  in
  ({ entry = 0x1000; sections; symbols = [] }, asm)

let label asm l = Asm.label_addr asm l

let loaded_of items =
  let img, asm = image_of items in
  (Loaded.load img, asm)

(* --- the engine, on a path-counting lattice ---

   State counts NOPs along the path; join takes the minimum, so the two
   merge disciplines give observably different answers at a merge point:
   First_write_wins keeps whichever path arrived first, Join_fixpoint
   settles on the minimum over all paths. *)
module Count = struct
  type state = int
  type fatal = int  (** address the analysis aborted at *)

  let equal = Int.equal
  let join = min
  let widen ~old:_ _ = -1

  let transfer ~addr ~len:_ insn st =
    match insn with
    | I.Nop _ -> Dataflow.Step (st + 1)
    | I.Ud2 -> Dataflow.Fatal addr
    | _ -> Dataflow.Step st
end

module CS = Dataflow.Make (Count)

let prog_of loaded =
  { Dataflow.insn_at = Loaded.insn_at loaded; in_text = Loaded.in_text loaded }

(* Diamond: the left path counts two NOPs, the right path none; both end
   with an explicit jump to [merge]. *)
let diamond =
  [
    Asm.Label "f";
    Asm.I (I.Test (I.W64, Reg.Rdi, Reg.Rdi));
    Asm.I (I.Jcc (I.E, I.To_label "left"));
    Asm.I (I.Jmp (I.To_label "merge"));
    Asm.Label "left";
    Asm.I (I.Nop 1);
    Asm.I (I.Nop 1);
    Asm.I (I.Jmp (I.To_label "merge"));
    Asm.Label "merge";
    Asm.I I.Ret;
  ]

let test_engine_first_write_wins () =
  let loaded, asm = loaded_of diamond in
  let sol =
    CS.solve (prog_of loaded) CS.default_policy ~merge:Dataflow.First_write_wins
      ~entry:(label asm "f") ~init:0 ()
  in
  (* breadth-first: the taken (left) edge is enqueued before the
     fallthrough, so the 2-NOP path reaches [merge] first and later
     arrivals are discarded *)
  check (Alcotest.option Alcotest.int) "first arrival kept" (Some 2)
    (Hashtbl.find_opt sol.CS.states (label asm "merge"));
  check Alcotest.int "four blocks walked" 4 sol.CS.blocks_walked;
  check Alcotest.bool "not exhausted" false sol.CS.exhausted;
  check (Alcotest.option Alcotest.int) "no fatal" None sol.CS.fatal

let test_engine_join_fixpoint () =
  let loaded, asm = loaded_of diamond in
  let sol =
    CS.solve (prog_of loaded) CS.default_policy ~merge:Dataflow.Join_fixpoint
      ~entry:(label asm "f") ~init:0 ()
  in
  (* the join (min) over both paths survives regardless of arrival order *)
  check (Alcotest.option Alcotest.int) "joined over both paths" (Some 0)
    (Hashtbl.find_opt sol.CS.states (label asm "merge"));
  check Alcotest.bool "at least one in-state update" true (sol.CS.joins >= 1)

let test_engine_fatal_stops () =
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I (I.Nop 1);
        Asm.Label "bad";
        Asm.I I.Ud2;
        Asm.I (I.Nop 1);
      ]
  in
  let sol =
    CS.solve (prog_of loaded) CS.default_policy ~merge:Dataflow.First_write_wins
      ~entry:(label asm "f") ~init:0 ()
  in
  check (Alcotest.option Alcotest.int) "fatal at ud2" (Some (label asm "bad"))
    sol.CS.fatal

let test_engine_fuel_exhaustion () =
  let loaded, asm =
    loaded_of
      (Asm.Label "f"
      :: List.init 8 (fun _ -> Asm.I (I.Nop 1))
      @ [ Asm.I I.Ret ])
  in
  let sol =
    CS.solve ~max_block_insns:4 (prog_of loaded) CS.default_policy
      ~merge:Dataflow.First_write_wins ~entry:(label asm "f") ~init:0 ()
  in
  check Alcotest.bool "fuel exhaustion reported" true sol.CS.exhausted;
  check Alcotest.int "stopped at the budget" 4 sol.CS.steps

let test_engine_edge_state_resets () =
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Nop 1);
      Asm.I (I.Nop 1);
      Asm.I (I.Jmp (I.To_label "b"));
      Asm.Label "b";
      Asm.I I.Ret;
    ]
  in
  let loaded, asm = loaded_of items in
  let solve policy =
    CS.solve (prog_of loaded) policy ~merge:Dataflow.First_write_wins
      ~entry:(label asm "f") ~init:0 ()
  in
  let plain = solve CS.default_policy in
  check (Alcotest.option Alcotest.int) "state crosses the edge" (Some 2)
    (Hashtbl.find_opt plain.CS.states (label asm "b"));
  let reset =
    solve
      { CS.default_policy with edge_state = (fun ~src:_ ~dst:_ _ -> 0) }
  in
  check (Alcotest.option Alcotest.int) "edge hook reset the state" (Some 0)
    (Hashtbl.find_opt reset.CS.states (label asm "b"))

let test_engine_undecodable_policy () =
  let loaded, asm =
    loaded_of [ Asm.Label "f"; Asm.I (I.Nop 1); Asm.Raw "\xff\xff" ]
  in
  let policy =
    { CS.default_policy with undecodable = (fun addr -> Some addr) }
  in
  let sol =
    CS.solve (prog_of loaded) policy ~merge:Dataflow.First_write_wins
      ~entry:(label asm "f") ~init:0 ()
  in
  check (Alcotest.option Alcotest.int) "undecodable byte is fatal"
    (Some (label asm "f" + 1))
    sol.CS.fatal

(* --- §IV-E on the engine: caller-saved registers die at call sites --- *)

let validate_items items =
  let loaded, asm = loaded_of items in
  (Callconv.validate loaded (label asm "f"), asm)

let test_callconv_call_clobbers_caller_saved () =
  (* r10 is live and initialized before the call, but caller-saved:
     reading it after the call is a violation *)
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W64, I.Reg Reg.R10, I.Imm 7));
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rdx, I.Reg Reg.R10));
        Asm.I (I.Call (I.To_label "g"));
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.R10));
        Asm.I I.Ret;
        Asm.Label "g";
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "stale r10 read rejected" true (v = Callconv.Invalid)

let test_callconv_callee_saved_survives_call () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rbx, I.Imm 7));
        Asm.I (I.Call (I.To_label "g"));
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rbx));
        Asm.I I.Ret;
        Asm.Label "g";
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "rbx survives the call" true (v = Callconv.Valid)

(* --- the linter, rule by rule, against fabricated views --- *)

let lint_view ?(funcs = []) ?(fdes = []) ?(complete_cfi = [])
    ?(oracle_height = fun _ -> None) ?(callconv_ok = fun _ -> true) loaded
    (res : Recursive.result) =
  {
    Lint.insn_at = Loaded.insn_at loaded;
    in_text = Loaded.in_text loaded;
    funcs;
    insn_spans = res.Recursive.insn_spans;
    fdes;
    complete_cfi;
    oracle_height;
    callconv_ok;
    call_returns = (fun ~site:_ ~target:_ -> true);
    resolve_indirect = (fun ~site:_ ~window:_ _ -> None);
  }

let findings_of rule fs = List.filter (fun f -> f.Finding.rule = rule) fs

let blocks_of (res : Recursive.result) entry =
  (Hashtbl.find res.Recursive.funcs entry).Recursive.blocks

let test_lint_jump_mid_insn () =
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Imm 0x11223344));
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  (* fabricate a jump landing inside the 7-byte mov at [f] *)
  let funcs =
    [ { Lint.entry = fa; blocks = blocks_of res fa; jumps = [ (fa, fa + 3) ] } ]
  in
  match findings_of "jump-mid-insn" (Lint.run (lint_view ~funcs loaded res)) with
  | [ f ] ->
      check Alcotest.bool "error severity" true (f.severity = Finding.Error);
      check Alcotest.int "at the landing address" (fa + 3) f.addr;
      check (Alcotest.option Alcotest.int) "site recorded" (Some fa) f.related
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_func_overlap_disagreeing () =
  (* [f] decodes a 10-byte movabs whose immediate bytes are themselves a
     valid instruction stream, claimed as a second function [g]: the
     overlap decodes with different boundaries *)
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.Raw "\x48\xb8";
        (* movabs rax, imm64; the 8 immediate bytes follow *)
        Asm.Label "g";
        Asm.I (I.Nop 4);
        Asm.I (I.Nop 3);
        Asm.I I.Ret;
        Asm.Label "fend";
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" and ga = label asm "g" in
  let fend = label asm "fend" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let funcs =
    [
      { Lint.entry = fa; blocks = [ (fa, fend + 1) ]; jumps = [] };
      { Lint.entry = ga; blocks = [ (ga, ga + 8) ]; jumps = [] };
    ]
  in
  match findings_of "func-overlap" (Lint.run (lint_view ~funcs loaded res)) with
  | [ f ] ->
      check Alcotest.bool "error severity" true (f.severity = Finding.Error);
      check Alcotest.int "at the overlap start" ga f.addr
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_func_overlap_agreeing () =
  (* two functions sharing an identical tail block: Info, not Error *)
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I I.Ret;
        Asm.Label "g";
        Asm.I I.Ret;
        Asm.Label "t";
        Asm.I (I.Nop 1);
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" and ga = label asm "g" and ta = label asm "t" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let funcs =
    [
      { Lint.entry = fa; blocks = [ (fa, fa + 1); (ta, ta + 2) ]; jumps = [] };
      { Lint.entry = ga; blocks = [ (ga, ga + 1); (ta, ta + 2) ]; jumps = [] };
    ]
  in
  match findings_of "func-overlap" (Lint.run (lint_view ~funcs loaded res)) with
  | [ f ] ->
      check Alcotest.bool "info severity" true (f.severity = Finding.Info);
      check Alcotest.int "at the shared block" ta f.addr
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_jump_mid_func () =
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I (I.Jmp (I.To_label "gmid"));
        Asm.Label "g";
        Asm.I (I.Nop 1);
        Asm.Label "gmid";
        Asm.I (I.Nop 1);
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" and ga = label asm "g" in
  let gm = label asm "gmid" in
  let res = Recursive.run loaded ~seeds:[ fa; ga ] in
  let funcs =
    [
      { Lint.entry = fa; blocks = [ (fa, ga) ]; jumps = [ (fa, gm) ] };
      { Lint.entry = ga; blocks = [ (ga, gm + 2) ]; jumps = [] };
    ]
  in
  match findings_of "jump-mid-func" (Lint.run (lint_view ~funcs loaded res)) with
  | [ f ] ->
      check Alcotest.bool "warning severity" true (f.severity = Finding.Warning);
      check Alcotest.int "at the jump site" fa f.addr;
      check (Alcotest.option Alcotest.int) "target recorded" (Some gm) f.related
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_fde_unreached () =
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I I.Ret;
        Asm.Align 16;
        Asm.Label "ghost";
        Asm.Raw (String.make 16 '\xcc');
      ]
  in
  let fa = label asm "f" and gh = label asm "ghost" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  (* one FDE fully decoded, one covering bytes nobody ever decoded *)
  let fdes = [ (fa, fa + 1); (gh, gh + 16) ] in
  match findings_of "fde-unreached" (Lint.run (lint_view ~fdes loaded res)) with
  | [ f ] ->
      check Alcotest.bool "warning severity" true (f.severity = Finding.Warning);
      check Alcotest.int "at the FDE start" gh f.addr
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_fde_partially_reached () =
  (* decoded ret + 15 undecoded padding bytes under one FDE: partial
     coverage downgrades to Info (the landing-pad shape) *)
  let loaded, asm =
    loaded_of
      [ Asm.Label "f"; Asm.I I.Ret; Asm.Raw (String.make 15 '\xcc') ]
  in
  let fa = label asm "f" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let fdes = [ (fa, fa + 16) ] in
  match findings_of "fde-unreached" (Lint.run (lint_view ~fdes loaded res)) with
  | [ f ] -> check Alcotest.bool "info severity" true (f.severity = Finding.Info)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_start_callconv () =
  let loaded, asm = loaded_of [ Asm.Label "f"; Asm.I I.Ret ] in
  let fa = label asm "f" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let funcs = [ { Lint.entry = fa; blocks = blocks_of res fa; jumps = [] } ] in
  let view = lint_view ~funcs ~callconv_ok:(fun a -> a <> fa) loaded res in
  match findings_of "start-callconv" (Lint.run view) with
  | [ f ] ->
      check Alcotest.bool "warning severity" true (f.severity = Finding.Warning);
      check Alcotest.int "at the start" fa f.addr
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_height_mismatch () =
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I (I.Push Reg.Rbx);
        Asm.Label "body";
        Asm.I (I.Nop 1);
        Asm.I (I.Pop Reg.Rbx);
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" and body = label asm "body" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let hi = fa + 4 in
  let funcs = [ { Lint.entry = fa; blocks = [ (fa, hi) ]; jumps = [] } ] in
  (* a lying oracle: claims height 0 after the push (statically 8) *)
  let oracle a = if a = body then Some 0 else None in
  let view =
    lint_view ~funcs ~complete_cfi:[ (fa, hi) ] ~oracle_height:oracle loaded res
  in
  match findings_of "height-mismatch" (Lint.run view) with
  | [ f ] ->
      check Alcotest.bool "warning severity" true (f.severity = Finding.Warning);
      check Alcotest.int "at the disagreeing address" body f.addr;
      check (Alcotest.option Alcotest.int) "function recorded" (Some fa)
        f.related
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_truthful_oracle_quiet () =
  (* same code, an oracle that tells the truth: no finding *)
  let loaded, asm =
    loaded_of
      [
        Asm.Label "f";
        Asm.I (I.Push Reg.Rbx);
        Asm.Label "body";
        Asm.I (I.Nop 1);
        Asm.I (I.Pop Reg.Rbx);
        Asm.I I.Ret;
      ]
  in
  let fa = label asm "f" and body = label asm "body" in
  let res = Recursive.run loaded ~seeds:[ fa ] in
  let hi = fa + 4 in
  let funcs = [ { Lint.entry = fa; blocks = [ (fa, hi) ]; jumps = [] } ] in
  let oracle a = if a = body then Some 8 else None in
  let view =
    lint_view ~funcs ~complete_cfi:[ (fa, hi) ] ~oracle_height:oracle loaded res
  in
  check Alcotest.int "no findings" 0 (List.length (Lint.run view))

(* --- end to end: clean pipeline runs produce no Error findings --- *)

let test_lint_clean_corpora () =
  List.iter
    (fun (compiler, opt, seed) ->
      let profile = Fetch_synth.Profile.make compiler opt in
      let built =
        Fetch_synth.Link.build_random ~profile ~seed
          { Fetch_synth.Gen.default_spec with n_funcs = 40 }
      in
      let r = Fetch_core.Pipeline.run built.image in
      let findings = Fetch_core.Lint.run r in
      let errors = List.filter (fun f -> f.Finding.severity = Finding.Error) findings in
      List.iter (fun f -> Printf.eprintf "%s\n" (Finding.to_string f)) errors;
      check Alcotest.int
        (Printf.sprintf "no errors (seed %d)" seed)
        0 (List.length errors))
    [
      (Fetch_synth.Profile.Synthgcc, Fetch_synth.Profile.O2, 5);
      (Fetch_synth.Profile.Synthllvm, Fetch_synth.Profile.O3, 9);
    ]

(* Reports must be byte-stable however the findings were produced:
   [compare] is a total order (antisymmetric down to the last field), so
   sorting any permutation yields the same list. *)
let test_finding_compare_total_order () =
  let f rule severity addr related message =
    { Finding.rule; severity; addr; related; message }
  in
  let findings =
    [
      f "b" Finding.Error 5 None "x";
      f "a" Finding.Error 5 None "x";
      f "a" Finding.Warning 3 None "x";
      f "a" Finding.Warning 3 None "w";
      f "a" Finding.Warning 3 (Some 1) "w";
      f "a" Finding.Info 9 None "x";
    ]
  in
  let sorted = List.sort Finding.compare findings in
  check Alcotest.bool "permutations sort identically" true
    (List.sort Finding.compare (List.rev findings) = sorted);
  (* pairwise antisymmetry: distinct findings never compare equal *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j && Finding.compare a b = 0 then
            Alcotest.failf "distinct findings compare equal (%d, %d)" i j)
        findings)
    findings;
  check Alcotest.bool "severity dominates" true
    ((List.hd sorted).Finding.severity = Finding.Error)

let suite =
  [
    Alcotest.test_case "finding compare is a total order" `Quick
      test_finding_compare_total_order;
    Alcotest.test_case "engine: first write wins" `Quick test_engine_first_write_wins;
    Alcotest.test_case "engine: join fixpoint" `Quick test_engine_join_fixpoint;
    Alcotest.test_case "engine: fatal verdict stops the solve" `Quick test_engine_fatal_stops;
    Alcotest.test_case "engine: fuel exhaustion reported" `Quick test_engine_fuel_exhaustion;
    Alcotest.test_case "engine: edge-state hook" `Quick test_engine_edge_state_resets;
    Alcotest.test_case "engine: undecodable policy" `Quick test_engine_undecodable_policy;
    Alcotest.test_case "callconv: call clobbers caller-saved" `Quick test_callconv_call_clobbers_caller_saved;
    Alcotest.test_case "callconv: callee-saved survives call" `Quick test_callconv_callee_saved_survives_call;
    Alcotest.test_case "lint: jump-mid-insn" `Quick test_lint_jump_mid_insn;
    Alcotest.test_case "lint: func-overlap (disagreeing)" `Quick test_lint_func_overlap_disagreeing;
    Alcotest.test_case "lint: func-overlap (agreeing)" `Quick test_lint_func_overlap_agreeing;
    Alcotest.test_case "lint: jump-mid-func" `Quick test_lint_jump_mid_func;
    Alcotest.test_case "lint: fde-unreached" `Quick test_lint_fde_unreached;
    Alcotest.test_case "lint: fde partially reached" `Quick test_lint_fde_partially_reached;
    Alcotest.test_case "lint: start-callconv" `Quick test_lint_start_callconv;
    Alcotest.test_case "lint: height-mismatch" `Quick test_lint_height_mismatch;
    Alcotest.test_case "lint: truthful oracle stays quiet" `Quick test_lint_truthful_oracle_quiet;
    Alcotest.test_case "lint: clean corpora, zero errors" `Quick test_lint_clean_corpora;
  ]
