(* Integration tests for fetch.core: the FETCH pipeline against generated
   binaries with known ground truth.  These encode the paper's headline
   claims as assertions. *)

open Fetch_synth
open Fetch_core

let check = Alcotest.check

let profile = Profile.make Profile.Synthgcc Profile.O2

let spec =
  {
    Gen.default_spec with
    n_funcs = 50;
    n_asm_called = 2;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
    cxx = false;
  }

let built = lazy (Link.build_random ~profile ~seed:2024 spec)

let sort = List.sort_uniq compare

let metrics (truth : Truth.t) detected =
  let truth_starts = sort (Truth.starts truth) in
  let detected = sort detected in
  let fp = List.filter (fun d -> not (List.mem d truth_starts)) detected in
  let fn = List.filter (fun t -> not (List.mem t detected)) truth_starts in
  (fp, fn)

let name_of (truth : Truth.t) addr =
  match Truth.find_by_addr truth addr with
  | Some f -> f.name
  | None -> Printf.sprintf "%#x" addr

(* The paper's harmless miss classes (§IV-E, §V-C): functions reachable by
   nothing, functions reachable only via tail calls, and true tail-call
   targets Algorithm 1 merged into their single caller.  For the merged
   class we verify the harmlessness argument: the function is referenced
   only by jumps (so merging it is equivalent to inlining). *)
(* The paper's residual false-positive class (§V-C): a cold part whose
   function re-bases the CFA on rbp, so Algorithm 1 conservatively skips
   it (2,659 of 34,772 in the paper). *)
let acceptable_residual_fp (r : Pipeline.result) (truth : Truth.t) addr =
  List.mem addr (Truth.part_starts truth)
  && not (Fetch_dwarf.Height_oracle.complete_at r.loaded.oracle addr)

let acceptable_miss (r : Pipeline.result) (truth : Truth.t) addr =
  match Truth.find_by_addr truth addr with
  | None -> false
  | Some f ->
      f.unreachable || f.tail_only
      ||
      let merged =
        match r.tailcall with
        | Some o -> List.mem_assoc addr o.merges
        | None -> false
      in
      merged
      &&
      let refs = Refs.collect r.loaded r.rec_result in
      List.for_all
        (function
          | Refs.Jump_target _ -> true
          | Refs.Data_pointer _ | Refs.Code_constant _ | Refs.Call_target _ ->
              false)
        (Refs.refs_to refs addr)

let test_fde_only () =
  let b = Lazy.force built in
  let loaded = Fetch_analysis.Loaded.load b.image in
  (* Q1: FDE starts alone cover every compiled function; the misses are
     exactly the assembly functions without FDEs. *)
  let fp, fn = metrics b.truth loaded.fde_starts in
  (* FPs from FDEs: the cold parts (non-contiguous functions) *)
  let parts = sort (Truth.part_starts b.truth) in
  List.iter
    (fun a ->
      if not (List.mem a parts) then
        (* allow the 3-byte-early broken FDEs *)
        if
          not
            (List.exists
               (fun (f : Truth.fn_truth) -> f.start - a = 3)
               b.truth.fns)
        then Alcotest.failf "unexpected FDE FP at %s" (name_of b.truth a))
    fp;
  List.iter
    (fun a ->
      match Truth.find_by_addr b.truth a with
      | Some f when not f.has_fde -> ()
      | Some f -> Alcotest.failf "FDE missed %s which has an FDE" f.name
      | None -> Alcotest.fail "impossible")
    fn

let test_full_pipeline_accuracy () =
  let b = Lazy.force built in
  let r = Pipeline.run b.image in
  let fp, fn = metrics b.truth r.starts in
  (* FETCH: no false positives beyond the documented residual class *)
  List.iter
    (fun a ->
      if not (acceptable_residual_fp r b.truth a) then
        Alcotest.failf "FETCH FP at %s" (name_of b.truth a))
    fp;
  (* The only tolerated misses: unreachable assembly functions (and their
     successors), tail-call-only-reachable functions, and harmless
     Algorithm-1 merges (§IV-E / §V-C). *)
  List.iter
    (fun a ->
      if not (acceptable_miss r b.truth a) then
        Alcotest.failf "FETCH missed %s" (name_of b.truth a))
    fn

let test_pipeline_on_encoded_bytes () =
  let b = Lazy.force built in
  (* run from raw ELF bytes: exercises the decoder path *)
  match Pipeline.run_bytes b.raw with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok r ->
      let r' = Pipeline.run b.image in
      check (Alcotest.list Alcotest.int) "same result from bytes" r'.starts r.starts

let test_algorithm1_removes_cold_fps () =
  let b = Lazy.force built in
  let r = Pipeline.run b.image in
  let outcome = Option.get r.tailcall in
  let parts = sort (Truth.part_starts b.truth) in
  (* every rsp-framed cold part must have been merged away *)
  let merged_addrs = List.map fst outcome.merges in
  let residual =
    List.filter (fun p -> not (List.mem p merged_addrs)) parts
  in
  (* residual cold parts must come from rbp-framed (incomplete CFI) fns *)
  List.iter
    (fun p ->
      if
        Fetch_dwarf.Height_oracle.complete_at r.loaded.oracle p
        && List.mem p r.starts
      then Alcotest.failf "unmerged complete-CFI cold part at %#x" p)
    residual;
  (* merging only ever removes true starts of the harmless class *)
  let truth_starts = Truth.starts b.truth in
  List.iter
    (fun (m, _) ->
      if List.mem m truth_starts && not (acceptable_miss r b.truth m) then
        Alcotest.failf "Algorithm 1 merged true function %s" (name_of b.truth m))
    outcome.merges

let test_tail_calls_detected () =
  let b = Lazy.force built in
  let r = Pipeline.run b.image in
  let outcome = Option.get r.tailcall in
  check Alcotest.bool "some tail calls found" true (outcome.tail_calls <> []);
  (* every detected tail-call target is a true function start *)
  let truth_starts = Truth.starts b.truth in
  List.iter
    (fun (_, t) ->
      if not (List.mem t truth_starts) then
        Alcotest.failf "false tail call target %#x" t)
    outcome.tail_calls

let test_broken_fde_rejected () =
  let spec' = { spec with Gen.n_broken_fde = 1 } in
  let b = Link.build_random ~profile ~seed:31337 spec' in
  let r = Pipeline.run b.image in
  check Alcotest.int "one invalid FDE start" 1 (List.length r.invalid_fde_starts);
  let bad = List.hd r.invalid_fde_starts in
  check Alcotest.bool "rejected start is not a true start" false
    (List.mem bad (Truth.starts b.truth));
  (* and the real entry behind it is recovered (pointer-referenced) *)
  let broken_fn =
    List.find (fun (f : Truth.fn_truth) -> f.start = bad + 3) b.truth.fns
  in
  check Alcotest.bool "real entry recovered" true
    (List.mem broken_fn.start r.starts);
  let fp, _ = metrics b.truth r.starts in
  check (Alcotest.list Alcotest.int) "still no FPs" [] fp

let test_xref_finds_pointer_only_functions () =
  let b = Lazy.force built in
  (* without xref, pointer-only asm functions are missed *)
  let no_xref =
    Pipeline.run ~config:{ Pipeline.default_config with xref = false } b.image
  in
  let with_xref = Pipeline.run b.image in
  let ptr_fns =
    List.filter
      (fun (f : Truth.fn_truth) ->
        (not f.has_fde)
        && String.length f.name >= 7
        && String.sub f.name 0 7 = "asm_ptr")
      b.truth.fns
  in
  check Alcotest.bool "test corpus has pointer-only fns" true (ptr_fns <> []);
  List.iter
    (fun (f : Truth.fn_truth) ->
      check Alcotest.bool (f.name ^ " missed without xref") false
        (List.mem f.start no_xref.starts);
      check Alcotest.bool (f.name ^ " found with xref") true
        (List.mem f.start with_xref.starts))
    ptr_fns

let test_jump_tables_followed () =
  let b = Lazy.force built in
  let r = Pipeline.run b.image in
  (* every ground-truth jump table was resolved by some function *)
  let resolved =
    Hashtbl.fold
      (fun _ (f : Fetch_analysis.Recursive.func) acc -> f.table_targets @ acc)
      r.rec_result.funcs []
  in
  List.iter
    (fun (table_addr, targets) ->
      match List.assoc_opt table_addr resolved with
      | Some ts ->
          check (Alcotest.list Alcotest.int) "table targets"
            (sort targets) (sort ts)
      | None -> Alcotest.failf "jump table at %#x unresolved" table_addr)
    b.truth.jump_tables

let test_noreturn_detected () =
  let b = Lazy.force built in
  let r = Pipeline.run b.image in
  let noret = r.rec_result.noreturn in
  List.iter
    (fun (f : Truth.fn_truth) ->
      if f.noreturn && not f.unreachable then
        check Alcotest.bool (f.name ^ " classified noreturn") true
          (Hashtbl.mem noret f.start))
    b.truth.fns;
  (* error_like is conditionally noreturn, not plain noreturn *)
  let err = List.find (fun (f : Truth.fn_truth) -> f.name = "error_like") b.truth.fns in
  check Alcotest.bool "error_like not plain noreturn" false
    (Hashtbl.mem noret err.start);
  check Alcotest.bool "error_like conditionally noreturn" true
    (Hashtbl.mem r.rec_result.cond_noreturn err.start)

(* Run the pipeline across profiles as a smoke property: never a FP against
   truth, misses only in the documented classes. *)
let test_all_profiles_no_fp () =
  List.iter
    (fun compiler ->
      List.iter
        (fun opt ->
          let p = Profile.make compiler opt in
          let b =
            Link.build_random ~profile:p ~seed:(Hashtbl.hash (compiler, opt))
              { spec with Gen.n_funcs = 30 }
          in
          let r = Pipeline.run b.image in
          let fp, fn = metrics b.truth r.starts in
          List.iter
            (fun a ->
              if not (acceptable_residual_fp r b.truth a) then
                Alcotest.failf "%s: FP at %s" (Profile.name p)
                  (name_of b.truth a))
            fp;
          List.iter
            (fun a ->
              if not (acceptable_miss r b.truth a) then
                Alcotest.failf "%s: missed %s" (Profile.name p)
                  (name_of b.truth a))
            fn)
        Profile.all_opts)
    [ Profile.Synthgcc; Profile.Synthllvm ]

(* End-to-end decision ledger: one pipeline run under the provenance
   recorder must leave a complete chain for every verdict — an origin
   event for each seed, an [xref.accept] with its round for each
   accepted pointer, Algorithm 1 rejections with rule ids — and
   [explain] must replay them (this is what `fetch explain` prints). *)
let test_provenance_end_to_end () =
  let module Prov = Fetch_obs.Provenance in
  (* seed 2026: this corpus exercises every chain the ledger must close —
     xref acceptances, Algorithm 1 rejections, merges and tail calls *)
  let b = Link.build_random ~profile ~seed:2026 spec in
  let r, events = Prov.with_run (fun () -> Pipeline.run b.image) in
  check Alcotest.bool "recorder off again" false (Prov.enabled ());
  let of_ev ev = List.filter (fun (e : Prov.event) -> e.Prov.ev = ev) events in
  let has ev addr =
    List.exists (fun (e : Prov.event) -> e.Prov.ev = ev && e.Prov.addr = addr) events
  in
  (* every FDE start has its origin event *)
  List.iter
    (fun s ->
      if not (has "seed.fde" s) then
        Alcotest.failf "FDE start %#x has no seed.fde event" s)
    r.fde_starts;
  (* every kept start has a verdict event closing its chain *)
  List.iter
    (fun s ->
      if not (has "verdict.start" s) then
        Alcotest.failf "kept start %#x has no verdict.start event" s)
    r.starts;
  (* xref acceptances: present (the corpus has pointer-only functions),
     each carrying the accepting round and landing in the final seeds *)
  let accepts = of_ev "xref.accept" in
  check Alcotest.bool "at least one xref acceptance" true (accepts <> []);
  List.iter
    (fun (e : Prov.event) ->
      (match List.assoc_opt "round" e.Prov.fields with
      | Some (Prov.I k) when k >= 1 -> ()
      | _ -> Alcotest.failf "xref.accept %#x lacks a round >= 1" e.Prov.addr);
      if not (List.mem_assoc "via" e.Prov.fields) then
        Alcotest.failf "xref.accept %#x lacks its via origin" e.Prov.addr;
      if not (List.mem e.Prov.addr r.final_seeds) then
        Alcotest.failf "accepted pointer %#x not in final seeds" e.Prov.addr)
    accepts;
  (* §IV-E rejections carry a reason from the fixed vocabulary *)
  let reject_reasons = [ "invalid_opcode"; "mid_instruction"; "into_function"; "callconv" ] in
  List.iter
    (fun (e : Prov.event) ->
      match List.assoc_opt "reason" e.Prov.fields with
      | Some (Prov.S reason) when List.mem reason reject_reasons -> ()
      | _ -> Alcotest.failf "xref.reject %#x has no known reason" e.Prov.addr)
    (of_ev "xref.reject");
  (* Algorithm 1 rejections are present and name one of the three rules *)
  let alg1_rejects = of_ev "alg1.reject" in
  check Alcotest.bool "at least one Algorithm 1 rejection" true
    (alg1_rejects <> []);
  List.iter
    (fun (e : Prov.event) ->
      (match List.assoc_opt "rule" e.Prov.fields with
      | Some (Prov.S ("cfa_height" | "jump_only_refs" | "callconv")) -> ()
      | _ -> Alcotest.failf "alg1.reject %#x has no known rule" e.Prov.addr);
      if not (List.mem_assoc "site" e.Prov.fields) then
        Alcotest.failf "alg1.reject %#x lacks its jump site" e.Prov.addr)
    alg1_rejects;
  (* a cfa_height rejection carries the offending height operand *)
  (match
     List.find_opt
       (fun (e : Prov.event) ->
         List.assoc_opt "rule" e.Prov.fields = Some (Prov.S "cfa_height"))
       alg1_rejects
   with
  | Some e ->
      check Alcotest.bool "cfa_height carries its height" true
        (match List.assoc_opt "height" e.Prov.fields with
        | Some (Prov.I h) -> h <> 0
        | _ -> false)
  | None -> ());
  (* merged parts chain to their parent and are not kept *)
  (match r.tailcall with
  | None -> ()
  | Some o ->
      List.iter
        (fun (part, parent) ->
          match
            List.find_opt
              (fun (e : Prov.event) ->
                e.Prov.ev = "alg1.merge" && e.Prov.addr = part)
              events
          with
          | None -> Alcotest.failf "merge of %#x left no alg1.merge event" part
          | Some e ->
              check Alcotest.bool "merge names its parent" true
                (List.assoc_opt "parent" e.Prov.fields = Some (Prov.I parent));
              check Alcotest.bool "merged part not kept" false
                (List.mem part r.starts))
        o.merges);
  (* explain replays the three chains `fetch explain` must reproduce *)
  let fde_kept =
    List.find (fun s -> List.mem s r.starts) r.fde_starts
  in
  let explain addr = Prov.explain ~addr events in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check Alcotest.bool "explain: accepted FDE seed" true
    (let out = explain fde_kept in
     contains out "seed.fde"
     && contains out "verdict: detected function start");
  let accepted = (List.hd accepts).Prov.addr in
  check Alcotest.bool "explain: xref-accepted start shows its round" true
    (let out = explain accepted in
     contains out "xref.accept" && contains out "round=");
  let rejected = (List.hd alg1_rejects).Prov.addr in
  check Alcotest.bool "explain: Algorithm 1 rejection shows its rule" true
    (let out = explain rejected in
     contains out "alg1.reject" && contains out "rule=")

(* ---- incremental xref: bugfix fixtures and the differential property ---- *)

module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance
module An = Fetch_analysis
module X86 = Fetch_x86
module XI = Fetch_x86.Insn

(* Minimal hand-assembled image: text at 0x1000, optional rodata at
   0x5000 (the same shape as test_analysis, local to keep the xref
   fixtures self-contained). *)
let xref_image ?(rodata = "") items =
  let asm = X86.Asm.assemble ~base:0x1000 items in
  let open Fetch_elf.Image in
  let sections =
    [
      {
        sec_name = ".text";
        kind = Progbits;
        flags = shf_alloc lor shf_execinstr;
        addr = 0x1000;
        data = asm.code;
        addralign = 16;
        entsize = 0;
      };
    ]
    @
    if rodata = "" then []
    else
      [
        {
          sec_name = ".rodata";
          kind = Progbits;
          flags = shf_alloc;
          addr = 0x5000;
          data = rodata;
          addralign = 8;
          entsize = 0;
        };
      ]
  in
  (An.Loaded.load { entry = 0x1000; sections; symbols = [] }, asm)

let u64s vs =
  let b = Fetch_util.Byte_buf.create () in
  List.iter (fun v -> Fetch_util.Byte_buf.u64 b v) vs;
  Fetch_util.Byte_buf.contents b

let counter (rep : Obs.report) n =
  Option.value ~default:0 (List.assoc_opt n rep.Obs.counters)

(* Regression (error ii was vacuous): a data pointer into the middle of a
   committed instruction must be rejected as [mid_instruction], not fall
   through to the extents check and be misfiled as [into_function]. *)
let test_xref_mid_instruction_reject () =
  let items =
    [
      X86.Asm.Label "a";
      X86.Asm.I (XI.Mov (XI.W64, XI.Reg X86.Reg.Rax, XI.Imm 7));
      X86.Asm.I XI.Ret;
    ]
  in
  (* 0x1001 is strictly inside a's first (multi-byte) instruction *)
  let loaded, _ = xref_image ~rodata:(u64s [ 0x1001 ]) items in
  let (res, seeds'), rep =
    Obs.with_run (fun () -> Xref.detect loaded ~seeds:[ 0x1000 ])
  in
  check Alcotest.int "one fresh validation" 1
    (counter rep "xref.candidates_scanned");
  check Alcotest.int "rejected as mid_instruction" 1
    (counter rep "xref.reject.mid_instruction");
  check Alcotest.int "not misfiled as into_function" 0
    (counter rep "xref.reject.into_function");
  check Alcotest.int "nothing accepted" 0 (counter rep "xref.accepted");
  check Alcotest.bool "mid-instruction pointer not detected" false
    (List.mem 0x1001 (An.Recursive.starts res));
  check (Alcotest.list Alcotest.int) "seeds unchanged" [ 0x1000 ] seeds'

(* Regression: a pointer to an already-detected entry used to be counted
   as a scanned candidate and a mid_instruction reject every round; it is
   now skipped under its own non-§IV-E counter. *)
let test_xref_known_entry_accounting () =
  let items = [ X86.Asm.Label "a"; X86.Asm.I XI.Ret ] in
  let loaded, _ = xref_image ~rodata:(u64s [ 0x1000 ]) items in
  let (res, _), rep =
    Obs.with_run (fun () -> Xref.detect loaded ~seeds:[ 0x1000 ])
  in
  check Alcotest.int "known entry skipped, not validated" 1
    (counter rep "xref.known_entries_skipped");
  check Alcotest.int "no fresh validations" 0
    (counter rep "xref.candidates_scanned");
  check Alcotest.int "no mid_instruction inflation" 0
    (counter rep "xref.reject.mid_instruction");
  check (Alcotest.list Alcotest.int) "a detected exactly once" [ 0x1000 ]
    (An.Recursive.starts res)

(* Regression: the round budget used to exhaust silently; now it is
   announced by a counter and a ledger event carrying the pending count —
   and both strategies agree on the truncated outcome. *)
let test_xref_budget_exhaustion () =
  let items =
    [
      X86.Asm.Label "a";
      X86.Asm.I XI.Ret;
      X86.Asm.Align 16;
      X86.Asm.Label "g1";
      X86.Asm.I XI.Ret;
      X86.Asm.Align 16;
      X86.Asm.Label "g2";
      X86.Asm.I XI.Ret;
    ]
  in
  let _, asm0 = xref_image items in
  let l = X86.Asm.label_addr asm0 in
  let loaded, _ = xref_image ~rodata:(u64s [ l "g1"; l "g2" ]) items in
  let run strategy max_rounds =
    Obs.with_run (fun () ->
        Prov.with_run (fun () ->
            Xref.detect ~strategy ~max_rounds loaded ~seeds:[ l "a" ]))
  in
  let ((res, _), events), rep = run Xref.Incremental 1 in
  check Alcotest.int "one pointer accepted before the budget" 1
    (counter rep "xref.accepted");
  check Alcotest.int "exhaustion counted" 1
    (counter rep "xref.budget_exhausted");
  check Alcotest.bool "g2 left undetected by the truncated run" false
    (List.mem (l "g2") (An.Recursive.starts res));
  (match
     List.find_opt
       (fun (e : Prov.event) -> e.Prov.ev = "xref.budget_exhausted")
       events
   with
  | None -> Alcotest.fail "no xref.budget_exhausted ledger event"
  | Some e ->
      check Alcotest.bool "event names the pending candidate" true
        (e.Prov.addr = l "g2");
      check Alcotest.bool "event carries the pending count" true
        (List.assoc_opt "pending" e.Prov.fields = Some (Prov.I 1)));
  (* the rescan strategy reports the identical truncated outcome *)
  let ((res_r, _), _), rep_r = run Xref.Rescan 1 in
  check Alcotest.bool "strategies agree when truncated" true
    (An.Recursive.starts res = An.Recursive.starts res_r);
  check Alcotest.int "rescan counts the exhaustion too" 1
    (counter rep_r "xref.budget_exhausted");
  (* with the default budget both pointers land and nothing is pending *)
  let ((res_full, _), _), rep_full = run Xref.Incremental 64 in
  check Alcotest.int "full run accepts both" 2 (counter rep_full "xref.accepted");
  check Alcotest.int "full run exhausts nothing" 0
    (counter rep_full "xref.budget_exhausted");
  check Alcotest.bool "g2 detected with the full budget" true
    (List.mem (l "g2") (An.Recursive.starts res_full))

(* Regression: a decode-cache inconsistency mid-span used to abandon the
   rest of the span scan silently; now it resyncs and counts. *)
let test_refs_scan_resync () =
  let items =
    [
      X86.Asm.Label "a";
      X86.Asm.I (XI.Mov (XI.W64, XI.Reg X86.Reg.Rax, XI.Imm 7));
      X86.Asm.I XI.Ret;
    ]
  in
  let loaded, _ = xref_image items in
  let res = An.Recursive.run loaded ~seeds:[ 0x1000 ] in
  let _, rep = Obs.with_run (fun () -> Refs.collect loaded res) in
  check Alcotest.int "clean scan needs no resync" 0
    (counter rep "refs.scan_resync");
  (* poison the memoized decode under a committed span *)
  Hashtbl.replace loaded.An.Loaded.cache 0x1000 None;
  let _, rep = Obs.with_run (fun () -> Refs.collect loaded res) in
  check Alcotest.bool "poisoned decode resyncs and counts" true
    (counter rep "refs.scan_resync" >= 1)

(* Regression: extent overlap attribution used to follow hash iteration
   order; byte-wise max resolution makes the winner a function of the
   result alone, independent of insertion order. *)
let test_xref_extents_deterministic () =
  let mk entry blocks : An.Recursive.func =
    {
      entry;
      blocks;
      calls = [];
      out_jumps = [];
      all_jump_sites = [];
      table_targets = [];
      unresolved_indirect_jump = false;
      has_ret = true;
      has_indirect_call = false;
      decode_error = false;
    }
  in
  let result_of fns : An.Recursive.result =
    let funcs = Hashtbl.create 8 in
    List.iter (fun (f : An.Recursive.func) -> Hashtbl.replace funcs f.entry f) fns;
    {
      funcs;
      noreturn = Hashtbl.create 1;
      cond_noreturn = Hashtbl.create 1;
      insn_spans = Fetch_util.Interval_map.create ();
    }
  in
  let f1 = mk 0x1000 [ (0x1000, 0x1020) ]
  and f2 = mk 0x1010 [ (0x1010, 0x1030) ]
  and f3 = mk 0x1040 [ (0x1040, 0x1050) ] in
  let l1 =
    Fetch_util.Interval_map.to_list (Xref.function_extents (result_of [ f1; f2; f3 ]))
  in
  let l2 =
    Fetch_util.Interval_map.to_list (Xref.function_extents (result_of [ f3; f2; f1 ]))
  in
  check Alcotest.bool "extents independent of table order" true (l1 = l2);
  (* byte-wise max: shared bytes go to the highest entry, unshared bytes
     keep their only owner *)
  check Alcotest.bool "overlap attribution is canonical" true
    (l1
    = [
        (0x1000, 0x1010, 0x1000); (0x1010, 0x1030, 0x1010);
        (0x1040, 0x1050, 0x1040);
      ])

(* The incremental extent map grown across Xref commits must equal the
   from-scratch rebuild after every commit — this is what lets the
   Incremental strategy skip the per-round O(funcs) rebuild. *)
let test_xref_extents_incremental () =
  let b = Lazy.force built in
  let loaded = An.Loaded.load (Fetch_elf.Image.strip b.image) in
  let seeds = loaded.An.Loaded.fde_starts in
  let ext = Xref.extents_create () in
  let commits = ref 0 in
  let _res, _seeds =
    Xref.detect loaded ~seeds ~on_commit:(fun ~cand:_ res ->
        incr commits;
        let inc = Fetch_util.Interval_map.to_list (Xref.extents_refresh ext res) in
        let scratch =
          Fetch_util.Interval_map.to_list (Xref.function_extents res)
        in
        if inc <> scratch then
          Alcotest.failf "commit %d: incremental extents diverge" !commits)
  in
  check Alcotest.bool "detection committed candidates" true (!commits > 0)

(* The acceptance property of the whole refactor: the incremental engine
   and the from-scratch rescan are indistinguishable — same final seeds,
   same starts, same spans, same noreturn facts, same §IV-E counters —
   over random corpora with random FDE-seed subsets removed (removed
   seeds turn their functions into xref's problem, forcing deep
   extension chains). *)
let prop_xref_strategy_differential =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* compiler = oneofl [ Profile.Synthgcc; Profile.Synthllvm ] in
      let* n_funcs = int_range 10 40 in
      let* pointer = int_bound 3 in
      let* code_ptr = int_bound 2 in
      let* drop = int_bound 3 in
      return (seed, compiler, n_funcs, pointer, code_ptr, drop))
  in
  QCheck.Test.make ~name:"xref: incremental == rescan" ~count:10
    (QCheck.make gen
       ~print:(fun (seed, c, n, p, cp, d) ->
         Printf.sprintf "seed=%d %s n=%d ptr=%d codeptr=%d drop=%d" seed
           (Profile.compiler_name c) n p cp d))
    (fun (seed, compiler, n_funcs, pointer, code_ptr, drop) ->
      let profile = Profile.make compiler Profile.O2 in
      let spec' =
        {
          Gen.default_spec with
          n_funcs;
          n_asm_pointer = pointer;
          n_asm_code_ptr = code_ptr;
          n_asm_called = 1;
          n_asm_unreachable = 1;
        }
      in
      let b = Link.build_random ~profile ~seed spec' in
      let loaded = An.Loaded.load b.image in
      let seeds =
        List.filteri (fun i _ -> i mod 4 >= drop) loaded.An.Loaded.fde_starts
      in
      let detect strategy =
        Obs.with_run (fun () -> Xref.detect ~strategy loaded ~seeds)
      in
      let (res_i, seeds_i), rep_i = detect Xref.Incremental in
      let (res_r, seeds_r), rep_r = detect Xref.Rescan in
      let xref_counters (rep : Obs.report) =
        List.filter
          (fun (n, _) -> String.length n >= 5 && String.sub n 0 5 = "xref.")
          rep.Obs.counters
        |> List.sort compare
      in
      let keys tbl =
        List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])
      in
      seeds_i = seeds_r
      && An.Recursive.starts res_i = An.Recursive.starts res_r
      && Fetch_util.Interval_map.to_list res_i.An.Recursive.insn_spans
         = Fetch_util.Interval_map.to_list res_r.An.Recursive.insn_spans
      && keys res_i.An.Recursive.noreturn = keys res_r.An.Recursive.noreturn
      && keys res_i.An.Recursive.cond_noreturn
         = keys res_r.An.Recursive.cond_noreturn
      && xref_counters rep_i = xref_counters rep_r)

let suite =
  [
    Alcotest.test_case "FDE-only coverage (Q1)" `Quick test_fde_only;
    Alcotest.test_case "xref: mid-instruction pointer rejected" `Quick test_xref_mid_instruction_reject;
    Alcotest.test_case "xref: known entries skipped in accounting" `Quick test_xref_known_entry_accounting;
    Alcotest.test_case "xref: budget exhaustion announced" `Quick test_xref_budget_exhaustion;
    Alcotest.test_case "refs: span scan resyncs on bad decode" `Quick test_refs_scan_resync;
    Alcotest.test_case "xref: extents attribution deterministic" `Quick test_xref_extents_deterministic;
    Alcotest.test_case "xref: incremental extents == rebuild" `Quick
      test_xref_extents_incremental;
    Alcotest.test_case "provenance ledger end-to-end" `Quick test_provenance_end_to_end;
    Alcotest.test_case "full pipeline accuracy" `Quick test_full_pipeline_accuracy;
    Alcotest.test_case "pipeline from raw bytes" `Quick test_pipeline_on_encoded_bytes;
    Alcotest.test_case "Algorithm 1 merges cold parts" `Quick test_algorithm1_removes_cold_fps;
    Alcotest.test_case "tail calls detected safely" `Quick test_tail_calls_detected;
    Alcotest.test_case "broken FDE rejected and recovered" `Quick test_broken_fde_rejected;
    Alcotest.test_case "xref finds pointer-only functions" `Quick test_xref_finds_pointer_only_functions;
    Alcotest.test_case "jump tables followed" `Quick test_jump_tables_followed;
    Alcotest.test_case "noreturn analysis" `Quick test_noreturn_detected;
    Alcotest.test_case "all profiles: no FPs" `Slow test_all_profiles_no_fp;
  ]

(* Property: on arbitrary generator configurations, FETCH never reports a
   false positive and never misses a function outside the documented
   harmless classes. *)
let prop_fetch_invariants =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* compiler = oneofl [ Profile.Synthgcc; Profile.Synthllvm ] in
      let* opt = oneofl Profile.all_opts in
      let* n_funcs = int_range 10 70 in
      let* cxx = bool in
      let* tailonly = int_bound 2 in
      let* pointer = int_bound 2 in
      let* unreachable = int_bound 1 in
      return (seed, compiler, opt, n_funcs, cxx, tailonly, pointer, unreachable))
  in
  QCheck.Test.make ~name:"FETCH invariants on random corpora" ~count:12
    (QCheck.make gen
       ~print:(fun (seed, c, o, n, cxx, t, p, u) ->
         Printf.sprintf "seed=%d %s-%s n=%d cxx=%b t=%d p=%d u=%d" seed
           (Profile.compiler_name c) (Profile.opt_name o) n cxx t p u))
    (fun (seed, compiler, opt, n_funcs, cxx, tailonly, pointer, unreachable) ->
      let profile = Profile.make compiler opt in
      let spec' =
        {
          Gen.default_spec with
          n_funcs;
          cxx;
          n_asm_tailonly = tailonly;
          n_asm_pointer = pointer;
          n_asm_unreachable = unreachable;
        }
      in
      let b = Link.build_random ~profile ~seed spec' in
      let r = Pipeline.run b.image in
      let fp, fn = metrics b.truth r.starts in
      List.for_all (acceptable_residual_fp r b.truth) fp
      && List.for_all (acceptable_miss r b.truth) fn)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_fetch_invariants;
      QCheck_alcotest.to_alcotest prop_xref_strategy_differential;
    ]
