(* Deterministic mutation fuzzer for the serve daemon's request path.

   Takes valid request lines (analyze-by-path, analyze-by-inline-bytes,
   stats, narrow `want`s), applies byte flips, truncations, splices,
   duplications and concatenations driven by Fetch_util.Prng, feeds
   every mutant to a live Engine, and asserts on every iteration:

     1. totality   — submit_line never raises and never kills the
        engine; a later well-formed request on the same engine still
        answers ok;
     2. one-for-one — every submitted line produces exactly one
        response, in order;
     3. structure  — every response is one parseable JSON object with
        status ok, or status error and a documented code
        (bad_request / overloaded / deadline_exceeded /
        analysis_failed).

   Runs as part of `dune runtest` and as a CI smoke job.  Failures
   print the seed, iteration and the offending line, to be checked in
   as regression fixtures in test_serve.ml. *)

open Fetch_util
module Engine = Fetch_serve.Engine

let iters = ref 500
let seed = ref 0x5e12e

let () =
  let rec parse = function
    | [] -> ()
    | "--iters" :: n :: rest ->
        iters := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | a :: _ ->
        Printf.eprintf "usage: fuzz_serve [--iters N] [--seed N] (got %S)\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ---- base corpus: realistic request lines to mutate ----

   No line carries a decodable ELF: a mutant that stays a well-formed
   request must fail fast (missing file / junk bytes), keeping the fuzz
   loop cheap while still driving the full parse-and-classify path. *)

let base_lines =
  [
    {|{"id":1,"path":"/nonexistent/fuzz-serve"}|};
    {|{"id":"r2","op":"analyze","bytes_b64":"bm90IGFuIGVsZg==","deadline_ms":50}|};
    {|{"op":"stats","id":[1,2]}|};
    {|{"id":{"k":3},"path":"/nonexistent/fuzz-serve","want":["starts","diags"]}|};
    {|{"bytes_b64":""}|};
  ]

let mutate rng line =
  let b = Bytes.of_string line in
  let n = Bytes.length b in
  match Prng.int rng 6 with
  | 0 when n > 0 ->
      (* flip 1-4 random bytes *)
      for _ = 1 to Prng.range rng 1 4 do
        let i = Prng.int rng n in
        Bytes.set b i (Char.chr (Prng.int rng 256))
      done;
      Bytes.to_string b
  | 1 when n > 0 ->
      (* truncate at a random point *)
      Bytes.sub_string b 0 (Prng.int rng n)
  | 2 when n > 0 ->
      (* splice a run of random printable bytes *)
      let start = Prng.int rng n in
      let len = min (Prng.range rng 1 8) (n - start) in
      for i = start to start + len - 1 do
        Bytes.set b i (Char.chr (32 + Prng.int rng 95))
      done;
      Bytes.to_string b
  | 3 ->
      (* duplicate a slice into the middle (unbalances nesting) *)
      if n < 2 then line
      else
        let lo = Prng.int rng (n - 1) in
        let len = min (Prng.range rng 1 10) (n - lo) in
        String.sub line 0 lo ^ String.sub line lo len ^ String.sub line lo (n - lo)
  | 4 ->
      (* concatenate two bases (trailing garbage after one value) *)
      line ^ Prng.choice_list rng base_lines
  | _ ->
      (* single bit flip *)
      if n = 0 then line
      else begin
        let i = Prng.int rng n in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)));
        Bytes.to_string b
      end

let known_codes =
  [ "bad_request"; "overloaded"; "deadline_exceeded"; "analysis_failed" ]

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s\n" msg)
    fmt

(* Every response line must be one JSON object with a documented
   status/code. *)
let check_response ~what line =
  match Json.parse line with
  | Error e -> fail "[%s] unparseable response %S: %s" what line e
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_str in
      match str "status" with
      | Some "ok" -> ()
      | Some "error" ->
          (match str "code" with
          | Some c when List.mem c known_codes -> ()
          | other ->
              fail "[%s] undocumented error code %s in %S" what
                (match other with Some c -> c | None -> "<none>")
                line);
          if str "message" = None then
            fail "[%s] error without message: %S" what line
      | _ -> fail "[%s] response without ok/error status: %S" what line)

let () =
  let rng = Prng.create !seed in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          domains = 1;
          cache_bytes = 1024 * 1024;
          queue_bound = 8;
        }
      ()
  in
  (* mutants go in per-iteration batches of 1-4 lines; the engine must
     answer each batch one-for-one, in order *)
  let i = ref 1 in
  while !i <= !iters do
    let batch = Prng.range rng 1 4 in
    let lines =
      List.init batch (fun _ -> mutate rng (Prng.choice_list rng base_lines))
    in
    List.iter (fun l -> Engine.submit_line engine l) lines;
    let responses = Engine.flush engine in
    if List.length responses <> batch then
      fail "[iter %d] %d lines got %d responses" !i batch (List.length responses)
    else
      List.iter
        (fun r -> check_response ~what:(Printf.sprintf "iter %d" !i) r)
        responses;
    i := !i + batch
  done;
  (* after the storm, a healthy request on the same engine still works *)
  let profile =
    Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2
  in
  let raw =
    (Fetch_synth.Link.build_random ~profile ~seed:7
       { Fetch_synth.Gen.default_spec with n_funcs = 8 })
      .raw
  in
  Engine.submit_line engine
    (Printf.sprintf {|{"id":"post","bytes_b64":%s}|} (Json.escape (B64.encode raw)));
  (match Engine.flush engine with
  | [ r ] -> (
      check_response ~what:"post-storm" r;
      match Json.parse r with
      | Ok j
        when Option.bind (Json.member "status" j) Json.to_str = Some "ok" ->
          ()
      | _ -> fail "[post-storm] healthy request no longer analyzes: %S" r)
  | rs -> fail "[post-storm] expected 1 response, got %d" (List.length rs));
  Engine.shutdown engine;
  if !failures > 0 then begin
    Printf.printf "fuzz_serve: %d FAILURES (seed %d, %d iters)\n" !failures
      !seed !iters;
    exit 1
  end
  else Printf.printf "fuzz_serve: OK — %d iterations, seed %d\n" !iters !seed
