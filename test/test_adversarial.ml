(* The adversarial scenario corpus: differential validation of every
   scenario's synth output against its ground truth, the per-scenario
   robustness harness (F1 deltas vs the clean control), and the profile
   invariant the scenarios rely on.

   The differential tests are the contract that keeps scoring exact: a
   scenario may perturb layout and unwind sections however it likes, but
   every truth part must still decode to its exact boundary, pools must
   stay disjoint from functions, and every FDE must anchor to a truth
   address. *)

open Fetch_synth

let check = Alcotest.check

let scenario id = Option.get (Adversary.find id)

(* One binary per scenario, shared across tests. *)
let built_tbl : (string, Link.built Lazy.t) Hashtbl.t = Hashtbl.create 8

let () =
  List.iter
    (fun (sc : Adversary.t) ->
      Hashtbl.replace built_tbl sc.id
        (lazy (Adversary.build sc ~seed:2026)))
    Adversary.all

let built id = Lazy.force (Hashtbl.find built_tbl id)

(* ---- the catalog itself ---- *)

let test_catalog () =
  let ids = Adversary.ids () in
  check Alcotest.int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check Alcotest.string "clean is the control" "clean" (List.hd ids);
  List.iter
    (fun (sc : Adversary.t) ->
      (match Profile.check sc.profile with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: profile invariant: %s" sc.id e);
      if sc.fetch_floor <= 0.0 || sc.fetch_floor > 1.0 then
        Alcotest.failf "%s: floor %g outside (0,1]" sc.id sc.fetch_floor)
    Adversary.all

(* ---- differential: every scenario's bytes vs its truth ---- *)

(* Every part of every function decodes as a clean instruction stream
   ending exactly on the part boundary — post-link transforms never touch
   .text, so this must hold for all scenarios. *)
let assert_parts_decode id (b : Link.built) =
  let text = Option.get (Fetch_elf.Image.section b.image ".text") in
  List.iter
    (fun (f : Truth.fn_truth) ->
      List.iter
        (fun (lo, size) ->
          let rec walk addr =
            if addr < lo + size then begin
              let pos = addr - text.addr in
              match Fetch_x86.Decode.decode ~pos ~addr text.data with
              | Some (_, len) -> walk (addr + len)
              | None -> Alcotest.failf "%s/%s: bad insn at %#x" id f.name addr
            end
          in
          walk lo)
        f.parts)
    b.truth.fns

(* Function parts and pools tile .text without overlap; pools never claim
   function bytes. *)
let assert_layout_disjoint id (b : Link.built) =
  let m = Fetch_util.Interval_map.create () in
  let claim what lo size =
    if lo < b.truth.text_lo || lo + size > b.truth.text_hi then
      Alcotest.failf "%s: %s outside text" id what;
    try Fetch_util.Interval_map.add m ~lo ~hi:(lo + size) what
    with Invalid_argument _ -> Alcotest.failf "%s: %s overlaps" id what
  in
  List.iter
    (fun (f : Truth.fn_truth) ->
      List.iter (fun (lo, size) -> claim f.name lo size) f.parts)
    b.truth.fns;
  List.iteri
    (fun i (lo, size) ->
      check Alcotest.bool (Printf.sprintf "%s pool %d non-empty" id i) true
        (size > 0);
      claim (Printf.sprintf "pool%d" i) lo size)
    b.truth.pools

(* .eh_frame decodes without skips and every FDE anchors to a truth
   address (start, cold part, or a broken FDE's pre-entry bytes). *)
let assert_fdes_anchor id (b : Link.built) =
  let eh = Fetch_dwarf.Eh_frame.of_image b.image in
  check Alcotest.int (id ^ " eh_frame skips") 0 eh.records_skipped;
  if eh.records_ok = 0 then Alcotest.failf "%s: empty .eh_frame" id;
  let starts = Truth.start_set b.truth in
  let parts = Truth.part_starts b.truth in
  List.iter
    (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
      let ok =
        Hashtbl.mem starts fde.pc_begin
        || List.mem fde.pc_begin parts
        || List.exists
             (fun (f : Truth.fn_truth) ->
               f.has_fde && f.start - fde.pc_begin = 3)
             b.truth.fns
      in
      if not ok then Alcotest.failf "%s: stray FDE at %#x" id fde.pc_begin)
    (Fetch_dwarf.Eh_frame.all_fdes eh.cies)

let test_scenario_differential id () =
  let b = built id in
  (match Fetch_elf.Decode.decode b.raw with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: ELF round-trip: %s" id e);
  assert_parts_decode id b;
  assert_layout_disjoint id b;
  assert_fdes_anchor id b

(* ---- scenario-specific section shapes ---- *)

let contains ~needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let pool_bytes (b : Link.built) =
  let text = Option.get (Fetch_elf.Image.section b.image ".text") in
  List.map
    (fun (lo, size) -> String.sub text.data (lo - text.addr) size)
    b.truth.pools

let test_padding_shapes () =
  let b = built "padding-junk" in
  check Alcotest.bool "many pools" true (List.length b.truth.pools > 20);
  check Alcotest.bool "pools carry forged push-rbp prologues" true
    (List.exists (contains ~needle:"\x55\x48\x89\xe5") (pool_bytes b));
  let clean = built "clean" in
  let bytes l = List.fold_left (fun a (_, s) -> a + s) 0 l in
  check Alcotest.bool "pool bytes scaled up" true
    (bytes b.truth.pools > 4 * max 1 (bytes clean.truth.pools));
  let tables = built "padding-tables" in
  check Alcotest.bool "table pools present" true
    (List.exists (fun (_, s) -> s >= 16 && s mod 4 = 0) tables.truth.pools)

let test_cet_shapes () =
  let b = built "cet-endbr" in
  check Alcotest.bool "pools carry endbr64 decoys" true
    (List.exists (contains ~needle:"\xf3\x0f\x1e\xfa\x55") (pool_bytes b))

let test_cfi_broken_shapes () =
  let b = built "cfi-broken" in
  let broken =
    List.length (List.filter (fun (f : Ir.func) -> f.broken_fde) b.program.funcs)
  in
  check Alcotest.int "ten lying FDEs" 10 broken;
  (* every hidden entry stays reachable through a data pointer, so SIV-E
     validation can re-derive what the rejected FDE start loses *)
  List.iter
    (fun (f : Ir.func) ->
      if f.broken_fde then
        check Alcotest.bool (f.name ^ " pointer-referenced") true
          (List.exists (fun (_, n) -> n = f.name) b.program.pointer_inits))
    b.program.funcs

let test_dwarf64_shapes () =
  let b = built "dwarf64" in
  let eh = Option.get (Fetch_elf.Image.section b.image ".eh_frame") in
  check Alcotest.bool "64-bit marker leads the section" true
    (String.length eh.data >= 4 && String.sub eh.data 0 4 = "\xff\xff\xff\xff")

let test_no_hdr_shapes () =
  let b = built "no-eh-frame-hdr" in
  check Alcotest.bool ".eh_frame_hdr absent" false
    (Fetch_elf.Image.has_section b.image ".eh_frame_hdr");
  check Alcotest.bool ".eh_frame kept" true
    (Fetch_elf.Image.has_section b.image ".eh_frame")

let test_overlap_shapes () =
  let b = built "fde-overlap" in
  let fdes =
    Fetch_dwarf.Eh_frame.all_fdes (Fetch_dwarf.Eh_frame.of_image b.image).cies
  in
  let clean_fdes =
    let c = built "clean" in
    Fetch_dwarf.Eh_frame.all_fdes (Fetch_dwarf.Eh_frame.of_image c.image).cies
  in
  check Alcotest.bool "duplicated FDEs" true
    (List.length fdes > List.length clean_fdes);
  let sorted =
    List.sort compare
      (List.map
         (fun (f : Fetch_dwarf.Eh_frame.fde) -> (f.pc_begin, f.pc_range))
         fdes)
  in
  let rec overlapping = function
    | (b1, r1) :: ((b2, _) :: _ as rest) ->
        (b1 + r1 > b2 && b1 <> b2) || b1 = b2 || overlapping rest
    | _ -> false
  in
  check Alcotest.bool "ranges overlap" true (overlapping sorted)

(* ---- the pipeline on adversarial binaries ---- *)

(* FETCH must never report a start inside a pool (pools are unreferenced
   non-code) and must keep finding the functions around them. *)
let test_fetch_on_scenarios () =
  List.iter
    (fun id ->
      let b = built id in
      let stripped = Fetch_elf.Image.strip b.image in
      let r = Fetch_core.Pipeline.run stripped in
      List.iter
        (fun s ->
          if
            List.exists
              (fun (lo, size) -> s >= lo && s < lo + size)
              b.truth.pools
          then Alcotest.failf "%s: FETCH start %#x inside a pool" id s)
        r.starts;
      let m = Fetch_eval.Metrics.score b.truth r.starts in
      let recall =
        float_of_int (m.n_true - List.length m.fn) /. float_of_int m.n_true
      in
      if recall < 0.8 then
        Alcotest.failf "%s: FETCH recall %.2f below sanity bound" id recall)
    (Adversary.ids ())

(* ---- the harness: deltas, floors, JSONL ---- *)

let pattern_tools =
  [ "DYNINST"; "BAP"; "RADARE2"; "NUCLEUS"; "IDA Pro"; "BINARY NINJA" ]

let test_harness_deltas () =
  let stressed = [ "padding-junk"; "padding-tables"; "cfi-broken" ] in
  let t = Fetch_eval.Exp_adversarial.run ~scale:0.5 ~only:stressed () in
  (* the paper's robustness claim, quantified: on padding and
     hand-written-CFI corpora FETCH's F1 drop is strictly smaller than
     every pattern-based baseline's *)
  List.iter
    (fun id ->
      let delta tool =
        match Fetch_eval.Exp_adversarial.find_row t ~scenario:id ~tool with
        | Some { delta_f1 = Some d; _ } -> d
        | _ -> Alcotest.failf "missing row %s/%s" id tool
      in
      let fetch = delta "FETCH" in
      List.iter
        (fun tool ->
          if fetch >= delta tool then
            Alcotest.failf "%s: FETCH drop %.4f not below %s drop %.4f" id
              fetch tool (delta tool))
        pattern_tools)
    stressed;
  check
    (Alcotest.list (Alcotest.triple Alcotest.string (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "no floor failures" []
    (Fetch_eval.Exp_adversarial.floor_failures t);
  (* JSONL rows parse and carry the fields the CI artifact promises *)
  let module Json = Fetch_util.Json in
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "JSONL: %s in %s" e line
      | Ok j ->
          let has k = Json.member k j <> None in
          check Alcotest.bool ("row has scenario/tool/f1: " ^ line) true
            (has "scenario" && has "tool" && has "f1" && has "fp" && has "fn"))
    (String.split_on_char '\n' (Fetch_eval.Exp_adversarial.json_lines t)
    |> List.filter (fun l -> l <> ""))

(* ---- profile invariants (the knobs scenarios turn) ---- *)

let test_make_invariant () =
  List.iter
    (fun compiler ->
      List.iter
        (fun opt ->
          match Profile.check (Profile.make compiler opt) with
          | Ok () -> ()
          | Error e -> Alcotest.fail e)
        Profile.all_opts)
    [ Profile.Synthgcc; Profile.Synthllvm ]

(* Random perturbations of a valid profile — including NaN, out-of-range
   probabilities, non-power-of-two alignments and non-positive scales —
   are always repaired by clamp, and clamp never changes an already-valid
   profile. *)
let prop_clamp_repairs =
  let gen =
    QCheck.Gen.(
      let knob =
        frequency
          [ (6, float_range (-0.5) 1.5); (1, return Float.nan); (1, return 2.0) ]
      in
      let* p_cold_split = knob in
      let* p_tail_call = knob in
      let* p_switch = knob in
      let* p_frameless = knob in
      let* p_text_junk = knob in
      let* p_junk_prologue = knob in
      let* p_table_pool = knob in
      let* align = int_range (-4) 70 in
      let* junk_scale = int_range (-2) 6 in
      let* body_scale = float_range (-1.0) 2.0 in
      return
        {
          (Profile.make Profile.Synthllvm Profile.O3) with
          p_cold_split;
          p_tail_call;
          p_switch;
          p_frameless;
          p_text_junk;
          p_junk_prologue;
          p_table_pool;
          align;
          junk_scale;
          body_scale;
        })
  in
  QCheck.Test.make ~name:"Profile.clamp repairs any perturbation" ~count:300
    (QCheck.make gen)
    (fun p ->
      (match Profile.check (Profile.clamp p) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "clamp left invalid: %s" e);
      (match Profile.check p with
      | Ok () ->
          if Profile.clamp p <> p then
            QCheck.Test.fail_reportf "clamp changed a valid profile"
      | Error _ -> ());
      true)

let suite =
  [
    Alcotest.test_case "scenario catalog well-formed" `Quick test_catalog;
  ]
  @ List.map
      (fun id ->
        Alcotest.test_case
          (Printf.sprintf "differential: %s" id)
          `Quick
          (test_scenario_differential id))
      (Adversary.ids ())
  @ [
      Alcotest.test_case "padding pools: scaled, forged prologues" `Quick
        test_padding_shapes;
      Alcotest.test_case "cet pools: endbr64 decoys" `Quick test_cet_shapes;
      Alcotest.test_case "cfi-broken: ten referenced lying FDEs" `Quick
        test_cfi_broken_shapes;
      Alcotest.test_case "dwarf64: 64-bit records on disk" `Quick
        test_dwarf64_shapes;
      Alcotest.test_case "no-eh-frame-hdr: section stripped" `Quick
        test_no_hdr_shapes;
      Alcotest.test_case "fde-overlap: duplicated overlapping ranges" `Quick
        test_overlap_shapes;
      Alcotest.test_case "FETCH ignores pools on every scenario" `Quick
        test_fetch_on_scenarios;
      Alcotest.test_case "harness: FETCH drop below pattern tools" `Slow
        test_harness_deltas;
      Alcotest.test_case "Profile.make satisfies its invariant" `Quick
        test_make_invariant;
      QCheck_alcotest.to_alcotest prop_clamp_repairs;
    ]
