(* Tests for fetch.analysis: recursive engine details, jump-table slicing,
   calling-convention validation, stack-height analysis, linear sweep and
   prologue matching. *)

open Fetch_analysis
open Fetch_x86
module I = Insn

let check = Alcotest.check

(* Hand-assemble a tiny image: text at 0x1000, optional rodata at 0x5000,
   optional eh_frame. *)
let image_of ?(rodata = "") ?(cies = []) items =
  let asm = Asm.assemble ~base:0x1000 items in
  let open Fetch_elf.Image in
  let sections =
    [
      {
        sec_name = ".text";
        kind = Progbits;
        flags = shf_alloc lor shf_execinstr;
        addr = 0x1000;
        data = asm.code;
        addralign = 16;
        entsize = 0;
      };
    ]
    @ (if rodata = "" then []
       else
         [
           {
             sec_name = ".rodata";
             kind = Progbits;
             flags = shf_alloc;
             addr = 0x5000;
             data = rodata;
             addralign = 8;
             entsize = 0;
           };
         ])
    @
    if cies = [] then []
    else
      [
        {
          sec_name = ".eh_frame";
          kind = Progbits;
          flags = shf_alloc;
          addr = 0x7000;
          data = Fetch_dwarf.Eh_frame.encode ~addr:0x7000 cies;
          addralign = 8;
          entsize = 0;
        };
      ]
  in
  ({ entry = 0x1000; sections; symbols = [] }, asm)

let label asm l = Asm.label_addr asm l

(* --- recursive engine --- *)

let test_rec_follows_calls () =
  let img, asm =
    image_of
      [
        Asm.Label "a";
        Asm.I (I.Call (I.To_label "b"));
        Asm.I I.Ret;
        Asm.Align 16;
        Asm.Label "b";
        Asm.I I.Ret;
      ]
  in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "a" ] in
  check (Alcotest.list Alcotest.int) "both functions"
    [ label asm "a"; label asm "b" ]
    (Recursive.starts res)

let test_rec_stops_at_noreturn_call () =
  (* a calls dead (which halts); bytes after the call are junk *)
  let img, asm =
    image_of
      [
        Asm.Label "a";
        Asm.I (I.Call (I.To_label "dead"));
        Asm.Raw "\xff\xff\xff\xff";
        Asm.Align 16;
        Asm.Label "dead";
        Asm.I I.Ud2;
      ]
  in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "a" ] in
  let a = Hashtbl.find res.funcs (label asm "a") in
  check Alcotest.bool "no decode error (stopped at call)" false a.decode_error;
  check Alcotest.bool "dead is noreturn" true
    (Hashtbl.mem res.noreturn (label asm "dead"))

let test_rec_no_tail_guessing () =
  (* a ends with jmp b where b is a known start: recorded, not traversed *)
  let img, asm =
    image_of
      [
        Asm.Label "a";
        Asm.I (I.Jmp (I.To_label "b"));
        Asm.Align 16;
        Asm.Label "b";
        Asm.I I.Ret;
      ]
  in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "a"; label asm "b" ] in
  let a = Hashtbl.find res.funcs (label asm "a") in
  check Alcotest.int "one out jump" 1 (List.length a.out_jumps);
  check Alcotest.bool "a has no ret of its own" false a.has_ret;
  (* a can still return through b *)
  check Alcotest.bool "a not noreturn" false
    (Hashtbl.mem res.noreturn (label asm "a"))

let test_rec_intra_jump_extends () =
  (* jmp to a non-start target is intra-procedural *)
  let img, asm =
    image_of
      [
        Asm.Label "a";
        Asm.I (I.Jmp (I.To_label "inside"));
        Asm.I (I.Nop 4);
        Asm.Label "inside";
        Asm.I I.Ret;
      ]
  in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "a" ] in
  check Alcotest.int "one function" 1 (Hashtbl.length res.funcs);
  let a = Hashtbl.find res.funcs (label asm "a") in
  check Alcotest.bool "inside is a block" true
    (List.exists (fun (lo, _) -> lo = label asm "inside") a.blocks)

(* --- incremental extension --- *)

(* Everything [Xref.detect] compares between rounds: starts, spans and
   the noreturn fact tables. *)
let result_signature (res : Recursive.result) =
  let keys tbl = List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl []) in
  ( Recursive.starts res,
    Fetch_util.Interval_map.to_list res.insn_spans,
    keys res.noreturn,
    keys res.cond_noreturn )

let extend_items =
  [
    Asm.Label "a";
    Asm.I (I.Call (I.To_label "b"));
    Asm.I I.Ret;
    Asm.Align 16;
    Asm.Label "b";
    Asm.I I.Ret;
    Asm.Align 16;
    Asm.Label "g";
    Asm.I (I.Call (I.To_label "h"));
    Asm.I I.Ret;
    Asm.Align 16;
    Asm.Label "h";
    Asm.I I.Ret;
  ]

let test_extend_equals_run () =
  (* g/h are unreachable from a: extending the a-run with seed g must
     equal running both seeds from scratch, and must leave prior alone *)
  let img, asm = image_of extend_items in
  let loaded = Loaded.load img in
  let prior = Recursive.run loaded ~seeds:[ label asm "a" ] in
  let prior_sig = result_signature prior in
  let ext = Recursive.extend loaded ~prior ~seeds:[ label asm "g" ] in
  let scratch = Recursive.run loaded ~seeds:[ label asm "a"; label asm "g" ] in
  check Alcotest.bool "extend == from-scratch" true
    (result_signature ext = result_signature scratch);
  check Alcotest.bool "callee h discovered by the delta" true
    (Hashtbl.mem ext.funcs (label asm "h"));
  check Alcotest.bool "prior untouched" true
    (result_signature prior = prior_sig)

let test_extend_known_seed_noop () =
  let img, asm = image_of extend_items in
  let loaded = Loaded.load img in
  let prior = Recursive.run loaded ~seeds:[ label asm "a" ] in
  let ext = Recursive.extend loaded ~prior ~seeds:[ label asm "a"; label asm "b" ] in
  check Alcotest.bool "already-known seeds change nothing" true
    (result_signature ext = result_signature prior)

let test_extend_uses_noreturn_facts () =
  (* the prior run learns dead is noreturn; the delta function calls it
     with junk after the call and must stop there, exactly as a
     from-scratch run over both seeds would *)
  let items =
    [
      Asm.Label "a";
      Asm.I (I.Call (I.To_label "dead"));
      Asm.Raw "\xff\xff\xff\xff";
      Asm.Align 16;
      Asm.Label "dead";
      Asm.I I.Ud2;
      Asm.Align 16;
      Asm.Label "g";
      Asm.I (I.Call (I.To_label "dead"));
      Asm.Raw "\xff\xff\xff\xff";
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let prior = Recursive.run loaded ~seeds:[ label asm "a" ] in
  check Alcotest.bool "prior learned dead is noreturn" true
    (Hashtbl.mem prior.noreturn (label asm "dead"));
  let ext = Recursive.extend loaded ~prior ~seeds:[ label asm "g" ] in
  let g = Hashtbl.find ext.funcs (label asm "g") in
  check Alcotest.bool "delta stopped at the noreturn call" false g.decode_error;
  let scratch = Recursive.run loaded ~seeds:[ label asm "a"; label asm "g" ] in
  check Alcotest.bool "extend == from-scratch" true
    (result_signature ext = result_signature scratch)

let test_extend_refixpoints_delta_noreturn () =
  (* the delta itself introduces a new noreturn function: g calls k
     (both fresh), k never returns, so the fixpoint inside extend must
     re-iterate and shrink g past the call *)
  let items =
    [
      Asm.Label "a";
      Asm.I I.Ret;
      Asm.Align 16;
      Asm.Label "g";
      Asm.I (I.Call (I.To_label "k"));
      Asm.Raw "\xff\xff\xff\xff";
      Asm.Align 16;
      Asm.Label "k";
      Asm.I I.Ud2;
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let prior = Recursive.run loaded ~seeds:[ label asm "a" ] in
  let ext = Recursive.extend loaded ~prior ~seeds:[ label asm "g" ] in
  check Alcotest.bool "k classified noreturn inside extend" true
    (Hashtbl.mem ext.noreturn (label asm "k"));
  let g = Hashtbl.find ext.funcs (label asm "g") in
  check Alcotest.bool "g stopped at the call after re-iteration" false
    g.decode_error;
  let scratch = Recursive.run loaded ~seeds:[ label asm "a"; label asm "g" ] in
  check Alcotest.bool "extend == from-scratch" true
    (result_signature ext = result_signature scratch)

(* --- jump tables --- *)

let abs_table_items =
  [
    Asm.Label "f";
    Asm.I (I.Arith (I.Cmp, I.W64, I.Reg Reg.Rdi, I.Imm 2));
    Asm.I (I.Jcc (I.A, I.To_label "default"));
    Asm.I (I.Jmp_ind (I.Mem (I.mem ~index:(Reg.Rdi, 8) ~disp:0x5000 ())));
    Asm.Label "c0";
    Asm.I I.Ret;
    Asm.Label "c1";
    Asm.I I.Ret;
    Asm.Label "c2";
    Asm.I I.Ret;
    Asm.Label "default";
    Asm.I I.Ret;
  ]

let abs_table_rodata asm =
  let b = Fetch_util.Byte_buf.create () in
  List.iter (fun l -> Fetch_util.Byte_buf.u64 b (label asm l)) [ "c0"; "c1"; "c2" ];
  Fetch_util.Byte_buf.contents b

let test_jump_table_absolute () =
  (* two-pass: assemble once to learn labels, then attach rodata *)
  let _, asm0 = image_of abs_table_items in
  let img, asm = image_of ~rodata:(abs_table_rodata asm0) abs_table_items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "no unresolved" false f.unresolved_indirect_jump;
  match f.table_targets with
  | [ (0x5000, targets) ] ->
      check (Alcotest.list Alcotest.int) "targets"
        [ label asm "c0"; label asm "c1"; label asm "c2" ]
        targets
  | _ -> Alcotest.fail "expected one resolved table"

let test_jump_table_unresolved_without_bound () =
  (* no cmp/ja guard: must NOT resolve (conservatism) *)
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Jmp_ind (I.Mem (I.mem ~index:(Reg.Rdi, 8) ~disp:0x5000 ())));
    ]
  in
  let img, asm = image_of ~rodata:(String.make 24 '\000') items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "unresolved" true f.unresolved_indirect_jump

let test_jump_table_rejects_bad_targets () =
  (* table entries outside the text section: rejected *)
  let b = Fetch_util.Byte_buf.create () in
  List.iter (fun v -> Fetch_util.Byte_buf.u64 b v) [ 0x1001; 0xdead0000; 0x1002 ];
  let img, asm =
    image_of ~rodata:(Fetch_util.Byte_buf.contents b) abs_table_items
  in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "rejected" true f.unresolved_indirect_jump

let test_jump_table_register_load () =
  (* cmp idx, N ; ja default ; mov r, [table + idx*8] ; jmp r *)
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Arith (I.Cmp, I.W64, I.Reg Reg.Rdi, I.Imm 2));
      Asm.I (I.Jcc (I.A, I.To_label "default"));
      Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Mem (I.mem ~index:(Reg.Rdi, 8) ~disp:0x5000 ())));
      Asm.I (I.Jmp_ind (I.Reg Reg.Rax));
      Asm.Label "c0";
      Asm.I I.Ret;
      Asm.Label "c1";
      Asm.I I.Ret;
      Asm.Label "c2";
      Asm.I I.Ret;
      Asm.Label "default";
      Asm.I I.Ret;
    ]
  in
  let _, asm0 = image_of items in
  let rodata =
    let b = Fetch_util.Byte_buf.create () in
    List.iter
      (fun l -> Fetch_util.Byte_buf.u64 b (label asm0 l))
      [ "c0"; "c1"; "c2" ];
    Fetch_util.Byte_buf.contents b
  in
  let img, asm = image_of ~rodata items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "no unresolved" false f.unresolved_indirect_jump;
  match f.table_targets with
  | [ (0x5000, targets) ] ->
      check (Alcotest.list Alcotest.int) "targets"
        [ label asm "c0"; label asm "c1"; label asm "c2" ]
        targets
  | _ -> Alcotest.fail "expected one resolved table"

let pic_table_items =
  (* cmp idx, N ; ja default ; lea rt, [rip+table] ;
     movsxd rx, [rt + idx*4] ; add rx, rt ; jmp rx *)
  [
    Asm.Label "f";
    Asm.I (I.Arith (I.Cmp, I.W64, I.Reg Reg.Rdi, I.Imm 2));
    Asm.I (I.Jcc (I.A, I.To_label "default"));
    Asm.I (I.Lea (Reg.Rbx, I.rip_sym (I.To_addr 0x5000)));
    Asm.I (I.Movsxd (Reg.Rcx, I.mem ~base:Reg.Rbx ~index:(Reg.Rdi, 4) ()));
    Asm.I (I.Arith (I.Add, I.W64, I.Reg Reg.Rcx, I.Reg Reg.Rbx));
    Asm.I (I.Jmp_ind (I.Reg Reg.Rcx));
    Asm.Label "c0";
    Asm.I I.Ret;
    Asm.Label "c1";
    Asm.I I.Ret;
    Asm.Label "c2";
    Asm.I I.Ret;
    Asm.Label "default";
    Asm.I I.Ret;
  ]

let test_jump_table_pic_add () =
  let _, asm0 = image_of pic_table_items in
  let rodata =
    (* 32-bit offsets relative to the table base *)
    let b = Fetch_util.Byte_buf.create () in
    List.iter
      (fun l -> Fetch_util.Byte_buf.u32 b ((label asm0 l - 0x5000) land 0xffffffff))
      [ "c0"; "c1"; "c2" ];
    Fetch_util.Byte_buf.contents b
  in
  let img, asm = image_of ~rodata pic_table_items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "no unresolved" false f.unresolved_indirect_jump;
  match f.table_targets with
  | [ (0x5000, targets) ] ->
      check (Alcotest.list Alcotest.int) "targets"
        [ label asm "c0"; label asm "c1"; label asm "c2" ]
        targets
  | _ -> Alcotest.fail "expected one resolved table"

let test_jump_table_opaque_register () =
  (* jmp through a register whose value is no table load: stays
     unresolved no matter the bound check *)
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Arith (I.Cmp, I.W64, I.Reg Reg.Rdi, I.Imm 2));
      Asm.I (I.Jcc (I.A, I.To_label "default"));
      Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rdi));
      Asm.I (I.Jmp_ind (I.Reg Reg.Rax));
      Asm.Label "default";
      Asm.I I.Ret;
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  let f = Hashtbl.find res.funcs (label asm "f") in
  check Alcotest.bool "unresolved" true f.unresolved_indirect_jump

(* --- calling convention --- *)

let validate_items items =
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  (Callconv.validate loaded (label asm "f"), asm)

let test_callconv_accepts_args () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rdi));
        Asm.I (I.Arith (I.Add, I.W64, I.Reg Reg.Rax, I.Reg Reg.Rsi));
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "args ok" true (v = Callconv.Valid)

let test_callconv_rejects_uninit_read () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rbx));
        (* rbx: non-argument, never written *)
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "uninit rbx rejected" true (v = Callconv.Invalid)

let test_callconv_push_is_save_not_use () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Push Reg.Rbp);
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rbp, I.Reg Reg.Rsp));
        Asm.I (I.Push Reg.Rbx);
        Asm.I (I.Pop Reg.Rbx);
        Asm.I (I.Pop Reg.Rbp);
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "standard prologue valid" true (v = Callconv.Valid)

let test_callconv_write_then_read () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Mov (I.W32, I.Reg Reg.Rbx, I.Imm 7));
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rbx));
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "write-then-read valid" true (v = Callconv.Valid)

let test_callconv_call_defines_rax () =
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Call (I.To_label "g"));
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rdx, I.Reg Reg.Rax));
        Asm.I I.Ret;
        Asm.Label "g";
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "rax defined by call" true (v = Callconv.Valid)

let test_callconv_branch_violation () =
  (* violation hides behind a branch: still caught *)
  let v, _ =
    validate_items
      [
        Asm.Label "f";
        Asm.I (I.Test (I.W64, Reg.Rdi, Reg.Rdi));
        Asm.I (I.Jcc (I.E, I.To_label "bad"));
        Asm.I I.Ret;
        Asm.Label "bad";
        Asm.I (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.R12));
        Asm.I I.Ret;
      ]
  in
  check Alcotest.bool "branch violation caught" true (v = Callconv.Invalid)

(* --- stack height --- *)

let test_stack_height_basic () =
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Push Reg.Rbx);
      Asm.I (I.Arith (I.Sub, I.W64, I.Reg Reg.Rsp, I.Imm 24));
      Asm.Label "body";
      Asm.I (I.Nop 1);
      Asm.I (I.Arith (I.Add, I.W64, I.Reg Reg.Rsp, I.Imm 24));
      Asm.I (I.Pop Reg.Rbx);
      Asm.Label "end";
      Asm.I I.Ret;
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let h =
    Stack_height.analyze loaded ~style:Stack_height.dyninst_style (label asm "f")
  in
  check (Alcotest.option Alcotest.int) "entry" (Some 0)
    (Hashtbl.find_opt h (label asm "f"));
  check (Alcotest.option Alcotest.int) "body" (Some 32)
    (Hashtbl.find_opt h (label asm "body"));
  check (Alcotest.option Alcotest.int) "at ret" (Some 0)
    (Hashtbl.find_opt h (label asm "end"))

let test_stack_height_untrackable () =
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Mov (I.W64, I.Reg Reg.Rsp, I.Reg Reg.Rbp));
      Asm.Label "after";
      Asm.I I.Ret;
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let h =
    Stack_height.analyze loaded ~style:Stack_height.dyninst_style (label asm "f")
  in
  check (Alcotest.option Alcotest.int) "abandoned after mov rsp" None
    (Hashtbl.find_opt h (label asm "after"))

(* --- linear sweep and prologue matching --- *)

let test_linear_sweep_resync () =
  let items =
    [ Asm.Label "f"; Asm.Raw "\xff\xff"; Asm.I I.Ret; Asm.I (I.Nop 2) ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let lo = label asm "f" in
  let insns, junk = Linear_sweep.decode_range loaded ~lo ~hi:(lo + 5) in
  check Alcotest.bool "skipped junk" true (List.length junk >= 1);
  check Alcotest.bool "recovered ret" true
    (List.exists (fun (_, _, i) -> i = I.Ret) insns)

let test_prologue_strict_vs_loose () =
  let items =
    [
      Asm.Label "pad";
      Asm.I I.Ret;
      Asm.Align 16;
      Asm.Label "framed";
      Asm.I (I.Push Reg.Rbp);
      Asm.I (I.Mov (I.W64, I.Reg Reg.Rbp, I.Reg Reg.Rsp));
      Asm.I I.Ret;
    ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  check Alcotest.bool "strict matches frame setup" true
    (Prologue.matches loaded ~strictness:Prologue.Strict (label asm "framed"));
  check Alcotest.bool "strict rejects bare ret" false
    (Prologue.matches loaded ~strictness:Prologue.Strict (label asm "pad"));
  check Alcotest.bool "loose matches push" true
    (Prologue.matches loaded ~strictness:Prologue.Loose (label asm "framed"))

let test_gaps () =
  let items =
    [ Asm.Label "f"; Asm.I I.Ret; Asm.Align 16; Asm.Label "g"; Asm.I I.Ret ]
  in
  let img, asm = image_of items in
  let loaded = Loaded.load img in
  let res = Recursive.run loaded ~seeds:[ label asm "f" ] in
  (* g not seeded: padding + g form the gap *)
  let gaps = Linear_sweep.gaps loaded ~covered:res.insn_spans in
  check Alcotest.int "one gap" 1 (List.length gaps);
  let lo, hi = List.hd gaps in
  check Alcotest.int "gap starts after f" (label asm "f" + 1) lo;
  check Alcotest.int "gap ends at text end" (label asm "g" + 1) hi;
  check Alcotest.int "leading padding" 15
    (Linear_sweep.leading_padding loaded ~lo ~hi)

let suite =
  [
    Alcotest.test_case "rec: follows calls" `Quick test_rec_follows_calls;
    Alcotest.test_case "rec: stops after noreturn call" `Quick test_rec_stops_at_noreturn_call;
    Alcotest.test_case "rec: no tail-call guessing" `Quick test_rec_no_tail_guessing;
    Alcotest.test_case "rec: intra jump extends function" `Quick test_rec_intra_jump_extends;
    Alcotest.test_case "extend: equals from-scratch run" `Quick test_extend_equals_run;
    Alcotest.test_case "extend: known seeds are a no-op" `Quick test_extend_known_seed_noop;
    Alcotest.test_case "extend: consults prior noreturn facts" `Quick test_extend_uses_noreturn_facts;
    Alcotest.test_case "extend: re-fixpoints delta noreturn" `Quick test_extend_refixpoints_delta_noreturn;
    Alcotest.test_case "jump table: absolute form" `Quick test_jump_table_absolute;
    Alcotest.test_case "jump table: needs bound check" `Quick test_jump_table_unresolved_without_bound;
    Alcotest.test_case "jump table: bad targets rejected" `Quick test_jump_table_rejects_bad_targets;
    Alcotest.test_case "jump table: register-load form" `Quick test_jump_table_register_load;
    Alcotest.test_case "jump table: PIC add form" `Quick test_jump_table_pic_add;
    Alcotest.test_case "jump table: opaque register unresolved" `Quick test_jump_table_opaque_register;
    Alcotest.test_case "callconv: arguments allowed" `Quick test_callconv_accepts_args;
    Alcotest.test_case "callconv: uninit read rejected" `Quick test_callconv_rejects_uninit_read;
    Alcotest.test_case "callconv: push is a save" `Quick test_callconv_push_is_save_not_use;
    Alcotest.test_case "callconv: write-then-read" `Quick test_callconv_write_then_read;
    Alcotest.test_case "callconv: call defines rax" `Quick test_callconv_call_defines_rax;
    Alcotest.test_case "callconv: branch violations caught" `Quick test_callconv_branch_violation;
    Alcotest.test_case "stack height: push/sub/add/pop" `Quick test_stack_height_basic;
    Alcotest.test_case "stack height: untrackable writes" `Quick test_stack_height_untrackable;
    Alcotest.test_case "linear sweep resynchronizes" `Quick test_linear_sweep_resync;
    Alcotest.test_case "prologue strict vs loose" `Quick test_prologue_strict_vs_loose;
    Alcotest.test_case "gap enumeration" `Quick test_gaps;
  ]
