(* Tests for fetch.util: byte buffers/cursors, LEB128, intervals, PRNG. *)

open Fetch_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let test_buf_roundtrip () =
  let b = Byte_buf.create () in
  Byte_buf.u8 b 0xab;
  Byte_buf.u16 b 0x1234;
  Byte_buf.u32 b 0xdeadbeef;
  Byte_buf.u64 b 0x123456789abcdef;
  Byte_buf.i32 b (-5);
  let c = Byte_cursor.of_string (Byte_buf.contents b) in
  check Alcotest.int "u8" 0xab (Byte_cursor.u8 c);
  check Alcotest.int "u16" 0x1234 (Byte_cursor.u16 c);
  check Alcotest.int "u32" 0xdeadbeef (Byte_cursor.u32 c);
  check Alcotest.int "u64" 0x123456789abcdef (Byte_cursor.u64 c);
  check Alcotest.int "i32" (-5) (Byte_cursor.i32 c);
  check Alcotest.bool "eof" true (Byte_cursor.eof c)

let test_patch () =
  let b = Byte_buf.create () in
  Byte_buf.u32 b 0;
  Byte_buf.u32 b 42;
  Byte_buf.patch_u32 b ~at:0 99;
  let c = Byte_cursor.of_string (Byte_buf.contents b) in
  check Alcotest.int "patched" 99 (Byte_cursor.u32 c);
  check Alcotest.int "untouched" 42 (Byte_cursor.u32 c)

let test_cstring () =
  let b = Byte_buf.create () in
  Byte_buf.cstring b "hello";
  Byte_buf.cstring b "";
  Byte_buf.u8 b 7;
  let c = Byte_cursor.of_string (Byte_buf.contents b) in
  check Alcotest.string "first" "hello" (Byte_cursor.cstring c);
  check Alcotest.string "empty" "" (Byte_cursor.cstring c);
  check Alcotest.int "trailing" 7 (Byte_cursor.u8 c)

let test_out_of_bounds () =
  let c = Byte_cursor.of_string "ab" in
  ignore (Byte_cursor.u16 c);
  Alcotest.check_raises "u8 past end"
    (Byte_cursor.Out_of_bounds { pos = 2; want = 1; len = 2 })
    (fun () -> ignore (Byte_cursor.u8 c))

let prop_uleb =
  QCheck.Test.make ~name:"uleb128 roundtrip" ~count:500
    QCheck.(int_bound 0x3fffffff)
    (fun n ->
      let b = Byte_buf.create () in
      Byte_buf.uleb128 b n;
      Byte_cursor.uleb128 (Byte_cursor.of_string (Byte_buf.contents b)) = n)

let prop_sleb =
  QCheck.Test.make ~name:"sleb128 roundtrip" ~count:500
    QCheck.(int_range (-0x20000000) 0x20000000)
    (fun n ->
      let b = Byte_buf.create () in
      Byte_buf.sleb128 b n;
      Byte_cursor.sleb128 (Byte_cursor.of_string (Byte_buf.contents b)) = n)

let test_pad_align () =
  let b = Byte_buf.create () in
  Byte_buf.u8 b 1;
  Byte_buf.pad_to b ~align:8 ~byte:0;
  check Alcotest.int "aligned" 8 (Byte_buf.length b);
  Byte_buf.pad_to b ~align:8 ~byte:0;
  check Alcotest.int "idempotent" 8 (Byte_buf.length b)

let test_interval_basic () =
  let m = Interval_map.create () in
  Interval_map.add m ~lo:10 ~hi:20 "a";
  Interval_map.add m ~lo:20 ~hi:30 "b";
  check Alcotest.bool "mem 15" true (Interval_map.mem m 15);
  check Alcotest.bool "mem 20 is b" true
    (match Interval_map.find m 20 with Some (_, _, "b") -> true | _ -> false);
  check Alcotest.bool "9 out" false (Interval_map.mem m 9);
  check Alcotest.bool "30 out" false (Interval_map.mem m 30);
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Interval_map.add: overlap") (fun () ->
      Interval_map.add m ~lo:15 ~hi:25 "c")

let test_interval_override () =
  let m = Interval_map.create () in
  Interval_map.add m ~lo:0 ~hi:10 "a";
  Interval_map.add m ~lo:10 ~hi:20 "b";
  Interval_map.add_override m ~lo:5 ~hi:15 "c";
  check Alcotest.int "two intervals remain" 1 (Interval_map.cardinal m);
  check Alcotest.bool "c covers 12" true
    (match Interval_map.find m 12 with Some (5, 15, "c") -> true | _ -> false)

let test_interval_add_max () =
  let m = Interval_map.create () in
  Interval_map.add_max m ~lo:0 ~hi:10 5;
  Interval_map.add_max m ~lo:5 ~hi:15 9;
  Interval_map.add_max m ~lo:8 ~hi:12 1;
  (* byte-wise: [0,5) keeps 5, [5,15) goes to 9, the low insert loses *)
  check Alcotest.bool "unshared prefix keeps its value" true
    (match Interval_map.find m 2 with Some (_, _, 5) -> true | _ -> false);
  check Alcotest.bool "overlap resolves to the max" true
    (match Interval_map.find m 9 with Some (_, _, 9) -> true | _ -> false);
  check Alcotest.bool "low insert never wins" true
    (List.for_all (fun (_, _, v) -> v <> 1) (Interval_map.to_list m))

let prop_interval_add_max_order_independent =
  (* the whole point of add_max: the resulting byte->value function is a
     fold over sets, not sequences — any insertion order agrees *)
  QCheck.Test.make ~name:"interval add_max is insertion-order independent"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (pair (int_bound 40) (int_bound 8)))
    (fun pairs ->
      (* distinct values per interval so ties cannot mask order effects *)
      let iv = List.mapi (fun i (lo, len) -> (lo, lo + len + 1, i)) pairs in
      let build l =
        let m = Interval_map.create () in
        List.iter (fun (lo, hi, v) -> Interval_map.add_max m ~lo ~hi v) l;
        Interval_map.to_list m
      in
      let sorted = List.sort compare iv in
      build iv = build (List.rev iv) && build iv = build sorted)

let test_interval_copy () =
  (* copies are independent in both directions: the incremental engine
     forks a round's span map and mutates only the fork *)
  let m = Interval_map.create () in
  Interval_map.add m ~lo:0 ~hi:10 "a";
  let c = Interval_map.copy m in
  Interval_map.add c ~lo:10 ~hi:20 "b";
  Interval_map.remove m 0;
  check Alcotest.int "copy kept a and gained b" 2 (Interval_map.cardinal c);
  check Alcotest.int "original lost a and never saw b" 0 (Interval_map.cardinal m);
  check Alcotest.bool "copy still finds a" true (Interval_map.mem c 5);
  check Alcotest.bool "original does not see b" false (Interval_map.mem m 15)

let test_interval_next_from () =
  let m = Interval_map.create () in
  Interval_map.add m ~lo:100 ~hi:110 ();
  Interval_map.add m ~lo:200 ~hi:210 ();
  check Alcotest.bool "next from 150" true
    (match Interval_map.next_from m 150 with Some (200, 210, ()) -> true | _ -> false);
  check Alcotest.bool "none past end" true (Interval_map.next_from m 300 = None)

let prop_interval_find_consistent =
  QCheck.Test.make ~name:"interval find agrees with naive scan" ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 50)))
    (fun pairs ->
      let m = Interval_map.create () in
      let added = ref [] in
      List.iter
        (fun (lo, len) ->
          let hi = lo + len + 1 in
          if not (Interval_map.overlaps m ~lo ~hi) then begin
            Interval_map.add m ~lo ~hi ();
            added := (lo, hi) :: !added
          end)
        pairs;
      List.for_all
        (fun q ->
          let naive = List.exists (fun (lo, hi) -> q >= lo && q < hi) !added in
          Interval_map.mem m q = naive)
        (List.init 60 (fun i -> i * 19)))

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds";
    let r = Prng.range rng 5 9 in
    if r < 5 || r > 9 then Alcotest.fail "range out of bounds"
  done

let test_prng_weighted () =
  let rng = Prng.create 11 in
  let a = ref 0 in
  for _ = 1 to 1000 do
    match Prng.weighted rng [ (9.0, `A); (1.0, `B) ] with
    | `A -> incr a
    | `B -> ()
  done;
  if !a < 800 || !a > 980 then
    Alcotest.failf "weighted choice skewed: %d/1000" !a

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_text_table () =
  let s =
    Text_table.render ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  check Alcotest.bool "contains rule" true (String.contains s '-');
  check Alcotest.bool "mentions bb" true (contains_sub s "bb");
  check Alcotest.bool "right-aligns numbers" true (contains_sub s " 1");
  check Alcotest.string "pct" "50.00" (Text_table.pct 1 2);
  check Alcotest.string "thousands" "1.50" (Text_table.thousands 1500)

let test_json_parse () =
  let ok text =
    match Json.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "%S should parse: %s" text e
  in
  let fails text =
    match Json.parse text with
    | Ok _ -> Alcotest.failf "%S should not parse" text
    | Error _ -> ()
  in
  check Alcotest.bool "null" true (ok "null" = Json.Null);
  check Alcotest.bool "bools" true
    (ok "true" = Json.Bool true && ok " false " = Json.Bool false);
  check Alcotest.bool "numbers" true
    (Json.to_int (ok "42") = Some 42
    && Json.to_int (ok "-7") = Some (-7)
    && Json.to_float (ok "2.5") = Some 2.5
    && Json.to_float (ok "1e3") = Some 1000.0);
  check Alcotest.bool "non-integral to_int is None" true
    (Json.to_int (ok "2.5") = None);
  check Alcotest.bool "strings with escapes" true
    (Json.to_str (ok "\"a\\\"b\\n\\u0041\"") = Some "a\"b\nA");
  check Alcotest.bool "arrays" true
    (match Json.to_list (ok "[1, 2, 3]") with
    | Some l -> List.filter_map Json.to_int l = [ 1; 2; 3 ]
    | None -> false);
  let obj = ok "{\"a\": 1, \"b\": {\"c\": [true]}}" in
  check Alcotest.bool "nested member access" true
    (Option.bind (Json.member "b" obj) (Json.member "c") <> None);
  check Alcotest.bool "missing member is None" true (Json.member "z" obj = None);
  List.iter fails
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ];
  (* escape/parse roundtrip *)
  let s = "quote \" backslash \\ newline \n tab \t nul \x00 high \x1f" in
  check Alcotest.bool "escape roundtrips" true
    (Json.to_str (ok (Json.escape s)) = Some s)

(* ---- base64 (the serve protocol's inline-bytes carrier) ---- *)

let test_b64_vectors () =
  (* RFC 4648 §10 test vectors, both directions *)
  let vectors =
    [
      ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy");
    ]
  in
  List.iter
    (fun (plain, enc) ->
      check Alcotest.string "encode" enc (B64.encode plain);
      check Alcotest.bool "decode" true (B64.decode enc = Ok plain))
    vectors

let test_b64_rejects () =
  let rejected s = match B64.decode s with Error _ -> true | Ok _ -> false in
  List.iter
    (fun s -> check Alcotest.bool (Printf.sprintf "rejects %S" s) true (rejected s))
    [
      "Zg";  (* missing padding *)
      "Zg=";  (* short padding *)
      "Zg===";  (* over-padded *)
      "Z===";  (* padding can't start at position 1 *)
      "Zm9v Yg==";  (* whitespace *)
      "Zm9v\n";  (* trailing newline *)
      "Zh==";  (* non-canonical: dropped bits not zero *)
      "Zm9vYg==Zg==";  (* data after padding *)
      "Zm9*";  (* non-alphabet byte *)
    ]

let prop_b64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:500
    QCheck.(string_gen_of_size Gen.(int_bound 200) Gen.char)
    (fun s -> B64.decode (B64.encode s) = Ok s)

let suite =
  [
    Alcotest.test_case "byte buf/cursor roundtrip" `Quick test_buf_roundtrip;
    Alcotest.test_case "base64 rfc vectors" `Quick test_b64_vectors;
    Alcotest.test_case "base64 strictness" `Quick test_b64_rejects;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "byte buf patching" `Quick test_patch;
    Alcotest.test_case "cstring roundtrip" `Quick test_cstring;
    Alcotest.test_case "cursor bounds checking" `Quick test_out_of_bounds;
    Alcotest.test_case "pad_to alignment" `Quick test_pad_align;
    Alcotest.test_case "interval map basics" `Quick test_interval_basic;
    Alcotest.test_case "interval map override" `Quick test_interval_override;
    Alcotest.test_case "interval map add_max" `Quick test_interval_add_max;
    Alcotest.test_case "interval map copy independence" `Quick test_interval_copy;
    Alcotest.test_case "interval map next_from" `Quick test_interval_next_from;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng weighted" `Quick test_prng_weighted;
    Alcotest.test_case "text table render" `Quick test_text_table;
    qcheck prop_b64_roundtrip;
    qcheck prop_uleb;
    qcheck prop_sleb;
    qcheck prop_interval_find_consistent;
    qcheck prop_interval_add_max_order_independent;
  ]
