(* Tests for fetch.eval: metrics, corpus determinism, and smoke runs of the
   experiment drivers on a restricted corpus. *)

open Fetch_eval

let check = Alcotest.check

let test_metrics () =
  let truth =
    {
      Fetch_synth.Truth.fns =
        List.map
          (fun (name, start) ->
            {
              Fetch_synth.Truth.name; start; size = 8; parts = [ (start, 8) ];
              is_assembly = false; has_fde = true; noreturn = false;
              tail_only = false; unreachable = false; leaf = false;
            })
          [ ("a", 0x100); ("b", 0x200); ("c", 0x300) ];
      jump_tables = [];
      pools = [];
      text_lo = 0x100;
      text_hi = 0x400;
    }
  in
  let m = Metrics.score truth [ 0x100; 0x200; 0x999 ] in
  check Alcotest.int "n_true" 3 m.n_true;
  check (Alcotest.list Alcotest.int) "fp" [ 0x999 ] m.fp;
  check (Alcotest.list Alcotest.int) "fn" [ 0x300 ] m.fn;
  check Alcotest.bool "not full cov" false (Metrics.full_coverage m);
  check Alcotest.bool "not full acc" false (Metrics.full_accuracy m);
  let perfect = Metrics.score truth [ 0x100; 0x200; 0x300 ] in
  check Alcotest.bool "full cov" true (Metrics.full_coverage perfect);
  check Alcotest.bool "full acc" true (Metrics.full_accuracy perfect);
  let t = Metrics.totals () in
  Metrics.add t m;
  Metrics.add t perfect;
  check Alcotest.int "bins" 2 t.bins;
  check Alcotest.int "fp total" 1 t.fp_total;
  check Alcotest.int "full acc count" 1 t.full_acc

let test_pre_rec () =
  let pr = { Metrics.reported = 80; correct = 72; expected = 100 } in
  check (Alcotest.float 0.01) "precision" 90.0 (Metrics.precision pr);
  check (Alcotest.float 0.01) "recall" 72.0 (Metrics.recall pr);
  check (Alcotest.float 0.01) "empty precision" 100.0
    (Metrics.precision Metrics.empty_pre_rec)

let test_corpus_deterministic () =
  let collect () =
    Corpus.fold_selfbuilt ~only:[ "ZSH-5.7.1" ] ~init:[] (fun acc b ->
        (b.id, String.length b.built.raw, b.built.image.entry) :: acc)
  in
  let a = collect () and b = collect () in
  check Alcotest.int "8 binaries (2 compilers x 4 opts)" 8 (List.length a);
  check Alcotest.bool "reproducible" true (a = b)

let test_corpus_count () =
  check Alcotest.int "full corpus size" (179 * 8) (Corpus.count_selfbuilt ());
  check Alcotest.int "wild corpus size" 43 (List.length Corpus.wild_rows)

let test_q1_shape_on_subset () =
  (* FDE coverage should be 100% for a no-asm project and < 100% for the
     asm-heavy one *)
  let module IS = Set.Make (Int) in
  let coverage pname =
    Corpus.fold_selfbuilt ~only:[ pname ] ~init:(0, 0) (fun (cov, tot) b ->
        let fdes =
          IS.of_list
            (List.map
               (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.pc_begin)
               (Fetch_dwarf.Eh_frame.all_fdes
                  (Fetch_dwarf.Eh_frame.of_image b.built.image).cies))
        in
        List.fold_left
          (fun (cov, tot) (f : Fetch_synth.Truth.fn_truth) ->
            ((cov + if IS.mem f.start fdes then 1 else 0), tot + 1))
          (cov, tot) b.built.truth.fns)
  in
  let c_zsh, t_zsh = coverage "ZSH-5.7.1" in
  check Alcotest.int "zsh: full FDE coverage" t_zsh c_zsh;
  let c_ssl, t_ssl = coverage "Openssl-1.1.0l" in
  check Alcotest.bool "openssl: FDE gaps" true (c_ssl < t_ssl)

let test_strategies_on_subset () =
  (* run the Fig. 5 stacks on one project and check the headline ordering *)
  let totals =
    List.map
      (fun (g, stacks) ->
        (g, List.map (fun (s : Exp_strategies.strategy) -> (s, Metrics.totals ())) stacks))
      [
        ("GHIDRA", Exp_strategies.ghidra_stacks);
        ("FETCH", Exp_strategies.fetch_stacks);
      ]
  in
  Corpus.fold_selfbuilt ~only:[ "Nginx-1.15.0" ] ~init:() (fun () b ->
      let loaded =
        Fetch_analysis.Loaded.load (Fetch_elf.Image.strip b.built.image)
      in
      List.iter
        (fun (_, stacks) ->
          List.iter
            (fun ((s : Exp_strategies.strategy), t) ->
              Metrics.add t (Metrics.score b.built.truth (s.run loaded)))
            stacks)
        totals);
  let find g name =
    let _, stacks = List.find (fun (g', _) -> g' = g) totals in
    snd
      (List.find (fun ((s : Exp_strategies.strategy), _) -> s.sname = name) stacks)
  in
  let fde = find "FETCH" "FDE" in
  let rec_safe = find "FETCH" "FDE+Rec (safe)" in
  let fetch_full = find "FETCH" "FDE+Rec+Xref+Fix (FETCH)" in
  (* safe recursion never adds FPs and never loses coverage *)
  check Alcotest.bool "rec adds no FPs" true
    (rec_safe.fp_total <= fde.fp_total);
  check Alcotest.bool "rec adds coverage" true
    (rec_safe.fn_total <= fde.fn_total);
  (* the fix removes most FDE FPs *)
  check Alcotest.bool "fix removes FPs" true
    (fetch_full.fp_total * 2 < rec_safe.fp_total || rec_safe.fp_total = 0);
  (* unsafe Tcall adds FPs over the safe ghidra stack *)
  let g_base = find "GHIDRA" "FDE+Rec+Fsig" in
  let g_tcall = find "GHIDRA" "FDE+Rec+Fsig+Tcall" in
  check Alcotest.bool "ghidra tcall FPs" true (g_tcall.fp_total >= g_base.fp_total)

let test_heights_driver_on_subset () =
  (* sanity: the Table IV scorer reports sane percentages *)
  let cells = Hashtbl.create 8 in
  ignore cells;
  let pr = ref Metrics.empty_pre_rec in
  Corpus.fold_selfbuilt ~only:[ "Lighttpd-1.4.54" ] ~init:() (fun () b ->
      let loaded =
        Fetch_analysis.Loaded.load (Fetch_elf.Image.strip b.built.image)
      in
      List.iter
        (fun (f : Fetch_synth.Truth.fn_truth) ->
          if
            f.has_fde
            && Fetch_dwarf.Height_oracle.complete_at loaded.oracle f.start
          then
            let expected = Exp_heights.expected_heights loaded f in
            let heights =
              Fetch_analysis.Stack_height.analyze loaded
                ~style:Fetch_analysis.Stack_height.dyninst_style f.start
            in
            List.iter
              (fun (addr, h, _) ->
                let reported, correct =
                  match Hashtbl.find_opt heights addr with
                  | Some h' -> (1, if h' = h then 1 else 0)
                  | None -> (0, 0)
                in
                pr :=
                  Metrics.add_pre_rec !pr { Metrics.reported; correct; expected = 1 })
              expected)
        b.built.truth.fns);
  check Alcotest.bool "many locations" true (!pr.expected > 1000);
  check Alcotest.bool "precision high" true (Metrics.precision !pr > 95.0);
  check Alcotest.bool "recall high" true (Metrics.recall !pr > 95.0)

(* score_lists is the set-based replacement for the CLI's old quadratic
   list-membership scoring: pin it to the naive definition *)
let prop_score_lists_matches_naive =
  let gen = QCheck.(pair (list (int_bound 64)) (list (int_bound 64))) in
  QCheck.Test.make ~name:"score_lists matches the naive quadratic scorer"
    ~count:200 gen (fun (truth, detected) ->
      let m = Metrics.score_lists ~truth ~detected in
      let dedup_sorted l = List.sort_uniq compare l in
      let naive_fp =
        dedup_sorted (List.filter (fun d -> not (List.mem d truth)) detected)
      in
      let naive_fn =
        dedup_sorted (List.filter (fun t -> not (List.mem t detected)) truth)
      in
      m.fp = naive_fp && m.fn = naive_fn
      && m.n_true = List.length (dedup_sorted truth)
      && m.n_detected = List.length (dedup_sorted detected))

let suite =
  [
    Alcotest.test_case "metrics scoring" `Quick test_metrics;
    QCheck_alcotest.to_alcotest prop_score_lists_matches_naive;
    Alcotest.test_case "precision/recall" `Quick test_pre_rec;
    Alcotest.test_case "corpus determinism" `Quick test_corpus_deterministic;
    Alcotest.test_case "corpus counts" `Quick test_corpus_count;
    Alcotest.test_case "Q1 shape on subset" `Quick test_q1_shape_on_subset;
    Alcotest.test_case "strategy stacks on subset" `Quick test_strategies_on_subset;
    Alcotest.test_case "Table IV scorer on subset" `Quick test_heights_driver_on_subset;
  ]
