let () =
  Alcotest.run "fetch"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("elf", Test_elf.suite);
      ("x86", Test_x86.suite);
      ("dwarf", Test_dwarf.suite);
      ("synth", Test_synth.suite);
      ("analysis", Test_analysis.suite);
      ("check", Test_check.suite);
      ("facts", Test_facts.suite);
      ("core", Test_core.suite);
      ("baselines", Test_baselines.suite);
      ("rop", Test_rop.suite);
      ("eval", Test_eval.suite);
      ("adversarial", Test_adversarial.suite);
      ("pe", Test_pe.suite);
      ("serve", Test_serve.suite);
    ]
