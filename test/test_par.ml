(* Tests for the parallel runtime: domain-pool result ordering and
   failure isolation, per-domain trace-context isolation and merge,
   batch-analysis determinism across domain counts (including the
   failure-isolation path), and parallel corpus iteration matching the
   sequential fold. *)

open Fetch_synth
module Pool = Fetch_par.Pool
module Obs = Fetch_obs.Trace
module Batch = Fetch_core.Batch

let check = Alcotest.check

(* --- pool --- *)

let test_pool_map_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          check Alcotest.int "pool size" domains (Pool.size pool);
          let results = Pool.map pool (fun i -> i * i) (List.init 20 Fun.id) in
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "%d domains: results in submission order" domains)
            (List.init 20 (fun i -> i * i))
            (List.map (function Ok v -> v | Error _ -> -1) results)))
    [ 1; 2; 4 ]

let test_pool_failure_isolation () =
  Pool.with_pool ~domains:4 (fun pool ->
      let results =
        Pool.map pool
          ~label:(fun _ i -> "task-" ^ string_of_int i)
          (fun i -> if i mod 5 = 3 then failwith "boom" else 2 * i)
          (List.init 10 Fun.id)
      in
      List.iteri
        (fun i r ->
          if i mod 5 = 3 then
            match r with
            | Error (f : Pool.failure) ->
                check Alcotest.int "failure index" i f.f_index;
                check Alcotest.string "failure label"
                  ("task-" ^ string_of_int i)
                  f.f_label;
                check Alcotest.bool "failure message" true
                  (String.length f.f_exn > 0
                  && String.lowercase_ascii f.f_exn <> "")
            | Ok _ -> Alcotest.failf "task %d should have failed" i
          else
            match r with
            | Ok v -> check Alcotest.int "survivor result" (2 * i) v
            | Error f ->
                Alcotest.failf "task %d infected by neighbour failure: %s" i
                  (Pool.failure_to_string f))
        results)

let test_pool_reuse () =
  Pool.with_pool ~domains:2 (fun pool ->
      let a = Pool.map pool (fun i -> i + 1) [ 1; 2; 3 ] in
      let b = Pool.map pool (fun i -> i * 10) [ 4; 5 ] in
      check Alcotest.int "first batch" 3 (List.length a);
      check
        (Alcotest.list Alcotest.int)
        "second batch on the same pool" [ 40; 50 ]
        (List.map (function Ok v -> v | Error _ -> -1) b))

(* --- per-domain trace contexts --- *)

let c_iso = Obs.counter "test.par.iso"

let test_trace_domain_isolation () =
  (* two domains record concurrently; each report sees only its own
     increments, and the spawning domain's context is untouched *)
  let record n =
    let (), report =
      Obs.with_run (fun () ->
          Obs.span "iso" (fun () ->
              for _ = 1 to n do
                Obs.incr c_iso
              done))
    in
    report
  in
  let d1 = Domain.spawn (fun () -> record 3) in
  let d2 = Domain.spawn (fun () -> record 7) in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  check Alcotest.int "domain 1 sees its own increments" 3
    (List.assoc "test.par.iso" r1.Obs.counters);
  check Alcotest.int "domain 2 sees its own increments" 7
    (List.assoc "test.par.iso" r2.Obs.counters);
  check Alcotest.bool "spawning domain has no live run" false (Obs.enabled ());
  check Alcotest.int "spawning domain context untouched" 0 (Obs.value c_iso);
  let merged = Obs.merge [ r1; r2 ] in
  check Alcotest.int "merged counter is the sum" 10
    (List.assoc "test.par.iso" merged.Obs.counters);
  check Alcotest.int "merged spans concatenated" 2
    (List.length merged.Obs.spans)

(* --- batch determinism across domain counts --- *)

let raw_binary ?(cxx = false) seed =
  let profile = Profile.make Profile.Synthgcc Profile.O2 in
  let spec = { Gen.default_spec with n_funcs = 25; cxx } in
  (Link.build_random ~profile ~seed spec).raw

let batch_items () =
  [
    Batch.item_of_raw "bin-101" (raw_binary 101);
    Batch.item_of_raw "bin-102" (raw_binary ~cxx:true 102);
    (* failure-isolation paths: a task raising mid-analysis and a
       binary the ELF decoder rejects *)
    {
      Batch.id = "crasher";
      load = (fun () -> failwith "synthetic mid-pipeline crash");
    };
    Batch.item_of_raw "corrupt" "\x7fELF\x02\x01\x01 truncated";
    Batch.item_of_raw "bin-103" (raw_binary 103);
  ]

let counter r name =
  match List.assoc_opt name r.Batch.merged.Obs.counters with
  | Some v -> v
  | None -> Alcotest.failf "merged counter %s missing" name

let test_batch_determinism () =
  let items = batch_items () in
  let runs = List.map (fun d -> (d, Batch.run ~domains:d items)) [ 1; 2; 4 ] in
  let _, r1 = List.hd runs in
  check Alcotest.int "three successes" 3 r1.Batch.n_ok;
  check Alcotest.int "two isolated failures" 2 r1.Batch.n_failed;
  (* the deterministic JSON rendering is byte-identical at every domain
     count — per-binary starts, diagnostics, lint findings and merged
     counter totals included *)
  let golden = Batch.json_lines ~timings:false r1 in
  List.iter
    (fun (d, r) ->
      check Alcotest.string
        (Printf.sprintf "deterministic report at %d domains" d)
        golden
        (Batch.json_lines ~timings:false r);
      check Alcotest.int
        (Printf.sprintf "domain count recorded (%d)" d)
        d r.Batch.domains)
    (List.tl runs);
  (* failures attributed to the right binaries, successes intact *)
  (match List.assoc "crasher" r1.Batch.results with
  | Error f ->
      check Alcotest.bool "crash message captured" true
        (String.length f.Pool.f_exn > 0)
  | Ok _ -> Alcotest.fail "crasher should fail");
  (match List.assoc "corrupt" r1.Batch.results with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt ELF should fail");
  (match List.assoc "bin-103" r1.Batch.results with
  | Ok a ->
      check Alcotest.bool "starts detected after failing neighbours" true
        (List.length a.Batch.starts > 0)
  | Error f -> Alcotest.failf "bin-103 failed: %s" (Pool.failure_to_string f))

let test_batch_merged_invariants () =
  (* the §IV-E accounting invariant must survive a merged parallel run:
     every scanned candidate is accepted or rejected exactly once *)
  let r = Batch.run ~domains:4 (batch_items ()) in
  check Alcotest.int "xref accounting on the merged report"
    (counter r "xref.candidates_scanned")
    (counter r "xref.accepted"
    + counter r "xref.reject.invalid_opcode"
    + counter r "xref.reject.mid_instruction"
    + counter r "xref.reject.into_function"
    + counter r "xref.reject.callconv");
  check Alcotest.bool "merged seeds populated" true
    (counter r "pipeline.seeds.fde" > 0);
  (* merged pipeline span count = one per successful binary *)
  let aggs = Fetch_obs.Report.aggregate_spans r.Batch.merged in
  let pipeline_calls =
    List.fold_left
      (fun acc (a : Fetch_obs.Report.agg) ->
        if a.agg_name = "pipeline" then acc + a.agg_calls else acc)
      0 aggs
  in
  check Alcotest.int "one pipeline span per success" r.Batch.n_ok pipeline_calls

let prop_batch_deterministic =
  QCheck.Test.make ~name:"batch reports identical across domain counts"
    ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let items =
        [
          Batch.item_of_raw "a" (raw_binary (3000 + seed));
          Batch.item_of_raw "b" (raw_binary ~cxx:(seed mod 2 = 0) (4000 + seed));
        ]
      in
      let a = Batch.run ~domains:1 items in
      let b = Batch.run ~domains:2 items in
      Batch.json_lines ~timings:false a = Batch.json_lines ~timings:false b)

(* --- parallel corpus iteration --- *)

let test_corpus_par_matches_fold () =
  let only = [ "Findutils-4.4" ] in
  let fingerprint (b : Fetch_eval.Corpus.binary) =
    (b.id, List.length b.built.truth.fns, String.length b.built.raw)
  in
  let seq =
    Fetch_eval.Corpus.fold_selfbuilt ~scale:0.01 ~only ~init:[] (fun acc b ->
        fingerprint b :: acc)
    |> List.rev
  in
  let par =
    Pool.with_pool ~domains:2 (fun pool ->
        Fetch_eval.Corpus.map_selfbuilt_par pool ~scale:0.01 ~only fingerprint)
    |> List.map (function
         | Ok v -> v
         | Error f -> Alcotest.failf "corpus job failed: %s" (Pool.failure_to_string f))
  in
  check Alcotest.int "8 binaries (1 program x 2 compilers x 4 opts)" 8
    (List.length seq);
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.int Alcotest.int))
    "parallel corpus matches the sequential fold, in order" seq par

(* --- streaming futures --- *)

let test_pool_futures () =
  Pool.with_pool ~domains:2 (fun pool ->
      let ok = Pool.submit pool (fun () -> 6 * 7) in
      let boom =
        Pool.submit pool ~label:"boom" (fun () -> failwith "kaboom")
      in
      let dropped =
        Pool.submit pool ~cancel:(fun () -> true) (fun () -> 99)
      in
      check Alcotest.int "await returns the value" 42
        (match Pool.await ok with Pool.Value v -> v | _ -> -1);
      (match Pool.await boom with
      | Pool.Fail f ->
          check Alcotest.string "failure keeps the label" "boom" f.f_label;
          check Alcotest.bool "failure captures the exception" true
            (String.length f.f_exn > 0)
      | _ -> Alcotest.fail "raising task must resolve as Fail");
      (match Pool.await dropped with
      | Pool.Cancelled -> ()
      | _ -> Alcotest.fail "cancel hook true must resolve as Cancelled");
      (* poll converges to the awaited outcome *)
      check Alcotest.bool "poll sees the resolved outcome" true
        (Pool.poll ok = Some (Pool.Value 42)))

let test_pool_future_map_mix () =
  (* futures and batch maps share the queue without disturbing each
     other's ordering *)
  Pool.with_pool ~domains:3 (fun pool ->
      let futs = List.init 10 (fun i -> Pool.submit pool (fun () -> i + 1)) in
      let mapped = Pool.map pool (fun i -> i * 2) (List.init 10 Fun.id) in
      check
        (Alcotest.list Alcotest.int)
        "map results ordered"
        (List.init 10 (fun i -> i * 2))
        (List.map (function Ok v -> v | Error _ -> -1) mapped);
      check
        (Alcotest.list Alcotest.int)
        "futures resolve to their own values"
        (List.init 10 (fun i -> i + 1))
        (List.map
           (fun f -> match Pool.await f with Pool.Value v -> v | _ -> -1)
           futs))

let suite =
  [
    Alcotest.test_case "pool map ordering" `Quick test_pool_map_order;
    Alcotest.test_case "pool futures: value/fail/cancel" `Quick
      test_pool_futures;
    Alcotest.test_case "pool futures alongside maps" `Quick
      test_pool_future_map_mix;
    Alcotest.test_case "pool failure isolation" `Quick test_pool_failure_isolation;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "trace contexts are per-domain" `Quick
      test_trace_domain_isolation;
    Alcotest.test_case "batch determinism across domain counts" `Quick
      test_batch_determinism;
    Alcotest.test_case "merged counter invariants" `Quick
      test_batch_merged_invariants;
    QCheck_alcotest.to_alcotest prop_batch_deterministic;
    Alcotest.test_case "parallel corpus matches sequential fold" `Quick
      test_corpus_par_matches_fold;
  ]
