(* Tests for the serve daemon: wire-protocol parsing and rendering, the
   two-level content-addressed LRU cache, the ordered request engine
   (cold/warm byte-identity, shedding, deadlines, failure isolation),
   the bounded line reader, and a socket round trip with cache reuse
   across connections. *)

module Json = Fetch_util.Json
module B64 = Fetch_util.B64
module Cache = Fetch_serve.Cache
module Engine = Fetch_serve.Engine
module Serve = Fetch_serve.Serve
module P = Fetch_serve.Protocol

let check = Alcotest.check

let profile =
  Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2

let binary ?(n_funcs = 12) seed =
  (Fetch_synth.Link.build_random ~profile ~seed
     { Fetch_synth.Gen.default_spec with n_funcs })
    .raw

let analyze_line ?id ?deadline_ms ?want bytes =
  let field k v = Printf.sprintf "%s:%s" (Json.escape k) v in
  let fields =
    (match id with None -> [] | Some id -> [ field "id" id ])
    @ [ field "bytes_b64" (Json.escape (B64.encode bytes)) ]
    @ (match deadline_ms with
      | None -> []
      | Some ms -> [ field "deadline_ms" (string_of_int ms) ])
    @
    match want with
    | None -> []
    | Some atoms ->
        [
          field "want"
            (Printf.sprintf "[%s]"
               (String.concat "," (List.map Json.escape atoms)));
        ]
  in
  Printf.sprintf "{%s}" (String.concat "," fields)

let with_engine ?config f =
  let e = Engine.create ?config () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let small_config =
  { Engine.default_config with domains = 2; cache_bytes = 4 * 1024 * 1024 }

let response_field line k =
  match Json.parse line with
  | Ok j -> Json.member k j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let status line =
  match Option.bind (response_field line "status") Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response without status: %s" line

let error_code line =
  Option.bind (response_field line "code") Json.to_str

(* ---- protocol ---- *)

let test_protocol_parse () =
  let ok line =
    match P.parse_request line with
    | Ok r -> r
    | Error (_, msg) -> Alcotest.failf "expected %s to parse: %s" line msg
  in
  let err line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "expected %s to be rejected" line
    | Error e -> e
  in
  (match (ok {|{"bytes_b64":"Zm9v"}|}).op with
  | P.Analyze { source = `Bytes "foo"; deadline_ms = None; want } ->
      check Alcotest.bool "default want is everything" true (want = P.want_all)
  | _ -> Alcotest.fail "inline bytes analyze");
  (match (ok {|{"op":"analyze","path":"/x","deadline_ms":250,"want":["starts"]}|}).op with
  | P.Analyze { source = `Path "/x"; deadline_ms = Some 250; want } ->
      check Alcotest.bool "want narrows" true
        (want.w_starts && not want.w_eh && not want.w_diags && not want.w_findings)
  | _ -> Alcotest.fail "path analyze");
  (match ok {|{"op":"stats","id":7}|} with
  | { id = Some (Json.Num 7.); op = P.Stats } -> ()
  | _ -> Alcotest.fail "stats with id");
  (* the id survives validation failures so the error can echo it *)
  (match err {|{"id":"r1","path":"/x","bytes_b64":"Zm9v"}|} with
  | Some (Json.Str "r1"), _ -> ()
  | _ -> Alcotest.fail "id recovered from invalid request");
  List.iter
    (fun line ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "should reject %s" line
      | Error _ -> ())
    [
      "";  (* not JSON *)
      "[]";  (* not an object *)
      {|{"op":"frobnicate","path":"/x"}|};
      {|{"path":"/x","unknown_field":1}|};
      {|{}|};  (* no source *)
      {|{"bytes_b64":"!!"}|};  (* bad base64 *)
      {|{"path":"/x","deadline_ms":-1}|};
      {|{"path":"/x","deadline_ms":1.5}|};
      {|{"path":"/x","want":["starts","bogus"]}|};
      {|{"path":12}|};
    ]

let test_protocol_render () =
  let payload =
    {|{"starts":[1,2],"n_seeds":2,"eh_frame":{"records_ok":2,"records_skipped":0,"indirect_derefs":0},"diags":[],"findings":[]}|}
  in
  check Alcotest.string "full response"
    ({|{"id":"a","status":"ok",|}
    ^ {|"starts":[1,2],"n_seeds":2,"eh_frame":{"records_ok":2,"records_skipped":0,"indirect_derefs":0},"diags":[],"findings":[]}|}
    )
    (P.ok_response ~id:(Some (Json.Str "a")) ~want:P.want_all payload);
  check Alcotest.string "want filters field groups"
    {|{"status":"ok","diags":[]}|}
    (P.ok_response ~id:None
       ~want:{ P.w_starts = false; w_eh = false; w_diags = true; w_findings = false }
       payload);
  check Alcotest.string "error response"
    {|{"id":3,"status":"error","code":"overloaded","message":"queue full"}|}
    (P.error_response ~id:(Some (Json.Num 3.)) ~code:P.Overloaded
       ~message:"queue full")

(* ---- cache ---- *)

let test_cache_lru () =
  let c = Cache.create ~max_bytes:100 in
  check Alcotest.bool "miss on empty" true (Cache.find c "k1" = None);
  Cache.add c "k1" (String.make 40 'a');
  Cache.add c "k2" (String.make 40 'b');
  check Alcotest.bool "hit" true (Cache.find c "k1" <> None);
  (* k1 was just touched, so inserting past the budget evicts k2 *)
  Cache.add c "k3" (String.make 40 'c');
  check Alcotest.bool "lru (k2) evicted" true (Cache.find c "k2" = None);
  check Alcotest.bool "recently-used k1 kept" true (Cache.find c "k1" <> None);
  check Alcotest.bool "new k3 present" true (Cache.find c "k3" <> None);
  (* replacement charges the new size, not the sum *)
  Cache.add c "k3" (String.make 10 'd');
  let s = Cache.stats c in
  check Alcotest.int "bytes after replace" 50 s.bytes;
  check Alcotest.int "evictions counted" 1 s.evictions;
  (* an entry larger than the whole budget is refused outright *)
  Cache.add c "huge" (String.make 101 'x');
  check Alcotest.bool "oversize entry not stored" true (Cache.find c "huge" = None);
  check Alcotest.int "oversize rejection counted" 1
    (Cache.stats c).rejected_oversize

let test_cache_eh_level () =
  let raw = binary 41 in
  let img =
    match Fetch_elf.Decode.decode raw with
    | Ok i -> i
    | Error e -> Alcotest.failf "decode: %s" e
  in
  let eh = Fetch_dwarf.Eh_frame.of_image img in
  let key =
    match Cache.eh_key img with
    | Some k -> k
    | None -> Alcotest.fail "synthetic binary has .eh_frame"
  in
  let c = Cache.create ~max_bytes:(1024 * 1024) in
  check Alcotest.bool "eh miss" true (Cache.find_eh c key = None);
  Cache.add_eh c key ~size:64 eh;
  check Alcotest.bool "eh hit after add" true (Cache.find_eh c key <> None);
  check Alcotest.int "eh hits counted" 1 (Cache.stats c).eh_hits;
  (* a decode that followed indirect pointers is not a pure function of
     the section bytes: the cache must refuse it *)
  let tainted = { eh with Fetch_dwarf.Eh_frame.indirect_derefs = 1 } in
  let c2 = Cache.create ~max_bytes:1024 in
  Cache.add_eh c2 key ~size:64 tainted;
  check Alcotest.bool "indirect decode never cached" true
    (Cache.find_eh c2 key = None)

(* ---- engine: cold/warm byte identity ---- *)

let test_engine_warm_hit () =
  let raw = binary 42 in
  with_engine
    ~config:{ small_config with capture_reports = true }
    (fun e ->
      Engine.submit_line e (analyze_line ~id:"\"c\"" raw);
      let cold =
        match Engine.flush e with
        | [ r ] -> r
        | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
      in
      check Alcotest.string "cold status" "ok" (status cold);
      check Alcotest.int "cold run captured a pipeline report" 1
        (List.length (Engine.reports e));
      Engine.submit_line e (analyze_line ~id:"\"c\"" raw);
      let warm =
        match Engine.flush e with [ r ] -> r | _ -> Alcotest.fail "1 response"
      in
      check Alcotest.string "warm response is byte-identical" cold warm;
      (* the warm path never ran the pipeline: no new trace report *)
      check Alcotest.int "no pipeline report for the cache hit" 1
        (List.length (Engine.reports e));
      let stats =
        match Json.parse (Engine.stats_json e) with
        | Ok j -> j
        | Error e -> Alcotest.failf "stats parse: %s" e
      in
      let cache_int k =
        Option.bind (Json.member "cache" stats) (Json.member k)
        |> Fun.flip Option.bind Json.to_int
      in
      check (Alcotest.option Alcotest.int) "one cache hit" (Some 1)
        (cache_int "hits");
      check (Alcotest.option Alcotest.int) "one cache miss" (Some 1)
        (cache_int "misses"))

(* a re-linked binary: different bytes, identical .eh_frame *)
let test_engine_eh_partial_hit () =
  let raw1 = binary 43 in
  let img =
    match Fetch_elf.Decode.decode raw1 with
    | Ok i -> i
    | Error e -> Alcotest.failf "decode: %s" e
  in
  let relinked =
    {
      img with
      Fetch_elf.Image.sections =
        img.Fetch_elf.Image.sections
        @ [
            {
              Fetch_elf.Image.sec_name = ".note.relink";
              kind = Fetch_elf.Image.Progbits;
              flags = 0;
              addr = 0;
              data = "relinked-v2";
              addralign = 1;
              entsize = 0;
            };
          ];
    }
  in
  let raw2 = Fetch_elf.Encode.encode relinked in
  check Alcotest.bool "variant differs as a whole binary" true (raw1 <> raw2);
  with_engine ~config:small_config (fun e ->
      Engine.submit_line e (analyze_line ~id:"1" raw1);
      check Alcotest.int "first response" 1 (List.length (Engine.flush e));
      Engine.submit_line e (analyze_line ~id:"2" raw2);
      (match Engine.flush e with
      | [ r ] -> check Alcotest.string "re-linked binary analyzes ok" "ok" (status r)
      | _ -> Alcotest.fail "1 response");
      let s = Engine.stats_json e in
      let j = match Json.parse s with Ok j -> j | Error e -> Alcotest.failf "%s" e in
      let cache_int k =
        Option.bind (Json.member "cache" j) (Json.member k)
        |> Fun.flip Option.bind Json.to_int
      in
      check (Alcotest.option Alcotest.int)
        "result level missed twice (different binaries)" (Some 2)
        (cache_int "misses");
      check (Alcotest.option Alcotest.int)
        "decode stage reused through the eh level" (Some 1)
        (cache_int "eh_hits"))

(* ---- engine: shedding and deadlines ---- *)

let test_engine_shed () =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let opened = ref false in
  let gate () =
    Mutex.lock mu;
    while not !opened do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  let raw = binary 44 in
  with_engine
    ~config:
      { small_config with queue_bound = 2; domains = 2; worker_gate = Some gate }
    (fun e ->
      List.iter
        (fun id -> Engine.submit_line e (analyze_line ~id:(string_of_int id) raw))
        [ 1; 2; 3; 4 ];
      (* workers are parked on the gate: 1 and 2 are in flight, 3 and 4
         arrive at a full queue and must shed immediately *)
      let shed = Engine.poll_responses e in
      check (Alcotest.list Alcotest.string) "nothing emitted before slot 1" []
        shed;
      Mutex.lock mu;
      opened := true;
      Condition.broadcast cv;
      Mutex.unlock mu;
      let all = Engine.flush e in
      check Alcotest.int "four responses" 4 (List.length all);
      let ids =
        List.map
          (fun r ->
            match Option.bind (response_field r "id") Json.to_int with
            | Some i -> i
            | None -> -1)
          all
      in
      check (Alcotest.list Alcotest.int) "request order preserved" [ 1; 2; 3; 4 ]
        ids;
      check
        (Alcotest.list Alcotest.string)
        "first two analyzed, rest shed as overloaded"
        [ "ok"; "ok"; "error"; "error" ]
        (List.map status all);
      check
        (Alcotest.list (Alcotest.option Alcotest.string))
        "shed responses carry the overloaded code"
        [ None; None; Some "overloaded"; Some "overloaded" ]
        (List.map error_code all))

let test_engine_deadline () =
  let raw = binary 45 in
  with_engine ~config:small_config (fun e ->
      Engine.submit_line e (analyze_line ~id:"1" ~deadline_ms:0 raw);
      (* an already-expired deadline cancels without poisoning the pool:
         the follow-up request on the same engine still analyzes *)
      Engine.submit_line e (analyze_line ~id:"2" raw);
      match Engine.flush e with
      | [ dead; alive ] ->
          check Alcotest.string "expired request errors" "error" (status dead);
          check
            (Alcotest.option Alcotest.string)
            "with the deadline_exceeded code" (Some "deadline_exceeded")
            (error_code dead);
          check Alcotest.string "next request unaffected" "ok" (status alive)
      | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))

(* ---- engine: failure isolation and malformed input ---- *)

let test_engine_isolation () =
  let raw = binary 46 in
  with_engine ~config:small_config (fun e ->
      Engine.submit_line e "this is not json";
      Engine.submit_line e (analyze_line ~id:"1" "not an elf binary");
      Engine.submit_line e {|{"id":2,"path":"/nonexistent/fetch-serve-test"}|};
      Engine.submit_line e (analyze_line ~id:"3" raw);
      Engine.submit_bad e "line too long";
      match Engine.flush e with
      | [ bad; junk; missing; ok; oversized ] ->
          check
            (Alcotest.option Alcotest.string)
            "malformed line -> bad_request" (Some "bad_request")
            (error_code bad);
          check
            (Alcotest.option Alcotest.string)
            "non-ELF bytes -> analysis_failed" (Some "analysis_failed")
            (error_code junk);
          check
            (Alcotest.option Alcotest.string)
            "unreadable path -> analysis_failed" (Some "analysis_failed")
            (error_code missing);
          check Alcotest.string "healthy request still analyzes" "ok" (status ok);
          check
            (Alcotest.option Alcotest.string)
            "oversized line -> bad_request" (Some "bad_request")
            (error_code oversized)
      | rs -> Alcotest.failf "expected 5 responses, got %d" (List.length rs))

let test_engine_want_and_stats () =
  let raw = binary 47 in
  with_engine ~config:small_config (fun e ->
      Engine.submit_line e (analyze_line ~id:"1" ~want:[ "starts" ] raw);
      Engine.submit_line e {|{"op":"stats","id":2}|};
      match Engine.flush e with
      | [ narrow; stats ] ->
          check Alcotest.bool "want=starts keeps starts" true
            (response_field narrow "starts" <> None);
          check Alcotest.bool "want=starts drops eh_frame and findings" true
            (response_field narrow "eh_frame" = None
            && response_field narrow "findings" = None
            && response_field narrow "diags" = None);
          check Alcotest.string "stats request answers in-band" "ok"
            (status stats);
          let requests =
            Option.bind (response_field stats "stats") (Json.member "requests")
            |> Fun.flip Option.bind Json.to_int
          in
          check (Alcotest.option Alcotest.int)
            "stats snapshot counts both requests" (Some 2) requests
      | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))

(* cached responses are byte-identical to a fresh engine's analysis of
   the same bytes — over random binaries *)
let prop_warm_equals_fresh =
  QCheck.Test.make ~name:"serve: warm == cold == fresh-engine response"
    ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let raw = binary ~n_funcs:8 (1000 + seed) in
      let one_engine () =
        with_engine
          ~config:{ small_config with domains = 1 }
          (fun e ->
            Engine.submit_line e (analyze_line ~id:"9" raw);
            let cold = Engine.flush e in
            Engine.submit_line e (analyze_line ~id:"9" raw);
            (cold, Engine.flush e))
      in
      let cold, warm = one_engine () in
      let fresh, _ = one_engine () in
      cold = warm && cold = fresh)

(* ---- bounded line reader ---- *)

let with_pipe f =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let feed wr s = ignore (Unix.write_substring wr s 0 (String.length s))

let test_line_reader () =
  with_pipe (fun rd wr ->
      let r = Serve.Line_reader.create ~max_line_bytes:10 rd in
      feed wr "one\ntwo";
      check Alcotest.bool "first step: complete line only" true
        (Serve.Line_reader.step r = [ `Line "one" ]);
      feed wr "-more\n";
      check Alcotest.bool "split line reassembled" true
        (Serve.Line_reader.step r = [ `Line "two-more" ]);
      (* a line over the bound is discarded to its newline and flagged *)
      feed wr (String.make 25 'x');
      check Alcotest.bool "over-bound prefix discarded silently" true
        (Serve.Line_reader.step r = []);
      feed wr "yyy\nok\n";
      check Alcotest.bool "oversized flagged once, then stream resumes" true
        (Serve.Line_reader.step r = [ `Oversized; `Line "ok" ]);
      (* unterminated tail is delivered at EOF *)
      feed wr "tail";
      check Alcotest.bool "tail buffered" true (Serve.Line_reader.step r = []);
      Unix.close wr;
      check Alcotest.bool "eof flushes the tail" true
        (Serve.Line_reader.step r = [ `Line "tail"; `Eof ]);
      check Alcotest.bool "eof is sticky" true
        (Serve.Line_reader.step r = [ `Eof ]))

(* ---- socket round trip: the cache outlives connections ---- *)

let test_socket_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fetch-serve-test-%d.sock" (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Serve.run_socket
          ~config:
            {
              Serve.default_config with
              engine = { small_config with domains = 1 };
            }
          ~should_stop:(fun () -> Atomic.get stop)
          path)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      let rec wait_for_socket tries =
        if Sys.file_exists path then ()
        else if tries = 0 then Alcotest.fail "socket never appeared"
        else begin
          Unix.sleepf 0.05;
          wait_for_socket (tries - 1)
        end
      in
      wait_for_socket 100;
      let raw = binary 48 in
      let round () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX path);
            feed fd (analyze_line ~id:"1" raw ^ "\n");
            Unix.shutdown fd Unix.SHUTDOWN_SEND;
            let buf = Buffer.create 4096 in
            let chunk = Bytes.create 4096 in
            let rec drain () =
              let n = Unix.read fd chunk 0 (Bytes.length chunk) in
              if n > 0 then begin
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
              end
            in
            drain ();
            Buffer.contents buf)
      in
      let cold = round () in
      let warm = round () in
      check Alcotest.bool "socket response is a full ok line" true
        (String.length cold > 0
        && cold.[String.length cold - 1] = '\n'
        && status (String.trim cold) = "ok");
      check Alcotest.string
        "second connection served byte-identically from the cache" cold warm)

let suite =
  [
    Alcotest.test_case "protocol: request parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol: response rendering" `Quick test_protocol_render;
    Alcotest.test_case "cache: LRU byte budget" `Quick test_cache_lru;
    Alcotest.test_case "cache: eh level and indirect taint" `Quick
      test_cache_eh_level;
    Alcotest.test_case "engine: warm hit is byte-identical" `Quick
      test_engine_warm_hit;
    Alcotest.test_case "engine: re-linked binary reuses the eh decode" `Quick
      test_engine_eh_partial_hit;
    Alcotest.test_case "engine: queue overflow sheds as overloaded" `Quick
      test_engine_shed;
    Alcotest.test_case "engine: deadlines cancel cleanly" `Quick
      test_engine_deadline;
    Alcotest.test_case "engine: per-request failure isolation" `Quick
      test_engine_isolation;
    Alcotest.test_case "engine: want filtering and in-band stats" `Quick
      test_engine_want_and_stats;
    QCheck_alcotest.to_alcotest prop_warm_equals_fresh;
    Alcotest.test_case "line reader: bounds and reassembly" `Quick
      test_line_reader;
    Alcotest.test_case "socket: cache persists across connections" `Quick
      test_socket_roundtrip;
  ]
