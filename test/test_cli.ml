(* CLI-level tests for `fetch lint` and `fetch rules`: exit-code gating
   (--fail-on) and JSONL output shape.  Runs the real executable
   (argv.(1), wired up by the dune rule) against binaries synthesized
   in-process, so the checks cover argument parsing, serialization and
   the process exit path that the unit tests bypass.

   The exit-code checks are self-consistent — the expected code is
   recomputed from the findings the same invocation printed — plus one
   binary built with broken FDEs so the warning gate is exercised
   non-vacuously. *)

module Json = Fetch_util.Json

let fetch =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: test_cli FETCH_EXE";
    exit 2
  end
  else Sys.argv.(1)

let failures = ref 0

let check name cond =
  if cond then Printf.printf "ok   %s\n" name
  else begin
    Printf.printf "FAIL %s\n" name;
    incr failures
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save (built : Fetch_synth.Link.built) =
  let path = Filename.temp_file "fetch_cli" ".elf" in
  let oc = open_out_bin path in
  output_string oc built.raw;
  close_out oc;
  path

let profile =
  Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2

let write_binary ~seed spec = save (Fetch_synth.Link.build_random ~profile ~seed spec)

(* A binary guaranteed to lint with a Warning: an unreferenced function
   behind a hand-broken FDE.  The FDE start points into the
   callconv-violating pre-entry bytes, so the seed is rejected; nothing
   else references the function, so its whole range stays undecoded —
   `fde-unreached` at Warning severity from both `lint` and `rules`. *)
let write_warning_binary ~seed =
  let rng = Fetch_util.Prng.create seed in
  let prog =
    Fetch_synth.Gen.program rng profile
      { Fetch_synth.Gen.default_spec with n_funcs = 15 }
  in
  let orphan =
    Fetch_synth.Ir.make_func ~name:"orphan" ~params:1 ~is_assembly:true
      ~emit_fde:true ~broken_fde:true ~align:16 ~endbr:false
      [ Fetch_synth.Ir.Compute 3; Fetch_synth.Ir.Return ]
  in
  let prog =
    { prog with Fetch_synth.Ir.funcs = prog.Fetch_synth.Ir.funcs @ [ orphan ] }
  in
  save (Fetch_synth.Link.build ~profile ~rng prog)

(* stderr is dropped: --stats prints the report to stdout and the
   lint/rules commands only use stderr for hard errors, which the exit
   code already surfaces. *)
let run args =
  let out = Filename.temp_file "fetch_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote fetch) args
         (Filename.quote out))
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> l <> "")

(* ---- JSONL shape: every line is one finding object ---- *)

type counts = { errors : int; warnings : int; infos : int }

let check_jsonl tool path =
  let code, text = run (Printf.sprintf "%s %s --json --fail-on never" tool path) in
  check (tool ^ ": --fail-on never exits 0") (code = 0);
  let counts = ref { errors = 0; warnings = 0; infos = 0 } in
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e ->
          check (Printf.sprintf "%s: JSONL line parses (%s)" tool e) false
      | Ok j ->
          let str k = Option.bind (Json.member k j) Json.to_str in
          let int k = Option.bind (Json.member k j) Json.to_int in
          check (tool ^ ": finding has rule/addr/message")
            (str "rule" <> None && int "addr" <> None && str "message" <> None);
          (match str "severity" with
          | Some "error" -> counts := { !counts with errors = !counts.errors + 1 }
          | Some "warning" ->
              counts := { !counts with warnings = !counts.warnings + 1 }
          | Some "info" -> counts := { !counts with infos = !counts.infos + 1 }
          | _ -> check (tool ^ ": finding has a valid severity") false))
    (lines text);
  !counts

(* ---- exit codes recomputed from the findings just printed ---- *)

let check_gate tool path (c : counts) =
  let code_err, _ = run (Printf.sprintf "%s %s --json" tool path) in
  check
    (Printf.sprintf "%s: default gate is --fail-on error (%d errors)" tool
       c.errors)
    (code_err = if c.errors > 0 then 1 else 0);
  let code_warn, _ =
    run (Printf.sprintf "%s %s --json --fail-on warning" tool path)
  in
  check
    (Printf.sprintf "%s: --fail-on warning (%d errors+warnings)" tool
       (c.errors + c.warnings))
    (code_warn = if c.errors + c.warnings > 0 then 1 else 0)

(* ---- adversarial scenario binaries through the same CLI surface ---- *)

let write_adversarial id =
  match Fetch_synth.Adversary.find id with
  | None ->
      check (Printf.sprintf "adversarial scenario %s exists" id) false;
      exit 1
  | Some sc -> save (Fetch_synth.Adversary.build sc ~seed:31)

(* Findings of one rule, straight from the JSONL stream. *)
let rule_findings tool path rule =
  let _, text = run (Printf.sprintf "%s %s --json --fail-on never" tool path) in
  List.filter
    (fun line ->
      match Json.parse line with
      | Error _ -> false
      | Ok j -> Option.bind (Json.member "rule" j) Json.to_str = Some rule)
    (lines text)

let () =
  let clean =
    write_binary ~seed:11
      { Fetch_synth.Gen.default_spec with n_funcs = 25; n_asm_called = 1 }
  in
  let broken =
    write_binary ~seed:12
      { Fetch_synth.Gen.default_spec with n_funcs = 20; n_broken_fde = 2 }
  in
  let warn = write_warning_binary ~seed:12 in
  let adv_cfi = write_adversarial "cfi-broken" in
  let adv_junk = write_adversarial "padding-junk" in
  List.iter
    (fun tool ->
      List.iter
        (fun path ->
          let c = check_jsonl tool path in
          check_gate tool path c)
        [ clean; broken; warn; adv_cfi; adv_junk ])
    [ "lint"; "rules" ];

  (* the cfi-broken corpus is Fig. 6b at scale: its ten hand-broken FDEs
     must surface through the lint surface, not just the eval harness —
     as split-fn-fde fragments from the rules engine, and as unreached
     FDE ranges (the rejected lying starts) from the structural linter *)
  check "rules: cfi-broken binary trips split-fn-fde"
    (rule_findings "rules" adv_cfi "split-fn-fde" <> []);
  check "lint: cfi-broken binary reports its ten lying FDEs as unreached"
    (List.length (rule_findings "lint" adv_cfi "fde-unreached") >= 10);
  (* junk pools are data, never reached: the mid-instruction-jump rule
     must stay quiet — forged prologues alone must not create findings *)
  List.iter
    (fun tool ->
      check
        (tool ^ ": padding-junk binary stays clean of jump-mid-insn")
        (rule_findings tool adv_junk "jump-mid-insn" = []))
    [ "lint"; "rules" ];

  (* the orphan-FDE binary must actually trip the warning gate, or the
     --fail-on warning checks above only ever saw exit 0 *)
  let c_rules = check_jsonl "rules" warn in
  check "rules: orphan FDE yields a warning" (c_rules.warnings > 0);
  let c_lint = check_jsonl "lint" warn in
  check "lint: orphan FDE yields a warning" (c_lint.warnings > 0);

  (* --stats: the report lands on stdout and carries the facts.* meters;
     the summary line proves the engine actually ran *)
  let code, text = run (Printf.sprintf "rules %s --stats --fail-on never" clean) in
  check "rules: --stats exits 0" (code = 0);
  let summary =
    List.find_opt
      (fun l -> String.length l >= 10 && String.sub l 0 10 = "fact base:")
      (lines text)
  in
  (match summary with
  | None -> check "rules: --stats prints the fact-base summary" false
  | Some l ->
      Scanf.sscanf l "fact base: %d tuples (%d derived), %d strata, %d rule firings"
        (fun tuples derived strata firings ->
          check "rules: fact base is populated"
            (tuples > 0 && derived > 0 && strata > 0 && firings > 0)));
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  check "rules: --stats shows facts.* counters" (contains "facts.derived");
  check "rules: --stats shows the facts.eval span" (contains "facts.eval");

  (* ---- explain: a garbage address must exit 2 with usage, not crash ---- *)
  List.iter
    (fun addr ->
      let code, _ = run (Printf.sprintf "explain %s %s" clean addr) in
      check (Printf.sprintf "explain rejects %s with exit 2" addr) (code = 2))
    [ "zzz"; "0xgg"; "''" ];
  let code_ok, _ = run (Printf.sprintf "explain %s 0x401000" clean) in
  check "explain accepts a hex address" (code_ok = 0);

  (* ---- serve: one stdin session through the real executable ---- *)
  let reqs = Filename.temp_file "fetch_cli" ".jsonl" in
  let oc = open_out_bin reqs in
  Printf.fprintf oc
    {|{"id":1,"path":%s}
{"id":2,"path":%s,"want":["starts"]}
not even json
{"id":4,"path":"/nonexistent/fetch-cli-serve"}
{"op":"stats","id":5}
|}
    (Fetch_util.Json.escape clean)
    (Fetch_util.Json.escape clean);
  close_out oc;
  let stats_out = Filename.temp_file "fetch_cli" ".stats" in
  let code, serve_text =
    run
      (Printf.sprintf "serve --domains 2 --stats-json %s < %s"
         (Filename.quote stats_out) (Filename.quote reqs))
  in
  check "serve session exits 0" (code = 0);
  let responses = lines serve_text in
  check "serve answers every line" (List.length responses = 5);
  let field line k =
    match Json.parse line with
    | Ok j -> Json.member k j
    | Error _ -> None
  in
  let statuses =
    List.map (fun l -> Option.bind (field l "status") Json.to_str) responses
  in
  check "serve statuses in request order"
    (statuses
    = [ Some "ok"; Some "ok"; Some "error"; Some "error"; Some "ok" ]);
  let ids = List.map (fun l -> Option.bind (field l "id") Json.to_int) responses in
  check "serve echoes ids in order"
    (ids = [ Some 1; Some 2; None; Some 4; Some 5 ]);
  (match responses with
  | _ :: narrow :: bad :: missing :: stats :: _ ->
      check "serve want=starts drops findings" (field narrow "findings" = None);
      check "serve malformed line is bad_request"
        (Option.bind (field bad "code") Json.to_str = Some "bad_request");
      check "serve unreadable path is analysis_failed"
        (Option.bind (field missing "code") Json.to_str = Some "analysis_failed");
      check "serve in-band stats counts requests"
        (match
           Option.bind (field stats "stats") (Json.member "requests")
           |> Fun.flip Option.bind Json.to_int
         with
        | Some n -> n >= 4
        | None -> false)
  | _ -> check "serve responses have the expected shape" false);
  let stats_text = read_file stats_out in
  check "serve --stats-json writes a parseable snapshot on exit"
    (match Json.parse (String.trim stats_text) with
    | Ok j -> Json.member "cache" j <> None
    | Error _ -> false);
  (* an over-bound request line is answered, not fatal: the line is
     discarded to its newline and the stream resumes *)
  let oc = open_out_bin reqs in
  Printf.fprintf oc "{\"id\":1,\"bytes_b64\":\"%s\"}\n{\"op\":\"stats\"}\n"
    (String.make 4096 'A');
  close_out oc;
  let code, serve_text =
    run (Printf.sprintf "serve --max-line-kb 1 < %s" (Filename.quote reqs))
  in
  check "serve survives an over-bound line" (code = 0);
  (match lines serve_text with
  | [ oversized; stats ] ->
      check "over-bound line answered with bad_request"
        (Option.bind (field oversized "code") Json.to_str = Some "bad_request");
      check "stream resumes after the over-bound line"
        (Option.bind (field stats "status") Json.to_str = Some "ok")
  | rs -> check (Printf.sprintf "expected 2 responses, got %d" (List.length rs)) false);
  Sys.remove reqs;
  Sys.remove stats_out;

  Sys.remove clean;
  Sys.remove broken;
  Sys.remove warn;
  Sys.remove adv_cfi;
  Sys.remove adv_junk;
  if !failures > 0 then begin
    Printf.printf "%d CLI check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "all CLI checks passed"
