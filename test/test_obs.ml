(* Tests for the Fetch_obs instrumentation layer: clock behaviour,
   counter registration/reset, span nesting and timing monotonicity, the
   JSON-lines sink's exact output, and an instrumented pipeline run on a
   synthetic binary. *)

open Fetch_synth
module Obs = Fetch_obs.Trace
module Report = Fetch_obs.Report
module Clock = Fetch_obs.Clock

let check = Alcotest.check

let test_clock () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check Alcotest.bool "clock is monotonic" true (Int64.compare b a >= 0);
  let x, dt = Clock.time_s (fun () -> 41 + 1) in
  check Alcotest.int "time_s returns the result" 42 x;
  check Alcotest.bool "elapsed time is non-negative" true (dt >= 0.0)

let test_counters () =
  let c = Obs.counter "test.obs.counter" in
  let c' = Obs.counter "test.obs.counter" in
  check Alcotest.bool "same name interns to the same counter" true (c == c');
  Obs.incr c;
  check Alcotest.int "incr outside a run is a no-op" 0 (Obs.value c);
  Obs.start ();
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3;
  let h = Obs.histogram "test.obs.hist" in
  Obs.observe h 5;
  Obs.observe h 1;
  let r = Obs.stop () in
  check Alcotest.int "counter recorded" 5 (List.assoc "test.obs.counter" r.Obs.counters);
  let hs = List.assoc "test.obs.hist" r.Obs.histograms in
  check Alcotest.int "hist count" 2 hs.Obs.count;
  check Alcotest.int "hist sum" 6 hs.Obs.sum;
  check Alcotest.int "hist min" 1 hs.Obs.min;
  check Alcotest.int "hist max" 5 hs.Obs.max;
  Obs.incr c;
  check Alcotest.int "incr after stop is a no-op" 5 (Obs.value c);
  Obs.start ();
  let r2 = Obs.stop () in
  check Alcotest.int "start resets counters" 0
    (List.assoc "test.obs.counter" r2.Obs.counters);
  check Alcotest.int "start resets histograms" 0
    (List.assoc "test.obs.hist" r2.Obs.histograms).Obs.count

let test_span_nesting () =
  let v, r =
    Obs.with_run (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 1000 (fun i -> i * i))));
            Obs.span "inner2" (fun () -> ());
            7))
  in
  check Alcotest.int "with_run returns the result" 7 v;
  check (Alcotest.list Alcotest.string) "spans in pre-order"
    [ "outer"; "inner1"; "inner2" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) r.Obs.spans);
  check (Alcotest.list Alcotest.int) "nesting depths" [ 0; 1; 1 ]
    (List.map (fun (s : Obs.span) -> s.Obs.depth) r.Obs.spans);
  let span name = List.find (fun (s : Obs.span) -> s.Obs.name = name) r.Obs.spans in
  let outer = span "outer" and i1 = span "inner1" and i2 = span "inner2" in
  List.iter
    (fun (s : Obs.span) ->
      check Alcotest.bool (s.Obs.name ^ " start non-negative") true
        (Int64.compare s.Obs.start_ns 0L >= 0);
      check Alcotest.bool (s.Obs.name ^ " duration non-negative") true
        (Int64.compare s.Obs.dur_ns 0L >= 0))
    r.Obs.spans;
  check Alcotest.bool "children start after parent" true
    (Int64.compare i1.Obs.start_ns outer.Obs.start_ns >= 0);
  check Alcotest.bool "inner2 starts after inner1" true
    (Int64.compare i2.Obs.start_ns i1.Obs.start_ns >= 0);
  check Alcotest.bool "parent duration covers children" true
    (Int64.compare outer.Obs.dur_ns (Int64.add i1.Obs.dur_ns i2.Obs.dur_ns) >= 0)

let test_span_exception_safety () =
  let (), r =
    Obs.with_run (fun () ->
        (try Obs.span "boom" (fun () -> failwith "bang") with Failure _ -> ());
        Obs.span "after" (fun () -> ()))
  in
  check (Alcotest.list Alcotest.string) "raising span still recorded"
    [ "boom"; "after" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) r.Obs.spans);
  check (Alcotest.list Alcotest.int) "depth restored after the exception"
    [ 0; 0 ]
    (List.map (fun (s : Obs.span) -> s.Obs.depth) r.Obs.spans);
  check Alcotest.bool "recorder disabled after with_run" false (Obs.enabled ())

let golden_report : Obs.report =
  {
    Obs.spans =
      [
        { Obs.name = "pipeline"; depth = 0; start_ns = 0L; dur_ns = 1500L };
        { Obs.name = "say \"hi\"\n"; depth = 1; start_ns = 10L; dur_ns = 2L };
      ];
    counters = [ ("xref.accepted", 3) ];
    histograms =
      [ ("recursive.block_insns", { Obs.count = 2; sum = 7; min = 3; max = 4 }) ];
  }

let test_json_lines_golden () =
  let expected =
    "{\"type\":\"span\",\"name\":\"pipeline\",\"depth\":0,\"start_ns\":0,\"dur_ns\":1500}\n"
    ^ "{\"type\":\"span\",\"name\":\"say \\\"hi\\\"\\n\",\"depth\":1,\"start_ns\":10,\"dur_ns\":2}\n"
    ^ "{\"type\":\"counter\",\"name\":\"xref.accepted\",\"value\":3}\n"
    ^ "{\"type\":\"histogram\",\"name\":\"recursive.block_insns\",\"count\":2,\"sum\":7,\"min\":3,\"max\":4}\n"
  in
  check Alcotest.string "golden JSON lines" expected (Report.json_lines golden_report)

let test_sinks () =
  (* the default sink records nothing and the recorder stays off *)
  let v = Report.run (fun () -> check Alcotest.bool "noop sink leaves recorder off" false (Obs.enabled ()); 3) in
  check Alcotest.int "noop sink passes the result through" 3 v;
  let file = Filename.temp_file "fetch_obs" ".jsonl" in
  let oc = open_out file in
  let v = Report.run ~sink:(Report.Json_lines oc) (fun () -> Obs.span "s" (fun () -> 5)) in
  close_out oc;
  check Alcotest.int "json sink passes the result through" 5 v;
  let ic = open_in file in
  let line = input_line ic in
  close_in ic;
  Sys.remove file;
  check Alcotest.bool "json sink wrote the span" true
    (String.length line > 0 && line.[0] = '{')

(* Instrumented end-to-end pipeline run: the same corpus shape as
   test_core, asserting the stage spans exist and the key counters are
   populated. *)
let spec =
  {
    Gen.default_spec with
    n_funcs = 50;
    n_asm_called = 2;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
  }

let test_pipeline_instrumented () =
  let profile = Profile.make Profile.Synthgcc Profile.O2 in
  let b = Link.build_random ~profile ~seed:2024 spec in
  let r, rep = Obs.with_run (fun () -> Fetch_core.Pipeline.run b.image) in
  let span_names =
    List.sort_uniq compare (List.map (fun (s : Obs.span) -> s.Obs.name) rep.Obs.spans)
  in
  List.iter
    (fun n -> check Alcotest.bool ("span " ^ n ^ " present") true (List.mem n span_names))
    [ "pipeline"; "seeds"; "recursive"; "xref"; "fde_callconv_check"; "tailcall" ];
  let c n =
    match List.assoc_opt n rep.Obs.counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" n
  in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " populated") true (c n > 0))
    [
      "pipeline.seeds.fde";
      "pipeline.seeds.final";
      "recursive.insns_decoded";
      "recursive.functions_disassembled";
      "recursive.noreturn_iters";
      "xref.candidates_scanned";
      "xref.accepted";
      "tailcall.pairs_examined";
      "tailcall.tail_calls";
    ];
  (* the four §IV-E rejection reasons and Algorithm 1's three rules are
     all registered and reported *)
  List.iter
    (fun n -> check Alcotest.bool (n ^ " registered") true (List.mem_assoc n rep.Obs.counters))
    [
      "xref.reject.invalid_opcode";
      "xref.reject.mid_instruction";
      "xref.reject.into_function";
      "xref.reject.callconv";
      "tailcall.reject.cfa_height";
      "tailcall.reject.jump_only_refs";
      "tailcall.reject.callconv";
    ];
  (* every scanned candidate is either accepted or rejected for exactly
     one of the four reasons *)
  check Alcotest.int "xref validation accounting"
    (c "xref.candidates_scanned")
    (c "xref.accepted" + c "xref.reject.invalid_opcode"
    + c "xref.reject.mid_instruction" + c "xref.reject.into_function"
    + c "xref.reject.callconv");
  (* the decode histogram covers every decoded instruction *)
  let bi = List.assoc "recursive.block_insns" rep.Obs.histograms in
  check Alcotest.int "block histogram sums to insns decoded"
    (c "recursive.insns_decoded") bi.Obs.sum;
  (* final seed set surfaced on the result (the old code dropped it) *)
  check Alcotest.bool "no broken FDEs in this corpus" true (r.invalid_fde_starts = []);
  check Alcotest.int "pipeline.seeds.final matches result"
    (List.length r.final_seeds)
    (c "pipeline.seeds.final");
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "FDE start %#x in final seeds" s) true
        (List.mem s r.final_seeds))
    r.fde_starts;
  check Alcotest.int "final seeds = FDE starts + accepted pointers"
    (List.length (List.sort_uniq compare r.fde_starts) + c "xref.accepted")
    (List.length r.final_seeds)

let suite =
  [
    Alcotest.test_case "monotonic clock" `Quick test_clock;
    Alcotest.test_case "counter registration and reset" `Quick test_counters;
    Alcotest.test_case "span nesting and monotonic timing" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "JSON-lines golden output" `Quick test_json_lines_golden;
    Alcotest.test_case "sinks" `Quick test_sinks;
    Alcotest.test_case "instrumented pipeline run" `Quick test_pipeline_instrumented;
  ]
