(* Tests for the Fetch_obs instrumentation layer: clock behaviour,
   counter registration/reset, span nesting and timing monotonicity, the
   JSON-lines sink's exact output, and an instrumented pipeline run on a
   synthetic binary. *)

open Fetch_synth
module Obs = Fetch_obs.Trace
module Report = Fetch_obs.Report
module Clock = Fetch_obs.Clock

let check = Alcotest.check

let test_clock () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check Alcotest.bool "clock is monotonic" true (Int64.compare b a >= 0);
  let x, dt = Clock.time_s (fun () -> 41 + 1) in
  check Alcotest.int "time_s returns the result" 42 x;
  check Alcotest.bool "elapsed time is non-negative" true (dt >= 0.0)

let test_counters () =
  let c = Obs.counter "test.obs.counter" in
  let c' = Obs.counter "test.obs.counter" in
  check Alcotest.bool "same name interns to the same counter" true (c == c');
  Obs.incr c;
  check Alcotest.int "incr outside a run is a no-op" 0 (Obs.value c);
  Obs.start ();
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3;
  let h = Obs.histogram "test.obs.hist" in
  Obs.observe h 5;
  Obs.observe h 1;
  let r = Obs.stop () in
  check Alcotest.int "counter recorded" 5 (List.assoc "test.obs.counter" r.Obs.counters);
  let hs = List.assoc "test.obs.hist" r.Obs.histograms in
  check Alcotest.int "hist count" 2 hs.Obs.count;
  check Alcotest.int "hist sum" 6 hs.Obs.sum;
  check Alcotest.int "hist min" 1 hs.Obs.min;
  check Alcotest.int "hist max" 5 hs.Obs.max;
  Obs.incr c;
  check Alcotest.int "incr after stop is a no-op" 5 (Obs.value c);
  Obs.start ();
  let r2 = Obs.stop () in
  check Alcotest.int "start resets counters" 0
    (List.assoc "test.obs.counter" r2.Obs.counters);
  check Alcotest.int "start resets histograms" 0
    (List.assoc "test.obs.hist" r2.Obs.histograms).Obs.count

let test_span_nesting () =
  let v, r =
    Obs.with_run (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner1" (fun () ->
                ignore (Sys.opaque_identity (List.init 1000 (fun i -> i * i))));
            Obs.span "inner2" (fun () -> ());
            7))
  in
  check Alcotest.int "with_run returns the result" 7 v;
  check (Alcotest.list Alcotest.string) "spans in pre-order"
    [ "outer"; "inner1"; "inner2" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) r.Obs.spans);
  check (Alcotest.list Alcotest.int) "nesting depths" [ 0; 1; 1 ]
    (List.map (fun (s : Obs.span) -> s.Obs.depth) r.Obs.spans);
  let span name = List.find (fun (s : Obs.span) -> s.Obs.name = name) r.Obs.spans in
  let outer = span "outer" and i1 = span "inner1" and i2 = span "inner2" in
  List.iter
    (fun (s : Obs.span) ->
      check Alcotest.bool (s.Obs.name ^ " start non-negative") true
        (Int64.compare s.Obs.start_ns 0L >= 0);
      check Alcotest.bool (s.Obs.name ^ " duration non-negative") true
        (Int64.compare s.Obs.dur_ns 0L >= 0))
    r.Obs.spans;
  check Alcotest.bool "children start after parent" true
    (Int64.compare i1.Obs.start_ns outer.Obs.start_ns >= 0);
  check Alcotest.bool "inner2 starts after inner1" true
    (Int64.compare i2.Obs.start_ns i1.Obs.start_ns >= 0);
  check Alcotest.bool "parent duration covers children" true
    (Int64.compare outer.Obs.dur_ns (Int64.add i1.Obs.dur_ns i2.Obs.dur_ns) >= 0)

let test_span_exception_safety () =
  let (), r =
    Obs.with_run (fun () ->
        (try Obs.span "boom" (fun () -> failwith "bang") with Failure _ -> ());
        Obs.span "after" (fun () -> ()))
  in
  check (Alcotest.list Alcotest.string) "raising span still recorded"
    [ "boom"; "after" ]
    (List.map (fun (s : Obs.span) -> s.Obs.name) r.Obs.spans);
  check (Alcotest.list Alcotest.int) "depth restored after the exception"
    [ 0; 0 ]
    (List.map (fun (s : Obs.span) -> s.Obs.depth) r.Obs.spans);
  check Alcotest.bool "recorder disabled after with_run" false (Obs.enabled ())

let golden_report : Obs.report =
  {
    Obs.spans =
      [
        {
          Obs.name = "pipeline";
          depth = 0;
          start_ns = 0L;
          dur_ns = 1500L;
          run = 1;
          args = [];
        };
        {
          Obs.name = "say \"hi\"\n";
          depth = 1;
          start_ns = 10L;
          dur_ns = 2L;
          run = 1;
          args = [ ("round", "3") ];
        };
      ];
    counters = [ ("xref.accepted", 3) ];
    histograms =
      [ ("recursive.block_insns", Obs.hist_stats_of_values [ 3; 4 ]) ];
  }

let test_json_lines_golden () =
  let expected =
    "{\"type\":\"span\",\"name\":\"pipeline\",\"depth\":0,\"start_ns\":0,\"dur_ns\":1500,\"run\":1}\n"
    ^ "{\"type\":\"span\",\"name\":\"say \\\"hi\\\"\\n\",\"depth\":1,\"start_ns\":10,\"dur_ns\":2,\"run\":1,\"args\":{\"round\":\"3\"}}\n"
    ^ "{\"type\":\"counter\",\"name\":\"xref.accepted\",\"value\":3}\n"
    ^ "{\"type\":\"histogram\",\"name\":\"recursive.block_insns\",\"count\":2,\"sum\":7,\"min\":3,\"max\":4,\"p50\":3,\"p90\":4,\"p99\":4,\"buckets\":[[2,1],[3,1]]}\n"
  in
  check Alcotest.string "golden JSON lines" expected (Report.json_lines golden_report)

let test_chrome_trace_golden () =
  let expected =
    "{\"traceEvents\":[\n"
    ^ "{\"name\":\"pipeline\",\"ph\":\"X\",\"ts\":0.000,\"dur\":1.500,\"pid\":0,\"tid\":1},\n"
    ^ "{\"name\":\"say \\\"hi\\\"\\n\",\"ph\":\"X\",\"ts\":0.010,\"dur\":0.002,\"pid\":0,\"tid\":1,\"args\":{\"round\":\"3\"}},\n"
    ^ "{\"name\":\"xref.accepted\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"value\":3}},\n"
    ^ "{\"name\":\"recursive.block_insns\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"count\":2,\"sum\":7,\"min\":3,\"max\":4,\"p50\":3,\"p90\":4,\"p99\":4}}\n"
    ^ "],\"displayTimeUnit\":\"ms\"}\n"
  in
  check Alcotest.string "golden Chrome trace" expected
    (Report.chrome_trace golden_report)

let test_percentiles () =
  check Alcotest.int "empty histogram percentile is 0" 0
    (Obs.percentile Obs.empty_hist_stats 50.0);
  let one = Obs.hist_stats_of_values [ 17 ] in
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "single value: p%g exact" p)
        17 (Obs.percentile one p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  let vs = List.init 1000 (fun i -> i + 1) in
  let h = Obs.hist_stats_of_values vs in
  check Alcotest.int "p100 is the exact max" 1000 (Obs.percentile h 100.0);
  List.iter
    (fun p ->
      let est = Obs.percentile h p in
      let exact = int_of_float (Float.ceil (p /. 100.0 *. 1000.0)) in
      let exact = if exact < 1 then 1 else exact in
      check Alcotest.bool
        (Printf.sprintf "p%g within observed range" p)
        true
        (est >= h.Obs.min && est <= h.Obs.max);
      (* log-2 buckets: the estimate is within a factor of 2 of truth *)
      check Alcotest.bool
        (Printf.sprintf "p%g within 2x of exact %d (got %d)" p exact est)
        true
        (est <= 2 * exact && exact <= 2 * est))
    [ 50.0; 90.0; 99.0 ]

let test_span_args () =
  let (), r =
    Obs.with_run (fun () ->
        Obs.span ~args:[ ("k", "v") ] "with_args" (fun () ->
            Obs.set_arg "late" "1";
            Obs.set_arg "late" "2" (* overwrite *));
        Obs.span "plain" (fun () -> Obs.set_arg "x" "y"))
  in
  let span name =
    List.find (fun (s : Obs.span) -> s.Obs.name = name) r.Obs.spans
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "open args plus set_arg, last overwrite wins"
    [ ("k", "v"); ("late", "2") ]
    (span "with_args").Obs.args;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "set_arg lands on the innermost open span"
    [ ("x", "y") ]
    (span "plain").Obs.args;
  check Alcotest.bool "runs get distinct positive ids" true
    ((span "plain").Obs.run > 0 && (span "plain").Obs.run = (span "with_args").Obs.run)

(* QCheck: merging per-run reports preserves every histogram bucket
   count exactly, and percentiles of the merged histogram stay inside
   the union of the observed ranges. *)
let prop_merge_preserves_histograms =
  let gen = QCheck.(pair (small_list (int_bound 10_000)) (small_list (int_bound 10_000))) in
  QCheck.Test.make ~name:"Trace.merge preserves histogram buckets" ~count:200 gen
    (fun (xs, ys) ->
      let ha = Obs.hist_stats_of_values xs
      and hb = Obs.hist_stats_of_values ys in
      let ra = { Obs.spans = []; counters = []; histograms = [ ("h", ha) ] }
      and rb = { Obs.spans = []; counters = []; histograms = [ ("h", hb) ] } in
      let m = List.assoc "h" (Obs.merge [ ra; rb ]).Obs.histograms in
      let all = Obs.hist_stats_of_values (xs @ ys) in
      let buckets_equal =
        Array.for_all2 ( = ) m.Obs.buckets all.Obs.buckets
      in
      let counts_ok =
        m.Obs.count = all.Obs.count && m.Obs.sum = all.Obs.sum
      in
      let percentiles_ok =
        m.Obs.count = 0
        || List.for_all
             (fun p ->
               let v = Obs.percentile m p in
               v >= m.Obs.min && v <= m.Obs.max)
             [ 0.0; 50.0; 90.0; 99.0; 100.0 ]
      in
      buckets_equal && counts_ok && percentiles_ok)

let test_sinks () =
  (* the default sink records nothing and the recorder stays off *)
  let v = Report.run (fun () -> check Alcotest.bool "noop sink leaves recorder off" false (Obs.enabled ()); 3) in
  check Alcotest.int "noop sink passes the result through" 3 v;
  let file = Filename.temp_file "fetch_obs" ".jsonl" in
  let oc = open_out file in
  let v = Report.run ~sink:(Report.Json_lines oc) (fun () -> Obs.span "s" (fun () -> 5)) in
  close_out oc;
  check Alcotest.int "json sink passes the result through" 5 v;
  let ic = open_in file in
  let line = input_line ic in
  close_in ic;
  Sys.remove file;
  check Alcotest.bool "json sink wrote the span" true
    (String.length line > 0 && line.[0] = '{')

(* Instrumented end-to-end pipeline run: the same corpus shape as
   test_core, asserting the stage spans exist and the key counters are
   populated. *)
let spec =
  {
    Gen.default_spec with
    n_funcs = 50;
    n_asm_called = 2;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
  }

let test_pipeline_instrumented () =
  let profile = Profile.make Profile.Synthgcc Profile.O2 in
  let b = Link.build_random ~profile ~seed:2024 spec in
  let r, rep = Obs.with_run (fun () -> Fetch_core.Pipeline.run b.image) in
  let span_names =
    List.sort_uniq compare (List.map (fun (s : Obs.span) -> s.Obs.name) rep.Obs.spans)
  in
  List.iter
    (fun n -> check Alcotest.bool ("span " ^ n ^ " present") true (List.mem n span_names))
    [ "pipeline"; "seeds"; "recursive"; "xref"; "fde_callconv_check"; "tailcall" ];
  let c n =
    match List.assoc_opt n rep.Obs.counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" n
  in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " populated") true (c n > 0))
    [
      "pipeline.seeds.fde";
      "pipeline.seeds.final";
      "recursive.insns_decoded";
      "recursive.functions_disassembled";
      "recursive.noreturn_iters";
      "xref.candidates_scanned";
      "xref.accepted";
      "tailcall.pairs_examined";
      "tailcall.tail_calls";
    ];
  (* the four §IV-E rejection reasons and Algorithm 1's three rules are
     all registered and reported *)
  List.iter
    (fun n -> check Alcotest.bool (n ^ " registered") true (List.mem_assoc n rep.Obs.counters))
    [
      "xref.reject.invalid_opcode";
      "xref.reject.mid_instruction";
      "xref.reject.into_function";
      "xref.reject.callconv";
      "tailcall.reject.cfa_height";
      "tailcall.reject.jump_only_refs";
      "tailcall.reject.callconv";
    ];
  (* every scanned candidate is either accepted or rejected for exactly
     one of the four reasons *)
  check Alcotest.int "xref validation accounting"
    (c "xref.candidates_scanned")
    (c "xref.accepted" + c "xref.reject.invalid_opcode"
    + c "xref.reject.mid_instruction" + c "xref.reject.into_function"
    + c "xref.reject.callconv");
  (* the decode histogram covers every decoded instruction *)
  let bi = List.assoc "recursive.block_insns" rep.Obs.histograms in
  check Alcotest.int "block histogram sums to insns decoded"
    (c "recursive.insns_decoded") bi.Obs.sum;
  (* final seed set surfaced on the result (the old code dropped it) *)
  check Alcotest.bool "no broken FDEs in this corpus" true (r.invalid_fde_starts = []);
  check Alcotest.int "pipeline.seeds.final matches result"
    (List.length r.final_seeds)
    (c "pipeline.seeds.final");
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "FDE start %#x in final seeds" s) true
        (List.mem s r.final_seeds))
    r.fde_starts;
  check Alcotest.int "final seeds = FDE starts + accepted pointers"
    (List.length (List.sort_uniq compare r.fde_starts) + c "xref.accepted")
    (List.length r.final_seeds)

(* ---- bench snapshot codec and regression gate ---- *)

module Gate = Fetch_obs.Bench_gate

let gate_snapshot () =
  {
    Gate.schema = Gate.schema_current;
    scale = 0.02;
    binaries = 10;
    domains = 2;
    host = Some (Gate.this_host ());
    seq_wall_s = 1.5;
    par_wall_s = 0.8;
    pipeline_total_ms = 1200.0;
    stages =
      [
        { Gate.s_name = "pipeline"; s_calls = 10; s_total_ms = 1200.0; s_mean_ms = 120.0 };
        { Gate.s_name = "xref"; s_calls = 12; s_total_ms = 900.0; s_mean_ms = 90.0 };
        { Gate.s_name = "noise"; s_calls = 10; s_total_ms = 0.5; s_mean_ms = 0.05 };
      ];
    counters = [ ("xref.accepted", 92); ("tailcall.merges", 218) ];
    histograms = [ ("xref.rounds", Obs.hist_stats_of_values [ 1; 1; 2; 7 ]) ];
  }

let test_bench_gate_roundtrip () =
  let s = gate_snapshot () in
  match Gate.of_json_string (Gate.to_json s) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok s' ->
      check Alcotest.string "schema" s.Gate.schema s'.Gate.schema;
      check Alcotest.int "binaries" s.Gate.binaries s'.Gate.binaries;
      check Alcotest.int "domains" s.Gate.domains s'.Gate.domains;
      check Alcotest.bool "host preserved" true (s'.Gate.host = s.Gate.host);
      check Alcotest.int "stages" (List.length s.Gate.stages)
        (List.length s'.Gate.stages);
      check Alcotest.bool "counters preserved" true
        (s'.Gate.counters = s.Gate.counters);
      let h = List.assoc "xref.rounds" s'.Gate.histograms in
      let h0 = List.assoc "xref.rounds" s.Gate.histograms in
      check Alcotest.int "hist count" h0.Obs.count h.Obs.count;
      check Alcotest.int "hist sum" h0.Obs.sum h.Obs.sum;
      check Alcotest.bool "hist buckets preserved" true
        (Array.for_all2 ( = ) h0.Obs.buckets h.Obs.buckets)

let test_bench_gate_check () =
  let b = gate_snapshot () in
  check Alcotest.int "identical snapshots pass" 0
    (List.length (Gate.check ~baseline:b ~current:b ()));
  (* detection drift: any counter change fails, exactly *)
  let drift =
    { b with Gate.counters = [ ("xref.accepted", 91); ("tailcall.merges", 218) ] }
  in
  check Alcotest.int "counter drift fails" 1
    (List.length (Gate.check ~baseline:b ~current:drift ()));
  check Alcotest.int "missing counter fails" 1
    (List.length
       (Gate.check ~baseline:b
          ~current:{ b with Gate.counters = [ ("tailcall.merges", 218) ] }
          ()));
  (* new counters in current only are new instrumentation: pass *)
  let extra =
    { b with Gate.counters = b.Gate.counters @ [ ("brand.new", 1) ] }
  in
  check Alcotest.int "extra current counters pass" 0
    (List.length (Gate.check ~baseline:b ~current:extra ()));
  (* a stage regression beyond tolerance fails; the pipeline stage mean
     is the speed normalizer, so inflate xref only *)
  let slow =
    {
      b with
      Gate.stages =
        [
          { Gate.s_name = "pipeline"; s_calls = 10; s_total_ms = 1200.0; s_mean_ms = 120.0 };
          { Gate.s_name = "xref"; s_calls = 12; s_total_ms = 2000.0; s_mean_ms = 200.0 };
          { Gate.s_name = "noise"; s_calls = 10; s_total_ms = 5.0; s_mean_ms = 0.5 };
        ];
    }
  in
  let issues = Gate.check ~tolerance:0.5 ~baseline:b ~current:slow () in
  check Alcotest.int "xref regression fails (noise stage skipped)" 1
    (List.length issues);
  (* a uniformly 2x-slower machine passes: normalisation cancels it *)
  let half_speed =
    {
      b with
      Gate.stages =
        List.map
          (fun st ->
            { st with Gate.s_total_ms = st.Gate.s_total_ms *. 2.0;
              s_mean_ms = st.Gate.s_mean_ms *. 2.0 })
          b.Gate.stages;
    }
  in
  check Alcotest.int "uniform slowdown passes (speed-adjusted)" 0
    (List.length (Gate.check ~baseline:b ~current:half_speed ()));
  check Alcotest.bool "absolute mode catches the uniform slowdown" true
    (Gate.check ~absolute:true ~baseline:b ~current:half_speed () <> []);
  check Alcotest.int "binary count mismatch fails" 1
    (List.length
       (Gate.check ~baseline:b ~current:{ b with Gate.binaries = 11 } ()
       |> List.filter (fun (i : Gate.issue) -> i.what = "corpus")))

(* ---- decision ledger ---- *)

module Prov = Fetch_obs.Provenance

let test_provenance_recorder () =
  Prov.emit ~ev:"noop" ~addr:1 [];
  check Alcotest.bool "emit outside a run records nothing" false
    (Prov.enabled ());
  let (), events =
    Prov.with_run (fun () ->
        check Alcotest.bool "enabled inside a run" true (Prov.enabled ());
        Prov.emit ~ev:"seed.fde" ~addr:0x1000 [];
        Prov.with_scope [ ("round", Prov.I 2) ] (fun () ->
            Prov.emit ~ev:"xref.accept" ~addr:0x2000
              [ ("via", Prov.S "data"); ("site", Prov.I 0x3000) ]);
        Prov.emit ~ev:"verdict.start" ~addr:0x1000 [])
  in
  check Alcotest.int "three events in order" 3 (List.length events);
  let accept = List.nth events 1 in
  check Alcotest.string "event id" "xref.accept" accept.Prov.ev;
  check Alcotest.bool "scope fields appended" true
    (List.assoc "round" accept.Prov.fields = Prov.I 2);
  check Alcotest.int "subject query" 2
    (List.length (Prov.about 0x1000 events));
  (* 0x3000 appears only as an operand of the accept event *)
  check Alcotest.int "mention query" 1
    (List.length (Prov.mentioning 0x3000 events));
  check Alcotest.bool "recorder off after with_run" false (Prov.enabled ())

let test_provenance_json_roundtrip () =
  let events =
    [
      { Prov.ev = "xref.reject"; addr = 0x4010;
        fields = [ ("reason", Prov.S "callconv"); ("viol_at", Prov.I 0x4018);
                   ("viol_reg", Prov.S "rbx"); ("round", Prov.I 3) ] };
      { Prov.ev = "alg1.reject"; addr = 0x5000;
        fields = [ ("rule", Prov.S "cfa_height"); ("height", Prov.I (-8)) ] };
      { Prov.ev = "seed.fde"; addr = 0x1000; fields = [] };
    ]
  in
  List.iter
    (fun e ->
      match Fetch_util.Json.parse (Prov.to_json e) with
      | Error err -> Alcotest.failf "event JSON does not parse: %s" err
      | Ok j -> (
          match Prov.of_json j with
          | Error err -> Alcotest.failf "event does not decode: %s" err
          | Ok e' ->
              check Alcotest.string "ev survives" e.Prov.ev e'.Prov.ev;
              check Alcotest.int "addr survives" e.Prov.addr e'.Prov.addr;
              check Alcotest.bool "fields survive in order" true
                (e'.Prov.fields = e.Prov.fields);
              check Alcotest.string "re-encoding is identical" (Prov.to_json e)
                (Prov.to_json e')))
    events;
  (* JSONL: one line per event, each parseable *)
  let lines =
    String.split_on_char '\n' (Prov.to_json_lines events)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" (List.length events)
    (List.length lines);
  List.iter
    (fun l ->
      match Fetch_util.Json.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "JSONL line does not parse: %s" e)
    lines

let test_provenance_explain () =
  let events =
    [
      { Prov.ev = "seed.fde"; addr = 0x1000; fields = [] };
      { Prov.ev = "alg1.merge"; addr = 0x2000;
        fields = [ ("parent", Prov.I 0x1000); ("site", Prov.I 0x1080) ] };
      { Prov.ev = "verdict.start"; addr = 0x1000; fields = [] };
    ]
  in
  let kept = Prov.explain ~addr:0x1000 events in
  check Alcotest.bool "kept start verdict" true
    (String.length kept > 0
    && String.ends_with ~suffix:"verdict: detected function start\n" kept);
  let merged = Prov.explain ~addr:0x2000 events in
  check Alcotest.bool "merged part verdict" true
    (String.ends_with
       ~suffix:"verdict: merged into another function (non-contiguous part)\n"
       merged);
  let unknown = Prov.explain ~addr:0x9999 events in
  check Alcotest.bool "unknown address verdict" true
    (String.ends_with ~suffix:"verdict: not a candidate\n" unknown)

let suite =
  [
    Alcotest.test_case "monotonic clock" `Quick test_clock;
    Alcotest.test_case "counter registration and reset" `Quick test_counters;
    Alcotest.test_case "span nesting and monotonic timing" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "JSON-lines golden output" `Quick test_json_lines_golden;
    Alcotest.test_case "Chrome trace golden output" `Quick test_chrome_trace_golden;
    Alcotest.test_case "histogram percentiles" `Quick test_percentiles;
    Alcotest.test_case "span args and set_arg" `Quick test_span_args;
    QCheck_alcotest.to_alcotest prop_merge_preserves_histograms;
    Alcotest.test_case "sinks" `Quick test_sinks;
    Alcotest.test_case "bench snapshot JSON roundtrip" `Quick test_bench_gate_roundtrip;
    Alcotest.test_case "bench regression gate" `Quick test_bench_gate_check;
    Alcotest.test_case "provenance recorder and queries" `Quick test_provenance_recorder;
    Alcotest.test_case "provenance JSON roundtrip" `Quick test_provenance_json_roundtrip;
    Alcotest.test_case "provenance explain" `Quick test_provenance_explain;
    Alcotest.test_case "instrumented pipeline run" `Quick test_pipeline_instrumented;
  ]
