(* Tests for the declarative fact base: the rule engine itself (on toy
   relations), the differential properties the port demands — engine
   verdicts identical to the imperative lint / Algorithm-1 queries —
   the incremental-maintenance contract (assert/retract == from-scratch
   re-evaluation), the live Xref-driven session, and the new
   split-function rule with its negative control. *)

open Fetch_synth
open Fetch_core
module An = Fetch_analysis
module F = Fetch_facts
module Finding = Fetch_check.Finding

let check = Alcotest.check
let ti n = F.Fact.I n
let tup l = Array.of_list (List.map ti l)

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ---- toy relations: a little graph program ---- *)

let t_node = F.Schema.make "t_node" [ "n" ]
let t_edge = F.Schema.make "t_edge" [ "src"; "dst" ]
let t_path = F.Schema.make "t_path" [ "src"; "dst" ]
let t_unreach = F.Schema.make "t_unreach" [ "src"; "dst" ]
let t_lt = F.Schema.make "t_lt" [ "src"; "dst" ]
let t_p = F.Schema.make "t_p" [ "n" ]
let t_q = F.Schema.make "t_q" [ "n" ]

let closure_rules =
  F.Rule.
    [
      make "t-path-base"
        (atom t_path [ v "X"; v "Y" ])
        [ Pos (atom t_edge [ v "X"; v "Y" ]) ];
      make "t-path-step"
        (atom t_path [ v "X"; v "Z" ])
        [ Pos (atom t_edge [ v "X"; v "Y" ]); Pos (atom t_path [ v "Y"; v "Z" ]) ];
    ]

let unreach_rule =
  F.Rule.(
    make "t-unreach"
      (atom t_unreach [ v "X"; v "Y" ])
      [
        Pos (atom t_node [ v "X" ]);
        Pos (atom t_node [ v "Y" ]);
        Neg (atom t_path [ v "X"; v "Y" ]);
      ])

let graph_engine ?fuel ~nodes ~edges rules =
  let store = F.Store.create () in
  List.iter (fun n -> ignore (F.Store.add store t_node (tup [ n ]))) nodes;
  List.iter
    (fun (a, b) -> ignore (F.Store.add store t_edge (tup [ a; b ])))
    edges;
  ok "engine" (F.Engine.create ?fuel store rules)

let pairs store rel =
  F.Store.to_list store rel
  |> List.map (fun t ->
         match (t.(0), t.(1)) with
         | F.Fact.I a, F.Fact.I b -> (a, b)
         | _ -> Alcotest.fail "non-int tuple")

let ipairs = Alcotest.(list (pair int int))

let test_transitive_closure () =
  let e = graph_engine ~nodes:[] ~edges:[ (1, 2); (2, 3); (3, 4) ] closure_rules in
  check ipairs "all reachable pairs"
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ]
    (pairs (F.Engine.store e) t_path)

let test_stratified_negation () =
  let e =
    graph_engine ~nodes:[ 1; 2; 3 ]
      ~edges:[ (1, 2); (2, 3) ]
      (closure_rules @ [ unreach_rule ])
  in
  check Alcotest.int "negation in its own stratum" 2 (F.Engine.stats e).strata;
  check ipairs "complement of reachability"
    [ (1, 1); (2, 1); (2, 2); (3, 1); (3, 2); (3, 3) ]
    (pairs (F.Engine.store e) t_unreach)

let test_negative_cycle_rejected () =
  let rules =
    F.Rule.
      [
        make "t-p"
          (atom t_p [ v "X" ])
          [ Pos (atom t_node [ v "X" ]); Neg (atom t_q [ v "X" ]) ];
        make "t-q"
          (atom t_q [ v "X" ])
          [ Pos (atom t_node [ v "X" ]); Neg (atom t_p [ v "X" ]) ];
      ]
  in
  match F.Engine.create (F.Store.create ()) rules with
  | Ok _ -> Alcotest.fail "negation cycle accepted"
  | Error _ -> ()

let test_unsafe_rule_rejected () =
  let bad =
    F.Rule.(
      make "t-unsafe"
        (atom t_path [ v "X"; v "Z" ])
        [ Pos (atom t_edge [ v "X"; v "Y" ]) ])
  in
  match F.Engine.create (F.Store.create ()) [ bad ] with
  | Ok _ -> Alcotest.fail "head variable Z is unbound"
  | Error _ -> ()

let test_edb_head_rejected () =
  let bad =
    F.Rule.(
      make "t-edb-head"
        (atom F.Schema.func [ v "F" ])
        [ Pos (atom F.Schema.fde [ v "F"; v "H" ]) ])
  in
  match F.Engine.create (F.Store.create ()) [ bad ] with
  | Ok _ -> Alcotest.fail "extensional head accepted"
  | Error e ->
      check Alcotest.bool "names the relation" true
        (String.length e > 0
        &&
        let rec has i =
          i + 4 <= String.length e && (String.sub e i 4 = "func" || has (i + 1))
        in
        has 0)

let test_guards_and_repeated_vars () =
  let rules =
    F.Rule.
      [
        (* repeated head/body variable: only self-loops *)
        make "t-self"
          (atom t_path [ v "X"; v "X" ])
          [ Pos (atom t_edge [ v "X"; v "X" ]) ];
        make "t-lt"
          (atom t_lt [ v "X"; v "Y" ])
          [
            Pos (atom t_edge [ v "X"; v "Y" ]);
            guard "X<Y" (fun b -> iv b "X" < iv b "Y");
          ];
      ]
  in
  let e = graph_engine ~nodes:[] ~edges:[ (5, 5); (2, 1); (1, 2) ] rules in
  check ipairs "self-loop only" [ (5, 5) ] (pairs (F.Engine.store e) t_path);
  check ipairs "guard keeps ascending edges" [ (1, 2) ]
    (pairs (F.Engine.store e) t_lt)

let test_fuel_exhaustion () =
  let e =
    graph_engine ~fuel:2 ~nodes:[]
      ~edges:[ (1, 2); (2, 3); (3, 4) ]
      closure_rules
  in
  check Alcotest.bool "exhausted flag" true (F.Engine.stats e).exhausted;
  match F.Engine.update e ~assert_:[ (t_edge, tup [ 4; 5 ]) ] ~retract_:[] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "update on an exhausted engine must be refused"

let test_update_rejects_derived () =
  let e = graph_engine ~nodes:[] ~edges:[ (1, 2) ] closure_rules in
  match F.Engine.update e ~assert_:[ (t_path, tup [ 7; 8 ]) ] ~retract_:[] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "asserting a derived relation must be refused"

(* Incremental assert/retract must land on exactly the from-scratch
   fixpoint of the updated EDB. *)
let derived_of e rel = pairs (F.Engine.store e) rel

let scratch_of nodes edges rules =
  let e = graph_engine ~nodes ~edges rules in
  (derived_of e t_path, derived_of e t_unreach)

let check_matches_scratch what e nodes edges rules =
  let sp, su = scratch_of nodes edges rules in
  check ipairs (what ^ ": path") sp (derived_of e t_path);
  check ipairs (what ^ ": unreach") su (derived_of e t_unreach)

let test_incremental_updates () =
  let nodes = [ 1; 2; 3; 4; 5 ] in
  let rules = closure_rules @ [ unreach_rule ] in
  let e = graph_engine ~nodes ~edges:[ (1, 2); (2, 3) ] rules in
  let edges = ref [ (1, 2); (2, 3) ] in
  let apply what ~assert_ ~retract_ =
    F.Engine.update e
      ~assert_:(List.map (fun (a, b) -> (t_edge, tup [ a; b ])) assert_)
      ~retract_:(List.map (fun (a, b) -> (t_edge, tup [ a; b ])) retract_);
    edges :=
      List.filter (fun p -> not (List.mem p retract_)) !edges
      @ List.filter (fun p -> not (List.mem p !edges)) assert_;
    check_matches_scratch what e nodes !edges rules
  in
  apply "assert edge" ~assert_:[ (3, 4) ] ~retract_:[];
  check Alcotest.bool "growth through negation overdeletes" true
    ((F.Engine.stats e).overdeleted > 0);
  apply "retract edge" ~assert_:[] ~retract_:[ (2, 3) ];
  apply "mixed batch" ~assert_:[ (2, 5); (5, 3) ] ~retract_:[ (1, 2) ];
  apply "retract absent tuple is a no-op" ~assert_:[] ~retract_:[ (1, 2) ]

let test_diamond_rederive () =
  let edges = [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  let e = graph_engine ~nodes:[] ~edges closure_rules in
  F.Engine.update e ~assert_:[] ~retract_:[ (t_edge, tup [ 1; 2 ]) ];
  check Alcotest.bool "path(1,4) survives via the other arm" true
    (F.Store.mem (F.Engine.store e) t_path (tup [ 1; 4 ]));
  check Alcotest.bool "rederivation happened" true
    ((F.Engine.stats e).rederived > 0);
  check ipairs "matches scratch"
    (fst (scratch_of [] [ (1, 3); (2, 4); (3, 4) ] closure_rules))
    (derived_of e t_path)

(* Random update sequences: after every batch the engine must equal the
   from-scratch evaluation of the current EDB. *)
let prop_incremental_random =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (triple bool (int_bound 5) (int_bound 5)))
  in
  QCheck.Test.make ~name:"incremental == from-scratch on random updates"
    ~count:40
    (QCheck.make gen
       ~print:(fun ops ->
         String.concat "; "
           (List.map
              (fun (add, a, b) ->
                Printf.sprintf "%s(%d,%d)" (if add then "+" else "-") a b)
              ops)))
    (fun ops ->
      let nodes = [ 0; 1; 2; 3; 4; 5 ] in
      let rules = closure_rules @ [ unreach_rule ] in
      let e = graph_engine ~nodes ~edges:[] rules in
      let edges = ref [] in
      List.for_all
        (fun (add, a, b) ->
          if add then begin
            F.Engine.update e ~assert_:[ (t_edge, tup [ a; b ]) ] ~retract_:[];
            if not (List.mem (a, b) !edges) then edges := (a, b) :: !edges
          end
          else begin
            F.Engine.update e ~assert_:[] ~retract_:[ (t_edge, tup [ a; b ]) ];
            edges := List.filter (fun p -> p <> (a, b)) !edges
          end;
          let sp, su = scratch_of nodes !edges rules in
          derived_of e t_path = sp && derived_of e t_unreach = su)
        ops)

(* ---- differentials against the imperative analyses ---- *)

let profile = Profile.make Profile.Synthgcc Profile.O2

let spec =
  {
    Gen.default_spec with
    n_funcs = 30;
    n_asm_called = 1;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
  }

let built = lazy (Link.build_random ~profile ~seed:2024 spec)
let pipeline = lazy (Pipeline.run (Lazy.force built).image)

let engine_of_result r = ok "of_result" (Fact_base.of_result r)

(* The engine built over every detected entry (what Algorithm 1 sees),
   not just the kept starts. *)
let alg1_engine = lazy (
  let r = Lazy.force pipeline in
  let res = r.Pipeline.rec_result in
  let refs = Refs.collect r.Pipeline.loaded res in
  ( ok "build" (Fact_base.build ~entries:(An.Recursive.starts res)
      r.Pipeline.loaded res refs),
    res, refs ))

let finding_t =
  Alcotest.testable
    (fun fmt f -> Format.pp_print_string fmt (Finding.to_string f))
    ( = )

(* Ported rules: verdicts must be identical finding-for-finding,
   including messages and severities.  (split-fn-fde is the engine's
   own rule; the legacy linter has no counterpart.) *)
let test_findings_differential () =
  let r = Lazy.force pipeline in
  let legacy =
    Lint.run r
    |> List.filter (fun (f : Finding.t) ->
           f.rule = "jump-mid-insn" || f.rule = "fde-unreached")
  in
  let engine =
    Fact_base.findings (engine_of_result r)
    |> List.filter (fun (f : Finding.t) -> f.rule <> "split-fn-fde")
  in
  check (Alcotest.list finding_t) "ported rules agree with the linter"
    legacy engine

(* On a binary that lints non-clean, too: the orphan broken-FDE binary
   (same construction as the CLI tests) yields an fde-unreached Warning
   plus fde-partial Infos, and the engine must reproduce each message
   byte for byte. *)
let test_findings_differential_dirty () =
  let rng = Fetch_util.Prng.create 12 in
  let prog =
    Gen.program rng profile { Gen.default_spec with n_funcs = 15 }
  in
  let orphan =
    Ir.make_func ~name:"orphan" ~params:1 ~is_assembly:true ~emit_fde:true
      ~broken_fde:true ~align:16 ~endbr:false [ Ir.Compute 3; Ir.Return ]
  in
  let b =
    Link.build ~profile ~rng { prog with Ir.funcs = prog.Ir.funcs @ [ orphan ] }
  in
  let r = Pipeline.run b.image in
  let legacy =
    Lint.run r
    |> List.filter (fun (f : Finding.t) ->
           f.rule = "jump-mid-insn" || f.rule = "fde-unreached")
  in
  check Alcotest.bool "scenario is non-vacuous" true (legacy <> []);
  let engine =
    Fact_base.findings (engine_of_result r)
    |> List.filter (fun (f : Finding.t) -> f.rule <> "split-fn-fde")
  in
  check (Alcotest.list finding_t) "agrees on a dirty binary" legacy engine

let test_jump_only_refs_differential () =
  let engine, _res, refs = Lazy.force alg1_engine in
  let store = F.Engine.store engine in
  let out_jumps = F.Store.to_list store F.Schema.out_jump in
  check Alcotest.bool "corpus has out-jumps" true (out_jumps <> []);
  List.iter
    (fun t ->
      match (t.(0), t.(2)) with
      | F.Fact.I entry, F.Fact.I target ->
          let derived = Fact_base.jump_only_refs engine ~entry target in
          let census =
            not (Refs.referenced_outside_jumps_of refs ~entry target)
          in
          if derived <> census then
            Alcotest.failf
              "jump_only_refs(%#x, %#x): engine %b, census %b" target entry
              derived census
      | _ -> Alcotest.fail "bad out_jump tuple")
    out_jumps

let test_jump_height_differential () =
  let engine, _res, _refs = Lazy.force alg1_engine in
  let r = Lazy.force pipeline in
  let oracle = r.Pipeline.loaded.An.Loaded.oracle in
  let store = F.Engine.store engine in
  let answered = ref 0 in
  List.iter
    (fun t ->
      match t.(0) with
      | F.Fact.I site -> (
          match Fetch_dwarf.Height_oracle.height_at oracle site with
          | Some h ->
              incr answered;
              if not (F.Store.mem store F.Schema.jump_height (tup [ site; h ]))
              then Alcotest.failf "jump_height(%#x, %d) missing" site h
          | None ->
              if F.Store.select store F.Schema.jump_height [ (0, ti site) ] <> []
              then
                Alcotest.failf "jump_height at %#x where the oracle is silent"
                  site)
      | _ -> Alcotest.fail "bad jump tuple")
    (F.Store.to_list store F.Schema.jump);
  check Alcotest.bool "oracle answered somewhere" true (!answered > 0)

(* Algorithm 1 with its criterion-3 query answered by the engine must
   reach the exact same outcome as with the imperative census. *)
let test_tailcall_differential () =
  let engine, res, refs = Lazy.force alg1_engine in
  let r = Lazy.force pipeline in
  let loaded = r.Pipeline.loaded in
  let base = Tailcall.run ~refs loaded res in
  let via_engine =
    Tailcall.run ~refs
      ~jump_only_refs:(Fact_base.jump_only_refs engine)
      loaded res
  in
  check Alcotest.(list int) "kept starts" base.Tailcall.kept_starts
    via_engine.Tailcall.kept_starts;
  check ipairs "tail calls" base.Tailcall.tail_calls
    via_engine.Tailcall.tail_calls;
  check ipairs "merges" base.Tailcall.merges via_engine.Tailcall.merges;
  check Alcotest.int "skipped" base.Tailcall.skipped_incomplete
    via_engine.Tailcall.skipped_incomplete;
  check Alcotest.bool "differential is non-vacuous" true
    (base.Tailcall.tail_calls <> [] || base.Tailcall.merges <> [])

(* ---- the new cross-cutting rule ---- *)

(* Cold-split binary analyzed with the fix stage off: the split parts
   survive as separate FDE-seeded functions, and the rule must flag
   exactly (a subset of) the true split parts. *)
let split_result = lazy (
  let p = { profile with Profile.p_cold_split = 1.0; p_rbp_frame = 0.0 } in
  let b =
    Link.build_random ~profile:p ~seed:77 { Gen.default_spec with n_funcs = 12 }
  in
  let r =
    Pipeline.run
      ~config:{ Pipeline.default_config with fix_fde_errors = false }
      b.image
  in
  (b, r))

let split_tuples store =
  F.Store.to_list store F.Schema.split_fn_fde
  |> List.map (fun t ->
         match (t.(0), t.(1)) with
         | F.Fact.I target, F.Fact.I entry -> (target, entry)
         | _ -> Alcotest.fail "bad split_fn_fde tuple")

let test_split_rule_fires () =
  let b, r = Lazy.force split_result in
  let engine = engine_of_result r in
  let flagged = split_tuples (F.Engine.store engine) in
  check Alcotest.bool "fires on the split binary" true (flagged <> []);
  let parts = List.sort_uniq compare (Truth.part_starts b.truth) in
  List.iter
    (fun (target, entry) ->
      if not (List.mem target parts) then
        Alcotest.failf "split_fn_fde flagged %#x (from %#x): not a true part"
          target entry)
    flagged;
  (* and it surfaces as a Warning finding *)
  let findings = Fact_base.findings engine in
  check Alcotest.bool "rendered as split-fn-fde warnings" true
    (List.exists
       (fun (f : Finding.t) ->
         f.rule = "split-fn-fde" && f.severity = Finding.Warning)
       findings)

(* Negative control: one extra hard reference to a flagged target must
   retract its finding incrementally — and retracting the reference must
   bring it back, landing on the exact original store. *)
let test_split_rule_negative_control () =
  let _b, r = Lazy.force split_result in
  let engine = engine_of_result r in
  let store = F.Engine.store engine in
  let dump () =
    let acc = ref [] in
    F.Store.iter_rels store (fun rel ->
        match F.Store.to_list store rel with
        | [] -> ()
        | l -> acc := (rel.F.Schema.name, l) :: !acc);
    !acc
  in
  let before = dump () in
  let target, entry =
    match split_tuples store with
    | t :: _ -> t
    | [] -> Alcotest.fail "no split finding to control"
  in
  let extra_ref =
    (F.Schema.ref_hard, [| ti target; F.Fact.S "data"; ti 0x9999 |])
  in
  F.Engine.update engine ~assert_:[ extra_ref ] ~retract_:[];
  check Alcotest.bool "finding retracted under an outside reference" false
    (List.exists (fun (t, e) -> t = target && e = entry)
       (split_tuples store));
  check Alcotest.bool "ref_outside derived" true
    (F.Store.mem store F.Schema.ref_outside (tup [ target; entry ]));
  F.Engine.update engine ~assert_:[] ~retract_:[ extra_ref ];
  check Alcotest.bool "round-trips to the original store" true
    (dump () = before)

(* ---- live session: the engine follows Xref.detect commit by commit ---- *)

let store_dump store =
  let acc = ref [] in
  F.Store.iter_rels store (fun rel ->
      match F.Store.to_list store rel with
      | [] -> ()
      | l -> acc := (rel.F.Schema.name, l) :: !acc);
  !acc

let test_live_session_tracks_detection () =
  let b = Lazy.force built in
  let loaded = An.Loaded.load (Fetch_elf.Image.strip b.image) in
  let seeds = loaded.An.Loaded.fde_starts in
  let res0 = An.Recursive.run loaded ~seeds in
  let live = ok "live_create" (Fact_base.live_create loaded res0) in
  let cands = ref [] in
  let commits = ref 0 in
  let check_scratch what res =
    let refs = Refs.collect loaded res in
    let scratch =
      ok "scratch build"
        (Fact_base.build
           ~entries:(An.Recursive.starts res)
           ~xref_seeds:(List.rev !cands) loaded res refs)
    in
    if
      store_dump (F.Engine.store (Fact_base.live_engine live))
      <> store_dump (F.Engine.store scratch)
    then Alcotest.failf "%s: live store diverges from from-scratch build" what
  in
  check_scratch "initial commit" res0;
  let _res, _seeds =
    Xref.detect loaded ~seeds ~on_commit:(fun ~cand res ->
        cands := cand :: !cands;
        incr commits;
        Fact_base.live_commit ~cand live res;
        check_scratch (Printf.sprintf "commit %#x" cand) res)
  in
  check Alcotest.bool "detection accepted pointers" true (!commits > 0);
  check Alcotest.bool "updates were incremental" true
    ((F.Engine.stats (Fact_base.live_engine live)).asserted > 0)

(* ---- observability ---- *)

let test_facts_counters_surface () =
  let r = Lazy.force pipeline in
  let _engine, report =
    Fetch_obs.Trace.with_run (fun () -> engine_of_result r)
  in
  let counter name =
    match List.assoc_opt name report.Fetch_obs.Trace.counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %s missing" name
  in
  check Alcotest.bool "edb extracted" true (counter "facts.edb_tuples" > 0);
  check Alcotest.bool "tuples derived" true (counter "facts.derived" > 0);
  check Alcotest.bool "rules fired" true (counter "facts.rule_firings" > 0);
  check Alcotest.bool "fixpoint iterated" true
    (counter "facts.fixpoint_iters" > 0)

(* ---- engine == legacy on random corpora ---- *)

let prop_engine_matches_legacy =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* compiler = oneofl [ Profile.Synthgcc; Profile.Synthllvm ] in
      let* opt = oneofl Profile.all_opts in
      let* n_funcs = int_range 8 40 in
      let* cxx = bool in
      let* broken = int_bound 1 in
      return (seed, compiler, opt, n_funcs, cxx, broken))
  in
  QCheck.Test.make ~name:"engine findings == linter on random corpora"
    ~count:6
    (QCheck.make gen
       ~print:(fun (seed, c, o, n, cxx, broken) ->
         Printf.sprintf "seed=%d %s-%s n=%d cxx=%b broken=%d" seed
           (Profile.compiler_name c) (Profile.opt_name o) n cxx broken))
    (fun (seed, compiler, opt, n_funcs, cxx, broken) ->
      let profile = Profile.make compiler opt in
      let spec' =
        { Gen.default_spec with n_funcs; cxx; n_broken_fde = broken }
      in
      let b = Link.build_random ~profile ~seed spec' in
      let r = Pipeline.run b.image in
      let legacy =
        Lint.run r
        |> List.filter (fun (f : Finding.t) ->
               f.rule = "jump-mid-insn" || f.rule = "fde-unreached")
      in
      let engine =
        Fact_base.findings (engine_of_result r)
        |> List.filter (fun (f : Finding.t) -> f.rule <> "split-fn-fde")
      in
      legacy = engine)

let suite =
  [
    Alcotest.test_case "engine: transitive closure" `Quick
      test_transitive_closure;
    Alcotest.test_case "engine: stratified negation" `Quick
      test_stratified_negation;
    Alcotest.test_case "engine: negation cycle rejected" `Quick
      test_negative_cycle_rejected;
    Alcotest.test_case "engine: unsafe rule rejected" `Quick
      test_unsafe_rule_rejected;
    Alcotest.test_case "engine: extensional head rejected" `Quick
      test_edb_head_rejected;
    Alcotest.test_case "engine: guards and repeated variables" `Quick
      test_guards_and_repeated_vars;
    Alcotest.test_case "engine: fuel exhaustion is sticky" `Quick
      test_fuel_exhaustion;
    Alcotest.test_case "engine: derived relations are read-only" `Quick
      test_update_rejects_derived;
    Alcotest.test_case "engine: incremental assert/retract" `Quick
      test_incremental_updates;
    Alcotest.test_case "engine: diamond rederivation" `Quick
      test_diamond_rederive;
    Alcotest.test_case "lint port: findings identical" `Quick
      test_findings_differential;
    Alcotest.test_case "lint port: identical on a dirty binary" `Quick
      test_findings_differential_dirty;
    Alcotest.test_case "Algorithm 1 port: jump_only_refs == census" `Quick
      test_jump_only_refs_differential;
    Alcotest.test_case "CFI port: jump_height == oracle" `Quick
      test_jump_height_differential;
    Alcotest.test_case "Algorithm 1 port: identical tailcall outcome" `Quick
      test_tailcall_differential;
    Alcotest.test_case "split rule: fires on true split parts" `Quick
      test_split_rule_fires;
    Alcotest.test_case "split rule: negative control round-trips" `Quick
      test_split_rule_negative_control;
    Alcotest.test_case "live session tracks Xref commits" `Quick
      test_live_session_tracks_detection;
    Alcotest.test_case "facts.* counters surface" `Quick
      test_facts_counters_surface;
    QCheck_alcotest.to_alcotest prop_incremental_random;
    QCheck_alcotest.to_alcotest prop_engine_matches_legacy;
  ]
