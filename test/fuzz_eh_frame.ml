(* Deterministic mutation fuzzer for the .eh_frame parser.

   Takes real synthesized .eh_frame sections (from lib/synth builds and
   hand-assembled CIE/FDE sets), applies byte flips, truncations, length
   corruptions and splices driven by Fetch_util.Prng, and asserts two
   things on every iteration:

     1. totality  — Eh_frame.decode returns on ANY mutated input, it
        never raises;
     2. recovery  — when the mutation is confined to a single FDE
        record's body, every FDE from the other records is still
        recovered (record-level error containment).

   Runs as part of `dune runtest` and as a CI smoke job.  Failures print
   the seed, iteration and a hex dump of the offending section, to be
   checked in as regression fixtures in test_dwarf.ml. *)

open Fetch_util
open Fetch_dwarf

let iters = ref 2000
let seed = ref 0x5eed

let () =
  let rec parse = function
    | [] -> ()
    | "--iters" :: n :: rest ->
        iters := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | a :: _ ->
        Printf.eprintf "usage: fuzz_eh_frame [--iters N] [--seed N] (got %S)\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let hex_dump s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "\\x%02x" (Char.code c))
       (List.of_seq (String.to_seq s)))

(* ---- base corpus: realistic sections to mutate ---- *)

(* A full synthesized binary's .eh_frame (many CIEs/FDEs, personality,
   LSDAs, broken FDEs — everything lib/synth emits). *)
let synth_section () =
  let profile =
    Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2
  in
  let built =
    Fetch_synth.Link.build_random ~profile ~seed:7
      {
        Fetch_synth.Gen.default_spec with
        n_funcs = 25;
        cxx = true;
        n_asm_called = 1;
        n_broken_fde = 1;
      }
  in
  let s =
    Option.get (Fetch_elf.Image.section built.image ".eh_frame")
  in
  (s.addr, s.data)

(* The adversarial scenarios' unwind sections: DWARF64-format records and
   overlap-mangled FDE lists, straight from the Adversary transforms, so
   mutation starts from the exact shapes the robustness harness feeds the
   parser. *)
let adversarial_sections () =
  List.filter_map
    (fun id ->
      Option.bind (Fetch_synth.Adversary.find id) (fun sc ->
          let built = Fetch_synth.Adversary.build sc ~seed:7 in
          Option.map
            (fun (s : Fetch_elf.Image.section) -> (s.addr, s.data))
            (Fetch_elf.Image.section built.image ".eh_frame")))
    [ "dwarf64"; "fde-overlap" ]

(* Hand-assembled sections exercising the encoder's augmentations. *)
let handmade_sections =
  let addr = 0x700000 in
  let plain =
    Eh_frame.encode ~addr
      [
        Eh_frame.default_cie
          ~fdes:
            (List.map
               (fun i ->
                 Eh_frame.make_fde ~pc_begin:(0x1000 + (0x100 * i))
                   ~pc_range:0x80
                   [ Cfi.Advance_loc 1; Cfi.Def_cfa_offset 16 ])
               [ 0; 1; 2; 3 ])
          ();
      ]
  in
  let augmented =
    Eh_frame.encode ~addr
      [
        Eh_frame.default_cie ~personality:0x402000
          ~fdes:
            [
              Eh_frame.make_fde ~lsda:0x6f0000 ~pc_begin:0x2000 ~pc_range:0x40
                [ Cfi.Advance_loc 4; Cfi.Def_cfa_offset 32 ];
              Eh_frame.make_fde ~pc_begin:0x2040 ~pc_range:0x20 [];
            ]
          ();
      ]
  in
  [ (addr, plain); (addr, augmented) ]

(* ---- mutations ---- *)

(* Record start offsets of a pristine section (by walking the lengths). *)
let record_offsets data =
  let n = String.length data in
  let rec go off acc =
    if off + 4 > n then List.rev acc
    else
      let len = Int32.to_int (String.get_int32_le data off) land 0xffffffff in
      if len = 0 || off + 4 + len > n then List.rev acc
      else go (off + 4 + len) ((off, len) :: acc)
  in
  go 0 []

let mutate rng data =
  let b = Bytes.of_string data in
  let n = Bytes.length b in
  if n = 0 then data
  else
    match Prng.int rng 5 with
    | 0 ->
        (* flip 1-8 random bytes *)
        for _ = 1 to Prng.range rng 1 8 do
          let i = Prng.int rng n in
          Bytes.set b i (Char.chr (Prng.int rng 256))
        done;
        Bytes.to_string b
    | 1 ->
        (* truncate at a random point *)
        Bytes.sub_string b 0 (Prng.int rng n)
    | 2 -> (
        (* corrupt one record's length field *)
        match record_offsets data with
        | [] -> Bytes.to_string b
        | offs ->
            let off, _ = Prng.choice_list rng offs in
            Bytes.set_int32_le b off (Int64.to_int32 (Prng.next_int64 rng));
            Bytes.to_string b)
    | 3 ->
        (* splice a run of random bytes *)
        let start = Prng.int rng n in
        let len = min (Prng.range rng 4 16) (n - start) in
        for i = start to start + len - 1 do
          Bytes.set b i (Char.chr (Prng.int rng 256))
        done;
        Bytes.to_string b
    | _ ->
        (* single bit flip *)
        let i = Prng.int rng n in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)));
        Bytes.to_string b

let failures = ref 0

let check_total ~what ~addr data =
  match Eh_frame.decode ~addr data with
  | d ->
      (* internal consistency: skip count matches fatal diags *)
      let fatal = List.length (List.filter (fun (g : Diag.t) -> g.fatal) d.diags) in
      if d.records_skipped <> fatal then begin
        incr failures;
        Printf.printf "FAIL [%s] skip/diag mismatch (%d vs %d):\n%s\n" what
          d.records_skipped fatal (hex_dump data)
      end;
      Some d
  | exception e ->
      incr failures;
      Printf.printf "FAIL [%s] decode raised %s on:\n%s\n" what
        (Printexc.to_string e) (hex_dump data);
      None

let () =
  let rng = Prng.create !seed in
  let bases =
    (synth_section () :: handmade_sections) @ adversarial_sections ()
  in
  (* 1. totality under arbitrary mutation *)
  for i = 1 to !iters do
    let addr, data = Prng.choice_list rng bases in
    let mutated = mutate rng data in
    ignore (check_total ~what:(Printf.sprintf "iter %d" i) ~addr mutated)
  done;
  (* 2. containment: corrupt one FDE record's body; every other record
     must still round-trip *)
  let addr = 0x700000 in
  let fdes =
    List.map
      (fun i ->
        Eh_frame.make_fde ~pc_begin:(0x1000 + (0x100 * i)) ~pc_range:0x40
          [ Cfi.Advance_loc 1; Cfi.Def_cfa_offset 16 ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let pristine, index =
    Eh_frame.encode_with_index ~addr [ Eh_frame.default_cie ~fdes () ]
  in
  let containment_rounds = max 50 (!iters / 10) in
  for i = 1 to containment_rounds do
    let victim = Prng.int rng (List.length index) in
    let _, victim_vaddr = List.nth index victim in
    let victim_off = victim_vaddr - addr in
    let victim_len =
      Int32.to_int (String.get_int32_le pristine victim_off) land 0xffffffff
    in
    let b = Bytes.of_string pristine in
    (* corrupt 1-6 bytes anywhere in the record except its length field,
       so resynchronization still finds the next record *)
    for _ = 1 to Prng.range rng 1 6 do
      let j = victim_off + 4 + Prng.int rng victim_len in
      Bytes.set b j (Char.chr (Prng.int rng 256))
    done;
    match check_total ~what:(Printf.sprintf "containment %d" i) ~addr
            (Bytes.to_string b)
    with
    | None -> ()
    | Some d ->
        let recovered = Eh_frame.all_fdes d.cies in
        List.iteri
          (fun k (pc, _) ->
            if
              k <> victim
              && not
                   (List.exists
                      (fun (f : Eh_frame.fde) -> f.pc_begin = pc)
                      recovered)
            then begin
              incr failures;
              Printf.printf
                "FAIL [containment %d] FDE %d (pc %#x) lost after corrupting \
                 record %d:\n%s\n"
                i k pc victim
                (hex_dump (Bytes.to_string b))
            end)
          index
  done;
  if !failures > 0 then begin
    Printf.printf "fuzz_eh_frame: %d FAILURES (seed %d, %d iters)\n" !failures
      !seed !iters;
    exit 1
  end
  else
    Printf.printf
      "fuzz_eh_frame: OK — %d mutation + %d containment iterations, seed %d\n"
      !iters containment_rounds !seed
