(** Structured parser diagnostics for the [.eh_frame] decoder (see mli). *)

type kind =
  | Truncated
  | Bad_length
  | Bad_version
  | Unknown_augmentation
  | Unsupported_encoding
  | Unknown_cie
  | Bad_cfi
  | Malformed

let all_kinds =
  [
    Truncated; Bad_length; Bad_version; Unknown_augmentation;
    Unsupported_encoding; Unknown_cie; Bad_cfi; Malformed;
  ]

let kind_label = function
  | Truncated -> "truncated"
  | Bad_length -> "bad_length"
  | Bad_version -> "bad_version"
  | Unknown_augmentation -> "unknown_augmentation"
  | Unsupported_encoding -> "unsupported_encoding"
  | Unknown_cie -> "unknown_cie"
  | Bad_cfi -> "bad_cfi"
  | Malformed -> "malformed"

type t = { offset : int; kind : kind; fatal : bool; message : string }

let to_string d =
  Printf.sprintf "+%#x: %s%s: %s" d.offset (kind_label d.kind)
    (if d.fatal then " (record skipped)" else "")
    d.message
