(** DWARF Call Frame Instructions (the DW_CFA opcode family), the
    unwinding-rule bytecode inside CIE/FDE records (§III-C of the
    paper). *)

type instr =
  | Advance_loc of int  (** code offset delta, in code-alignment units *)
  | Def_cfa of int * int  (** CFA := reg + offset *)
  | Def_cfa_register of int
  | Def_cfa_offset of int
  | Offset of int * int  (** reg saved at CFA + factored_offset * data_align *)
  | Restore of int
  | Same_value of int
  | Undefined of int
  | Register of int * int  (** reg1 saved in reg2 *)
  | Remember_state
  | Restore_state
  | Def_cfa_expression of string  (** raw DWARF expression bytes *)
  | Expression of int * string  (** reg rule is a DWARF expression *)
  | Nop

(** Readable rendering in readelf style; alignment factors default to the
    x86-64 CIE's (1, -8). *)
val to_string : ?code_align:int -> ?data_align:int -> instr -> string

(** Append the encoding of one instruction. *)
val encode : Fetch_util.Byte_buf.t -> instr -> unit

(** Decode instructions until the cursor is exhausted; raises [Failure]
    on an unknown opcode. *)
val decode_all : Fetch_util.Byte_cursor.t -> instr list

(** Total variant of {!decode_all}: decodes as many instructions as
    possible and never raises.  Returns the decoded prefix, paired with
    [Some error] if an undecodable opcode (or truncated operand) stopped
    the decode early. *)
val decode_prefix : Fetch_util.Byte_cursor.t -> instr list * string option
