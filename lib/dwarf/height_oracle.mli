(** Image-wide stack-height oracle backed by CFI tables.

    FETCH's Algorithm 1 consults this instead of a static stack-height
    analysis: for a jump site it answers "what is the stack height
    here?", but only inside functions whose CFI passes the completeness
    test of §V-B — other functions are skipped, which is exactly the
    paper's conservative implementation choice. *)

type entry = {
  fde : Eh_frame.fde;
  rows : Cfa_table.row list;
  complete : bool;
}

type t

val create : Eh_frame.cie list -> t

(** The FDE entry whose range contains [addr]. *)
val entry_at : t -> int -> entry option

(** Is [addr] inside a function whose CFI gives complete rsp-based
    heights? *)
val complete_at : t -> int -> bool

(** Stack height at [addr]; [None] outside FDE coverage or where the CFI
    is incomplete. *)
val height_at : t -> int -> int option

(** Height regardless of the completeness test — used to evaluate static
    analyses against the raw CFI truth in Table IV. *)
val height_at_unchecked : t -> int -> int option

(** Iterate every FDE-covered range [\[lo, hi)] whose CFI passes the
    completeness test — the ranges where {!height_at} answers. *)
val iter_complete : t -> (lo:int -> hi:int -> unit) -> unit

(** Enumerate the piecewise-constant height function of every complete
    entry as [(lo, hi, height)] ranges — exactly the ranges where
    {!height_at} answers, with the same values.  Feeds the [cfi_row]
    extensional relation of [Fetch_core.Fact_base]. *)
val iter_rows : t -> (lo:int -> hi:int -> height:int -> unit) -> unit

(** The FDE beginning exactly at [addr], if any. *)
val fde_starting_at : t -> int -> Eh_frame.fde option
