(** Structured parser diagnostics for the [.eh_frame] decoder.

    [Eh_frame.decode] is total: it never raises, whatever the input
    bytes.  When a length-delimited CIE/FDE record cannot be decoded the
    parser skips just that record (resynchronizing at the next length
    field) and reports what happened here — offset into the section,
    a machine-matchable kind, and a human-readable message.

    A diagnostic with [fatal = true] means the record was dropped; with
    [fatal = false] the record was recovered despite the problem (e.g. a
    CFI instruction tail that would not decode, or an unknown
    augmentation character skipped via the ['z'] augmentation length). *)

type kind =
  | Truncated  (** record or field extends past the section / record end *)
  | Bad_length  (** 64-bit DWARF extended length, or a length < 4 *)
  | Bad_version  (** CIE version other than 1, 3 or 4 *)
  | Unknown_augmentation
      (** augmentation character we cannot interpret; fatal only when the
          CIE lacks the ['z'] size prefix that lets us skip its data *)
  | Unsupported_encoding  (** DW_EH_PE format/application we cannot read *)
  | Unknown_cie  (** FDE whose CIE pointer resolves to no decoded CIE *)
  | Bad_cfi  (** undecodable DW_CFA opcode; the instruction tail is dropped *)
  | Malformed  (** any other per-record decode failure *)

(** Every kind, in declaration order (for registering per-reason counters). *)
val all_kinds : kind list

(** Short stable slug, e.g. ["truncated"], ["unknown_cie"] — used as the
    suffix of the [eh_frame.records_skipped.*] observability counters. *)
val kind_label : kind -> string

type t = {
  offset : int;  (** byte offset of the offending record in the section *)
  kind : kind;
  fatal : bool;  (** [true] iff the record was skipped *)
  message : string;
}

val to_string : t -> string
