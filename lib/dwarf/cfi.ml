(** DWARF Call Frame Instructions (the DW_CFA opcode family), the
    unwinding-rule bytecode inside CIE/FDE records (§III-C of the paper). *)

type instr =
  | Advance_loc of int  (** code offset delta, in code-alignment units *)
  | Def_cfa of int * int  (** CFA := reg + offset *)
  | Def_cfa_register of int
  | Def_cfa_offset of int
  | Offset of int * int  (** reg saved at CFA + factored_offset * data_align *)
  | Restore of int
  | Same_value of int
  | Undefined of int
  | Register of int * int  (** reg1 saved in reg2 *)
  | Remember_state
  | Restore_state
  | Def_cfa_expression of string  (** raw DWARF expression bytes *)
  | Expression of int * string  (** reg rule is a DWARF expression *)
  | Nop

let to_string ?(code_align = 1) ?(data_align = -8) i =
  match i with
  | Advance_loc d -> Printf.sprintf "DW_CFA_advance_loc: %d" (d * code_align)
  | Def_cfa (r, o) -> Printf.sprintf "DW_CFA_def_cfa: r%d ofs %d" r o
  | Def_cfa_register r -> Printf.sprintf "DW_CFA_def_cfa_register: r%d" r
  | Def_cfa_offset o -> Printf.sprintf "DW_CFA_def_cfa_offset: %d" o
  | Offset (r, o) -> Printf.sprintf "DW_CFA_offset: r%d at cfa%d" r (o * data_align)
  | Restore r -> Printf.sprintf "DW_CFA_restore: r%d" r
  | Same_value r -> Printf.sprintf "DW_CFA_same_value: r%d" r
  | Undefined r -> Printf.sprintf "DW_CFA_undefined: r%d" r
  | Register (a, b) -> Printf.sprintf "DW_CFA_register: r%d in r%d" a b
  | Remember_state -> "DW_CFA_remember_state"
  | Restore_state -> "DW_CFA_restore_state"
  | Def_cfa_expression _ -> "DW_CFA_def_cfa_expression: <expr>"
  | Expression (r, _) -> Printf.sprintf "DW_CFA_expression: r%d <expr>" r
  | Nop -> "DW_CFA_nop"

open Fetch_util

let encode buf = function
  | Advance_loc d ->
      if d < 0 then invalid_arg "Cfi: negative advance";
      if d < 0x40 then Byte_buf.u8 buf (0x40 lor d)
      else if d < 0x100 then begin
        Byte_buf.u8 buf 0x02;
        Byte_buf.u8 buf d
      end
      else if d < 0x10000 then begin
        Byte_buf.u8 buf 0x03;
        Byte_buf.u16 buf d
      end
      else begin
        Byte_buf.u8 buf 0x04;
        Byte_buf.u32 buf d
      end
  | Def_cfa (r, o) ->
      Byte_buf.u8 buf 0x0c;
      Byte_buf.uleb128 buf r;
      Byte_buf.uleb128 buf o
  | Def_cfa_register r ->
      Byte_buf.u8 buf 0x0d;
      Byte_buf.uleb128 buf r
  | Def_cfa_offset o ->
      Byte_buf.u8 buf 0x0e;
      Byte_buf.uleb128 buf o
  | Offset (r, o) ->
      if r < 0x40 && o >= 0 then begin
        Byte_buf.u8 buf (0x80 lor r);
        Byte_buf.uleb128 buf o
      end
      else begin
        Byte_buf.u8 buf 0x05;
        Byte_buf.uleb128 buf r;
        Byte_buf.uleb128 buf o
      end
  | Restore r ->
      if r < 0x40 then Byte_buf.u8 buf (0xc0 lor r)
      else begin
        Byte_buf.u8 buf 0x06;
        Byte_buf.uleb128 buf r
      end
  | Same_value r ->
      Byte_buf.u8 buf 0x08;
      Byte_buf.uleb128 buf r
  | Undefined r ->
      Byte_buf.u8 buf 0x07;
      Byte_buf.uleb128 buf r
  | Register (a, b) ->
      Byte_buf.u8 buf 0x09;
      Byte_buf.uleb128 buf a;
      Byte_buf.uleb128 buf b
  | Remember_state -> Byte_buf.u8 buf 0x0a
  | Restore_state -> Byte_buf.u8 buf 0x0b
  | Def_cfa_expression e ->
      Byte_buf.u8 buf 0x0f;
      Byte_buf.uleb128 buf (String.length e);
      Byte_buf.string buf e
  | Expression (r, e) ->
      Byte_buf.u8 buf 0x10;
      Byte_buf.uleb128 buf r;
      Byte_buf.uleb128 buf (String.length e);
      Byte_buf.string buf e
  | Nop -> Byte_buf.u8 buf 0x00

(** Decode the single CFI at the cursor.  Unknown opcodes raise
    [Failure]; truncated operands raise [Byte_cursor.Out_of_bounds]. *)
let decode_one c =
  let op = Byte_cursor.u8 c in
  match op lsr 6 with
  | 1 -> Advance_loc (op land 0x3f)
  | 2 -> Offset (op land 0x3f, Byte_cursor.uleb128 c)
  | 3 -> Restore (op land 0x3f)
  | _ -> (
      match op with
      | 0x00 -> Nop
      | 0x02 -> Advance_loc (Byte_cursor.u8 c)
      | 0x03 -> Advance_loc (Byte_cursor.u16 c)
      | 0x04 -> Advance_loc (Byte_cursor.u32 c)
      | 0x05 ->
          let r = Byte_cursor.uleb128 c in
          let o = Byte_cursor.uleb128 c in
          Offset (r, o)
      | 0x06 -> Restore (Byte_cursor.uleb128 c)
      | 0x07 -> Undefined (Byte_cursor.uleb128 c)
      | 0x08 -> Same_value (Byte_cursor.uleb128 c)
      | 0x09 ->
          let a = Byte_cursor.uleb128 c in
          let b = Byte_cursor.uleb128 c in
          Register (a, b)
      | 0x0a -> Remember_state
      | 0x0b -> Restore_state
      | 0x0c ->
          let r = Byte_cursor.uleb128 c in
          let o = Byte_cursor.uleb128 c in
          Def_cfa (r, o)
      | 0x0d -> Def_cfa_register (Byte_cursor.uleb128 c)
      | 0x0e -> Def_cfa_offset (Byte_cursor.uleb128 c)
      | 0x0f ->
          let n = Byte_cursor.uleb128 c in
          Def_cfa_expression (Byte_cursor.string c n)
      | 0x10 ->
          let r = Byte_cursor.uleb128 c in
          let n = Byte_cursor.uleb128 c in
          Expression (r, Byte_cursor.string c n)
      | _ -> failwith (Printf.sprintf "Cfi.decode: unknown opcode %#x" op))

(** Decode all CFIs in [c] until exhaustion.  Unknown opcodes raise
    [Failure]. *)
let decode_all c =
  let out = ref [] in
  while not (Byte_cursor.eof c) do
    out := decode_one c :: !out
  done;
  List.rev !out

(** Total variant: decode as many CFIs as possible; stops at the first
    undecodable opcode (or truncated operand) and returns the prefix plus
    the error message, instead of raising. *)
let decode_prefix c =
  let out = ref [] in
  let err = ref None in
  (try
     while not (Byte_cursor.eof c) do
       out := decode_one c :: !out
     done
   with
  | Failure m -> err := Some m
  | Byte_cursor.Out_of_bounds _ -> err := Some "truncated CFI operand");
  (List.rev !out, !err)
