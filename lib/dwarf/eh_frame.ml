(** The [.eh_frame] section: a list of CIEs, each carrying FDEs (§III-C).

    Encoding follows the Linux Standard Base / GCC conventions: 32-bit
    length fields, CIE version 1 with augmentation ["zR"] (plus ["P"] for
    a personality routine and ["L"] for language-specific data areas in
    C++-style objects), pcrel+sdata4 pointer encoding, records padded to
    8 bytes with DW_CFA_nop, terminated by a zero-length entry. *)

open Fetch_util

type fde = {
  pc_begin : int;  (** virtual address of the first covered byte *)
  pc_range : int;  (** length of the covered region in bytes *)
  lsda : int option;  (** language-specific data area (C++ landing pads) *)
  instrs : Cfi.instr list;
}

type cie = {
  code_align : int;
  data_align : int;
  ra_reg : int;  (** return-address column; 16 on x86-64 *)
  personality : int option;  (** personality routine address *)
  initial : Cfi.instr list;  (** initial unwinding rules *)
  fdes : fde list;
}

let make_fde ?lsda ~pc_begin ~pc_range instrs = { pc_begin; pc_range; lsda; instrs }

(** The CIE GCC emits for x86-64: CFA = rsp + 8, return address at CFA-8. *)
let default_cie ?personality ?(fdes = []) () =
  {
    code_align = 1;
    data_align = -8;
    ra_reg = 16;
    personality;
    initial = [ Cfi.Def_cfa (7, 8); Cfi.Offset (16, 1) ];
    fdes;
  }

let all_fdes cies = List.concat_map (fun c -> c.fdes) cies

(* DW_EH_PE pointer encodings we support. *)
let pe_pcrel_sdata4 = 0x1b

(** Serialize the section as if loaded at [addr]; also returns, for every
    FDE, its [pc_begin] and the virtual address of its record (what
    [.eh_frame_hdr]'s search table stores). *)
let encode_with_index ?(format64 = false) ~addr cies =
  let buf = Byte_buf.create ~capacity:4096 () in
  let index = ref [] in
  let encode_instrs instrs =
    let b = Byte_buf.create () in
    List.iter (Cfi.encode b) instrs;
    b
  in
  (* Offset from the record start to the id field: past a 4-byte length in
     32-bit DWARF, past the 0xffffffff marker + 8-byte length in 64-bit
     DWARF. *)
  let id_field_off = if format64 then 12 else 4 in
  (* Emit one record (CIE or FDE); [body] writes everything after the length
     and id fields.  Records are padded to 8 bytes with DW_CFA_nop. *)
  let record ~id body =
    let len_at = Byte_buf.length buf in
    if format64 then begin
      Byte_buf.u32 buf 0xffffffff;
      Byte_buf.u64 buf 0;
      (* placeholder *)
      Byte_buf.u64 buf id
    end
    else begin
      Byte_buf.u32 buf 0;
      (* placeholder *)
      Byte_buf.u32 buf id
    end;
    body ();
    (* pad so that total record size is a multiple of 8 *)
    while (Byte_buf.length buf - len_at) mod 8 <> 0 do
      Byte_buf.u8 buf 0x00
    done;
    (* the length counts every byte after the length field itself *)
    if format64 then
      Byte_buf.patch_u64 buf ~at:(len_at + 4) (Byte_buf.length buf - len_at - 12)
    else Byte_buf.patch_u32 buf ~at:len_at (Byte_buf.length buf - len_at - 4)
  in
  List.iter
    (fun cie ->
      let with_lsda = List.exists (fun f -> f.lsda <> None) cie.fdes in
      let cie_start = Byte_buf.length buf in
      record ~id:0 (fun () ->
          Byte_buf.u8 buf 1;
          (* version *)
          let aug =
            "z"
            ^ (if cie.personality <> None then "P" else "")
            ^ (if with_lsda then "L" else "")
            ^ "R"
          in
          Byte_buf.cstring buf aug;
          Byte_buf.uleb128 buf cie.code_align;
          Byte_buf.sleb128 buf cie.data_align;
          Byte_buf.uleb128 buf cie.ra_reg;
          (* augmentation data: P (enc + pointer), L (enc), R (enc) *)
          let aug_len =
            (if cie.personality <> None then 5 else 0)
            + (if with_lsda then 1 else 0)
            + 1
          in
          Byte_buf.uleb128 buf aug_len;
          (match cie.personality with
          | Some p ->
              Byte_buf.u8 buf pe_pcrel_sdata4;
              let field_addr = addr + Byte_buf.length buf in
              Byte_buf.i32 buf (p - field_addr)
          | None -> ());
          if with_lsda then Byte_buf.u8 buf pe_pcrel_sdata4;
          Byte_buf.u8 buf pe_pcrel_sdata4;
          Byte_buf.bytes buf
            (Bytes.of_string (Byte_buf.contents (encode_instrs cie.initial))));
      List.iter
        (fun fde ->
          let len_at = Byte_buf.length buf in
          index := (fde.pc_begin, addr + len_at) :: !index;
          (* CIE pointer: distance from the id field back to the CIE start *)
          record ~id:(len_at + id_field_off - cie_start) (fun () ->
              (* pc_begin, pcrel sdata4 relative to the field's own address *)
              let field_addr = addr + Byte_buf.length buf in
              Byte_buf.i32 buf (fde.pc_begin - field_addr);
              Byte_buf.i32 buf fde.pc_range;
              (* augmentation data: the LSDA pointer when the CIE declares L *)
              if with_lsda then begin
                Byte_buf.uleb128 buf 4;
                let lsda_field = addr + Byte_buf.length buf in
                match fde.lsda with
                | Some l -> Byte_buf.i32 buf (l - lsda_field)
                | None -> Byte_buf.i32 buf (0 - lsda_field) (* 0 = no LSDA *)
              end
              else Byte_buf.uleb128 buf 0;
              Byte_buf.bytes buf
                (Bytes.of_string (Byte_buf.contents (encode_instrs fde.instrs)))))
        cie.fdes)
    cies;
  (* terminator *)
  Byte_buf.u32 buf 0;
  (Byte_buf.contents buf, List.rev !index)

let encode ?format64 ~addr cies = fst (encode_with_index ?format64 ~addr cies)

type raw_cie = {
  rc_code_align : int;
  rc_data_align : int;
  rc_ra : int;
  rc_has_z : bool;  (** FDEs of this CIE carry an augmentation-length field *)
  rc_enc : int;  (** DW_EH_PE encoding of pc_begin / pc_range *)
  rc_lsda_enc : int option;
  rc_personality : int option;
  rc_initial : Cfi.instr list;
}

type decoded = {
  cies : cie list;
  diags : Diag.t list;  (** ascending offset *)
  records_ok : int;  (** CIE + FDE records fully decoded *)
  records_skipped : int;  (** records dropped after a per-record failure *)
  indirect_derefs : int;
      (** DW_EH_PE_indirect pointers resolved; [0] means the decode is a
          pure function of the section's (address, bytes) pair *)
}

(* Raised (and always caught) inside a record boundary to skip just that
   record with a structured reason. *)
exception Skip of Diag.kind * string

let pe_omit = 0xff

let decode ?(ptr_width = 8) ?deref ~addr data =
  let sec = Byte_cursor.of_string data in
  let sec_len = String.length data in
  let cies : (int, raw_cie) Hashtbl.t = Hashtbl.create 8 in
  (* Preserve CIE grouping in input order. *)
  let order : int list ref = ref [] in
  let grouped : (int, fde list) Hashtbl.t = Hashtbl.create 8 in
  let diags = ref [] in
  let n_ok = ref 0 and n_skipped = ref 0 in
  let n_indirect = ref 0 in
  let diag ?(fatal = true) offset kind message =
    diags := { Diag.offset; kind; fatal; message } :: !diags;
    if fatal then incr n_skipped
  in
  (* Read one DW_EH_PE-encoded pointer from the record cursor [c] whose
     window starts [base] bytes into the section.  [None] means the value
     is omitted (DW_EH_PE_omit). *)
  let read_encoded ~c ~base enc =
    if enc = pe_omit then None
    else begin
      let field_addr = addr + base + Byte_cursor.pos c in
      let v =
        match enc land 0x0f with
        | 0x00 (* absptr *) ->
            if ptr_width = 4 then Byte_cursor.u32 c
            else Int64.to_int (Byte_cursor.i64 c)
        | 0x01 (* uleb128 *) -> Byte_cursor.uleb128 c
        | 0x02 (* udata2 *) -> Byte_cursor.u16 c
        | 0x03 (* udata4 *) -> Byte_cursor.u32 c
        | 0x04 (* udata8 *) -> Int64.to_int (Byte_cursor.i64 c)
        | 0x09 (* sleb128 *) -> Byte_cursor.sleb128 c
        | 0x0a (* sdata2 *) -> Byte_cursor.i16 c
        | 0x0b (* sdata4 *) -> Byte_cursor.i32 c
        | 0x0c (* sdata8 *) -> Int64.to_int (Byte_cursor.i64 c)
        | f ->
            raise
              (Skip
                 ( Diag.Unsupported_encoding,
                   Printf.sprintf "pointer format %#x" f ))
      in
      let v =
        match enc land 0x70 with
        | 0x00 -> v
        | 0x10 (* pcrel *) -> v + field_addr
        | 0x30 (* datarel: relative to the section start *) -> v + addr
        | a ->
            raise
              (Skip
                 ( Diag.Unsupported_encoding,
                   Printf.sprintf "pointer application %#x" a ))
      in
      (* indirect: the value is the address of a slot holding the pointer;
         dereference when the caller can read memory, else keep the slot
         address (good enough for presence/coverage questions). *)
      let v =
        if enc land 0x80 <> 0 then begin
          incr n_indirect;
          match deref with
          | Some read -> ( match read v with Some w -> w | None -> v)
          | None -> v
        end
        else v
      in
      Some v
    end
  in
  (* pc_range shares pc_begin's value format but is an absolute size:
     read the unsigned sibling of signed formats so ranges >= 2^31 (or
     2^15) don't go negative. *)
  let read_range ~c enc =
    match enc land 0x0f with
    | 0x00 ->
        if ptr_width = 4 then Byte_cursor.u32 c
        else Int64.to_int (Byte_cursor.i64 c)
    | 0x01 | 0x09 -> Byte_cursor.uleb128 c
    | 0x02 | 0x0a -> Byte_cursor.u16 c
    | 0x03 | 0x0b -> Byte_cursor.u32 c
    | 0x04 | 0x0c -> Int64.to_int (Byte_cursor.i64 c)
    | f ->
        raise
          (Skip
             (Diag.Unsupported_encoding, Printf.sprintf "range format %#x" f))
  in
  let decode_cie ~c ~base ~body_end rec_start =
    let version = Byte_cursor.u8 c in
    if version <> 1 && version <> 3 && version <> 4 then
      raise (Skip (Diag.Bad_version, Printf.sprintf "CIE version %d" version));
    let aug = Byte_cursor.cstring c in
    if version = 4 then (* address_size and segment_selector_size *)
      Byte_cursor.advance c 2;
    let code_align = Byte_cursor.uleb128 c in
    let data_align = Byte_cursor.sleb128 c in
    let ra = Byte_cursor.uleb128 c in
    let has_z = String.length aug > 0 && aug.[0] = 'z' in
    let enc = ref 0x00 in
    let lsda_enc = ref None in
    let personality = ref None in
    if has_z then begin
      let aug_len = Byte_cursor.uleb128 c in
      let aug_end = Byte_cursor.pos c + aug_len in
      if aug_len < 0 || base + aug_end > body_end then
        raise (Skip (Diag.Truncated, "augmentation data overruns record"));
      (try
         String.iter
           (function
             | 'z' -> ()
             | 'R' -> enc := Byte_cursor.u8 c
             | 'P' ->
                 let penc = Byte_cursor.u8 c in
                 personality := read_encoded ~c ~base penc
             | 'L' -> lsda_enc := Some (Byte_cursor.u8 c)
             | 'S' | 'B' -> () (* signal frame / AArch64 ptr-auth: no data *)
             | ch ->
                 (* unknown char: its data layout is unknown, but the 'z'
                    length lets us skip the rest of the augmentation *)
                 diag ~fatal:false rec_start Diag.Unknown_augmentation
                   (Printf.sprintf "augmentation '%c' skipped via z length" ch);
                 raise Exit)
           aug
       with Exit -> ());
      Byte_cursor.seek c aug_end
    end
    else if aug = "eh" then
      (* legacy GCC v1 "eh" augmentation: one pointer of EH data *)
      Byte_cursor.advance c ptr_width
    else if aug <> "" then
      raise
        (Skip
           ( Diag.Unknown_augmentation,
             Printf.sprintf "augmentation %S without 'z' length" aug ));
    let body_len = body_end - (base + Byte_cursor.pos c) in
    let instr_bytes = Byte_cursor.string c body_len in
    let initial, cfi_err = Cfi.decode_prefix (Byte_cursor.of_string instr_bytes) in
    (match cfi_err with
    | Some m -> diag ~fatal:false rec_start Diag.Bad_cfi ("CIE initial: " ^ m)
    | None -> ());
    Hashtbl.replace cies rec_start
      { rc_code_align = code_align; rc_data_align = data_align; rc_ra = ra;
        rc_has_z = has_z; rc_enc = !enc; rc_lsda_enc = !lsda_enc;
        rc_personality = !personality; rc_initial = initial };
    if not (Hashtbl.mem grouped rec_start) then begin
      (* O(1) membership via the hashtable (the list scan was O(CIEs^2)) *)
      order := rec_start :: !order;
      Hashtbl.replace grouped rec_start []
    end
  in
  let decode_fde ~c ~base ~body_end ~id ~id_at rec_start =
    (* id is the distance back from the id field to the CIE start *)
    let cie_off = id_at - id in
    let raw =
      match Hashtbl.find_opt cies cie_off with
      | Some r -> r
      | None ->
          raise
            (Skip
               ( Diag.Unknown_cie,
                 Printf.sprintf "CIE pointer %#x resolves to %#x" id cie_off ))
    in
    let pc_begin =
      match read_encoded ~c ~base raw.rc_enc with
      | Some v -> v
      | None -> raise (Skip (Diag.Unsupported_encoding, "pc_begin omitted"))
    in
    let pc_range = read_range ~c raw.rc_enc in
    let lsda =
      if raw.rc_has_z then begin
        let aug_len = Byte_cursor.uleb128 c in
        let aug_end = Byte_cursor.pos c + aug_len in
        if aug_len < 0 || base + aug_end > body_end then
          raise (Skip (Diag.Truncated, "augmentation data overruns record"));
        let lsda =
          match raw.rc_lsda_enc with
          | Some enc when aug_len > 0 -> (
              match read_encoded ~c ~base enc with
              | Some 0 | None -> None (* encoders write 0 for "no LSDA" *)
              | some -> some)
          | _ -> None
        in
        Byte_cursor.seek c aug_end;
        lsda
      end
      else None
    in
    let body_len = body_end - (base + Byte_cursor.pos c) in
    let instr_bytes = Byte_cursor.string c body_len in
    let instrs, cfi_err = Cfi.decode_prefix (Byte_cursor.of_string instr_bytes) in
    (match cfi_err with
    | Some m -> diag ~fatal:false rec_start Diag.Bad_cfi ("FDE program: " ^ m)
    | None -> ());
    let prev = try Hashtbl.find grouped cie_off with Not_found -> [] in
    Hashtbl.replace grouped cie_off ({ pc_begin; pc_range; lsda; instrs } :: prev)
  in
  let continue = ref true in
  while !continue && Byte_cursor.remaining sec >= 4 do
    let rec_start = Byte_cursor.pos sec in
    let len = Byte_cursor.u32 sec in
    if len = 0 then continue := false
    else if len = 0xffffffff then begin
      (* 64-bit DWARF: 0xffffffff marker, 8-byte length, 8-byte id *)
      if Byte_cursor.remaining sec >= 8 then begin
        let len64 = Byte_cursor.i64 sec in
        let body_end = rec_start + 12 + Int64.to_int len64 in
        if
          Int64.compare len64 0L < 0
          || Int64.compare len64 (Int64.of_int sec_len) > 0
          || body_end > sec_len || body_end < rec_start
        then begin
          diag rec_start Diag.Truncated
            (Printf.sprintf "64-bit record length %Ld overruns the section"
               len64);
          continue := false
        end
        else if Int64.to_int len64 < 8 then begin
          (* too short to hold the 8-byte id field; resync past it *)
          diag rec_start Diag.Bad_length
            (Printf.sprintf "64-bit record length %Ld" len64);
          Byte_cursor.seek sec body_end
        end
        else begin
          let base = rec_start + 12 in
          let c = Byte_cursor.of_string ~pos:base ~len:(Int64.to_int len64) data in
          (try
             let id = Int64.to_int (Byte_cursor.i64 c) in
             if id = 0 then decode_cie ~c ~base ~body_end rec_start
             else decode_fde ~c ~base ~body_end ~id ~id_at:base rec_start;
             incr n_ok
           with
          | Skip (kind, msg) -> diag rec_start kind msg
          | Byte_cursor.Out_of_bounds _ ->
              diag rec_start Diag.Truncated "field overruns the record"
          | Failure msg -> diag rec_start Diag.Malformed msg);
          Byte_cursor.seek sec body_end
        end
      end
      else begin
        diag rec_start Diag.Truncated "truncated 64-bit DWARF length";
        continue := false
      end
    end
    else begin
      let body_end = rec_start + 4 + len in
      if body_end > sec_len then begin
        diag rec_start Diag.Truncated
          (Printf.sprintf "record length %d overruns the section" len);
        continue := false
      end
      else if len < 4 then begin
        (* too short to hold the id field; resync at the next record *)
        diag rec_start Diag.Bad_length (Printf.sprintf "record length %d" len);
        Byte_cursor.seek sec body_end
      end
      else begin
        (* Decode the record through an independent cursor confined to its
           own body: a malformed field can never bleed into (or consume)
           a neighboring record. *)
        let base = rec_start + 4 in
        let c = Byte_cursor.of_string ~pos:base ~len data in
        (try
           let id = Byte_cursor.u32 c in
           if id = 0 then decode_cie ~c ~base ~body_end rec_start
           else decode_fde ~c ~base ~body_end ~id ~id_at:base rec_start;
           incr n_ok
         with
        | Skip (kind, msg) -> diag rec_start kind msg
        | Byte_cursor.Out_of_bounds _ ->
            diag rec_start Diag.Truncated "field overruns the record"
        | Failure msg -> diag rec_start Diag.Malformed msg);
        Byte_cursor.seek sec body_end
      end
    end
  done;
  if !continue && Byte_cursor.remaining sec > 0 then
    (* ended without a terminator, on a sub-length tail *)
    diag ~fatal:false (Byte_cursor.pos sec) Diag.Truncated
      (Printf.sprintf "%d trailing bytes (no terminator)"
         (Byte_cursor.remaining sec));
  let result =
    List.rev_map
      (fun off ->
        let raw = Hashtbl.find cies off in
        {
          code_align = raw.rc_code_align;
          data_align = raw.rc_data_align;
          ra_reg = raw.rc_ra;
          personality = raw.rc_personality;
          initial = raw.rc_initial;
          fdes = List.rev (Hashtbl.find grouped off);
        })
      !order
  in
  {
    cies = result;
    diags = List.rev !diags;
    records_ok = !n_ok;
    records_skipped = !n_skipped;
    indirect_derefs = !n_indirect;
  }

(** Decode the [.eh_frame] section of an ELF image, if present.  Indirect
    (DW_EH_PE_indirect) pointers are dereferenced through the image. *)
let of_image (img : Fetch_elf.Image.t) =
  match Fetch_elf.Image.section img ".eh_frame" with
  | None ->
      {
        cies = [];
        diags = [];
        records_ok = 0;
        records_skipped = 0;
        indirect_derefs = 0;
      }
  | Some s ->
      decode ~deref:(Fetch_elf.Image.read_u64 img) ~addr:s.addr s.data
