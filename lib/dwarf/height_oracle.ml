(** Image-wide stack-height oracle backed by CFI tables.

    FETCH's Algorithm 1 consults this instead of a static stack-height
    analysis: for a jump site it answers "what is the stack height here?",
    but only inside functions whose CFI passes the completeness test of
    §V-B — other functions are skipped, which is exactly the paper's
    conservative implementation choice. *)

open Fetch_util

type entry = {
  fde : Eh_frame.fde;
  rows : Cfa_table.row list;
  complete : bool;
}

type t = { map : entry Interval_map.t }

let create cies =
  let map = Interval_map.create () in
  List.iter
    (fun (cie : Eh_frame.cie) ->
      List.iter
        (fun (fde : Eh_frame.fde) ->
          match Cfa_table.rows ~cie fde with
          | rows ->
              let complete = Cfa_table.complete_rsp_heights rows in
              if fde.pc_range > 0 then
                Interval_map.add_override map ~lo:fde.pc_begin
                  ~hi:(fde.pc_begin + fde.pc_range)
                  { fde; rows; complete }
          | exception Cfa_table.Unsupported _ -> ())
        cie.fdes)
    cies;
  { map }

let entry_at t addr =
  match Interval_map.find t.map addr with
  | Some (_, _, e) -> Some e
  | None -> None

(** Is [addr] inside a function whose CFI gives complete rsp-based
    heights? *)
let complete_at t addr =
  match entry_at t addr with Some e -> e.complete | None -> false

(** Stack height at [addr]; [None] outside FDE coverage or where the CFI
    is incomplete. *)
let height_at t addr =
  match entry_at t addr with
  | Some e when e.complete ->
      Cfa_table.height_at e.rows (addr - e.fde.pc_begin)
  | Some _ | None -> None

(** Height regardless of the completeness test — used to evaluate static
    analyses against the raw CFI truth in Table IV. *)
let height_at_unchecked t addr =
  match entry_at t addr with
  | Some e -> Cfa_table.height_at e.rows (addr - e.fde.pc_begin)
  | None -> None

(** Iterate every FDE-covered range whose CFI passes the completeness
    test — the ranges where {!height_at} answers. *)
let iter_complete t f =
  Interval_map.iter t.map (fun ~lo ~hi e -> if e.complete then f ~lo ~hi)

(** Enumerate the piecewise-constant height function of every complete
    entry as [(lo, hi, height)] ranges — exactly the ranges where
    {!height_at} answers, with the same values. *)
let iter_rows t f =
  Interval_map.iter t.map (fun ~lo:_ ~hi:_ e ->
      if e.complete then begin
        let fde_lo = e.fde.Eh_frame.pc_begin in
        let fde_hi = fde_lo + e.fde.Eh_frame.pc_range in
        let rec go = function
          | [] -> ()
          | (r : Cfa_table.row) :: rest ->
              let lo = fde_lo + r.loc in
              let hi =
                match rest with
                | (r2 : Cfa_table.row) :: _ -> fde_lo + r2.loc
                | [] -> fde_hi
              in
              let lo = max lo fde_lo and hi = min hi fde_hi in
              (if hi > lo then
                 match r.cfa with
                 | Cfa_table.Cfa_reg_offset (reg, off)
                   when reg = Cfa_table.dw_rsp ->
                     f ~lo ~hi ~height:(off - 8)
                 | Cfa_table.Cfa_reg_offset _ | Cfa_table.Cfa_expr -> ());
              go rest
        in
        go e.rows
      end)

let fde_starting_at t addr =
  match Interval_map.starts_at t.map addr with
  | Some (_, e) -> Some e.fde
  | None -> None
