(** The [.eh_frame] section: a list of CIEs, each carrying FDEs (§III-C).

    Encoding follows the Linux Standard Base / GCC conventions: 32-bit
    length fields, CIE version 1 with augmentation ["zR"] (plus ["P"] for
    a personality routine and ["L"] for language-specific data areas in
    C++-style objects), pcrel+sdata4 pointer encoding, records padded to
    8 bytes with DW_CFA_nop, terminated by a zero-length entry. *)

type fde = {
  pc_begin : int;  (** virtual address of the first covered byte *)
  pc_range : int;  (** length of the covered region in bytes *)
  lsda : int option;  (** language-specific data area (C++ landing pads) *)
  instrs : Cfi.instr list;
}

type cie = {
  code_align : int;
  data_align : int;
  ra_reg : int;  (** return-address column; 16 on x86-64 *)
  personality : int option;  (** personality routine address *)
  initial : Cfi.instr list;  (** initial unwinding rules *)
  fdes : fde list;
}

val make_fde : ?lsda:int -> pc_begin:int -> pc_range:int -> Cfi.instr list -> fde

(** The CIE GCC emits for x86-64: CFA = rsp + 8, return address at
    CFA - 8. *)
val default_cie : ?personality:int -> ?fdes:fde list -> unit -> cie

(** All FDEs of all CIEs, in input order. *)
val all_fdes : cie list -> fde list

(** [encode ~addr cies] serializes the section as if loaded at virtual
    address [addr] (needed for pcrel pointer encodings).  [format64]
    (default false) emits 64-bit DWARF records: [0xffffffff] marker,
    8-byte length, 8-byte CIE id / pointer. *)
val encode : ?format64:bool -> addr:int -> cie list -> string

(** Like {!encode}, and also returns each FDE's [pc_begin] paired with the
    virtual address of its record — the contents of [.eh_frame_hdr]'s
    binary-search table. *)
val encode_with_index :
  ?format64:bool -> addr:int -> cie list -> string * (int * int) list

(** Result of a total decode: whatever could be recovered, plus one
    structured diagnostic per problem found.  [records_ok] counts the
    CIE and FDE records decoded in full; [records_skipped] those dropped
    by per-record recovery ([= ] the number of fatal diags). *)
type decoded = {
  cies : cie list;
  diags : Diag.t list;  (** ascending offset *)
  records_ok : int;
  records_skipped : int;
  indirect_derefs : int;
      (** how many DW_EH_PE_indirect pointers were resolved: a decode
          that followed none is a pure function of the section's
          (address, bytes) pair, which is what lets the serve cache
          share it between binaries whose [.eh_frame] is identical *)
}

(** Inverse of {!encode} — and **total**: no input byte string makes it
    raise.  Each length-delimited record is decoded inside its own
    boundary; a record that cannot be decoded (unknown CIE, unsupported
    encoding, truncation, garbage) is skipped — resynchronizing at
    [record_start + 4 + length] — and reported in [diags] instead of
    poisoning the rest of the section.

    Accepts the common GCC/LLVM variations: CIE versions 1/3/4, 32- and
    64-bit DWARF record formats (the latter recognized by the
    [0xffffffff] length marker), [z*]
    augmentations ([R], [P], [L], [S], [B]; unknown characters are
    skipped via the ['z'] length), the legacy ["eh"] augmentation, and
    the full DW_EH_PE menu — absptr/uleb128/sleb128/udata2..8/sdata2..8
    formats, abs/pcrel/datarel applications, the [indirect] flag
    (dereferenced through [deref] when given, e.g.
    {!Fetch_elf.Image.read_u64}) and [omit].  [ptr_width] (default 8)
    sets the byte width of [absptr] pointers. *)
val decode :
  ?ptr_width:int -> ?deref:(int -> int option) -> addr:int -> string -> decoded

(** Decode the [.eh_frame] section of an ELF image (empty if absent);
    indirect pointers are dereferenced through the image. *)
val of_image : Fetch_elf.Image.t -> decoded
