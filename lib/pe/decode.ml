(** PE32+ decoder: the inverse of {!Encode}, plus exception-directory
    parsing.  Total over its input: any malformed structure yields
    [Error], never an exception. *)

open Fetch_util

let ( let* ) = Result.bind

let guard cond msg = if cond then Ok () else Error msg

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let decode_result raw : (Image.t, string) result =
  let len = String.length raw in
  let* () = guard (len >= 0x40) "too short for a DOS header" in
  let* () = guard (String.sub raw 0 2 = "MZ") "bad DOS magic" in
  let c = Byte_cursor.of_string raw in
  Byte_cursor.seek c 0x3c;
  let e_lfanew = Byte_cursor.u32 c in
  let* () = guard (e_lfanew + 24 <= len) "e_lfanew out of range" in
  Byte_cursor.seek c e_lfanew;
  let* () = guard (Byte_cursor.string c 4 = "PE\000\000") "bad PE signature" in
  let machine = Byte_cursor.u16 c in
  let* () = guard (machine = 0x8664) "not an x64 PE" in
  let nsections = Byte_cursor.u16 c in
  Byte_cursor.advance c 12;
  let opt_size = Byte_cursor.u16 c in
  let _characteristics = Byte_cursor.u16 c in
  let opt_start = Byte_cursor.pos c in
  let magic = Byte_cursor.u16 c in
  let* () = guard (magic = 0x20b) "not PE32+" in
  let* () =
    guard (opt_size >= 112 + (4 * 8)) "optional header too small for PE32+"
  in
  Byte_cursor.seek c (opt_start + 16);
  let entry_rva = Byte_cursor.u32 c in
  Byte_cursor.seek c (opt_start + 24);
  let image_base = Byte_cursor.u64 c in
  (* data directory 3 = exception directory *)
  Byte_cursor.seek c (opt_start + 112 + (3 * 8));
  let exc_rva = Byte_cursor.u32 c in
  let exc_size = Byte_cursor.u32 c in
  Byte_cursor.seek c (opt_start + opt_size);
  let raw_sections =
    List.init nsections (fun _ ->
        let name_bytes = Byte_cursor.string c 8 in
        let pname =
          match String.index_opt name_bytes '\000' with
          | Some i -> String.sub name_bytes 0 i
          | None -> name_bytes
        in
        let vsize = Byte_cursor.u32 c in
        let rva = Byte_cursor.u32 c in
        let raw_size = Byte_cursor.u32 c in
        let raw_off = Byte_cursor.u32 c in
        Byte_cursor.advance c 12;
        let characteristics = Byte_cursor.u32 c in
        (pname, vsize, rva, raw_size, raw_off, characteristics))
  in
  let* sections =
    map_result
      (fun (pname, vsize, rva, raw_size, raw_off, characteristics) ->
        let n = min vsize raw_size in
        let* () = guard (raw_off + n <= len) "section data out of range" in
        Ok { Image.pname; rva; data = String.sub raw raw_off n; characteristics })
      raw_sections
  in
  (* parse the exception directory *)
  let* pdata =
    if exc_rva = 0 then Ok []
    else begin
      let sec =
        List.find_opt
          (fun (s : Image.section) ->
            exc_rva >= s.rva && exc_rva < s.rva + String.length s.data)
          sections
      in
      match sec with
      | None -> Error "exception directory outside sections"
      | Some s ->
          let avail = String.length s.data - (exc_rva - s.rva) in
          let* () =
            guard (exc_size <= avail) "exception directory overruns section"
          in
          let pc =
            Byte_cursor.of_string ~pos:(exc_rva - s.rva) ~len:exc_size s.data
          in
          let entries = ref [] in
          while Byte_cursor.remaining pc >= 12 do
            let begin_rva = Byte_cursor.u32 pc in
            let end_rva = Byte_cursor.u32 pc in
            let unwind_rva = Byte_cursor.u32 pc in
            if begin_rva <> 0 then
              entries := { Image.begin_rva; end_rva; unwind_rva } :: !entries
          done;
          Ok (List.rev !entries)
    end
  in
  (* keep .pdata out of the plain section list's way: it stays listed *)
  Ok { Image.image_base; entry_rva; sections; pdata }

let decode raw : (Image.t, string) result =
  (* header fields (e_lfanew, opt_size, nsections...) steer cursor seeks,
     so a hostile header can still overrun the buffer mid-parse *)
  try decode_result raw
  with Byte_cursor.Out_of_bounds _ -> Error "truncated PE structure"
