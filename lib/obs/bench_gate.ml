(** Bench snapshot codec and regression gate (see mli). *)

module Json = Fetch_util.Json

type host = {
  cores : int;
  os_type : string;
  word_size : int;
  ocaml_version : string;
}

let this_host () =
  {
    cores = Domain.recommended_domain_count ();
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    ocaml_version = Sys.ocaml_version;
  }

type stage = {
  s_name : string;
  s_calls : int;
  s_total_ms : float;
  s_mean_ms : float;
}

type snapshot = {
  schema : string;
  scale : float;
  binaries : int;
  domains : int;
  host : host option;
  seq_wall_s : float;
  par_wall_s : float;
  pipeline_total_ms : float;
  stages : stage list;
  counters : (string * int) list;
  histograms : (string * Trace.hist_stats) list;
}

(* /5: the perf section now also builds the declarative fact base per
   binary, adding the facts.extract / facts.eval stage spans and the
   facts.* counters — /4 baselines lack them and must be re-captured. *)
let schema_current = "fetch-bench-pipeline/5"

(* ---- writer ---- *)

let to_json (s : snapshot) =
  let buf = Buffer.create 4096 in
  let str = Json.escape in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %s,\n" (str s.schema));
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %g,\n" s.scale);
  Buffer.add_string buf (Printf.sprintf "  \"binaries\": %d,\n" s.binaries);
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" s.domains);
  (match s.host with
  | None -> ()
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"host\": {\"cores_available\": %d, \"os_type\": %s, \
            \"word_size\": %d, \"ocaml_version\": %s},\n"
           h.cores (str h.os_type) h.word_size (str h.ocaml_version)));
  Buffer.add_string buf (Printf.sprintf "  \"seq_wall_s\": %.3f,\n" s.seq_wall_s);
  Buffer.add_string buf (Printf.sprintf "  \"par_wall_s\": %.3f,\n" s.par_wall_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.2f,\n"
       (if s.par_wall_s > 0.0 then s.seq_wall_s /. s.par_wall_s else 0.0));
  Buffer.add_string buf
    (Printf.sprintf "  \"pipeline_total_ms\": %.3f,\n" s.pipeline_total_ms);
  Buffer.add_string buf "  \"stages\": [\n";
  List.iteri
    (fun i st ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %s, \"calls\": %d, \"total_ms\": %.3f, \
            \"mean_ms_per_binary\": %.3f}%s\n"
           (str st.s_name) st.s_calls st.s_total_ms st.s_mean_ms
           (if i = List.length s.stages - 1 then "" else ",")))
    s.stages;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"counters\": [\n";
  List.iteri
    (fun i (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %s, \"value\": %d}%s\n" (str n) v
           (if i = List.length s.counters - 1 then "" else ",")))
    s.counters;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"histograms\": [\n";
  List.iteri
    (fun i (n, h) ->
      (* reuse the report line shape, minus the "type" discriminator *)
      let line = Report.histogram_json n h in
      let line =
        (* {"type":"histogram","name":... -> {"name":... *)
        match String.index_opt line ',' with
        | Some c -> "{" ^ String.sub line (c + 1) (String.length line - c - 1)
        | None -> line
      in
      Buffer.add_string buf
        (Printf.sprintf "    %s%s\n" line
           (if i = List.length s.histograms - 1 then "" else ",")))
    s.histograms;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- reader ---- *)

let ( let* ) r f = Result.bind r f

let req what = function Some v -> Ok v | None -> Error ("missing or invalid " ^ what)

let parse_stage j =
  let* name = req "stage name" Json.(Option.bind (member "name" j) to_str) in
  let* calls = req "stage calls" Json.(Option.bind (member "calls" j) to_int) in
  let* total = req "stage total_ms" Json.(Option.bind (member "total_ms" j) to_float) in
  let* mean =
    req "stage mean_ms_per_binary"
      Json.(Option.bind (member "mean_ms_per_binary" j) to_float)
  in
  Ok { s_name = name; s_calls = calls; s_total_ms = total; s_mean_ms = mean }

let parse_counter j =
  let* name = req "counter name" Json.(Option.bind (member "name" j) to_str) in
  let* value = req "counter value" Json.(Option.bind (member "value" j) to_int) in
  Ok (name, value)

let parse_hist j =
  let* name = req "histogram name" Json.(Option.bind (member "name" j) to_str) in
  let* count = req "histogram count" Json.(Option.bind (member "count" j) to_int) in
  let* sum = req "histogram sum" Json.(Option.bind (member "sum" j) to_int) in
  let* hmin = req "histogram min" Json.(Option.bind (member "min" j) to_int) in
  let* hmax = req "histogram max" Json.(Option.bind (member "max" j) to_int) in
  let* pairs = req "histogram buckets" Json.(Option.bind (member "buckets" j) to_list) in
  let buckets = Array.make Trace.n_buckets 0 in
  let* () =
    List.fold_left
      (fun acc pair ->
        let* () = acc in
        match Json.to_list pair with
        | Some [ bi; bc ] -> (
            match (Json.to_int bi, Json.to_int bc) with
            | Some bi, Some bc when bi >= 0 && bi < Trace.n_buckets ->
                buckets.(bi) <- bc;
                Ok ()
            | _ -> Error "invalid bucket pair")
        | _ -> Error "invalid bucket pair")
      (Ok ()) pairs
  in
  Ok (name, { Trace.count; sum; min = hmin; max = hmax; buckets })

let parse_list what parse = function
  | None -> Ok []
  | Some l ->
      List.fold_left
        (fun acc j ->
          let* items = acc in
          let* item = parse j in
          Ok (item :: items))
        (Ok []) l
      |> Result.map List.rev
      |> Result.map_error (fun e -> what ^ ": " ^ e)

let of_json_string text =
  let* j = Json.parse text in
  let* schema = req "schema" Json.(Option.bind (member "schema" j) to_str) in
  if not (String.length schema >= 20 && String.sub schema 0 20 = "fetch-bench-pipeline")
  then Error (Printf.sprintf "unknown schema %S" schema)
  else
    let* scale = req "scale" Json.(Option.bind (member "scale" j) to_float) in
    let* binaries = req "binaries" Json.(Option.bind (member "binaries" j) to_int) in
    let* domains = req "domains" Json.(Option.bind (member "domains" j) to_int) in
    let host =
      match Json.member "host" j with
      | None -> None
      | Some h -> (
          match
            Json.
              ( Option.bind (member "cores_available" h) to_int,
                Option.bind (member "os_type" h) to_str,
                Option.bind (member "word_size" h) to_int,
                Option.bind (member "ocaml_version" h) to_str )
          with
          | Some cores, Some os_type, Some word_size, Some ocaml_version ->
              Some { cores; os_type; word_size; ocaml_version }
          | _ -> None)
    in
    let* seq_wall_s =
      req "seq_wall_s" Json.(Option.bind (member "seq_wall_s" j) to_float)
    in
    let* par_wall_s =
      req "par_wall_s" Json.(Option.bind (member "par_wall_s" j) to_float)
    in
    let* pipeline_total_ms =
      req "pipeline_total_ms"
        Json.(Option.bind (member "pipeline_total_ms" j) to_float)
    in
    let* stages =
      parse_list "stages" parse_stage Json.(Option.bind (member "stages" j) to_list)
    in
    let* counters =
      parse_list "counters" parse_counter
        Json.(Option.bind (member "counters" j) to_list)
    in
    let* histograms =
      parse_list "histograms" parse_hist
        Json.(Option.bind (member "histograms" j) to_list)
    in
    Ok
      {
        schema;
        scale;
        binaries;
        domains;
        host;
        seq_wall_s;
        par_wall_s;
        pipeline_total_ms;
        stages;
        counters;
        histograms;
      }

(* ---- gate ---- *)

type issue = { what : string; detail : string }

let issue_to_string i = Printf.sprintf "%s: %s" i.what i.detail

let check ?(tolerance = 0.5) ?(min_stage_ms = 0.1) ?(absolute = false) ~baseline
    ~current () =
  let issues = ref [] in
  let push what fmt =
    Printf.ksprintf (fun detail -> issues := { what; detail } :: !issues) fmt
  in
  if baseline.binaries <> current.binaries then
    push "corpus" "binary count differs: baseline %d, current %d (same --scale?)"
      baseline.binaries current.binaries;
  (* detection results: every baseline counter must match exactly *)
  List.iter
    (fun (name, bv) ->
      match List.assoc_opt name current.counters with
      | None -> push "counter" "%s present in baseline but missing now" name
      | Some cv when cv <> bv ->
          push "counter" "%s changed: baseline %d, current %d (detection drift)"
            name bv cv
      | Some _ -> ())
    baseline.counters;
  (* stage means, normalised by overall machine speed unless [absolute] *)
  let stage_mean snap name =
    List.find_map
      (fun st -> if st.s_name = name then Some st.s_mean_ms else None)
      snap.stages
  in
  let factor =
    if absolute then 1.0
    else
      match (stage_mean baseline "pipeline", stage_mean current "pipeline") with
      | Some b, Some c when b > 0.0 && c > 0.0 -> c /. b
      | _ -> 1.0
  in
  List.iter
    (fun bst ->
      if bst.s_mean_ms >= min_stage_ms then
        match stage_mean current bst.s_name with
        | None -> push "stage" "%s present in baseline but missing now" bst.s_name
        | Some cur_mean ->
            let allowed = bst.s_mean_ms *. factor *. (1.0 +. tolerance) in
            if cur_mean > allowed then
              push "stage"
                "%s regressed: %.3f ms/binary vs baseline %.3f (speed-adjusted \
                 limit %.3f, tolerance %g%%)"
                bst.s_name cur_mean bst.s_mean_ms allowed (tolerance *. 100.0))
    baseline.stages;
  List.rev !issues
