(** Pipeline instrumentation: hierarchical timing spans over the
    monotonic clock, plus named counters and histograms registered by the
    pipeline stages.

    The design is ambient and zero-cost-when-disabled: counters and
    spans are module-level handles created once at module initialisation
    (interned by name), and every recording operation is a domain-local
    load plus a branch while no run is active — no clock read, no
    allocation.  [start]/[stop] (or [with_run]) bracket an instrumented
    run; [stop] snapshots every registered instrument into an immutable
    {!report}.

    {2 Domain-safety contract}

    Recording state is {e per-domain}: every domain owns an independent
    trace context (reached through domain-local storage), and
    [start]/[incr]/[observe]/[span]/[stop] only ever touch the calling
    domain's context.  Two domains recording concurrently therefore
    never contend, never corrupt each other's values, and produce
    exactly the reports they would have produced running alone.  The
    rules:

    - Handles ({!counter}, {!histogram}) are immutable, globally
      interned and freely shared across domains; registration is
      serialised by a lock and may happen from any domain at any time.
    - A run belongs to the domain that called [start]: [stop] must be
      called on that same domain, and spans/increments recorded on other
      domains land in {e their} contexts, not the run's.  To instrument
      a parallel computation, bracket each task with [with_run] on its
      worker domain and combine the per-task reports with {!merge}.
    - [merge] is deterministic: given the same list of reports it
      returns the same merged report, independent of how many domains
      produced them or in what order they ran.  Counter merge is
      addition, so linear counter invariants (e.g.
      [xref.candidates_scanned = accepted + Σ rejects]) that hold for
      every per-task report also hold for the merged report. *)

(** A completed timing span.  [start_ns] is relative to the start of the
    enclosing run, so reports are stable across processes.  [run] is the
    process-unique id of the [start]..[stop] bracket that recorded the
    span (so merged reports keep runs apart — the Chrome exporter gives
    each run its own track); [args] are key/value annotations attached
    at open time or via {!set_arg}. *)
type span = {
  name : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  run : int;
  args : (string * string) list;
}

(** A named monotonically increasing counter. *)
type counter

(** A named value distribution: count / sum / min / max plus log-2
    bucket occupancy for percentile estimation. *)
type histogram

(** Number of log-2 buckets: bucket 0 holds values [<= 0], bucket [i]
    ([1 <= i < n_buckets - 1]) holds [2^(i-1) .. 2^i - 1], the last
    bucket is a catch-all up to [max_int]. *)
val n_buckets : int

(** The bucket an observation lands in. *)
val bucket_of : int -> int

(** Inclusive value range of a bucket. *)
val bucket_bounds : int -> int * int

type hist_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : int array;  (** length {!n_buckets} *)
}

(** All-zero stats (the snapshot of a never-observed histogram). *)
val empty_hist_stats : hist_stats

(** Build stats from raw observations (for tests and goldens). *)
val hist_stats_of_values : int list -> hist_stats

(** [percentile h p] estimates the [p]-th percentile ([0..100],
    nearest-rank) from the log-2 buckets, linearly interpolated inside
    the bucket and clamped to [[h.min, h.max]] — so it is exact for
    [p = 100], within a factor of 2 elsewhere, and always inside the
    observed range.  0 when the histogram is empty. *)
val percentile : hist_stats -> float -> int

(** Snapshot of one instrumented run.  Spans are in pre-order (start
    time, then depth); counters and histograms are in registration
    order and include every registered instrument, populated or not. *)
type report = {
  spans : span list;
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

(** [counter name] registers (or returns the already-registered) counter
    called [name]. *)
val counter : string -> counter

(** Increment by one.  No-op while the calling domain has no live run. *)
val incr : counter -> unit

(** Increment by [n].  No-op while the calling domain has no live run. *)
val add : counter -> int -> unit

(** Current value in the calling domain's context (0 after [start]). *)
val value : counter -> int

(** [histogram name] registers (or returns) the histogram called [name]. *)
val histogram : string -> histogram

(** Record one observation.  No-op while the calling domain has no live
    run. *)
val observe : histogram -> int -> unit

(** Snapshot of the histogram's current stats in the calling domain's
    context, mid-run ({!empty_hist_stats} when never observed) — the
    serve daemon's [stats] request reads latency percentiles from a run
    that is still recording. *)
val hist_value : histogram -> hist_stats

(** Is a run currently being recorded on the calling domain? *)
val enabled : unit -> bool

(** Reset every registered instrument and begin recording on the calling
    domain. *)
val start : unit -> unit

(** Stop recording on the calling domain and snapshot the run. *)
val stop : unit -> report

(** [span name f] times [f] as a span named [name], nested under any
    span currently open on this domain.  While disabled this is exactly
    [f ()].  The span is recorded even when [f] raises.  [args]
    annotates the span at open time; more can be attached while it is
    open with {!set_arg}. *)
val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [set_arg k v] attaches (or overwrites) argument [k] on the
    innermost span currently open on this domain.  No-op when no run is
    live or no span is open — so instrumentation can annotate spans
    (e.g. the xref round span with the pointer that round accepted)
    without owning the span bracket. *)
val set_arg : string -> string -> unit

(** [with_run f] is [start]; [f ()]; [stop] — returning [f]'s result and
    the report.  Recording is switched off again if [f] raises. *)
val with_run : (unit -> 'a) -> 'a * report

(** [merge reports] combines per-task reports (e.g. one per binary of a
    parallel batch) into one: spans are concatenated in report order
    (each span's [start_ns] stays relative to its own run — aggregate
    by name, don't compare across runs), counters are summed and
    histograms are combined (count/sum added, min/max widened, empty
    cells ignored).  Instrument order is first-appearance order across
    the report list, which for reports produced by this module is
    registration order.  Deterministic: independent of domain count and
    scheduling. *)
val merge : report list -> report
