(** Pipeline instrumentation: hierarchical timing spans over the
    monotonic clock, plus named counters and histograms registered by the
    pipeline stages.

    The design is ambient and zero-cost-when-disabled: counters and
    spans are module-level handles created once at module initialisation
    (interned by name), and every recording operation is a single load
    of a global flag plus a branch while no run is active — no clock
    read, no allocation.  [start]/[stop] (or [with_run]) bracket an
    instrumented run; [stop] snapshots every registered instrument into
    an immutable {!report}.

    The recorder is deliberately not thread-safe: the analyses are
    single-threaded and the hot paths cannot afford synchronisation. *)

(** A completed timing span.  [start_ns] is relative to the start of the
    enclosing run, so reports are stable across processes. *)
type span = { name : string; depth : int; start_ns : int64; dur_ns : int64 }

(** A named monotonically increasing counter. *)
type counter

(** A named value distribution (count / sum / min / max). *)
type histogram

type hist_stats = { count : int; sum : int; min : int; max : int }

(** Snapshot of one instrumented run.  Spans are in pre-order (start
    time, then depth); counters and histograms are in registration
    order and include every registered instrument, populated or not. *)
type report = {
  spans : span list;
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

(** [counter name] registers (or returns the already-registered) counter
    called [name]. *)
val counter : string -> counter

(** Increment by one.  No-op while disabled. *)
val incr : counter -> unit

(** Increment by [n].  No-op while disabled. *)
val add : counter -> int -> unit

(** Current value (0 after [start]). *)
val value : counter -> int

(** [histogram name] registers (or returns) the histogram called [name]. *)
val histogram : string -> histogram

(** Record one observation.  No-op while disabled. *)
val observe : histogram -> int -> unit

(** Is a run currently being recorded? *)
val enabled : unit -> bool

(** Reset every registered instrument and begin recording. *)
val start : unit -> unit

(** Stop recording and snapshot the run. *)
val stop : unit -> report

(** [span name f] times [f] as a span named [name], nested under any
    span currently open.  While disabled this is exactly [f ()].  The
    span is recorded even when [f] raises. *)
val span : string -> (unit -> 'a) -> 'a

(** [with_run f] is [start]; [f ()]; [stop] — returning [f]'s result and
    the report.  Recording is switched off again if [f] raises. *)
val with_run : (unit -> 'a) -> 'a * report
