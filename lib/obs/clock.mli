(** Monotonic wall-clock helpers.

    [Sys.time] measures processor time, which both undercounts blocking
    (I/O, page faults) and is what the paper's Table V explicitly does
    not report.  Everything in the repository that claims to measure
    elapsed time goes through this module instead, which reads the
    operating system's monotonic clock (CLOCK_MONOTONIC) in
    nanoseconds. *)

(** Current monotonic time in nanoseconds.  Only differences are
    meaningful; the epoch is unspecified. *)
val now_ns : unit -> int64

(** Current monotonic time in seconds. *)
val now_s : unit -> float

(** [elapsed_ns t0] is the time elapsed since [t0] (a [now_ns] reading). *)
val elapsed_ns : int64 -> int64

(** [time_s f] runs [f] and returns its result together with the elapsed
    wall-clock seconds. *)
val time_s : (unit -> 'a) -> 'a * float
