(** Monotonic wall-clock helpers (CLOCK_MONOTONIC via the bechamel clock
    stub, so readings never jump backwards with NTP adjustments). *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_ns t0 = Int64.sub (now_ns ()) t0

let time_s f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.to_float (elapsed_ns t0) /. 1e9)
