(** Renderers and sinks for trace reports (see mli). *)

type agg = {
  agg_name : string;
  agg_calls : int;
  agg_total_ns : int64;
  agg_depth : int;
}

let aggregate_spans (r : Trace.report) =
  let tbl : (string, agg ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match Hashtbl.find_opt tbl s.name with
      | Some a ->
          a :=
            {
              !a with
              agg_calls = !a.agg_calls + 1;
              agg_total_ns = Int64.add !a.agg_total_ns s.dur_ns;
              agg_depth = min !a.agg_depth s.depth;
            }
      | None ->
          let a =
            ref
              {
                agg_name = s.name;
                agg_calls = 1;
                agg_total_ns = s.dur_ns;
                agg_depth = s.depth;
              }
          in
          Hashtbl.replace tbl s.name a;
          order := a :: !order)
    r.spans;
  List.rev_map (fun a -> !a) !order

let ms ns = Int64.to_float ns /. 1e6

let text (r : Trace.report) =
  let buf = Buffer.create 1024 in
  let aggs = aggregate_spans r in
  if aggs <> [] then begin
    Buffer.add_string buf "Pipeline stages (wall clock)\n";
    let rows =
      List.map
        (fun a ->
          [
            String.make (2 * a.agg_depth) ' ' ^ a.agg_name;
            string_of_int a.agg_calls;
            Printf.sprintf "%.3f" (ms a.agg_total_ns);
            Printf.sprintf "%.3f"
              (ms a.agg_total_ns /. float_of_int a.agg_calls);
          ])
        aggs
    in
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:[ "stage"; "calls"; "total ms"; "mean ms" ]
         rows)
  end;
  if r.counters <> [] then begin
    if aggs <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "Counters\n";
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) r.counters))
  end;
  if r.histograms <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf "Histograms\n";
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:[ "histogram"; "count"; "sum"; "min"; "max"; "mean" ]
         (List.map
            (fun (n, (h : Trace.hist_stats)) ->
              [
                n;
                string_of_int h.count;
                string_of_int h.sum;
                string_of_int h.min;
                string_of_int h.max;
                (if h.count = 0 then "-"
                 else
                   Printf.sprintf "%.1f"
                     (float_of_int h.sum /. float_of_int h.count));
              ])
            r.histograms))
  end;
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_lines (r : Trace.report) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Trace.span) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":%s,\"depth\":%d,\"start_ns\":%Ld,\"dur_ns\":%Ld}\n"
           (json_string s.name) s.depth s.start_ns s.dur_ns))
    r.spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
           (json_string n) v))
    r.counters;
  List.iter
    (fun (n, (h : Trace.hist_stats)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d}\n"
           (json_string n) h.count h.sum h.min h.max))
    r.histograms;
  Buffer.contents buf

type sink =
  | Noop
  | Text of out_channel
  | Json_lines of out_channel
  | Multi of sink list

let rec emit sink report =
  match sink with
  | Noop -> ()
  | Text oc ->
      output_string oc (text report);
      flush oc
  | Json_lines oc ->
      output_string oc (json_lines report);
      flush oc
  | Multi sinks -> List.iter (fun s -> emit s report) sinks

let run ?(sink = Noop) f =
  match sink with
  | Noop -> f ()
  | sink ->
      let v, report = Trace.with_run f in
      emit sink report;
      v
