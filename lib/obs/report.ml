(** Renderers and sinks for trace reports (see mli). *)

type agg = {
  agg_name : string;
  agg_calls : int;
  agg_total_ns : int64;
  agg_depth : int;
}

let aggregate_spans (r : Trace.report) =
  let tbl : (string, agg ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match Hashtbl.find_opt tbl s.name with
      | Some a ->
          a :=
            {
              !a with
              agg_calls = !a.agg_calls + 1;
              agg_total_ns = Int64.add !a.agg_total_ns s.dur_ns;
              agg_depth = min !a.agg_depth s.depth;
            }
      | None ->
          let a =
            ref
              {
                agg_name = s.name;
                agg_calls = 1;
                agg_total_ns = s.dur_ns;
                agg_depth = s.depth;
              }
          in
          Hashtbl.replace tbl s.name a;
          order := a :: !order)
    r.spans;
  List.rev_map (fun a -> !a) !order

let ms ns = Int64.to_float ns /. 1e6

let text (r : Trace.report) =
  let buf = Buffer.create 1024 in
  let aggs = aggregate_spans r in
  if aggs <> [] then begin
    Buffer.add_string buf "Pipeline stages (wall clock)\n";
    let rows =
      List.map
        (fun a ->
          [
            String.make (2 * a.agg_depth) ' ' ^ a.agg_name;
            string_of_int a.agg_calls;
            Printf.sprintf "%.3f" (ms a.agg_total_ns);
            Printf.sprintf "%.3f"
              (ms a.agg_total_ns /. float_of_int a.agg_calls);
          ])
        aggs
    in
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:[ "stage"; "calls"; "total ms"; "mean ms" ]
         rows)
  end;
  if r.counters <> [] then begin
    if aggs <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "Counters\n";
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) r.counters))
  end;
  if r.histograms <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf "Histograms\n";
    Buffer.add_string buf
      (Fetch_util.Text_table.render
         ~header:
           [ "histogram"; "count"; "sum"; "min"; "p50"; "p90"; "p99"; "max"; "mean" ]
         (List.map
            (fun (n, (h : Trace.hist_stats)) ->
              let pct p =
                if h.count = 0 then "-"
                else string_of_int (Trace.percentile h p)
              in
              [
                n;
                string_of_int h.count;
                string_of_int h.sum;
                string_of_int h.min;
                pct 50.0;
                pct 90.0;
                pct 99.0;
                string_of_int h.max;
                (if h.count = 0 then "-"
                 else
                   Printf.sprintf "%.1f"
                     (float_of_int h.sum /. float_of_int h.count));
              ])
            r.histograms))
  end;
  Buffer.contents buf

let json_string = Fetch_util.Json.escape

(* Sparse bucket rendering: [[bucket, count], ...] for occupied buckets
   only, so empty histograms stay one short line. *)
let buckets_json (h : Trace.hist_stats) =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf (Printf.sprintf "[%d,%d]" i c)
      end)
    h.buckets;
  Buffer.add_char buf ']';
  Buffer.contents buf

let span_args_json args =
  if args = [] then ""
  else
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
            args))

let histogram_json name (h : Trace.hist_stats) =
  let pct p = Trace.percentile h p in
  Printf.sprintf
    "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":%s}"
    (json_string name) h.count h.sum h.min h.max (pct 50.0) (pct 90.0)
    (pct 99.0) (buckets_json h)

let json_lines (r : Trace.report) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Trace.span) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":%s,\"depth\":%d,\"start_ns\":%Ld,\"dur_ns\":%Ld,\"run\":%d%s}\n"
           (json_string s.name) s.depth s.start_ns s.dur_ns s.run
           (span_args_json s.args)))
    r.spans;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
           (json_string n) v))
    r.counters;
  List.iter
    (fun (n, (h : Trace.hist_stats)) ->
      Buffer.add_string buf (histogram_json n h);
      Buffer.add_char buf '\n')
    r.histograms;
  Buffer.contents buf

(* ---- Chrome trace-event (Perfetto-loadable) exporter ---- *)

(* One complete event ("ph":"X") per span, timestamps in microseconds;
   each run becomes its own track ("tid" = the span's run id), so a
   merged report of a parallel batch renders as one track per binary.
   Counters become counter events ("ph":"C") and histograms instant
   events ("ph":"i") on tid 0. *)
let chrome_trace (r : Trace.report) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let event s =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_char buf '\n';
    Buffer.add_string buf s
  in
  let us ns = Int64.to_float ns /. 1e3 in
  List.iter
    (fun (s : Trace.span) ->
      let args =
        match s.args with
        | [] -> ""
        | args ->
            Printf.sprintf ",\"args\":{%s}"
              (String.concat ","
                 (List.map
                    (fun (k, v) ->
                      Printf.sprintf "%s:%s" (json_string k) (json_string v))
                    args))
      in
      event
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d%s}"
           (json_string s.name) (us s.start_ns) (us s.dur_ns) s.run args))
    r.spans;
  List.iter
    (fun (n, v) ->
      event
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"value\":%d}}"
           (json_string n) v))
    r.counters;
  List.iter
    (fun (n, (h : Trace.hist_stats)) ->
      let pct p = Trace.percentile h p in
      event
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d}}"
           (json_string n) h.count h.sum h.min h.max (pct 50.0) (pct 90.0)
           (pct 99.0)))
    r.histograms;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

type sink =
  | Noop
  | Text of out_channel
  | Json_lines of out_channel
  | Chrome of out_channel
  | Multi of sink list

let rec emit sink report =
  match sink with
  | Noop -> ()
  | Text oc ->
      output_string oc (text report);
      flush oc
  | Json_lines oc ->
      output_string oc (json_lines report);
      flush oc
  | Chrome oc ->
      output_string oc (chrome_trace report);
      flush oc
  | Multi sinks -> List.iter (fun s -> emit s report) sinks

let run ?(sink = Noop) f =
  match sink with
  | Noop -> f ()
  | sink ->
      let v, report = Trace.with_run f in
      emit sink report;
      v
