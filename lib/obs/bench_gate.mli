(** The pipeline bench snapshot ([BENCH_pipeline.json]) as a typed
    value, and the regression gate that compares a fresh run against
    the committed baseline ([bench perf --check]).

    Schema [fetch-bench-pipeline/3] adds to /2: a ["host"] object
    ([cores_available] from [Domain.recommended_domain_count], OS type,
    word size, OCaml version) so single-core snapshots are
    self-explaining, and a ["histograms"] array with log-2 buckets and
    p50/p90/p99.  {!of_json_string} still reads /2 files (no host, no
    histograms).

    {2 Gate semantics}

    Detection results must not drift at all: every counter present in
    the baseline must exist in the current snapshot with exactly the
    same value (the corpus is deterministic, so [xref.accepted],
    [tailcall.merges], [pipeline.seeds.final] … pin the detection
    outcome).  Counters only the current snapshot has are new
    instrumentation and pass.

    Stage means are timing, so they are compared after machine-speed
    normalisation: every stage mean is scaled by the ratio of the two
    snapshots' ["pipeline"] stage means, which cancels a uniformly
    faster or slower machine and leaves exactly the per-stage {e share}
    regressions the ROADMAP's xref work needs to guard.  A stage fails
    when its normalised mean exceeds the baseline by more than
    [tolerance] (relative, default 0.5).  Stages with a baseline mean
    below [min_stage_ms] (default 0.1 ms/binary) are too noisy to gate
    and are skipped.  Pass [absolute:true] to skip normalisation
    (same-machine comparisons). *)

type host = {
  cores : int;  (** [Domain.recommended_domain_count] at snapshot time *)
  os_type : string;
  word_size : int;
  ocaml_version : string;
}

(** The host this process runs on. *)
val this_host : unit -> host

type stage = {
  s_name : string;
  s_calls : int;
  s_total_ms : float;
  s_mean_ms : float;  (** per binary *)
}

type snapshot = {
  schema : string;
  scale : float;
  binaries : int;
  domains : int;
  host : host option;  (** [None] when read from a /2 file *)
  seq_wall_s : float;
  par_wall_s : float;
  pipeline_total_ms : float;
  stages : stage list;
  counters : (string * int) list;
  histograms : (string * Trace.hist_stats) list;
}

(** Current schema id written by {!to_json}. *)
val schema_current : string

(** Pretty-printed JSON document (the [BENCH_pipeline.json] format). *)
val to_json : snapshot -> string

(** Parse a /2 or /3 snapshot document. *)
val of_json_string : string -> (snapshot, string) result

(** One comparison failure, human-readable. *)
type issue = { what : string; detail : string }

val issue_to_string : issue -> string

(** Compare [current] against [baseline]; empty list means the gate
    passes. *)
val check :
  ?tolerance:float ->
  ?min_stage_ms:float ->
  ?absolute:bool ->
  baseline:snapshot ->
  current:snapshot ->
  unit ->
  issue list
