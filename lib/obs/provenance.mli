(** The decision ledger: structured provenance for every function-start
    verdict the pipeline makes.

    Aggregate counters ([xref.reject.mid_instruction: 2698]) say {e how
    often} a rule fired; the ledger says {e why address X} was accepted
    or rejected.  Every candidate function start gets an origin event
    (FDE seed, symbol seed, xref acceptance with its round and the
    accepting pointer's site, recursive discovery from a call site) and
    every rejection a structured reason (the Algorithm 1 rule id with
    its operands, the §IV-E rejection class with its call-convention
    evidence, the Fig. 6b broken-FDE diagnostic).  [fetch analyze
    --provenance] exports the ledger as JSON lines and [fetch explain]
    replays one address's decision chain.

    The recorder follows the {!Trace} design exactly: events are
    recorded into a per-domain context, recording is a no-op (one
    domain-local load and a branch) while no ledger run is live on the
    calling domain, and instrumentation sites guard any extra evidence
    gathering behind {!enabled}.  It is independent of {!Trace} —
    either can run without the other.

    {2 Event schema (stable)}

    One event is one JSON object (one line in JSONL exports):

    {v
    {"v":1,"ev":"<event id>","addr":<int>, <fields...>}
    v}

    - ["v"] — schema version, currently 1.
    - ["ev"] — the event id, a dotted lowercase identifier
      (e.g. ["xref.accept"], ["alg1.reject"]).
    - ["addr"] — the {e subject} address: the candidate function start
      this event is evidence about.
    - remaining fields are event-specific operands, each an int or a
      string; names are stable per event id (documented in DESIGN.md).

    Scope fields (e.g. the xref round index) are appended to every
    event emitted inside {!with_scope}, so deep layers need not thread
    round numbers explicitly. *)

type value = I of int | S of string

type event = {
  ev : string;  (** event id, e.g. ["xref.accept"] *)
  addr : int;  (** subject address *)
  fields : (string * value) list;  (** operands, in emission order *)
}

(** Is a ledger run live on the calling domain?  Guard any non-trivial
    evidence collection (e.g. re-running a diagnostic validator) behind
    this. *)
val enabled : unit -> bool

(** Record one event.  No-op while the calling domain has no live
    ledger run. *)
val emit : ev:string -> addr:int -> (string * value) list -> unit

(** [with_scope fields f] appends [fields] to every event emitted by
    [f] on this domain (innermost scope last).  Nests; no-op wrapper
    when no run is live. *)
val with_scope : (string * value) list -> (unit -> 'a) -> 'a

(** Begin recording on the calling domain (clears any previous
    events). *)
val start : unit -> unit

(** Stop recording and return the events in emission order. *)
val stop : unit -> event list

(** [start]; [f ()]; [stop] — recording is switched off again if [f]
    raises. *)
val with_run : (unit -> 'a) -> 'a * event list

(* ---- queries ---- *)

(** Events whose subject is [addr], in emission order. *)
val about : int -> event list -> event list

(** Events mentioning [addr] in any operand field (but with a different
    subject) — e.g. the tail-call verdicts naming it as jump target. *)
val mentioning : int -> event list -> event list

(* ---- rendering ---- *)

(** One event as one JSON object, per the documented schema. *)
val to_json : event -> string

(** Parse one JSON object back into an event (inverse of {!to_json};
    unknown fields are preserved as operands). *)
val of_json : Fetch_util.Json.t -> (event, string) result

(** All events as JSON lines. *)
val to_json_lines : event list -> string

(** Human-readable one-line rendering ("xref.accept 0x401200 round=3
    site=0x404010 via=data"). *)
val render : event -> string

(** The full decision chain for [addr]: its subject events in order,
    then any events mentioning it, each rendered one per line — the
    output of [fetch explain].  Includes a final verdict line. *)
val explain : addr:int -> event list -> string
