(** Rendering and sinks for {!Trace.report}s.

    Two renderers — a human-readable per-stage text table (built on
    [Fetch_util.Text_table]) and JSON lines for machines — plus a
    pluggable sink abstraction whose default is a no-op, so an
    uninstrumented run never pays for rendering either. *)

(** One row of the per-stage aggregation: spans sharing a name are
    folded into call count and total duration.  [agg_depth] is the
    minimum nesting depth the name was seen at (used for indentation);
    rows appear in pre-order of first occurrence. *)
type agg = {
  agg_name : string;
  agg_calls : int;
  agg_total_ns : int64;
  agg_depth : int;
}

val aggregate_spans : Trace.report -> agg list

(** Human-readable report: a per-stage timing table followed by counter
    and histogram tables (sections are omitted when empty). *)
val text : Trace.report -> string

(** Machine-readable report: one JSON object per line — every span in
    pre-order, then every counter, then every histogram.  Example lines:
    {v
    {"type":"span","name":"xref","depth":1,"start_ns":820,"dur_ns":91403,"run":3}
    {"type":"counter","name":"recursive.insns_decoded","value":1582}
    {"type":"histogram","name":"recursive.block_insns","count":96,"sum":1582,"min":1,"max":64,"p50":14,"p90":48,"p99":62,"buckets":[[1,2],[4,30],[5,40],[6,24]]}
    v}
    Span lines carry an ["args"] object when the span has arguments;
    histogram lines list occupied log-2 buckets as [[bucket, count]]
    pairs. *)
val json_lines : Trace.report -> string

(** One histogram as a single JSON object (the same shape as its
    {!json_lines} line), shared with the batch report writer. *)
val histogram_json : string -> Trace.hist_stats -> string

(** JSON string escaping (quotes included), shared with the bench
    snapshot writer. *)
val json_string : string -> string

(** Chrome trace-event JSON (the [trace_event] format Perfetto and
    [chrome://tracing] load directly): every span is a complete event
    ([ph:"X"], microsecond timestamps) on the track of its recording
    run ([tid] = [span.run]), so a merged parallel batch renders one
    track per binary; span args are preserved; counters become
    [ph:"C"] counter events and histograms [ph:"i"] instant events
    carrying count/sum/min/max/p50/p90/p99. *)
val chrome_trace : Trace.report -> string

(** Where a finished run's report goes. *)
type sink =
  | Noop  (** drop it (the default everywhere) *)
  | Text of out_channel
  | Json_lines of out_channel
  | Chrome of out_channel  (** {!chrome_trace} format *)
  | Multi of sink list

val emit : sink -> Trace.report -> unit

(** [run ~sink f] instruments [f] and sends the report to [sink].  With
    the default [Noop] sink the recorder is never even enabled — [f]
    runs at full speed. *)
val run : ?sink:sink -> (unit -> 'a) -> 'a
