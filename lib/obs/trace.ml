(** Ambient recorder for spans, counters and histograms.  See the mli
    for the design constraints (zero-cost-when-disabled, domain-local
    recording, deterministic merge). *)

type span = { name : string; depth : int; start_ns : int64; dur_ns : int64 }

(* Instrument handles are immutable and interned by name in a global,
   mutex-protected registry: [c_id]/[h_id] index the per-domain value
   arrays.  Registration normally happens at module initialisation on
   the primary domain, but a worker domain registering lazily is also
   safe — the registry lock serialises id assignment, and every domain
   grows its value arrays on demand. *)
type counter = { c_name : string; c_id : int }
type histogram = { h_name : string; h_id : int }

type hist_stats = { count : int; sum : int; min : int; max : int }

type report = {
  spans : span list;
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

(* ---- global registry (names and ids only; no recorded values) ---- *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let rev_counter_names : string list ref = ref []
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let rev_histogram_names : string list ref = ref []

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_id = Hashtbl.length counters } in
      Hashtbl.replace counters name c;
      rev_counter_names := name :: !rev_counter_names;
      c

let histogram name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_id = Hashtbl.length histograms } in
      Hashtbl.replace histograms name h;
      rev_histogram_names := name :: !rev_histogram_names;
      h

(* ---- per-domain run state ---- *)

type hcell = {
  mutable hc_count : int;
  mutable hc_sum : int;
  mutable hc_min : int;
  mutable hc_max : int;
}

(* One recording context per domain, reached through domain-local
   storage.  Only the owning domain ever touches its context, so none
   of these fields need synchronisation. *)
type ctx = {
  mutable live : bool;
  mutable epoch : int64;
  mutable depth : int;
  mutable completed : span list;
  mutable counts : int array;  (** indexed by [c_id] *)
  mutable hists : hcell array;  (** indexed by [h_id] *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      {
        live = false;
        epoch = 0L;
        depth = 0;
        completed = [];
        counts = [||];
        hists = [||];
      })

let ctx () = Domain.DLS.get ctx_key
let fresh_hcell () = { hc_count = 0; hc_sum = 0; hc_min = 0; hc_max = 0 }

(* Lazily size the context's value arrays to the registry: a handle
   registered after this domain's [start] still records correctly. *)
let count_slot t (c : counter) =
  if c.c_id >= Array.length t.counts then begin
    let a = Array.make (c.c_id + 1) 0 in
    Array.blit t.counts 0 a 0 (Array.length t.counts);
    t.counts <- a
  end;
  c.c_id

let hist_slot t (h : histogram) =
  if h.h_id >= Array.length t.hists then begin
    let a = Array.init (h.h_id + 1) (fun _ -> fresh_hcell ()) in
    Array.blit t.hists 0 a 0 (Array.length t.hists);
    t.hists <- a
  end;
  t.hists.(h.h_id)

let enabled () = (ctx ()).live

let incr c =
  let t = ctx () in
  if t.live then begin
    let i = count_slot t c in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add c n =
  let t = ctx () in
  if t.live then begin
    let i = count_slot t c in
    t.counts.(i) <- t.counts.(i) + n
  end

let value c =
  let t = ctx () in
  if c.c_id < Array.length t.counts then t.counts.(c.c_id) else 0

let observe h v =
  let t = ctx () in
  if t.live then begin
    let cell = hist_slot t h in
    if cell.hc_count = 0 || v < cell.hc_min then cell.hc_min <- v;
    if cell.hc_count = 0 || v > cell.hc_max then cell.hc_max <- v;
    cell.hc_count <- cell.hc_count + 1;
    cell.hc_sum <- cell.hc_sum + v
  end

let registered_sizes () =
  with_registry @@ fun () ->
  ( Hashtbl.length counters,
    List.rev !rev_counter_names,
    Hashtbl.length histograms,
    List.rev !rev_histogram_names )

let start () =
  let t = ctx () in
  let n_counters, _, n_hists, _ = registered_sizes () in
  t.counts <- Array.make (max 1 n_counters) 0;
  t.hists <- Array.init (max 1 n_hists) (fun _ -> fresh_hcell ());
  t.completed <- [];
  t.depth <- 0;
  t.epoch <- Clock.now_ns ();
  t.live <- true

let stop () =
  let t = ctx () in
  t.live <- false;
  let spans =
    (* pre-order: by start time, parents (lower depth) before the
       children they opened at the same instant *)
    List.stable_sort
      (fun a b ->
        match Int64.compare a.start_ns b.start_ns with
        | 0 -> Stdlib.compare a.depth b.depth
        | c -> c)
      (List.rev t.completed)
  in
  t.completed <- [];
  let _, counter_names, _, histogram_names = registered_sizes () in
  let nth_count i = if i < Array.length t.counts then t.counts.(i) else 0 in
  let nth_hist i =
    if i < Array.length t.hists then
      let c = t.hists.(i) in
      { count = c.hc_count; sum = c.hc_sum; min = c.hc_min; max = c.hc_max }
    else { count = 0; sum = 0; min = 0; max = 0 }
  in
  {
    spans;
    counters = List.mapi (fun i n -> (n, nth_count i)) counter_names;
    histograms = List.mapi (fun i n -> (n, nth_hist i)) histogram_names;
  }

let span name f =
  let t = ctx () in
  if not t.live then f ()
  else begin
    let d = t.depth in
    t.depth <- d + 1;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Clock.now_ns ()) t0 in
        t.depth <- d;
        (* [stop] may have run inside [f] (or an exception unwound past
           it); only record into a live run *)
        if t.live then
          t.completed <-
            { name; depth = d; start_ns = Int64.sub t0 t.epoch; dur_ns = dur }
            :: t.completed)
      f
  end

let with_run f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
      ignore (stop ());
      raise e

(* ---- deterministic merge of per-run reports ---- *)

let merge_hist (a : hist_stats) (b : hist_stats) =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }

let merge reports =
  let spans = List.concat_map (fun r -> r.spans) reports in
  let sum_by_name get combine =
    let order = ref [] in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        List.iter
          (fun (n, v) ->
            match Hashtbl.find_opt tbl n with
            | Some prev -> Hashtbl.replace tbl n (combine prev v)
            | None ->
                Hashtbl.replace tbl n v;
                order := n :: !order)
          (get r))
      reports;
    List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order
  in
  {
    spans;
    counters = sum_by_name (fun r -> r.counters) ( + );
    histograms = sum_by_name (fun r -> r.histograms) merge_hist;
  }
