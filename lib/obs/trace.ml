(** Ambient recorder for spans, counters and histograms.  See the mli
    for the design constraints (zero-cost-when-disabled, single
    thread). *)

type span = { name : string; depth : int; start_ns : int64; dur_ns : int64 }
type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type hist_stats = { count : int; sum : int; min : int; max : int }

type report = {
  spans : span list;
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

(* ---- registries (interned by name, registration order preserved) ---- *)

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let rev_counters : counter list ref = ref []
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let rev_histograms : histogram list ref = ref []

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      rev_counters := c :: !rev_counters;
      c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_count = 0; h_sum = 0; h_min = 0; h_max = 0 } in
      Hashtbl.replace histograms name h;
      rev_histograms := h :: !rev_histograms;
      h

(* ---- run state ---- *)

let enabled_flag = ref false
let epoch = ref 0L
let completed : span list ref = ref []
let depth = ref 0

let enabled () = !enabled_flag
let incr c = if !enabled_flag then c.c_value <- c.c_value + 1
let add c n = if !enabled_flag then c.c_value <- c.c_value + n
let value c = c.c_value

let observe h v =
  if !enabled_flag then begin
    if h.h_count = 0 || v < h.h_min then h.h_min <- v;
    if h.h_count = 0 || v > h.h_max then h.h_max <- v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v
  end

let start () =
  List.iter (fun c -> c.c_value <- 0) !rev_counters;
  List.iter
    (fun h ->
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- 0;
      h.h_max <- 0)
    !rev_histograms;
  completed := [];
  depth := 0;
  epoch := Clock.now_ns ();
  enabled_flag := true

let stop () =
  enabled_flag := false;
  let spans =
    (* pre-order: by start time, parents (lower depth) before the
       children they opened at the same instant *)
    List.stable_sort
      (fun a b ->
        match Int64.compare a.start_ns b.start_ns with
        | 0 -> Stdlib.compare a.depth b.depth
        | c -> c)
      (List.rev !completed)
  in
  completed := [];
  {
    spans;
    counters = List.rev_map (fun c -> (c.c_name, c.c_value)) !rev_counters;
    histograms =
      List.rev_map
        (fun h ->
          ( h.h_name,
            { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
          ))
        !rev_histograms;
  }

let span name f =
  if not !enabled_flag then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Clock.now_ns ()) t0 in
        depth := d;
        (* [stop] may have run inside [f] (or an exception unwound past
           it); only record into a live run *)
        if !enabled_flag then
          completed :=
            { name; depth = d; start_ns = Int64.sub t0 !epoch; dur_ns = dur }
            :: !completed)
      f
  end

let with_run f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
      ignore (stop ());
      raise e
