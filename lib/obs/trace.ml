(** Ambient recorder for spans, counters and histograms.  See the mli
    for the design constraints (zero-cost-when-disabled, domain-local
    recording, deterministic merge). *)

type span = {
  name : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  run : int;
  args : (string * string) list;
}

(* Instrument handles are immutable and interned by name in a global,
   mutex-protected registry: [c_id]/[h_id] index the per-domain value
   arrays.  Registration normally happens at module initialisation on
   the primary domain, but a worker domain registering lazily is also
   safe — the registry lock serialises id assignment, and every domain
   grows its value arrays on demand. *)
type counter = { c_name : string; c_id : int }
type histogram = { h_name : string; h_id : int }

(* Histograms bucket observations on a log-2 scale: bucket 0 holds
   values <= 0, bucket i (1 <= i <= 62) holds [2^(i-1), 2^i), and the
   last bucket is a catch-all.  63 buckets cover the whole int range. *)
let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do
      incr i;
      x := !x lsr 1
    done;
    min !i (n_buckets - 1)
  end

(* Inclusive value range of bucket [i] (for percentile interpolation). *)
let bucket_bounds i =
  if i = 0 then (0, 0)
  else if i = n_buckets - 1 then (1 lsl (i - 1), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

type hist_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : int array;  (** log-2 bucket occupancy, length {!n_buckets} *)
}

let empty_hist_stats =
  { count = 0; sum = 0; min = 0; max = 0; buckets = Array.make n_buckets 0 }

let hist_stats_of_values vs =
  List.fold_left
    (fun h v ->
      let buckets = Array.copy h.buckets in
      buckets.(bucket_of v) <- buckets.(bucket_of v) + 1;
      {
        count = h.count + 1;
        sum = h.sum + v;
        min = (if h.count = 0 || v < h.min then v else h.min);
        max = (if h.count = 0 || v > h.max then v else h.max);
        buckets;
      })
    empty_hist_stats vs

(* Nearest-rank percentile estimated from the buckets: find the bucket
   holding the rank-th observation, interpolate linearly inside its
   value range by rank position, clamp to the recorded [min, max]. *)
let percentile (h : hist_stats) p =
  if h.count = 0 then 0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.count)))
    in
    let est = ref h.max in
    (try
       let cum = ref 0 in
       for i = 0 to n_buckets - 1 do
         let cb = h.buckets.(i) in
         if cb > 0 then begin
           if rank <= !cum + cb then begin
             let lo, hi = bucket_bounds i in
             let frac = float_of_int (rank - !cum) /. float_of_int cb in
             est :=
               lo
               + int_of_float
                   (Float.round (frac *. float_of_int (Stdlib.min hi h.max - lo)));
             raise Exit
           end;
           cum := !cum + cb
         end
       done
     with Exit -> ());
    Stdlib.max h.min (Stdlib.min h.max !est)
  end

type report = {
  spans : span list;
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

(* ---- global registry (names and ids only; no recorded values) ---- *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let rev_counter_names : string list ref = ref []
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let rev_histogram_names : string list ref = ref []

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_id = Hashtbl.length counters } in
      Hashtbl.replace counters name c;
      rev_counter_names := name :: !rev_counter_names;
      c

let histogram name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_id = Hashtbl.length histograms } in
      Hashtbl.replace histograms name h;
      rev_histogram_names := name :: !rev_histogram_names;
      h

(* ---- per-domain run state ---- *)

type hcell = {
  mutable hc_count : int;
  mutable hc_sum : int;
  mutable hc_min : int;
  mutable hc_max : int;
  hc_buckets : int array;
}

(* An open (not yet completed) span: args can still be attached to it
   through [set_arg] until it closes. *)
type open_span = {
  os_name : string;
  os_depth : int;
  os_start : int64;
  mutable os_args : (string * string) list;
}

(* One recording context per domain, reached through domain-local
   storage.  Only the owning domain ever touches its context, so none
   of these fields need synchronisation. *)
type ctx = {
  mutable live : bool;
  mutable epoch : int64;
  mutable depth : int;
  mutable run_id : int;
  mutable open_spans : open_span list;  (** innermost first *)
  mutable completed : span list;
  mutable counts : int array;  (** indexed by [c_id] *)
  mutable hists : hcell array;  (** indexed by [h_id] *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      {
        live = false;
        epoch = 0L;
        depth = 0;
        run_id = 0;
        open_spans = [];
        completed = [];
        counts = [||];
        hists = [||];
      })

let ctx () = Domain.DLS.get ctx_key

let fresh_hcell () =
  {
    hc_count = 0;
    hc_sum = 0;
    hc_min = 0;
    hc_max = 0;
    hc_buckets = Array.make n_buckets 0;
  }

(* Lazily size the context's value arrays to the registry: a handle
   registered after this domain's [start] still records correctly. *)
let count_slot t (c : counter) =
  if c.c_id >= Array.length t.counts then begin
    let a = Array.make (c.c_id + 1) 0 in
    Array.blit t.counts 0 a 0 (Array.length t.counts);
    t.counts <- a
  end;
  c.c_id

let hist_slot t (h : histogram) =
  if h.h_id >= Array.length t.hists then begin
    let a = Array.init (h.h_id + 1) (fun _ -> fresh_hcell ()) in
    Array.blit t.hists 0 a 0 (Array.length t.hists);
    t.hists <- a
  end;
  t.hists.(h.h_id)

let enabled () = (ctx ()).live

let incr c =
  let t = ctx () in
  if t.live then begin
    let i = count_slot t c in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add c n =
  let t = ctx () in
  if t.live then begin
    let i = count_slot t c in
    t.counts.(i) <- t.counts.(i) + n
  end

let value c =
  let t = ctx () in
  if c.c_id < Array.length t.counts then t.counts.(c.c_id) else 0

let hist_value h =
  let t = ctx () in
  if h.h_id < Array.length t.hists then
    let c = t.hists.(h.h_id) in
    {
      count = c.hc_count;
      sum = c.hc_sum;
      min = c.hc_min;
      max = c.hc_max;
      buckets = Array.copy c.hc_buckets;
    }
  else empty_hist_stats

let observe h v =
  let t = ctx () in
  if t.live then begin
    let cell = hist_slot t h in
    if cell.hc_count = 0 || v < cell.hc_min then cell.hc_min <- v;
    if cell.hc_count = 0 || v > cell.hc_max then cell.hc_max <- v;
    cell.hc_count <- cell.hc_count + 1;
    cell.hc_sum <- cell.hc_sum + v;
    let b = bucket_of v in
    cell.hc_buckets.(b) <- cell.hc_buckets.(b) + 1
  end

let registered_sizes () =
  with_registry @@ fun () ->
  ( Hashtbl.length counters,
    List.rev !rev_counter_names,
    Hashtbl.length histograms,
    List.rev !rev_histogram_names )

(* Run identifiers tag every span of one [start]..[stop] bracket, so
   spans from different runs stay distinguishable after {!merge}
   (the Chrome exporter renders each run as its own track). *)
let run_counter = Atomic.make 1

let start () =
  let t = ctx () in
  let n_counters, _, n_hists, _ = registered_sizes () in
  t.counts <- Array.make (max 1 n_counters) 0;
  t.hists <- Array.init (max 1 n_hists) (fun _ -> fresh_hcell ());
  t.completed <- [];
  t.open_spans <- [];
  t.depth <- 0;
  t.run_id <- Atomic.fetch_and_add run_counter 1;
  t.epoch <- Clock.now_ns ();
  t.live <- true

let stop () =
  let t = ctx () in
  t.live <- false;
  t.open_spans <- [];
  let spans =
    (* pre-order: by start time, parents (lower depth) before the
       children they opened at the same instant *)
    List.stable_sort
      (fun a b ->
        match Int64.compare a.start_ns b.start_ns with
        | 0 -> Stdlib.compare a.depth b.depth
        | c -> c)
      (List.rev t.completed)
  in
  t.completed <- [];
  let _, counter_names, _, histogram_names = registered_sizes () in
  let nth_count i = if i < Array.length t.counts then t.counts.(i) else 0 in
  let nth_hist i =
    if i < Array.length t.hists then
      let c = t.hists.(i) in
      {
        count = c.hc_count;
        sum = c.hc_sum;
        min = c.hc_min;
        max = c.hc_max;
        buckets = Array.copy c.hc_buckets;
      }
    else empty_hist_stats
  in
  {
    spans;
    counters = List.mapi (fun i n -> (n, nth_count i)) counter_names;
    histograms = List.mapi (fun i n -> (n, nth_hist i)) histogram_names;
  }

let span ?(args = []) name f =
  let t = ctx () in
  if not t.live then f ()
  else begin
    let os =
      { os_name = name; os_depth = t.depth; os_start = Clock.now_ns (); os_args = args }
    in
    t.depth <- os.os_depth + 1;
    t.open_spans <- os :: t.open_spans;
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Clock.now_ns ()) os.os_start in
        t.depth <- os.os_depth;
        (match t.open_spans with
        | o :: rest when o == os -> t.open_spans <- rest
        | _ -> (* [stop] ran inside [f] and cleared the stack *) ());
        (* [stop] may have run inside [f] (or an exception unwound past
           it); only record into a live run *)
        if t.live then
          t.completed <-
            {
              name;
              depth = os.os_depth;
              start_ns = Int64.sub os.os_start t.epoch;
              dur_ns = dur;
              run = t.run_id;
              args = List.rev os.os_args;
            }
            :: t.completed)
      f
  end

let set_arg k v =
  let t = ctx () in
  if t.live then
    match t.open_spans with
    | os :: _ ->
        os.os_args <-
          (if List.mem_assoc k os.os_args then
             List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) os.os_args
           else (k, v) :: os.os_args)
    | [] -> ()

let with_run f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
      ignore (stop ());
      raise e

(* ---- deterministic merge of per-run reports ---- *)

let merge_hist (a : hist_stats) (b : hist_stats) =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    }

let merge reports =
  let spans = List.concat_map (fun r -> r.spans) reports in
  let sum_by_name get combine =
    let order = ref [] in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        List.iter
          (fun (n, v) ->
            match Hashtbl.find_opt tbl n with
            | Some prev -> Hashtbl.replace tbl n (combine prev v)
            | None ->
                Hashtbl.replace tbl n v;
                order := n :: !order)
          (get r))
      reports;
    List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order
  in
  {
    spans;
    counters = sum_by_name (fun r -> r.counters) ( + );
    histograms = sum_by_name (fun r -> r.histograms) merge_hist;
  }
