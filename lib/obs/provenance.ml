(** Decision ledger (see mli for the schema and recording contract). *)

type value = I of int | S of string

type event = {
  ev : string;
  addr : int;
  fields : (string * value) list;
}

(* Per-domain recording context, mirroring Trace: only the owning
   domain touches its context, so no synchronisation is needed. *)
type ctx = {
  mutable live : bool;
  mutable rev_events : event list;
  mutable scopes : (string * value) list list;  (** innermost first *)
}

let ctx_key =
  Domain.DLS.new_key (fun () -> { live = false; rev_events = []; scopes = [] })

let ctx () = Domain.DLS.get ctx_key
let enabled () = (ctx ()).live

let emit ~ev ~addr fields =
  let t = ctx () in
  if t.live then begin
    let scope_fields = List.concat (List.rev t.scopes) in
    t.rev_events <- { ev; addr; fields = fields @ scope_fields } :: t.rev_events
  end

let with_scope fields f =
  let t = ctx () in
  if not t.live then f ()
  else begin
    t.scopes <- fields :: t.scopes;
    Fun.protect
      ~finally:(fun () ->
        match t.scopes with
        | s :: rest when s == fields -> t.scopes <- rest
        | _ -> (* [stop] ran inside [f] and cleared the stack *) ())
      f
  end

let start () =
  let t = ctx () in
  t.rev_events <- [];
  t.scopes <- [];
  t.live <- true

let stop () =
  let t = ctx () in
  t.live <- false;
  t.scopes <- [];
  let events = List.rev t.rev_events in
  t.rev_events <- [];
  events

let with_run f =
  start ();
  match f () with
  | v -> (v, stop ())
  | exception e ->
      ignore (stop ());
      raise e

(* ---- queries ---- *)

let about addr events = List.filter (fun e -> e.addr = addr) events

let mentions addr (e : event) =
  e.addr <> addr
  && List.exists (function _, I v -> v = addr | _, S _ -> false) e.fields

let mentioning addr events = List.filter (mentions addr) events

(* ---- rendering ---- *)

module Json = Fetch_util.Json

let to_json (e : event) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"v\":1,\"ev\":%s,\"addr\":%d" (Json.escape e.ev) e.addr);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (match v with
        | I i -> Printf.sprintf ",%s:%d" (Json.escape k) i
        | S s -> Printf.sprintf ",%s:%s" (Json.escape k) (Json.escape s)))
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let of_json j =
  match (Json.member "ev" j, Json.member "addr" j) with
  | Some ev, Some addr -> (
      match (Json.to_str ev, Json.to_int addr) with
      | Some ev, Some addr -> (
          match j with
          | Json.Obj members ->
              let fields =
                List.filter_map
                  (fun (k, v) ->
                    if k = "v" || k = "ev" || k = "addr" then None
                    else
                      match v with
                      | Json.Num _ -> (
                          match Json.to_int v with
                          | Some i -> Some (k, I i)
                          | None -> Some (k, S (Json.to_string v)))
                      | Json.Str s -> Some (k, S s)
                      | other -> Some (k, S (Json.to_string other)))
                  members
              in
              Ok { ev; addr; fields }
          | _ -> Error "provenance event is not an object")
      | _ -> Error "provenance event: ev must be a string, addr an integer")
  | _ -> Error "provenance event: missing ev or addr"

let to_json_lines events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* Addresses print in hex (the operand names that carry addresses are
   fixed and known); plain quantities print in decimal. *)
let addr_field = function
  | "site" | "target" | "parent" | "part" | "entry" | "viol_at" | "into" -> true
  | _ -> false

let render (e : event) =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "%-18s %#x" e.ev e.addr);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (match v with
        | I i when addr_field k -> Printf.sprintf " %s=%#x" k i
        | I i -> Printf.sprintf " %s=%d" k i
        | S s -> Printf.sprintf " %s=%s" k s))
    e.fields;
  Buffer.contents buf

let explain ~addr events =
  let subject = about addr events in
  let related = mentioning addr events in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "decision chain for %#x:\n" addr);
  if subject = [] then
    Buffer.add_string buf
      "  (no events: the address was never a candidate function start)\n"
  else
    List.iter
      (fun e -> Buffer.add_string buf (Printf.sprintf "  %s\n" (render e)))
      subject;
  if related <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "events mentioning %#x (as operand):\n" addr);
    List.iter
      (fun e -> Buffer.add_string buf (Printf.sprintf "  %s\n" (render e)))
      related
  end;
  let verdict =
    let rec last acc = function [] -> acc | e :: rest -> last (Some e) rest in
    match last None (List.filter (fun e -> e.ev = "verdict.start") subject) with
    | Some _ -> "detected function start"
    | None ->
        if List.exists (fun e -> e.ev = "alg1.merge") subject then
          "merged into another function (non-contiguous part)"
        else if subject = [] then "not a candidate"
        else "candidate, not kept as a function start"
  in
  Buffer.add_string buf (Printf.sprintf "verdict: %s\n" verdict);
  Buffer.contents buf
