(** Relation declarations and the FETCH fact catalog.

    A relation is a name plus named columns (the arity).  The catalog
    below fixes the vocabulary shared by extraction (which asserts the
    extensional relations from [Loaded]/[Refs]/[Height_oracle]) and the
    rule programs in [Fetch_check.Rule_lint] / [Fetch_core.Fact_base]
    (which derive the intensional ones).  Column names are documentation
    and power the JSONL dump; matching is positional. *)

type t = private { name : string; cols : string array }

val make : string -> string list -> t
val arity : t -> int

(** {2 Extensional relations (asserted by extraction)} *)

val func : t
(** [func(entry)] — a detected function entry. *)

val span : t
(** [span(entry, lo, hi)] — a committed basic-block range of [entry]. *)

val insn : t
(** [insn(lo, hi)] — a committed instruction span.  Spans must be
    pairwise disjoint (they come from an interval map, which enforces
    it); the FDE-coverage rules exploit disjointness to turn interval
    containment at span boundaries into indexable equality joins. *)

val jump : t
(** [jump(site, target, entry)] — a direct/conditional jump in function
    [entry]. *)

val ref_hard : t
(** [ref_hard(target, kind, site)] — a non-jump reference to [target]:
    [kind] is ["data"], ["code"] or ["call"]. *)

val ref_jump : t
(** [ref_jump(target, site, entry)] — a jump reference to [target] owned
    by function [entry]. *)

val fde : t
(** [fde(lo, hi)] — an [.eh_frame] FDE covering [\[lo, hi)]. *)

val seed : t
(** [seed(addr, origin)] — a pipeline seed; [origin] is ["fde"],
    ["symbol"] or ["xref"]. *)

val cfi_row : t
(** [cfi_row(lo, hi, height)] — the CFI-recorded stack height over
    [\[lo, hi)], emitted only for FDEs passing the §V-B completeness
    test (exactly where {!Fetch_dwarf.Height_oracle.height_at}
    answers). *)

val text : t
(** [text(lo, hi)] — an executable section range. *)

val fde_entry_height : t
(** [fde_entry_height(lo, height)] — rsp-based CFI stack height at the
    entry point of the FDE starting at [lo], read from the raw CFI truth
    ({!Fetch_dwarf.Height_oracle.height_at_unchecked}).  Extensional
    rather than derived from {!cfi_row}: a split-off cold fragment fails
    the §V-B completeness test by construction (its initial CFA is
    mid-frame, not rsp+8), so {!cfi_row} never covers its entry — yet
    that mid-frame entry height is exactly what the split-function rule
    needs to match against the jump site. *)

val edb : t list
(** All extensional relations, for iteration/dumping. *)

(** {2 Derived relations} *)

val target_in_own : t
(** [target_in_own(entry, target)] — some jump of [entry] targets its
    own entry or a byte inside its own spans. *)

val out_jump : t
(** [out_jump(entry, site, target)] — a jump leaving its function. *)

val jump_text_target : t
(** Projection: a jump target inside an executable section. *)

val jump_mid_insn : t
(** [jump_mid_insn(target, ilo)] — [target] lands strictly inside the
    committed instruction starting at [ilo]. *)

val jump_mid_insn_at : t
(** [jump_mid_insn_at(site, target, ilo)] — the finding-shaped join of
    {!jump_mid_insn} back onto the offending jump sites. *)

val fde_touched : t
(** [fde_touched(lo)] — some committed instruction overlaps the FDE
    starting at [lo]. *)

val cand_point : t
(** [cand_point(lo, point)] — coverage probe points of the FDE at [lo]:
    its start and every instruction end inside it.  An FDE range is
    fully decoded iff every probe point falls inside an instruction. *)

val covered_point : t
(** A probe point that falls inside a committed instruction. *)

val fde_gap : t
(** [fde_gap(lo)] — some probe point of the FDE at [lo] is uncovered. *)

val fde_unreached : t
(** [fde_unreached(lo, hi)] — no instruction of the FDE range was ever
    decoded (the lint rule's Warning case). *)

val fde_partial : t
(** [fde_partial(lo, hi)] — the FDE range is decoded only partially
    (the lint rule's Info case). *)

val ref_outside : t
(** [ref_outside(target, entry)] — [target] (an out-jump target of
    [entry]) is referenced by something other than jumps of [entry] —
    criterion 3 of Algorithm 1. *)

val jump_only_refs : t
(** [jump_only_refs(target, entry)] — the negation: every reference to
    [target] is a jump owned by [entry]. *)

val fde_start : t
(** Projection of {!fde} onto its start address. *)

val jump_height : t
(** [jump_height(site, height)] — CFI stack height at a jump site
    (derived from {!jump} ⋈ {!cfi_row}). *)

val split_fn_fde : t
(** [split_fn_fde(target, entry, site, height)] — the Fig. 6b-style
    split-function detector: [target] is reachable only via jumps of
    [entry], the CFI height at the jump site is nonzero (a live frame,
    so not a tail call) and matches the entry height of [target]'s own
    FDE, yet [target] carries that FDE — the FDE describes a function
    fragment, not a function. *)
