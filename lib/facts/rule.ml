(** Rule representation and static safety checks — see the interface. *)

type term = Var of string | Const of Fact.value

type atom = { rel : Schema.t; args : term array }

type binding = string -> Fact.value

type premise =
  | Pos of atom
  | Neg of atom
  | Guard of string * (binding -> bool)

type t = { name : string; head : atom; body : premise list }

let v name = Var name
let i n = Const (Fact.I n)
let s x = Const (Fact.S x)

let atom rel args =
  let args = Array.of_list args in
  if Array.length args <> Schema.arity rel then
    invalid_arg
      (Printf.sprintf "Rule.atom: %s expects %d arguments, got %d" rel.name
         (Schema.arity rel) (Array.length args));
  { rel; args }

let guard name f = Guard (name, f)

let iv (get : binding) name =
  match get name with
  | Fact.I n -> n
  | Fact.S _ -> invalid_arg ("Rule.iv: variable " ^ name ^ " is not an int")

let make name head body = { name; head; body }

let atom_vars a =
  Array.to_list a.args
  |> List.filter_map (function Var x -> Some x | Const _ -> None)

(* Range restriction: evaluation binds left to right, so every negated
   atom must be fully ground by the positive premises before it, and
   every head variable must be bound by some positive premise.  The
   first premise must be positive — it is the seed of both the naive
   first iteration and every delta variant. *)
let check rule =
  let err fmt = Printf.ksprintf (fun m -> Error (rule.name ^ ": " ^ m)) fmt in
  match rule.body with
  | [] -> err "empty body"
  | (Neg _ | Guard _) :: _ -> err "first premise must be positive"
  | Pos _ :: _ -> (
      let bound = Hashtbl.create 8 in
      let rec walk = function
        | [] -> Ok ()
        | Pos a :: rest ->
            List.iter (fun x -> Hashtbl.replace bound x ()) (atom_vars a);
            walk rest
        | Neg a :: rest -> (
            match
              List.find_opt (fun x -> not (Hashtbl.mem bound x)) (atom_vars a)
            with
            | Some x -> err "variable %s in negated %s is unbound" x a.rel.name
            | None -> walk rest)
        | Guard _ :: rest -> walk rest
      in
      match walk rule.body with
      | Error _ as e -> e
      | Ok () -> (
          match
            List.find_opt
              (fun x -> not (Hashtbl.mem bound x))
              (atom_vars rule.head)
          with
          | Some x -> err "head variable %s is unbound" x
          | None -> Ok ()))

let to_string rule =
  let term_str = function
    | Var x -> x
    | Const c -> Fact.value_to_string c
  in
  let atom_str a =
    Printf.sprintf "%s(%s)" a.rel.name
      (String.concat ", " (Array.to_list (Array.map term_str a.args)))
  in
  let prem_str = function
    | Pos a -> atom_str a
    | Neg a -> "not " ^ atom_str a
    | Guard (n, _) -> "<" ^ n ^ ">"
  in
  Printf.sprintf "%s: %s :- %s." rule.name (atom_str rule.head)
    (String.concat ", " (List.map prem_str rule.body))
