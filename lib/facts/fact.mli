(** Fact values and tuples.

    A fact is a named relation applied to a tuple of ground values.
    Values are deliberately minimal — addresses/sizes/heights are [I],
    symbolic tags (reference kinds, seed origins) are [S] — so tuples
    compare, hash and print structurally with no per-relation code. *)

type value = I of int | S of string

type tuple = value array

(** Addresses print in hex (≥ 0x1000), small scalars in decimal. *)
val value_to_string : value -> string

(** JSON fragment: a bare number or an escaped string. *)
val value_json : value -> string

val to_string : tuple -> string
val value_equal : value -> value -> bool
val equal : tuple -> tuple -> bool
val compare : tuple -> tuple -> int
