(** Stratification of a rule program.

    Negation is only sound bottom-up when the negated relation is fully
    computed first, i.e. lives in a strictly lower stratum.  [run]
    assigns each derived relation a stratum satisfying that, or reports
    the program unstratifiable (a cycle through negation). *)

(** On success: the rules grouped by stratum (evaluation order, input
    order preserved within a stratum) and the relation-name → stratum
    map.  Relations never appearing in a head are extensional and
    implicitly stratum 0. *)
val run :
  Rule.t list ->
  (Rule.t list array * (string, int) Hashtbl.t, string) result
