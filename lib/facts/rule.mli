(** Datalog-style rules over the fact {!Schema}.

    A rule derives head facts from a conjunctive body evaluated left to
    right: positive atoms join against the store, negated atoms test
    absence (stratified — see {!Stratify}), and guards are pure
    predicates over already-bound variables (the escape hatch for
    arithmetic such as interval containment, which pure equality joins
    cannot express).  Guards must be deterministic and state-free: the
    engine re-evaluates them during incremental maintenance and assumes
    they always answer the same. *)

type term = Var of string | Const of Fact.value

type atom = private { rel : Schema.t; args : term array }

(** Variable lookup inside a guard; raises if the variable is unbound
    (a bug the safety check cannot see inside closures). *)
type binding = string -> Fact.value

type premise =
  | Pos of atom
  | Neg of atom
  | Guard of string * (binding -> bool)
      (** named so rule dumps stay readable *)

type t = private { name : string; head : atom; body : premise list }

(** {2 Builders} *)

val v : string -> term
(** Variable. *)

val i : int -> term
(** Integer constant. *)

val s : string -> term
(** String constant. *)

val atom : Schema.t -> term list -> atom
(** Raises [Invalid_argument] on arity mismatch. *)

val guard : string -> (binding -> bool) -> premise

val iv : binding -> string -> int
(** Fetch a bound variable as an int inside a guard. *)

val make : string -> atom -> premise list -> t

(** {2 Checks and printing} *)

(** Range restriction: first premise positive, negated atoms ground at
    their position, head variables bound by positive premises. *)
val check : t -> (unit, string) result

val to_string : t -> string
