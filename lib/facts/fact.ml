(** Fact values and tuples — see the interface. *)

type value = I of int | S of string

type tuple = value array

let value_to_string = function
  | I n -> if n >= 0x1000 then Printf.sprintf "%#x" n else string_of_int n
  | S s -> s

let value_json = function
  | I n -> string_of_int n
  | S s -> Fetch_obs.Report.json_string s

let to_string (t : tuple) =
  "(" ^ String.concat ", " (Array.to_list (Array.map value_to_string t)) ^ ")"

(* Monomorphic equality: the join loops probe this millions of times,
   where polymorphic compare's C call costs more than the comparison. *)
let value_equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | S x, S y -> String.equal x y
  | I _, S _ | S _, I _ -> false

let equal (a : tuple) (b : tuple) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i = n || (value_equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare (a : tuple) (b : tuple) = Stdlib.compare a b
