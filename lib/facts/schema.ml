(** Relation declarations — see the interface. *)

type t = { name : string; cols : string array }

let make name cols =
  if cols = [] then invalid_arg "Schema.make: empty column list";
  { name; cols = Array.of_list cols }

let arity t = Array.length t.cols

(* ---- extensional relations (extracted once per binary) ---- *)

let func = make "func" [ "entry" ]
let span = make "span" [ "entry"; "lo"; "hi" ]
let insn = make "insn" [ "lo"; "hi" ]
let jump = make "jump" [ "site"; "target"; "entry" ]
let ref_hard = make "ref_hard" [ "target"; "kind"; "site" ]
let ref_jump = make "ref_jump" [ "target"; "site"; "entry" ]
let fde = make "fde" [ "lo"; "hi" ]
let seed = make "seed" [ "addr"; "origin" ]
let cfi_row = make "cfi_row" [ "lo"; "hi"; "height" ]
let text = make "text" [ "lo"; "hi" ]

(* extracted from the raw CFI truth rather than derived from [cfi_row]:
   split-off cold fragments fail the §V-B completeness test by
   construction (their initial CFA is mid-frame, not rsp+8), so the
   oracle's row enumeration never covers them *)
let fde_entry_height = make "fde_entry_height" [ "lo"; "height" ]

let edb =
  [
    func; span; insn; jump; ref_hard; ref_jump; fde; seed; cfi_row; text;
    fde_entry_height;
  ]

(* ---- derived relations ---- *)

let target_in_own = make "target_in_own" [ "entry"; "target" ]
let out_jump = make "out_jump" [ "entry"; "site"; "target" ]
let jump_text_target = make "jump_text_target" [ "target" ]
let jump_mid_insn = make "jump_mid_insn" [ "target"; "ilo" ]
let jump_mid_insn_at = make "jump_mid_insn_at" [ "site"; "target"; "ilo" ]
let fde_touched = make "fde_touched" [ "lo" ]
let cand_point = make "cand_point" [ "lo"; "point" ]
let covered_point = make "covered_point" [ "lo"; "point" ]
let fde_gap = make "fde_gap" [ "lo" ]
let fde_unreached = make "fde_unreached" [ "lo"; "hi" ]
let fde_partial = make "fde_partial" [ "lo"; "hi" ]
let ref_outside = make "ref_outside" [ "target"; "entry" ]
let jump_only_refs = make "jump_only_refs" [ "target"; "entry" ]
let fde_start = make "fde_start" [ "lo" ]
let jump_height = make "jump_height" [ "site"; "height" ]
let split_fn_fde = make "split_fn_fde" [ "target"; "entry"; "site"; "height" ]
