(** Indexed relation store — see the interface. *)

type rel_data = {
  decl : Schema.t;
  tuples : (Fact.tuple, unit) Hashtbl.t;
  index : (Fact.value, (Fact.tuple, unit) Hashtbl.t) Hashtbl.t array;
      (** one bucket table per column *)
}

type t = (string, rel_data) Hashtbl.t

let create () : t = Hashtbl.create 32

let data (t : t) (rel : Schema.t) =
  match Hashtbl.find_opt t rel.name with
  | Some d -> d
  | None ->
      let d =
        {
          decl = rel;
          tuples = Hashtbl.create 64;
          index = Array.init (Schema.arity rel) (fun _ -> Hashtbl.create 64);
        }
      in
      Hashtbl.replace t rel.name d;
      d

let bucket d col v =
  match Hashtbl.find_opt d.index.(col) v with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.replace d.index.(col) v b;
      b

let add t rel (tup : Fact.tuple) =
  let d = data t rel in
  if Hashtbl.mem d.tuples tup then false
  else begin
    Hashtbl.replace d.tuples tup ();
    Array.iteri (fun col v -> Hashtbl.replace (bucket d col v) tup ()) tup;
    true
  end

let remove t rel (tup : Fact.tuple) =
  let d = data t rel in
  if not (Hashtbl.mem d.tuples tup) then false
  else begin
    Hashtbl.remove d.tuples tup;
    Array.iteri
      (fun col v ->
        match Hashtbl.find_opt d.index.(col) v with
        | Some b -> Hashtbl.remove b tup
        | None -> ())
      tup;
    true
  end

let mem t (rel : Schema.t) tup =
  match Hashtbl.find_opt t rel.name with
  | Some d -> Hashtbl.mem d.tuples tup
  | None -> false

let cardinal t (rel : Schema.t) =
  match Hashtbl.find_opt t rel.name with
  | Some d -> Hashtbl.length d.tuples
  | None -> 0

let total t =
  Hashtbl.fold (fun _ d acc -> acc + Hashtbl.length d.tuples) t 0

let fold t (rel : Schema.t) f init =
  match Hashtbl.find_opt t rel.name with
  | Some d -> Hashtbl.fold (fun tup () acc -> f tup acc) d.tuples init
  | None -> init

let to_list t rel =
  fold t rel (fun tup acc -> tup :: acc) [] |> List.sort Fact.compare

let iter_rels t f =
  Hashtbl.fold (fun name d acc -> (name, d) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, d) -> f d.decl)

(* Pick the most selective constraint's bucket and filter by the rest;
   no constraints means a full scan.  Returns tuples in unspecified
   order — set semantics downstream makes that harmless. *)
let select t (rel : Schema.t) (constraints : (int * Fact.value) list) =
  match Hashtbl.find_opt t rel.name with
  | None -> []
  | Some d -> (
      match constraints with
      | [] -> Hashtbl.fold (fun tup () acc -> tup :: acc) d.tuples []
      | cs ->
          let bucket_of (col, v) =
            match Hashtbl.find_opt d.index.(col) v with
            | Some b -> b
            | None -> Hashtbl.create 0
          in
          let best =
            List.fold_left
              (fun (bb, bn) c ->
                let b = bucket_of c in
                let n = Hashtbl.length b in
                if n < bn then (b, n) else (bb, bn))
              (bucket_of (List.hd cs), Hashtbl.length (bucket_of (List.hd cs)))
              (List.tl cs)
            |> fst
          in
          Hashtbl.fold
            (fun (tup : Fact.tuple) () acc ->
              if List.for_all (fun (col, v) -> Fact.value_equal tup.(col) v) cs
              then tup :: acc
              else acc)
            best [])

(* Allocation-free variant of [select] for the join inner loop: applies
   [f] directly while walking the bucket.  Only safe when [f] does not
   mutate this relation — the caller must guarantee that. *)
let iter_select t (rel : Schema.t) (constraints : (int * Fact.value) list) f =
  match Hashtbl.find_opt t rel.name with
  | None -> ()
  | Some d -> (
      match constraints with
      | [] -> Hashtbl.iter (fun tup () -> f tup) d.tuples
      | cs ->
          let bucket_of (col, v) =
            match Hashtbl.find_opt d.index.(col) v with
            | Some b -> b
            | None -> Hashtbl.create 0
          in
          let best =
            List.fold_left
              (fun (bb, bn) c ->
                let b = bucket_of c in
                let n = Hashtbl.length b in
                if n < bn then (b, n) else (bb, bn))
              (bucket_of (List.hd cs), Hashtbl.length (bucket_of (List.hd cs)))
              (List.tl cs)
            |> fst
          in
          Hashtbl.iter
            (fun (tup : Fact.tuple) () ->
              if List.for_all (fun (col, v) -> Fact.value_equal tup.(col) v) cs
              then f tup)
            best)
