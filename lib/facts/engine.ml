(** Semi-naive, stratified, incrementally-maintained evaluation — see the
    interface for the contract. *)

module Obs = Fetch_obs.Trace

let c_asserted = Obs.counter "facts.asserted"
let c_retracted = Obs.counter "facts.retracted"
let c_derived = Obs.counter "facts.derived"
let c_overdeleted = Obs.counter "facts.overdeleted"
let c_rederived = Obs.counter "facts.rederived"
let c_firings = Obs.counter "facts.rule_firings"
let c_iters = Obs.counter "facts.fixpoint_iters"
let h_delta = Obs.histogram "facts.delta_size"

type stats = {
  mutable asserted : int;
  mutable retracted : int;
  mutable derived : int;
  mutable overdeleted : int;
  mutable rederived : int;
  mutable firings : int;
  mutable iters : int;
  strata : int;
  mutable exhausted : bool;
}

type t = {
  store : Store.t;
  strata : Rule.t list array;
  stratum_of : (string, int) Hashtbl.t;  (** derived relation → stratum *)
  fuel : int;
  st : stats;
  (* Per-update session bookkeeping: the NET set of tuples added/removed
     since the update began (a tuple overdeleted then rederived or
     re-derived through new facts cancels out).  Higher strata read
     these as their change triggers; the Old view below reconstructs
     the pre-update contents from them. *)
  added : (string, (Fact.tuple, unit) Hashtbl.t) Hashtbl.t;
  removed : (string, (Fact.tuple, unit) Hashtbl.t) Hashtbl.t;
}

exception Fuel_exhausted
exception Unbound of string * string

let store t = t.store
let stats t = t.st
let is_derived t name = Hashtbl.mem t.stratum_of name

(* ---- environments ---- *)

type env = (string * Fact.value) list

(* Hand-rolled assoc with [String.equal]: the generic one's polymorphic
   equality is a measurable cost at millions of probes. *)
let rec assoc name (env : env) =
  match env with
  | [] -> None
  | (n, v) :: rest -> if String.equal n name then Some v else assoc name rest

let lookup (rule : Rule.t) (env : env) name =
  match assoc name env with
  | Some v -> v
  | None -> raise (Unbound (rule.name, name))

let unify (a : Rule.atom) (tup : Fact.tuple) (env : env) =
  let n = Array.length a.args in
  if Array.length tup <> n then None
  else
    let rec go i env =
      if i = n then Some env
      else
        match a.args.(i) with
        | Rule.Const v ->
            if Fact.value_equal tup.(i) v then go (i + 1) env else None
        | Rule.Var x -> (
            match assoc x env with
            | Some v ->
                if Fact.value_equal v tup.(i) then go (i + 1) env else None
            | None -> go (i + 1) ((x, tup.(i)) :: env))
    in
    go 0 env

let ground (rule : Rule.t) (a : Rule.atom) (env : env) : Fact.tuple =
  Array.map
    (function
      | Rule.Const v -> v
      | Rule.Var x -> lookup rule env x)
    a.args

let constraints (a : Rule.atom) (env : env) =
  let cs = ref [] in
  Array.iteri
    (fun i arg ->
      match arg with
      | Rule.Const v -> cs := (i, v) :: !cs
      | Rule.Var x -> (
          match List.assoc_opt x env with
          | Some v -> cs := (i, v) :: !cs
          | None -> ()))
    a.args;
  !cs

let constraint_match cs (tup : Fact.tuple) =
  List.for_all (fun (col, v) -> Fact.value_equal tup.(col) v) cs

(* ---- views ----
   [Cur] reads the store as it stands.  [Old] reconstructs the
   pre-update contents from the session sets: a tuple was present
   before the update iff it is in the store and not session-added, or
   it was session-removed. *)

type view = Cur | Old

let session_tbl tbls name =
  match Hashtbl.find_opt tbls name with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace tbls name tbl;
      tbl

let in_session tbls name tup =
  match Hashtbl.find_opt tbls name with
  | Some tbl -> Hashtbl.mem tbl tup
  | None -> false

let session_list tbls name =
  match Hashtbl.find_opt tbls name with
  | Some tbl -> Hashtbl.fold (fun tup () acc -> tup :: acc) tbl []
  | None -> []

let mem_view t view (rel : Schema.t) tup =
  match view with
  | Cur -> Store.mem t.store rel tup
  | Old ->
      (Store.mem t.store rel tup && not (in_session t.added rel.name tup))
      || in_session t.removed rel.name tup

let select_view t view (rel : Schema.t) cs =
  match view with
  | Cur -> Store.select t.store rel cs
  | Old ->
      let cur =
        Store.select t.store rel cs
        |> List.filter (fun tup -> not (in_session t.added rel.name tup))
      in
      let back =
        session_list t.removed rel.name
        |> List.filter (fun (tup : Fact.tuple) ->
               Array.length tup = Schema.arity rel && constraint_match cs tup)
      in
      cur @ back

(* ---- rule evaluation ----
   Evaluate the body left to right, skipping the trigger premise (its
   binding seeded [env]); call [k] for every complete binding. *)

let rec eval_body t (rule : Rule.t) view body pos skip env k =
  match body with
  | [] ->
      t.st.firings <- t.st.firings + 1;
      Obs.incr c_firings;
      if t.st.firings > t.fuel then raise Fuel_exhausted;
      k env
  | p :: rest -> (
      if pos = skip then eval_body t rule view rest (pos + 1) skip env k
      else
        match p with
        | Rule.Pos a ->
            let each tup =
              match unify a tup env with
              | Some env' -> eval_body t rule view rest (pos + 1) skip env' k
              | None -> ()
            in
            (* The continuation only ever mutates the head relation, so
               scanning any other relation can walk the index in place;
               a self-recursive premise still materializes a list. *)
            if view = Cur && not (String.equal a.rel.name rule.head.rel.name)
            then Store.iter_select t.store a.rel (constraints a env) each
            else List.iter each (select_view t view a.rel (constraints a env))
        | Rule.Neg a ->
            if not (mem_view t view a.rel (ground rule a env)) then
              eval_body t rule view rest (pos + 1) skip env k
        | Rule.Guard (_, f) ->
            if f (lookup rule env) then
              eval_body t rule view rest (pos + 1) skip env k)

(* Fire [rule] with the trigger premise at [idx] ranging over [tups]
   instead of the store. *)
let fire t (rule : Rule.t) view ~idx ~tups sink =
  let prem = List.nth rule.body idx in
  let seed =
    match prem with
    | Rule.Pos a | Rule.Neg a -> fun tup -> unify a tup []
    | Rule.Guard _ -> fun _ -> None
  in
  List.iter
    (fun tup ->
      match seed tup with
      | None -> ()
      | Some env0 ->
          eval_body t rule view rule.body 0 idx env0 (fun env ->
              sink rule (ground rule rule.head env)))
    tups

(* ---- insert (initial evaluation and the growth phase of updates) ---- *)

(* Derivation sink: add to the store, push to the iteration delta; when
   maintaining an update session, keep the NET added/removed sets
   consistent (re-deriving a tuple overdeleted earlier in the same
   update cancels to "unchanged"). *)
let insert_sink t ~session ~delta (rule : Rule.t) htup =
  let rel = rule.head.rel in
  if Store.add t.store rel htup then begin
    t.st.derived <- t.st.derived + 1;
    Obs.incr c_derived;
    if session then begin
      let rem = session_tbl t.removed rel.name in
      if Hashtbl.mem rem htup then Hashtbl.remove rem htup
      else Hashtbl.replace (session_tbl t.added rel.name) htup ()
    end;
    let q = session_tbl delta rel.name in
    Hashtbl.replace q htup ()
  end

(* Run the semi-naive loop for one stratum: [seed] populates the first
   delta, then rules re-fire on their own stratum's deltas until no new
   tuple appears. *)
let saturate t rules ~session ~seed =
  let delta = Hashtbl.create 16 in
  seed ~sink:(insert_sink t ~session ~delta);
  let continue_ = ref (Hashtbl.length delta > 0) in
  while !continue_ do
    t.st.iters <- t.st.iters + 1;
    Obs.incr c_iters;
    let wave = Hashtbl.copy delta in
    Hashtbl.reset delta;
    List.iter
      (fun (rule : Rule.t) ->
        List.iteri
          (fun idx prem ->
            match prem with
            | Rule.Pos a when Hashtbl.mem wave a.rel.name ->
                fire t rule Cur ~idx
                  ~tups:(session_list wave a.rel.name)
                  (insert_sink t ~session ~delta)
            | Rule.Pos _ | Rule.Neg _ | Rule.Guard _ -> ())
          rule.body)
      rules;
    continue_ := Hashtbl.length delta > 0
  done

(* Initial evaluation of one stratum: the naive first pass triggers each
   rule's first (positive) premise over the full relation — lower strata
   are complete by now, so that enumerates every derivation — then the
   loop handles within-stratum recursion. *)
let eval_stratum t rules =
  saturate t rules ~session:false ~seed:(fun ~sink ->
      List.iter
        (fun (rule : Rule.t) ->
          match rule.body with
          | Rule.Pos a :: _ ->
              fire t rule Cur ~idx:0 ~tups:(Store.select t.store a.rel []) sink
          | _ -> assert false (* Rule.check: first premise is positive *))
        rules)

let eval t =
  Obs.span "facts.eval" @@ fun () ->
  Array.iter (fun rules -> eval_stratum t rules) t.strata

(* ---- delete-and-rederive (DRed) for one stratum ----

   Overdelete: any derivation that consumed a session-removed positive
   tuple, or whose negated premise now holds (a session-added tuple),
   loses its head tuple; deletions cascade through the stratum.  Joins
   read the [Old] view — the derivation being invalidated existed in the
   pre-update state.

   Rederive: an overdeleted tuple with a surviving alternative
   derivation (evaluated on the new state) comes back, which may let
   others come back — iterate to fixpoint.

   Insert: semi-naive growth seeded by every net change visible to this
   stratum — added tuples through positive premises, removed tuples
   through negated ones. *)

let overdelete_sink t ~progressed (rule : Rule.t) htup =
  let rel = rule.head.rel in
  if Store.remove t.store rel htup then begin
    t.st.overdeleted <- t.st.overdeleted + 1;
    Obs.incr c_overdeleted;
    let add = session_tbl t.added rel.name in
    if Hashtbl.mem add htup then Hashtbl.remove add htup
    else Hashtbl.replace (session_tbl t.removed rel.name) htup ();
    progressed := true
  end

let overdelete_stratum t rules =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun (rule : Rule.t) ->
        List.iteri
          (fun idx prem ->
            match prem with
            | Rule.Pos a ->
                fire t rule Old ~idx
                  ~tups:(session_list t.removed a.rel.name)
                  (overdelete_sink t ~progressed)
            | Rule.Neg a ->
                fire t rule Old ~idx
                  ~tups:(session_list t.added a.rel.name)
                  (overdelete_sink t ~progressed)
            | Rule.Guard _ -> ())
          rule.body)
      rules
  done

let rederive_stratum t stratum rules =
  (* candidates: this stratum's overdeleted tuples still missing *)
  let cands =
    List.concat_map
      (fun (rule : Rule.t) ->
        let rel = rule.head.rel in
        if Hashtbl.find_opt t.stratum_of rel.name = Some stratum then
          List.map (fun tup -> (rel, tup)) (session_list t.removed rel.name)
        else [])
      rules
    |> List.sort_uniq compare
  in
  let exception Found in
  let derivable rel (tup : Fact.tuple) =
    List.exists
      (fun (rule : Rule.t) ->
        rule.head.rel.name = rel.Schema.name
        &&
        match unify rule.head tup [] with
        | None -> false
        | Some env0 -> (
            try
              eval_body t rule Cur rule.body 0 (-1) env0 (fun _ ->
                  raise Found);
              false
            with Found -> true))
      rules
  in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun (rel, tup) ->
        if in_session t.removed rel.Schema.name tup && derivable rel tup then begin
          ignore (Store.add t.store rel tup);
          Hashtbl.remove (session_tbl t.removed rel.Schema.name) tup;
          t.st.rederived <- t.st.rederived + 1;
          Obs.incr c_rederived;
          progressed := true
        end)
      cands
  done

let insert_stratum t rules =
  saturate t rules ~session:true ~seed:(fun ~sink ->
      List.iter
        (fun (rule : Rule.t) ->
          List.iteri
            (fun idx prem ->
              match prem with
              | Rule.Pos a ->
                  fire t rule Cur ~idx
                    ~tups:(session_list t.added a.rel.name)
                    sink
              | Rule.Neg a ->
                  fire t rule Cur ~idx
                    ~tups:(session_list t.removed a.rel.name)
                    sink
              | Rule.Guard _ -> ())
            rule.body)
        rules)

(* ---- public API ---- *)

let create ?(fuel = max_int) store rules =
  let rec first_error = function
    | [] -> None
    | r :: rest -> (
        match Rule.check r with
        | Ok () -> (
            match
              List.find_opt
                (fun (e : Schema.t) -> e.name = (r : Rule.t).head.rel.name)
                Schema.edb
            with
            | Some e ->
                Some
                  (Printf.sprintf "%s: head %s is an extensional relation"
                     r.name e.name)
            | None -> first_error rest)
        | Error e -> Some e)
  in
  match first_error rules with
  | Some e -> Error e
  | None -> (
      match Stratify.run rules with
      | Error e -> Error e
      | Ok (strata, stratum_of) ->
          let t =
            {
              store;
              strata;
              stratum_of;
              fuel;
              st =
                {
                  asserted = 0;
                  retracted = 0;
                  derived = 0;
                  overdeleted = 0;
                  rederived = 0;
                  firings = 0;
                  iters = 0;
                  strata = Array.length strata;
                  exhausted = false;
                };
              added = Hashtbl.create 16;
              removed = Hashtbl.create 16;
            }
          in
          (try eval t with Fuel_exhausted -> t.st.exhausted <- true);
          Ok t)

let update t ~assert_ ~retract_ =
  if t.st.exhausted then
    invalid_arg "Engine.update: engine ran out of fuel; state is partial";
  Obs.span "facts.update" @@ fun () ->
  Hashtbl.reset t.added;
  Hashtbl.reset t.removed;
  let check_edb (rel : Schema.t) =
    if is_derived t rel.name then
      invalid_arg
        (Printf.sprintf "Engine.update: %s is derived, not extensional"
           rel.name)
  in
  List.iter
    (fun ((rel : Schema.t), tup) ->
      check_edb rel;
      if Store.remove t.store rel tup then begin
        t.st.retracted <- t.st.retracted + 1;
        Obs.incr c_retracted;
        let add = session_tbl t.added rel.name in
        if Hashtbl.mem add tup then Hashtbl.remove add tup
        else Hashtbl.replace (session_tbl t.removed rel.name) tup ()
      end)
    retract_;
  List.iter
    (fun ((rel : Schema.t), tup) ->
      check_edb rel;
      if Store.add t.store rel tup then begin
        t.st.asserted <- t.st.asserted + 1;
        Obs.incr c_asserted;
        let rem = session_tbl t.removed rel.name in
        if Hashtbl.mem rem tup then Hashtbl.remove rem tup
        else Hashtbl.replace (session_tbl t.added rel.name) tup ()
      end)
    assert_;
  Obs.observe h_delta (List.length assert_ + List.length retract_);
  try
    Array.iteri
      (fun s rules ->
        overdelete_stratum t rules;
        rederive_stratum t s rules;
        insert_stratum t rules)
      t.strata
  with Fuel_exhausted -> t.st.exhausted <- true
