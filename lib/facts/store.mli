(** Typed relation store with per-column hash indexes.

    Holds both the extensional facts (asserted by extraction) and the
    derived ones (maintained by {!Engine}).  Every column of every
    relation is indexed on insert, so a join with any bound column is a
    bucket probe rather than a scan; [add]/[remove] report whether the
    store actually changed, which is what the engine's set semantics
    and delta bookkeeping key off. *)

type t

val create : unit -> t

(** [add t rel tup] — true iff the tuple was new. *)
val add : t -> Schema.t -> Fact.tuple -> bool

(** [remove t rel tup] — true iff the tuple was present. *)
val remove : t -> Schema.t -> Fact.tuple -> bool

val mem : t -> Schema.t -> Fact.tuple -> bool
val cardinal : t -> Schema.t -> int

(** Total tuple count across all relations. *)
val total : t -> int

val fold : t -> Schema.t -> (Fact.tuple -> 'a -> 'a) -> 'a -> 'a

(** Sorted, for deterministic dumps and comparisons. *)
val to_list : t -> Schema.t -> Fact.tuple list

(** Iterate declared relations in name order. *)
val iter_rels : t -> (Schema.t -> unit) -> unit

(** Tuples satisfying all [(column, value)] equality constraints; the
    most selective constraint's index bucket is probed and the rest
    filter. *)
val select : t -> Schema.t -> (int * Fact.value) list -> Fact.tuple list

(** Like {!select} but applies the callback while walking the index —
    no intermediate list.  The callback must not mutate [rel] itself
    (iterating a hashtable under mutation is unspecified); the engine
    only uses this when the rule's head is a different relation. *)
val iter_select :
  t -> Schema.t -> (int * Fact.value) list -> (Fact.tuple -> unit) -> unit
