(** Bottom-up rule evaluation over a {!Store}, with incremental
    maintenance.

    [create store rules] checks the rules ({!Rule.check}), stratifies
    them ({!Stratify.run}) and computes the fixpoint: strata evaluate in
    order, each by a semi-naive loop (a naive first pass per rule, then
    re-firing only on the previous iteration's delta).  After [create],
    the store holds the extensional facts plus every derivable tuple.

    [update] is the incremental entry point, used as new function starts
    are committed during xref detection: extensional tuples are asserted
    / retracted and the derived relations are repaired per stratum by
    delete-and-rederive (DRed) — overdelete every derivation consuming a
    changed tuple, rederive overdeleted tuples with surviving alternate
    derivations, then grow semi-naively from the net additions.  The
    post-[update] store is observationally identical to evaluating from
    scratch on the new extensional facts (the differential tests assert
    exactly that).

    Fuel bounds total rule firings across the engine's lifetime; an
    exhausted engine holds a partial (unsound) store and refuses further
    updates. *)

type t

type stats = {
  mutable asserted : int;      (** extensional tuples added by [update] *)
  mutable retracted : int;     (** extensional tuples removed by [update] *)
  mutable derived : int;       (** derived-tuple insertions (initial + incremental) *)
  mutable overdeleted : int;   (** derived tuples deleted during DRed *)
  mutable rederived : int;     (** overdeleted tuples that came back *)
  mutable firings : int;       (** complete body bindings evaluated *)
  mutable iters : int;         (** semi-naive loop iterations *)
  strata : int;
  mutable exhausted : bool;    (** fuel ran out; store is partial *)
}

(** Evaluate to fixpoint.  Errors on an unsafe rule, an unstratifiable
    program, or a rule whose head is an extensional relation from
    {!Schema.edb}.  [fuel] defaults to unlimited. *)
val create : ?fuel:int -> Store.t -> Rule.t list -> (t, string) result

(** Apply extensional deltas and repair the derived relations.
    Retractions apply before assertions.  Raises [Invalid_argument] if a
    delta targets a derived relation or the engine is exhausted. *)
val update :
  t ->
  assert_:(Schema.t * Fact.tuple) list ->
  retract_:(Schema.t * Fact.tuple) list ->
  unit

val store : t -> Store.t
val stats : t -> stats

(** Whether [name] is the head of some rule in this engine's program. *)
val is_derived : t -> string -> bool
