(** Stratification — see the interface. *)

let idb_rels rules =
  let idb = Hashtbl.create 16 in
  List.iter
    (fun (r : Rule.t) -> Hashtbl.replace idb r.head.rel.name ())
    rules;
  idb

(* Ullman's iterative stratum assignment: start every derived relation
   at stratum 0 and raise head strata to satisfy
     stratum(head) >= stratum(positive body rel)
     stratum(head) >= stratum(negated body rel) + 1
   for derived body relations (extensional relations are fixed input and
   constrain nothing).  A stratum exceeding the number of derived
   relations proves a cycle through negation. *)
let run rules =
  let idb = idb_rels rules in
  let n_idb = Hashtbl.length idb in
  let stratum = Hashtbl.create 16 in
  Hashtbl.iter (fun name () -> Hashtbl.replace stratum name 0) idb;
  let get name = try Hashtbl.find stratum name with Not_found -> 0 in
  let unstratifiable = ref None in
  let changed = ref true in
  while !changed && !unstratifiable = None do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        let h = r.head.rel.name in
        List.iter
          (fun p ->
            let need =
              match p with
              | Rule.Pos a when Hashtbl.mem idb a.rel.name -> get a.rel.name
              | Rule.Neg a when Hashtbl.mem idb a.rel.name ->
                  get a.rel.name + 1
              | Rule.Pos _ | Rule.Neg _ | Rule.Guard _ -> 0
            in
            if need > get h then begin
              if need > n_idb then unstratifiable := Some r.name
              else begin
                Hashtbl.replace stratum h need;
                changed := true
              end
            end)
          r.body)
      rules
  done;
  match !unstratifiable with
  | Some name ->
      Error
        (Printf.sprintf
           "program is not stratifiable: negation cycle through rule %s" name)
  | None ->
      let max_s = Hashtbl.fold (fun _ s acc -> max s acc) stratum 0 in
      let strata = Array.make (max_s + 1) [] in
      List.iter
        (fun (r : Rule.t) ->
          let s = get r.head.rel.name in
          strata.(s) <- r :: strata.(s))
        rules;
      Array.iteri (fun i rs -> strata.(i) <- List.rev rs) strata;
      Ok (strata, stratum)
