(** Corpus specifications mirroring the paper's two datasets.

    Dataset 2 (Table II): 179 "programs" across 22 projects, each compiled
    with both synthetic compilers at O2/O3/Os/Ofast.  Dataset 1 (Table I):
    43 "wild" binaries, 11 of which carry symbols.  Everything is derived
    deterministically from a master seed; [scale] shrinks the per-project
    program counts for quick runs. *)

open Fetch_synth

type lang = C | Cxx | Mixed

type project = {
  pname : string;
  ptype : string;
  n_programs : int;
  lang : lang;
  funcs : int * int;  (** per-binary function count range *)
  asm : Gen.spec -> Gen.spec;  (** per-project assembly-function mix *)
}

let no_asm spec = spec

let light_asm spec =
  { spec with Gen.n_asm_called = 1; n_asm_tailonly = 1; n_asm_pointer = 1 }

let medium_asm spec =
  {
    spec with
    Gen.n_asm_called = 1;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
  }

let heavy_asm spec =
  {
    spec with
    Gen.n_asm_called = 2;
    n_asm_tailonly = 2;
    n_asm_pointer = 3;
    n_asm_code_ptr = 2;
    n_asm_unreachable = 1;
  }

(* Table II rows. *)
let projects =
  [
    { pname = "Coreutils-8.30"; ptype = "Utilities"; n_programs = 105; lang = C; funcs = (25, 60); asm = no_asm };
    { pname = "Findutils-4.4"; ptype = "Utilities"; n_programs = 3; lang = C; funcs = (40, 80); asm = no_asm };
    { pname = "Binutils-2.26"; ptype = "Utilities"; n_programs = 17; lang = Mixed; funcs = (60, 120); asm = no_asm };
    { pname = "Openssl-1.1.0l"; ptype = "Client"; n_programs = 1; lang = C; funcs = (140, 220); asm = heavy_asm };
    { pname = "D8-6.4"; ptype = "Client"; n_programs = 1; lang = Cxx; funcs = (100, 160); asm = no_asm };
    { pname = "Busybox-1.31"; ptype = "Client"; n_programs = 1; lang = C; funcs = (80, 140); asm = light_asm };
    { pname = "Protobuf-c-1"; ptype = "Client"; n_programs = 1; lang = Cxx; funcs = (40, 80); asm = no_asm };
    { pname = "ZSH-5.7.1"; ptype = "Client"; n_programs = 1; lang = C; funcs = (60, 100); asm = no_asm };
    { pname = "Openssh-8.0"; ptype = "Client"; n_programs = 7; lang = C; funcs = (40, 80); asm = no_asm };
    { pname = "Mysql-5.7.27"; ptype = "Client"; n_programs = 1; lang = Cxx; funcs = (90, 150); asm = no_asm };
    { pname = "Git-2.23"; ptype = "Client"; n_programs = 1; lang = C; funcs = (80, 130); asm = no_asm };
    { pname = "filezilla-3.44.2"; ptype = "Client"; n_programs = 1; lang = Cxx; funcs = (70, 120); asm = no_asm };
    { pname = "Lighttpd-1.4.54"; ptype = "Server"; n_programs = 1; lang = C; funcs = (50, 90); asm = no_asm };
    { pname = "Mysqld-5.7.27"; ptype = "Server"; n_programs = 1; lang = Cxx; funcs = (110, 170); asm = no_asm };
    { pname = "Nginx-1.15.0"; ptype = "Server"; n_programs = 1; lang = C; funcs = (70, 120); asm = light_asm };
    { pname = "Glibc-2.27"; ptype = "Library"; n_programs = 1; lang = C; funcs = (160, 240); asm = medium_asm };
    { pname = "libpcap-1.9.0"; ptype = "Library"; n_programs = 1; lang = C; funcs = (40, 70); asm = no_asm };
    { pname = "libv8-6.4"; ptype = "Library"; n_programs = 1; lang = Cxx; funcs = (90, 140); asm = no_asm };
    { pname = "libtiff-4.0.10"; ptype = "Library"; n_programs = 1; lang = C; funcs = (40, 70); asm = no_asm };
    { pname = "libxm12-2.9.8"; ptype = "Library"; n_programs = 1; lang = C; funcs = (50, 90); asm = no_asm };
    { pname = "libprotobuf-c-1"; ptype = "Library"; n_programs = 1; lang = Cxx; funcs = (40, 70); asm = no_asm };
    { pname = "SPEC CPU2006"; ptype = "Benchmark"; n_programs = 30; lang = Mixed; funcs = (50, 110); asm = no_asm };
  ]

type binary = {
  id : string;
  project : project;
  profile : Profile.t;
  built : Link.built;
}

let master_seed = 0x5e7c0de

(* One deterministic sub-seed per (project, program, compiler, opt). *)
let bin_seed ~pname ~prog ~compiler ~opt =
  Hashtbl.hash (master_seed, pname, prog, Profile.compiler_name compiler, Profile.opt_name opt)

let spec_for rng (p : project) =
  let lo, hi = p.funcs in
  let base =
    {
      Gen.default_spec with
      n_funcs = Fetch_util.Prng.range rng lo hi;
      cxx = (match p.lang with Cxx -> true | Mixed -> Fetch_util.Prng.bool rng | C -> false);
      strip = false;
      (* symbols kept; experiments strip on demand *)
    }
  in
  p.asm base

(* The corpus-wide count of hand-broken FDEs (the paper found 3). *)
let broken_fde_programs =
  [ ("Glibc-2.27", 0); ("Openssl-1.1.0l", 0); ("Nginx-1.15.0", 0) ]

type job = { job_id : string; build : unit -> binary }

(** Enumerate the self-built corpus as deterministic build jobs without
    building anything: each job's [build] derives its binary from the
    job's own sub-seed, so jobs can run in any order — or on any domain
    of a {!Fetch_par.Pool} — and still produce identical binaries.  Job
    order is the traversal order of {!fold_selfbuilt}. *)
let jobs_selfbuilt ?(scale = 1.0) ?only () =
  let selected =
    match only with
    | None -> projects
    | Some names -> List.filter (fun p -> List.mem p.pname names) projects
  in
  List.concat_map
    (fun p ->
      let n_prog = max 1 (int_of_float (float_of_int p.n_programs *. scale)) in
      List.concat_map
        (fun i ->
          List.concat_map
            (fun compiler ->
              List.map
                (fun opt ->
                  let seed = bin_seed ~pname:p.pname ~prog:i ~compiler ~opt in
                  let profile = Profile.make compiler opt in
                  let id =
                    Printf.sprintf "%s/%d-%s" p.pname i (Profile.name profile)
                  in
                  let build () =
                    let rng = Fetch_util.Prng.create seed in
                    let spec = spec_for rng p in
                    let spec =
                      if
                        List.mem_assoc p.pname broken_fde_programs
                        && i = List.assoc p.pname broken_fde_programs
                        && compiler = Profile.Synthgcc && opt = Profile.O2
                      then { spec with Gen.n_broken_fde = 1 }
                      else spec
                    in
                    let program = Gen.program rng profile spec in
                    let built = Link.build ~profile ~rng program in
                    { id; project = p; profile; built }
                  in
                  { job_id = id; build })
                Profile.all_opts)
            [ Profile.Synthgcc; Profile.Synthllvm ])
        (List.init n_prog Fun.id))
    selected

(** Fold [f] over the self-built corpus.  [scale] in (0, 1] shrinks each
    project's program count (at least one program each). *)
let fold_selfbuilt ?scale ?only ~init f =
  List.fold_left
    (fun acc j -> f acc (j.build ()))
    init
    (jobs_selfbuilt ?scale ?only ())

(** Map [f] over the self-built corpus on a domain pool: every job
    (generation + [f]) runs as one isolated task.  Results are in
    {!fold_selfbuilt} traversal order; a task that raises yields an
    [Error] carrying the binary id, never aborting the rest. *)
let map_selfbuilt_par pool ?scale ?only f =
  Fetch_par.Pool.map pool
    ~label:(fun _ j -> j.job_id)
    (fun j -> f (j.build ()))
    (jobs_selfbuilt ?scale ?only ())

let count_selfbuilt ?(scale = 1.0) () =
  List.fold_left
    (fun acc p -> acc + (max 1 (int_of_float (float_of_int p.n_programs *. scale)) * 8))
    0 projects

(* ---- Dataset 1: wild binaries (Table I). ---- *)

type wild_meta = {
  wname : string;
  open_source : bool;
  has_symbols : bool;
  wlang : lang;
}

let wild_rows =
  [
    ("Atom-1.49.0", true, false, Cxx); ("Simplenote-1.4.13", true, false, Cxx);
    ("OpenShot-2.4.4", true, false, C); ("seamonkey-2.49.5", true, false, Cxx);
    ("mupdf-1.16.1", true, false, C); ("laverna-0.7.1", true, false, Cxx);
    ("franz-5.4.0", true, false, Cxx); ("Nightingale-1.12.1", true, false, C);
    ("palemoon-28.8.0", true, false, Cxx); ("evince-3.34.3", true, false, C);
    ("amarok-2.9.0", true, false, C); ("deadbeef-1.8.2", true, false, C);
    ("qBittorrent-4.2.5", true, false, Cxx); ("pdftex-3.14159265", true, false, C);
    ("eclipse-4.11", true, false, C); ("VS Code-1.40.2", true, false, Cxx);
    ("VirtualBox-5.2.34", true, true, Cxx); ("gv-3.7.4", true, true, C);
    ("okular-1.3.3", true, true, Cxx); ("gcc-7.5", true, true, C);
    ("wkhtmltopdf-0.12.4", true, true, C); ("firefox-78.0.2", true, true, Cxx);
    ("qemu-system-2.11.1", true, true, C); ("ThunderBird-68.10.0", true, true, Cxx);
    ("Smuxi-Server", true, true, C); ("TeamViewer-15.0.8397", false, false, Cxx);
    ("skype-8.55.0.141", false, false, Cxx); ("trillian-6.1.0.5", false, false, Cxx);
    ("opera-65.0.3467.69", false, false, Cxx); ("yandex-browser-19.12.3", false, false, Cxx);
    ("SpiderOakONE-7.5.01", false, false, C); ("slack-4.2.0", false, false, Cxx);
    ("rainlendar2-2.15.2", false, false, Cxx); ("sublime-3211", false, false, Cxx);
    ("netease-cloud-music-1.2.1", false, false, Cxx); ("wps-11.1.0.8865", false, false, Cxx);
    ("wpp-11.1.0.8865", false, false, Cxx); ("wpspdf-11.1.0.8865", false, false, Cxx);
    ("wpsoffice-11.1.0.8865", false, false, Cxx); ("ida64-7.2", false, false, Cxx);
    ("zoom-7.19.2020", false, false, Cxx); ("binaryninja-1.2", false, true, Cxx);
    ("FoxitReader-4.4.0911", false, true, Cxx);
  ]

(** Generate the wild corpus: 43 binaries, symbols kept on the 11 flagged
    rows.  FoxitReader carries symbol-only assembly functions so its
    FDE-vs-symbol ratio dips below 100%, as in Table I. *)
let wild () =
  List.mapi
    (fun i (wname, open_source, has_symbols, wlang) ->
      let seed = Hashtbl.hash (master_seed, "wild", wname) in
      let rng = Fetch_util.Prng.create seed in
      let compiler =
        if i mod 3 = 0 then Profile.Synthllvm else Profile.Synthgcc
      in
      let profile = Profile.make compiler Profile.O2 in
      let spec =
        {
          Gen.default_spec with
          n_funcs = Fetch_util.Prng.range rng 120 260;
          cxx = (wlang = Cxx);
          strip = not has_symbols;
          n_asm_called = (if wname = "FoxitReader-4.4.0911" then 2 else 0);
        }
      in
      let program = Gen.program rng profile spec in
      let built = Link.build ~profile ~rng program in
      ({ wname; open_source; has_symbols; wlang }, built))
    wild_rows
