(** Per-scenario robustness evaluation over the adversarial corpus.

    Runs FETCH and every baseline of {!Fetch_baselines.Tools.all} over
    each {!Fetch_synth.Adversary} scenario and reports per-scenario F1
    plus the drop against the ["clean"] control — the quantitative form
    of the paper's robustness claim: detection anchored in exception
    handling information degrades less under adversarial layout than
    detection anchored in byte patterns. *)

open Fetch_synth
open Fetch_baselines

type cell = {
  mutable bins : int;
  mutable n_true : int;
  mutable n_detected : int;
  mutable fp : int;
  mutable fn : int;
  mutable seconds : float;
}

type row = {
  scenario : string;
  tool : string;
  bins : int;
  n_true : int;
  n_detected : int;
  fp : int;
  fn : int;
  precision : float;  (** in [0,1] *)
  recall : float;  (** in [0,1] *)
  f1 : float;  (** in [0,1] *)
  delta_f1 : float option;
      (** [f1(clean) - f1] for the same tool; [None] on the control *)
}

type report = { scale : float; bins_per_scenario : int; rows : row list }

(* Scenario corpora reuse the same seed sequence so that, as far as the
   profiles allow, scenario i's binary k perturbs the same program as
   clean's binary k. *)
let bins_full = 8
let seed_for bin = Hashtbl.hash (0xad5ca1e, "adversarial", bin)

let pr_rec_f1 ~n_true ~n_detected ~fn =
  let tp = n_true - fn in
  let precision =
    if n_detected = 0 then if tp = 0 then 1.0 else 0.0
    else float_of_int tp /. float_of_int n_detected
  in
  let recall =
    if n_true = 0 then 1.0 else float_of_int tp /. float_of_int n_true
  in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  (precision, recall, f1)

let scenarios_of ?only () =
  match only with
  | None -> Adversary.all
  | Some ids ->
      let sel =
        List.filter (fun (s : Adversary.t) -> List.mem s.id ids) Adversary.all
      in
      (* deltas are relative to the control, so it always runs *)
      if List.exists (fun (s : Adversary.t) -> s.id = "clean") sel then sel
      else
        (match Adversary.find "clean" with
        | Some c -> c :: sel
        | None -> sel)

let run ?(scale = 1.0) ?only () =
  let n_bins =
    max 1 (int_of_float ((float_of_int bins_full *. scale) +. 0.5))
  in
  let scenarios = scenarios_of ?only () in
  let cells : (string * string, cell) Hashtbl.t = Hashtbl.create 64 in
  let cell scenario tool =
    match Hashtbl.find_opt cells (scenario, tool) with
    | Some c -> c
    | None ->
        let c =
          { bins = 0; n_true = 0; n_detected = 0; fp = 0; fn = 0; seconds = 0.0 }
        in
        Hashtbl.replace cells (scenario, tool) c;
        c
  in
  List.iter
    (fun (sc : Adversary.t) ->
      for bin = 0 to n_bins - 1 do
        let built = Adversary.build sc ~seed:(seed_for bin) in
        let stripped = Fetch_elf.Image.strip built.image in
        let loaded = Fetch_analysis.Loaded.load stripped in
        List.iter
          (fun (tool : Tools.t) ->
            let detected, dt =
              Fetch_obs.Clock.time_s (fun () ->
                  if tool.loads loaded then tool.detect loaded else [])
            in
            let m = Metrics.score built.truth detected in
            let c = cell sc.id tool.name in
            c.bins <- c.bins + 1;
            c.n_true <- c.n_true + m.n_true;
            c.n_detected <- c.n_detected + m.n_detected;
            c.fp <- c.fp + List.length m.fp;
            c.fn <- c.fn + List.length m.fn;
            c.seconds <- c.seconds +. dt)
          Tools.all
      done)
    scenarios;
  let f1_clean tool =
    match Hashtbl.find_opt cells ("clean", tool) with
    | None -> None
    | Some c ->
        let _, _, f1 =
          pr_rec_f1 ~n_true:c.n_true ~n_detected:c.n_detected ~fn:c.fn
        in
        Some f1
  in
  let rows =
    List.concat_map
      (fun (sc : Adversary.t) ->
        List.filter_map
          (fun (tool : Tools.t) ->
            match Hashtbl.find_opt cells (sc.id, tool.name) with
            | None -> None
            | Some c ->
                let precision, recall, f1 =
                  pr_rec_f1 ~n_true:c.n_true ~n_detected:c.n_detected ~fn:c.fn
                in
                let delta_f1 =
                  if sc.id = "clean" then None
                  else
                    Option.map (fun clean -> clean -. f1) (f1_clean tool.name)
                in
                Some
                  {
                    scenario = sc.id;
                    tool = tool.name;
                    bins = c.bins;
                    n_true = c.n_true;
                    n_detected = c.n_detected;
                    fp = c.fp;
                    fn = c.fn;
                    precision;
                    recall;
                    f1;
                    delta_f1;
                  })
          Tools.all)
      scenarios
  in
  { scale; bins_per_scenario = n_bins; rows }

let find_row t ~scenario ~tool =
  List.find_opt (fun r -> r.scenario = scenario && r.tool = tool) t.rows

(* ---- regression floors (CI gate) ---- *)

(** FETCH rows whose F1 fell below the scenario's recorded floor:
    [(scenario, f1, floor)]. *)
let floor_failures t =
  List.filter_map
    (fun r ->
      if r.tool <> "FETCH" then None
      else
        match Adversary.find r.scenario with
        | Some sc when r.f1 < sc.fetch_floor ->
            Some (r.scenario, r.f1, sc.fetch_floor)
        | _ -> None)
    t.rows

(* ---- rendering ---- *)

let pct f = Printf.sprintf "%.2f" (100.0 *. f)

let scenario_order t =
  List.filter
    (fun id -> List.exists (fun r -> r.scenario = id) t.rows)
    (Adversary.ids ())

let tool_names = List.map (fun (tool : Tools.t) -> tool.name) Tools.all

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Adversarial robustness: F1 (%%) per scenario, %d binar%s each\n"
       t.bins_per_scenario
       (if t.bins_per_scenario = 1 then "y" else "ies"));
  let header = "SCENARIO" :: tool_names in
  let rows =
    List.map
      (fun id ->
        id
        :: List.map
             (fun tool ->
               match find_row t ~scenario:id ~tool with
               | Some r -> pct r.f1
               | None -> "-")
             tool_names)
      (scenario_order t)
  in
  Buffer.add_string buf (Fetch_util.Text_table.render ~header rows);
  let delta_ids =
    List.filter (fun id -> id <> "clean") (scenario_order t)
  in
  if delta_ids <> [] then begin
    Buffer.add_string buf
      "\nF1 drop vs clean (percentage points; smaller = more robust)\n";
    let rows =
      List.map
        (fun id ->
          id
          :: List.map
               (fun tool ->
                 match find_row t ~scenario:id ~tool with
                 | Some { delta_f1 = Some d; _ } -> pct d
                 | _ -> "-")
               tool_names)
        delta_ids
    in
    Buffer.add_string buf (Fetch_util.Text_table.render ~header rows)
  end;
  Buffer.contents buf

let json_lines t =
  let buf = Buffer.create 2048 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"scenario\":%S,\"tool\":%S,\"bins\":%d,\"n_true\":%d,\
            \"n_detected\":%d,\"fp\":%d,\"fn\":%d,\"precision\":%.4f,\
            \"recall\":%.4f,\"f1\":%.4f%s}\n"
           r.scenario r.tool r.bins r.n_true r.n_detected r.fp r.fn r.precision
           r.recall r.f1
           (match r.delta_f1 with
           | None -> ""
           | Some d -> Printf.sprintf ",\"delta_f1\":%.4f" d)))
    t.rows;
  Buffer.contents buf
