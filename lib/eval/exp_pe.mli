(** §VII-B generality study: repackage a slice of the corpus as x64 PE
    binaries and measure the exception directory's function coverage (the
    paper's preliminary "at least 70%"). *)

type tally = {
  mutable bins : int;
  mutable fns : int;
  mutable covered : int;
  mutable leaf_misses : int;
  mutable other_misses : int;
  mutable multi_part_records : int;
  mutable skipped : (string * string) list;
      (** binaries whose PE round-trip failed to decode: (id, error),
          recorded and skipped so one bad binary can't abort the run *)
}

val run : ?scale:float -> unit -> tally
val render : tally -> string
