(** Detection metrics against ground truth: false positives / negatives,
    full-coverage and full-accuracy counts (the units of Figure 5), and
    small aggregation helpers. *)

open Fetch_synth

type t = {
  n_true : int;
  n_detected : int;
  fp : int list;
  fn : int list;
}

module IS = Set.Make (Int)

let score (truth : Truth.t) detected =
  let truth_set = IS.of_list (Truth.starts truth) in
  let det_set = IS.of_list detected in
  {
    n_true = IS.cardinal truth_set;
    n_detected = IS.cardinal det_set;
    fp = IS.elements (IS.diff det_set truth_set);
    fn = IS.elements (IS.diff truth_set det_set);
  }

let score_lists ~truth ~detected =
  let truth_set = IS.of_list truth in
  let det_set = IS.of_list detected in
  {
    n_true = IS.cardinal truth_set;
    n_detected = IS.cardinal det_set;
    fp = IS.elements (IS.diff det_set truth_set);
    fn = IS.elements (IS.diff truth_set det_set);
  }

let full_coverage m = m.fn = []
let full_accuracy m = m.fp = []

type totals = {
  mutable bins : int;
  mutable fns_total : int;
  mutable fp_total : int;
  mutable fn_total : int;
  mutable full_cov : int;
  mutable full_acc : int;
}

let totals () =
  { bins = 0; fns_total = 0; fp_total = 0; fn_total = 0; full_cov = 0; full_acc = 0 }

let add totals m =
  totals.bins <- totals.bins + 1;
  totals.fns_total <- totals.fns_total + m.n_true;
  totals.fp_total <- totals.fp_total + List.length m.fp;
  totals.fn_total <- totals.fn_total + List.length m.fn;
  if full_coverage m then totals.full_cov <- totals.full_cov + 1;
  if full_accuracy m then totals.full_acc <- totals.full_acc + 1

(** Precision/recall for the stack-height comparison (Table IV): compare
    analysis heights against the oracle at the given addresses. *)
type pre_rec = { reported : int; correct : int; expected : int }

let empty_pre_rec = { reported = 0; correct = 0; expected = 0 }

let add_pre_rec a b =
  {
    reported = a.reported + b.reported;
    correct = a.correct + b.correct;
    expected = a.expected + b.expected;
  }

let precision pr =
  if pr.reported = 0 then 100.0
  else 100.0 *. float_of_int pr.correct /. float_of_int pr.reported

let recall pr =
  if pr.expected = 0 then 100.0
  else 100.0 *. float_of_int pr.correct /. float_of_int pr.expected
