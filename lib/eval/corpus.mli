(** Corpus specifications mirroring the paper's two datasets.

    Dataset 2 (Table II): 179 "programs" across 22 projects, each compiled
    with both synthetic compilers at O2/O3/Os/Ofast (1,432 binaries at
    full scale).  Dataset 1 (Table I): 43 "wild" binaries, 11 of which
    carry symbols.  Everything derives deterministically from a master
    seed. *)

type lang = C | Cxx | Mixed

type project = {
  pname : string;
  ptype : string;
  n_programs : int;
  lang : lang;
  funcs : int * int;  (** per-binary function count range *)
  asm : Fetch_synth.Gen.spec -> Fetch_synth.Gen.spec;
      (** per-project assembly-function mix *)
}

(** The 22 Table II rows. *)
val projects : project list

type binary = {
  id : string;
  project : project;
  profile : Fetch_synth.Profile.t;
  built : Fetch_synth.Link.built;
}

val master_seed : int

(** One deterministic build job: [build] derives the binary from the
    job's own sub-seed, so jobs run in any order — or on any domain —
    and produce identical binaries. *)
type job = { job_id : string; build : unit -> binary }

(** Enumerate the self-built corpus as build jobs without building
    anything, in {!fold_selfbuilt} traversal order. *)
val jobs_selfbuilt : ?scale:float -> ?only:string list -> unit -> job list

(** Fold over the self-built corpus.  [scale] in (0, 1] shrinks each
    project's program count (at least one program each); [only] restricts
    to the named projects.  Binaries are generated on the fly and never
    retained. *)
val fold_selfbuilt :
  ?scale:float ->
  ?only:string list ->
  init:'a ->
  ('a -> binary -> 'a) ->
  'a

(** Map over the self-built corpus on a domain pool: each job
    (generation + the callback) is one isolated task.  Results are in
    {!fold_selfbuilt} traversal order; a raising task yields an [Error]
    labelled with the binary id instead of aborting the batch. *)
val map_selfbuilt_par :
  Fetch_par.Pool.t ->
  ?scale:float ->
  ?only:string list ->
  (binary -> 'b) ->
  ('b, Fetch_par.Pool.failure) result list

(** Number of binaries a [fold_selfbuilt] at this scale visits. *)
val count_selfbuilt : ?scale:float -> unit -> int

(** {1 Dataset 1} *)

type wild_meta = {
  wname : string;
  open_source : bool;
  has_symbols : bool;
  wlang : lang;
}

(** The 43 Table I rows (name, open-source, symbols, language). *)
val wild_rows : (string * bool * bool * lang) list

(** Generate the wild corpus; symbols kept on the 11 flagged rows. *)
val wild : unit -> (wild_meta * Fetch_synth.Link.built) list
