(** Dataset experiments: Table I (wild binaries), Table II (self-built
    corpus) and Q1 (§IV-B, FDE coverage vs symbols and vs ground truth). *)

open Fetch_synth
module IS = Set.Make (Int)

let fde_start_set (built : Link.built) =
  let eh = Fetch_dwarf.Eh_frame.of_image built.image in
  IS.of_list
    (List.map
       (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.pc_begin)
       (Fetch_dwarf.Eh_frame.all_fdes eh.cies))

let symbol_set (built : Link.built) =
  IS.of_list
    (List.map
       (fun (s : Fetch_elf.Image.symbol) -> s.value)
       (Fetch_elf.Image.func_symbols built.image))

(** Table I: wild binaries — eh_frame presence and FDE-vs-symbol ratio for
    the binaries that have symbols. *)
let table1 () =
  let buf = Buffer.create 1024 in
  let rows = ref [] in
  let total_syms = ref 0 and covered_syms = ref 0 in
  List.iter
    (fun ((meta : Corpus.wild_meta), built) ->
      let fdes = fde_start_set built in
      let syms = symbol_set built in
      let ratio =
        if IS.is_empty syms then "-"
        else begin
          let cov = IS.cardinal (IS.inter syms fdes) in
          total_syms := !total_syms + IS.cardinal syms;
          covered_syms := !covered_syms + cov;
          Printf.sprintf "%.2f"
            (100.0 *. float_of_int cov /. float_of_int (IS.cardinal syms))
        end
      in
      rows :=
        [
          meta.wname;
          (if meta.open_source then "y" else "n");
          (if not (IS.is_empty fdes) then "y" else "n");
          (if meta.has_symbols then "y" else "n");
          ratio;
        ]
        :: !rows)
    (Corpus.wild ());
  Buffer.add_string buf
    "Table I: wild binaries (Open / EHF / Sym / FDE-vs-symbol ratio)\n";
  Buffer.add_string buf
    (Fetch_util.Text_table.render
       ~header:[ "Software"; "Open"; "EHF"; "Sym"; "FDE%" ]
       (List.rev !rows));
  Buffer.add_string buf
    (Printf.sprintf
       "Aggregate FDE coverage of symbols: %.2f%%  (paper: 99.99%%)\n"
       (100.0 *. float_of_int !covered_syms /. float_of_int (max 1 !total_syms)));
  Buffer.contents buf

(** Table II + Q1 over the self-built corpus: per-project FDE-vs-symbol
    ratio, then FDE-vs-ground-truth coverage with miss classification. *)
let table2_q1 ?(scale = 1.0) () =
  let per_project : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  (* Q1 tallies *)
  let total_fns = ref 0 in
  let covered_fns = ref 0 in
  let bins = ref 0 in
  let bins_with_miss = ref 0 in
  let missed_asm = ref 0 in
  let missed_clang_term = ref 0 in
  let missed_other = ref 0 in
  let total_syms = ref 0 and covered_syms = ref 0 in
  let () =
    Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
        let fdes = fde_start_set bin.built in
        let syms = symbol_set bin.built in
        let cov_syms = IS.cardinal (IS.inter syms fdes) in
        total_syms := !total_syms + IS.cardinal syms;
        covered_syms := !covered_syms + cov_syms;
        let prev_c, prev_t =
          Option.value ~default:(0, 0)
            (Hashtbl.find_opt per_project bin.project.pname)
        in
        Hashtbl.replace per_project bin.project.pname
          (prev_c + cov_syms, prev_t + IS.cardinal syms);
        (* ground truth comparison *)
        incr bins;
        let missed_here = ref 0 in
        List.iter
          (fun (f : Truth.fn_truth) ->
            incr total_fns;
            if IS.mem f.start fdes then incr covered_fns
            else begin
              incr missed_here;
              if f.name = "__clang_call_terminate" then incr missed_clang_term
              else if f.is_assembly then incr missed_asm
              else incr missed_other
            end)
          bin.built.truth.fns;
        if !missed_here > 0 then incr bins_with_miss)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Table II: self-built corpus, FDE-vs-symbol ratio per project\n";
  let rows =
    List.map
      (fun (p : Corpus.project) ->
        let c, t = Option.value ~default:(0, 0) (Hashtbl.find_opt per_project p.pname) in
        [
          p.pname;
          p.ptype;
          string_of_int (max 1 (int_of_float (float_of_int p.n_programs *. scale)));
          "y";
          (if t = 0 then "-" else Printf.sprintf "%.2f" (100.0 *. float_of_int c /. float_of_int t));
          (match p.lang with Corpus.C -> "C" | Corpus.Cxx -> "C++" | Corpus.Mixed -> "C/C++");
        ])
      Corpus.projects
  in
  Buffer.add_string buf
    (Fetch_util.Text_table.render
       ~header:[ "Project"; "Type"; "#Prog"; "EHF"; "FDE%"; "Lang" ]
       rows);
  Buffer.add_string buf
    (Printf.sprintf "Aggregate FDE coverage of symbols: %.2f%%  (paper: 99.87%%)\n\n"
       (100.0 *. float_of_int !covered_syms /. float_of_int (max 1 !total_syms)));
  Buffer.add_string buf "Q1 (SIV-B): FDE PC-Begin vs compiler ground truth\n";
  Buffer.add_string buf
    (Printf.sprintf "  binaries: %d; functions: %d; covered by FDEs: %d (%.2f%%)  (paper: 99.87%%)\n"
       !bins !total_fns !covered_fns
       (100.0 *. float_of_int !covered_fns /. float_of_int (max 1 !total_fns)));
  Buffer.add_string buf
    (Printf.sprintf "  binaries with missed functions: %d  (paper: 33 of 1,352)\n"
       !bins_with_miss);
  Buffer.add_string buf
    (Printf.sprintf
       "  missed: %d assembly functions, %d __clang_call_terminate, %d other  (paper: 1,330 asm of 1,446)\n"
       !missed_asm !missed_clang_term !missed_other);
  Buffer.contents buf
