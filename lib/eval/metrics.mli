(** Detection metrics against ground truth: false positives / negatives,
    full-coverage and full-accuracy counts (the units of Figure 5), and
    aggregation helpers. *)

type t = {
  n_true : int;
  n_detected : int;
  fp : int list;  (** detected starts that are not true starts, ascending *)
  fn : int list;  (** true starts not detected, ascending *)
}

val score : Fetch_synth.Truth.t -> int list -> t

(** [score_lists ~truth detected] scores a raw start list against a raw
    truth list (both deduplicated as sets) — the CLI's path when truth
    comes from a manifest file rather than a {!Fetch_synth.Truth.t}.
    Set-based, so scoring stays linearithmic where the naive
    list-membership scan is quadratic. *)
val score_lists : truth:int list -> detected:int list -> t
val full_coverage : t -> bool
val full_accuracy : t -> bool

type totals = {
  mutable bins : int;
  mutable fns_total : int;
  mutable fp_total : int;
  mutable fn_total : int;
  mutable full_cov : int;
  mutable full_acc : int;
}

val totals : unit -> totals
val add : totals -> t -> unit

(** {1 Precision/recall for the Table IV comparison} *)

type pre_rec = { reported : int; correct : int; expected : int }

val empty_pre_rec : pre_rec
val add_pre_rec : pre_rec -> pre_rec -> pre_rec

(** Percent; empty denominators count as 100. *)
val precision : pre_rec -> float

val recall : pre_rec -> float
