(** Per-scenario robustness evaluation: FETCH and every baseline scored
    over each {!Fetch_synth.Adversary} scenario, with F1 deltas against
    the ["clean"] control corpus. *)

type row = {
  scenario : string;
  tool : string;
  bins : int;
  n_true : int;
  n_detected : int;
  fp : int;
  fn : int;
  precision : float;  (** in [0,1] *)
  recall : float;  (** in [0,1] *)
  f1 : float;  (** in [0,1] *)
  delta_f1 : float option;
      (** [f1(clean) - f1] for the same tool; [None] on the control *)
}

type report = { scale : float; bins_per_scenario : int; rows : row list }

(** [run ?scale ?only ()] builds each scenario's corpus ([scale] shrinks
    the per-scenario binary count, floor 1) and scores every tool on
    every binary.  [only] restricts to the named scenarios; the ["clean"]
    control always runs so deltas stay defined. *)
val run : ?scale:float -> ?only:string list -> unit -> report

val find_row : report -> scenario:string -> tool:string -> row option

(** FETCH rows below their scenario's {!Fetch_synth.Adversary.t.fetch_floor}:
    [(scenario, f1, floor)]; empty means the gate passes. *)
val floor_failures : report -> (string * float * float) list

(** Text tables: per-scenario F1 and the drop vs clean. *)
val render : report -> string

(** One JSON object per (scenario, tool) row. *)
val json_lines : report -> string
