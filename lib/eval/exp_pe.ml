(** §VII-B generality study: repackage a slice of the corpus as x64 PE
    binaries and measure how many functions the exception directory
    ([.pdata] RUNTIME_FUNCTION records) covers.

    The paper's preliminary result: "at least 70% of the functions are
    covered by this structure" — the gap being leaf functions, which the
    Windows x64 unwind ABI exempts from unwind data (unlike System-V,
    which mandates FDEs for everything). *)

open Fetch_synth

type tally = {
  mutable bins : int;
  mutable fns : int;
  mutable covered : int;
  mutable leaf_misses : int;
  mutable other_misses : int;
  mutable multi_part_records : int;
  mutable skipped : (string * string) list;
      (** binaries whose PE round-trip failed to decode: (id, error),
          recorded and skipped so one bad binary can't abort the run *)
}

let run ?(scale = 1.0) () =
  let t =
    { bins = 0; fns = 0; covered = 0; leaf_misses = 0; other_misses = 0;
      multi_part_records = 0; skipped = [] }
  in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      let pe = Fetch_pe.Pe_gen.of_built bin.built in
      (* round-trip through real PE bytes *)
      let raw = Fetch_pe.Encode.encode pe in
      match Fetch_pe.Decode.decode raw with
      | Error e -> t.skipped <- (bin.id, e) :: t.skipped
      | Ok pe ->
      t.bins <- t.bins + 1;
      let starts =
        List.map
          (fun (rf : Fetch_pe.Image.runtime_function) -> rf.begin_rva + 0x400000)
          pe.pdata
        |> List.sort_uniq compare
      in
      List.iter
        (fun (f : Truth.fn_truth) ->
          t.fns <- t.fns + 1;
          if List.mem f.start starts then begin
            t.covered <- t.covered + 1;
            if List.length f.parts > 1 then
              t.multi_part_records <- t.multi_part_records + 1
          end
          else if f.leaf then t.leaf_misses <- t.leaf_misses + 1
          else t.other_misses <- t.other_misses + 1)
        bin.built.truth.fns)
    ;
  t

let render (t : tally) =
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  String.concat "\n"
    ([
      "SVII-B generality study: x64 PE exception directory coverage";
      Printf.sprintf "  binaries repacked as PE32+: %d; functions: %d" t.bins t.fns;
      Printf.sprintf
        "  covered by RUNTIME_FUNCTION records: %d (%.2f%%)  (paper: \"at least 70%%\")"
        t.covered (pct t.covered t.fns);
      Printf.sprintf
        "  uncovered: %d leaf functions (ABI-exempt), %d other" t.leaf_misses
        t.other_misses;
      Printf.sprintf
        "  non-contiguous functions with extra per-part records: %d (the PE\n\
        \  analogue of the FDE false-start problem of SV-A)"
        t.multi_part_records;
    ]
    @ (match t.skipped with
      | [] -> []
      | l ->
          Printf.sprintf "  WARNING: %d binaries skipped (PE decode failed):"
            (List.length l)
          :: List.rev_map
               (fun (id, e) -> Printf.sprintf "    %s: %s" id e)
               l)
    @ [ "" ])
