(** Table III (FP/FN per tool per optimization level) and Table V (mean
    per-binary analysis time) over the stripped self-built corpus. *)

open Fetch_synth
open Fetch_baselines

type cell = {
  mutable fp : int;
  mutable fn : int;
  mutable bins : int;
  mutable seconds : float;
}

let run ?(scale = 1.0) () =
  let cells : (string * Profile.opt, cell) Hashtbl.t = Hashtbl.create 64 in
  let cell tool opt =
    match Hashtbl.find_opt cells (tool, opt) with
    | Some c -> c
    | None ->
        let c = { fp = 0; fn = 0; bins = 0; seconds = 0.0 } in
        Hashtbl.replace cells (tool, opt) c;
        c
  in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      let stripped = Fetch_elf.Image.strip bin.built.image in
      let loaded = Fetch_analysis.Loaded.load stripped in
      List.iter
        (fun (tool : Tools.t) ->
          (* wall clock, not CPU time: Table V reports elapsed time *)
          let detected, dt =
            Fetch_obs.Clock.time_s (fun () ->
                if tool.loads loaded then tool.detect loaded else [])
          in
          let m = Metrics.score bin.built.truth detected in
          let c = cell tool.name bin.profile.opt in
          c.fp <- c.fp + List.length m.fp;
          c.fn <- c.fn + List.length m.fn;
          c.bins <- c.bins + 1;
          c.seconds <- c.seconds +. dt)
        Tools.all);
  cells

let render cells =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Table III: false positives / false negatives per tool and optimization level\n";
  let header =
    "OPT" :: List.concat_map (fun (t : Tools.t) -> [ t.name ^ " FP"; "FN" ]) Tools.all
  in
  let opt_rows =
    List.map
      (fun opt ->
        Profile.opt_name opt
        :: List.concat_map
             (fun (t : Tools.t) ->
               match Hashtbl.find_opt cells (t.name, opt) with
               | Some c -> [ string_of_int c.fp; string_of_int c.fn ]
               | None -> [ "-"; "-" ])
             Tools.all)
      Profile.all_opts
  in
  let avg_row =
    "Avg."
    :: List.concat_map
         (fun (t : Tools.t) ->
           let fp, fn, n =
             List.fold_left
               (fun (fp, fn, n) opt ->
                 match Hashtbl.find_opt cells (t.name, opt) with
                 | Some c -> (fp + c.fp, fn + c.fn, n + 1)
                 | None -> (fp, fn, n))
               (0, 0, 0) Profile.all_opts
           in
           if n = 0 then [ "-"; "-" ]
           else
             [
               Printf.sprintf "%.1f" (float_of_int fp /. float_of_int n);
               Printf.sprintf "%.1f" (float_of_int fn /. float_of_int n);
             ])
         Tools.all
  in
  Buffer.add_string buf
    (Fetch_util.Text_table.render ~header (opt_rows @ [ avg_row ]));
  Buffer.add_string buf
    "\nPaper shape: FETCH best coverage everywhere and best accuracy except Ofast;\n\
     BAP worst FPs; DYNINST/RADARE2 high FNs; ANGR best-coverage non-FETCH tool.\n\n";
  Buffer.add_string buf "Table V: mean analysis time per binary (milliseconds)\n";
  let time_rows =
    [
      List.map
        (fun (t : Tools.t) ->
          let secs, bins =
            List.fold_left
              (fun (s, b) opt ->
                match Hashtbl.find_opt cells (t.name, opt) with
                | Some c -> (s +. c.seconds, b + c.bins)
                | None -> (s, b))
              (0.0, 0) Profile.all_opts
          in
          if bins = 0 then "-"
          else Printf.sprintf "%.2f" (1000.0 *. secs /. float_of_int bins))
        Tools.all;
    ]
  in
  Buffer.add_string buf
    (Fetch_util.Text_table.render
       ~header:(List.map (fun (t : Tools.t) -> t.name) Tools.all)
       time_rows);
  Buffer.add_string buf
    "(paper, seconds on their corpus: DYNINST 2.8, BAP 114.2, RADARE2 34.9,\n\
    \ NUCLEUS 3.1, GHIDRA 40.4, ANGR 78.5, IDA 10.3, NINJA 20.4, FETCH 3.3)\n";
  Buffer.contents buf
