(** Content-addressed analysis cache with an LRU byte budget.

    Two levels, one budget:

    - {e result} entries — keyed by the digest of the whole binary's
      bytes, holding the serialized {!Fetch_core.Summary} payload.  A
      hit answers the request without touching the pipeline at all.
    - {e eh} entries — keyed by the digest of the [.eh_frame] section's
      (virtual address, bytes) pair, holding the decoded section.  A
      re-linked binary with unchanged CFI misses the result level but
      hits here and skips the [.eh_frame] decode stage.  Only decodes
      with [indirect_derefs = 0] are stored: an indirect pointer reads
      {e other} sections, so such a decode is not a function of the
      [.eh_frame] bytes alone.

    Both levels share one LRU list and one byte budget; inserting past
    the budget evicts least-recently-used entries (of either kind)
    until the new entry fits.  An entry larger than the whole budget is
    not stored.  Sizes are the payload's string length for result
    entries and the section's byte length for eh entries (the decoded
    structure is proportional to it).

    Not thread-safe: the serve engine confines every access to its
    dispatch thread. *)

type t

(** Cache keys are hex digests — derive them with {!binary_key} /
    {!eh_key}. *)
type key = string

(** Digest of a whole binary's bytes. *)
val binary_key : string -> key

(** Digest of the [.eh_frame] section's (address, bytes) pair; [None]
    when the image has no [.eh_frame] section (nothing to share). *)
val eh_key : Fetch_elf.Image.t -> key option

val create : max_bytes:int -> t

(** {2 Result level} *)

val find : t -> key -> string option
val add : t -> key -> string -> unit

(** {2 eh level} *)

val find_eh : t -> key -> Fetch_dwarf.Eh_frame.decoded option

(** [add_eh t k ~size eh] stores the decode; no-op when
    [eh.indirect_derefs > 0] (see above) — callers don't need to
    check. *)
val add_eh : t -> key -> size:int -> Fetch_dwarf.Eh_frame.decoded -> unit

(** {2 Introspection} *)

type stats = {
  entries : int;  (** live entries, both levels *)
  bytes : int;  (** charged bytes, both levels *)
  max_bytes : int;
  hits : int;  (** result-level hits *)
  misses : int;  (** result-level misses *)
  eh_hits : int;
  evictions : int;  (** entries evicted by the byte budget *)
  rejected_oversize : int;  (** inserts skipped: entry alone > budget *)
}

val stats : t -> stats

(** One JSON object (the [stats] response's ["cache"] field). *)
val stats_json : t -> string
