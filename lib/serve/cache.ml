(** Two-level content-addressed LRU cache — semantics in the mli. *)

module Obs = Fetch_obs.Trace

(* serve.cache.* meters: hit-rate and eviction pressure.  The plain
   [stats] record below is the live source of truth (the stats request
   must work even when no trace run is recording); these counters mirror
   it into instrumented runs. *)
let c_hit = Obs.counter "serve.cache.hit"
let c_miss = Obs.counter "serve.cache.miss"
let c_eh_hit = Obs.counter "serve.cache.eh_hit"
let c_evict = Obs.counter "serve.cache.evictions"

type key = string

let binary_key bytes = Digest.to_hex (Digest.string bytes)

let eh_key img =
  match Fetch_elf.Image.section img ".eh_frame" with
  | None -> None
  | Some s ->
      Some (Digest.to_hex (Digest.string (string_of_int s.addr ^ ":" ^ s.data)))

type value = Payload of string | Eh of Fetch_dwarf.Eh_frame.decoded

(* Intrusive doubly-linked LRU list, most-recent at [head].  [prev]
   points toward the head. *)
type node = {
  nkey : string;
  value : value;
  size : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  max_bytes : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable eh_hits : int;
  mutable evictions : int;
  mutable rejected_oversize : int;
}

let create ~max_bytes =
  {
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    max_bytes = max 0 max_bytes;
    bytes = 0;
    hits = 0;
    misses = 0;
    eh_hits = 0;
    evictions = 0;
    rejected_oversize = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.bytes <- t.bytes - n.size;
      t.evictions <- t.evictions + 1;
      Obs.incr c_evict

(* The two levels share the key space via a tag prefix, so a binary
   digest and an eh digest can never collide. *)
let bin_tag k = "bin:" ^ k
let eh_tag k = "eh:" ^ k

let insert t key value size =
  if size > t.max_bytes then t.rejected_oversize <- t.rejected_oversize + 1
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
        unlink t old;
        Hashtbl.remove t.tbl key;
        t.bytes <- t.bytes - old.size
    | None -> ());
    while t.bytes + size > t.max_bytes do
      evict_lru t
    done;
    let n = { nkey = key; value; size; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    t.bytes <- t.bytes + size
  end

let find t key =
  match Hashtbl.find_opt t.tbl (bin_tag key) with
  | Some ({ value = Payload p; _ } as n) ->
      touch t n;
      t.hits <- t.hits + 1;
      Obs.incr c_hit;
      Some p
  | _ ->
      t.misses <- t.misses + 1;
      Obs.incr c_miss;
      None

let add t key payload = insert t (bin_tag key) (Payload payload) (String.length payload)

let find_eh t key =
  match Hashtbl.find_opt t.tbl (eh_tag key) with
  | Some ({ value = Eh eh; _ } as n) ->
      touch t n;
      t.eh_hits <- t.eh_hits + 1;
      Obs.incr c_eh_hit;
      Some eh
  | _ -> None

let add_eh t key ~size (eh : Fetch_dwarf.Eh_frame.decoded) =
  (* an indirect pointer was read through other sections: this decode is
     not a function of the .eh_frame bytes alone and must not be shared *)
  if eh.indirect_derefs = 0 then insert t (eh_tag key) (Eh eh) (max 1 size)

type stats = {
  entries : int;
  bytes : int;
  max_bytes : int;
  hits : int;
  misses : int;
  eh_hits : int;
  evictions : int;
  rejected_oversize : int;
}

let stats t =
  {
    entries = Hashtbl.length t.tbl;
    bytes = t.bytes;
    max_bytes = t.max_bytes;
    hits = t.hits;
    misses = t.misses;
    eh_hits = t.eh_hits;
    evictions = t.evictions;
    rejected_oversize = t.rejected_oversize;
  }

let stats_json t =
  let s = stats t in
  Printf.sprintf
    "{\"entries\":%d,\"bytes\":%d,\"max_bytes\":%d,\"hits\":%d,\"misses\":%d,\"eh_hits\":%d,\"evictions\":%d,\"rejected_oversize\":%d}"
    s.entries s.bytes s.max_bytes s.hits s.misses s.eh_hits s.evictions
    s.rejected_oversize
