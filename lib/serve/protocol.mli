(** The serve daemon's wire protocol: JSON lines in, JSON lines out.

    One request per input line, one response per request, streamed back
    {e in request order}.  The full schema (field semantics, error
    codes, examples) is specified in DESIGN.md §"The serve daemon";
    this module is the single place that parses and prints it.

    Requests:
    {v
    {"op":"analyze","id":…,"path":"/bin/ls","deadline_ms":500,
     "want":["starts","eh","diags","findings"]}
    {"op":"analyze","id":…,"bytes_b64":"f0VMRg…"}
    {"op":"stats","id":…}
    v}
    [op] defaults to ["analyze"]; exactly one of [path]/[bytes_b64] must
    be present; [id] is any JSON value and is echoed verbatim; [want]
    defaults to every field group.

    Responses:
    {v
    {"id":…,"status":"ok","starts":[…],…}
    {"id":…,"status":"error","code":"bad_request","message":"…"}
    v} *)

module Json = Fetch_util.Json

(** Structured error codes (the serve daemon's whole failure surface). *)
type error_code =
  | Bad_request  (** unparsable / invalid / oversized request line *)
  | Overloaded  (** bounded queue full — the 429 shed path *)
  | Deadline_exceeded  (** [deadline_ms] elapsed before completion *)
  | Analysis_failed  (** the pipeline raised or the bytes are not ELF *)

val error_code_label : error_code -> string

(** Which field groups of the summary a response carries. *)
type want = { w_starts : bool; w_eh : bool; w_diags : bool; w_findings : bool }

val want_all : want

(** A validated analyze request. *)
type analyze = {
  source : [ `Path of string | `Bytes of string ];  (** decoded bytes *)
  deadline_ms : int option;  (** relative to receipt; must be >= 0 *)
  want : want;
}

type op = Analyze of analyze | Stats

type request = {
  id : Json.t option;  (** echoed verbatim in the response *)
  op : op;
}

(** Parse and validate one request line.  [Error msg] covers: not JSON,
    not an object, unknown [op], unknown [want] member, both or neither
    of [path]/[bytes_b64], undecodable base64, negative or non-integer
    [deadline_ms], wrong field types.  The request [id], when one could
    be recovered, is returned alongside so the error response can still
    echo it. *)
val parse_request : string -> (request, Json.t option * string) result

(** {2 Responses} (no trailing newline) *)

(** [ok_response ~id ~want summary_json] renders a success response from
    a serialized {!Fetch_core.Summary} payload (fresh or cached — same
    input, same bytes, which is what makes cached responses
    byte-identical).  Fields not selected by [want] are dropped. *)
val ok_response : id:Json.t option -> want:want -> string -> string

val error_response :
  id:Json.t option -> code:error_code -> message:string -> string

(** [stats_response ~id body] wraps an already-rendered stats JSON
    object. *)
val stats_response : id:Json.t option -> string -> string
