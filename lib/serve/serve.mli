(** IO loops for the serve daemon: stdin-JSONL and Unix-domain socket.

    Both loops are thin drivers over {!Engine} — they own no protocol
    logic.  Each reads request lines through a bounded line reader
    (lines over [max_line_bytes] are discarded up to the next newline
    and answered with a structured [bad_request], so one hostile line
    can neither kill the daemon nor desynchronise the stream), feeds
    the engine, and writes back the ordered responses as they resolve.

    - {!run_stdin} serves one session: read fd → write fd (normally
      stdin → stdout), until EOF on the read side, then flushes every
      in-flight response before returning.
    - {!run_socket} listens on a Unix-domain socket path and serves
      connections {e one at a time} (the engine — and its cache — lives
      across connections, which is the point of the daemon).  Returns
      when [should_stop ()] becomes true, polled between IO waits.

    On return both entry points write the final stats JSON and the
    Chrome trace (dispatch-loop run merged with the per-task reports
    captured by the engine) to the configured paths. *)

type config = {
  engine : Engine.config;
  max_line_bytes : int;  (** longer request lines are shed as bad_request *)
  stats_json_path : string option;  (** final {!Engine.stats_json} dump *)
  trace_chrome_path : string option;  (** merged Chrome trace dump *)
}

val default_config : config

(** Serve one JSONL session across a pair of file descriptors. *)
val run_stdin : ?config:config -> Unix.file_descr -> Unix.file_descr -> unit

(** Listen on [path] (unlinked first if it is a stale socket) and serve
    connections sequentially until [should_stop ()].  Default
    [should_stop] never stops. *)
val run_socket : ?config:config -> ?should_stop:(unit -> bool) -> string -> unit

(** {2 Exposed for tests} *)

(** Bounded line reader over a file descriptor. *)
module Line_reader : sig
  type t

  val create : ?max_line_bytes:int -> Unix.file_descr -> t

  (** One read(2) plus buffer scan.  Returns the completed items, in
      order: [`Line l] for each full line (newline stripped, length
      within bound) and [`Oversized] for each discarded over-bound
      line; [`Eof] once after the peer closes (any unterminated trailing
      bytes are delivered first, as a line).  Blocks only if the fd
      would block — callers [select] first. *)
  val step : t -> [ `Line of string | `Oversized | `Eof ] list
end
