(** Ordered request engine — contract in the mli. *)

module Obs = Fetch_obs.Trace
module Clock = Fetch_obs.Clock
module Pool = Fetch_par.Pool
module P = Protocol

(* serve.* meters.  Like the cache, the engine's own [stats] record is
   the live source of truth (stats must answer outside any trace run);
   these handles mirror it into instrumented runs on the dispatch
   domain. *)
let c_requests = Obs.counter "serve.requests"
let c_ok = Obs.counter "serve.ok"
let c_bad = Obs.counter "serve.bad_request"
let c_overloaded = Obs.counter "serve.overloaded"
let c_deadline = Obs.counter "serve.deadline_exceeded"
let c_failed = Obs.counter "serve.analysis_failed"
let c_stats = Obs.counter "serve.stats_requests"
let h_latency = Obs.histogram "serve.latency_ms"
let h_depth = Obs.histogram "serve.queue_depth"
let h_req_bytes = Obs.histogram "serve.request_bytes"

type config = {
  queue_bound : int;
  cache_bytes : int;
  domains : int;
  capture_reports : bool;
  worker_gate : (unit -> unit) option;
}

let default_config =
  {
    queue_bound = 64;
    cache_bytes = 64 * 1024 * 1024;
    domains = Pool.default_domains ();
    capture_reports = false;
    worker_gate = None;
  }

(* What a pool task hands back: the serialized summary plus the decoded
   .eh_frame (for the eh cache level), or a cooperative timeout. *)
type task_out =
  | Done of { payload : string; eh : Fetch_dwarf.Eh_frame.decoded }
  | Timed_out

type slot_state =
  | Ready of string  (* rendered response *)
  | Running of {
      fut : (task_out * Obs.report option) Pool.future;
      bin_key : Cache.key;
      eh_store : (Cache.key * int) option;
          (* eh level missed at submit: store the decode on completion *)
    }

type slot = {
  s_id : Fetch_util.Json.t option;
  s_want : P.want;
  s_start : int64;
  mutable s_state : slot_state;
}

(* A plain mutable log-2 histogram over Trace's bucket scheme, so the
   stats request can report percentiles without a live trace run. *)
type plain_hist = {
  mutable ph_count : int;
  mutable ph_sum : int;
  mutable ph_min : int;
  mutable ph_max : int;
  ph_buckets : int array;
}

let plain_hist () =
  {
    ph_count = 0;
    ph_sum = 0;
    ph_min = max_int;
    ph_max = 0;
    ph_buckets = Array.make Obs.n_buckets 0;
  }

let ph_observe h v =
  h.ph_count <- h.ph_count + 1;
  h.ph_sum <- h.ph_sum + v;
  if v < h.ph_min then h.ph_min <- v;
  if v > h.ph_max then h.ph_max <- v;
  let b = Obs.bucket_of v in
  h.ph_buckets.(b) <- h.ph_buckets.(b) + 1

let ph_stats h : Obs.hist_stats =
  if h.ph_count = 0 then Obs.empty_hist_stats
  else
    {
      count = h.ph_count;
      sum = h.ph_sum;
      min = h.ph_min;
      max = h.ph_max;
      buckets = Array.copy h.ph_buckets;
    }

type stats = {
  mutable requests : int;
  mutable ok : int;
  mutable bad_request : int;
  mutable overloaded : int;
  mutable deadline_exceeded : int;
  mutable analysis_failed : int;
  mutable stats_requests : int;
}

type t = {
  cfg : config;
  pool : Pool.t;
  cache : Cache.t;
  slots : slot Queue.t;
  st : stats;
  latency : plain_hist;
  mutable reports : Obs.report list;  (* newest first *)
}

let create ?(config = default_config) () =
  {
    cfg = config;
    pool = Pool.create ~domains:(max 1 config.domains) ();
    cache = Cache.create ~max_bytes:config.cache_bytes;
    slots = Queue.create ();
    st =
      {
        requests = 0;
        ok = 0;
        bad_request = 0;
        overloaded = 0;
        deadline_exceeded = 0;
        analysis_failed = 0;
        stats_requests = 0;
      };
    latency = plain_hist ();
    reports = [];
  }

let ns_to_ms ns = Int64.to_int (Int64.div ns 1_000_000L)

let observe_latency t (s : slot) =
  let ms = ns_to_ms (Clock.elapsed_ns s.s_start) in
  ph_observe t.latency ms;
  Obs.observe h_latency ms

(* Resolve a Running slot from its task outcome: render the response,
   bump the right counter, and write back into the cache.  Dispatch
   thread only. *)
let finalize t (s : slot) bin_key eh_store outcome =
  let response =
    match outcome with
    | Pool.Value (Done { payload; eh }, report) ->
        Cache.add t.cache bin_key payload;
        (match eh_store with
        | Some (k, size) -> Cache.add_eh t.cache k ~size eh
        | None -> ());
        (match report with
        | Some r -> t.reports <- r :: t.reports
        | None -> ());
        t.st.ok <- t.st.ok + 1;
        Obs.incr c_ok;
        P.ok_response ~id:s.s_id ~want:s.s_want payload
    | Pool.Value (Timed_out, report) ->
        (match report with
        | Some r -> t.reports <- r :: t.reports
        | None -> ());
        t.st.deadline_exceeded <- t.st.deadline_exceeded + 1;
        Obs.incr c_deadline;
        P.error_response ~id:s.s_id ~code:P.Deadline_exceeded
          ~message:"deadline exceeded"
    | Pool.Cancelled ->
        t.st.deadline_exceeded <- t.st.deadline_exceeded + 1;
        Obs.incr c_deadline;
        P.error_response ~id:s.s_id ~code:P.Deadline_exceeded
          ~message:"deadline exceeded before the task started"
    | Pool.Fail f ->
        t.st.analysis_failed <- t.st.analysis_failed + 1;
        Obs.incr c_failed;
        P.error_response ~id:s.s_id ~code:P.Analysis_failed ~message:f.f_exn
  in
  observe_latency t s;
  s.s_state <- Ready response

(* Poll every Running slot once; resolved ones become Ready in place
   (emission order is the queue order, untouched).  Returns the number
   still in flight. *)
let refresh t =
  let in_flight = ref 0 in
  Queue.iter
    (fun s ->
      match s.s_state with
      | Ready _ -> ()
      | Running { fut; bin_key; eh_store } -> (
          match Pool.poll fut with
          | Some outcome -> finalize t s bin_key eh_store outcome
          | None -> incr in_flight))
    t.slots;
  !in_flight

let push_ready t ?(latency = true) id want response =
  let s = { s_id = id; s_want = want; s_start = Clock.now_ns (); s_state = Ready response } in
  if latency then observe_latency t s;
  Queue.add s t.slots

let resolve_error t id code message =
  (match (code : P.error_code) with
  | P.Bad_request ->
      t.st.bad_request <- t.st.bad_request + 1;
      Obs.incr c_bad
  | P.Overloaded ->
      t.st.overloaded <- t.st.overloaded + 1;
      Obs.incr c_overloaded
  | P.Deadline_exceeded ->
      t.st.deadline_exceeded <- t.st.deadline_exceeded + 1;
      Obs.incr c_deadline
  | P.Analysis_failed ->
      t.st.analysis_failed <- t.st.analysis_failed + 1;
      Obs.incr c_failed);
  push_ready t id P.want_all (P.error_response ~id ~code ~message)

let stats_json t =
  let in_flight = refresh t in
  let lat = ph_stats t.latency in
  let pct p = Obs.percentile lat p in
  Printf.sprintf
    "{\"requests\":%d,\"ok\":%d,\"bad_request\":%d,\"overloaded\":%d,\"deadline_exceeded\":%d,\"analysis_failed\":%d,\"stats_requests\":%d,\"queue\":{\"bound\":%d,\"in_flight\":%d},\"latency_ms\":{\"count\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d},\"cache\":%s}"
    t.st.requests t.st.ok t.st.bad_request t.st.overloaded
    t.st.deadline_exceeded t.st.analysis_failed t.st.stats_requests
    t.cfg.queue_bound in_flight lat.count (pct 50.) (pct 90.) (pct 99.)
    lat.max
    (Cache.stats_json t.cache)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | bytes -> Ok bytes
  | exception Sys_error msg -> Error msg

let submit_analyze t id (a : P.analyze) =
  match
    match a.source with `Bytes b -> Ok b | `Path p -> read_file p
  with
  | Error msg ->
      resolve_error t id P.Analysis_failed ("cannot read input: " ^ msg)
  | Ok bytes -> (
      let bin_key = Cache.binary_key bytes in
      match Cache.find t.cache bin_key with
      | Some payload ->
          (* warm path: same renderer, same payload bytes as the cold
             response — byte-identical by construction *)
          t.st.ok <- t.st.ok + 1;
          Obs.incr c_ok;
          push_ready t id a.want (P.ok_response ~id ~want:a.want payload)
      | None -> (
          let in_flight = refresh t in
          Obs.observe h_depth in_flight;
          if in_flight >= t.cfg.queue_bound then
            resolve_error t id P.Overloaded
              (Printf.sprintf "queue full (%d in flight)" t.cfg.queue_bound)
          else
            match Fetch_elf.Decode.decode bytes with
            | Error e ->
                resolve_error t id P.Analysis_failed ("not a loadable ELF: " ^ e)
            | Ok image ->
                let start = Clock.now_ns () in
                let deadline =
                  Option.map
                    (fun ms ->
                      Int64.add start (Int64.mul (Int64.of_int ms) 1_000_000L))
                    a.deadline_ms
                in
                let expired () =
                  match deadline with
                  | None -> false
                  | Some d -> Clock.now_ns () >= d
                in
                let eh, eh_store =
                  match Cache.eh_key image with
                  | None -> (None, None)
                  | Some k -> (
                      match Cache.find_eh t.cache k with
                      | Some d -> (Some d, None)
                      | None ->
                          let size =
                            match Fetch_elf.Image.section image ".eh_frame" with
                            | Some s -> String.length s.data
                            | None -> 0
                          in
                          (None, Some (k, size)))
                in
                let gate = t.cfg.worker_gate in
                let capture = t.cfg.capture_reports in
                let body () =
                  (match gate with Some g -> g () | None -> ());
                  if expired () then Timed_out
                  else
                    let loaded = Fetch_analysis.Loaded.load ?eh image in
                    if expired () then Timed_out
                    else
                      let r = Fetch_core.Pipeline.run_loaded loaded in
                      if expired () then Timed_out
                      else
                        let summary = Fetch_core.Summary.of_result r in
                        Done
                          {
                            payload = Fetch_core.Summary.to_json summary;
                            eh = r.eh_frame;
                          }
                in
                let task () =
                  if capture then
                    let v, report = Obs.with_run body in
                    (v, Some report)
                  else (body (), None)
                in
                let fut =
                  Pool.submit t.pool ~cancel:expired ~label:"serve.analyze" task
                in
                Queue.add
                  {
                    s_id = id;
                    s_want = a.want;
                    s_start = start;
                    s_state = Running { fut; bin_key; eh_store };
                  }
                  t.slots))

let submit_line t line =
  t.st.requests <- t.st.requests + 1;
  Obs.incr c_requests;
  Obs.observe h_req_bytes (String.length line);
  match P.parse_request line with
  | Error (id, msg) -> resolve_error t id P.Bad_request msg
  | Ok { id; op = P.Stats } ->
      t.st.stats_requests <- t.st.stats_requests + 1;
      Obs.incr c_stats;
      push_ready t id P.want_all (P.stats_response ~id (stats_json t))
  | Ok { id; op = P.Analyze a } -> submit_analyze t id a

let submit_bad t message =
  t.st.requests <- t.st.requests + 1;
  Obs.incr c_requests;
  resolve_error t None P.Bad_request message

let poll_responses t =
  ignore (refresh t);
  let out = ref [] in
  let rec go () =
    match Queue.peek_opt t.slots with
    | Some { s_state = Ready r; _ } ->
        ignore (Queue.pop t.slots);
        out := r :: !out;
        go ()
    | _ -> ()
  in
  go ();
  List.rev !out

let flush t =
  let out = ref [] in
  let rec go () =
    match Queue.peek_opt t.slots with
    | None -> ()
    | Some s ->
        (match s.s_state with
        | Ready _ -> ()
        | Running { fut; bin_key; eh_store } ->
            finalize t s bin_key eh_store (Pool.await fut));
        (match s.s_state with
        | Ready r ->
            ignore (Queue.pop t.slots);
            out := r :: !out
        | Running _ -> assert false);
        go ()
  in
  go ();
  List.rev !out

let pending t = Queue.length t.slots
let reports t = List.rev t.reports
let shutdown t = Pool.shutdown t.pool
