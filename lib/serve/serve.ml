(** Daemon IO loops — contract in the mli. *)

type config = {
  engine : Engine.config;
  max_line_bytes : int;
  stats_json_path : string option;
  trace_chrome_path : string option;
}

let default_config =
  {
    engine = Engine.default_config;
    max_line_bytes = 64 * 1024 * 1024;
    stats_json_path = None;
    trace_chrome_path = None;
  }

module Line_reader = struct
  type t = {
    fd : Unix.file_descr;
    max_line_bytes : int;
    buf : Buffer.t;
    chunk : Bytes.t;
    mutable discarding : bool;  (* inside an over-bound line, pre-newline *)
    mutable eof : bool;
  }

  let create ?(max_line_bytes = default_config.max_line_bytes) fd =
    {
      fd;
      max_line_bytes = max 1 max_line_bytes;
      buf = Buffer.create 4096;
      chunk = Bytes.create 65536;
      discarding = false;
      eof = false;
    }

  (* Split the buffer on newlines, flagging lines the bound rejects.
     The buffer retains only the unterminated tail — and when that tail
     alone exceeds the bound we drop it eagerly (entering [discarding]),
     so a never-terminated line costs bounded memory. *)
  let drain t =
    let data = Buffer.contents t.buf in
    Buffer.clear t.buf;
    let items = ref [] in
    let n = String.length data in
    let start = ref 0 in
    (try
       while true do
         let nl = String.index_from data !start '\n' in
         let line = String.sub data !start (nl - !start) in
         (if t.discarding then begin
            t.discarding <- false;
            items := `Oversized :: !items
          end
          else if String.length line > t.max_line_bytes then
            items := `Oversized :: !items
          else items := `Line line :: !items);
         start := nl + 1
       done
     with Not_found -> ());
    let tail_len = n - !start in
    if t.discarding then ()  (* still dropping: keep nothing *)
    else if tail_len > t.max_line_bytes then t.discarding <- true
    else Buffer.add_substring t.buf data !start tail_len;
    List.rev !items

  let step t =
    if t.eof then [ `Eof ]
    else
      let n = Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) in
      if n = 0 then begin
        t.eof <- true;
        let items = drain t in
        let trailing =
          if t.discarding then [ `Oversized ]
          else if Buffer.length t.buf > 0 then begin
            let l = Buffer.contents t.buf in
            Buffer.clear t.buf;
            [ `Line l ]
          end
          else []
        in
        items @ trailing @ [ `Eof ]
      end
      else begin
        if t.discarding then begin
          (* scan the raw chunk for the terminating newline; buffer only
             what follows it *)
          match Bytes.index_from_opt t.chunk 0 '\n' with
          | Some i when i < n ->
              Buffer.add_subbytes t.buf t.chunk i (n - i)
              (* the '\n' itself re-enters [drain], closing the discard *)
          | _ -> ()
        end
        else Buffer.add_subbytes t.buf t.chunk 0 n;
        drain t
      end
end

let oversized_msg cfg =
  Printf.sprintf "request line exceeds %d bytes" cfg.max_line_bytes

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* Best-effort write: a vanished socket peer must not kill the daemon
   (the engine's work is already metered and cached either way). *)
let write_response fd s =
  match write_all fd (s ^ "\n") with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let emit engine fd =
  List.for_all (fun r -> write_response fd r) (Engine.poll_responses engine)

let feed engine cfg items =
  List.iter
    (function
      | `Line l -> Engine.submit_line engine l
      | `Oversized -> Engine.submit_bad engine (oversized_msg cfg)
      | `Eof -> ())
    items

(* [select] that treats signal interruption as an empty wake-up: a
   handler (e.g. the CLI's SIGTERM stop flag) must bounce us back to
   the loop condition, not unwind the daemon through an exception. *)
let select_read fds timeout =
  match Unix.select fds [] [] timeout with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* One session: pump [rd] lines into the engine, responses out to [wr],
   until EOF; then flush the in-flight tail.  Returns false when the
   peer disappeared mid-write. *)
let session ?(idle_timeout = -1.0) ?(should_stop = fun () -> false) engine cfg
    rd wr =
  let reader = Line_reader.create ~max_line_bytes:cfg.max_line_bytes rd in
  let alive = ref true in
  let eof = ref false in
  while (not !eof) && !alive && not (should_stop ()) do
    (* block for input when idle (socket sessions tick at [idle_timeout]
       so a stop request interrupts an idle connection); tick fast while
       responses are in flight *)
    let timeout = if Engine.pending engine > 0 then 0.005 else idle_timeout in
    let readable = select_read [ rd ] timeout in
    if readable <> [] then begin
      let items = Line_reader.step reader in
      if List.mem `Eof items then eof := true;
      feed engine cfg items
    end;
    alive := emit engine wr
  done;
  if !alive then alive := List.for_all (write_response wr) (Engine.flush engine)
  else ignore (Engine.flush engine);
  !alive

let dump_outputs engine cfg report =
  (match cfg.stats_json_path with
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Engine.stats_json engine);
          Out_channel.output_char oc '\n')
  | None -> ());
  match cfg.trace_chrome_path with
  | Some path ->
      let merged =
        Fetch_obs.Trace.merge (report :: Engine.reports engine)
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Fetch_obs.Report.chrome_trace merged))
  | None -> ()

(* Bracket the dispatch loop in a trace run so the serve.* counters and
   histograms the engine mirrors land in the Chrome trace / final
   report alongside the per-task reports. *)
let with_dispatch_run engine cfg f =
  let finally_dump report =
    dump_outputs engine cfg report;
    Engine.shutdown engine
  in
  match Fetch_obs.Trace.with_run f with
  | (), report -> finally_dump report
  | exception e ->
      let report = { Fetch_obs.Trace.spans = []; counters = []; histograms = [] } in
      finally_dump report;
      raise e

let run_stdin ?(config = default_config) rd wr =
  let engine = Engine.create ~config:config.engine () in
  with_dispatch_run engine config (fun () -> ignore (session engine config rd wr))

let run_socket ?(config = default_config) ?(should_stop = fun () -> false) path =
  (if Sys.file_exists path then
     match (Unix.stat path).st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ -> invalid_arg (Printf.sprintf "%s exists and is not a socket" path));
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 8;
  let engine = Engine.create ~config:config.engine () in
  let cleanup () =
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      with_dispatch_run engine config (fun () ->
          while not (should_stop ()) do
            (* wake periodically to re-check should_stop *)
            let readable = select_read [ srv ] 0.2 in
            if readable <> [] then begin
              let client, _ = Unix.accept srv in
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close client with Unix.Unix_error _ -> ())
                (fun () ->
                  ignore
                    (session ~idle_timeout:0.2 ~should_stop engine config
                       client client))
            end
          done))
