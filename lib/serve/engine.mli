(** The serve daemon's core: an IO-free, ordered request engine.

    The engine turns request {e lines} into response {e lines}.  IO
    loops ({!Serve}) feed it one line per call and pull ready responses;
    everything in between — parsing, the content-addressed {!Cache},
    shedding, deadlines, draining analysis through a
    {!Fetch_par.Pool} — lives here, which is what makes the whole
    behaviour unit-testable without sockets or pipes.

    Ordering: responses come back in request order, always.  Each
    request occupies a slot in a FIFO; a slot resolves either
    immediately (bad request, stats, shed, cache hit) or when its pool
    task finishes, and {!poll_responses} only ever emits the resolved
    prefix.

    Threading contract: every function except the pool's own workers
    runs on the {e dispatch} thread (whichever thread owns the engine).
    Cache access and serve.* metering are confined to it, so nothing
    here locks.

    Shedding: when the number of in-flight pool tasks reaches
    [queue_bound], new analyze requests resolve immediately as
    [overloaded] — bounded memory, structured refusal, the 429 path.

    Deadlines: a request's [deadline_ms] becomes an absolute monotonic
    deadline.  It is checked by the pool's cooperative [cancel] hook
    when a worker dequeues the task, and again between pipeline stages
    on the worker; either way the slot resolves as [deadline_exceeded]
    and the worker moves on unpoisoned. *)

type config = {
  queue_bound : int;  (** max in-flight pool tasks before shedding *)
  cache_bytes : int;  (** {!Cache} byte budget *)
  domains : int;  (** pool size *)
  capture_reports : bool;
      (** bracket each analysis task in [Trace.with_run] and keep the
          report — feeds the Chrome-trace sink; cache hits never produce
          a report, which is how the trace shows a warm hit ran no
          pipeline *)
  worker_gate : (unit -> unit) option;
      (** test seam: run on the worker at task start, before any work —
          tests park workers here to fill the queue deterministically *)
}

val default_config : config

type t

(** Creates the engine and its pool. *)
val create : ?config:config -> unit -> t

(** Feed one request line (without the newline).  Never raises on bad
    input — malformed lines become [bad_request] responses. *)
val submit_line : t -> string -> unit

(** Push a pre-made [bad_request] response (the IO layer's oversized
    line path, where there is no parseable line to submit). *)
val submit_bad : t -> string -> unit

(** Ready responses, in request order (possibly empty).  Non-blocking. *)
val poll_responses : t -> string list

(** Block until every submitted request has resolved; returns the
    remaining responses in order. *)
val flush : t -> string list

(** Number of slots not yet emitted. *)
val pending : t -> int

(** The [stats] response body: request counters, queue state, latency
    percentiles, cache stats.  Also answered in-band by an
    [{"op":"stats"}] request. *)
val stats_json : t -> string

(** Per-task trace reports captured so far (newest last); empty unless
    [capture_reports]. *)
val reports : t -> Fetch_obs.Trace.report list

(** Shut the pool down.  Pending tasks finish first ({!flush} remains
    valid); further submissions raise. *)
val shutdown : t -> unit
