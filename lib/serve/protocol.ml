(** Wire protocol — schema in the mli and DESIGN.md. *)

module Json = Fetch_util.Json

type error_code = Bad_request | Overloaded | Deadline_exceeded | Analysis_failed

let error_code_label = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Analysis_failed -> "analysis_failed"

type want = { w_starts : bool; w_eh : bool; w_diags : bool; w_findings : bool }

let want_all = { w_starts = true; w_eh = true; w_diags = true; w_findings = true }
let want_none = { w_starts = false; w_eh = false; w_diags = false; w_findings = false }

type analyze = {
  source : [ `Path of string | `Bytes of string ];
  deadline_ms : int option;
  want : want;
}

type op = Analyze of analyze | Stats

type request = { id : Json.t option; op : op }

(* Parsing is two-phase so a malformed request can still echo its id:
   first recover [id] from whatever object shape arrived, then
   validate the rest against that recovered id. *)

let known_fields = [ "op"; "id"; "path"; "bytes_b64"; "deadline_ms"; "want" ]

let parse_want id = function
  | None -> Ok want_all
  | Some (Json.List atoms) ->
      let rec go acc = function
        | [] -> Ok acc
        | Json.Str "starts" :: rest -> go { acc with w_starts = true } rest
        | Json.Str "eh" :: rest -> go { acc with w_eh = true } rest
        | Json.Str "diags" :: rest -> go { acc with w_diags = true } rest
        | Json.Str "findings" :: rest -> go { acc with w_findings = true } rest
        | Json.Str other :: _ ->
            Error (id, Printf.sprintf "unknown \"want\" member %S" other)
        | _ -> Error (id, "\"want\" members must be strings")
      in
      go want_none atoms
  | Some _ -> Error (id, "\"want\" must be an array of strings")

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (None, "invalid JSON: " ^ msg)
  | Ok json -> (
      match json with
      | Json.Obj members -> (
          let id = Json.member "id" json in
          let fail msg = Error (id, msg) in
          match
            List.find_opt (fun (k, _) -> not (List.mem k known_fields)) members
          with
          | Some (k, _) -> fail (Printf.sprintf "unknown field %S" k)
          | None -> (
              match Json.member "op" json with
              | Some (Json.Str "stats") -> Ok { id; op = Stats }
              | Some (Json.Str "analyze") | None -> (
                  let path = Json.member "path" json in
                  let bytes = Json.member "bytes_b64" json in
                  let source =
                    match (path, bytes) with
                    | Some (Json.Str p), None -> Ok (`Path p)
                    | None, Some (Json.Str b) -> (
                        match Fetch_util.B64.decode b with
                        | Ok raw -> Ok (`Bytes raw)
                        | Error e -> Error ("invalid \"bytes_b64\": " ^ e))
                    | Some _, Some _ ->
                        Error "\"path\" and \"bytes_b64\" are exclusive"
                    | Some _, None -> Error "\"path\" must be a string"
                    | None, Some _ -> Error "\"bytes_b64\" must be a string"
                    | None, None -> Error "need \"path\" or \"bytes_b64\""
                  in
                  match source with
                  | Error msg -> fail msg
                  | Ok source -> (
                      let deadline =
                        match Json.member "deadline_ms" json with
                        | None -> Ok None
                        | Some j -> (
                            match Json.to_int j with
                            | Some ms when ms >= 0 -> Ok (Some ms)
                            | _ ->
                                Error
                                  "\"deadline_ms\" must be a non-negative \
                                   integer")
                      in
                      match deadline with
                      | Error msg -> fail msg
                      | Ok deadline_ms -> (
                          match parse_want id (Json.member "want" json) with
                          | Error e -> Error e
                          | Ok want ->
                              Ok { id; op = Analyze { source; deadline_ms; want } })))
              | Some (Json.Str other) ->
                  fail (Printf.sprintf "unknown op %S" other)
              | Some _ -> fail "\"op\" must be a string"))
      | _ -> Error (None, "request must be a JSON object"))

(* Rendering.  Response bytes must be a pure function of
   (id, want, summary payload): the warm path replays the exact cold
   response, which the byte-identity tests pin down. *)

let id_prefix = function
  | None -> ""
  | Some id -> Printf.sprintf "\"id\":%s," (Json.to_string id)

(* The summary payload is itself JSON produced by [Summary.to_json];
   re-parse and re-emit the selected members rather than splicing
   substrings, so [want] filtering can't produce unbalanced output. *)
let ok_response ~id ~want payload =
  let fields =
    match Json.parse payload with
    | Ok (Json.Obj members) -> members
    | _ -> []  (* unreachable for payloads we produce *)
  in
  let keep k =
    match k with
    | "starts" | "n_seeds" -> want.w_starts
    | "eh_frame" -> want.w_eh
    | "diags" -> want.w_diags
    | "findings" -> want.w_findings
    | _ -> true
  in
  let body =
    fields
    |> List.filter (fun (k, _) -> keep k)
    |> List.map (fun (k, v) ->
           Printf.sprintf "%s:%s" (Json.escape k) (Json.to_string v))
    |> String.concat ","
  in
  Printf.sprintf "{%s\"status\":\"ok\"%s%s}" (id_prefix id)
    (if body = "" then "" else ",")
    body

let error_response ~id ~code ~message =
  Printf.sprintf "{%s\"status\":\"error\",\"code\":\"%s\",\"message\":%s}"
    (id_prefix id) (error_code_label code) (Json.escape message)

let stats_response ~id body =
  Printf.sprintf "{%s\"status\":\"ok\",\"stats\":%s}" (id_prefix id) body
