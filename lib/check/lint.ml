(** Cross-layer consistency linter — rule semantics in the interface. *)

open Fetch_x86
module IM = Fetch_util.Interval_map
module Obs = Fetch_obs.Trace

type func = {
  entry : int;
  blocks : (int * int) list;
  jumps : (int * int) list;
}

type view = {
  insn_at : int -> (Insn.t * int) option;
  in_text : int -> bool;
  funcs : func list;
  insn_spans : unit IM.t;
  fdes : (int * int) list;
  complete_cfi : (int * int) list;
  oracle_height : int -> int option;
  callconv_ok : int -> bool;
  call_returns : site:int -> target:int option -> bool;
  resolve_indirect :
    site:int ->
    window:(int * int * Insn.t) list ->
    Insn.operand ->
    int list option;
}

let in_blocks f addr =
  List.exists (fun (lo, hi) -> addr >= lo && addr < hi) f.blocks

let is_block_start f addr = List.exists (fun (lo, _) -> lo = addr) f.blocks

(* ---- jump-mid-insn: a direct/cond jump target strictly inside a
   committed instruction.  The committed span table is the run's ground
   truth of instruction boundaries; a jump that lands between [lo] and the
   instruction's end contradicts the disassembly that produced it. *)
let rule_jump_mid_insn v emit =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun (site, target) ->
          if (not (Hashtbl.mem seen (site, target))) && v.in_text target then begin
            Hashtbl.replace seen (site, target) ();
            match IM.find v.insn_spans target with
            | Some (lo, _, ()) when lo <> target ->
                emit
                  {
                    Finding.rule = "jump-mid-insn";
                    severity = Finding.Error;
                    addr = target;
                    related = Some site;
                    message =
                      Printf.sprintf
                        "jump target lands inside the instruction at %#x" lo;
                  }
            | _ -> ()
          end)
        f.jumps)
    v.funcs

(* ---- func-overlap: two detected functions decode the same bytes.
   Re-walk each function's instruction boundaries through the shared
   range: agreeing boundaries are legitimate code sharing (Info),
   disagreeing ones mean the two decodes cannot both be right (Error). *)
let boundaries_in v ~from ~lo ~hi =
  let rec walk addr acc =
    if addr >= hi then List.rev acc
    else
      match v.insn_at addr with
      | Some (_, len) ->
          walk (addr + len) (if addr >= lo then addr :: acc else acc)
      | None -> List.rev acc
  in
  walk from []

let rule_func_overlap v emit =
  let rec pairs = function
    | [] -> ()
    | f :: rest ->
        List.iter
          (fun g ->
            (* one finding per pair: the first overlapping block range *)
            let found = ref false in
            List.iter
              (fun (flo, fhi) ->
                List.iter
                  (fun (glo, ghi) ->
                    if not !found then begin
                      let olo = max flo glo and ohi = min fhi ghi in
                      if olo < ohi then begin
                        found := true;
                        let bf = boundaries_in v ~from:flo ~lo:olo ~hi:ohi in
                        let bg = boundaries_in v ~from:glo ~lo:olo ~hi:ohi in
                        if bf = bg then
                          emit
                            {
                              Finding.rule = "func-overlap";
                              severity = Finding.Info;
                              addr = olo;
                              related = Some g.entry;
                              message =
                                Printf.sprintf
                                  "functions %#x and %#x share code (agreeing \
                                   instruction boundaries)"
                                  f.entry g.entry;
                            }
                        else
                          emit
                            {
                              Finding.rule = "func-overlap";
                              severity = Finding.Error;
                              addr = olo;
                              related = Some g.entry;
                              message =
                                Printf.sprintf
                                  "functions %#x and %#x decode overlapping \
                                   bytes with different instruction boundaries"
                                  f.entry g.entry;
                            }
                      end
                    end)
                  g.blocks)
              f.blocks)
          rest;
        pairs rest
  in
  pairs v.funcs

(* ---- jump-mid-func: a jump from one function into another's body at an
   address the target function never treats as a block start — the
   paper's error class (iii), a control transfer into the middle of a
   detected function. *)
let rule_jump_mid_func v emit =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun (site, target) ->
          List.iter
            (fun g ->
              if
                g.entry <> f.entry && target <> g.entry
                && in_blocks g target
                && (not (is_block_start g target))
                && (not (in_blocks f target))
                && not (Hashtbl.mem seen (site, target))
              then begin
                Hashtbl.replace seen (site, target) ();
                emit
                  {
                    Finding.rule = "jump-mid-func";
                    severity = Finding.Warning;
                    addr = site;
                    related = Some target;
                    message =
                      Printf.sprintf
                        "jump into the middle of detected function %#x" g.entry;
                  }
              end)
            v.funcs)
        f.jumps)
    v.funcs

(* ---- fde-unreached: the unwinder claims [lo, hi) is a function, the
   disassembly never decoded (all of) it.  Fully undecoded ranges are
   suspicious (a seed the pipeline dropped); partially decoded ranges are
   common and legitimate (landing pads, alignment tails) so only Info. *)
let rule_fde_unreached v emit =
  List.iter
    (fun (lo, hi) ->
      if hi > lo then begin
        let covered = ref 0 in
        let rec scan from =
          match IM.next_from v.insn_spans from with
          | Some (slo, shi, ()) when slo < hi ->
              let ilo = max slo lo and ihi = min shi hi in
              if ihi > ilo then covered := !covered + (ihi - ilo);
              scan shi
          | _ -> ()
        in
        (* [next_from] skips intervals beginning before [lo]; back up so a
           span straddling the range start still counts. *)
        (match IM.find v.insn_spans lo with
        | Some (_, shi, ()) ->
            covered := min shi hi - lo;
            scan shi
        | None -> scan lo);
        if !covered = 0 then
          emit
            {
              Finding.rule = "fde-unreached";
              severity = Finding.Warning;
              addr = lo;
              related = None;
              message =
                Printf.sprintf
                  "FDE covers [%#x, %#x) but no instruction there was decoded"
                  lo hi;
            }
        else if !covered < hi - lo then
          emit
            {
              Finding.rule = "fde-unreached";
              severity = Finding.Info;
              addr = lo;
              related = None;
              message =
                Printf.sprintf
                  "FDE covers [%#x, %#x) but only %d of %d bytes were decoded"
                  lo hi !covered (hi - lo);
            }
      end)
    v.fdes

(* ---- start-callconv: a kept function start that fails the §IV-E
   register-initialization check.  The pipeline only enforces the check
   on some candidate classes, so a kept start can still fail it — worth a
   look, not necessarily wrong (cold parts read spilled state). *)
let rule_start_callconv v emit =
  List.iter
    (fun f ->
      if not (v.callconv_ok f.entry) then
        emit
          {
            Finding.rule = "start-callconv";
            severity = Finding.Warning;
            addr = f.entry;
            related = None;
            message =
              "detected function start fails the calling-convention check";
          })
    v.funcs

(* ---- height-mismatch: a sound join-based stack-height dataflow vs the
   CFI oracle, inside rsp-complete CFI coverage only.  [Known]/[Top] is a
   flat lattice: disagreeing joins widen to Top (no claim) rather than
   pick a side, so any surviving Known height the oracle contradicts is a
   genuine cross-layer disagreement. *)
module Height = struct
  type state = Known of int | Top
  type fatal = unit

  let equal = ( = )

  let join a b =
    match (a, b) with Known x, Known y when x = y -> a | _ -> Top

  let widen ~old:_ _ = Top

  let transfer ~addr:_ ~len:_ insn st =
    match Semantics.flow insn with
    | Semantics.Fall | Semantics.Callf _ -> (
        match (st, Semantics.sp_delta insn) with
        | Known h, Some d -> Dataflow.Step (Known (h - d))
        | _, None | Top, _ -> Dataflow.Step Top)
    | _ -> Dataflow.Step st
end

module Height_solver = Dataflow.Make (Height)

let rule_height_mismatch v emit =
  let in_complete addr =
    List.exists (fun (lo, hi) -> addr >= lo && addr < hi) v.complete_cfi
  in
  List.iter
    (fun f ->
      (* only solve where the oracle can answer at all *)
      if in_complete f.entry then begin
      let prog = { Dataflow.insn_at = v.insn_at; in_text = v.in_text } in
      (* walk only the function's own blocks: the oracle's heights are
         per-FDE, so following a tail call would compare the caller's
         height against the callee's table *)
      let policy =
        {
          Height_solver.default_policy with
          follow_direct = (fun ~site:_ ~target -> in_blocks f target);
          resolve_indirect =
            (fun ~site ~window op ->
              match v.resolve_indirect ~site ~window op with
              | Some ts -> Some (List.filter (in_blocks f) ts)
              | None -> None);
          call_falls_through =
            (fun ~site ~target _ -> v.call_returns ~site ~target);
          stop_outside_text = true;
          (* fallthrough must not leak out either: a trailing call that
             never returns would otherwise walk into the next function
             and compare this function's height against its neighbour's
             CFI table *)
          stop_walk = (fun addr -> not (in_blocks f addr));
        }
      in
      let sol =
        Height_solver.solve prog policy ~merge:Dataflow.Join_fixpoint
          ~entry:f.entry ~init:(Height.Known 0) ()
      in
      let worst = ref None in
      Hashtbl.iter
        (fun addr st ->
          match (st, v.oracle_height addr) with
          | Height.Known h, Some oh when h <> oh -> (
              match !worst with
              | Some (a, _, _) when a <= addr -> ()
              | _ -> worst := Some (addr, h, oh))
          | _ -> ())
        sol.Height_solver.states;
      match !worst with
      | Some (addr, h, oh) ->
          emit
            {
              Finding.rule = "height-mismatch";
              severity = Finding.Warning;
              addr;
              related = Some f.entry;
              message =
                Printf.sprintf
                  "static stack height %d disagrees with the CFI oracle (%d)" h
                  oh;
            }
      | None -> ()
      end)
    v.funcs

let rules =
  [
    ("jump-mid-insn", rule_jump_mid_insn);
    ("func-overlap", rule_func_overlap);
    ("jump-mid-func", rule_jump_mid_func);
    ("fde-unreached", rule_fde_unreached);
    ("start-callconv", rule_start_callconv);
    ("height-mismatch", rule_height_mismatch);
  ]

let counters =
  List.map (fun (name, _) -> (name, Obs.counter ("lint.findings." ^ name))) rules

let run v =
  Obs.span "lint" (fun () ->
      let acc = ref [] in
      List.iter
        (fun (name, rule) ->
          Obs.span ("lint." ^ name) (fun () ->
              rule v (fun f ->
                  Obs.incr (List.assoc name counters);
                  acc := f :: !acc)))
        rules;
      List.sort Finding.compare !acc)
