(** Shared forward worklist dataflow engine over recovered control flow.

    Every static check in the paper — §IV-E calling-convention validation,
    the ANGR/DYNINST-style stack-height models of Table IV, the sound
    height analysis the linter compares against the CFI oracle — is a
    bounded traversal of the same shape: a worklist of (block start,
    in-state) pairs, a straight-line walk applying a per-instruction
    transfer function, and a policy deciding which control-flow edges are
    followed.  This module is that traversal, written once: analyses are
    {!LATTICE} instances and the tool-specific knobs (linear fallthrough,
    jump-table power, call fall-through) are {!Make.policy} parameters.

    Two merge disciplines are supported, because the repo needs both:

    - {!First_write_wins} — the first in-state to reach a block is kept and
      later arrivals are discarded.  This is what the paper's bounded
      walkers (and the real tools they model) actually do; the
      arrival-order sensitivity is part of the model.
    - {!Join_fixpoint} — classical dataflow: in-states are joined at block
      entries, changed blocks are re-enqueued, and {!LATTICE.widen} is
      applied after [max_joins] updates of the same block so solving
      terminates on lattices of unbounded height.

    Fuel accounting ([max_block_insns], [max_blocks]) bounds every solve;
    exhaustion is reported, never raised.  Solves register obs counters
    ([check.dataflow.*]) so instrumented runs can attribute work. *)

open Fetch_x86

(** The program under analysis, as closures so the engine depends on no
    particular loader. *)
type program = {
  insn_at : int -> (Insn.t * int) option;
      (** decoded instruction and length at a virtual address *)
  in_text : int -> bool;  (** is the address inside executable bytes? *)
}

(** Outcome of one transfer: continue with a new state, abandon the path
    (e.g. the tracked quantity became unknowable), or abort the whole
    solve with a verdict (e.g. a calling-convention violation). *)
type ('s, 'f) step = Step of 's | Drop | Fatal of 'f

module type LATTICE = sig
  type state

  type fatal
  (** analysis-aborting verdict carried out of {!Make.solve} *)

  val equal : state -> state -> bool
  val join : state -> state -> state

  val widen : old:state -> state -> state
  (** applied to a block's joined in-state after [max_joins] changes *)

  val transfer : addr:int -> len:int -> Insn.t -> state -> (state, fatal) step
end

type merge = First_write_wins | Join_fixpoint
type order = Depth_first | Breadth_first

module Make (L : LATTICE) : sig
  (** Edge policy: which control-flow edges exist and how they are
      followed.  These knobs are exactly the behavioural differences
      between the tools the repo models (§V-B). *)
  type policy = {
    undecodable : int -> L.fatal option;
        (** verdict for reaching an undecodable byte; [None] ends the
            path silently *)
    call_falls_through : site:int -> target:int option -> L.state -> bool;
        (** does execution continue after this call?  Receives the
            pre-transfer state (so e.g. argument tracking for
            conditionally non-returning callees sees the call-site
            values); [target] is [None] for indirect calls *)
    resolve_indirect :
      site:int ->
      window:(int * int * Insn.t) list ->
      Insn.operand ->
      int list option;
        (** jump-table resolution; [window] is the reversed
            (addr, len, insn) stream walked so far, current jump at the
            head.  [None] = unresolved *)
    follow_direct : site:int -> target:int -> bool;
        (** follow this direct/conditional jump edge?  [false] treats it
            as leaving the analysed region *)
    edge_state : src:int -> dst:int -> L.state -> L.state;
        (** adjust a state crossing a block boundary (the straight-line
            walk never applies this).  Lets analyses model components
            that reset per block — e.g. §IV-E's first-argument tracking,
            which only trusts values established in the current block *)
    filter_succs_in_text : bool;
        (** drop successor blocks outside executable bytes *)
    stop_outside_text : bool;
        (** end walks that run outside executable bytes (instead of
            consulting [undecodable]) *)
    stop_walk : int -> bool;
        (** end the straight-line walk before this address — confines an
            analysis to a region even across fallthrough edges (e.g. a
            trailing call falling out of a function's last block into its
            neighbour) *)
    linear_fallthrough : bool;
        (** after an unconditional jump, also continue decoding at the
            next address — the linear-decode defect of §V-B *)
    linear_after_indirect : bool;
        (** continue decoding straight past an unresolved indirect jump *)
    stop_linear_at : int -> bool;
        (** stop a linear continuation here (e.g. an FDE boundary) *)
    inline_cond_fallthrough : bool;
        (** walk straight through conditional jumps (enqueueing only the
            taken target) instead of ending the block with two successors *)
    order : order;  (** worklist discipline *)
  }

  val default_policy : policy

  type solution = {
    states : (int, L.state) Hashtbl.t;
        (** pre-state at every visited instruction address (empty when
            [record] is [false]) *)
    fatal : L.fatal option;  (** set iff the solve was aborted *)
    exhausted : bool;  (** some fuel limit was hit *)
    blocks_walked : int;
    steps : int;  (** transfer applications *)
    joins : int;  (** in-state updates in {!Join_fixpoint} mode *)
  }

  val solve :
    ?max_block_insns:int ->
    ?max_blocks:int ->
    ?max_joins:int ->
    ?record:bool ->
    program ->
    policy ->
    merge:merge ->
    entry:int ->
    init:L.state ->
    unit ->
    solution
  (** [solve prog policy ~merge ~entry ~init ()] runs the analysis to
      quiescence (or fuel exhaustion).  Defaults: [max_block_insns] and
      [max_blocks] 4096, [max_joins] 8, [record] true. *)
end
