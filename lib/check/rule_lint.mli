(** The linter's ported rules as a {!Fetch_facts} program, plus the
    finding renderer for every engine-derived diagnostic.

    Two of the imperative {!Lint} rules are re-expressed bottom-up over
    the fact {!Fetch_facts.Schema} — [jump-mid-insn] (an Error per jump
    whose target lands strictly inside a committed instruction) and
    [fde-unreached] (Warning for an FDE range the disassembly never
    touched, Info for a partially decoded one).  The differential tests
    assert the engine's findings equal the imperative linter's on the
    same pipeline result, byte for byte.

    [findings_of_store] renders every finding-shaped derived relation
    currently in the store — the two ported rules plus
    [split_fn_fde] from the cross-cutting program in
    [Fetch_core.Fact_base] — sorted by {!Finding.compare}. *)

val program : Fetch_facts.Rule.t list

val findings_of_store : Fetch_facts.Store.t -> Finding.t list
