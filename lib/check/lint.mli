(** Cross-layer consistency linter.

    The pipeline's layers — the [.eh_frame] CFA tables, the recursive
    disassembly, the §IV-E checks, Algorithm 1 — each make claims about
    the same bytes.  The linter cross-examines those claims after a run
    and emits a {!Finding.t} per disagreement.  Rule catalogue:

    - [func-overlap] — two detected functions decode the same bytes with
      disagreeing instruction boundaries ([Error]); agreeing boundaries
      (shared code) are reported as [Info].
    - [jump-mid-insn] — a direct/conditional jump lands strictly inside a
      committed instruction ([Error]).
    - [jump-mid-func] — a jump from one function lands inside another
      detected function's body at an address that function never treats
      as a block start ([Warning]; the paper's error class iii).
    - [fde-unreached] — an FDE-covered byte range the recursive
      disassembly never decoded at all ([Warning]); partially decoded
      ranges (e.g. landing pads outside the CFG) are [Info].
    - [start-callconv] — a kept function start that fails the §IV-E
      register-initialization lattice ([Warning]).
    - [height-mismatch] — a sound join-based stack-height dataflow (run on
      {!Dataflow.Join_fixpoint}) disagrees with the CFI height oracle
      inside rsp-complete CFI coverage ([Warning]).

    The linter consumes a {!view} — plain data plus closures — so it
    depends on no particular pipeline; [Fetch_core.Lint] adapts a
    finished pipeline result into one. *)

open Fetch_x86

(** One detected (final) function. *)
type func = {
  entry : int;
  blocks : (int * int) list;  (** decoded [lo, hi) ranges *)
  jumps : (int * int) list;  (** direct/conditional jump site, target *)
}

type view = {
  insn_at : int -> (Insn.t * int) option;
  in_text : int -> bool;
  funcs : func list;  (** final detected functions *)
  insn_spans : unit Fetch_util.Interval_map.t;
      (** committed instruction extents of the whole run *)
  fdes : (int * int) list;  (** every FDE's [pc_begin, pc_begin+range) *)
  complete_cfi : (int * int) list;
      (** ranges whose CFI passes the §V-B rsp-completeness test *)
  oracle_height : int -> int option;  (** CFI stack height, complete only *)
  callconv_ok : int -> bool;  (** §IV-E verdict for a candidate start *)
  call_returns : site:int -> target:int option -> bool;
      (** does execution continue after this call site? *)
  resolve_indirect :
    site:int ->
    window:(int * int * Insn.t) list ->
    Insn.operand ->
    int list option;
      (** jump-table resolution for the height dataflow *)
}

(** Run every rule; findings come back sorted (most severe first, then by
    address).  Instrumented runs get per-rule counters
    ([lint.findings.<rule>]). *)
val run : view -> Finding.t list
