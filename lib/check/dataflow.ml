(** Shared forward worklist dataflow engine — see the interface for the
    design.  The walk structure deliberately mirrors the bounded walkers
    it replaced ([lib/analysis/callconv.ml], [lib/analysis/stack_height.ml]):
    a straight-line decode per worklist item, successors batched at block
    end so depth-first order matches the old explicit recursion. *)

open Fetch_x86
module Obs = Fetch_obs.Trace

let c_solves = Obs.counter "check.dataflow.solves"
let c_steps = Obs.counter "check.dataflow.steps"
let c_fatals = Obs.counter "check.dataflow.fatals"
let c_exhausted = Obs.counter "check.dataflow.fuel_exhausted"
let h_blocks = Obs.histogram "check.dataflow.blocks_per_solve"

type program = {
  insn_at : int -> (Insn.t * int) option;
  in_text : int -> bool;
}

type ('s, 'f) step = Step of 's | Drop | Fatal of 'f

module type LATTICE = sig
  type state
  type fatal

  val equal : state -> state -> bool
  val join : state -> state -> state
  val widen : old:state -> state -> state
  val transfer : addr:int -> len:int -> Insn.t -> state -> (state, fatal) step
end

type merge = First_write_wins | Join_fixpoint
type order = Depth_first | Breadth_first

module Make (L : LATTICE) = struct
  type policy = {
    undecodable : int -> L.fatal option;
    call_falls_through : site:int -> target:int option -> L.state -> bool;
    resolve_indirect :
      site:int ->
      window:(int * int * Insn.t) list ->
      Insn.operand ->
      int list option;
    follow_direct : site:int -> target:int -> bool;
    edge_state : src:int -> dst:int -> L.state -> L.state;
    filter_succs_in_text : bool;
    stop_outside_text : bool;
    stop_walk : int -> bool;
    linear_fallthrough : bool;
    linear_after_indirect : bool;
    stop_linear_at : int -> bool;
    inline_cond_fallthrough : bool;
    order : order;
  }

  let default_policy =
    {
      undecodable = (fun _ -> None);
      call_falls_through = (fun ~site:_ ~target:_ _ -> true);
      resolve_indirect = (fun ~site:_ ~window:_ _ -> None);
      follow_direct = (fun ~site:_ ~target:_ -> true);
      edge_state = (fun ~src:_ ~dst:_ s -> s);
      filter_succs_in_text = true;
      stop_outside_text = false;
      stop_walk = (fun _ -> false);
      linear_fallthrough = false;
      linear_after_indirect = false;
      stop_linear_at = (fun _ -> false);
      inline_cond_fallthrough = false;
      order = Breadth_first;
    }

  type solution = {
    states : (int, L.state) Hashtbl.t;
    fatal : L.fatal option;
    exhausted : bool;
    blocks_walked : int;
    steps : int;
    joins : int;
  }

  exception Fatal_stop of L.fatal

  let solve ?(max_block_insns = 4096) ?(max_blocks = 4096) ?(max_joins = 8)
      ?(record = true) prog policy ~merge ~entry ~init () =
    Obs.incr c_solves;
    let states = Hashtbl.create (if record then 64 else 1) in
    (* block-entry in-states (Join_fixpoint) / visited marks (First) *)
    let in_states : (int, L.state) Hashtbl.t = Hashtbl.create 32 in
    let visited : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    let join_counts : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let wl = ref [ (entry, init) ] in
    let exhausted = ref false in
    let blocks = ref 0 in
    let steps = ref 0 in
    let joins = ref 0 in
    let fatal = ref None in
    if merge = Join_fixpoint then Hashtbl.replace in_states entry init;
    let record_state addr st =
      if record then
        match merge with
        | First_write_wins ->
            if not (Hashtbl.mem states addr) then Hashtbl.replace states addr st
        | Join_fixpoint -> (
            match Hashtbl.find_opt states addr with
            | None -> Hashtbl.replace states addr st
            | Some old ->
                let j = L.join old st in
                if not (L.equal j old) then Hashtbl.replace states addr j)
    in
    (* One straight-line walk from [b]: apply the transfer per instruction,
       let the policy expand control flow, collect block successors in
       emission order. *)
    let walk_block b st0 =
      let succs = ref [] in
      let emit ~src st t =
        if (not policy.filter_succs_in_text) || prog.in_text t then
          succs := (t, policy.edge_state ~src ~dst:t st) :: !succs
      in
      let rec go addr st window fuel =
        if fuel <= 0 then exhausted := true
        else if policy.stop_outside_text && not (prog.in_text addr) then ()
        else if policy.stop_walk addr then ()
        else
          match prog.insn_at addr with
          | None -> (
              match policy.undecodable addr with
              | Some f -> raise (Fatal_stop f)
              | None -> ())
          | Some (insn, len) -> (
              incr steps;
              Obs.incr c_steps;
              record_state addr st;
              match L.transfer ~addr ~len insn st with
              | Fatal f -> raise (Fatal_stop f)
              | Drop -> ()
              | Step st' -> (
                  let window = (addr, len, insn) :: window in
                  match Semantics.flow insn with
                  | Semantics.Fall -> go (addr + len) st' window (fuel - 1)
                  | Semantics.Ret | Semantics.Halt -> ()
                  | Semantics.Jump (Semantics.Direct t) ->
                      if policy.follow_direct ~site:addr ~target:t then
                        emit ~src:addr st' t;
                      if
                        policy.linear_fallthrough
                        && not (policy.stop_linear_at (addr + len))
                      then go (addr + len) st' window (fuel - 1)
                  | Semantics.Cond t ->
                      if policy.follow_direct ~site:addr ~target:t then
                        emit ~src:addr st' t;
                      if policy.inline_cond_fallthrough then
                        go (addr + len) st' window (fuel - 1)
                      else emit ~src:addr st' (addr + len)
                  | Semantics.Jump (Semantics.Indirect op) -> (
                      match policy.resolve_indirect ~site:addr ~window op with
                      | Some ts -> List.iter (emit ~src:addr st') ts
                      | None ->
                          if
                            policy.linear_after_indirect
                            && not (policy.stop_linear_at (addr + len))
                          then go (addr + len) st' window (fuel - 1))
                  | Semantics.Callf dest ->
                      let target =
                        match dest with
                        | Semantics.Direct t -> Some t
                        | Semantics.Indirect _ -> None
                      in
                      if policy.call_falls_through ~site:addr ~target st then
                        go (addr + len) st' window (fuel - 1)))
      in
      go b st0 [] max_block_insns;
      List.rev !succs
    in
    (* Join-mode admission: merge into the block's in-state; keep only
       successors whose in-state actually changed (with widening after
       [max_joins] changes so unbounded chains stabilize). *)
    let admit succs =
      match merge with
      | First_write_wins -> succs
      | Join_fixpoint ->
          List.filter_map
            (fun (t, s) ->
              match Hashtbl.find_opt in_states t with
              | None ->
                  Hashtbl.replace in_states t s;
                  Some (t, s)
              | Some old ->
                  let j = L.join old s in
                  if L.equal j old then None
                  else begin
                    incr joins;
                    let n =
                      (match Hashtbl.find_opt join_counts t with
                      | Some n -> n
                      | None -> 0)
                      + 1
                    in
                    Hashtbl.replace join_counts t n;
                    let j = if n > max_joins then L.widen ~old j else j in
                    Hashtbl.replace in_states t j;
                    Some (t, j)
                  end)
            succs
    in
    (try
       let running = ref true in
       while !running do
         match !wl with
         | [] -> running := false
         | (b, st) :: rest ->
             wl := rest;
             if !blocks >= max_blocks then begin
               exhausted := true;
               running := false
             end
             else begin
               let admitted =
                 match merge with
                 | First_write_wins ->
                     if Hashtbl.mem visited b then None
                     else begin
                       Hashtbl.replace visited b ();
                       Some st
                     end
                 | Join_fixpoint -> Some st
               in
               match admitted with
               | None -> ()
               | Some st ->
                   incr blocks;
                   let succs = admit (walk_block b st) in
                   (match policy.order with
                   | Depth_first -> wl := succs @ !wl
                   | Breadth_first -> wl := !wl @ succs)
             end
       done
     with Fatal_stop f ->
       Obs.incr c_fatals;
       fatal := Some f);
    if !exhausted then Obs.incr c_exhausted;
    if Obs.enabled () then Obs.observe h_blocks !blocks;
    {
      states;
      fatal = !fatal;
      exhausted = !exhausted;
      blocks_walked = !blocks;
      steps = !steps;
      joins = !joins;
    }
end
