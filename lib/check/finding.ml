(** Structured lint findings — see the interface for the severity
    contract. *)

type severity = Info | Warning | Error

type t = {
  rule : string;
  severity : severity;
  addr : int;
  related : int option;
  message : string;
}

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Total order: severity, then address, then rule, with [related] and
   [message] as final tiebreakers so reports are byte-stable however the
   findings were produced. *)
let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Stdlib.compare a.addr b.addr with
      | 0 -> (
          match Stdlib.compare a.rule b.rule with
          | 0 -> (
              match Stdlib.compare a.related b.related with
              | 0 -> Stdlib.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%-7s %-16s %#x: %s%s" (severity_label f.severity) f.rule
    f.addr f.message
    (match f.related with
    | Some r -> Printf.sprintf " (see %#x)" r
    | None -> "")

let to_json f =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf {|{"rule":%s,"severity":"%s","addr":%d|}
       (Fetch_obs.Report.json_string f.rule)
       (severity_label f.severity) f.addr);
  (match f.related with
  | Some r -> Buffer.add_string b (Printf.sprintf {|,"related":%d|} r)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf {|,"message":%s}|}
       (Fetch_obs.Report.json_string f.message));
  Buffer.contents b

let count sev = List.fold_left (fun n f -> if f.severity = sev then n + 1 else n) 0
