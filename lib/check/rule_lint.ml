(** Lint rules as a declarative program — see the interface. *)

open Fetch_facts
open Rule

(* ---- jump-mid-insn ----
   The imperative rule walks every function's jumps and probes the
   committed-span interval map.  Declaratively: project jump targets
   that land in an executable section, then join against instruction
   spans that strictly contain them.  Committed spans are disjoint, so
   each target pairs with at most one instruction and set semantics
   reproduces the imperative (site, target) dedup for free. *)
let jump_mid_insn_rules =
  [
    make "jump-text-target"
      (atom Schema.jump_text_target [ v "T" ])
      [
        Pos (atom Schema.jump [ v "S"; v "T"; v "E" ]);
        Pos (atom Schema.text [ v "Lo"; v "Hi" ]);
        guard "Lo<=T<Hi" (fun b ->
            iv b "Lo" <= iv b "T" && iv b "T" < iv b "Hi");
      ];
    make "jump-mid-insn"
      (atom Schema.jump_mid_insn [ v "T"; v "ILo" ])
      [
        Pos (atom Schema.jump_text_target [ v "T" ]);
        Pos (atom Schema.insn [ v "ILo"; v "IHi" ]);
        guard "ILo<T<IHi" (fun b ->
            iv b "ILo" < iv b "T" && iv b "T" < iv b "IHi");
      ];
    make "jump-mid-insn-at"
      (atom Schema.jump_mid_insn_at [ v "S"; v "T"; v "ILo" ])
      [
        Pos (atom Schema.jump [ v "S"; v "T"; v "E" ]);
        Pos (atom Schema.jump_mid_insn [ v "T"; v "ILo" ]);
      ];
  ]

(* ---- fde-unreached / fde-partial ----
   The imperative rule sums covered bytes over the FDE range and
   classifies 0 / partial / full.  Bottom-up, byte counting becomes two
   negations over finitely many {e probe points}: the FDE start plus
   every instruction end inside the range.  Committed spans are
   disjoint, so the range is fully covered iff every probe point lies
   inside some instruction — were a byte [u] uncovered with all probe
   points covered, the least such [u] is either the FDE start (a
   covered probe point, contradiction) or is preceded by a covered byte
   whose instruction must end exactly at [u], making [u] a covered
   probe point too. *)
let fde_rules =
  [
    make "fde-touched"
      (atom Schema.fde_touched [ v "F" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        Pos (atom Schema.insn [ v "Lo"; v "Hi" ]);
        guard "overlap" (fun b ->
            iv b "FHi" > iv b "F"
            && iv b "Lo" < iv b "FHi"
            && iv b "Hi" > iv b "F");
      ];
    make "cand-point-start"
      (atom Schema.cand_point [ v "F"; v "F" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        guard "FHi>F" (fun b -> iv b "FHi" > iv b "F");
      ];
    make "cand-point-insn-end"
      (atom Schema.cand_point [ v "F"; v "IHi" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        Pos (atom Schema.insn [ v "ILo"; v "IHi" ]);
        guard "F<=IHi<FHi" (fun b ->
            iv b "F" <= iv b "IHi" && iv b "IHi" < iv b "FHi");
      ];
    (* Disjointness makes the coverage test of an instruction-end probe
       point an equality join: a span covering byte [A] with [Lo < A]
       would share byte [A-1] with the instruction ending at [A], so
       the covering span must start exactly at [A].  Only the FDE-start
       probe point (which need not be a boundary at all) still needs
       the containment scan — and there are few FDEs. *)
    make "covered-point-at-boundary"
      (atom Schema.covered_point [ v "F"; v "A" ])
      [
        Pos (atom Schema.cand_point [ v "F"; v "A" ]);
        Pos (atom Schema.insn [ v "A"; v "Hi2" ]);
      ];
    make "covered-point-fde-start"
      (atom Schema.covered_point [ v "F"; v "F" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        Pos (atom Schema.insn [ v "Lo"; v "Hi" ]);
        guard "FHi>F, Lo<=F<Hi" (fun b ->
            iv b "FHi" > iv b "F"
            && iv b "Lo" <= iv b "F"
            && iv b "F" < iv b "Hi");
      ];
    make "fde-gap"
      (atom Schema.fde_gap [ v "F" ])
      [
        Pos (atom Schema.cand_point [ v "F"; v "A" ]);
        Neg (atom Schema.covered_point [ v "F"; v "A" ]);
      ];
    make "fde-unreached"
      (atom Schema.fde_unreached [ v "F"; v "FHi" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        guard "FHi>F" (fun b -> iv b "FHi" > iv b "F");
        Neg (atom Schema.fde_touched [ v "F" ]);
      ];
    make "fde-partial"
      (atom Schema.fde_partial [ v "F"; v "FHi" ])
      [
        Pos (atom Schema.fde [ v "F"; v "FHi" ]);
        Pos (atom Schema.fde_touched [ v "F" ]);
        Pos (atom Schema.fde_gap [ v "F" ]);
      ];
  ]

let program = jump_mid_insn_rules @ fde_rules

(* ---- rendering derived tuples as findings ---- *)

let ints tup = Array.map (function Fact.I n -> n | Fact.S _ -> -1) tup

(* Exact covered-byte count for the fde-partial message (committed
   spans are disjoint, so overlaps sum without double counting). *)
let covered_bytes store ~lo ~hi =
  Store.fold store Schema.insn
    (fun tup acc ->
      let a = ints tup in
      acc + max 0 (min a.(1) hi - max a.(0) lo))
    0

let findings_of_store store =
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  Store.fold store Schema.jump_mid_insn_at
    (fun tup () ->
      let a = ints tup in
      emit
        {
          Finding.rule = "jump-mid-insn";
          severity = Finding.Error;
          addr = a.(1);
          related = Some a.(0);
          message =
            Printf.sprintf "jump target lands inside the instruction at %#x"
              a.(2);
        })
    ();
  Store.fold store Schema.fde_unreached
    (fun tup () ->
      let a = ints tup in
      emit
        {
          Finding.rule = "fde-unreached";
          severity = Finding.Warning;
          addr = a.(0);
          related = None;
          message =
            Printf.sprintf
              "FDE covers [%#x, %#x) but no instruction there was decoded"
              a.(0) a.(1);
        })
    ();
  Store.fold store Schema.fde_partial
    (fun tup () ->
      let a = ints tup in
      emit
        {
          Finding.rule = "fde-unreached";
          severity = Finding.Info;
          addr = a.(0);
          related = None;
          message =
            Printf.sprintf
              "FDE covers [%#x, %#x) but only %d of %d bytes were decoded"
              a.(0) a.(1)
              (covered_bytes store ~lo:a.(0) ~hi:a.(1))
              (a.(1) - a.(0));
        })
    ();
  Store.fold store Schema.split_fn_fde
    (fun tup () ->
      let a = ints tup in
      emit
        {
          Finding.rule = "split-fn-fde";
          severity = Finding.Warning;
          addr = a.(0);
          related = Some a.(2);
          message =
            Printf.sprintf
              "FDE at %#x looks like a split-off fragment of %#x (only \
               reached by its jumps, matching CFI height %d)"
              a.(0) a.(1) a.(3);
        })
    ();
  List.sort Finding.compare !acc
