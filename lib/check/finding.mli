(** Structured lint findings: one cross-layer inconsistency, attributed to
    a rule, an address and a severity.

    Severities encode actionability, and the CI gate keys off them:

    - [Error] — the layers contradict each other in a way that cannot be
      legitimate (overlapping instruction decodes, a jump into the middle
      of a committed instruction).  A clean pipeline run must produce
      none; CI fails on any.
    - [Warning] — suspicious but explainable (an FDE nobody reached, a
      kept start that fails the §IV-E register-initialization lattice, a
      stack height disagreeing with the CFI oracle).  Reported, non-fatal.
    - [Info] — context worth surfacing (functions sharing code at agreeing
      instruction boundaries, partially-reached FDEs such as landing
      pads). *)

type severity = Info | Warning | Error

type t = {
  rule : string;  (** rule identifier, e.g. ["func-overlap"] *)
  severity : severity;
  addr : int;  (** primary address of the inconsistency *)
  related : int option;  (** secondary address (other function, target) *)
  message : string;
}

val severity_label : severity -> string

(** Total order: severity (most severe first), then address, then rule,
    then related address and message — equal findings compare equal and
    nothing else does, so sorted reports are byte-stable regardless of
    emission order. *)
val compare : t -> t -> int

(** One human-readable line, e.g.
    ["error   func-overlap     0x1010: ..."]. *)
val to_string : t -> string

(** One JSON object (no trailing newline), e.g.
    [{"rule":"func-overlap","severity":"error","addr":4112,...}]. *)
val to_json : t -> string

(** [count sev findings] — findings at exactly this severity. *)
val count : severity -> t list -> int
