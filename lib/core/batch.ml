(** Parallel batch analysis over many binaries — semantics in the mli. *)

module Obs = Fetch_obs.Trace
module Report = Fetch_obs.Report
module Pool = Fetch_par.Pool

type item = { id : string; load : unit -> Fetch_analysis.Loaded.t }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_raw id raw =
  match Fetch_elf.Decode.decode raw with
  | Ok img -> Fetch_analysis.Loaded.load img
  | Error e -> failwith (Printf.sprintf "%s: ELF decode failed: %s" id e)

let item_of_raw id raw = { id; load = (fun () -> load_raw id raw) }

let item_of_file path =
  (* read inside the task so file IO overlaps with analysis *)
  { id = path; load = (fun () -> load_raw path (read_file path)) }

(* Per-binary wall time, observed inside each task's run so the merged
   batch report carries the cross-binary distribution (p50/p90/p99). *)
let h_binary_wall_ms = Obs.histogram "batch.binary_wall_ms"

type analysis = {
  starts : int list;
  n_seeds : int;
  records_ok : int;
  records_skipped : int;
  diags : string list;
  findings : Fetch_check.Finding.t list;
  report : Obs.report;
}

type outcome = (analysis, Pool.failure) result

type t = {
  domains : int;
  wall_s : float;
  results : (string * outcome) list;
  merged : Obs.report;
  n_ok : int;
  n_failed : int;
}

let analyze ?config ~lint item =
  let (r, findings), report =
    Obs.with_run (fun () ->
        let out, secs =
          Fetch_obs.Clock.time_s (fun () ->
              let loaded = item.load () in
              let r = Pipeline.run_loaded ?config loaded in
              let findings = if lint then Lint.run r else [] in
              (r, findings))
        in
        Obs.observe h_binary_wall_ms (int_of_float (secs *. 1e3));
        out)
  in
  {
    starts = r.Pipeline.starts;
    n_seeds = List.length r.Pipeline.final_seeds;
    records_ok = r.Pipeline.eh_frame.records_ok;
    records_skipped = r.Pipeline.eh_frame.records_skipped;
    diags = List.map Fetch_dwarf.Diag.to_string r.Pipeline.eh_frame.diags;
    findings;
    report;
  }

let run ?domains ?config ?(lint = true) items =
  Pool.with_pool ?domains @@ fun pool ->
  let (results, wall_s) =
    Fetch_obs.Clock.time_s (fun () ->
        Pool.map pool
          ~label:(fun _ it -> it.id)
          (analyze ?config ~lint)
          items)
  in
  let results = List.map2 (fun it r -> (it.id, r)) items results in
  let merged =
    Obs.merge
      (List.filter_map
         (function _, Ok a -> Some a.report | _, Error _ -> None)
         results)
  in
  let n_ok =
    List.length (List.filter (function _, Ok _ -> true | _ -> false) results)
  in
  {
    domains = Pool.size pool;
    wall_s;
    results;
    merged;
    n_ok;
    n_failed = List.length results - n_ok;
  }

(* ---- renderers ---- *)

let text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (id, outcome) ->
      match outcome with
      | Ok a ->
          Buffer.add_string buf
            (Printf.sprintf
               "%-40s %5d starts  eh_frame %d ok/%d skipped  %d finding%s\n" id
               (List.length a.starts) a.records_ok a.records_skipped
               (List.length a.findings)
               (if List.length a.findings = 1 then "" else "s"));
          List.iter
            (fun d -> Buffer.add_string buf (Printf.sprintf "    eh: %s\n" d))
            a.diags;
          List.iter
            (fun f ->
              Buffer.add_string buf
                (Printf.sprintf "    %s\n" (Fetch_check.Finding.to_string f)))
            a.findings
      | Error f ->
          Buffer.add_string buf (Printf.sprintf "%-40s FAILED\n" id);
          Buffer.add_string buf
            (Printf.sprintf "    %s\n" (Pool.failure_to_string f)))
    t.results;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.text t.merged);
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d binar%s analyzed (%d ok, %d failed) on %d domain%s in %.3fs\n"
       (List.length t.results)
       (if List.length t.results = 1 then "y" else "ies")
       t.n_ok t.n_failed t.domains
       (if t.domains = 1 then "" else "s")
       t.wall_s);
  Buffer.contents buf

(* JSON lines.  With [timings:false] every emitted byte is a
   deterministic function of the input binaries — no wall clock, no
   domain count, no span lines — so reports from runs at different
   domain counts can be diffed for equality. *)
let json_lines ?(timings = true) t =
  let buf = Buffer.create 4096 in
  let str = Report.json_string in
  List.iter
    (fun (id, outcome) ->
      match outcome with
      | Ok a ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"binary\",\"id\":%s,\"status\":\"ok\",\"starts\":[%s],\"seeds\":%d,\"records_ok\":%d,\"records_skipped\":%d,\"diags\":[%s],\"findings\":[%s]}\n"
               (str id)
               (String.concat "," (List.map string_of_int a.starts))
               a.n_seeds a.records_ok a.records_skipped
               (String.concat "," (List.map str a.diags))
               (String.concat ","
                  (List.map Fetch_check.Finding.to_json a.findings)))
      | Error f ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"binary\",\"id\":%s,\"status\":\"failed\",\"error\":%s}\n"
               (str id) (str f.Pool.f_exn)))
    t.results;
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
           (str n) v))
    t.merged.Obs.counters;
  if timings then begin
    List.iter
      (fun (a : Report.agg) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\":\"stage\",\"name\":%s,\"calls\":%d,\"total_ms\":%.3f}\n"
             (str a.agg_name) a.agg_calls
             (Int64.to_float a.agg_total_ns /. 1e6)))
      (Report.aggregate_spans t.merged);
    (* distributions are timing-derived (binary wall time, xref round
       cost), so they stay out of the deterministic no-timings report *)
    List.iter
      (fun (n, h) ->
        if h.Obs.count > 0 then
          Buffer.add_string buf (Report.histogram_json n h ^ "\n"))
      t.merged.Obs.histograms;
    Buffer.add_string buf
      (Printf.sprintf
         "{\"type\":\"summary\",\"binaries\":%d,\"ok\":%d,\"failed\":%d,\"domains\":%d,\"wall_s\":%.3f}\n"
         (List.length t.results) t.n_ok t.n_failed t.domains t.wall_s)
  end
  else
    Buffer.add_string buf
      (Printf.sprintf
         "{\"type\":\"summary\",\"binaries\":%d,\"ok\":%d,\"failed\":%d}\n"
         (List.length t.results) t.n_ok t.n_failed);
  Buffer.contents buf
