(** Algorithm 1: tail-call detection and non-contiguous function merging
    (§V-B) — the fix for FDE-introduced false positives.

    For every direct/conditional jump leaving a function, the jump is a
    tail call iff (1) the CFI-recorded stack height at the jump site is
    zero (rsp right below the return address), (2) the target satisfies the
    calling convention, and (3) the target is referenced somewhere other
    than jumps of the current function.  A jump that is not a tail call,
    whose target has its own FDE and is referenced only by jumps of the
    current function, connects two parts of one non-contiguous function:
    the parts are merged and the target removed from the start list. *)

open Fetch_analysis
module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance

(* Stage instrumentation: one (jump site, external target) pair is
   examined per height-resolved out-jump; each non-tail-call verdict is
   attributed to the first failing rule of Algorithm 1. *)
let c_pairs = Obs.counter "tailcall.pairs_examined"
let c_tail_calls = Obs.counter "tailcall.tail_calls"
let c_merges = Obs.counter "tailcall.merges"
let c_skipped = Obs.counter "tailcall.skipped_incomplete_cfi"
let c_rej_height = Obs.counter "tailcall.reject.cfa_height"
let c_rej_refs = Obs.counter "tailcall.reject.jump_only_refs"
let c_rej_callconv = Obs.counter "tailcall.reject.callconv"

type decision =
  | Tail_call of { site : int; target : int }
  | Merged of { site : int; target : int; into : int }

type outcome = {
  kept_starts : int list;
  tail_calls : (int * int) list;  (** site, target *)
  merges : (int * int) list;  (** merged secondary start, parent entry *)
  skipped_incomplete : int;  (** functions skipped for incomplete CFI *)
}

(* Is [t] inside function [f] (any of its committed blocks or its entry)? *)
let target_inside (f : Recursive.func) t =
  t = f.entry || List.exists (fun (lo, hi) -> t >= lo && t < hi) f.blocks

(** Where the stack heights at jump sites come from.  The paper's choice is
    the CFI oracle; [Static] plugs in a static analysis instead — the
    ablation §V-B argues against (incomplete/inaccurate heights hurt the
    tail-call test). *)
type height_source =
  | Cfi_oracle
  | Static of Fetch_analysis.Stack_height.style

(** Run Algorithm 1 over the current detection result.  [refs], when
    given, must be the reference census of exactly this [res] — callers
    that already collected it (the pipeline's broken-FDE check) pass it
    in so the census is not computed twice.  [jump_only_refs], when
    given, replaces the criterion-3 census query ("is [target]
    referenced only by jumps of [entry]?") — the seam through which the
    rule engine's derived [jump_only_refs] relation is differentially
    tested against the imperative census. *)
let run ?(heights = Cfi_oracle) ?refs ?jump_only_refs loaded
    (res : Recursive.result) =
  Obs.span "tailcall" @@ fun () ->
  let refs =
    match refs with Some r -> r | None -> Refs.collect loaded res
  in
  let jump_only_refs =
    match jump_only_refs with
    | Some f -> f
    | None ->
        fun ~entry t -> not (Refs.referenced_outside_jumps_of refs ~entry t)
  in
  let starts = Recursive.starts res in
  let removed = Hashtbl.create 16 in
  let tail_calls = ref [] in
  let merges = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun entry ->
      match Hashtbl.find_opt res.funcs entry with
      | None -> ()
      | Some f ->
          let height_at =
            match heights with
            | Cfi_oracle ->
                Fetch_dwarf.Height_oracle.height_at loaded.Loaded.oracle
            | Static style ->
                let tbl =
                  Fetch_analysis.Stack_height.analyze loaded ~style entry
                in
                Hashtbl.find_opt tbl
          in
          (* the paper skips whole functions whose CFI has no complete
             rsp-based height information; the static variant has no such
             self-knowledge and processes everything *)
          if
            heights = Cfi_oracle
            && not
                 (Fetch_dwarf.Height_oracle.complete_at loaded.Loaded.oracle
                    entry)
          then begin
            Obs.incr c_skipped;
            incr skipped;
            if Prov.enabled () then
              Prov.emit ~ev:"alg1.skip" ~addr:entry
                [ ("reason", Prov.S "incomplete_cfi") ]
          end
          else
            List.iter
              (fun (site, _insn, t) ->
                if not (target_inside f t) then
                  match height_at site with
                  | None -> ()
                  | Some h ->
                      Obs.incr c_pairs;
                      (* Algorithm 1 rule ids for the ledger: the
                         subject of each event is the jump target (the
                         candidate tail-callee / secondary part). *)
                      let reject rule operands =
                        if Prov.enabled () then
                          Prov.emit ~ev:"alg1.reject" ~addr:t
                            (("rule", Prov.S rule)
                            :: ("site", Prov.I site) :: ("entry", Prov.I entry)
                            :: operands)
                      in
                      (* same short-circuit order as the paper's
                         conjunction; the first failing rule gets the
                         rejection *)
                      let is_tail =
                        if h <> 0 then begin
                          Obs.incr c_rej_height;
                          reject "cfa_height" [ ("height", Prov.I h) ];
                          false
                        end
                        else if jump_only_refs ~entry t then begin
                          Obs.incr c_rej_refs;
                          reject "jump_only_refs" [];
                          false
                        end
                        else if
                          not
                            (Callconv.meets_call_conv
                               ~noreturn:(Hashtbl.mem res.noreturn)
                               ~cond_noreturn:(Hashtbl.mem res.cond_noreturn)
                               loaded t)
                        then begin
                          Obs.incr c_rej_callconv;
                          reject "callconv" [];
                          false
                        end
                        else true
                      in
                      if is_tail then begin
                        Obs.incr c_tail_calls;
                        if Prov.enabled () then
                          Prov.emit ~ev:"alg1.tail_call" ~addr:t
                            [ ("site", Prov.I site); ("entry", Prov.I entry) ];
                        tail_calls := (site, t) :: !tail_calls
                      end
                      else if
                        Loaded.fde_starting_at loaded t
                        && jump_only_refs ~entry t
                        && (not (Hashtbl.mem removed t))
                        && t <> entry
                      then begin
                        Obs.incr c_merges;
                        if Prov.enabled () then
                          Prov.emit ~ev:"alg1.merge" ~addr:t
                            [ ("parent", Prov.I entry); ("site", Prov.I site) ];
                        Hashtbl.replace removed t entry;
                        merges := (t, entry) :: !merges
                      end)
              f.all_jump_sites)
    starts;
  {
    kept_starts = List.filter (fun s -> not (Hashtbl.mem removed s)) starts;
    tail_calls = !tail_calls;
    merges = !merges;
    skipped_incomplete = !skipped;
  }
