(** Reference collection (§IV-E): the conservative super-set of potential
    function pointers, and the reference census Algorithm 1 needs.

    Pointer candidates come from two sources: every consecutive 8-byte
    window of the data sections ([.eh_frame] excluded — unwinding
    metadata is not program data), and every constant operand of the
    disassembled code (immediates, absolute displacements, resolved
    RIP-relative targets). *)

type kind =
  | Data_pointer of int  (** found at this data address *)
  | Code_constant of int  (** constant operand of the instruction here *)
  | Call_target of int  (** direct call site *)
  | Jump_target of int * int  (** jump site, owning function entry *)

type t

(** References to a given target address. *)
val refs_to : t -> int -> kind list

(** Iterate targets with their reference lists (newest first — [collect]
    and [incr_refresh] prepend, so a remembered length identifies the
    new prefix).  Feeds the ref relations of {!Fact_base}. *)
val iter : t -> (int -> kind list -> unit) -> unit

(** Collect all references in the binary given the current disassembly. *)
val collect : Fetch_analysis.Loaded.t -> Fetch_analysis.Recursive.result -> t

(** Accumulator for incremental collection across xref rounds: the
    data-section window refs (computed once, with a rolling unsafe-read
    prefilter) plus the code refs of every span / function seen so far. *)
type incr

(** Create the accumulator and run the one-time data-section window
    scan. *)
val incr_create : Fetch_analysis.Loaded.t -> incr

(** Fold the refs of a (monotonically grown) result into the accumulated
    table and return it.  Sound only when successive results only add
    spans and functions — what {!Fetch_analysis.Recursive.extend}
    guarantees; then the result equals [collect loaded res]. *)
val incr_refresh : incr -> Fetch_analysis.Recursive.result -> t

(** Candidate pointers for §IV-E validation: data pointers and code
    constants only (call/jump targets are already handled by the
    recursion), ascending. *)
val pointer_candidates : t -> int list

(** Is [target] referenced by anything other than jumps from [entry]?
    (Criterion 3 of Algorithm 1.) *)
val referenced_outside_jumps_of : t -> entry:int -> int -> bool

(** Is [target] referenced at all ([HasRefTo])? *)
val has_ref : t -> int -> bool
