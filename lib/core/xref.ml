(** Function-pointer detection and validation (§IV-E).

    Every candidate pointer is validated by speculative conservative
    disassembly checking the paper's four error classes:

    (i)   invalid opcodes;
    (ii)  running into the middle of previously disassembled instructions;
    (iii) control transfers into the middle of previously detected
          functions;
    (iv)  calling-convention violations (non-argument register read before
          initialization).

    Survivors become new function starts; the pointer collection is then
    refreshed from the enlarged disassembly and the process repeats. *)

open Fetch_x86
open Fetch_analysis
module Obs = Fetch_obs.Trace

let max_spec_insns = 200
let max_spec_blocks = 24

(* Stage instrumentation: every candidate validation ends in exactly one
   of accepted / the four §IV-E rejection classes, so
   [candidates_scanned = accepted + Σ rejects] holds for a run. *)
let c_candidates = Obs.counter "xref.candidates_scanned"
let c_accepted = Obs.counter "xref.accepted"
let c_rounds = Obs.counter "xref.rounds"
let c_rej_opcode = Obs.counter "xref.reject.invalid_opcode"
let c_rej_mid = Obs.counter "xref.reject.mid_instruction"
let c_rej_into = Obs.counter "xref.reject.into_function"
let c_rej_callconv = Obs.counter "xref.reject.callconv"

(* Instruction-boundary test against the committed disassembly. *)
let mid_instruction (res : Recursive.result) loaded addr =
  match Fetch_util.Interval_map.find res.insn_spans addr with
  | None -> false
  | Some (lo, _, ()) ->
      (* walk the span's instruction boundaries *)
      let rec walk a = a < addr && (match Loaded.insn_at loaded a with
        | Some (_, len) -> walk (a + len)
        | None -> true)
      in
      if addr = lo then false else walk lo

(* Function-extent map: committed blocks of every detected function. *)
let function_extents (res : Recursive.result) =
  let m = Fetch_util.Interval_map.create () in
  Hashtbl.iter
    (fun entry (f : Recursive.func) ->
      List.iter
        (fun (lo, hi) ->
          if hi > lo then Fetch_util.Interval_map.add_override m ~lo ~hi entry)
        f.blocks)
    res.funcs;
  m

type reject =
  | Invalid_opcode
  | Mid_instruction
  | Transfer_into_function
  | Bad_call_conv

(** Validate [cand] as a function start against the committed results. *)
let validate loaded (res : Recursive.result) ~extents cand =
  if not (Loaded.in_text loaded cand) then Error Invalid_opcode
  else if Hashtbl.mem res.funcs cand then Error Mid_instruction (* already known *)
  else if mid_instruction res loaded cand then Error Mid_instruction
  else if
    (* a pointer into the body of a previously detected function is a
       control transfer into its middle (error iii) — jump-table entries
       land here, for example *)
    match Fetch_util.Interval_map.find extents cand with
    | Some (_, _, entry) -> entry <> cand
    | None -> false
  then Error Transfer_into_function
  else begin
    (* speculative conservative disassembly *)
    let visited = Hashtbl.create 16 in
    let exception Reject of reject in
    let check_target t =
      if Hashtbl.mem res.funcs t then ()
      else begin
        if mid_instruction res loaded t then raise (Reject Mid_instruction);
        match Fetch_util.Interval_map.find extents t with
        | Some (_, _, entry) when entry <> t ->
            raise (Reject Transfer_into_function)
        | Some _ | None -> ()
      end
    in
    let rec walk_block fuel addr frontier =
      if fuel <= 0 then frontier
      else if Hashtbl.mem res.funcs addr then frontier
      else
        match Loaded.insn_at loaded addr with
        | None -> raise (Reject Invalid_opcode)
        | Some (insn, len) -> (
            if mid_instruction res loaded addr then raise (Reject Mid_instruction);
            match Semantics.flow insn with
            | Semantics.Fall -> walk_block (fuel - 1) (addr + len) frontier
            | Semantics.Ret | Semantics.Halt -> frontier
            | Semantics.Jump (Semantics.Direct t) ->
                check_target t;
                if Loaded.in_text loaded t then t :: frontier else frontier
            | Semantics.Cond t ->
                check_target t;
                walk_block (fuel - 1) (addr + len)
                  (if Loaded.in_text loaded t then t :: frontier else frontier)
            | Semantics.Jump (Semantics.Indirect _) -> frontier
            | Semantics.Callf (Semantics.Direct t) ->
                check_target t;
                walk_block (fuel - 1) (addr + len) frontier
            | Semantics.Callf (Semantics.Indirect _) ->
                walk_block (fuel - 1) (addr + len) frontier)
    in
    try
      let rec bfs blocks frontier =
        match frontier with
        | [] -> ()
        | addr :: rest ->
            if blocks <= 0 then ()
            else if Hashtbl.mem visited addr then bfs blocks rest
            else begin
              Hashtbl.replace visited addr ();
              let extra = walk_block max_spec_insns addr [] in
              bfs (blocks - 1) (extra @ rest)
            end
      in
      bfs max_spec_blocks [ cand ];
      let noreturn t = Hashtbl.mem res.noreturn t in
      if Callconv.validate ~noreturn ~cond_noreturn:(Hashtbl.mem res.cond_noreturn) loaded cand = Callconv.Invalid then
        Error Bad_call_conv
      else Ok ()
    with Reject r -> Error r
  end

(** First acceptable candidate in ascending order, or [None]. *)
let first_accepted loaded (res : Recursive.result) =
  let refs = Refs.collect loaded res in
  let extents = function_extents res in
  let rec go = function
    | [] -> None
    | cand :: rest -> (
        Obs.incr c_candidates;
        match validate loaded res ~extents cand with
        | Ok () -> Some cand
        | Error r ->
            Obs.incr
              (match r with
              | Invalid_opcode -> c_rej_opcode
              | Mid_instruction -> c_rej_mid
              | Transfer_into_function -> c_rej_into
              | Bad_call_conv -> c_rej_callconv);
            go rest)
  in
  go (Refs.pointer_candidates refs)

(** Iterated detection (§IV-E): accept one legitimate pointer at a time and
    immediately refresh the disassembly and the pointer collection with it,
    so later candidates are judged against the updated function extents. *)
let detect ?(config = Recursive.safe_config) loaded ~seeds =
  Obs.span "xref" @@ fun () ->
  let rec loop budget seeds res =
    if budget <= 0 then (res, seeds)
    else begin
      Obs.incr c_rounds;
      match first_accepted loaded res with
      | None -> (res, seeds)
      | Some cand ->
          Obs.incr c_accepted;
          let seeds' = List.sort_uniq compare (cand :: seeds) in
          let res' = Recursive.run ~config loaded ~seeds:seeds' in
          loop (budget - 1) seeds' res'
    end
  in
  let res0 = Recursive.run ~config loaded ~seeds in
  loop 64 seeds res0
