(** Function-pointer detection and validation (§IV-E).

    Every candidate pointer is validated by speculative conservative
    disassembly checking the paper's four error classes:

    (i)   invalid opcodes;
    (ii)  running into the middle of previously disassembled instructions;
    (iii) control transfers into the middle of previously detected
          functions;
    (iv)  calling-convention violations (non-argument register read before
          initialization).

    Survivors become new function starts; the pointer collection is then
    refreshed from the enlarged disassembly and the process repeats.

    The iteration is incremental by default ({!Incremental}): each
    accepted pointer extends the committed disassembly via
    {!Fetch_analysis.Recursive.extend} instead of re-running every seed,
    the ref table is folded forward via {!Refs.incr_refresh} instead of
    re-collected, and rejection verdicts that cannot change while the
    committed state only grows are cached.  {!Rescan} re-runs everything
    from scratch each round — kept as the executable specification the
    differential property test checks the incremental engine against. *)

open Fetch_x86
open Fetch_analysis
module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance

let max_spec_insns = 200
let max_spec_blocks = 24

(* Stage instrumentation: every *fresh* candidate validation ends in
   exactly one of accepted / the four §IV-E rejection classes, so
   [candidates_scanned = accepted + Σ rejects] holds for a run.
   Candidates skipped without validation are counted separately:
   already-detected entries under [known_entries_skipped] (they are not
   §IV-E validations at all) and cached permanent rejections under
   [reject_cache_hits]. *)
let c_candidates = Obs.counter "xref.candidates_scanned"
let c_accepted = Obs.counter "xref.accepted"
let c_rounds = Obs.counter "xref.rounds"
let c_rej_opcode = Obs.counter "xref.reject.invalid_opcode"
let c_rej_mid = Obs.counter "xref.reject.mid_instruction"
let c_rej_into = Obs.counter "xref.reject.into_function"
let c_rej_callconv = Obs.counter "xref.reject.callconv"
let c_known = Obs.counter "xref.known_entries_skipped"
let c_cache_hits = Obs.counter "xref.reject_cache_hits"
let c_budget = Obs.counter "xref.budget_exhausted"

(* Per-binary distributions: how many rounds a binary needs and what each
   round costs. *)
let h_rounds = Obs.histogram "xref.rounds"
let h_round_cost_ms = Obs.histogram "xref.round_cost_ms"

(* Instruction-boundary test against the committed disassembly.  The span
   map holds one interval per decoded instruction, so it already *is* a
   memoized boundary index: an address is mid-instruction iff its
   containing interval does not start there.  (The previous
   implementation re-walked the span through the decoder — O(span
   length) — and was vacuous besides: the walk started at the containing
   instruction and could never stop strictly below [addr], so error (ii)
   never fired and mid-instruction pointers were only caught later as
   transfers into function bodies.) *)
let mid_instruction (res : Recursive.result) addr =
  match Fetch_util.Interval_map.find res.insn_spans addr with
  | None -> false
  | Some (lo, _, ()) -> addr <> lo

(* Function-extent map: committed blocks of every detected function.
   Overlapping blocks (shared code) resolve byte-wise to the highest
   owning entry via [add_max], whose result is independent of insertion
   order — so the map can be grown incrementally across rounds (only new
   functions folded in) and still equal a from-scratch rebuild, and the
   recorded [into] attribution cannot depend on hash iteration order. *)
let extents_add m entry (f : Recursive.func) =
  List.iter
    (fun (lo, hi) ->
      if hi > lo then Fetch_util.Interval_map.add_max m ~lo ~hi entry)
    f.blocks

let function_extents (res : Recursive.result) =
  let m = Fetch_util.Interval_map.create () in
  Hashtbl.iter (fun entry f -> extents_add m entry f) res.funcs;
  m

type extents = {
  ext_map : int Fetch_util.Interval_map.t;
  ext_seen : (int, unit) Hashtbl.t;
}

let extents_create () =
  { ext_map = Fetch_util.Interval_map.create (); ext_seen = Hashtbl.create 256 }

let extents_refresh st (res : Recursive.result) =
  Hashtbl.iter
    (fun entry f ->
      if not (Hashtbl.mem st.ext_seen entry) then begin
        Hashtbl.replace st.ext_seen entry ();
        extents_add st.ext_map entry f
      end)
    res.funcs;
  st.ext_map

type reject =
  | Invalid_opcode
  | Mid_instruction
  | Transfer_into_function
  | Bad_call_conv

let reject_name = function
  | Invalid_opcode -> "invalid_opcode"
  | Mid_instruction -> "mid_instruction"
  | Transfer_into_function -> "into_function"
  | Bad_call_conv -> "callconv"

type verdict =
  | Accept
  | Known_function
  | Rejected of {
      reason : reject;
      fields : (string * Prov.value) list;
      permanent : bool;
    }

(** Validate [cand] as a function start against the committed results.
    A rejection carries its §IV-E evidence operands for the ledger —
    where the violation was observed ([at]), which function body a
    transfer lands in ([into]), or the call-convention violation site
    and register ([viol_at]/[viol_reg]) — plus whether it is [permanent]:
    the shallow rejections (outside text, candidate itself mid-instruction
    or inside a committed body) can never flip while the committed state
    only grows, whereas speculative-walk and calling-convention verdicts
    can (a newly detected function can stop the walk earlier). *)
let validate loaded (res : Recursive.result) ~extents cand : verdict =
  if not (Loaded.in_text loaded cand) then
    Rejected
      {
        reason = Invalid_opcode;
        fields = [ ("why", Prov.S "outside_text") ];
        permanent = true;
      }
  else if Hashtbl.mem res.funcs cand then
    (* an already-detected entry is not a §IV-E validation subject *)
    Known_function
  else if mid_instruction res cand then
    Rejected { reason = Mid_instruction; fields = []; permanent = true }
  else
    match Fetch_util.Interval_map.find extents cand with
    | Some (_, _, entry) when entry <> cand ->
        (* a pointer into the body of a previously detected function is a
           control transfer into its middle (error iii) — jump-table
           entries land here, for example *)
        Rejected
          {
            reason = Transfer_into_function;
            fields = [ ("into", Prov.I entry) ];
            permanent = true;
          }
    | Some _ | None -> begin
        (* speculative conservative disassembly *)
        let visited = Hashtbl.create 16 in
        let exception Reject of reject * (string * Prov.value) list in
        let check_target t =
          if Hashtbl.mem res.funcs t then ()
          else begin
            if mid_instruction res t then
              raise (Reject (Mid_instruction, [ ("at", Prov.I t) ]));
            match Fetch_util.Interval_map.find extents t with
            | Some (_, _, entry) when entry <> t ->
                raise
                  (Reject
                     ( Transfer_into_function,
                       [ ("at", Prov.I t); ("into", Prov.I entry) ] ))
            | Some _ | None -> ()
          end
        in
        let rec walk_block fuel addr frontier =
          if fuel <= 0 then frontier
          else if Hashtbl.mem res.funcs addr then frontier
          else
            match Loaded.insn_at loaded addr with
            | None -> raise (Reject (Invalid_opcode, [ ("at", Prov.I addr) ]))
            | Some (insn, len) -> (
                if mid_instruction res addr then
                  raise (Reject (Mid_instruction, [ ("at", Prov.I addr) ]));
                match Semantics.flow insn with
                | Semantics.Fall -> walk_block (fuel - 1) (addr + len) frontier
                | Semantics.Ret | Semantics.Halt -> frontier
                | Semantics.Jump (Semantics.Direct t) ->
                    check_target t;
                    if Loaded.in_text loaded t then t :: frontier else frontier
                | Semantics.Cond t ->
                    check_target t;
                    walk_block (fuel - 1) (addr + len)
                      (if Loaded.in_text loaded t then t :: frontier
                       else frontier)
                | Semantics.Jump (Semantics.Indirect _) -> frontier
                | Semantics.Callf (Semantics.Direct t) ->
                    check_target t;
                    walk_block (fuel - 1) (addr + len) frontier
                | Semantics.Callf (Semantics.Indirect _) ->
                    walk_block (fuel - 1) (addr + len) frontier)
        in
        try
          let rec bfs blocks frontier =
            match frontier with
            | [] -> ()
            | addr :: rest ->
                if blocks <= 0 then ()
                else if Hashtbl.mem visited addr then bfs blocks rest
                else begin
                  Hashtbl.replace visited addr ();
                  let extra = walk_block max_spec_insns addr [] in
                  bfs (blocks - 1) (extra @ rest)
                end
          in
          bfs max_spec_blocks [ cand ];
          let noreturn t = Hashtbl.mem res.noreturn t in
          let cond_noreturn t = Hashtbl.mem res.cond_noreturn t in
          if
            Callconv.validate ~noreturn ~cond_noreturn loaded cand
            = Callconv.Invalid
          then
            (* the evidence costs a second (diagnostic) walk; gather it
               only when the ledger is recording *)
            let fields =
              if not (Prov.enabled ()) then []
              else
                match
                  Callconv.validate_diag ~noreturn ~cond_noreturn loaded cand
                with
                | Error (v : Callconv.violation) ->
                    ("viol_at", Prov.I v.at)
                    ::
                    (match v.reg with
                    | Some r -> [ ("viol_reg", Prov.S (Reg.name64 r)) ]
                    | None -> [ ("viol_reg", Prov.S "undecodable") ])
                | Ok () -> []
            in
            Rejected { reason = Bad_call_conv; fields; permanent = false }
          else Accept
        with Reject (reason, fields) ->
          Rejected { reason; fields; permanent = false }
      end

type strategy = Incremental | Rescan

let strategy_name = function Incremental -> "incremental" | Rescan -> "rescan"

(** Iterated detection (§IV-E): accept one legitimate pointer at a time and
    immediately refresh the disassembly and the pointer collection with it,
    so later candidates are judged against the updated function extents.

    Each round runs under an ["xref.round"] span carrying the round
    index and (when one is found) the accepted pointer, inside a ledger
    scope adding [round] to every §IV-E event, and is observed into the
    [xref.round_cost_ms] histogram; the per-binary round count goes to
    the [xref.rounds] histogram.

    Validation, counting and the permanent-reject cache are shared
    between the two strategies — only the substrate differs (extend +
    incremental refs vs full re-run + re-collect) — so the §IV-E
    counters and the accept/reject event stream are strategy-invariant
    by construction. *)
let detect ?(config = Recursive.safe_config) ?(strategy = Incremental)
    ?(max_rounds = 64) ?on_commit loaded ~seeds =
  (* the initial seed disassembly is stage-2 work and reports under its
     own "recursive" span; the "xref" stage below times §IV-E pointer
     detection only, so its mean is the cost of the rounds, not of the
     base disassembly they extend *)
  let res0 = Recursive.run ~config loaded ~seeds in
  Obs.span ~args:[ ("strategy", strategy_name strategy) ] "xref" @@ fun () ->
  let incr_refs =
    match strategy with
    | Incremental -> Some (Refs.incr_create loaded)
    | Rescan -> None
  in
  let refresh res =
    match incr_refs with
    | Some inc -> Refs.incr_refresh inc res
    | None -> Refs.collect loaded res
  in
  (* Incremental rounds only ever add functions (and never mutate
     committed records), so the extent map can be grown in place.
     Rescan rebuilds the whole result each round — prior records are not
     stable — so its extents are rebuilt too; [add_max] makes the two
     byte-identical, which the differential property test relies on. *)
  let ext_state =
    match strategy with
    | Incremental -> Some (extents_create ())
    | Rescan -> None
  in
  let extents_of res =
    match ext_state with
    | Some st -> extents_refresh st res
    | None -> function_extents res
  in
  (* permanent rejections survive rounds: the committed state only grows,
     so these candidates can never flip to acceptable (they can still
     become detected *entries* via recursion — which is why the
     known-function check precedes the cache lookup) *)
  let reject_cache : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let accept_one res =
    let refs = refresh res in
    let extents = extents_of res in
    let rec go = function
      | [] -> None
      | cand :: rest ->
          if Hashtbl.mem res.Recursive.funcs cand then begin
            Obs.incr c_known;
            go rest
          end
          else if Hashtbl.mem reject_cache cand then begin
            Obs.incr c_cache_hits;
            go rest
          end
          else begin
            Obs.incr c_candidates;
            match validate loaded res ~extents cand with
            | Known_function ->
                (* unreachable: filtered above before counting *)
                Obs.incr c_known;
                go rest
            | Accept ->
                if Prov.enabled () then begin
                  let origin =
                    match Refs.refs_to refs cand with
                    | Refs.Data_pointer a :: _ ->
                        [ ("via", Prov.S "data"); ("site", Prov.I a) ]
                    | Refs.Code_constant a :: _ ->
                        [ ("via", Prov.S "code"); ("site", Prov.I a) ]
                    | Refs.Call_target a :: _ ->
                        [ ("via", Prov.S "call"); ("site", Prov.I a) ]
                    | Refs.Jump_target (a, e) :: _ ->
                        [
                          ("via", Prov.S "jump");
                          ("site", Prov.I a);
                          ("entry", Prov.I e);
                        ]
                    | [] -> []
                  in
                  Prov.emit ~ev:"xref.accept" ~addr:cand origin
                end;
                Some cand
            | Rejected { reason; fields; permanent } ->
                Obs.incr
                  (match reason with
                  | Invalid_opcode -> c_rej_opcode
                  | Mid_instruction -> c_rej_mid
                  | Transfer_into_function -> c_rej_into
                  | Bad_call_conv -> c_rej_callconv);
                if Prov.enabled () then
                  Prov.emit ~ev:"xref.reject" ~addr:cand
                    (("reason", Prov.S (reject_name reason)) :: fields);
                if permanent then Hashtbl.replace reject_cache cand ();
                go rest
          end
    in
    go (Refs.pointer_candidates refs)
  in
  let rounds = ref 0 in
  let rec loop budget seeds res =
    if budget <= 0 then begin
      (* the budget ran out right after an acceptance, so candidates we
         never re-examined may still be acceptable: detection is being
         truncated, not finished.  Say so instead of stopping silently. *)
      let refs = refresh res in
      let pending =
        List.filter
          (fun c ->
            (not (Hashtbl.mem res.Recursive.funcs c))
            && not (Hashtbl.mem reject_cache c))
          (Refs.pointer_candidates refs)
      in
      if pending <> [] then begin
        Obs.incr c_budget;
        if Prov.enabled () then
          Prov.emit ~ev:"xref.budget_exhausted" ~addr:(List.hd pending)
            [
              ("pending", Prov.I (List.length pending));
              ("rounds", Prov.I !rounds);
            ]
      end;
      (res, seeds)
    end
    else begin
      Obs.incr c_rounds;
      incr rounds;
      let k = !rounds in
      let outcome =
        Prov.with_scope [ ("round", Prov.I k) ] @@ fun () ->
        Obs.span ~args:[ ("round", string_of_int k) ] "xref.round" @@ fun () ->
        let t0 = if Obs.enabled () then Fetch_obs.Clock.now_ns () else 0L in
        let r =
          match accept_one res with
          | None -> None
          | Some cand ->
              Obs.incr c_accepted;
              Obs.set_arg "accepted" (Printf.sprintf "%#x" cand);
              let seeds' = List.sort_uniq compare (cand :: seeds) in
              let res' =
                match strategy with
                | Incremental ->
                    Recursive.extend ~config loaded ~prior:res ~seeds:[ cand ]
                | Rescan -> Recursive.run ~config loaded ~seeds:seeds'
              in
              (match on_commit with
              | Some f -> f ~cand res'
              | None -> ());
              Some (seeds', res')
        in
        if Obs.enabled () then
          Obs.observe h_round_cost_ms
            (Int64.to_int
               (Int64.div
                  (Int64.sub (Fetch_obs.Clock.now_ns ()) t0)
                  1_000_000L));
        r
      in
      match outcome with
      | None -> (res, seeds)
      | Some (seeds', res') -> loop (budget - 1) seeds' res'
    end
  in
  let result = loop max_rounds seeds res0 in
  if Obs.enabled () then Obs.observe h_rounds !rounds;
  result
