(** Function-pointer detection and validation (§IV-E).

    Every candidate pointer is validated by speculative conservative
    disassembly checking the paper's four error classes:

    (i)   invalid opcodes;
    (ii)  running into the middle of previously disassembled instructions;
    (iii) control transfers into the middle of previously detected
          functions;
    (iv)  calling-convention violations (non-argument register read before
          initialization).

    Survivors become new function starts; the pointer collection is then
    refreshed from the enlarged disassembly and the process repeats. *)

open Fetch_x86
open Fetch_analysis
module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance

let max_spec_insns = 200
let max_spec_blocks = 24

(* Stage instrumentation: every candidate validation ends in exactly one
   of accepted / the four §IV-E rejection classes, so
   [candidates_scanned = accepted + Σ rejects] holds for a run. *)
let c_candidates = Obs.counter "xref.candidates_scanned"
let c_accepted = Obs.counter "xref.accepted"
let c_rounds = Obs.counter "xref.rounds"
let c_rej_opcode = Obs.counter "xref.reject.invalid_opcode"
let c_rej_mid = Obs.counter "xref.reject.mid_instruction"
let c_rej_into = Obs.counter "xref.reject.into_function"
let c_rej_callconv = Obs.counter "xref.reject.callconv"

(* Per-binary distributions: how many rounds a binary needs, and what
   each round costs — the attribution the incremental-xref work needs
   (each accepted pointer buys one full re-disassembly round today). *)
let h_rounds = Obs.histogram "xref.rounds"
let h_round_cost_ms = Obs.histogram "xref.round_cost_ms"

(* Instruction-boundary test against the committed disassembly. *)
let mid_instruction (res : Recursive.result) loaded addr =
  match Fetch_util.Interval_map.find res.insn_spans addr with
  | None -> false
  | Some (lo, _, ()) ->
      (* walk the span's instruction boundaries *)
      let rec walk a = a < addr && (match Loaded.insn_at loaded a with
        | Some (_, len) -> walk (a + len)
        | None -> true)
      in
      if addr = lo then false else walk lo

(* Function-extent map: committed blocks of every detected function. *)
let function_extents (res : Recursive.result) =
  let m = Fetch_util.Interval_map.create () in
  Hashtbl.iter
    (fun entry (f : Recursive.func) ->
      List.iter
        (fun (lo, hi) ->
          if hi > lo then Fetch_util.Interval_map.add_override m ~lo ~hi entry)
        f.blocks)
    res.funcs;
  m

type reject =
  | Invalid_opcode
  | Mid_instruction
  | Transfer_into_function
  | Bad_call_conv

let reject_name = function
  | Invalid_opcode -> "invalid_opcode"
  | Mid_instruction -> "mid_instruction"
  | Transfer_into_function -> "into_function"
  | Bad_call_conv -> "callconv"

(** Validate [cand] as a function start against the committed results.
    A rejection carries its §IV-E evidence operands for the ledger:
    where the violation was observed ([at]), which function body a
    transfer lands in ([into]), or the call-convention violation site
    and register ([viol_at]/[viol_reg]). *)
let validate loaded (res : Recursive.result) ~extents cand :
    (unit, reject * (string * Prov.value) list) result =
  if not (Loaded.in_text loaded cand) then
    Error (Invalid_opcode, [ ("why", Prov.S "outside_text") ])
  else if Hashtbl.mem res.funcs cand then
    Error (Mid_instruction, [ ("why", Prov.S "already_function") ])
    (* already known *)
  else if mid_instruction res loaded cand then Error (Mid_instruction, [])
  else if
    (* a pointer into the body of a previously detected function is a
       control transfer into its middle (error iii) — jump-table entries
       land here, for example *)
    match Fetch_util.Interval_map.find extents cand with
    | Some (_, _, entry) -> entry <> cand
    | None -> false
  then
    Error
      ( Transfer_into_function,
        match Fetch_util.Interval_map.find extents cand with
        | Some (_, _, entry) -> [ ("into", Prov.I entry) ]
        | None -> [] )
  else begin
    (* speculative conservative disassembly *)
    let visited = Hashtbl.create 16 in
    let exception Reject of reject * (string * Prov.value) list in
    let check_target t =
      if Hashtbl.mem res.funcs t then ()
      else begin
        if mid_instruction res loaded t then
          raise (Reject (Mid_instruction, [ ("at", Prov.I t) ]));
        match Fetch_util.Interval_map.find extents t with
        | Some (_, _, entry) when entry <> t ->
            raise
              (Reject
                 (Transfer_into_function, [ ("at", Prov.I t); ("into", Prov.I entry) ]))
        | Some _ | None -> ()
      end
    in
    let rec walk_block fuel addr frontier =
      if fuel <= 0 then frontier
      else if Hashtbl.mem res.funcs addr then frontier
      else
        match Loaded.insn_at loaded addr with
        | None -> raise (Reject (Invalid_opcode, [ ("at", Prov.I addr) ]))
        | Some (insn, len) -> (
            if mid_instruction res loaded addr then
              raise (Reject (Mid_instruction, [ ("at", Prov.I addr) ]));
            match Semantics.flow insn with
            | Semantics.Fall -> walk_block (fuel - 1) (addr + len) frontier
            | Semantics.Ret | Semantics.Halt -> frontier
            | Semantics.Jump (Semantics.Direct t) ->
                check_target t;
                if Loaded.in_text loaded t then t :: frontier else frontier
            | Semantics.Cond t ->
                check_target t;
                walk_block (fuel - 1) (addr + len)
                  (if Loaded.in_text loaded t then t :: frontier else frontier)
            | Semantics.Jump (Semantics.Indirect _) -> frontier
            | Semantics.Callf (Semantics.Direct t) ->
                check_target t;
                walk_block (fuel - 1) (addr + len) frontier
            | Semantics.Callf (Semantics.Indirect _) ->
                walk_block (fuel - 1) (addr + len) frontier)
    in
    try
      let rec bfs blocks frontier =
        match frontier with
        | [] -> ()
        | addr :: rest ->
            if blocks <= 0 then ()
            else if Hashtbl.mem visited addr then bfs blocks rest
            else begin
              Hashtbl.replace visited addr ();
              let extra = walk_block max_spec_insns addr [] in
              bfs (blocks - 1) (extra @ rest)
            end
      in
      bfs max_spec_blocks [ cand ];
      let noreturn t = Hashtbl.mem res.noreturn t in
      let cond_noreturn t = Hashtbl.mem res.cond_noreturn t in
      if Callconv.validate ~noreturn ~cond_noreturn loaded cand = Callconv.Invalid
      then
        (* the evidence costs a second (diagnostic) walk; gather it only
           when the ledger is recording *)
        let fields =
          if not (Prov.enabled ()) then []
          else
            match Callconv.validate_diag ~noreturn ~cond_noreturn loaded cand with
            | Error (v : Callconv.violation) ->
                ("viol_at", Prov.I v.at)
                ::
                (match v.reg with
                | Some r -> [ ("viol_reg", Prov.S (Reg.name64 r)) ]
                | None -> [ ("viol_reg", Prov.S "undecodable") ])
            | Ok () -> []
        in
        Error (Bad_call_conv, fields)
      else Ok ()
    with Reject (r, fields) -> Error (r, fields)
  end

(** First acceptable candidate in ascending order, or [None]. *)
let first_accepted loaded (res : Recursive.result) =
  let refs = Refs.collect loaded res in
  let extents = function_extents res in
  let rec go = function
    | [] -> None
    | cand :: rest -> (
        Obs.incr c_candidates;
        match validate loaded res ~extents cand with
        | Ok () ->
            if Prov.enabled () then begin
              let origin =
                match Refs.refs_to refs cand with
                | Refs.Data_pointer a :: _ ->
                    [ ("via", Prov.S "data"); ("site", Prov.I a) ]
                | Refs.Code_constant a :: _ ->
                    [ ("via", Prov.S "code"); ("site", Prov.I a) ]
                | Refs.Call_target a :: _ ->
                    [ ("via", Prov.S "call"); ("site", Prov.I a) ]
                | Refs.Jump_target (a, e) :: _ ->
                    [ ("via", Prov.S "jump"); ("site", Prov.I a); ("entry", Prov.I e) ]
                | [] -> []
              in
              Prov.emit ~ev:"xref.accept" ~addr:cand origin
            end;
            Some cand
        | Error (r, fields) ->
            Obs.incr
              (match r with
              | Invalid_opcode -> c_rej_opcode
              | Mid_instruction -> c_rej_mid
              | Transfer_into_function -> c_rej_into
              | Bad_call_conv -> c_rej_callconv);
            if Prov.enabled () then
              Prov.emit ~ev:"xref.reject" ~addr:cand
                (("reason", Prov.S (reject_name r)) :: fields);
            go rest)
  in
  go (Refs.pointer_candidates refs)

(** Iterated detection (§IV-E): accept one legitimate pointer at a time and
    immediately refresh the disassembly and the pointer collection with it,
    so later candidates are judged against the updated function extents.

    Each round runs under an ["xref.round"] span carrying the round
    index and (when one is found) the accepted pointer, inside a ledger
    scope adding [round] to every §IV-E event, and is observed into the
    [xref.round_cost_ms] histogram; the per-binary round count goes to
    the [xref.rounds] histogram. *)
let detect ?(config = Recursive.safe_config) loaded ~seeds =
  Obs.span "xref" @@ fun () ->
  let rounds = ref 0 in
  let rec loop budget seeds res =
    if budget <= 0 then (res, seeds)
    else begin
      Obs.incr c_rounds;
      incr rounds;
      let k = !rounds in
      let outcome =
        Prov.with_scope [ ("round", Prov.I k) ] @@ fun () ->
        Obs.span ~args:[ ("round", string_of_int k) ] "xref.round" @@ fun () ->
        let t0 = if Obs.enabled () then Fetch_obs.Clock.now_ns () else 0L in
        let r =
          match first_accepted loaded res with
          | None -> None
          | Some cand ->
              Obs.incr c_accepted;
              Obs.set_arg "accepted" (Printf.sprintf "%#x" cand);
              let seeds' = List.sort_uniq compare (cand :: seeds) in
              let res' = Recursive.run ~config loaded ~seeds:seeds' in
              Some (seeds', res')
        in
        if Obs.enabled () then
          Obs.observe h_round_cost_ms
            (Int64.to_int
               (Int64.div (Int64.sub (Fetch_obs.Clock.now_ns ()) t0) 1_000_000L));
        r
      in
      match outcome with
      | None -> (res, seeds)
      | Some (seeds', res') -> loop (budget - 1) seeds' res'
    end
  in
  let res0 = Recursive.run ~config loaded ~seeds in
  let result = loop 64 seeds res0 in
  if Obs.enabled () then Obs.observe h_rounds !rounds;
  result
