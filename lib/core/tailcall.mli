(** Algorithm 1: tail-call detection and non-contiguous function merging
    (§V-B) — the fix for FDE-introduced false positives.

    For every direct/conditional jump leaving a function, the jump is a
    tail call iff (1) the stack height at the jump site is zero (rsp
    right below the return address), (2) the target satisfies the calling
    convention, and (3) the target is referenced somewhere other than
    jumps of the current function.  A jump that is not a tail call, whose
    target has its own FDE and is referenced only by jumps of the current
    function, connects two parts of one non-contiguous function: the
    parts are merged and the target removed from the start list. *)

type decision =
  | Tail_call of { site : int; target : int }
  | Merged of { site : int; target : int; into : int }

type outcome = {
  kept_starts : int list;
  tail_calls : (int * int) list;  (** site, target *)
  merges : (int * int) list;  (** merged secondary start, parent entry *)
  skipped_incomplete : int;  (** functions skipped for incomplete CFI *)
}

(** Where the stack heights at jump sites come from.  The paper's choice
    is the CFI oracle; [Static] plugs in a static analysis instead — the
    ablation §V-B argues against. *)
type height_source =
  | Cfi_oracle
  | Static of Fetch_analysis.Stack_height.style

(** Run Algorithm 1 over the current detection result.  [refs], when
    given, must be the reference census of exactly this result — callers
    that already collected it pass it in so it is not computed twice.
    [jump_only_refs] replaces the criterion-3 census query ("is the
    target referenced only by jumps of [entry]?") — the seam through
    which the rule engine's derived relation is differentially tested
    against the imperative census. *)
val run :
  ?heights:height_source ->
  ?refs:Refs.t ->
  ?jump_only_refs:(entry:int -> int -> bool) ->
  Fetch_analysis.Loaded.t ->
  Fetch_analysis.Recursive.result ->
  outcome
