(** The FETCH pipeline (§VI): FDE extraction → safe recursive disassembly
    → function-pointer detection → FDE error fixing.

    Each stage can be switched off so the evaluation can measure every
    prefix of the pipeline (Figure 5's strategy stacks). *)

type config = {
  use_symbols : bool;  (** seed from surviving symbols too *)
  recursive : bool;  (** run safe recursive disassembly *)
  xref : bool;  (** §IV-E pointer detection *)
  fix_fde_errors : bool;
      (** Algorithm 1 + the broken-FDE calling-convention check *)
  alg1_heights : Tailcall.height_source;
      (** stack-height source for Algorithm 1 (CFI oracle in the paper) *)
  engine : Fetch_analysis.Recursive.config;
  xref_strategy : Xref.strategy;
      (** incremental per-round extension (default) or the from-scratch
          rescan it is differentially tested against *)
}

val default_config : config

type result = {
  starts : int list;  (** final detected function starts, ascending *)
  eh_frame : Fetch_dwarf.Eh_frame.decoded;
      (** parse health of [.eh_frame]: recovered records, skipped records
          and the per-record diagnostics *)
  fde_starts : int list;
  final_seeds : int list;
      (** the seed set the last engine run started from: FDE starts
          (minus callconv-invalid ones), symbols, and every pointer
          §IV-E accepted — so reports can attribute each start to its
          source *)
  rec_result : Fetch_analysis.Recursive.result;
  tailcall : Tailcall.outcome option;  (** [None] when the fix stage is off *)
  invalid_fde_starts : int list;
      (** FDE starts rejected as unreferenced + calling-convention-invalid
          (the hand-broken FDEs of Fig. 6b) *)
  loaded : Fetch_analysis.Loaded.t;
}

(** Run FETCH on an already-loaded binary. *)
val run_loaded : ?config:config -> Fetch_analysis.Loaded.t -> result

(** Run FETCH on an ELF image. *)
val run : ?config:config -> Fetch_elf.Image.t -> result

(** Run FETCH on raw ELF bytes. *)
val run_bytes :
  ?config:config -> string -> (result, Fetch_elf.Decode.error) Stdlib.result
