(** Serialization of a finished pipeline run for the serve cache.

    A {!t} is the part of {!Pipeline.result} a client of the analysis
    service gets back: the detected starts, the seed census, [.eh_frame]
    parse health, rendered diagnostics and (optionally) the cross-layer
    lint findings.  {!to_json} is deterministic — same run, same bytes —
    which is what lets the serve daemon cache the serialized form and
    hand back byte-identical responses on cache hits. *)

type t = {
  starts : int list;  (** final detected function starts, ascending *)
  n_seeds : int;  (** size of the final seed set *)
  records_ok : int;
  records_skipped : int;
  indirect_derefs : int;
  diags : string list;  (** rendered [.eh_frame] diagnostics *)
  findings : Fetch_check.Finding.t list;  (** sorted (when lint ran) *)
}

(** Summarize a run; [lint] (default true) also runs {!Lint.run}. *)
val of_result : ?lint:bool -> Pipeline.result -> t

(** One compact JSON object with fixed field order:
    [{"starts":[…],"n_seeds":N,"eh_frame":{"records_ok":N,
    "records_skipped":N,"indirect_derefs":N},"diags":[…],
    "findings":[…]}].  A deterministic function of [t]. *)
val to_json : t -> string
