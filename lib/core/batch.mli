(** Parallel batch analysis: run the full FETCH pipeline (and optionally
    the cross-layer linter) over many binaries on a {!Fetch_par.Pool},
    with per-binary failure isolation and a deterministic merged report.

    Each task loads its binary, brackets its own
    [Fetch_obs.Trace.with_run] (the recorder is per-domain — see the
    contract in [trace.mli]) and returns an {!analysis}; an exception
    anywhere in a task (unreadable file, ELF decode failure, a pipeline
    bug on one input) yields an [Error failure] for that binary only.
    Results are in input order and, timings aside, independent of the
    domain count. *)

(** One unit of work: a stable identifier (path or synthetic name) and a
    loader that runs {e inside} the worker task, so IO, decode and
    analysis all parallelize — and all fail into the task's failure
    record. *)
type item = { id : string; load : unit -> Fetch_analysis.Loaded.t }

(** Item over raw ELF bytes already in memory. *)
val item_of_raw : string -> string -> item

(** Item that reads and decodes [path] when the task runs. *)
val item_of_file : string -> item

(** One binary's successful analysis. *)
type analysis = {
  starts : int list;  (** final detected function starts, ascending *)
  n_seeds : int;  (** size of the final seed set *)
  records_ok : int;  (** [.eh_frame] records decoded *)
  records_skipped : int;  (** [.eh_frame] records dropped by recovery *)
  diags : string list;  (** rendered parse diagnostics *)
  findings : Fetch_check.Finding.t list;  (** lint findings (if enabled) *)
  report : Fetch_obs.Trace.report;  (** this binary's spans and counters *)
}

type outcome = (analysis, Fetch_par.Pool.failure) result

(** A finished batch. *)
type t = {
  domains : int;
  wall_s : float;  (** wall clock for the whole batch *)
  results : (string * outcome) list;  (** per binary, in input order *)
  merged : Fetch_obs.Trace.report;
      (** {!Fetch_obs.Trace.merge} of every successful binary's report *)
  n_ok : int;
  n_failed : int;
}

(** [run ~domains ~config ~lint items] analyzes every item on a fresh
    pool ([domains] defaults to {!Fetch_par.Pool.default_domains}).
    [lint] (default [true]) also runs {!Lint.run} per binary. *)
val run :
  ?domains:int -> ?config:Pipeline.config -> ?lint:bool -> item list -> t

(** Human-readable report: one line per binary (with diagnostics and
    findings indented under it), the merged stage/counter tables, and a
    summary line. *)
val text : t -> string

(** Machine-readable report, one JSON object per line: per-binary lines
    (starts, parse health, diagnostics, findings — or the captured
    error), merged counter lines, then stage-timing lines, populated
    histogram lines (per-binary wall time [batch.binary_wall_ms],
    [xref.rounds], [xref.round_cost_ms] … with p50/p90/p99) and a
    summary.  With [timings:false] the stage and histogram lines are
    dropped and the summary carries no wall clock or domain count,
    making the output a deterministic function of the input binaries —
    byte-identical across domain counts, so reports can be diffed for
    equality. *)
val json_lines : ?timings:bool -> t -> string
