(** Adapter from a finished pipeline run to the cross-layer consistency
    linter ({!Fetch_check.Lint}): packages the run's layers — detected
    functions, committed instruction spans, FDE table, CFI oracle, §IV-E
    verdicts — into the linter's pipeline-agnostic view. *)

(** The linter view of a pipeline result. *)
val view_of : Pipeline.result -> Fetch_check.Lint.view

(** Lint a finished run: findings sorted most-severe-first. *)
val run : Pipeline.result -> Fetch_check.Finding.t list
