(** Adapter from a finished pipeline run to {!Fetch_check.Lint} — see the
    interface. *)

open Fetch_analysis

let view_of (r : Pipeline.result) =
  let loaded = r.Pipeline.loaded in
  let res = r.Pipeline.rec_result in
  let noreturn t = Hashtbl.mem res.Recursive.noreturn t in
  let cond_noreturn t = Hashtbl.mem res.Recursive.cond_noreturn t in
  (* the linter looks only at the functions the pipeline kept *)
  let funcs =
    List.filter_map
      (fun entry ->
        match Hashtbl.find_opt res.Recursive.funcs entry with
        | None -> None
        | Some (f : Recursive.func) ->
            Some
              {
                Fetch_check.Lint.entry;
                blocks = f.blocks;
                jumps = List.map (fun (s, _, t) -> (s, t)) f.all_jump_sites;
              })
      r.Pipeline.starts
  in
  let complete_cfi = ref [] in
  Fetch_dwarf.Height_oracle.iter_complete loaded.Loaded.oracle
    (fun ~lo ~hi -> complete_cfi := (lo, hi) :: !complete_cfi);
  {
    Fetch_check.Lint.insn_at = Loaded.insn_at loaded;
    in_text = Loaded.in_text loaded;
    funcs;
    insn_spans = res.Recursive.insn_spans;
    fdes =
      List.map
        (fun (f : Fetch_dwarf.Eh_frame.fde) ->
          (f.pc_begin, f.pc_begin + f.pc_range))
        loaded.Loaded.fdes;
    complete_cfi = List.rev !complete_cfi;
    oracle_height = Fetch_dwarf.Height_oracle.height_at loaded.Loaded.oracle;
    callconv_ok =
      (fun s ->
        Callconv.validate ~noreturn ~cond_noreturn loaded s
        <> Callconv.Invalid);
    call_returns =
      (fun ~site:_ ~target ->
        (* conditionally-noreturn callees may return: falling through is
           the sound assumption for the height comparison *)
        match target with Some t -> not (noreturn t) | None -> true);
    resolve_indirect =
      (fun ~site:_ ~window op ->
        match Jump_table.resolve loaded.Loaded.image ~prior:window op with
        | Some { Jump_table.targets; _ } -> Some targets
        | None -> None);
  }

let run r =
  let findings = Fetch_check.Lint.run (view_of r) in
  let module Prov = Fetch_obs.Provenance in
  if Prov.enabled () then
    List.iter
      (fun (f : Fetch_check.Finding.t) ->
        Prov.emit ~ev:"lint.finding" ~addr:f.addr
          (("rule", Prov.S f.rule)
          :: ("severity", Prov.S (Fetch_check.Finding.severity_label f.severity))
          ::
          (match f.related with
          | Some r -> [ ("related", Prov.I r) ]
          | None -> [])))
      findings;
  findings
