(** The declarative fact base ({!Fetch_facts}) wired to the pipeline:
    extraction of the extensional relations from a detection state, the
    core rule program, and the live incrementally-maintained session.

    The rule program unifies three analyses over one fact vocabulary:

    - the ported lint rules ({!Fetch_check.Rule_lint}) — [jump-mid-insn]
      and [fde-unreached];
    - criterion 3 of Algorithm 1 ([jump_only_refs]): is a jump target
      referenced by anything besides jumps of the function it leaves?
      Differentially tested against
      {!Refs.referenced_outside_jumps_of}, and pluggable into
      {!Tailcall.run} via its [jump_only_refs] seam;
    - a new cross-cutting split-function detector ([split_fn_fde],
      Fig. 6b-style) spanning refs, CFI and seeds: an FDE-seeded
      out-jump target reached only by one function's jumps, whose FDE
      entry CFI height equals the height at the jump site — an FDE
      describing a function fragment.

    Extraction sources: [text]/[fde]/[seed] from
    {!Fetch_analysis.Loaded}, [cfi_row] from
    {!Fetch_dwarf.Height_oracle.iter_rows} (complete entries only, so
    the relation answers exactly where [height_at] does),
    [func]/[span]/[jump]/[insn] from
    {!Fetch_analysis.Recursive.result}, and [ref_hard]/[ref_jump] from
    the {!Refs} census. *)

(** Algorithm-1 + split-function rules (the lint rules live in
    {!Fetch_check.Rule_lint}). *)
val core_rules : Fetch_facts.Rule.t list

(** The full program: lint rules + core rules. *)
val program : Fetch_facts.Rule.t list

(** One-shot build: extract facts and evaluate to fixpoint.  [entries]
    selects which functions contribute [func]/[span]/[jump] facts
    (default: every entry of the result); [xref_seeds] adds
    [seed(_, "xref")] facts. *)
val build :
  ?fuel:int ->
  ?entries:int list ->
  ?xref_seeds:int list ->
  Fetch_analysis.Loaded.t ->
  Fetch_analysis.Recursive.result ->
  Refs.t ->
  (Fetch_facts.Engine.t, string) result

(** Build from a finished pipeline run: functions are the kept starts
    (matching what {!Lint} lints), references are collected fresh, and
    accepted pointers become [seed(_, "xref")]. *)
val of_result :
  ?fuel:int -> Pipeline.result -> (Fetch_facts.Engine.t, string) result

(** Findings rendered from the engine's derived relations, sorted. *)
val findings : Fetch_facts.Engine.t -> Fetch_check.Finding.t list

(** [jump_only_refs engine ~entry t] — is [jump_only_refs(t, entry)]
    derived?  Meaningful for the out-jump pairs of the result the
    engine was built from (Algorithm 1 queries exactly those); shaped
    to plug into {!Tailcall.run}'s [jump_only_refs] seam. *)
val jump_only_refs : Fetch_facts.Engine.t -> entry:int -> int -> bool

(** {2 Live session}

    A fact base kept current while {!Xref.detect} commits accepted
    pointers: hook [live_commit] into [detect]'s [on_commit] and the
    derived relations are repaired by delta after every accepted
    pointer — never re-evaluated from scratch.  The property test in
    the suite holds the live store equal to a from-scratch build after
    every commit. *)

type live

(** Extract the binary-level facts, then fold in [res] as the first
    commit. *)
val live_create :
  ?fuel:int ->
  Fetch_analysis.Loaded.t ->
  Fetch_analysis.Recursive.result ->
  (live, string) result

(** Fold everything committed since the last call into the engine as an
    extensional delta (assert-only: detection state only grows).
    [cand], when given, also records [seed(cand, "xref")]. *)
val live_commit : ?cand:int -> live -> Fetch_analysis.Recursive.result -> unit

val live_engine : live -> Fetch_facts.Engine.t
