(** Function-pointer detection and validation (§IV-E).

    Every candidate pointer is validated by speculative conservative
    disassembly checking the paper's four error classes; survivors are
    accepted one at a time, each immediately refreshing the disassembly
    and the pointer collection (so later candidates are judged against
    the updated function extents, as the paper specifies).

    By default the iteration is incremental: accepted pointers extend
    the committed disassembly ({!Fetch_analysis.Recursive.extend}), the
    ref table is folded forward ({!Refs.incr_refresh}), and permanent
    rejection verdicts are cached across rounds. *)

type reject =
  | Invalid_opcode  (** error (i) *)
  | Mid_instruction  (** error (ii) *)
  | Transfer_into_function  (** error (iii) *)
  | Bad_call_conv  (** error (iv) *)

(** The stable rejection id used in counters and ledger events
    ([invalid_opcode], [mid_instruction], [into_function], [callconv]). *)
val reject_name : reject -> string

(** Interval map from committed block bytes to their owning entry.
    Overlapping blocks (shared code) resolve byte-wise to the highest
    owning entry ({!Fetch_util.Interval_map.add_max}), so the result is
    independent of fold order and an incrementally grown map equals the
    from-scratch rebuild. *)
val function_extents :
  Fetch_analysis.Recursive.result -> int Fetch_util.Interval_map.t

(** Incrementally maintained function-extent map: persists across
    detection rounds, folding in only functions not yet seen. *)
type extents

val extents_create : unit -> extents

(** Fold the not-yet-seen functions of [res] into the map and return
    it.  Sound only when successive results only add functions and
    never mutate committed records — what
    {!Fetch_analysis.Recursive.extend} guarantees; then the result
    equals [function_extents res].  (The differential test in the suite
    holds the two equal after every accepted pointer.) *)
val extents_refresh :
  extents -> Fetch_analysis.Recursive.result -> int Fetch_util.Interval_map.t

(** Is the address strictly inside a committed instruction?  O(log n)
    against the per-instruction span map. *)
val mid_instruction : Fetch_analysis.Recursive.result -> int -> bool

type verdict =
  | Accept
  | Known_function
      (** already a detected entry — not a §IV-E validation subject and
          not counted as one *)
  | Rejected of {
      reason : reject;
      fields : (string * Fetch_obs.Provenance.value) list;
          (** evidence operands for the decision ledger: violation site,
              entered function, call-convention violation register *)
      permanent : bool;
          (** can never flip while the committed state only grows (the
              candidate itself is outside text, mid-instruction, or
              inside a committed body); speculative-walk and
              calling-convention rejections are not permanent *)
    }

(** Validate one candidate against the committed results. *)
val validate :
  Fetch_analysis.Loaded.t ->
  Fetch_analysis.Recursive.result ->
  extents:int Fetch_util.Interval_map.t ->
  int ->
  verdict

(** [Incremental] extends the committed state per accepted pointer;
    [Rescan] re-runs disassembly and ref collection from scratch each
    round.  Both share the validation / counting / caching driver, so
    detection results and §IV-E counters are strategy-invariant — the
    differential property test in the suite holds the two against each
    other. *)
type strategy = Incremental | Rescan

val strategy_name : strategy -> string

(** Iterated detection: run the engine from [seeds], accept legitimate
    pointers one at a time until none remains (or [max_rounds] is
    exhausted — announced via the [xref.budget_exhausted] counter and
    ledger event when candidates are still pending); returns the final
    engine result and the enlarged seed set.

    [on_commit] fires after every accepted pointer with the candidate
    and the already-extended result — the hook the incremental fact
    base ({!Fact_base}) uses to fold each commit's delta into the rule
    engine while detection runs. *)
val detect :
  ?config:Fetch_analysis.Recursive.config ->
  ?strategy:strategy ->
  ?max_rounds:int ->
  ?on_commit:(cand:int -> Fetch_analysis.Recursive.result -> unit) ->
  Fetch_analysis.Loaded.t ->
  seeds:int list ->
  Fetch_analysis.Recursive.result * int list
