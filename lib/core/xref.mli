(** Function-pointer detection and validation (§IV-E).

    Every candidate pointer is validated by speculative conservative
    disassembly checking the paper's four error classes; survivors are
    accepted one at a time, each immediately refreshing the disassembly
    and the pointer collection (so later candidates are judged against
    the updated function extents, as the paper specifies). *)

type reject =
  | Invalid_opcode  (** error (i) *)
  | Mid_instruction  (** error (ii) *)
  | Transfer_into_function  (** error (iii) *)
  | Bad_call_conv  (** error (iv) *)

(** The stable rejection id used in counters and ledger events
    ([invalid_opcode], [mid_instruction], [into_function], [callconv]). *)
val reject_name : reject -> string

(** Interval map from committed block bytes to their owning entry. *)
val function_extents :
  Fetch_analysis.Recursive.result -> int Fetch_util.Interval_map.t

(** Validate one candidate against the committed results.  A rejection
    carries its evidence operands for the decision ledger (violation
    site, entered function, call-convention violation register). *)
val validate :
  Fetch_analysis.Loaded.t ->
  Fetch_analysis.Recursive.result ->
  extents:int Fetch_util.Interval_map.t ->
  int ->
  (unit, reject * (string * Fetch_obs.Provenance.value) list) result

(** Iterated detection: run the engine from [seeds], accept legitimate
    pointers one at a time until none remains; returns the final engine
    result and the enlarged seed set. *)
val detect :
  ?config:Fetch_analysis.Recursive.config ->
  Fetch_analysis.Loaded.t ->
  seeds:int list ->
  Fetch_analysis.Recursive.result * int list
