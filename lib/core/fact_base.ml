(** The declarative fact base: extraction of extensional relations from
    a detection state, the Algorithm-1 / split-function rule program,
    and the live incrementally-maintained session — see the interface. *)

open Fetch_analysis
open Fetch_facts
module Obs = Fetch_obs.Trace

let c_edb = Obs.counter "facts.edb_tuples"

(* ------------------------------------------------------------------ *)
(* The core rule program: Algorithm 1's criterion 3 and the            *)
(* split-function detector.                                            *)

let core_rules =
  let open Rule in
  [
    (* A jump target inside its own function: either a byte of a
       committed block, or the entry itself (the entry byte belongs to
       the function even before its block is committed). *)
    make "target-in-own-span"
      (atom Schema.target_in_own [ v "E"; v "T" ])
      [
        Pos (atom Schema.jump [ v "S"; v "T"; v "E" ]);
        Pos (atom Schema.span [ v "E"; v "Lo"; v "Hi" ]);
        guard "Lo<=T<Hi" (fun b ->
            iv b "Lo" <= iv b "T" && iv b "T" < iv b "Hi");
      ];
    make "target-in-own-entry"
      (atom Schema.target_in_own [ v "E"; v "E" ])
      [ Pos (atom Schema.jump [ v "S"; v "E"; v "E" ]) ];
    make "out-jump"
      (atom Schema.out_jump [ v "E"; v "S"; v "T" ])
      [
        Pos (atom Schema.jump [ v "S"; v "T"; v "E" ]);
        Neg (atom Schema.target_in_own [ v "E"; v "T" ]);
      ];
    (* Criterion 3 of Algorithm 1: the target of an out-jump is
       "referenced outside jumps of [E]" iff some hard (data / code /
       call) reference hits it, or a jump owned by another function
       does.  [jump_only_refs] is the negation, defined exactly on
       out-jump pairs — the pairs Algorithm 1 asks about. *)
    make "ref-outside-hard"
      (atom Schema.ref_outside [ v "T"; v "E" ])
      [
        Pos (atom Schema.out_jump [ v "E"; v "S"; v "T" ]);
        Pos (atom Schema.ref_hard [ v "T"; v "K"; v "Site" ]);
      ];
    make "ref-outside-jump"
      (atom Schema.ref_outside [ v "T"; v "E" ])
      [
        Pos (atom Schema.out_jump [ v "E"; v "S"; v "T" ]);
        Pos (atom Schema.ref_jump [ v "T"; v "Site"; v "O" ]);
        guard "O<>E" (fun b -> iv b "O" <> iv b "E");
      ];
    make "jump-only-refs"
      (atom Schema.jump_only_refs [ v "T"; v "E" ])
      [
        Pos (atom Schema.out_jump [ v "E"; v "S"; v "T" ]);
        Neg (atom Schema.ref_outside [ v "T"; v "E" ]);
      ];
    make "fde-start"
      (atom Schema.fde_start [ v "F" ])
      [ Pos (atom Schema.fde [ v "F"; v "FHi" ]) ];
    make "jump-height"
      (atom Schema.jump_height [ v "S"; v "H" ])
      [
        Pos (atom Schema.jump [ v "S"; v "T"; v "E" ]);
        Pos (atom Schema.cfi_row [ v "Lo"; v "Hi"; v "H" ]);
        guard "Lo<=S<Hi" (fun b ->
            iv b "Lo" <= iv b "S" && iv b "S" < iv b "Hi");
      ];
    (* Fig. 6b-style split-function detector, cross-cutting refs + CFI +
       seeds: an out-jump target that is an FDE-derived seed (it carries
       its own FDE), is reached by nothing but jumps of one function,
       and whose FDE's entry-point CFI height is nonzero and equals the
       height at the jump site — the parent's frame is still live and
       never changed hands, so the FDE describes a split-off fragment of
       [E], not a function.  The nonzero guard excludes genuine tail
       calls (frame gone, both heights 0).  rbp-framed fragments have no
       rsp-based entry height and stay silent (the paper's conservative
       choice), as does any fragment with an outside reference. *)
    make "split-fn-fde"
      (atom Schema.split_fn_fde [ v "T"; v "E"; v "S"; v "H" ])
      [
        Pos (atom Schema.out_jump [ v "E"; v "S"; v "T" ]);
        Pos (atom Schema.seed [ v "T"; s "fde" ]);
        Pos (atom Schema.jump_height [ v "S"; v "H" ]);
        Pos (atom Schema.fde_entry_height [ v "T"; v "H" ]);
        guard "H<>0" (fun b -> iv b "H" <> 0);
        Neg (atom Schema.ref_outside [ v "T"; v "E" ]);
      ];
  ]

let program = Fetch_check.Rule_lint.program @ core_rules

(* ------------------------------------------------------------------ *)
(* Extraction of the extensional relations.                            *)

let add_fact store rel tup =
  if Store.add store rel tup then Obs.incr c_edb

(* Binary-level facts: fixed for the binary's lifetime, asserted once. *)
let base_facts store (loaded : Loaded.t) =
  List.iter
    (fun (lo, hi) -> add_fact store Schema.text [| Fact.I lo; Fact.I hi |])
    (Loaded.text_ranges loaded);
  List.iter
    (fun (f : Fetch_dwarf.Eh_frame.fde) ->
      add_fact store Schema.fde
        [| Fact.I f.pc_begin; Fact.I (f.pc_begin + f.pc_range) |])
    loaded.Loaded.fdes;
  Fetch_dwarf.Height_oracle.iter_rows loaded.Loaded.oracle
    (fun ~lo ~hi ~height ->
      add_fact store Schema.cfi_row [| Fact.I lo; Fact.I hi; Fact.I height |]);
  (* entry heights come from the raw CFI truth, not the completeness-
     filtered rows above: a cold fragment's FDE starts mid-frame and so
     never passes the §V-B test, but its entry height is exactly what
     the split-function rule must match against the jump site *)
  List.iter
    (fun (f : Fetch_dwarf.Eh_frame.fde) ->
      match
        Fetch_dwarf.Height_oracle.height_at_unchecked loaded.Loaded.oracle
          f.pc_begin
      with
      | Some h ->
          add_fact store Schema.fde_entry_height
            [| Fact.I f.pc_begin; Fact.I h |]
      | None -> ())
    loaded.Loaded.fdes;
  List.iter
    (fun a -> add_fact store Schema.seed [| Fact.I a; Fact.S "fde" |])
    loaded.Loaded.fde_starts;
  List.iter
    (fun a -> add_fact store Schema.seed [| Fact.I a; Fact.S "symbol" |])
    loaded.Loaded.symbol_starts

let func_facts entry (f : Recursive.func) acc =
  let acc = (Schema.func, [| Fact.I entry |]) :: acc in
  let acc =
    List.fold_left
      (fun acc (lo, hi) ->
        if hi > lo then
          (Schema.span, [| Fact.I entry; Fact.I lo; Fact.I hi |]) :: acc
        else acc)
      acc f.blocks
  in
  List.fold_left
    (fun acc (site, _, target) ->
      (Schema.jump, [| Fact.I site; Fact.I target; Fact.I entry |]) :: acc)
    acc f.all_jump_sites

let kind_fact target = function
  | Refs.Data_pointer site ->
      (Schema.ref_hard, [| Fact.I target; Fact.S "data"; Fact.I site |])
  | Refs.Code_constant site ->
      (Schema.ref_hard, [| Fact.I target; Fact.S "code"; Fact.I site |])
  | Refs.Call_target site ->
      (Schema.ref_hard, [| Fact.I target; Fact.S "call"; Fact.I site |])
  | Refs.Jump_target (site, entry) ->
      (Schema.ref_jump, [| Fact.I target; Fact.I site; Fact.I entry |])

(* ------------------------------------------------------------------ *)
(* One-shot build.                                                     *)

let build ?fuel ?entries ?(xref_seeds = []) (loaded : Loaded.t)
    (res : Recursive.result) refs =
  Obs.span "facts.extract" @@ fun () ->
  let store = Store.create () in
  base_facts store loaded;
  List.iter
    (fun a -> add_fact store Schema.seed [| Fact.I a; Fact.S "xref" |])
    xref_seeds;
  let entries =
    match entries with Some e -> e | None -> Recursive.starts res
  in
  List.iter
    (fun entry ->
      match Hashtbl.find_opt res.Recursive.funcs entry with
      | None -> ()
      | Some f ->
          List.iter
            (fun (rel, tup) -> add_fact store rel tup)
            (func_facts entry f []))
    entries;
  Fetch_util.Interval_map.iter res.Recursive.insn_spans (fun ~lo ~hi () ->
      add_fact store Schema.insn [| Fact.I lo; Fact.I hi |]);
  Refs.iter refs (fun target kinds ->
      List.iter
        (fun k ->
          let rel, tup = kind_fact target k in
          add_fact store rel tup)
        kinds);
  Engine.create ?fuel store program

let of_result ?fuel (r : Pipeline.result) =
  let loaded = r.Pipeline.loaded in
  let res = r.Pipeline.rec_result in
  let refs = Refs.collect loaded res in
  let named = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace named a ()) loaded.Loaded.fde_starts;
  List.iter (fun a -> Hashtbl.replace named a ()) loaded.Loaded.symbol_starts;
  let xref_seeds =
    List.filter (fun a -> not (Hashtbl.mem named a)) r.Pipeline.final_seeds
  in
  build ?fuel ~entries:r.Pipeline.starts ~xref_seeds loaded res refs

let findings engine =
  Fetch_check.Rule_lint.findings_of_store (Engine.store engine)

let jump_only_refs engine ~entry t =
  Store.mem (Engine.store engine) Schema.jump_only_refs
    [| Fact.I t; Fact.I entry |]

(* ------------------------------------------------------------------ *)
(* Live session: the fact base kept current while xref detection       *)
(* commits function starts one at a time.                              *)

type live = {
  loaded : Loaded.t;
  engine : Engine.t;
  inc : Refs.incr;
  seen_funcs : (int, unit) Hashtbl.t;
  seen_insns : (int, unit) Hashtbl.t;  (** by span lo *)
  ref_counts : (int, int) Hashtbl.t;
      (** kinds-list length already folded per target — [Refs] prepends,
          so the new kinds of a round are a list prefix *)
}

let live_engine live = live.engine

(* Everything committed since the last call, as an extensional delta.
   Detection state only grows (and committed records never mutate —
   the {!Fetch_analysis.Recursive.extend} contract), so the delta is
   assert-only. *)
let live_commit ?cand live (res : Recursive.result) =
  Obs.span "facts.commit" @@ fun () ->
  let refs = Refs.incr_refresh live.inc res in
  let asserts = ref [] in
  let push rel tup = asserts := (rel, tup) :: !asserts in
  (match cand with
  | Some c -> push Schema.seed [| Fact.I c; Fact.S "xref" |]
  | None -> ());
  Hashtbl.iter
    (fun entry f ->
      if not (Hashtbl.mem live.seen_funcs entry) then begin
        Hashtbl.replace live.seen_funcs entry ();
        asserts := func_facts entry f !asserts
      end)
    res.Recursive.funcs;
  Fetch_util.Interval_map.iter res.Recursive.insn_spans (fun ~lo ~hi () ->
      if not (Hashtbl.mem live.seen_insns lo) then begin
        Hashtbl.replace live.seen_insns lo ();
        push Schema.insn [| Fact.I lo; Fact.I hi |]
      end);
  Refs.iter refs (fun target kinds ->
      let n = List.length kinds in
      let seen =
        Option.value ~default:0 (Hashtbl.find_opt live.ref_counts target)
      in
      if n > seen then begin
        Hashtbl.replace live.ref_counts target n;
        let rec take k = function
          | kind :: rest when k > 0 ->
              let rel, tup = kind_fact target kind in
              push rel tup;
              take (k - 1) rest
          | _ -> ()
        in
        take (n - seen) kinds
      end);
  Engine.update live.engine ~assert_:!asserts ~retract_:[]

let live_create ?fuel (loaded : Loaded.t) (res : Recursive.result) =
  let store = Store.create () in
  base_facts store loaded;
  match Engine.create ?fuel store program with
  | Error e -> Error e
  | Ok engine ->
      let live =
        {
          loaded;
          engine;
          inc = Refs.incr_create loaded;
          seen_funcs = Hashtbl.create 256;
          seen_insns = Hashtbl.create 4096;
          ref_counts = Hashtbl.create 1024;
        }
      in
      live_commit live res;
      Ok live
