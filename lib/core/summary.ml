(** Cacheable pipeline-result summary — contract in the mli. *)

type t = {
  starts : int list;
  n_seeds : int;
  records_ok : int;
  records_skipped : int;
  indirect_derefs : int;
  diags : string list;
  findings : Fetch_check.Finding.t list;
}

let of_result ?(lint = true) (r : Pipeline.result) =
  {
    starts = r.starts;
    n_seeds = List.length r.final_seeds;
    records_ok = r.eh_frame.records_ok;
    records_skipped = r.eh_frame.records_skipped;
    indirect_derefs = r.eh_frame.indirect_derefs;
    diags = List.map Fetch_dwarf.Diag.to_string r.eh_frame.diags;
    findings = (if lint then Lint.run r else []);
  }

let to_json t =
  let str = Fetch_util.Json.escape in
  Printf.sprintf
    "{\"starts\":[%s],\"n_seeds\":%d,\"eh_frame\":{\"records_ok\":%d,\"records_skipped\":%d,\"indirect_derefs\":%d},\"diags\":[%s],\"findings\":[%s]}"
    (String.concat "," (List.map string_of_int t.starts))
    t.n_seeds t.records_ok t.records_skipped t.indirect_derefs
    (String.concat "," (List.map str t.diags))
    (String.concat "," (List.map Fetch_check.Finding.to_json t.findings))
