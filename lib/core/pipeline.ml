(** The FETCH pipeline (§VI): FDE extraction → safe recursive disassembly →
    function-pointer detection → FDE error fixing.

    Each stage can be switched off so the evaluation can measure every
    prefix of the pipeline (Figure 5's strategy stacks). *)

open Fetch_analysis
module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance

(* Stage instrumentation: seed-source contributions and the Fig. 6b
   hand-broken-FDE rejections. *)
let c_seeds_fde = Obs.counter "pipeline.seeds.fde"
let c_seeds_symbol = Obs.counter "pipeline.seeds.symbol"
let c_seeds_final = Obs.counter "pipeline.seeds.final"
let c_invalid_fde = Obs.counter "pipeline.invalid_fde_rejected"

type config = {
  use_symbols : bool;  (** seed from surviving symbols too *)
  recursive : bool;  (** run safe recursive disassembly *)
  xref : bool;  (** §IV-E pointer detection *)
  fix_fde_errors : bool;  (** Algorithm 1 + broken-FDE calling-convention check *)
  alg1_heights : Tailcall.height_source;
      (** stack-height source for Algorithm 1 (CFI oracle in the paper;
          a static analysis for the §V-B ablation) *)
  engine : Recursive.config;
  xref_strategy : Xref.strategy;
      (** incremental per-round extension (default) or the from-scratch
          rescan it is differentially tested against *)
}

let default_config =
  {
    use_symbols = true;
    recursive = true;
    xref = true;
    fix_fde_errors = true;
    alg1_heights = Tailcall.Cfi_oracle;
    engine = Recursive.safe_config;
    xref_strategy = Xref.Incremental;
  }

(* The seed set both detection passes start from: FDE starts plus
   (optionally) symbol starts, minus [excluding], deduped and sorted.
   [excluding] membership goes through a hash set — the callconv check
   can reject many starts and [List.mem] made this quadratic. *)
let seed_set ?(excluding = []) ~use_symbols loaded =
  let excluded =
    let tbl = Hashtbl.create (List.length excluding) in
    List.iter (fun s -> Hashtbl.replace tbl s ()) excluding;
    tbl
  in
  loaded.Loaded.fde_starts
  @ (if use_symbols then loaded.Loaded.symbol_starts else [])
  |> List.filter (fun s -> not (Hashtbl.mem excluded s))
  |> List.sort_uniq compare

type result = {
  starts : int list;  (** final detected function starts, ascending *)
  eh_frame : Fetch_dwarf.Eh_frame.decoded;
      (** parse health of [.eh_frame]: recovered records, skipped records
          and the per-record diagnostics *)
  fde_starts : int list;
  final_seeds : int list;
      (** the seed set the last engine run started from: FDE starts
          (minus callconv-invalid ones), symbols, and every pointer
          §IV-E accepted — so reports can attribute each start to its
          source *)
  rec_result : Recursive.result;
  tailcall : Tailcall.outcome option;
  invalid_fde_starts : int list;  (** FDE starts rejected as callconv-invalid *)
  loaded : Loaded.t;
}

(** Run FETCH on a loaded binary. *)
let run_loaded ?(config = default_config) loaded =
  Obs.span "pipeline" @@ fun () ->
  (* 1. FDE starts (+ symbols, normally absent in stripped binaries) *)
  let seeds =
    Obs.span "seeds" @@ fun () ->
    Obs.add c_seeds_fde (List.length loaded.Loaded.fde_starts);
    if config.use_symbols then
      Obs.add c_seeds_symbol (List.length loaded.Loaded.symbol_starts);
    if Prov.enabled () then begin
      List.iter
        (fun s -> Prov.emit ~ev:"seed.fde" ~addr:s [])
        loaded.Loaded.fde_starts;
      if config.use_symbols then
        List.iter
          (fun s -> Prov.emit ~ev:"seed.symbol" ~addr:s [])
          loaded.Loaded.symbol_starts
    end;
    seed_set ~use_symbols:config.use_symbols loaded
  in
  (* 2-3. safe recursive disassembly, with pointer detection iterating *)
  let res, seeds =
    if config.recursive then
      if config.xref then
        Xref.detect ~config:config.engine ~strategy:config.xref_strategy loaded
          ~seeds
      else (Recursive.run ~config:config.engine loaded ~seeds, seeds)
    else
      (* degenerate engine run that only registers the seed entries *)
      ( Recursive.run
          ~config:
            { config.engine with resolve_jump_tables = false; max_noreturn_iters = 0 }
          loaded ~seeds,
        seeds )
  in
  (* 4. fix FDE-introduced errors *)
  (* one [verdict.start] per kept start closes every surviving subject's
     chain in the ledger *)
  let record_verdicts starts =
    if Prov.enabled () then
      List.iter (fun s -> Prov.emit ~ev:"verdict.start" ~addr:s []) starts
  in
  if not config.fix_fde_errors then begin
    Obs.add c_seeds_final (List.length seeds);
    record_verdicts (Recursive.starts res);
    {
      starts = Recursive.starts res;
      eh_frame = loaded.Loaded.eh_frame;
      fde_starts = loaded.Loaded.fde_starts;
      final_seeds = seeds;
      rec_result = res;
      tailcall = None;
      invalid_fde_starts = [];
      loaded;
    }
  end
  else begin
    (* 4a. hand-broken FDEs (Fig. 6b): calling-convention check on every
       start directly identified from an FDE.  Cold parts of non-contiguous
       functions can also read callee-saved registers at their entry, but
       they are always referenced by a jump from their hot part — an FDE
       start that both violates the convention and is referenced by nothing
       at all cannot be a real function or a function part. *)
    let invalid, refs0 =
      Obs.span "fde_callconv_check" @@ fun () ->
      let refs0 = Refs.collect loaded res in
      let noreturn t = Hashtbl.mem res.Recursive.noreturn t in
      let cond_noreturn t = Hashtbl.mem res.Recursive.cond_noreturn t in
      ( List.filter
          (fun s ->
            Refs.refs_to refs0 s = []
            && Callconv.validate ~noreturn ~cond_noreturn loaded s
               = Callconv.Invalid)
          loaded.Loaded.fde_starts,
        refs0 )
    in
    Obs.add c_invalid_fde (List.length invalid);
    if Prov.enabled () then
      List.iter
        (fun s ->
          (* Fig. 6b: unreferenced + callconv-invalid FDE start; the
             evidence costs a diagnostic walk, paid only here *)
          let noreturn t = Hashtbl.mem res.Recursive.noreturn t in
          let cond_noreturn t = Hashtbl.mem res.Recursive.cond_noreturn t in
          let fields =
            match Callconv.validate_diag ~noreturn ~cond_noreturn loaded s with
            | Error (v : Callconv.violation) ->
                ("viol_at", Prov.I v.at)
                ::
                (match v.reg with
                | Some r -> [ ("viol_reg", Prov.S (Fetch_x86.Reg.name64 r)) ]
                | None -> [ ("viol_reg", Prov.S "undecodable") ])
            | Ok () -> []
          in
          Prov.emit ~ev:"fde.invalid" ~addr:s
            (("why", Prov.S "unreferenced_callconv_violation") :: fields))
        invalid;
    (* the census stays valid only when the detection result does *)
    let res, seeds, refs =
      if invalid = [] then (res, seeds, Some refs0)
      else begin
        (* drop them and re-run detection without those seeds *)
        if Prov.enabled () then
          Prov.emit ~ev:"pipeline.reseed" ~addr:0
            [ ("dropped", Prov.I (List.length invalid)) ];
        let seeds' =
          seed_set ~excluding:invalid ~use_symbols:config.use_symbols loaded
        in
        let res', seeds' =
          if config.xref then
            Xref.detect ~config:config.engine ~strategy:config.xref_strategy
              loaded ~seeds:seeds'
          else (Recursive.run ~config:config.engine loaded ~seeds:seeds', seeds')
        in
        (res', seeds', None)
      end
    in
    Obs.add c_seeds_final (List.length seeds);
    (* 4b. Algorithm 1 *)
    let outcome = Tailcall.run ~heights:config.alg1_heights ?refs loaded res in
    record_verdicts outcome.kept_starts;
    {
      starts = outcome.kept_starts;
      eh_frame = loaded.Loaded.eh_frame;
      fde_starts = loaded.Loaded.fde_starts;
      final_seeds = seeds;
      rec_result = res;
      tailcall = Some outcome;
      invalid_fde_starts = invalid;
      loaded;
    }
  end

(** Run FETCH on an ELF image. *)
let run ?config image = run_loaded ?config (Loaded.load image)

(** Run FETCH on raw ELF bytes. *)
let run_bytes ?config raw =
  Result.map (fun image -> run ?config image) (Fetch_elf.Decode.decode raw)
