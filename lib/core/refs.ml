(** Reference collection (§IV-E): the conservative super-set of potential
    function pointers, and the reference census Algorithm 1 needs.

    Pointer candidates come from two sources: every consecutive 8-byte
    window in the data sections (and, optionally, non-disassembled code
    regions), and every constant operand in the disassembled code
    (immediates, absolute displacements, resolved RIP-relative targets). *)

open Fetch_x86
open Fetch_analysis
module Obs = Fetch_obs.Trace

(* Decode-cache inconsistencies found while scanning committed spans:
   should be zero, but when it fires we resync instead of dropping refs. *)
let c_scan_resync = Obs.counter "refs.scan_resync"

type kind =
  | Data_pointer of int  (** found at this data address *)
  | Code_constant of int  (** constant operand of the instruction here *)
  | Call_target of int  (** direct call site *)
  | Jump_target of int * int  (** jump site, owning function entry *)

type t = {
  by_target : (int, kind list) Hashtbl.t;
}

let add t target kind =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_target target) in
  Hashtbl.replace t.by_target target (kind :: prev)

let refs_to t target =
  Option.value ~default:[] (Hashtbl.find_opt t.by_target target)

let iter t f = Hashtbl.iter f t.by_target

(* Data sections eligible for the 8-byte window scan: allocated,
   non-executable, and not unwinding metadata. *)
let is_data_section (s : Fetch_elf.Image.section) =
  s.flags land Fetch_elf.Image.shf_alloc <> 0
  && s.flags land Fetch_elf.Image.shf_execinstr = 0
  && not
       (List.mem s.sec_name [ ".eh_frame"; ".eh_frame_hdr"; ".gcc_except_table" ])

(* Every consecutive 8-byte LE window of [s] that lands in text, as
   [(target, data address)] pairs ascending by data address.  A rolling
   7-byte register plus one unsafe byte load per position replaces the
   bounds-checked 64-bit read of the naive scan, and a coarse
   [text_bounds] pre-check keeps the exact per-section containment test
   off the (overwhelmingly common) non-pointer windows.  Matches
   [Int64.to_int (String.get_int64_le ...)] bit-for-bit: both keep the
   low 63 bits of the window. *)
let window_pointers loaded (s : Fetch_elf.Image.section) =
  match Loaded.text_bounds loaded with
  | None -> []
  | Some (tlo, thi) ->
      let data = s.data in
      let n = String.length data in
      if n < 8 then []
      else begin
        let byte i = Char.code (String.unsafe_get data i) in
        (* [v] holds bytes [i .. i+6] as a 56-bit LE integer *)
        let v = ref 0 in
        for i = 0 to 6 do
          v := !v lor (byte i lsl (8 * i))
        done;
        let acc = ref [] in
        for i = 0 to n - 8 do
          let top = byte (i + 7) in
          let w = !v lor (top lsl 56) in
          if w >= tlo && w < thi && Loaded.in_text loaded w then
            acc := (w, s.addr + i) :: !acc;
          v := (!v lsr 8) lor (top lsl 48)
        done;
        List.rev !acc
      end

(* Scan every consecutive 8-byte window of a section for text pointers. *)
let scan_section_windows loaded t (s : Fetch_elf.Image.section) =
  List.iter
    (fun (target, site) -> add t target (Data_pointer site))
    (window_pointers loaded s)

(* Constant operands of one decoded instruction. *)
let insn_constants ~addr ~len insn =
  let consts = ref [] in
  let push v = consts := v :: !consts in
  let mem (m : Insn.mem) =
    if m.rip_rel then push (addr + len + m.disp)
    else if m.base = None && m.index = None then push m.disp
    else if m.index <> None && m.base = None then push m.disp
  in
  let op = function
    | Insn.Imm v -> push v
    | Insn.Mem m -> mem m
    | Insn.Reg _ -> ()
  in
  (match insn with
  | Insn.Mov (_, a, b) ->
      op a;
      op b
  | Insn.Movabs (_, v) -> push v
  | Insn.Lea (_, m) -> mem m
  | Insn.Arith (_, _, a, b) ->
      op a;
      op b
  | Insn.Imul (_, s) -> op s
  | Insn.Movsxd (_, m) -> mem m
  | Insn.Movzx (_, _, o') | Insn.Movsx (_, _, o') | Insn.Cmov (_, _, o') ->
      op o'
  | Insn.Call_ind o | Insn.Jmp_ind o -> op o
  | Insn.Push _ | Insn.Pop _ | Insn.Test _ | Insn.Shift _ | Insn.Neg _
  | Insn.Inc _ | Insn.Dec _ | Insn.Setcc _ | Insn.Div _ | Insn.Idiv _
  | Insn.Mul _ | Insn.Cqo | Insn.Cdq | Insn.Not _ | Insn.Xchg _
  | Insn.Push_imm _ | Insn.Test_imm _ | Insn.Call _ | Insn.Jmp _
  | Insn.Jmp_short _ | Insn.Jcc _ | Insn.Jcc_short _ | Insn.Ret
  | Insn.Leave | Insn.Nop _ | Insn.Endbr64 | Insn.Ud2 | Insn.Int3
  | Insn.Hlt | Insn.Syscall | Insn.Cpuid ->
      ());
  !consts

(* Scan one committed span [\[lo, hi)] for code-constant refs.  A [None]
   from the memoized decoder mid-span means the decode cache disagrees
   with the span map; the rest of the span used to be silently abandoned
   (dropping refs) — now the event is counted and the scan resyncs one
   byte forward. *)
let scan_span loaded t ~lo ~hi =
  let rec go addr =
    if addr < hi then
      match Loaded.insn_at loaded addr with
      | Some (insn, len) ->
          List.iter
            (fun v ->
              if Loaded.in_text loaded v then add t v (Code_constant addr))
            (insn_constants ~addr ~len insn);
          go (addr + len)
      | None ->
          Obs.incr c_scan_resync;
          go (addr + 1)
  in
  go lo

(* Walk every decoded instruction of the recursive result. *)
let scan_code loaded t (res : Recursive.result) =
  Fetch_util.Interval_map.iter res.insn_spans (fun ~lo ~hi () ->
      scan_span loaded t ~lo ~hi)

(* Call / jump / jump-table refs contributed by one function. *)
let scan_func t entry (f : Recursive.func) =
  List.iter (fun (site, target) -> add t target (Call_target site)) f.calls;
  List.iter
    (fun (site, _, target) -> add t target (Jump_target (site, entry)))
    f.all_jump_sites;
  List.iter
    (fun (_, targets) ->
      List.iter (fun tg -> add t tg (Jump_target (entry, entry))) targets)
    f.table_targets

let scan_calls_and_jumps t (res : Recursive.result) =
  Hashtbl.iter (fun entry f -> scan_func t entry f) res.funcs

(** Collect all references in the binary given the current disassembly. *)
let collect loaded (res : Recursive.result) =
  let t = { by_target = Hashtbl.create 1024 } in
  List.iter
    (fun (s : Fetch_elf.Image.section) ->
      if is_data_section s then scan_section_windows loaded t s)
    loaded.Loaded.image.sections;
  scan_code loaded t res;
  scan_calls_and_jumps t res;
  t

(* ------------------------------------------------------------------ *)
(* Incremental collection across xref rounds.                          *)

type incr = {
  loaded : Loaded.t;
  table : t;
  scanned : (int, unit) Hashtbl.t;  (** span lo addresses already scanned *)
  seen_funcs : (int, unit) Hashtbl.t;
  mutable n_spans : int;  (** span count at last refresh (skip shortcut) *)
  mutable n_funcs : int;
}

let incr_create loaded =
  let table = { by_target = Hashtbl.create 1024 } in
  (* the data-section window refs never change across rounds: scan once,
     keep forever *)
  List.iter
    (fun s -> if is_data_section s then scan_section_windows loaded table s)
    loaded.Loaded.image.sections;
  {
    loaded;
    table;
    scanned = Hashtbl.create 4096;
    seen_funcs = Hashtbl.create 256;
    n_spans = -1;
    n_funcs = -1;
  }

(** Fold the refs of [res] into the accumulated table and return it.
    Sound only when successive results grow monotonically — spans are
    never removed and previously seen function records are unchanged —
    which is exactly what [Recursive.extend] guarantees; under that
    precondition the returned table equals [collect loaded res]. *)
let incr_refresh inc (res : Recursive.result) =
  let n_spans = Fetch_util.Interval_map.cardinal res.insn_spans in
  let n_funcs = Hashtbl.length res.funcs in
  if n_spans <> inc.n_spans then begin
    inc.n_spans <- n_spans;
    Fetch_util.Interval_map.iter res.insn_spans (fun ~lo ~hi () ->
        if not (Hashtbl.mem inc.scanned lo) then begin
          Hashtbl.replace inc.scanned lo ();
          scan_span inc.loaded inc.table ~lo ~hi
        end)
  end;
  if n_funcs <> inc.n_funcs then begin
    inc.n_funcs <- n_funcs;
    Hashtbl.iter
      (fun entry f ->
        if not (Hashtbl.mem inc.seen_funcs entry) then begin
          Hashtbl.replace inc.seen_funcs entry ();
          scan_func inc.table entry f
        end)
      res.funcs
  end;
  inc.table

(** Candidate pointers for §IV-E: data pointers and code constants (not
    call/jump targets — those are already handled by recursion). *)
let pointer_candidates t =
  Hashtbl.fold
    (fun target kinds acc ->
      if
        List.exists
          (function
            | Data_pointer _ | Code_constant _ -> true
            | Call_target _ | Jump_target _ -> false)
          kinds
      then target :: acc
      else acc)
    t.by_target []
  |> List.sort_uniq compare

(** Is [target] referenced by anything other than jumps from [entry]?
    (Criterion 3 of Algorithm 1.) *)
let referenced_outside_jumps_of t ~entry target =
  List.exists
    (function
      | Jump_target (_, owner) -> owner <> entry
      | Data_pointer _ | Code_constant _ | Call_target _ -> true)
    (refs_to t target)

(** Is [target] referenced at all (HasRefTo)? *)
let has_ref t target = refs_to t target <> []
