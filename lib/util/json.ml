(** Minimal JSON: recursive-descent parser and compact printer (mli). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string

(* ---- parser ---- *)

type state = { s : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st "expected %c, got %c" c c'
  | None -> fail st "expected %c, got end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
                let hex = String.sub st.s st.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail st "bad \\u escape %S" hex
                in
                st.pos <- st.pos + 4;
                (* encode the code point as UTF-8; surrogate pairs are
                   passed through as two 3-byte sequences, which is all
                   the escaping side of this project ever produces *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st "invalid escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st "invalid number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected , or ] in array"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %c" c

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "at %d: trailing garbage" st.pos)
      else Ok v
  | exception Fail m -> Error m

(* ---- printer ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> Buffer.add_string buf (escape s)
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- accessors ---- *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
      Some (int_of_float f)
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
