(** RFC 4648 base64 — contract in the mli. *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let emit b = Buffer.add_char out alphabet.[b land 0x3f] in
  let i = ref 0 in
  while !i + 3 <= n do
    let b0 = byte !i and b1 = byte (!i + 1) and b2 = byte (!i + 2) in
    emit (b0 lsr 2);
    emit ((b0 lsl 4) lor (b1 lsr 4));
    emit ((b1 lsl 2) lor (b2 lsr 6));
    emit b2;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = byte !i in
      emit (b0 lsr 2);
      emit (b0 lsl 4);
      Buffer.add_string out "=="
  | 2 ->
      let b0 = byte !i and b1 = byte (!i + 1) in
      emit (b0 lsr 2);
      emit ((b0 lsl 4) lor (b1 lsr 4));
      emit (b1 lsl 2);
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

(* Inverse alphabet: -1 for bytes outside it. *)
let inv =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then
    Error (Printf.sprintf "base64 length %d is not a multiple of 4" n)
  else if n = 0 then Ok ""
  else begin
    let pad =
      if s.[n - 1] <> '=' then 0 else if s.[n - 2] = '=' then 2 else 1
    in
    let out = Buffer.create (n / 4 * 3) in
    let err = ref None in
    (try
       let i = ref 0 in
       while !i < n do
         let digit k =
           let c = s.[!i + k] in
           (* '=' is only legal as the final padding *)
           if c = '=' && !i + k >= n - pad then 0
           else
             let v = inv.(Char.code c) in
             if v < 0 || c = '=' then begin
               err :=
                 Some
                   (Printf.sprintf "invalid base64 byte %C at offset %d" c
                      (!i + k));
               raise Exit
             end
             else v
         in
         let d0 = digit 0 and d1 = digit 1 and d2 = digit 2 and d3 = digit 3 in
         let triple = (d0 lsl 18) lor (d1 lsl 12) lor (d2 lsl 6) lor d3 in
         Buffer.add_char out (Char.chr ((triple lsr 16) land 0xff));
         if not (!i + 4 >= n && pad >= 2) then
           Buffer.add_char out (Char.chr ((triple lsr 8) land 0xff));
         if not (!i + 4 >= n && pad >= 1) then
           Buffer.add_char out (Char.chr (triple land 0xff));
         i := !i + 4
       done
     with Exit -> ());
    match !err with
    | Some e -> Error e
    | None ->
        (* canonical-form check: the dropped bits of the last group must
           be zero, so decode ∘ encode is the identity and no two inputs
           decode to the same bytes *)
        let canonical =
          pad = 0
          ||
          let last v bits = v land ((1 lsl bits) - 1) = 0 in
          if pad = 1 then last inv.(Char.code s.[n - 2]) 2
          else last inv.(Char.code s.[n - 3]) 4
        in
        if canonical then Ok (Buffer.contents out)
        else Error "non-canonical base64 padding bits"
  end
