(** Map from disjoint half-open address intervals [\[lo, hi)] to values.

    Backbone of the disassembly bookkeeping: instruction spans, function
    bodies and section extents are all interval maps, and the conservative
    validation passes of the paper ("control transfer into the middle of a
    previously detected function / instruction") are [find] queries here. *)

module Imap = Map.Make (Int)

type 'a t = { mutable m : (int * 'a) Imap.t }
(* key = lo, payload = (hi, value) *)

let create () = { m = Imap.empty }

(** O(1) snapshot: the backing map is persistent, so a copy shares all
    existing bindings and diverges only on subsequent mutation.  This is
    what lets the incremental engine fork a round's span map without
    paying for its size. *)
let copy t = { m = t.m }

let is_empty t = Imap.is_empty t.m
let cardinal t = Imap.cardinal t.m

(** [find t addr] is the binding whose interval contains [addr]. *)
let find t addr =
  match Imap.find_last_opt (fun lo -> lo <= addr) t.m with
  | Some (lo, (hi, v)) when addr < hi -> Some (lo, hi, v)
  | Some _ | None -> None

let mem t addr = Option.is_some (find t addr)

(** [starts_at t addr] is the value of the interval beginning exactly at
    [addr], if any. *)
let starts_at t addr =
  match Imap.find_opt addr t.m with
  | Some (hi, v) -> Some (hi, v)
  | None -> None

(** [overlaps t ~lo ~hi] is true when [\[lo, hi)] intersects any interval. *)
let overlaps t ~lo ~hi =
  if hi <= lo then false
  else
    match Imap.find_last_opt (fun k -> k < hi) t.m with
    | Some (_, (h, _)) -> h > lo
    | None -> false

(** [add t ~lo ~hi v] binds [\[lo, hi)]; raises [Invalid_argument] on
    overlap with an existing interval. *)
let add t ~lo ~hi v =
  if hi <= lo then invalid_arg "Interval_map.add: empty interval";
  if overlaps t ~lo ~hi then invalid_arg "Interval_map.add: overlap";
  t.m <- Imap.add lo (hi, v) t.m

(** Like [add] but replaces anything the new interval overlaps. *)
let add_override t ~lo ~hi v =
  if hi <= lo then invalid_arg "Interval_map.add_override";
  let rec clear () =
    match Imap.find_last_opt (fun k -> k < hi) t.m with
    | Some (k, (h, _)) when h > lo ->
        t.m <- Imap.remove k t.m;
        clear ()
    | Some _ | None -> ()
  in
  clear ();
  t.m <- Imap.add lo (hi, v) t.m

(** [add_max t ~lo ~hi v] binds [\[lo, hi)] byte-wise, resolving overlap
    toward the larger value (polymorphic compare): overlapping intervals
    with a value [>= v] keep their bytes, smaller ones lose exactly the
    contested bytes (their parts outside [\[lo, hi)] survive), and what
    remains of [\[lo, hi)] gets [v].  The byte → value function this
    builds depends only on the {e set} of insertions, never their order
    — the property that lets an incrementally grown map equal its
    from-scratch rebuild. *)
let add_max t ~lo ~hi v =
  if hi <= lo then invalid_arg "Interval_map.add_max";
  (* overlapping intervals, collected without mutating *)
  let rec scan below acc =
    match Imap.find_last_opt (fun k -> k < below) t.m with
    | Some (k, (h, v')) when h > lo -> scan k ((k, h, v') :: acc)
    | Some _ | None -> acc
  in
  let ovs = scan hi [] in
  (* losers keep only their bytes outside [lo, hi) *)
  List.iter
    (fun (k, h, v') ->
      if compare v' v < 0 then begin
        t.m <- Imap.remove k t.m;
        if k < lo then t.m <- Imap.add k (lo, v') t.m;
        if h > hi then t.m <- Imap.add hi (h, v') t.m
      end)
    ovs;
  (* v fills whatever the surviving (>= v) overlaps leave uncovered *)
  let winners =
    List.filter_map
      (fun (k, h, v') ->
        if compare v' v >= 0 then Some (max k lo, min h hi) else None)
      ovs
  in
  let rec fill at = function
    | [] -> if at < hi then t.m <- Imap.add at (hi, v) t.m
    | (wlo, whi) :: rest ->
        if at < wlo then t.m <- Imap.add at (wlo, v) t.m;
        fill (max at whi) rest
  in
  fill lo winners

let remove t lo = t.m <- Imap.remove lo t.m

let iter t f = Imap.iter (fun lo (hi, v) -> f ~lo ~hi v) t.m
let fold t f init = Imap.fold (fun lo (hi, v) acc -> f ~lo ~hi v acc) t.m init

let to_list t = List.rev (fold t (fun ~lo ~hi v acc -> (lo, hi, v) :: acc) [])

(** First interval starting at or after [addr]. *)
let next_from t addr =
  match Imap.find_first_opt (fun lo -> lo >= addr) t.m with
  | Some (lo, (hi, v)) -> Some (lo, hi, v)
  | None -> None
