(** Map from disjoint half-open address intervals [\[lo, hi)] to values.

    Backbone of the disassembly bookkeeping: instruction spans, function
    bodies and section extents are all interval maps, and the conservative
    validation passes of the paper ("control transfer into the middle of a
    previously detected function / instruction") are [find] queries here. *)

module Imap = Map.Make (Int)

type 'a t = { mutable m : (int * 'a) Imap.t }
(* key = lo, payload = (hi, value) *)

let create () = { m = Imap.empty }

(** O(1) snapshot: the backing map is persistent, so a copy shares all
    existing bindings and diverges only on subsequent mutation.  This is
    what lets the incremental engine fork a round's span map without
    paying for its size. *)
let copy t = { m = t.m }

let is_empty t = Imap.is_empty t.m
let cardinal t = Imap.cardinal t.m

(** [find t addr] is the binding whose interval contains [addr]. *)
let find t addr =
  match Imap.find_last_opt (fun lo -> lo <= addr) t.m with
  | Some (lo, (hi, v)) when addr < hi -> Some (lo, hi, v)
  | Some _ | None -> None

let mem t addr = Option.is_some (find t addr)

(** [starts_at t addr] is the value of the interval beginning exactly at
    [addr], if any. *)
let starts_at t addr =
  match Imap.find_opt addr t.m with
  | Some (hi, v) -> Some (hi, v)
  | None -> None

(** [overlaps t ~lo ~hi] is true when [\[lo, hi)] intersects any interval. *)
let overlaps t ~lo ~hi =
  if hi <= lo then false
  else
    match Imap.find_last_opt (fun k -> k < hi) t.m with
    | Some (_, (h, _)) -> h > lo
    | None -> false

(** [add t ~lo ~hi v] binds [\[lo, hi)]; raises [Invalid_argument] on
    overlap with an existing interval. *)
let add t ~lo ~hi v =
  if hi <= lo then invalid_arg "Interval_map.add: empty interval";
  if overlaps t ~lo ~hi then invalid_arg "Interval_map.add: overlap";
  t.m <- Imap.add lo (hi, v) t.m

(** Like [add] but replaces anything the new interval overlaps. *)
let add_override t ~lo ~hi v =
  if hi <= lo then invalid_arg "Interval_map.add_override";
  let rec clear () =
    match Imap.find_last_opt (fun k -> k < hi) t.m with
    | Some (k, (h, _)) when h > lo ->
        t.m <- Imap.remove k t.m;
        clear ()
    | Some _ | None -> ()
  in
  clear ();
  t.m <- Imap.add lo (hi, v) t.m

let remove t lo = t.m <- Imap.remove lo t.m

let iter t f = Imap.iter (fun lo (hi, v) -> f ~lo ~hi v) t.m
let fold t f init = Imap.fold (fun lo (hi, v) acc -> f ~lo ~hi v acc) t.m init

let to_list t = List.rev (fold t (fun ~lo ~hi v acc -> (lo, hi, v) :: acc) [])

(** First interval starting at or after [addr]. *)
let next_from t addr =
  match Imap.find_first_opt (fun lo -> lo >= addr) t.m with
  | Some (lo, (hi, v)) -> Some (lo, hi, v)
  | None -> None
