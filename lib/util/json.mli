(** A minimal JSON value type with a total parser and a printer.

    The repo deliberately has no third-party JSON dependency; this
    module covers what the observability layer needs — parsing bench
    snapshots ([BENCH_pipeline.json]) and provenance/trace JSON lines
    back into values for gating and round-trip tests.  Numbers are kept
    as [float]; integral values survive exactly up to 2^53, far beyond
    any address or counter this project emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in source order *)

(** [parse s] parses exactly one JSON value (surrounded by optional
    whitespace); trailing garbage is an error.  Never raises. *)
val parse : string -> (t, string) result

(** Serialize (compact, no spaces).  Integral numbers print without a
    decimal point, so [parse] ∘ [to_string] round-trips counter values
    textually. *)
val to_string : t -> string

(** [member k j] is the value of field [k] when [j] is an object. *)
val member : string -> t -> t option

(** Typed accessors; [None] on shape mismatch.  [to_int] accepts only
    integral numbers. *)
val to_int : t -> int option

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

(** String escaping per RFC 8259 (quotes included). *)
val escape : string -> string
