(** RFC 4648 base64 (standard alphabet, [=] padding).

    The serve protocol carries whole binaries inline in JSON lines;
    base64 keeps them printable without a third-party dependency.
    [decode] is total: any input that is not canonical base64 — bad
    characters, bad length, data after padding — is an [Error], never an
    exception. *)

val encode : string -> string

(** Strict inverse of {!encode}: requires canonical padding and rejects
    whitespace and non-alphabet bytes (with the offending position in
    the message). *)
val decode : string -> (string, string) result
