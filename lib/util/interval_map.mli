(** Map from disjoint half-open address intervals [\[lo, hi)] to values.

    Backbone of the disassembly bookkeeping: instruction spans, function
    bodies and section extents are all interval maps, and the conservative
    validation passes of the paper ("control transfer into the middle of a
    previously disassembled instruction / detected function") are [find]
    queries here. *)

type 'a t

val create : unit -> 'a t

(** O(1) independent snapshot (the backing map is persistent): mutations
    of either the copy or the original are invisible to the other. *)
val copy : 'a t -> 'a t

val is_empty : 'a t -> bool
val cardinal : 'a t -> int

(** [find t addr] is [Some (lo, hi, v)] for the interval containing
    [addr]. *)
val find : 'a t -> int -> (int * int * 'a) option

val mem : 'a t -> int -> bool

(** Value of the interval beginning exactly at [addr], with its end. *)
val starts_at : 'a t -> int -> (int * 'a) option

(** Does [\[lo, hi)] intersect any stored interval? *)
val overlaps : 'a t -> lo:int -> hi:int -> bool

(** [add t ~lo ~hi v] binds [\[lo, hi)]; raises [Invalid_argument] on an
    empty interval or an overlap. *)
val add : 'a t -> lo:int -> hi:int -> 'a -> unit

(** Like {!add} but evicts anything the new interval overlaps. *)
val add_override : 'a t -> lo:int -> hi:int -> 'a -> unit

(** [add_max t ~lo ~hi v] binds [\[lo, hi)] byte-wise, resolving overlap
    toward the larger value (polymorphic compare): overlapping intervals
    with a value [>= v] keep their bytes, smaller ones lose exactly the
    contested bytes, and what remains of [\[lo, hi)] gets [v].  The
    resulting byte → value function depends only on the set of
    insertions, not their order — what lets an incrementally grown map
    equal its from-scratch rebuild.  Raises [Invalid_argument] on an
    empty interval. *)
val add_max : 'a t -> lo:int -> hi:int -> 'a -> unit

(** Remove the interval starting at the given key, if any. *)
val remove : 'a t -> int -> unit

val iter : 'a t -> (lo:int -> hi:int -> 'a -> unit) -> unit
val fold : 'a t -> (lo:int -> hi:int -> 'a -> 'b -> 'b) -> 'b -> 'b

(** All intervals, ascending. *)
val to_list : 'a t -> (int * int * 'a) list

(** First interval starting at or after [addr]. *)
val next_from : 'a t -> int -> (int * int * 'a) option
