(** Calling-convention validation (§IV-E): a candidate function start is
    plausible only if no non-argument register is read before it is written.

    The check is a {!Fetch_check.Dataflow} instance: the state is the set
    of initialized registers (plus a per-block model of the first
    argument, used to decide whether conditionally non-returning callees
    return), the transfer function reports a read of an uninitialized
    non-argument register as a {!Fetch_check.Dataflow.Fatal} verdict, and
    the bounded-walk shape of the original check (first in-state wins,
    depth-first, 64 instructions / 12 blocks of fuel) is the engine's
    [First_write_wins] mode.

    Arguments (rdi, rsi, rdx, rcx, r8, r9) and rsp start initialized; a
    [push] is a save, not a use; a call leaves only the callee-saved
    registers and the return value initialized — the System-V
    caller-saved registers (rax, r10, r11 and the argument registers) are
    clobbered by the callee, so a stale value read after the call no
    longer counts as initialized. *)

open Fetch_x86
module Dataflow = Fetch_check.Dataflow

let max_insns = 64
let max_blocks = 12

type verdict =
  | Valid
  | Invalid
  | Unknown

(** Diagnostic form: where and which register violated the rule. *)
type violation = { at : int; reg : Reg.t option }

module RS = Set.Make (Reg)

let initial_set = RS.of_list Reg.args

(* [rdi] tracks the first argument for conditional-noreturn call sites,
   mirroring the engine's backward-slice policy: only a provably zero
   argument lets the call return.  The tracking is local to a block —
   crossing a block boundary resets it to [`Unknown]. *)
module Lattice = struct
  type state = { init : RS.t; rdi : [ `Zero | `Nonzero | `Unknown ] }
  type fatal = violation

  let equal a b = RS.equal a.init b.init && a.rdi = b.rdi

  (* [First_write_wins] mode never joins. *)
  let join a _ = a
  let widen ~old:_ s = s

  let transfer ~addr ~len:_ insn st =
    let reads = Semantics.uses insn in
    match
      List.find_opt
        (fun r -> (not (RS.mem r st.init)) && not (Reg.is_arg r))
        reads
    with
    | Some r -> Dataflow.Fatal { at = addr; reg = Some r }
    | None ->
        let init =
          List.fold_left (fun s r -> RS.add r s) st.init (Semantics.defs insn)
        in
        let init, rdi =
          match Semantics.flow insn with
          | Semantics.Callf _ ->
              (* the callee clobbers every caller-saved register and
                 defines the return-value register *)
              (RS.add Reg.Rax (RS.filter Reg.is_callee_saved init), `Unknown)
          | _ ->
              let rdi =
                match insn with
                | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm 0) -> `Zero
                | Insn.Arith (Insn.Xor, _, Insn.Reg Reg.Rdi, Insn.Reg Reg.Rdi)
                  ->
                    `Zero
                | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm _) -> `Nonzero
                | _ ->
                    if List.mem Reg.Rdi (Semantics.defs insn) then `Unknown
                    else st.rdi
              in
              (init, rdi)
        in
        Dataflow.Step { init; rdi }
end

module Solver = Dataflow.Make (Lattice)

(** Validate [start] as a function entry, with a diagnostic on failure.
    [noreturn] (optional) tells the walk which call targets never return;
    fuel exhaustion means "assume fine". *)
let validate_diag ?(noreturn = fun _ -> false)
    ?(cond_noreturn = fun _ -> false) loaded start =
  if not (Loaded.in_text loaded start) then Error { at = start; reg = None }
  else begin
    let prog =
      {
        Dataflow.insn_at = Loaded.insn_at loaded;
        in_text = Loaded.in_text loaded;
      }
    in
    let policy =
      {
        Solver.default_policy with
        undecodable = (fun addr -> Some { at = addr; reg = None });
        call_falls_through =
          (fun ~site:_ ~target (st : Lattice.state) ->
            match target with
            | Some t when noreturn t -> false
            | Some t when cond_noreturn t && st.rdi <> `Zero -> false
            | _ -> true);
        edge_state = (fun ~src:_ ~dst:_ st -> { st with Lattice.rdi = `Unknown });
        order = Dataflow.Depth_first;
      }
    in
    let sol =
      Solver.solve ~max_block_insns:max_insns ~max_blocks ~record:false prog
        policy ~merge:Dataflow.First_write_wins ~entry:start
        ~init:{ Lattice.init = initial_set; rdi = `Unknown }
        ()
    in
    match sol.Solver.fatal with Some v -> Error v | None -> Ok ()
  end

(** Validate [start] as a function entry. *)
let validate ?noreturn ?cond_noreturn loaded start =
  match validate_diag ?noreturn ?cond_noreturn loaded start with
  | Ok () -> Valid
  | Error _ -> Invalid

(** [meets_call_conv loaded addr] — the predicate Algorithm 1 calls
    [MeetCallConv]. *)
let meets_call_conv ?noreturn ?cond_noreturn loaded addr =
  validate ?noreturn ?cond_noreturn loaded addr = Valid
