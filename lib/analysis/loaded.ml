(** A loaded binary: the ELF image plus everything every analysis needs —
    decoded (and memoized) instructions, the parsed [.eh_frame], the CFI
    height oracle, FDE starts and symbol starts. *)

open Fetch_elf
module Obs = Fetch_obs.Trace

(* .eh_frame parse-health counters: how many CIE/FDE records decoded and,
   per structured reason, how many were dropped by record-level recovery. *)
let c_eh_ok = Obs.counter "eh_frame.records_ok"

let c_eh_skipped =
  List.map
    (fun k ->
      ( k,
        Obs.counter
          ("eh_frame.records_skipped." ^ Fetch_dwarf.Diag.kind_label k) ))
    Fetch_dwarf.Diag.all_kinds

type t = {
  image : Image.t;
  exec : Image.section list;  (** executable sections, ascending *)
  oracle : Fetch_dwarf.Height_oracle.t;
  eh_frame : Fetch_dwarf.Eh_frame.decoded;
      (** total parse of [.eh_frame]: recovered CIEs plus the diagnostics
          and recovered-vs-skipped record counts *)
  fdes : Fetch_dwarf.Eh_frame.fde list;
  fde_starts : int list;  (** PC Begin of every FDE, ascending, deduped *)
  symbol_starts : int list;  (** defined FUNC symbol addresses *)
  cache : (int, (Fetch_x86.Insn.t * int) option) Hashtbl.t;
}

(* [eh] short-circuits the [.eh_frame] decode with an already-decoded
   section (the serve cache's second-level hit: a re-linked binary whose
   CFI bytes are unchanged).  The caller owns the equivalence claim —
   the record must be exactly what [Eh_frame.of_image image] would
   return; parse-health counters are replayed from it either way so a
   cached load meters identically to a fresh one. *)
let load ?eh image =
  let exec = Image.exec_sections image in
  let eh =
    match eh with
    | Some eh -> eh
    | None -> Fetch_dwarf.Eh_frame.of_image image
  in
  Obs.add c_eh_ok eh.records_ok;
  List.iter
    (fun (d : Fetch_dwarf.Diag.t) ->
      if d.fatal then Obs.incr (List.assoc d.kind c_eh_skipped))
    eh.diags;
  let cies = eh.cies in
  let fdes = Fetch_dwarf.Eh_frame.all_fdes cies in
  let fde_starts =
    List.map (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.pc_begin) fdes
    |> List.sort_uniq compare
  in
  let symbol_starts =
    Image.func_symbols image
    |> List.map (fun (s : Image.symbol) -> s.value)
    |> List.sort_uniq compare
  in
  {
    image;
    exec;
    oracle = Fetch_dwarf.Height_oracle.create cies;
    eh_frame = eh;
    fdes;
    fde_starts;
    symbol_starts;
    cache = Hashtbl.create 4096;
  }

(** Decode (memoized) the instruction at virtual address [addr]. *)
let insn_at t addr =
  match Hashtbl.find_opt t.cache addr with
  | Some r -> r
  | None ->
      let r =
        let rec find = function
          | [] -> None
          | (s : Image.section) :: rest ->
              if addr >= s.addr && addr < s.addr + String.length s.data then
                Fetch_x86.Decode.decode ~pos:(addr - s.addr) ~addr s.data
              else find rest
        in
        find t.exec
      in
      Hashtbl.replace t.cache addr r;
      r

let in_text t addr =
  List.exists
    (fun (s : Image.section) -> addr >= s.addr && addr < s.addr + String.length s.data)
    t.exec

(** Executable address ranges, ascending. *)
let text_ranges t =
  List.map
    (fun (s : Image.section) -> (s.addr, s.addr + String.length s.data))
    t.exec

(** Smallest and one-past-largest executable address, if any executable
    section exists.  A single min/max pair is enough for the cheap "could
    this 8-byte constant be a text pointer at all?" prefilter — the exact
    per-section containment check runs only on survivors. *)
let text_bounds t =
  match text_ranges t with
  | [] -> None
  | (lo, hi) :: rest ->
      Some
        (List.fold_left
           (fun (lo, hi) (l, h) -> (min lo l, max hi h))
           (lo, hi) rest)

(** The FDE whose range contains [addr], if any. *)
let fde_at t addr =
  List.find_opt
    (fun (f : Fetch_dwarf.Eh_frame.fde) ->
      addr >= f.pc_begin && addr < f.pc_begin + f.pc_range)
    t.fdes

let fde_starting_at t addr =
  List.exists (fun (f : Fetch_dwarf.Eh_frame.fde) -> f.pc_begin = addr) t.fdes
