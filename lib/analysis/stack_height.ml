(** Static stack-height analysis, modelling the analyses shipped by ANGR
    and DYNINST that Table IV compares against the CFI oracle.

    The analysis is a {!Fetch_check.Dataflow} instance: the state is the
    stack height (bytes pushed since function entry), first write wins —
    the arrival-order sensitivity is part of the model — and each tool's
    behavioural quirks are edge-policy knobs.  Model fidelity notes:

    - Both tools decode function ranges partly linearly; we reproduce this
      with [linear_fallthrough]: after an unconditional jump the walker also
      continues at the next address with the current height.  When that
      straight-line guess reaches a block before the semantically correct
      path does, the block keeps the wrong height — the "side effects of
      other errors" the paper blames for inaccuracy (§V-B).
    - The models differ in jump-table power: the DYNINST-style analysis
      resolves all three table shapes, the ANGR-style one misses the
      register-load form ([mov r, \[table+idx*8\]; jmp r]); unresolved
      dispatches leave case blocks unvisited (recall loss).
    - Heights become unknown at instructions whose stack effect is not
      statically trackable ([leave], [mov rsp, r]). *)

open Fetch_x86
module Dataflow = Fetch_check.Dataflow

type style = {
  resolve_pic_tables : bool;
  resolve_load_tables : bool;  (** the [mov r, \[table+idx*8\]; jmp r] form *)
  linear_fallthrough : bool;
  linear_after_indirect : bool;
      (** keep decoding straight past an unresolved indirect jump *)
  track_through_indirect_calls : bool;
      (** assume an unknown callee preserves rsp; when false, tracking is
          abandoned after indirect call sites *)
}

let angr_style =
  {
    resolve_pic_tables = true;
    resolve_load_tables = false;
    linear_fallthrough = true;
    linear_after_indirect = false;
    track_through_indirect_calls = true;
  }

let dyninst_style =
  {
    resolve_pic_tables = true;
    resolve_load_tables = true;
    linear_fallthrough = true;
    linear_after_indirect = true;
    track_through_indirect_calls = true;
  }

module Lattice = struct
  type state = int  (** bytes pushed since entry *)

  type fatal = unit  (** never produced *)

  let equal = Int.equal

  (* [First_write_wins] mode never joins. *)
  let join a _ = a
  let widen ~old:_ s = s

  let transfer ~addr:_ ~len:_ insn h =
    match Semantics.flow insn with
    | Semantics.Fall | Semantics.Callf _ -> (
        match Semantics.sp_delta insn with
        | Some d -> Dataflow.Step (h - d)
        | None -> Dataflow.Drop (* untrackable: abandon the path *))
    | _ -> Dataflow.Step h (* successors inherit the jump-site height *)
end

module Solver = Dataflow.Make (Lattice)

(** Heights at every address reached from [entry]; first write wins (the
    arrival-order sensitivity is part of the model). *)
let analyze loaded ~(style : style) entry =
  let table_allowed op prior =
    match Jump_table.resolve loaded.Loaded.image ~prior op with
    | Some { Jump_table.targets; _ } -> (
        (* classify the shape to apply the style's power *)
        match op with
        | Insn.Mem _ -> Some targets (* direct absolute form *)
        | Insn.Reg _ ->
            (* load form or PIC form; distinguish by scanning the window *)
            let is_pic =
              List.exists
                (fun (_, _, i) ->
                  match i with Insn.Movsxd _ -> true | _ -> false)
                prior
            in
            if is_pic then if style.resolve_pic_tables then Some targets else None
            else if style.resolve_load_tables then Some targets
            else None
        | Insn.Imm _ -> None)
    | None -> None
  in
  let prog =
    {
      Dataflow.insn_at = Loaded.insn_at loaded;
      in_text = Loaded.in_text loaded;
    }
  in
  let policy =
    {
      Solver.default_policy with
      resolve_indirect = (fun ~site:_ ~window op -> table_allowed op window);
      call_falls_through =
        (fun ~site:_ ~target _ ->
          match target with
          | None -> style.track_through_indirect_calls
          | Some _ -> true);
      filter_succs_in_text = false;
      stop_outside_text = true;
      linear_fallthrough = style.linear_fallthrough;
      linear_after_indirect = style.linear_after_indirect;
      (* both tools know FDE boundaries: the linear guess never crosses
         into another FDE-covered function *)
      stop_linear_at = Loaded.fde_starting_at loaded;
      inline_cond_fallthrough = true;
      order = Dataflow.Breadth_first;
    }
  in
  let sol =
    Solver.solve ~max_block_insns:max_int ~max_blocks:max_int prog policy
      ~merge:Dataflow.First_write_wins ~entry ~init:0 ()
  in
  sol.Solver.states
