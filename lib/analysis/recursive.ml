(** Recursive-descent disassembly engine (the "safe recursive disassembly"
    of §IV-C, and the substrate every baseline model reuses with different
    knobs).

    Starting from a seed set of function entries (FDE starts, symbols), the
    engine follows intra-procedural control flow per function, adds targets
    of direct calls as new function entries, resolves bounds-checked jump
    tables (optionally), skips indirect calls, performs no tail-call
    guessing — a direct jump to a known function entry ends the block and is
    recorded as an outgoing jump — and iterates a non-returning-function
    analysis to fixpoint so no block is placed after a call that cannot
    return. *)

open Fetch_x86
module Obs = Fetch_obs.Trace
module Prov = Fetch_obs.Provenance

(* Stage instrumentation (no-ops unless a Fetch_obs run is active). *)
let c_insns_decoded = Obs.counter "recursive.insns_decoded"
let c_funcs_disassembled = Obs.counter "recursive.functions_disassembled"
let c_tables_resolved = Obs.counter "recursive.jump_tables_resolved"
let c_noreturn_iters = Obs.counter "recursive.noreturn_iters"
let c_extend_runs = Obs.counter "recursive.extend_runs"
let c_extend_funcs = Obs.counter "recursive.extend_funcs"
let h_block_insns = Obs.histogram "recursive.block_insns"

type config = {
  resolve_jump_tables : bool;
  noreturn_aware : bool;
      (** iterate the non-returning analysis; when off, calls always fall
          through (the unsafe behaviour of simpler tools) *)
  stop_at_known_starts : bool;
      (** direct jumps to known function entries end the block instead of
          being followed intra-procedurally *)
  max_noreturn_iters : int;
}

let safe_config =
  {
    resolve_jump_tables = true;
    noreturn_aware = true;
    stop_at_known_starts = true;
    max_noreturn_iters = 5;
  }

type func = {
  entry : int;
  mutable blocks : (int * int) list;  (** decoded [lo, hi) ranges *)
  mutable calls : (int * int) list;  (** call site, direct target *)
  mutable out_jumps : (int * Insn.t * int) list;
      (** direct jumps leaving the function: site, insn, target *)
  mutable all_jump_sites : (int * Insn.t * int) list;
      (** every direct/conditional jump with its target (incl. intra) *)
  mutable table_targets : (int * int list) list;  (** resolved jump tables *)
  mutable unresolved_indirect_jump : bool;
  mutable has_ret : bool;
  mutable has_indirect_call : bool;
  mutable decode_error : bool;
}

type result = {
  funcs : (int, func) Hashtbl.t;
  noreturn : (int, unit) Hashtbl.t;  (** entries that can never return *)
  cond_noreturn : (int, unit) Hashtbl.t;  (** [error]-style entries *)
  insn_spans : unit Fetch_util.Interval_map.t;
      (** union of all decoded instruction extents *)
}

let new_func entry =
  {
    entry;
    blocks = [];
    calls = [];
    out_jumps = [];
    all_jump_sites = [];
    table_targets = [];
    unresolved_indirect_jump = false;
    has_ret = false;
    has_indirect_call = false;
    decode_error = false;
  }

(* Identify [error]-style conditionally non-returning functions: the entry
   tests the first argument, branches to the returning path on zero, and
   the nonzero (fallthrough) path provably never returns — it runs
   straight into an exit syscall or a trap. *)
let detect_cond_noreturn loaded entry =
  let rec path_never_returns addr fuel =
    if fuel <= 0 then false
    else
      match Loaded.insn_at loaded addr with
      | Some (Insn.Ud2, _) | Some (Insn.Hlt, _) -> true
      | Some (Insn.Syscall, len) -> path_never_returns (addr + len) fuel
      | Some (insn, len) -> (
          match Semantics.flow insn with
          | Semantics.Fall -> path_never_returns (addr + len) (fuel - 1)
          | Semantics.Ret | Semantics.Jump _ | Semantics.Cond _
          | Semantics.Callf _ ->
              false
          | Semantics.Halt -> true)
      | None -> false
  in
  match Loaded.insn_at loaded entry with
  | Some (Insn.Test (_, Reg.Rdi, Reg.Rdi), len) -> (
      match Loaded.insn_at loaded (entry + len) with
      | Some (Insn.Jcc (Insn.E, _), jlen) | Some (Insn.Jcc_short (Insn.E, _), jlen)
        ->
          path_never_returns (entry + len + jlen) 8
      | _ -> false)
  | _ -> false

(* At a call site to a conditional-noreturn callee, decide whether the call
   returns: the paper runs a backward slice of the first argument and treats
   the call as returning only when the argument provably flows from zero. *)
let call_error_returns (prior : (int * int * Insn.t) list) =
  let rec scan = function
    | [] -> false (* unknown: treat as non-returning *)
    | (_, _, insn) :: rest -> (
        match insn with
        | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm 0) -> true
        | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm _) -> false
        | Insn.Arith (Insn.Xor, _, Insn.Reg Reg.Rdi, Insn.Reg Reg.Rdi) -> true
        | Insn.Mov (_, Insn.Reg Reg.Rdi, _) -> false
        | Insn.Lea (Reg.Rdi, _) -> false
        | Insn.Pop Reg.Rdi -> false
        | _ -> scan rest)
  in
  scan prior

(* Decode one basic block starting at [addr]; returns the decoded
   instructions (in order) and the block's control-flow ending. *)
type block_end =
  | End_ret
  | End_halt
  | End_jump of Insn.t * int
  | End_cond of Insn.t * int * int  (** insn, taken target, fallthrough *)
  | End_indirect of Insn.operand * (int * int * Insn.t) list
      (** operand + reversed prior window for table resolution *)
  | End_call_noreturn
  | End_fallthrough of int  (** ran into a known block/function start *)
  | End_error

let rec decode_block loaded (cfg : config) ~noreturn ~cond_noreturn ~f
    ~is_start ~block_known addr acc =
  if addr <> f.entry && is_start addr && cfg.stop_at_known_starts then
    (List.rev acc, End_fallthrough addr)
  else if block_known addr && acc <> [] then (List.rev acc, End_fallthrough addr)
  else
    match Loaded.insn_at loaded addr with
    | None -> (List.rev acc, End_error)
    | Some (insn, len) -> (
        Obs.incr c_insns_decoded;
        let acc' = (addr, len, insn) :: acc in
        match Semantics.flow insn with
        | Semantics.Fall ->
            decode_block loaded cfg ~noreturn ~cond_noreturn ~f ~is_start
              ~block_known (addr + len) acc'
        | Semantics.Ret ->
            f.has_ret <- true;
            (List.rev acc', End_ret)
        | Semantics.Halt -> (List.rev acc', End_halt)
        | Semantics.Jump (Semantics.Direct t) ->
            (List.rev acc', End_jump (insn, t))
        | Semantics.Jump (Semantics.Indirect op) ->
            (List.rev acc', End_indirect (op, acc'))
        | Semantics.Cond t -> (List.rev acc', End_cond (insn, t, addr + len))
        | Semantics.Callf (Semantics.Direct t) ->
            f.calls <- (addr, t) :: f.calls;
            let returns =
              if not cfg.noreturn_aware then true
              else if Hashtbl.mem noreturn t then false
              else if Hashtbl.mem cond_noreturn t then
                call_error_returns acc (* prior, excluding the call itself *)
              else true
            in
            if returns then
              decode_block loaded cfg ~noreturn ~cond_noreturn ~f ~is_start
                ~block_known (addr + len) acc'
            else (List.rev acc', End_call_noreturn)
        | Semantics.Callf (Semantics.Indirect _) ->
            f.has_indirect_call <- true;
            decode_block loaded cfg ~noreturn ~cond_noreturn ~f ~is_start
              ~block_known (addr + len) acc')

(* Disassemble one function from [entry], updating global state.  Pending
   blocks carry the reversed instruction window of their fallthrough
   predecessor so jump-table slicing can look across block boundaries (the
   bounds check `cmp/ja` ends the block before the dispatch jump). *)
let disasm_function loaded cfg ~noreturn ~cond_noreturn ~is_start ~spans
    ~new_entries entry =
  Obs.incr c_funcs_disassembled;
  let f = new_func entry in
  let visited = Hashtbl.create 16 in
  let pending = Queue.create () in
  Queue.add (entry, []) pending;
  let block_known a = Hashtbl.mem visited a in
  while not (Queue.is_empty pending) do
    let b, inherited = Queue.pop pending in
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.replace visited b ();
      let insns, ending =
        decode_block loaded cfg ~noreturn ~cond_noreturn ~f ~is_start
          ~block_known b []
      in
      if Obs.enabled () then Obs.observe h_block_insns (List.length insns);
      (match insns with
      | [] -> ()
      | (lo, _, _) :: _ ->
          let last_addr, last_len, _ = List.nth insns (List.length insns - 1) in
          let hi = last_addr + last_len in
          f.blocks <- (lo, hi) :: f.blocks;
          (* per-instruction spans: overlapping decodes of the same bytes
             must never evict earlier coverage *)
          List.iter
            (fun (a, l, _) ->
              if not (Fetch_util.Interval_map.overlaps spans ~lo:a ~hi:(a + l))
              then Fetch_util.Interval_map.add spans ~lo:a ~hi:(a + l) ())
            insns);
      (* register discovered callees *)
      List.iter (fun (site, t) -> new_entries ~site t) f.calls;
      let rev_insns = List.rev insns in
      let window = rev_insns @ inherited in
      let add_block ?(window = []) t =
        if not (Hashtbl.mem visited t) then Queue.add (t, window) pending
      in
      match ending with
      | End_ret | End_halt | End_call_noreturn -> ()
      | End_error -> f.decode_error <- true
      | End_fallthrough t ->
          (* ran into an existing block of this function: fine; into another
             function's entry: record nothing (no tail-call guessing) *)
          if not (is_start t) || not cfg.stop_at_known_starts then
            add_block ~window t
      | End_jump (insn, t) ->
          let site = match rev_insns with (a, _, _) :: _ -> a | [] -> b in
          f.all_jump_sites <- (site, insn, t) :: f.all_jump_sites;
          if cfg.stop_at_known_starts && is_start t && t <> entry then
            f.out_jumps <- (site, insn, t) :: f.out_jumps
          else if Loaded.in_text loaded t then add_block t
          else f.out_jumps <- (site, insn, t) :: f.out_jumps
      | End_cond (insn, t, fall) ->
          let site = match rev_insns with (a, _, _) :: _ -> a | [] -> b in
          f.all_jump_sites <- (site, insn, t) :: f.all_jump_sites;
          (if cfg.stop_at_known_starts && is_start t && t <> entry then
             f.out_jumps <- (site, insn, t) :: f.out_jumps
           else if Loaded.in_text loaded t then add_block t);
          (* the fallthrough block inherits the window across the branch *)
          add_block ~window fall
      | End_indirect (op, rev_window) -> (
          if not cfg.resolve_jump_tables then
            f.unresolved_indirect_jump <- true
          else
            let prior =
              match rev_window @ inherited with
              | _jmp :: prior -> prior
              | [] -> []
            in
            match Jump_table.resolve loaded.Loaded.image ~prior op with
            | Some { Jump_table.table_addr; targets } ->
                Obs.incr c_tables_resolved;
                f.table_targets <- (table_addr, targets) :: f.table_targets;
                List.iter (fun t -> add_block t) (List.sort_uniq compare targets)
            | None -> f.unresolved_indirect_jump <- true)
    end
  done;
  f

(* Can the function return?  Propagated over the tail-jump graph. *)
let compute_returns funcs =
  let returns = Hashtbl.create (Hashtbl.length funcs) in
  let base f =
    f.has_ret || f.unresolved_indirect_jump || f.decode_error
  in
  Hashtbl.iter (fun e f -> if base f then Hashtbl.replace returns e ()) funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun e f ->
        if not (Hashtbl.mem returns e) then
          let via_jump =
            List.exists
              (fun (_, _, t) ->
                (not (Hashtbl.mem funcs t)) || Hashtbl.mem returns t)
              f.out_jumps
          in
          if via_jump then begin
            Hashtbl.replace returns e ();
            changed := true
          end)
      funcs
  done;
  returns

(* Noreturn fixpoint driver shared by [run] and [extend]: re-run [iterate]
   until the noreturn / cond-noreturn fact tables stop growing or the
   iteration budget runs out.  [iterate] must rebuild (funcs, spans) from
   its own starting state on every call — newly learned facts can shrink
   blocks, so stale spans cannot be patched in place. *)
let solve (config : config) loaded ~noreturn ~cond_noreturn iterate =
  let rec fixpoint i (funcs, spans) =
    if (not config.noreturn_aware) || i >= config.max_noreturn_iters then
      (funcs, spans)
    else begin
      Obs.incr c_noreturn_iters;
      let returns = compute_returns funcs in
      let changed = ref false in
      Hashtbl.iter
        (fun e _ ->
          if not (Hashtbl.mem returns e) then
            if detect_cond_noreturn loaded e then begin
              (* cannot happen: cond-noreturn fns have a ret *) ()
            end
            else if not (Hashtbl.mem noreturn e) then begin
              Hashtbl.replace noreturn e ();
              changed := true
            end)
        funcs;
      Hashtbl.iter
        (fun e _ ->
          if
            Hashtbl.mem returns e
            && (not (Hashtbl.mem cond_noreturn e))
            && detect_cond_noreturn loaded e
          then begin
            Hashtbl.replace cond_noreturn e ();
            changed := true
          end)
        funcs;
      if !changed then fixpoint (i + 1) (iterate ()) else (funcs, spans)
    end
  in
  let funcs, spans = fixpoint 0 (iterate ()) in
  { funcs; noreturn; cond_noreturn; insn_spans = spans }

(* Ledger helper: one [recursive.discover] per callee per engine run (the
   noreturn fixpoint re-walks everything, so dedup lives outside the
   iteration); seeds are not "discovered" — their origin events come from
   the caller (FDE/symbol/xref). *)
let make_discover loaded ~already_known =
  let prov_seen = if Prov.enabled () then Some (Hashtbl.create 64) else None in
  (match prov_seen with
  | Some tbl -> List.iter (fun e -> Hashtbl.replace tbl e ()) already_known
  | None -> ());
  fun ~site t ->
    match prov_seen with
    | None -> ()
    | Some tbl ->
        if (not (Hashtbl.mem tbl t)) && Loaded.in_text loaded t then begin
          Hashtbl.replace tbl t ();
          Prov.emit ~ev:"recursive.discover" ~addr:t [ ("site", Prov.I site) ]
        end

(** Run the engine from the given seed entries. *)
let run ?(config = safe_config) loaded ~seeds =
  Obs.span "recursive" @@ fun () ->
  let noreturn = Hashtbl.create 16 in
  let cond_noreturn = Hashtbl.create 4 in
  let discover = make_discover loaded ~already_known:[] in
  let iterate () =
    let funcs = Hashtbl.create 256 in
    let spans = Fetch_util.Interval_map.create () in
    let queue = Queue.create () in
    let known = Hashtbl.create 256 in
    let register t =
      if (not (Hashtbl.mem known t)) && Loaded.in_text loaded t then begin
        Hashtbl.replace known t ();
        Queue.add t queue
      end
    in
    let new_entries ~site t =
      discover ~site t;
      register t
    in
    List.iter register seeds;
    let is_start a = Hashtbl.mem known a in
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      if not (Hashtbl.mem funcs e) then begin
        let f =
          disasm_function loaded config ~noreturn ~cond_noreturn ~is_start
            ~spans ~new_entries e
        in
        Hashtbl.replace funcs e f
      end
    done;
    (funcs, spans)
  in
  solve config loaded ~noreturn ~cond_noreturn iterate

(** Resume a prior result with extra seed entries, disassembling only the
    delta reachable from the fresh seeds.

    Soundness precondition (guaranteed by xref validation for accepted
    pointers, see DESIGN.md "Incremental xref"): no committed function
    transfers control to a fresh seed, and no fresh function transfers
    into the committed extents other than by calling / tail-jumping a
    committed *entry*.  Under that precondition the committed funcs,
    spans and noreturn facts are stable, so every (re-)iteration forks
    them — [Hashtbl.copy] for funcs and facts, O(1)
    [Interval_map.copy] for spans — and only the delta is re-decoded
    when a noreturn fact learned about a *new* function shrinks its
    blocks. *)
let extend ?(config = safe_config) loaded ~prior ~seeds =
  Obs.span "recursive.extend" @@ fun () ->
  Obs.incr c_extend_runs;
  let noreturn = Hashtbl.copy prior.noreturn in
  let cond_noreturn = Hashtbl.copy prior.cond_noreturn in
  let already_known = Hashtbl.fold (fun e _ acc -> e :: acc) prior.funcs [] in
  let discover = make_discover loaded ~already_known in
  let iterate () =
    let funcs = Hashtbl.copy prior.funcs in
    let spans = Fetch_util.Interval_map.copy prior.insn_spans in
    let queue = Queue.create () in
    let known = Hashtbl.create 64 in
    Hashtbl.iter (fun e _ -> Hashtbl.replace known e ()) prior.funcs;
    let register t =
      if (not (Hashtbl.mem known t)) && Loaded.in_text loaded t then begin
        Hashtbl.replace known t ();
        Queue.add t queue
      end
    in
    let new_entries ~site t =
      discover ~site t;
      register t
    in
    List.iter register seeds;
    let is_start a = Hashtbl.mem known a in
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      if not (Hashtbl.mem funcs e) then begin
        let f =
          disasm_function loaded config ~noreturn ~cond_noreturn ~is_start
            ~spans ~new_entries e
        in
        Hashtbl.replace funcs e f;
        Obs.incr c_extend_funcs
      end
    done;
    (funcs, spans)
  in
  solve config loaded ~noreturn ~cond_noreturn iterate

(** Detected function starts, ascending. *)
let starts result =
  Hashtbl.fold (fun e _ acc -> e :: acc) result.funcs [] |> List.sort compare
