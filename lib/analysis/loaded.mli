(** A loaded binary: the ELF image plus everything every analysis needs —
    decoded (and memoized) instructions, the parsed [.eh_frame], the CFI
    height oracle, FDE starts and symbol starts. *)

type t = {
  image : Fetch_elf.Image.t;
  exec : Fetch_elf.Image.section list;  (** executable sections, ascending *)
  oracle : Fetch_dwarf.Height_oracle.t;
  eh_frame : Fetch_dwarf.Eh_frame.decoded;
      (** total parse of [.eh_frame]: recovered CIEs plus the diagnostics
          and recovered-vs-skipped record counts *)
  fdes : Fetch_dwarf.Eh_frame.fde list;
  fde_starts : int list;  (** PC Begin of every FDE, ascending, deduped *)
  symbol_starts : int list;  (** defined FUNC symbol addresses *)
  cache : (int, (Fetch_x86.Insn.t * int) option) Hashtbl.t;
}

(** [load ?eh image] builds the analysis view.  [eh] substitutes an
    already-decoded [.eh_frame] for the decode stage (the serve cache's
    second-level hit); it must be exactly what [Eh_frame.of_image image]
    would return — decodes that followed [DW_EH_PE_indirect] pointers
    ([indirect_derefs > 0]) read other sections and are not safe to
    substitute across binaries.  Parse-health counters are replayed
    from the record either way. *)
val load : ?eh:Fetch_dwarf.Eh_frame.decoded -> Fetch_elf.Image.t -> t

(** Decode (memoized) the instruction at a virtual address. *)
val insn_at : t -> int -> (Fetch_x86.Insn.t * int) option

(** Is the address inside an executable section? *)
val in_text : t -> int -> bool

(** Executable address ranges, ascending. *)
val text_ranges : t -> (int * int) list

(** [(lo, hi)] spanning all executable sections ([hi] exclusive), or
    [None] when there are none.  Coarse bound for pointer prefilters. *)
val text_bounds : t -> (int * int) option

(** The FDE whose range contains the address, if any. *)
val fde_at : t -> int -> Fetch_dwarf.Eh_frame.fde option

(** Does an FDE begin exactly at the address? *)
val fde_starting_at : t -> int -> bool
