(** Recursive-descent disassembly engine (the "safe recursive disassembly"
    of §IV-C, and the substrate every baseline model reuses with different
    knobs).

    Starting from a seed set of function entries (FDE starts, symbols),
    the engine follows intra-procedural control flow per function, adds
    targets of direct calls as new function entries, resolves
    bounds-checked jump tables (optionally), skips indirect calls,
    performs no tail-call guessing — a direct jump to a known function
    entry ends the block and is recorded as an outgoing jump — and
    iterates a non-returning-function analysis to fixpoint so no block is
    placed after a call that cannot return. *)

type config = {
  resolve_jump_tables : bool;
  noreturn_aware : bool;
      (** iterate the non-returning analysis; when off, calls always fall
          through (the unsafe behaviour of simpler tools) *)
  stop_at_known_starts : bool;
      (** direct jumps to known function entries end the block instead of
          being followed intra-procedurally *)
  max_noreturn_iters : int;
}

(** The paper's conservative configuration: tables on, noreturn analysis
    on, no tail-call guessing. *)
val safe_config : config

type func = {
  entry : int;
  mutable blocks : (int * int) list;  (** decoded [lo, hi) ranges *)
  mutable calls : (int * int) list;  (** call site, direct target *)
  mutable out_jumps : (int * Fetch_x86.Insn.t * int) list;
      (** direct jumps leaving the function: site, insn, target *)
  mutable all_jump_sites : (int * Fetch_x86.Insn.t * int) list;
      (** every direct/conditional jump with its target (incl. intra) *)
  mutable table_targets : (int * int list) list;  (** resolved jump tables *)
  mutable unresolved_indirect_jump : bool;
  mutable has_ret : bool;
  mutable has_indirect_call : bool;
  mutable decode_error : bool;
}

type result = {
  funcs : (int, func) Hashtbl.t;
  noreturn : (int, unit) Hashtbl.t;  (** entries that can never return *)
  cond_noreturn : (int, unit) Hashtbl.t;  (** [error]-style entries *)
  insn_spans : unit Fetch_util.Interval_map.t;
      (** union of all decoded instruction extents *)
}

(** Detect [error]-style conditionally-noreturn entries: the entry tests
    the first argument and the nonzero path provably never returns. *)
val detect_cond_noreturn : Loaded.t -> int -> bool

(** Run the engine from the given seed entries. *)
val run : ?config:config -> Loaded.t -> seeds:int list -> result

(** [extend loaded ~prior ~seeds] resumes [prior] with extra seeds,
    disassembling only the delta reachable from them; [prior] is not
    mutated.  Equivalent to re-running from scratch with the union of
    seeds *provided* no committed function transfers control to a fresh
    seed and no fresh function transfers into the committed extents
    except at a committed entry — exactly what xref validation
    guarantees for accepted function pointers (§IV-E). *)
val extend : ?config:config -> Loaded.t -> prior:result -> seeds:int list -> result

(** Detected function starts, ascending. *)
val starts : result -> int list
