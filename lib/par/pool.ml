(** Fixed-size domain pool with a work queue — semantics in the mli. *)

type failure = {
  f_index : int;
  f_label : string;
  f_exn : string;
  f_backtrace : string;
}

let failure_to_string f =
  Printf.sprintf "task %d (%s) raised: %s%s" f.f_index f.f_label f.f_exn
    (if f.f_backtrace = "" then ""
     else "\n" ^ String.trim f.f_backtrace)

type t = {
  mu : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let size t = Array.length t.workers
let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Workers loop pulling closures off the queue until shutdown drains it.
   Task closures capture their own failures (see [submit]/[map]), so a
   raise escaping one here would be a pool bug; swallowing it keeps one
   broken task from killing the worker and hanging every later map. *)
let worker pool () =
  let rec next () =
    Mutex.lock pool.mu;
    let rec await () =
      match Queue.take_opt pool.queue with
      | Some job -> Some job
      | None ->
          if pool.stopping then None
          else begin
            Condition.wait pool.work_available pool.mu;
            await ()
          end
    in
    let job = await () in
    Mutex.unlock pool.mu;
    match job with
    | None -> ()
    | Some job ->
        (try job () with _ -> ());
        next ()
  in
  next ()

let create ?domains () =
  let n =
    match domains with
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Pool.create: domains = %d" n)
    | None -> default_domains ()
  in
  let pool =
    {
      mu = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init n (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ---- streaming tasks ---- *)

type 'a outcome = Value of 'a | Fail of failure | Cancelled

type 'a future = {
  fut_mu : Mutex.t;
  fut_done : Condition.t;
  mutable result : 'a outcome option;
}

let resolve fut outcome =
  Mutex.lock fut.fut_mu;
  fut.result <- Some outcome;
  Condition.broadcast fut.fut_done;
  Mutex.unlock fut.fut_mu

let poll fut =
  Mutex.lock fut.fut_mu;
  let r = fut.result in
  Mutex.unlock fut.fut_mu;
  r

let await fut =
  Mutex.lock fut.fut_mu;
  while fut.result = None do
    Condition.wait fut.fut_done fut.fut_mu
  done;
  let r = Option.get fut.result in
  Mutex.unlock fut.fut_mu;
  r

let enqueue t job =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    invalid_arg "Pool: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mu

let submit t ?(cancel = fun () -> false) ?(label = "task") f =
  let fut = { fut_mu = Mutex.create (); fut_done = Condition.create (); result = None } in
  let job () =
    (* the cancellation hook runs on the worker, at dequeue time: a
       request whose deadline passed while queued never touches the
       pipeline.  A raising hook counts as "not cancelled". *)
    let cancelled = try cancel () with _ -> false in
    if cancelled then resolve fut Cancelled
    else
      let outcome =
        match f () with
        | v -> Value v
        | exception e ->
            Fail
              {
                f_index = 0;
                f_label = label;
                f_exn = Printexc.to_string e;
                f_backtrace = Printexc.get_backtrace ();
              }
      in
      resolve fut outcome
  in
  enqueue t job;
  fut

(* ---- batch maps, built on the same queue ---- *)

let map t ?(label = fun i _ -> string_of_int i) f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let pending = ref n in
    let batch_mu = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      let r =
        match f xs.(i) with
        | v -> Ok v
        | exception e ->
            let bt = Printexc.get_backtrace () in
            Error
              {
                f_index = i;
                f_label = label i xs.(i);
                f_exn = Printexc.to_string e;
                f_backtrace = bt;
              }
      in
      Mutex.lock batch_mu;
      results.(i) <- Some r;
      Stdlib.decr pending;
      if !pending = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mu
    in
    Mutex.lock t.mu;
    if t.stopping then begin
      Mutex.unlock t.mu;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mu;
    Mutex.lock batch_mu;
    while !pending > 0 do
      Condition.wait batch_done batch_mu
    done;
    Mutex.unlock batch_mu;
    Array.to_list (Array.map Option.get results)
  end
