(** Fixed-size domain pool with a work queue — semantics in the mli. *)

type failure = {
  f_index : int;
  f_label : string;
  f_exn : string;
  f_backtrace : string;
}

let failure_to_string f =
  Printf.sprintf "task %d (%s) raised: %s%s" f.f_index f.f_label f.f_exn
    (if f.f_backtrace = "" then ""
     else "\n" ^ String.trim f.f_backtrace)

type t = {
  mu : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let size t = Array.length t.workers
let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Workers loop pulling closures off the queue until shutdown drains it.
   Task closures capture their own failures (see [map]), so a raise
   escaping one here would be a pool bug; swallowing it keeps one broken
   task from killing the worker and hanging every later [map]. *)
let worker pool () =
  let rec next () =
    Mutex.lock pool.mu;
    let rec await () =
      match Queue.take_opt pool.queue with
      | Some job -> Some job
      | None ->
          if pool.stopping then None
          else begin
            Condition.wait pool.work_available pool.mu;
            await ()
          end
    in
    let job = await () in
    Mutex.unlock pool.mu;
    match job with
    | None -> ()
    | Some job ->
        (try job () with _ -> ());
        next ()
  in
  next ()

let create ?domains () =
  let n =
    match domains with
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Pool.create: domains = %d" n)
    | None -> default_domains ()
  in
  let pool =
    {
      mu = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init n (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map t ?(label = fun i _ -> string_of_int i) f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let pending = ref n in
    let batch_mu = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      let r =
        match f xs.(i) with
        | v -> Ok v
        | exception e ->
            let bt = Printexc.get_backtrace () in
            Error
              {
                f_index = i;
                f_label = label i xs.(i);
                f_exn = Printexc.to_string e;
                f_backtrace = bt;
              }
      in
      Mutex.lock batch_mu;
      results.(i) <- Some r;
      Stdlib.decr pending;
      if !pending = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mu
    in
    Mutex.lock t.mu;
    if t.stopping then begin
      Mutex.unlock t.mu;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mu;
    Mutex.lock batch_mu;
    while !pending > 0 do
      Condition.wait batch_done batch_mu
    done;
    Mutex.unlock batch_mu;
    Array.to_list (Array.map Option.get results)
  end
