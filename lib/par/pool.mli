(** A fixed-size pool of OCaml domains draining a shared work queue.

    Built for corpus-scale batch analysis: per-binary tasks are
    embarrassingly parallel, each task is isolated (an exception in one
    becomes a structured {!failure} record and never aborts the batch),
    and results come back in {e submission order}, so a parallel run is
    a drop-in replacement for the sequential loop it speeds up.

    Tasks must not share mutable state: the observability layer is
    per-domain ({!Fetch_obs.Trace}'s domain-safety contract), and each
    task should bracket its own [Fetch_obs.Trace.with_run] if it wants a
    report.  Nested use of the pool from inside a task is not
    supported. *)

type t

(** One task's captured exception: the task's submission index, the
    caller-supplied label (for attribution in reports), the printed
    exception and the backtrace (possibly empty when backtrace recording
    is off). *)
type failure = {
  f_index : int;
  f_label : string;
  f_exn : string;
  f_backtrace : string;
}

val failure_to_string : failure -> string

(** [create ~domains ()] spawns a pool of [domains] worker domains
    (default {!default_domains}).  Raises [Invalid_argument] when
    [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [Domain.recommended_domain_count], at least 1. *)
val default_domains : unit -> int

(** Drain the queue, then stop and join every worker.  Idempotent.
    Outstanding [map] calls finish first (their tasks are already
    queued); new [map] calls after shutdown raise. *)
val shutdown : t -> unit

(** [with_pool ~domains f] is [f (create ~domains ())] with a guaranteed
    [shutdown], even when [f] raises. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** [map t ~label f xs] runs [f x] for every element on the pool and
    blocks until all complete.  The result list is in the order of [xs]
    regardless of scheduling, one entry per element: [Ok (f x)], or
    [Error failure] when [f x] raised — a raising task never affects the
    others.  [label i x] names task [i] in its failure record. *)
val map :
  t ->
  ?label:(int -> 'a -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list
