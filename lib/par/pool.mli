(** A fixed-size pool of OCaml domains draining a shared work queue.

    Built for corpus-scale batch analysis and the serve daemon:
    per-binary tasks are embarrassingly parallel, each task is isolated
    (an exception in one becomes a structured {!failure} record and
    never aborts the batch), and results come back in {e submission
    order}, so a parallel run is a drop-in replacement for the
    sequential loop it speeds up.

    Two entry points share the queue: {!map} (batch style — submit a
    list, block for all results) and {!submit} (streaming style — one
    task, a {!future} to poll or await, and an optional cooperative
    cancellation hook checked before the task runs, which is how the
    serve daemon sheds queued requests whose deadline already passed
    without poisoning a worker).

    Tasks must not share mutable state: the observability layer is
    per-domain ({!Fetch_obs.Trace}'s domain-safety contract), and each
    task should bracket its own [Fetch_obs.Trace.with_run] if it wants a
    report.  Nested use of the pool from inside a task is not
    supported. *)

type t

(** One task's captured exception: the task's submission index (0 for
    [submit]-style tasks), the caller-supplied label (for attribution in
    reports), the printed exception and the backtrace (possibly empty
    when backtrace recording is off). *)
type failure = {
  f_index : int;
  f_label : string;
  f_exn : string;
  f_backtrace : string;
}

val failure_to_string : failure -> string

(** [create ~domains ()] spawns a pool of [domains] worker domains
    (default {!default_domains}).  Raises [Invalid_argument] when
    [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [Domain.recommended_domain_count], at least 1. *)
val default_domains : unit -> int

(** Drain the queue, then stop and join every worker.  Idempotent.
    Outstanding [map] calls finish first (their tasks are already
    queued); new [map]/[submit] calls after shutdown raise. *)
val shutdown : t -> unit

(** [with_pool ~domains f] is [f (create ~domains ())] with a guaranteed
    [shutdown], even when [f] raises. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** {2 Streaming tasks} *)

(** How one submitted task ended. *)
type 'a outcome =
  | Value of 'a  (** the task ran and returned *)
  | Fail of failure  (** the task ran and raised *)
  | Cancelled
      (** the [cancel] hook returned [true] when a worker dequeued the
          task; the task body never ran *)

(** Handle on one submitted task. *)
type 'a future

(** [submit t ~cancel ~label f] enqueues [f] and returns immediately.
    When a worker dequeues the task it first evaluates [cancel ()]
    (default [fun () -> false]); [true] resolves the future as
    {!Cancelled} without running [f] — the cooperative cancellation
    hook.  [cancel] runs on the worker domain and must be fast and
    non-raising (a raise counts as [false] and the task runs).  Raises
    [Invalid_argument] after {!shutdown}. *)
val submit :
  t -> ?cancel:(unit -> bool) -> ?label:string -> (unit -> 'a) -> 'a future

(** Non-blocking: the outcome if the task already finished. *)
val poll : 'a future -> 'a outcome option

(** Block until the task finishes. *)
val await : 'a future -> 'a outcome

(** {2 Batch maps} *)

(** [map t ~label f xs] runs [f x] for every element on the pool and
    blocks until all complete.  The result list is in the order of [xs]
    regardless of scheduling, one entry per element: [Ok (f x)], or
    [Error failure] when [f x] raised — a raising task never affects the
    others.  [label i x] names task [i] in its failure record. *)
val map :
  t ->
  ?label:(int -> 'a -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list
