(** Compiler/optimization profiles: the knobs that shape generated code.

    Each profile sets the per-function probabilities of the constructs
    that matter to function detection, calibrated so corpus-wide
    statistics track the paper's observations (hot/cold splitting grows
    with optimization, -Os avoids it and drops alignment, etc.). *)

type compiler = Synthgcc | Synthllvm

type opt = O2 | O3 | Os | Ofast

val compiler_name : compiler -> string
val opt_name : opt -> string

(** O2, O3, Os, Ofast — the levels of the paper's corpus (§IV-A). *)
val all_opts : opt list

type t = {
  compiler : compiler;
  opt : opt;
  p_cold_split : float;  (** probability a framed function is split *)
  p_tail_call : float;  (** probability a function ends in a tail call *)
  p_switch : float;  (** probability a statement is a jump-table switch *)
  p_rbp_frame : float;  (** frame-pointer functions (incomplete CFI) *)
  p_frameless : float;
  p_noreturn_call : float;
  p_entry_jump : float;  (** rotated-loop entries (start with jmp) *)
  p_entry_nops : float;  (** hot-patchable entries (leading nops) *)
  p_indirect_call : float;
  p_reg_pointer_call : float;
  pic_tables : bool;  (** PIC-style (offset) jump tables vs absolute *)
  body_scale : float;  (** multiplier on body statement counts *)
  align : int;
  endbr : bool;
  p_orphan : float;
      (** functions never referenced by direct calls (exported-API style) *)
  p_text_junk : float;
      (** probability of a junk blob (literal-pool style) after a function *)
  junk_scale : int;  (** size multiplier on junk blobs (adversarial padding) *)
  p_junk_prologue : float;
      (** probability each junk-blob slot embeds a prologue-looking fragment *)
  junk_endbr : bool;  (** junk fragments lead with endbr64 (CET-style decoys) *)
  p_table_pool : float;
      (** probability of a jump-table-style pool (4-byte offset rows) after a
          function *)
}

val make : compiler -> opt -> t

(** e.g. ["gcc-O2"]. *)
val name : t -> string

(** Every [p_*] knob paired with its field name (for diagnostics). *)
val probability_knobs : t -> (string * float) list

(** Profile invariant: every [p_*] knob in [[0,1]], [align] a power of
    two, [body_scale] positive, [junk_scale >= 1].  Holds for every
    {!make} output and must hold for derived (adversarial) profiles. *)
val check : t -> (unit, string) result

(** Force a derived profile back into range: [p_*] knobs clamped to
    [[0,1]] (NaN → 0), [align] rounded down to a power of two (floor 1),
    non-positive [body_scale] reset to 1, [junk_scale] floored to 1.
    [check (clamp p) = Ok ()]. *)
val clamp : t -> t
