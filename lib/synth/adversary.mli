(** Named adversarial scenarios over the synthetic corpus.

    Each scenario stresses one mechanism of function detection — padding
    pools with forged prologues, hand-written-CFI FDEs at scale (Fig. 6b),
    CET endbr64 decoys, 64-bit DWARF [.eh_frame], a stripped
    [.eh_frame_hdr], overlapping/misordered FDEs — while keeping the
    {!Truth.t} manifest exact: profile/spec knobs shape [.text] before
    truth is recorded, and post-link transforms only rewrite unwind
    sections the truth does not describe. *)

type t = {
  id : string;
  summary : string;  (** one line: what the corpus looks like *)
  stresses : string;  (** which paper mechanism/claim the scenario probes *)
  profile : Profile.t;
  spec : Gen.spec;
  transform : Link.built -> Link.built;  (** deterministic post-link rewrite *)
  fetch_floor : float;
      (** CI regression floor: minimum FETCH F1 (in [0,1]) on this
          scenario, with a safety margin below observed values *)
}

(** The base profile/spec every scenario perturbs ("clean" runs them
    unchanged), exposed so tests can diff a scenario against its control. *)
val base_profile : Profile.t

val base_spec : Gen.spec

(** All scenarios; first is the ["clean"] control. *)
val all : t list

val ids : unit -> string list
val find : string -> t option

(** Generate + link + transform one binary of the scenario's corpus;
    deterministic in [seed]. *)
val build : t -> seed:int -> Link.built
