(** Final assembly and linking: turn a lowered program into an ELF image
    with [.text], [.rodata], [.data], [.eh_frame] and (optionally) symbols,
    together with the ground-truth manifest. *)

open Fetch_util

let text_base = 0x401000
let rodata_base = 0x500000
let data_base = 0x600000
let eh_frame_hdr_base = 0x6ff000
let eh_frame_base = 0x700000
let except_table_base = 0x6f0000

type built = {
  image : Fetch_elf.Image.t;
  raw : string;  (** the encoded ELF file *)
  truth : Truth.t;
  program : Ir.program;
}

(* Convert label-anchored CFI events into an FDE instruction list with
   DW_CFA_advance_loc deltas. *)
let instrs_of_events ~labels ~pc_begin events =
  let addr_of l = Hashtbl.find labels l in
  let _, rev =
    List.fold_left
      (fun (last, acc) (e : Codegen.cfi_event) ->
        let a = addr_of e.at in
        let acc =
          if a > last then Fetch_dwarf.Cfi.Advance_loc (a - last) :: acc else acc
        in
        (max a last, List.rev_append e.cfi acc))
      (pc_begin, []) events
  in
  List.rev rev

let build_eh_frame ~labels ~personality ~lsda_of (p : Ir.program)
    (outs : Codegen.fn_out list) =
  let addr_of l = Hashtbl.find labels l in
  (* Group functions into synthetic "object files", one CIE each. *)
  let rec chunk n = function
    | [] -> []
    | l ->
        let rec take k acc = function
          | [] -> (List.rev acc, [])
          | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let first, rest = take n [] l in
        first :: chunk n rest
  in
  let with_fde = List.filter (fun (o : Codegen.fn_out) -> o.fn.emit_fde) outs in
  let groups = chunk (max 1 p.object_size) with_fde in
  List.map
    (fun group ->
      let fdes =
        List.concat_map
          (fun (o : Codegen.fn_out) ->
            let pc_begin = addr_of o.fde_label in
            let pc_end = addr_of o.end_label in
            let main_fde =
              if o.fn.broken_fde then
                {
                  Fetch_dwarf.Eh_frame.pc_begin;
                  pc_range = pc_end - pc_begin;
                  lsda = None;
                  (* hand-written CFI expressing the frame opaquely *)
                  instrs = [ Fetch_dwarf.Cfi.Def_cfa_expression "\x9c" ];
                }
              else
                {
                  Fetch_dwarf.Eh_frame.pc_begin;
                  pc_range = pc_end - pc_begin;
                  lsda = lsda_of o;
                  instrs = instrs_of_events ~labels ~pc_begin o.events;
                }
            in
            let cold_fdes =
              match o.cold with
              | None -> []
              | Some (cs, ce) ->
                  let cb = addr_of cs in
                  [
                    {
                      Fetch_dwarf.Eh_frame.pc_begin = cb;
                      pc_range = addr_of ce - cb;
                      lsda = None;
                      instrs =
                        o.cold_initial
                        @ instrs_of_events ~labels ~pc_begin:cb o.cold_events;
                    };
                  ]
            in
            main_fde :: cold_fdes)
          group
      in
      Fetch_dwarf.Eh_frame.default_cie ?personality ~fdes ())
    groups

let build_truth ~labels (outs : Codegen.fn_out list)
    ~(jump_tables : (int * string list) list)
    ~(pools : (string * string) list) ~text_lo ~text_hi =
  let addr_of l = Hashtbl.find labels l in
  let fns =
    List.map
      (fun (o : Codegen.fn_out) ->
        let start = addr_of o.start_label in
        let size = addr_of o.end_label - start in
        let parts =
          (start, size)
          ::
          (match o.cold with
          | Some (cs, ce) -> [ (addr_of cs, addr_of ce - addr_of cs) ]
          | None -> [])
        in
        let prefixed p = String.length o.fn.name >= String.length p
                         && String.sub o.fn.name 0 (String.length p) = p in
        {
          Truth.name = o.fn.name;
          start;
          size;
          parts;
          is_assembly = o.fn.is_assembly;
          has_fde = o.fn.emit_fde;
          noreturn = o.fn.noreturn;
          tail_only = prefixed "asm_tail";
          unreachable = prefixed "asm_dead";
          leaf = (o.fn.frame = Ir.Frameless && o.fn.saves = []);
        })
      outs
  in
  let jump_tables =
    List.map (fun (addr, cases) -> (addr, List.map addr_of cases)) jump_tables
  in
  let pools =
    List.rev_map (fun (s, e) -> (addr_of s, addr_of e - addr_of s)) pools
  in
  { Truth.fns; jump_tables; pools; text_lo; text_hi }

(* Decoy contents appended to .data after the pointer slots: strings,
   small integers, and byte patterns that look like pointers into the
   middle of functions (a true start plus a small offset, landing
   mid-instruction) — the junk that §IV-E's validation must reject. *)
let decoy_data rng ~fn_starts =
  let buf = Byte_buf.create () in
  let starts = Array.of_list fn_starts in
  for _ = 1 to 24 do
    match Prng.int rng 3 with
    | 0 when Array.length starts > 0 ->
        let s = starts.(Prng.int rng (Array.length starts)) in
        Byte_buf.u64 buf (s + 1 + Prng.int rng 3)
    | 0 | 1 -> Byte_buf.u64 buf (Prng.range rng 1 0xffff)
    | _ ->
        Byte_buf.string buf "synthetic string #";
        Byte_buf.u8 buf (0x30 + Prng.int rng 10);
        Byte_buf.u8 buf 0
  done;
  Byte_buf.contents buf

(** Compile, assemble and link [program] into an ELF image + ground truth. *)
let build ~profile ~rng (program : Ir.program) =
  let t = Codegen.lower_program ~rodata_base ~data_base ~profile ~rng program in
  let items = Codegen.items t in
  let asm = Fetch_x86.Asm.assemble ~base:text_base items in
  let labels = asm.labels in
  let addr_of l = Hashtbl.find labels l in
  let text_lo = text_base and text_hi = text_base + String.length asm.code in
  (* Patch jump tables now that case labels have addresses. *)
  let rodata = Bytes.of_string (Byte_buf.contents t.rodata) in
  List.iter
    (fun (f : Codegen.table_fixup) ->
      List.iteri
        (fun i l ->
          let a = addr_of l in
          match f.tf_kind with
          | Codegen.Absolute ->
              Bytes.set_int64_le rodata (f.tf_offset + (8 * i)) (Int64.of_int a)
          | Codegen.Pic ->
              let table_addr = rodata_base + f.tf_offset in
              Bytes.set_int32_le rodata
                (f.tf_offset + (4 * i))
                (Int32.of_int (a - table_addr)))
        f.tf_cases)
    t.fixups;
  (* .data: pointer slots then decoys. *)
  let data_buf = Byte_buf.create () in
  for i = 0 to program.n_pointer_slots - 1 do
    match List.assoc_opt i program.pointer_inits with
    | Some fn -> Byte_buf.u64 data_buf (addr_of fn)
    | None -> Byte_buf.u64 data_buf 0
  done;
  let outs = List.rev t.outs in
  let fn_starts =
    (* decoy mid-function pointers are derived from FDE-covered functions:
       their extents are always disassembled, so validation rejects the
       decoys deterministically *)
    List.filter_map
      (fun (o : Codegen.fn_out) ->
        if o.fn.emit_fde && not o.fn.broken_fde then
          Some (addr_of o.start_label)
        else None)
      outs
  in
  Byte_buf.string data_buf (decoy_data rng ~fn_starts);
  (* C++ binaries carry a personality routine and LSDAs in
     .gcc_except_table, like real g++ output. *)
  let personality = Hashtbl.find_opt labels "__gxx_personality_v0" in
  let except_buf = Byte_buf.create () in
  let lsda_table = Hashtbl.create 16 in
  List.iter
    (fun (o : Codegen.fn_out) ->
      if o.try_sites <> [] && o.fn.emit_fde then begin
        let fn_start = addr_of o.start_label in
        let lsda =
          {
            Fetch_dwarf.Lsda.call_sites =
              List.map
                (fun (ls, le, lp) ->
                  {
                    Fetch_dwarf.Lsda.cs_start = addr_of ls - fn_start;
                    cs_len = addr_of le - addr_of ls;
                    landing_pad = addr_of lp - fn_start;
                    action = 1;
                  })
                o.try_sites;
          }
        in
        let lsda_addr = except_table_base + Byte_buf.length except_buf in
        Byte_buf.string except_buf (Fetch_dwarf.Lsda.encode lsda);
        Byte_buf.pad_to except_buf ~align:4 ~byte:0;
        Hashtbl.replace lsda_table o.fn.name lsda_addr
      end)
    outs;
  let lsda_of (o : Codegen.fn_out) = Hashtbl.find_opt lsda_table o.fn.name in
  let cies = build_eh_frame ~labels ~personality ~lsda_of program outs in
  let eh, fde_index =
    Fetch_dwarf.Eh_frame.encode_with_index ~addr:eh_frame_base cies
  in
  let eh_hdr =
    Fetch_dwarf.Eh_frame_hdr.encode ~addr:eh_frame_hdr_base
      ~eh_frame_addr:eh_frame_base fde_index
  in
  let truth =
    build_truth ~labels outs ~jump_tables:t.jump_tables ~pools:t.pools
      ~text_lo ~text_hi
  in
  let symbols =
    if program.strip_symbols then []
    else
      List.concat_map
        (fun (o : Codegen.fn_out) ->
          let start = addr_of o.start_label in
          let size = addr_of o.end_label - start in
          let main =
            {
              Fetch_elf.Image.sym_name = o.fn.name;
              value = start;
              size;
              sym_kind = Fetch_elf.Image.Func;
              bind = Fetch_elf.Image.Global;
              defined = true;
            }
          in
          let cold =
            match o.cold with
            | None -> []
            | Some (cs, ce) ->
                [
                  {
                    Fetch_elf.Image.sym_name = o.fn.name ^ ".cold";
                    value = addr_of cs;
                    size = addr_of ce - addr_of cs;
                    sym_kind = Fetch_elf.Image.Func;
                    bind = Fetch_elf.Image.Local;
                    defined = true;
                  };
                ]
          in
          main :: cold)
        outs
  in
  let open Fetch_elf.Image in
  let section name kind flags addr data addralign =
    { sec_name = name; kind; flags; addr; data; addralign; entsize = 0 }
  in
  let image =
    {
      entry = addr_of "_start";
      sections =
        [
          section ".text" Progbits (shf_alloc lor shf_execinstr) text_base
            asm.code 16;
          section ".rodata" Progbits shf_alloc rodata_base
            (Bytes.to_string rodata) 8;
          section ".data" Progbits (shf_alloc lor shf_write) data_base
            (Byte_buf.contents data_buf) 8;
          section ".eh_frame" Progbits shf_alloc eh_frame_base eh 8;
          section ".eh_frame_hdr" Progbits shf_alloc eh_frame_hdr_base eh_hdr 4;
        ]
        @ (if Byte_buf.length except_buf > 0 then
             [
               section ".gcc_except_table" Progbits shf_alloc
                 except_table_base
                 (Byte_buf.contents except_buf)
                 4;
             ]
           else []);
      symbols;
    }
  in
  let raw = Fetch_elf.Encode.encode image in
  { image; raw; truth; program }

(** Convenience: generate a program from a spec and build it. *)
let build_random ~profile ~seed (spec : Gen.spec) =
  let rng = Prng.create seed in
  let program = Gen.program rng profile spec in
  build ~profile ~rng program
