(** Intermediate representation consumed by the synthetic compiler.

    A program is a list of functions; each function's body is a small
    structured statement language that the code generator lowers to
    x86-64.  The representation is deliberately shaped around the
    binary-level constructs the paper's analyses care about (tail calls,
    jump tables, non-contiguous hot/cold splits, assembly functions,
    noreturn calls, landing pads), not around source-level
    expressiveness. *)

type stmt =
  | Compute of int  (** [n] ALU instructions over scratch registers *)
  | Call of string  (** direct call *)
  | Call_pointer of int  (** indirect call through data-slot [i] *)
  | Call_reg_pointer of string
      (** materialize the named function's address in a register (a code
          constant, visible to xref detection) and call through it *)
  | Store of int  (** write a scratch value to data slot [i] *)
  | If of stmt list * stmt list
  | Loop of int * stmt list  (** bounded counter loop *)
  | Switch of int * stmt list array  (** jump table over [n]-case switch *)
  | Call_noreturn of string
      (** call to a function that never returns: nothing is emitted after
          the call instruction (terminal statement) *)
  | Call_error of bool
      (** call to the [error]-like conditionally-noreturn function; [true]
          passes a zero first argument (the call returns), [false] passes
          a nonzero one (terminal statement) *)
  | Tail_call of string  (** epilogue + jmp: a true tail call *)
  | Try of stmt list * stmt list
      (** protected region and its landing-pad cleanup: the region gets an
          LSDA call-site entry; the landing pad is emitted out of normal
          control flow, reachable only through the unwinder *)
  | Cold_jump of stmt list
      (** conditional jump to the function's cold (out-of-line) part; at
          most one per function *)
  | Return

type frame_style =
  | Frameless  (** leaf-style: no stack adjustment at all *)
  | Rsp_frame of int  (** sub rsp, n; CFA stays rsp-based (complete CFI) *)
  | Rbp_frame of int
      (** push rbp; mov rbp,rsp; CFA re-based on rbp: CFI heights become
          incomplete in the §V-B sense *)

type func = {
  name : string;
  params : int;  (** argument registers live on entry *)
  frame : frame_style;
  saves : Fetch_x86.Reg.t list;  (** callee-saved registers pushed *)
  body : stmt list;
  is_assembly : bool;
  emit_fde : bool;
  broken_fde : bool;  (** Fig. 6b hand-broken FDE *)
  noreturn : bool;
  conditional_noreturn : bool;  (** glibc [error]-style *)
  entry_jump : bool;  (** rotated loop: first instruction is a jmp *)
  entry_nops : int;  (** hot-patch padding inside the entry *)
  align : int;
  endbr : bool;
}

val make_func :
  name:string ->
  ?params:int ->
  ?frame:frame_style ->
  ?saves:Fetch_x86.Reg.t list ->
  ?is_assembly:bool ->
  ?emit_fde:bool ->
  ?broken_fde:bool ->
  ?noreturn:bool ->
  ?conditional_noreturn:bool ->
  ?entry_jump:bool ->
  ?entry_nops:int ->
  ?align:int ->
  ?endbr:bool ->
  stmt list ->
  func

type program = {
  funcs : func list;  (** emission order = layout order of hot parts *)
  n_pointer_slots : int;  (** data slots holding function pointers *)
  pointer_inits : (int * string) list;  (** slot -> pointee *)
  strip_symbols : bool;
  object_size : int;  (** functions per synthetic object file (one CIE) *)
}

(** Does the body contain a cold part? *)
val stmts_have_cold : stmt list -> bool

val has_cold_part : func -> bool

(** Does the statement list contain a call of any form (one that returns
    control, so a register live across it must be callee-saved)? *)
val stmts_have_call : stmt list -> bool

(** Does the body contain a counter loop whose body makes calls?  Such a
    counter is live across the calls, so the code generator keeps it in a
    callee-saved register — the function needs at least one save. *)
val stmts_have_call_loop : stmt list -> bool

(** All direct callees (including tail-call targets) of a body. *)
val callees : stmt list -> string list
