(** Intermediate representation consumed by the synthetic compiler.

    A program is a list of functions; each function's body is a small
    structured statement language that the code generator lowers to x86-64.
    The representation is deliberately shaped around the binary-level
    constructs the paper's analyses care about (tail calls, jump tables,
    non-contiguous hot/cold splits, assembly functions, noreturn calls),
    not around source-level expressiveness. *)

type stmt =
  | Compute of int  (** [n] ALU instructions over scratch registers *)
  | Call of string  (** direct call *)
  | Call_pointer of int  (** indirect call through data-slot [i] *)
  | Call_reg_pointer of string
      (** materialize the named function's address in a register (a code
          constant, visible to xref detection) and call through it *)
  | Store of int  (** write a scratch value to data slot [i] *)
  | If of stmt list * stmt list
  | Loop of int * stmt list  (** bounded counter loop *)
  | Switch of int * stmt list array  (** jump table over [n]-case switch *)
  | Call_noreturn of string
      (** call to a function that never returns: nothing is emitted after
          the call instruction (terminal statement) *)
  | Call_error of bool
      (** call to the [error]-like conditionally-noreturn function; [true]
          passes a zero first argument (the call returns), [false] passes a
          nonzero one (terminal statement, like glibc's [error(1, ...)]) *)
  | Tail_call of string  (** epilogue + jmp: a true tail call *)
  | Try of stmt list * stmt list
      (** protected region and its landing-pad cleanup: the region gets an
          LSDA call-site entry; the landing pad is emitted out of normal
          control flow, reachable only through the unwinder *)
  | Cold_jump of stmt list
      (** conditional jump to the function's cold (out-of-line) part; the
          cold part runs [stmts] and returns.  At most one per function. *)
  | Return

type frame_style =
  | Frameless  (** leaf-style: no stack adjustment at all *)
  | Rsp_frame of int  (** sub rsp, n; CFA stays rsp-based (complete CFI) *)
  | Rbp_frame of int
      (** push rbp; mov rbp,rsp; CFA re-based on rbp: CFI heights are
          incomplete in the §V-B sense *)

type func = {
  name : string;
  params : int;  (** how many System-V argument registers are live on entry *)
  frame : frame_style;
  saves : Fetch_x86.Reg.t list;  (** callee-saved registers pushed in prologue *)
  body : stmt list;
  is_assembly : bool;  (** hand-written assembly: exempt from ABI mandates *)
  emit_fde : bool;
  broken_fde : bool;
      (** Fig. 6b: the FDE's pc_begin points a few bytes before the real
          entry, into callconv-violating code, and uses expression CFI *)
  noreturn : bool;  (** never returns (ends in exit/abort path) *)
  conditional_noreturn : bool;
      (** like glibc's [error]: returns iff the first argument is zero *)
  entry_jump : bool;  (** first instruction jumps into the body (rotated
                          loop); defeats Ghidra's thunk heuristic *)
  entry_nops : int;  (** hot-patch NOP padding *inside* the function entry;
                         defeats angr's alignment heuristic *)
  align : int;  (** alignment of the entry, usually 16 *)
  endbr : bool;
}

let make_func ~name ?(params = 2) ?(frame = Frameless) ?(saves = [])
    ?(is_assembly = false) ?(emit_fde = true) ?(broken_fde = false)
    ?(noreturn = false) ?(conditional_noreturn = false) ?(entry_jump = false)
    ?(entry_nops = 0) ?(align = 16) ?(endbr = false) body =
  {
    name;
    params;
    frame;
    saves;
    body;
    is_assembly;
    emit_fde;
    broken_fde;
    noreturn;
    conditional_noreturn;
    entry_jump;
    entry_nops;
    align;
    endbr;
  }

type program = {
  funcs : func list;  (** emission order = layout order of hot parts *)
  n_pointer_slots : int;  (** data slots holding function pointers *)
  pointer_inits : (int * string) list;  (** slot -> function it points to *)
  strip_symbols : bool;
  object_size : int;  (** functions per synthetic object file (one CIE each) *)
}

(** Does the function's body contain a cold part? *)
let rec stmts_have_cold stmts =
  List.exists
    (function
      | Cold_jump _ -> true
      | If (a, b) -> stmts_have_cold a || stmts_have_cold b
      | Loop (_, s) -> stmts_have_cold s
      | Try (a, b) -> stmts_have_cold a || stmts_have_cold b
      | Switch (_, cases) -> Array.exists stmts_have_cold cases
      | Compute _ | Call _ | Call_pointer _ | Call_reg_pointer _ | Store _
      | Call_noreturn _ | Call_error _ | Tail_call _ | Return ->
          false)
    stmts

let has_cold_part f = stmts_have_cold f.body

(** Does the statement list contain a call of any form (one that returns
    control, so a register live across it must be callee-saved)? *)
let rec stmts_have_call stmts =
  List.exists
    (function
      | Call _ | Call_pointer _ | Call_reg_pointer _ | Call_noreturn _
      | Call_error _ ->
          true
      | If (a, b) -> stmts_have_call a || stmts_have_call b
      | Loop (_, s) -> stmts_have_call s
      | Try (a, b) -> stmts_have_call a || stmts_have_call b
      | Switch (_, cases) -> Array.exists stmts_have_call cases
      | Cold_jump s -> stmts_have_call s
      | Compute _ | Store _ | Tail_call _ | Return -> false)
    stmts

(** Does the body contain a counter loop whose body makes calls?  Such a
    counter is live across the calls, so the code generator keeps it in a
    callee-saved register — the function needs at least one save. *)
let rec stmts_have_call_loop stmts =
  List.exists
    (function
      | Loop (_, s) -> stmts_have_call s || stmts_have_call_loop s
      | If (a, b) -> stmts_have_call_loop a || stmts_have_call_loop b
      | Try (a, b) -> stmts_have_call_loop a || stmts_have_call_loop b
      | Switch (_, cases) -> Array.exists stmts_have_call_loop cases
      | Cold_jump s -> stmts_have_call_loop s
      | Compute _ | Call _ | Call_pointer _ | Call_reg_pointer _ | Store _
      | Call_noreturn _ | Call_error _ | Tail_call _ | Return ->
          false)
    stmts

(** All direct callees (including tail-call targets) of a body. *)
let rec callees stmts =
  List.concat_map
    (function
      | Call c -> [ c ]
      | Call_noreturn c -> [ c ]
      | Tail_call c -> [ c ]
      | Call_reg_pointer c -> [ c ]
      | If (a, b) -> callees a @ callees b
      | Loop (_, s) -> callees s
      | Try (a, b) -> callees a @ callees b
      | Switch (_, cases) -> List.concat_map callees (Array.to_list cases)
      | Cold_jump s -> callees s
      | Compute _ | Call_pointer _ | Call_error _ | Store _ | Return -> [])
    stmts
