(** Lowering from {!Ir} to x86-64 assembly items plus CFI events.

    The generator mirrors how real compilers shape code: prologues push
    callee-saved registers and adjust rsp (with matching DW_CFA records),
    cold parts are emitted out of line in a separate region with their own
    FDE, tail calls restore the frame before the jump, switch statements
    become bounds-checked jump-table dispatches, and calls to noreturn
    functions are not followed by any code.

    CFI bookkeeping: every stack-affecting instruction is followed by a
    fresh label; the event list pairs each label with the DW_CFA
    instructions that take effect there.  {!Link} converts label addresses
    into DW_CFA_advance_loc deltas once the code is laid out. *)

open Fetch_x86
open Ir
module I = Insn

type cfi_event = { at : string; cfi : Fetch_dwarf.Cfi.instr list }

type fn_out = {
  fn : Ir.func;
  start_label : string;
  end_label : string;
  fde_label : string;  (** = start_label except for broken FDEs *)
  events : cfi_event list;  (** hot-part CFI, in emission order *)
  cold : (string * string) option;  (** cold part start/end labels *)
  cold_initial : Fetch_dwarf.Cfi.instr list;  (** CFI state at cold entry *)
  cold_events : cfi_event list;
  try_sites : (string * string * string) list;
      (** (region start, region end, landing pad) labels for the LSDA *)
}

type table_kind = Absolute | Pic

type table_fixup = {
  tf_offset : int;  (** byte offset inside .rodata *)
  tf_kind : table_kind;
  tf_cases : string list;  (** case labels, in slot order *)
}

type t = {
  mutable hot : Asm.item list;  (** reversed *)
  mutable cold_items : Asm.item list;  (** reversed; emitted after hot code *)
  mutable outs : fn_out list;  (** reversed *)
  mutable counter : int;
  rodata : Fetch_util.Byte_buf.t;
  mutable fixups : table_fixup list;
  mutable jump_tables : (int * string list) list;  (** table addr, cases *)
  mutable pools : (string * string) list;
      (** inter-function junk/table pools: (start, end) labels, reversed *)
  rodata_base : int;
  data_base : int;
  profile : Profile.t;
  rng : Fetch_util.Prng.t;
}

let create ~rodata_base ~data_base ~profile ~rng =
  {
    hot = [];
    cold_items = [];
    outs = [];
    counter = 0;
    rodata = Fetch_util.Byte_buf.create ~capacity:1024 ();
    fixups = [];
    jump_tables = [];
    pools = [];
    rodata_base;
    data_base;
    profile;
    rng;
  }

(* Per-function lowering state. *)
type fnctx = {
  f : Ir.func;
  mutable items : Asm.item list;  (** reversed; hot or cold stream *)
  mutable in_cold : bool;
  mutable ev : cfi_event list;  (** reversed; current stream's events *)
  mutable cold_ev : cfi_event list;
  mutable height : int;  (** bytes below the return address minus 8 *)
  mutable init : Reg.t list;  (** registers written so far (or arguments) *)
  mutable epilogue_label : string option;
  mutable needs_restore_state : bool;
      (** an inline (tail-call) epilogue was emitted under remember_state;
          the shared epilogue block must begin with restore_state *)
  mutable cold_part : (string * string * Fetch_dwarf.Cfi.instr list) option;
  mutable pending_lps : (string * string * string * Ir.stmt list * Fetch_x86.Reg.t list) list;
      (** deferred landing pads: (try start, try end, lp label, cleanup
          stmts, init snapshot); emitted after the function's terminal *)
  mutable try_sites : (string * string * string) list;
}

let fresh t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf ".L%s%d" prefix t.counter

let push_item (c : fnctx) it = c.items <- it :: c.items

let ins c i = push_item c (Asm.I i)

(* Pool bytes are bracketed by labels so {!Link} can thread their extents
   into the ground truth (scoring must know the junk is not a function). *)
let emit_pool t (c : fnctx) bytes =
  let s = fresh t "pool" and e = fresh t "poolend" in
  push_item c (Asm.Label s);
  push_item c (Asm.Raw bytes);
  push_item c (Asm.Label e);
  t.pools <- (s, e) :: t.pools

let scratch_pool = [| Reg.Rax; Rcx; Rdx; Rsi; Rdi; R8; R9; R10; R11 |]

let caller_saved = [ Reg.Rax; Rcx; Rdx; Rsi; Rdi; R8; R9; R10; R11 ]

let mark_init c r = if not (List.mem r c.init) then c.init <- r :: c.init

let clobber_caller_saved c =
  c.init <- List.filter (fun r -> not (List.mem r caller_saved)) c.init;
  mark_init c Reg.Rax (* return value *)

let pick_init t (c : fnctx) =
  let candidates = List.filter (fun r -> not (Reg.equal r Reg.Rsp)) c.init in
  match candidates with
  | [] ->
      (* materialize a value first *)
      let r = Fetch_util.Prng.choice t.rng scratch_pool in
      ins c (I.Mov (I.W32, I.Reg r, I.Imm (Fetch_util.Prng.int t.rng 1000)));
      mark_init c r;
      r
  | _ -> Fetch_util.Prng.choice_list t.rng candidates

let pick_dst t (_c : fnctx) = Fetch_util.Prng.choice t.rng scratch_pool

(* Record a CFI event bound to a fresh label placed at the current point. *)
let cfi_event t (c : fnctx) instrs =
  let l = fresh t "cfi" in
  push_item c (Asm.Label l);
  let e = { at = l; cfi = instrs } in
  if c.in_cold then c.cold_ev <- e :: c.cold_ev else c.ev <- e :: c.ev

(* CFA offset = height + 8 (the return address slot). *)
let cfa_offset (c : fnctx) = c.height + 8

let dwarf r = Reg.dwarf_number r

(* One random ALU instruction (occasionally a short idiom) over the
   scratch pool. *)
let compute_insn t (c : fnctx) =
  let open Fetch_util in
  match Prng.int t.rng 12 with
  | 0 ->
      let d = pick_dst t c in
      ins c (I.Mov (I.W32, I.Reg d, I.Imm (Prng.int t.rng 4096)));
      mark_init c d
  | 1 ->
      let s = pick_init t c in
      let d = pick_dst t c in
      ins c (I.Mov (I.W64, I.Reg d, I.Reg s));
      mark_init c d
  | 2 ->
      let d = pick_dst t c in
      ins c (I.Arith (I.Xor, I.W32, I.Reg d, I.Reg d));
      mark_init c d
  | 3 ->
      let s = pick_init t c in
      let d = pick_init t c in
      ins c
        (I.Arith
           ( Prng.choice_list t.rng [ I.Add; I.Sub; I.And; I.Or ],
             I.W64, I.Reg d, I.Reg s ))
  | 4 ->
      let d = pick_init t c in
      ins c
        (I.Arith
           ( Prng.choice_list t.rng [ I.Add; I.Sub ],
             I.W64, I.Reg d, I.Imm (Prng.int t.rng 256) ))
  | 5 ->
      let s = pick_init t c in
      let d = pick_dst t c in
      ins c (I.Lea (d, I.mem ~base:s ~disp:(Prng.int t.rng 128) ()));
      mark_init c d
  | 6 ->
      let d = pick_init t c in
      ins c (I.Shift (Prng.choice_list t.rng [ `Shl; `Shr; `Sar ], d, 1 + Prng.int t.rng 7))
  | 7 ->
      (* conditional move after a compare, as -O2 branches often lower *)
      let a = pick_init t c in
      let s = pick_init t c in
      let d = pick_init t c in
      ins c (I.Arith (I.Cmp, I.W64, I.Reg a, I.Imm (Prng.int t.rng 64)));
      ins c (I.Cmov (Prng.choice t.rng [| I.E; I.Ne; I.L; I.G |], d, I.Reg s))
  | 8 ->
      (* flag materialization: xor d,d ; setcc dl *)
      let d = pick_dst t c in
      ins c (I.Arith (I.Xor, I.W32, I.Reg d, I.Reg d));
      mark_init c d;
      let a = pick_init t c in
      ins c (I.Test (I.W64, a, a));
      ins c (I.Setcc (Prng.choice t.rng [| I.E; I.Ne; I.S; I.Ns |], d))
  | 9 ->
      let d = pick_init t c in
      ins c (I.Not (I.W64, d))
  | 10 ->
      (* division idiom: mov rax, s ; cqo ; idiv r *)
      let s = pick_init t c in
      ins c (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg s));
      mark_init c Reg.Rax;
      ins c I.Cqo;
      mark_init c Reg.Rdx;
      let r =
        match
          List.find_opt
            (fun r ->
              (not (Reg.equal r Reg.Rax)) && (not (Reg.equal r Reg.Rdx))
              && not (Reg.equal r Reg.Rsp))
            c.init
        with
        | Some r -> r
        | None ->
            let r = Reg.Rcx in
            ins c (I.Mov (I.W32, I.Reg r, I.Imm (1 + Prng.int t.rng 100)));
            mark_init c r;
            r
      in
      ins c (I.Idiv (I.W64, r))
  | _ ->
      let s = pick_init t c in
      let d = pick_init t c in
      ins c (I.Imul (d, I.Reg s))

let arg_setup t (c : fnctx) =
  let open Fetch_util in
  let n = Prng.int t.rng 3 in
  List.iteri
    (fun i r ->
      if i < n then begin
        (if Prng.bool t.rng then
           ins c (I.Mov (I.W32, I.Reg r, I.Imm (Prng.int t.rng 1024)))
         else
           let s = pick_init t c in
           ins c (I.Mov (I.W64, I.Reg r, I.Reg s)));
        mark_init c r
      end)
    [ Reg.Rdi; Rsi; Rdx ]

(* Flag-setting instruction for a conditional branch. *)
let set_flags t (c : fnctx) =
  let open Fetch_util in
  let a = pick_init t c in
  if Prng.bool t.rng then ins c (I.Test (I.W64, a, a))
  else if Prng.bool t.rng then
    ins c (I.Arith (I.Cmp, I.W64, I.Reg a, I.Imm (Prng.int t.rng 64)))
  else
    let b = pick_init t c in
    ins c (I.Arith (I.Cmp, I.W64, I.Reg a, I.Reg b))

let any_cond t =
  Fetch_util.Prng.choice t.rng
    [| I.E; I.Ne; I.L; I.Le; I.G; I.Ge; I.B; I.A; I.S; I.Ns |]

(* The epilogue mirror of the prologue; emits CFI restore events. *)
let emit_epilogue t (c : fnctx) =
  let f = c.f in
  (match f.frame with
  | Frameless -> ()
  | Rsp_frame n when n > 0 ->
      ins c (I.Arith (I.Add, I.W64, I.Reg Reg.Rsp, I.Imm n));
      c.height <- c.height - n;
      cfi_event t c [ Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c) ]
  | Rbp_frame n when n > 0 ->
      ins c (I.Arith (I.Add, I.W64, I.Reg Reg.Rsp, I.Imm n));
      c.height <- c.height - n
      (* CFA is rbp-based here; no def_cfa_offset *)
  | Rsp_frame _ | Rbp_frame _ -> ());
  let saves = List.rev f.saves in
  List.iter
    (fun r ->
      ins c (I.Pop r);
      c.height <- c.height - 8;
      match f.frame with
      | Rbp_frame _ -> ()
      | Frameless | Rsp_frame _ ->
          cfi_event t c
            [
              Fetch_dwarf.Cfi.Restore (dwarf r);
              Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c);
            ])
    saves;
  match f.frame with
  | Rbp_frame _ ->
      ins c (I.Pop Reg.Rbp);
      c.height <- c.height - 8;
      cfi_event t c [ Fetch_dwarf.Cfi.Def_cfa (Fetch_dwarf.Cfa_table.dw_rsp, 8) ]
  | Frameless | Rsp_frame _ -> ()

(* Allocate a jump table in .rodata and emit the dispatch sequence.
   Returns the case labels. *)
let emit_table_dispatch t (c : fnctx) ~idx ~ncases =
  let open Fetch_util in
  let kind = if t.profile.pic_tables then Pic else Absolute in
  let entry_size = match kind with Absolute -> 8 | Pic -> 4 in
  Byte_buf.pad_to t.rodata ~align:8 ~byte:0;
  let off = Byte_buf.length t.rodata in
  Byte_buf.fill t.rodata ~count:(ncases * entry_size) ~byte:0;
  let table_addr = t.rodata_base + off in
  let case_labels = List.init ncases (fun _ -> fresh t "case") in
  t.fixups <- { tf_offset = off; tf_kind = kind; tf_cases = case_labels } :: t.fixups;
  t.jump_tables <- (table_addr, case_labels) :: t.jump_tables;
  let default_label = fresh t "swdef" in
  ins c (I.Arith (I.Cmp, I.W64, I.Reg idx, I.Imm (ncases - 1)));
  ins c (I.Jcc (I.A, I.To_label default_label));
  (match kind with
  | Absolute ->
      if Prng.bool t.rng then
        (* jmp qword [table + idx*8] *)
        ins c (I.Jmp_ind (I.Mem (I.mem ~index:(idx, 8) ~disp:table_addr ())))
      else begin
        (* mov rax, [table + idx*8]; jmp rax *)
        let r = Reg.Rax in
        ins c (I.Mov (I.W64, I.Reg r, I.Mem (I.mem ~index:(idx, 8) ~disp:table_addr ())));
        mark_init c r;
        ins c (I.Jmp_ind (I.Reg r))
      end
  | Pic ->
      (* lea rt, [rip+table]; movsxd rx, [rt + idx*4]; add rx, rt; jmp rx *)
      let rt = Reg.R11 and rx = Reg.R10 in
      ins c (I.Lea (rt, I.rip_sym (I.To_addr table_addr)));
      ins c (I.Movsxd (rx, I.mem ~base:rt ~index:(idx, 4) ()));
      ins c (I.Arith (I.Add, I.W64, I.Reg rx, I.Reg rt));
      mark_init c rt;
      mark_init c rx;
      ins c (I.Jmp_ind (I.Reg rx)));
  (case_labels, default_label)

let rec lower_stmts t (c : fnctx) stmts =
  (* returns true when control falls through the end *)
  match stmts with
  | [] -> true
  | s :: rest ->
      let falls = lower_stmt t c s in
      if falls then lower_stmts t c rest
      else begin
        (* unreachable trailing statements are dropped, like a compiler *)
        ignore rest;
        false
      end

and lower_stmt t (c : fnctx) = function
  | Compute n ->
      for _ = 1 to n do
        compute_insn t c
      done;
      true
  | Call callee ->
      arg_setup t c;
      ins c (I.Call (I.To_label callee));
      clobber_caller_saved c;
      true
  | Call_noreturn callee ->
      arg_setup t c;
      ins c (I.Call (I.To_label callee));
      false
  | Call_error returns ->
      if returns then
        ins c (I.Arith (I.Xor, I.W32, I.Reg Reg.Rdi, I.Reg Reg.Rdi))
      else ins c (I.Mov (I.W32, I.Reg Reg.Rdi, I.Imm 1));
      mark_init c Reg.Rdi;
      ins c (I.Call (I.To_label "error_like"));
      clobber_caller_saved c;
      returns
  | Call_pointer slot ->
      let slot_addr = t.data_base + (8 * slot) in
      let open Fetch_util in
      (match Prng.int t.rng 3 with
      | 0 -> ins c (I.Call_ind (I.Mem (I.rip_sym (I.To_addr slot_addr))))
      | 1 ->
          ins c (I.Mov (I.W64, I.Reg Reg.Rax, I.Mem (I.rip_sym (I.To_addr slot_addr))));
          ins c (I.Call_ind (I.Reg Reg.Rax))
      | _ ->
          ins c (I.Mov (I.W64, I.Reg Reg.Rax, I.Mem (I.mem ~disp:slot_addr ())));
          ins c (I.Call_ind (I.Reg Reg.Rax)));
      clobber_caller_saved c;
      true
  | Call_reg_pointer callee ->
      let r = Fetch_util.Prng.choice t.rng [| Reg.Rax; R10; R11 |] in
      ins c (I.Lea (r, I.rip_sym (I.To_label callee)));
      mark_init c r;
      ins c (I.Call_ind (I.Reg r));
      clobber_caller_saved c;
      true
  | Store slot ->
      let v = pick_init t c in
      let slot_addr = t.data_base + (8 * slot) in
      if Fetch_util.Prng.bool t.rng then
        ins c (I.Mov (I.W64, I.Mem (I.rip_sym (I.To_addr slot_addr)), I.Reg v))
      else ins c (I.Mov (I.W64, I.Mem (I.mem ~disp:slot_addr ()), I.Reg v));
      true
  | If (then_s, else_s) ->
      set_flags t c;
      let l_else = fresh t "else" in
      let l_end = fresh t "endif" in
      ins c (I.Jcc (any_cond t, I.To_label l_else));
      let init_before = c.init in
      let falls_then = lower_stmts t c then_s in
      let init_then = c.init in
      if falls_then && else_s <> [] then ins c (I.Jmp (I.To_label l_end));
      push_item c (Asm.Label l_else);
      c.init <- init_before;
      let falls_else = lower_stmts t c else_s in
      push_item c (Asm.Label l_end);
      (* registers surely initialized: intersection of both branches *)
      c.init <- List.filter (fun r -> List.mem r init_then) c.init;
      falls_then || falls_else
  | Loop (count, body) ->
      (* a counter live across calls goes in a callee-saved register,
         exactly as a register allocator would assign it; call-free
         bodies can burn a scratch register *)
      let counter =
        if Ir.stmts_have_call body then
          match c.f.saves with
          | [] -> pick_dst t c (* the generator guarantees a save exists *)
          | saves -> Fetch_util.Prng.choice_list t.rng saves
        else pick_dst t c
      in
      ins c (I.Mov (I.W32, I.Reg counter, I.Imm count));
      mark_init c counter;
      let l_top = fresh t "loop" in
      push_item c (Asm.Label l_top);
      let falls = lower_stmts t c body in
      if falls then begin
        mark_init c counter;
        ins c (I.Dec counter);
        ins c (I.Jcc (I.Ne, I.To_label l_top))
      end;
      (* a loop whose body never falls through executes at most once and
         never continues past it *)
      falls
  | Switch (ncases, cases) ->
      let idx = pick_init t c in
      (* the default path bypasses the dispatch sequence, so its register
         state is the pre-dispatch one; case paths additionally have the
         dispatch scratch registers *)
      let init_before = c.init in
      let case_labels, default_label = emit_table_dispatch t c ~idx ~ncases in
      let init_dispatch = c.init in
      let l_end = fresh t "swend" in
      List.iteri
        (fun i l ->
          push_item c (Asm.Label l);
          c.init <- init_dispatch;
          let falls = lower_stmts t c cases.(i) in
          if falls then ins c (I.Jmp (I.To_label l_end)))
        case_labels;
      push_item c (Asm.Label default_label);
      c.init <- init_before;
      push_item c (Asm.Label l_end);
      true
  | Tail_call callee ->
      (* GCC brackets inline epilogues with remember/restore_state so the
         CFI stays correct for code after the jump. *)
      let h0 = c.height in
      cfi_event t c [ Fetch_dwarf.Cfi.Remember_state ];
      emit_epilogue t c;
      ins c (I.Jmp (I.To_label callee));
      c.height <- h0;
      c.needs_restore_state <- true;
      false
  | Try (body, lp_stmts) ->
      let l_start = fresh t "try" in
      let l_end = fresh t "tryend" in
      let l_lp = fresh t "lpad" in
      push_item c (Asm.Label l_start);
      let init_snapshot = c.init in
      let falls = lower_stmts t c body in
      push_item c (Asm.Label l_end);
      c.pending_lps <-
        (l_start, l_end, l_lp, lp_stmts, init_snapshot) :: c.pending_lps;
      c.try_sites <- (l_start, l_end, l_lp) :: c.try_sites;
      falls
  | Cold_jump cold_stmts ->
      lower_cold t c cold_stmts;
      true
  | Return -> (
      (* jump to (or fall into) the shared epilogue *)
      match c.epilogue_label with
      | Some l ->
          ins c (I.Jmp (I.To_label l));
          false
      | None ->
          c.epilogue_label <- Some (fresh t "epi");
          ins c (I.Jmp (I.To_label (Option.get c.epilogue_label)));
          false)

and lower_cold t (c : fnctx) stmts =
  let l_cold = fresh t "cold" in
  let l_back = fresh t "back" in
  set_flags t c;
  ins c (I.Jcc (any_cond t, I.To_label l_cold));
  push_item c (Asm.Label l_back);
  (* Build the cold part in the cold stream. *)
  let saved_items = c.items in
  let saved_init = c.init in
  c.items <- [];
  c.in_cold <- true;
  push_item c (Asm.Label l_cold);
  (* Cold entry CFI: the frame state carried over from the hot part. *)
  let initial =
    match c.f.frame with
    | Rbp_frame _ ->
        Fetch_dwarf.Cfi.Def_cfa (Fetch_dwarf.Cfa_table.dw_rbp, 16)
        :: Fetch_dwarf.Cfi.Offset (dwarf Reg.Rbp, 2)
        :: List.mapi
             (fun i r -> Fetch_dwarf.Cfi.Offset (dwarf r, i + 3))
             c.f.saves
    | Frameless | Rsp_frame _ ->
        Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c)
        :: List.mapi
             (fun i r -> Fetch_dwarf.Cfi.Offset (dwarf r, i + 2))
             c.f.saves
  in
  (* Cold code starts by reading a live callee-saved value, as real
     out-of-line paths do; this is what makes the cold entry violate the
     calling convention when misread as a function start. *)
  (match c.f.saves with
  | r :: _ ->
      let d = Fetch_util.Prng.choice t.rng [| Reg.Rdi; Rsi; Rax |] in
      ins c (I.Mov (I.W64, I.Reg d, I.Reg r));
      mark_init c d
  | [] -> ());
  let falls = lower_stmts t c stmts in
  if falls then ins c (I.Jmp (I.To_label l_back));
  let l_cold_end = fresh t "coldend" in
  push_item c (Asm.Label l_cold_end);
  (* move stream to the function's cold accumulator *)
  let cold_items = c.items in
  c.items <- saved_items;
  c.in_cold <- false;
  c.init <- saved_init;
  t.cold_items <- cold_items @ t.cold_items;
  c.cold_part <- Some (l_cold, l_cold_end, initial)

(* Prologue: pushes + frame setup with CFI events. *)
let emit_prologue t (c : fnctx) =
  let f = c.f in
  if f.endbr then ins c I.Endbr64;
  if f.entry_nops > 0 then begin
    let rec pad n = if n > 0 then (ins c (I.Nop (min n 9)); pad (n - min n 9)) in
    pad f.entry_nops
  end;
  (match f.frame with
  | Rbp_frame n ->
      ins c (I.Push Reg.Rbp);
      c.height <- c.height + 8;
      cfi_event t c
        [ Fetch_dwarf.Cfi.Def_cfa_offset 16;
          Fetch_dwarf.Cfi.Offset (dwarf Reg.Rbp, 2) ];
      ins c (I.Mov (I.W64, I.Reg Reg.Rbp, I.Reg Reg.Rsp));
      mark_init c Reg.Rbp;
      cfi_event t c [ Fetch_dwarf.Cfi.Def_cfa_register (dwarf Reg.Rbp) ];
      List.iteri
        (fun i r ->
          ins c (I.Push r);
          c.height <- c.height + 8;
          cfi_event t c [ Fetch_dwarf.Cfi.Offset (dwarf r, i + 3) ])
        f.saves;
      if n > 0 then begin
        ins c (I.Arith (I.Sub, I.W64, I.Reg Reg.Rsp, I.Imm n));
        c.height <- c.height + n
      end
  | Rsp_frame n ->
      List.iteri
        (fun i r ->
          ins c (I.Push r);
          c.height <- c.height + 8;
          cfi_event t c
            [ Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c);
              Fetch_dwarf.Cfi.Offset (dwarf r, i + 2) ])
        f.saves;
      if n > 0 then begin
        ins c (I.Arith (I.Sub, I.W64, I.Reg Reg.Rsp, I.Imm n));
        c.height <- c.height + n;
        cfi_event t c [ Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c) ]
      end
  | Frameless ->
      List.iteri
        (fun i r ->
          ins c (I.Push r);
          c.height <- c.height + 8;
          cfi_event t c
            [ Fetch_dwarf.Cfi.Def_cfa_offset (cfa_offset c);
              Fetch_dwarf.Cfi.Offset (dwarf r, i + 2) ])
        f.saves);
  (* Give every pushed callee-saved register a value before any use. *)
  List.iter
    (fun r ->
      (if c.init <> [] && Fetch_util.Prng.bool t.rng then
         let s = pick_init t c in
         ins c (I.Mov (I.W64, I.Reg r, I.Reg s))
       else ins c (I.Mov (I.W32, I.Reg r, I.Imm (Fetch_util.Prng.int t.rng 512))));
      mark_init c r)
    f.saves

(* Noreturn tail: exit via syscall or trap; never a ret. *)
let emit_noreturn_tail t (c : fnctx) =
  if c.f.name = "abort_like" then ins c I.Ud2
  else begin
    ins c (I.Mov (I.W32, I.Reg Reg.Rax, I.Imm 60));
    ins c I.Syscall;
    ins c I.Ud2
  end;
  ignore t

(* Entry-jump (rotated loop) function: first instruction is a jmp into the
   body — the shape that defeats Ghidra's thunk heuristic. *)
let lower_entry_jump t (c : fnctx) =
  let l_body = fresh t "rotbody" in
  let l_cond = fresh t "rotcond" in
  ins c (I.Jmp (I.To_label l_cond));
  push_item c (Asm.Label l_body);
  for _ = 1 to 2 + Fetch_util.Prng.int t.rng 4 do
    compute_insn t c
  done;
  push_item c (Asm.Label l_cond);
  ins c (I.Dec Reg.Rdi);
  ins c (I.Jcc (I.Ne, I.To_label l_body));
  ins c I.Ret

(* Conditionally-noreturn function like glibc's [error]. *)
let lower_cond_noreturn t (c : fnctx) =
  let l_ret = fresh t "eret" in
  ins c (I.Test (I.W32, Reg.Rdi, Reg.Rdi));
  ins c (I.Jcc (I.E, I.To_label l_ret));
  ins c (I.Mov (I.W32, I.Reg Reg.Rax, I.Imm 60));
  ins c I.Syscall;
  ins c I.Ud2;
  push_item c (Asm.Label l_ret);
  for _ = 1 to 2 do
    compute_insn t c
  done;
  ins c I.Ret

(** Lower one function into the generator's streams. *)
let lower_func t (f : Ir.func) =
  let c =
    {
      f;
      items = [];
      in_cold = false;
      ev = [];
      cold_ev = [];
      height = 0;
      init =
        (let args = [ Reg.Rdi; Rsi; Rdx; Rcx; R8; R9 ] in
         List.filteri (fun i _ -> i < f.params) args);
      epilogue_label = None;
      needs_restore_state = false;
      cold_part = None;
      pending_lps = [];
      try_sites = [];
    }
  in
  if f.align > 1 then push_item c (Asm.Align f.align);
  (* Broken FDE (Fig. 6b): three bytes of callconv-violating code before
     the entry, covered by the FDE. *)
  let fde_label =
    if f.broken_fde then begin
      let l = fresh t "brokenfde" in
      push_item c (Asm.Label l);
      push_item c (Asm.Raw "\x48\x89\xd8");
      (* mov rax, rbx: reads an uninitialized non-argument register *)
      l
    end
    else f.name
  in
  push_item c (Asm.Label f.name);
  if f.conditional_noreturn then lower_cond_noreturn t c
  else if f.entry_jump then lower_entry_jump t c
  else begin
    emit_prologue t c;
    let falls =
      if f.noreturn then begin
        let falls =
          lower_stmts t c
            (List.filter (function Return -> false | _ -> true) f.body)
        in
        if falls then emit_noreturn_tail t c;
        false
      end
      else
        match List.rev f.body with
        | Return :: rev_prefix ->
            let falls = lower_stmts t c (List.rev rev_prefix) in
            if falls then begin
              (* fall into the shared epilogue *)
              (match c.epilogue_label with
              | Some l -> push_item c (Asm.Label l)
              | None -> ());
              emit_epilogue t c;
              ins c I.Ret;
              false
            end
            else begin
              (match c.epilogue_label with
              | Some l ->
                  push_item c (Asm.Label l);
                  emit_epilogue t c;
                  ins c I.Ret
              | None -> ());
              false
            end
        | _ ->
            let falls = lower_stmts t c f.body in
            if falls then begin
              emit_epilogue t c;
              ins c I.Ret
            end
            else begin
              match c.epilogue_label with
              | Some l ->
                  push_item c (Asm.Label l);
                  if c.needs_restore_state then
                    cfi_event t c [ Fetch_dwarf.Cfi.Restore_state ];
                  emit_epilogue t c;
                  ins c I.Ret
              | None -> ()
            end;
            false
    in
    ignore falls
  end;
  (* Landing pads: inside the function's range but reachable only through
     the unwinder — real disassemblers see them as in-function gaps. *)
  List.iter
    (fun (_, l_end, l_lp, lp_stmts, init_snapshot) ->
      push_item c (Asm.Label l_lp);
      c.init <- init_snapshot;
      let falls = lower_stmts t c lp_stmts in
      if falls then ins c (I.Jmp (I.To_label l_end)))
    (List.rev c.pending_lps);
  let end_label = f.name ^ ".__end" in
  push_item c (Asm.Label end_label);
  (* Literal-pool style junk between functions: never referenced, never
     executed (every function ends in ret/jmp/trap), but present in the
     byte stream for linear sweeps to trip over. *)
  if Fetch_util.Prng.chance t.rng t.profile.p_text_junk then begin
    let n = max 1 t.profile.junk_scale * (8 + Fetch_util.Prng.int t.rng 32) in
    let blob = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set blob i (Char.chr (Fetch_util.Prng.int t.rng 256))
    done;
    (* some blobs contain prologue-looking fragments, as real literal
       pools occasionally do; CET-style profiles plant endbr64-led
       fragments instead (endbr64; push rbp) *)
    let frag =
      if t.profile.junk_endbr then "\xf3\x0f\x1e\xfa\x55" else "\x55\x48\x89\xe5"
    in
    let flen = String.length frag in
    for _ = 1 to max 1 (n / 24) do
      if Fetch_util.Prng.chance t.rng t.profile.p_junk_prologue && n >= flen + 4
      then
        Bytes.blit_string frag 0 blob
          (1 + Fetch_util.Prng.int t.rng (n - flen - 1))
          flen
    done;
    emit_pool t c (Bytes.to_string blob)
  end;
  (* jump-table-style pools: rows of plausible 4-byte PIC offsets laid
     out in .text, as hand-written assembly sometimes does *)
  if
    t.profile.p_table_pool > 0.0
    && Fetch_util.Prng.chance t.rng t.profile.p_table_pool
  then begin
    let entries = 4 + Fetch_util.Prng.int t.rng 12 in
    let b = Fetch_util.Byte_buf.create () in
    for _ = 1 to entries do
      Fetch_util.Byte_buf.i32 b (-(16 * (1 + Fetch_util.Prng.int t.rng 64)))
    done;
    emit_pool t c (Fetch_util.Byte_buf.contents b)
  end;
  t.hot <- c.items @ t.hot;
  let cold, cold_initial =
    match c.cold_part with
    | Some (s, e, init) -> (Some (s, e), init)
    | None -> (None, [])
  in
  t.outs <-
    {
      fn = f;
      start_label = f.name;
      end_label;
      fde_label;
      events = List.rev c.ev;
      cold;
      cold_initial;
      cold_events = List.rev c.cold_ev;
      try_sites = List.rev c.try_sites;
    }
    :: t.outs

(** Lower a whole program; returns the generator with all streams filled. *)
let lower_program ~rodata_base ~data_base ~profile ~rng (p : Ir.program) =
  let t = create ~rodata_base ~data_base ~profile ~rng in
  List.iter (lower_func t) p.funcs;
  t

let items t =
  List.rev_append t.hot
    (Asm.Label "__text_cold_start" :: List.rev t.cold_items
    @ [ Asm.Label "__text_end" ])
