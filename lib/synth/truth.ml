(** Ground-truth manifest recorded by the synthetic compiler at generation
    time — the analogue of the paper's compiler-interception framework
    ([27]) used to judge every detection strategy. *)

type fn_truth = {
  name : string;
  start : int;  (** the one true function start *)
  size : int;  (** size of the primary (hot) part *)
  parts : (int * int) list;  (** (addr, size) of every part, hot first *)
  is_assembly : bool;
  has_fde : bool;
  noreturn : bool;
  tail_only : bool;  (** reachable only via tail calls *)
  unreachable : bool;  (** never referenced anywhere *)
  leaf : bool;  (** no stack frame at all (no pushes, no rsp adjustment) *)
}

type t = {
  fns : fn_truth list;
  jump_tables : (int * int list) list;  (** table address, case targets *)
  pools : (int * int) list;
      (** (addr, size) of junk/table pools between functions: bytes inside
          [.text] that belong to no function and must not be detected *)
  text_lo : int;
  text_hi : int;
}

(** True function starts — the set every detector is scored against. *)
let starts t = List.map (fun f -> f.start) t.fns

(** Hash set of true starts for O(1) membership tests. *)
let start_set t =
  let h = Hashtbl.create (max 16 (List.length t.fns)) in
  List.iter (fun f -> Hashtbl.replace h f.start ()) t.fns;
  h

(** Addresses that symbols (and FDEs) would additionally claim as starts:
    the secondary parts of non-contiguous functions. *)
let part_starts t =
  List.concat_map
    (fun f -> List.filteri (fun i _ -> i > 0) f.parts |> List.map fst)
    t.fns

let find_by_addr t addr = List.find_opt (fun f -> f.start = addr) t.fns

let count_if p t = List.length (List.filter p t.fns)
