(** Compiler/optimization profiles: the knobs that shape generated code.

    Each profile sets the per-function probabilities of the constructs that
    matter to function detection.  Values are calibrated so that corpus-wide
    statistics track the paper's observations: hot/cold splitting grows with
    optimization (Ofast > O3 > O2 > Os), tail calls appear at all levels but
    more aggressively at O3/Ofast, Os avoids both size-increasing
    transformations, and frame pointers are mostly omitted. *)

type compiler = Synthgcc | Synthllvm

type opt = O2 | O3 | Os | Ofast

let compiler_name = function Synthgcc -> "gcc" | Synthllvm -> "llvm"

let opt_name = function O2 -> "O2" | O3 -> "O3" | Os -> "Os" | Ofast -> "Of"

let all_opts = [ O2; O3; Os; Ofast ]

type t = {
  compiler : compiler;
  opt : opt;
  p_cold_split : float;  (** probability a framed function is split *)
  p_tail_call : float;  (** probability a function ends in a tail call *)
  p_switch : float;  (** probability a function contains a jump table *)
  p_rbp_frame : float;  (** frame-pointer functions (incomplete CFI) *)
  p_frameless : float;
  p_noreturn_call : float;  (** probability a call site targets a noreturn fn *)
  p_entry_jump : float;  (** rotated-loop entries (start with jmp) *)
  p_entry_nops : float;  (** hot-patchable entries (leading nops) *)
  p_indirect_call : float;
  p_reg_pointer_call : float;  (** lea/mov a code address then call reg *)
  pic_tables : bool;  (** PIC-style (offset) jump tables vs absolute *)
  body_scale : float;  (** multiplier on body statement counts *)
  align : int;
  endbr : bool;
  p_orphan : float;
      (** functions never referenced by direct calls (exported-API style):
          trivial for FDE-based detection, invisible to call-graph-only
          tools unless their prologues match *)
  p_text_junk : float;
      (** probability of a junk blob (literal-pool style non-code bytes)
          after a function — the raw material for linear-scan and
          pattern-matching false positives *)
  junk_scale : int;
      (** size multiplier on junk blobs (adversarial padding-heavy
          layouts scale the pools up without changing their density) *)
  p_junk_prologue : float;
      (** probability each junk-blob slot embeds a prologue-looking
          fragment (push rbp; mov rbp,rsp — or endbr64 when
          [junk_endbr]) *)
  junk_endbr : bool;
      (** junk fragments lead with endbr64, mimicking CET binaries where
          endbr64 is the pattern-matcher's strongest start signal *)
  p_table_pool : float;
      (** probability of a jump-table-style pool (rows of 4-byte
          offsets) after a function — address-like data inside [.text] *)
}

let make compiler opt =
  let base =
    {
      compiler;
      opt;
      p_cold_split = 0.0;
      p_tail_call = 0.0;
      p_switch = 0.06;
      p_rbp_frame = 0.08;
      p_frameless = 0.25;
      p_noreturn_call = 0.04;
      p_entry_jump = 0.03;
      p_entry_nops = 0.01;
      p_indirect_call = 0.05;
      p_reg_pointer_call = 0.04;
      pic_tables = (compiler = Synthllvm);
      body_scale = 1.0;
      align = 16;
      endbr = (compiler = Synthgcc);
      p_orphan = 0.12;
      p_text_junk = 0.05;
      junk_scale = 1;
      p_junk_prologue = 0.3;
      junk_endbr = false;
      p_table_pool = 0.0;
    }
  in
  match opt with
  | O2 ->
      { base with p_cold_split = 0.015; p_tail_call = 0.06; body_scale = 1.0 }
  | O3 ->
      {
        base with
        p_cold_split = 0.022;
        p_tail_call = 0.08;
        p_switch = 0.07;
        body_scale = 1.25;
      }
  | Os ->
      {
        base with
        p_cold_split = 0.002;
        p_tail_call = 0.10;
        (* -Os prefers tail calls (smaller code) but never splits *)
        p_rbp_frame = 0.05;
        body_scale = 0.7;
        align = 1;
        (* -Os drops function alignment *)
      }
  | Ofast ->
      {
        base with
        p_cold_split = 0.028;
        p_tail_call = 0.09;
        p_switch = 0.07;
        body_scale = 1.3;
      }

let name p = Printf.sprintf "%s-%s" (compiler_name p.compiler) (opt_name p.opt)

(* Every probability knob with its name, for the invariant check and for
   clamping derived (adversarial) profiles back into range. *)
let probability_knobs p =
  [
    ("p_cold_split", p.p_cold_split);
    ("p_tail_call", p.p_tail_call);
    ("p_switch", p.p_switch);
    ("p_rbp_frame", p.p_rbp_frame);
    ("p_frameless", p.p_frameless);
    ("p_noreturn_call", p.p_noreturn_call);
    ("p_entry_jump", p.p_entry_jump);
    ("p_entry_nops", p.p_entry_nops);
    ("p_indirect_call", p.p_indirect_call);
    ("p_reg_pointer_call", p.p_reg_pointer_call);
    ("p_orphan", p.p_orphan);
    ("p_text_junk", p.p_text_junk);
    ("p_junk_prologue", p.p_junk_prologue);
    ("p_table_pool", p.p_table_pool);
  ]

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check p =
  let problems =
    List.filter_map
      (fun (n, v) ->
        if Float.is_nan v || v < 0.0 || v > 1.0 then
          Some (Printf.sprintf "%s = %g outside [0,1]" n v)
        else None)
      (probability_knobs p)
  in
  let problems =
    if is_power_of_two p.align then problems
    else Printf.sprintf "align = %d not a power of two" p.align :: problems
  in
  let problems =
    if Float.is_nan p.body_scale || p.body_scale <= 0.0 then
      Printf.sprintf "body_scale = %g not positive" p.body_scale :: problems
    else problems
  in
  let problems =
    if p.junk_scale >= 1 then problems
    else Printf.sprintf "junk_scale = %d not positive" p.junk_scale :: problems
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (name p ^ ": " ^ String.concat "; " ps)

let clamp p =
  let c v = if Float.is_nan v then 0.0 else Float.max 0.0 (Float.min 1.0 v) in
  let align =
    if is_power_of_two p.align then p.align
    else begin
      (* round down to the nearest power of two, floor 1 *)
      let a = ref 1 in
      while !a * 2 <= max 1 p.align do
        a := !a * 2
      done;
      !a
    end
  in
  {
    p with
    p_cold_split = c p.p_cold_split;
    p_tail_call = c p.p_tail_call;
    p_switch = c p.p_switch;
    p_rbp_frame = c p.p_rbp_frame;
    p_frameless = c p.p_frameless;
    p_noreturn_call = c p.p_noreturn_call;
    p_entry_jump = c p.p_entry_jump;
    p_entry_nops = c p.p_entry_nops;
    p_indirect_call = c p.p_indirect_call;
    p_reg_pointer_call = c p.p_reg_pointer_call;
    p_orphan = c p.p_orphan;
    p_text_junk = c p.p_text_junk;
    p_junk_prologue = c p.p_junk_prologue;
    p_table_pool = c p.p_table_pool;
    junk_scale = max 1 p.junk_scale;
    align;
    body_scale =
      (if Float.is_nan p.body_scale || p.body_scale <= 0.0 then 1.0
       else p.body_scale);
  }
