(** Random program generator.

    Produces an {!Ir.program} whose construct mix follows a {!Profile.t}
    and a binary {!spec}.  The spec pins the counts that the paper's
    experiments measure directly: how many assembly functions lack FDEs and
    how each of them is (or is not) referenced, whether the binary keeps
    symbols, and whether it contains hand-broken CFI (Fig. 6b). *)

open Ir

type spec = {
  n_funcs : int;  (** regular compiler-generated functions *)
  n_asm_called : int;  (** asm fns without FDE, reachable by direct call *)
  n_asm_tailonly : int;  (** without FDE, reachable only via one tail call *)
  n_asm_pointer : int;  (** without FDE, referenced from a data pointer *)
  n_asm_code_ptr : int;  (** without FDE, address taken as a code constant *)
  n_asm_unreachable : int;  (** without FDE, never referenced; each drags
                                one equally-unreachable callee along *)
  n_broken_fde : int;  (** Fig. 6b style hand-broken FDEs *)
  cxx : bool;
  strip : bool;
}

let default_spec =
  {
    n_funcs = 60;
    n_asm_called = 0;
    n_asm_tailonly = 0;
    n_asm_pointer = 0;
    n_asm_code_ptr = 0;
    n_asm_unreachable = 0;
    n_broken_fde = 0;
    cxx = false;
    strip = true;
  }

open Fetch_util

(* Scratch statement generator: a small structured body.  [depth] bounds
   nesting; [callees] are candidate direct-call targets; [allow_return]
   permits early returns (inside branches, like real error paths). *)
let rec gen_stmts rng (p : Profile.t) ~depth ?(allow_return = false) ~callees
    ~n_slots acc n =
  if n <= 0 then List.rev acc
  else
    let pick_call () =
      match callees with
      | [] -> Compute (1 + Prng.int rng 4)
      | cs -> Call (Prng.choice_list rng cs)
    in
    let stmt =
      Prng.weighted rng
        [
          (3.0, `Compute);
          (2.0, `Call);
          ((if n_slots > 0 then 0.6 else 0.0), `Call_pointer);
          ((if n_slots > 0 then 0.5 else 0.0), `Store);
          ((if depth > 0 then 1.0 else 0.0), `If);
          ((if depth > 0 then 0.7 else 0.0), `Loop);
          ((if depth > 0 then p.p_switch *. 10.0 else 0.0), `Switch);
          ((if allow_return then 0.8 else 0.0), `Ret);
        ]
    in
    let s =
      match stmt with
      | `Compute -> Compute (1 + Prng.int rng (int_of_float (6.0 *. p.body_scale) + 1))
      | `Call -> pick_call ()
      | `Call_pointer -> Call_pointer (Prng.int rng n_slots)
      | `Store -> Store (Prng.int rng n_slots)
      | `Ret -> Return
      | `If ->
          let a =
            gen_stmts rng p ~depth:(depth - 1) ~allow_return:true ~callees
              ~n_slots [] (1 + Prng.int rng 2)
          in
          let b =
            if Prng.chance rng 0.6 then
              gen_stmts rng p ~depth:(depth - 1) ~allow_return:true ~callees
                ~n_slots [] (1 + Prng.int rng 2)
            else []
          in
          If (a, b)
      | `Loop ->
          Loop
            ( 2 + Prng.int rng 6,
              gen_stmts rng p ~depth:(depth - 1) ~callees ~n_slots []
                (1 + Prng.int rng 2) )
      | `Switch ->
          let cases = 3 + Prng.int rng 5 in
          Switch
            ( cases,
              Array.init cases (fun _ ->
                  gen_stmts rng p ~depth:0 ~allow_return:true ~callees ~n_slots
                    [] (1 + Prng.int rng 2)) )
    in
    gen_stmts rng p ~depth ~allow_return ~callees ~n_slots (s :: acc) (n - 1)

let pick_saves rng =
  let pool = [| Fetch_x86.Reg.Rbx; R12; R13; R14; R15 |] in
  let n = Prng.int rng 3 in
  let chosen = Array.sub pool 0 (min n (Array.length pool)) in
  Array.to_list chosen

let gen_frame rng (p : Profile.t) =
  if Prng.chance rng p.p_frameless then (Frameless, [])
  else
    let saves = pick_saves rng in
    let size = 8 * (1 + Prng.int rng 6) in
    if Prng.chance rng p.p_rbp_frame then (Rbp_frame size, saves)
    else (Rsp_frame size, saves)

(* A regular compiled function.  [must_call] are guaranteed call sites
   (emitted first, before anything noreturn inference could truncate). *)
let gen_regular rng (p : Profile.t) ~name ~callees ?(must_call = [])
    ?(cxx = false) ~tail_target ~n_slots () =
  let frame, saves = gen_frame rng p in
  let params = Prng.int rng 4 in
  let n_stmts =
    1 + Prng.int rng (max 1 (int_of_float (5.0 *. p.body_scale)))
  in
  let body =
    List.map (fun c -> Call c) must_call
    @ gen_stmts rng p ~depth:2 ~callees ~n_slots [] n_stmts
  in
  (* C++ functions: some wrap part of the body in a try with a cleanup
     landing pad (an LSDA call site + out-of-flow code). *)
  let body =
    if cxx && Prng.chance rng 0.3 then
      let protected_ =
        gen_stmts rng p ~depth:1 ~callees ~n_slots [] (1 + Prng.int rng 2)
      in
      let cleanup =
        Compute (1 + Prng.int rng 3)
        ::
        (match callees with
        | c :: _ when Prng.chance rng 0.4 -> [ Call c ]
        | _ -> [])
      in
      Try (protected_, cleanup) :: body
    else body
  in
  (* Hot/cold split: only framed functions, per real compilers; the cold
     part reads a live callee-saved register, so splitting forces at least
     one save. *)
  let framed = match frame with Frameless -> false | _ -> true in
  let split = framed && Prng.chance rng p.p_cold_split in
  let saves = if split && saves = [] then [ Fetch_x86.Reg.Rbx ] else saves in
  let body =
    if split then
      let cold =
        gen_stmts rng p ~depth:1 ~callees ~n_slots [] (1 + Prng.int rng 3)
      in
      Cold_jump cold :: body
    else body
  in
  (* A loop counter that is live across calls is kept in a callee-saved
     register (the way a register allocator would assign it), so such a
     body forces at least one save. *)
  let saves =
    if stmts_have_call_loop body && saves = [] then [ Fetch_x86.Reg.Rbx ]
    else saves
  in
  (* Terminal statement.  Most noreturn calls sit behind a condition (the
     `if (err) fatal();` shape); only a few functions are outright
     noreturn wrappers. *)
  let terminal =
    match tail_target with
    | Some t -> [ Tail_call t ]
    | None ->
        if Prng.chance rng p.p_noreturn_call then
          let target =
            if Prng.chance rng 0.5 then "abort_like" else "fatal_exit"
          in
          if Prng.chance rng 0.3 then [ Call_noreturn target ]
          else [ If ([ Compute 1; Call_noreturn target ], []); Return ]
        else if Prng.chance rng 0.08 then
          if Prng.bool rng then [ Call_error true; Return ]
          else [ Call_error false ]
        else [ Return ]
  in
  let entry_jump = Prng.chance rng p.p_entry_jump && frame = Frameless in
  let entry_nops =
    if Prng.chance rng p.p_entry_nops then 2 + (2 * Prng.int rng 3) else 0
  in
  make_func ~name ~params ~frame ~saves ~align:p.align ~endbr:p.endbr
    ~entry_jump ~entry_nops (body @ terminal)

(* Assembly-style function: short, frameless, no compiler idioms. *)
let gen_asm rng ~name ~emit_fde ?(broken_fde = false) ?(callee = None) () =
  let body =
    let core = [ Compute (2 + Prng.int rng 5) ] in
    let core = match callee with Some c -> core @ [ Call c ] | None -> core in
    core @ [ Return ]
  in
  make_func ~name ~params:(1 + Prng.int rng 2) ~frame:Frameless ~saves:[]
    ~is_assembly:true ~emit_fde ~broken_fde ~align:16 ~endbr:false body

let runtime_funcs ~cxx =
  let exit_fn =
    (* mov eax, 60; syscall; then a guard ud2 *)
    make_func ~name:"fatal_exit" ~params:1 ~noreturn:true
      [ Compute 2; Return ]
  in
  let abort_fn =
    make_func ~name:"abort_like" ~params:0 ~noreturn:true [ Compute 1; Return ]
  in
  let error_fn =
    make_func ~name:"error_like" ~params:2 ~conditional_noreturn:true
      [ Compute 2; Return ]
  in
  let cxx_fns =
    if cxx then
      [
        make_func ~name:"cxa_throw_like" ~params:2 ~noreturn:true
          [ Compute 3; Call_noreturn "abort_like" ];
        (* the personality routine every C++ CIE points at *)
        make_func ~name:"__gxx_personality_v0" ~params:4
          ~frame:(Rsp_frame 24) [ Compute 6; Return ];
      ]
    else []
  in
  [ exit_fn; abort_fn; error_fn ] @ cxx_fns

(* Noreturn inference and dead-code elimination, as an optimizing compiler
   does within a translation unit: compute the set of functions that can
   never return (fixpoint over the call graph), then truncate everything
   after a call to such a function.  Without this, the generator would emit
   live-looking code after calls that can never return — code no real
   compiler keeps at -O2. *)
module Noreturn_infer = struct
  module SS = Set.Make (String)

  (* Does the statement list fall off its end, and which returns / tail
     targets are reachable?  [nr] is the current noreturn assumption. *)
  let rec walk nr stmts =
    let falls = ref true in
    let has_ret = ref false in
    let tails = ref [] in
    List.iter
      (fun s ->
        if !falls then
          match s with
          | Compute _ | Call_pointer _ | Store _ | Call_reg_pointer _ -> ()
          | Call c -> if SS.mem c nr then falls := false
          | Call_noreturn _ -> falls := false
          | Call_error returns -> if not returns then falls := false
          | Return ->
              has_ret := true;
              falls := false
          | Tail_call t ->
              tails := t :: !tails;
              falls := false
          | If (a, b) ->
              let fa, ra, ta = walk nr a in
              let fb, rb, tb = walk nr b in
              has_ret := !has_ret || ra || rb;
              tails := ta @ tb @ !tails;
              falls := fa || fb
          | Loop (_, body) ->
              let fb, rb, tb = walk nr body in
              has_ret := !has_ret || rb;
              tails := tb @ !tails;
              falls := fb
          | Switch (_, cases) ->
              Array.iter
                (fun c ->
                  let _, rc, tc = walk nr c in
                  has_ret := !has_ret || rc;
                  tails := tc @ !tails)
                cases
              (* the default path always falls through *)
          | Try (body, lp) ->
              let fb, rb, tb = walk nr body in
              let _, rl, tl = walk nr lp in
              has_ret := !has_ret || rb || rl;
              tails := tb @ tl @ !tails;
              falls := fb
          | Cold_jump cold ->
              let _, rc, tc = walk nr cold in
              has_ret := !has_ret || rc;
              tails := tc @ !tails)
      stmts;
    (!falls, !has_ret, !tails)

  (* "Returns" is a least fixpoint: a function returns only when it
     provably reaches a ret (or falls off its end), possibly through a
     chain of tail calls.  Tail-call cycles with no other exit are
     therefore noreturn — they really are infinite loops. *)
  let returns_set nr funcs =
    let returns = ref SS.empty in
    List.iter
      (fun f ->
        if f.conditional_noreturn || f.entry_jump then
          returns := SS.add f.name !returns)
      funcs;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun f ->
          if (not (SS.mem f.name !returns)) && not f.noreturn then begin
            let falls, has_ret, tails = walk nr f.body in
            if
              falls || has_ret
              || List.exists (fun t -> SS.mem t !returns) tails
            then begin
              returns := SS.add f.name !returns;
              changed := true
            end
          end)
        funcs
    done;
    !returns

  let infer funcs =
    let rec fix nr =
      let rets = returns_set nr funcs in
      let nr' =
        List.fold_left
          (fun acc f ->
            if f.noreturn || not (SS.mem f.name rets) then SS.add f.name acc
            else acc)
          SS.empty funcs
      in
      if SS.equal nr nr' then nr else fix nr'
    in
    fix
      (SS.of_list
         (List.filter_map (fun f -> if f.noreturn then Some f.name else None) funcs))

  (* Drop unreachable statements after calls that cannot return. *)
  let rec truncate nr stmts =
    let rec go acc = function
      | [] -> List.rev acc
      | Call c :: _ when SS.mem c nr -> List.rev (Call_noreturn c :: acc)
      | (Call_noreturn _ as s) :: _ -> List.rev (s :: acc)
      | Call_error false :: _ -> List.rev (Call_error false :: acc)
      | (Return as s) :: _ | (Tail_call _ as s) :: _ -> List.rev (s :: acc)
      | If (a, b) :: rest ->
          go (If (truncate nr a, truncate nr b) :: acc) rest
      | Loop (k, body) :: rest -> go (Loop (k, truncate nr body) :: acc) rest
      | Switch (k, cases) :: rest ->
          go (Switch (k, Array.map (truncate nr) cases) :: acc) rest
      | Try (body, lp) :: rest ->
          go (Try (truncate nr body, truncate nr lp) :: acc) rest
      | Cold_jump cold :: rest -> go (Cold_jump (truncate nr cold) :: acc) rest
      | s :: rest -> go (s :: acc) rest
    in
    go [] stmts

  let apply funcs =
    let nr = infer funcs in
    List.map
      (fun f ->
        if f.conditional_noreturn || f.entry_jump then f
        else { f with body = truncate nr f.body })
      funcs
end

(** Generate a program.  [rng] drives all choices; the same seed yields the
    same program byte-for-byte. *)
let program rng (p : Profile.t) (spec : spec) =
  let n = max 4 spec.n_funcs in
  let fname i = Printf.sprintf "f%03d" i in
  (* Candidate callee sets: function i may call any later function, which
     keeps the direct call graph acyclic and every function reachable from
     main once main calls the early ones. *)
  let names = Array.init n fname in
  let n_slots = if n >= 10 then 4 + Prng.int rng 5 else 2 in
  (* Orphans: exported-API style functions nothing in this binary calls.
     The first 8 stay reachable (main's roots). *)
  let orphan = Array.init n (fun i -> i >= 8 && Prng.chance rng p.p_orphan) in
  let non_orphan_names =
    Array.of_list
      (List.filteri (fun i _ -> not orphan.(i)) (Array.to_list names))
  in
  (* Assembly functions without FDE, by reachability class. *)
  let asm_called =
    List.init spec.n_asm_called (fun i ->
        gen_asm rng ~name:(Printf.sprintf "asm_called%d" i) ~emit_fde:false ())
  in
  let asm_tailonly =
    List.init spec.n_asm_tailonly (fun i ->
        gen_asm rng ~name:(Printf.sprintf "asm_tail%d" i) ~emit_fde:false ())
  in
  let asm_pointer =
    List.init spec.n_asm_pointer (fun i ->
        gen_asm rng ~name:(Printf.sprintf "asm_ptr%d" i) ~emit_fde:false ())
  in
  let asm_code_ptr =
    List.init spec.n_asm_code_ptr (fun i ->
        gen_asm rng ~name:(Printf.sprintf "asm_cptr%d" i) ~emit_fde:false ())
  in
  let asm_unreachable =
    List.concat
      (List.init spec.n_asm_unreachable (fun i ->
           let succ_name = Printf.sprintf "asm_dead_succ%d" i in
           [
             gen_asm rng
               ~name:(Printf.sprintf "asm_dead%d" i)
               ~emit_fde:false ~callee:(Some succ_name) ();
             gen_asm rng ~name:succ_name ~emit_fde:false ();
           ]))
  in
  let broken =
    List.init spec.n_broken_fde (fun i ->
        gen_asm rng ~name:(Printf.sprintf "asm_broken%d" i) ~emit_fde:true
          ~broken_fde:true ())
  in
  (* Thunks: real single-jump forwarders (with FDE, like PLT-adjacent
     compiler thunks). *)
  let n_thunks = if n >= 20 then 1 + Prng.int rng 2 else 0 in
  let thunks =
    List.init n_thunks (fun i ->
        let target = names.(Prng.int rng n) in
        make_func
          ~name:(Printf.sprintf "thunk%d" i)
          ~params:1 ~frame:Frameless ~align:16
          [ Tail_call target ])
  in
  (* Which regular functions end in a tail call, and to whom. *)
  let asm_tail_names = List.map (fun f -> f.name) asm_tailonly in
  let tail_assignments = Hashtbl.create 8 in
  List.iteri
    (fun i t ->
      (* Each tail-only asm function is the target of exactly one tail
         call; spreading by index keeps the callers distinct. *)
      Hashtbl.replace tail_assignments (i mod n) t)
    asm_tail_names;
  let regulars =
    List.init n (fun i ->
        let callees_pool =
          (* later regular non-orphan functions + runtime + called-asm *)
          List.filteri (fun j _ -> j > i && not orphan.(j)) (Array.to_list names)
          @ List.map (fun f -> f.name) asm_called
        in
        (* chain edge: guarantee the next non-orphan function at least one
           direct caller, as real call graphs do for nearly every helper *)
        let chain =
          let rec next j =
            if j >= n then []
            else if orphan.(j) then next (j + 1)
            else [ names.(j) ]
          in
          next (i + 1)
        in
        let callees =
          List.filteri (fun _ _ -> Prng.chance rng 0.5) callees_pool
          |> fun l ->
          if List.length l > 6 then List.filteri (fun k _ -> k < 6) l else l
        in
        let tail_target =
          match Hashtbl.find_opt tail_assignments i with
          | Some t -> Some t
          | None ->
              if Prng.chance rng p.p_tail_call && Array.length non_orphan_names > 0
              then begin
                (* real tail-call targets are usually shared helpers with
                   other callers; aim mostly at main's roots so only a
                   small minority is single-referenced.  Never self. *)
                let t =
                  if Prng.chance rng 0.85 then names.(Prng.int rng (min 8 n))
                  else Prng.choice rng non_orphan_names
                in
                if t = names.(i) then None else Some t
              end
              else None
        in
        gen_regular rng p ~name:names.(i) ~callees ~must_call:chain
          ~cxx:spec.cxx ~tail_target ~n_slots ())
  in
  (* Sprinkle reg-pointer (code-constant) calls at a few sites, targeting
     the asm_code_ptr functions so xref detection has work to do. *)
  let cptr_leftover = ref (List.map (fun f -> f.name) asm_code_ptr) in
  let regulars =
    List.map
      (fun f ->
        (* entry-jump functions have fixed bodies; skip them *)
        match !cptr_leftover with
        | target :: rest when Prng.chance rng 0.5 && not f.entry_jump ->
            cptr_leftover := rest;
            { f with body = Call_reg_pointer target :: f.body }
        | _ ->
            if Prng.chance rng p.p_reg_pointer_call && not f.entry_jump then
              let t = names.(Prng.int rng n) in
              { f with body = Call_reg_pointer t :: f.body }
            else f)
      regulars
  in
  let main =
    let roots = Array.to_list (Array.sub names 0 (min 8 n)) in
    make_func ~name:"main" ~params:2 ~frame:(Rsp_frame 24) ~saves:[ Rbx ]
      ~align:16 ~endbr:p.endbr
      (* guaranteed references come first, before any call that noreturn
         inference might truncate after: leftover code-pointer targets,
         the assembly functions reachable only by direct call, and one
         indirect call through the pointer table *)
      (List.map (fun t -> Call_reg_pointer t) !cptr_leftover
      @ List.map (fun (f : Ir.func) -> Call f.name) asm_called
      @ (if n_slots > 0 then [ Call_pointer 0 ] else [])
      @ List.map (fun c -> Call c) roots
      @ [ Return ])
  in
  let start =
    make_func ~name:"_start" ~params:0 ~frame:Frameless ~align:16 ~endbr:p.endbr
      [ Call "main"; Call_noreturn "fatal_exit" ]
  in
  let clang_terminate =
    (* only some C++ objects pull in the statically-linked handler *)
    if spec.cxx && p.compiler = Profile.Synthllvm && Prng.chance rng 0.3 then
      [
        (* statically linked by clang without an FDE; called directly *)
        make_func ~name:"__clang_call_terminate" ~params:1 ~emit_fde:false
          ~noreturn:true [ Compute 1; Call_noreturn "abort_like" ];
      ]
    else []
  in
  let regulars =
    if clang_terminate <> [] then
      List.mapi
        (fun i f ->
          if i = 0 then
            { f with body = If ([ Call_noreturn "__clang_call_terminate" ], []) :: f.body }
          else f)
        regulars
    else regulars
  in
  (* Pointer slot initialization: regular functions + pointer-referenced
     asm functions. *)
  let pointer_inits, n_slots =
    let must =
      (* pointer-reachable asm functions, and the real entries hidden
         behind hand-broken FDEs (how glibc's __restore_rt is reached) *)
      List.map (fun f -> f.name) asm_pointer @ List.map (fun f -> f.name) broken
    in
    (* every must-reference target keeps its slot even when the drawn
       slot count is smaller (adversarial corpora with many broken FDEs:
       each hidden entry stays reachable through data, as in glibc) *)
    let n_slots = max n_slots (List.length must) in
    let targets =
      must
      @ List.init (max 0 (n_slots - List.length must)) (fun _ ->
            names.(Prng.int rng n))
    in
    ( List.filteri (fun i _ -> i < n_slots) targets
      |> List.mapi (fun i t -> (i, t)),
      n_slots )
  in
  let funcs =
    [ start; main ] @ regulars @ thunks @ runtime_funcs ~cxx:spec.cxx
    @ clang_terminate @ asm_called @ asm_tailonly @ asm_pointer @ asm_code_ptr
    @ asm_unreachable @ broken
  in
  let funcs = Noreturn_infer.apply funcs in
  {
    funcs;
    n_pointer_slots = n_slots;
    pointer_inits;
    strip_symbols = spec.strip;
    object_size = 8 + Prng.int rng 12;
  }
