(** Named adversarial scenarios: corpora built to stress one specific
    weakness of pattern- and signature-based function detection while
    leaving the exception-handling ground truth exact.

    Each scenario is a {!Profile.t}/{!Gen.spec} pair — padding-heavy
    layouts, hand-written-CFI FDEs at scale, CET-style endbr64 decoys —
    plus an optional post-link transform that rewrites sections whose
    bytes the truth does not describe ([.eh_frame], [.eh_frame_hdr]):
    64-bit DWARF re-encoding, header stripping, FDE overlap/misordering.
    [.text] is never touched after linking, so {!Truth.t} stays exact by
    construction and scoring needs no scenario-specific fixups. *)

let base_profile = Profile.make Profile.Synthgcc Profile.O2

(* The shared program shape: every scenario perturbs exactly one axis of
   this spec/profile, so per-scenario F1 deltas vs [clean] isolate that
   axis rather than corpus drift. *)
let base_spec =
  {
    Gen.default_spec with
    n_funcs = 40;
    n_asm_called = 2;
    n_asm_tailonly = 1;
    n_asm_pointer = 2;
    n_asm_code_ptr = 1;
    n_asm_unreachable = 1;
    strip = true;
  }

type t = {
  id : string;
  summary : string;  (** one line: what the corpus looks like *)
  stresses : string;  (** which paper mechanism/claim the scenario probes *)
  profile : Profile.t;
  spec : Gen.spec;
  transform : Link.built -> Link.built;  (** deterministic post-link rewrite *)
  fetch_floor : float;
      (** CI regression floor: minimum FETCH F1 (percent/100) observed on
          this scenario, minus a safety margin *)
}

(* ---- post-link section surgery ---- *)

let reencode (image : Fetch_elf.Image.t) (b : Link.built) =
  { b with image; raw = Fetch_elf.Encode.encode image }

let with_section_data (image : Fetch_elf.Image.t) name data =
  {
    image with
    sections =
      List.map
        (fun (s : Fetch_elf.Image.section) ->
          if s.sec_name = name then { s with data } else s)
        image.sections;
  }

let without_section (image : Fetch_elf.Image.t) name =
  {
    image with
    sections =
      List.filter
        (fun (s : Fetch_elf.Image.section) -> s.sec_name <> name)
        image.sections;
  }

(* Decode the built [.eh_frame], mangle its CIE list, and re-encode —
   regenerating [.eh_frame_hdr] from the new FDE index so the two stay
   consistent.  Safe because [.eh_frame] sits at the highest section base
   and may grow freely. *)
let rewrite_eh_frame ?(format64 = false) mangle (b : Link.built) =
  let eh = Fetch_dwarf.Eh_frame.of_image b.image in
  let cies = mangle eh.cies in
  let data, index =
    Fetch_dwarf.Eh_frame.encode_with_index ~format64 ~addr:Link.eh_frame_base
      cies
  in
  let hdr =
    Fetch_dwarf.Eh_frame_hdr.encode ~addr:Link.eh_frame_hdr_base
      ~eh_frame_addr:Link.eh_frame_base index
  in
  let image = with_section_data b.image ".eh_frame" data in
  let image = with_section_data image ".eh_frame_hdr" hdr in
  reencode image b

(* Overlap + misorder: FDE lists are reversed within each CIE (the spec
   requires no particular order) and every third FDE is duplicated with
   its range stretched past the next function's entry.  No [pc_begin] is
   added or removed, so the FDE seed set — and the ground truth — are
   unchanged; only range-consuming consumers see the overlap. *)
let overlap_fdes (cies : Fetch_dwarf.Eh_frame.cie list) =
  List.map
    (fun (cie : Fetch_dwarf.Eh_frame.cie) ->
      let fdes =
        List.concat
          (List.mapi
             (fun i (f : Fetch_dwarf.Eh_frame.fde) ->
               if i mod 3 = 0 then
                 [ f; { f with pc_range = f.pc_range + 17 } ]
               else [ f ])
             cie.fdes)
      in
      { cie with fdes = List.rev fdes })
    cies

(* ---- the scenario catalog ---- *)

let no_transform (b : Link.built) = b

let scenarios =
  [
    {
      id = "clean";
      summary = "control corpus: the base program shape, unperturbed";
      stresses = "baseline for every delta";
      profile = base_profile;
      spec = base_spec;
      transform = no_transform;
      fetch_floor = 0.93;
    };
    {
      id = "padding-junk";
      summary =
        "every function followed by a 4x-scaled junk pool, 90% of them \
         seeded with push-rbp prologue fragments";
      stresses =
        "pattern matchers' gap scanning (Table III FP columns); FETCH \
         never scans gaps, so pools are invisible to it";
      profile =
        {
          base_profile with
          p_text_junk = 1.0;
          junk_scale = 4;
          p_junk_prologue = 0.9;
          (* a gcc profile without endbr: the classic push rbp; mov
             rbp,rsp signature is the one the fragments forge *)
          endbr = false;
        };
      spec = base_spec;
      transform = no_transform;
      fetch_floor = 0.93;
    };
    {
      id = "padding-tables";
      summary =
        "jump-table-style pools (rows of 4-byte offsets) between \
         functions, plus moderate junk";
      stresses =
        "linear sweeps and every_byte prologue scans over address-like \
         data in .text";
      profile =
        { base_profile with p_text_junk = 0.4; p_table_pool = 0.9 };
      spec = base_spec;
      transform = no_transform;
      fetch_floor = 0.93;
    };
    {
      id = "cfi-broken";
      summary =
        "hand-written-CFI binaries: ten Fig. 6b lying FDEs per program \
         plus aggressive hot/cold splitting";
      stresses =
        "Fig. 6b: FDE starts that violate the calling convention must be \
         rejected and re-derived (SIV-E pointer validation)";
      profile = { base_profile with p_cold_split = 0.3 };
      spec = { base_spec with n_broken_fde = 10 };
      transform = no_transform;
      fetch_floor = 0.90;
    };
    {
      id = "cet-endbr";
      summary =
        "CET binaries (every prologue endbr64) with junk pools planting \
         endbr64 decoys between functions";
      stresses =
        "endbr64 as a start signature: strongest pattern signal, forged \
         in the gaps";
      profile =
        {
          base_profile with
          endbr = true;
          p_text_junk = 0.9;
          junk_scale = 2;
          p_junk_prologue = 0.9;
          junk_endbr = true;
          p_entry_nops = 0.2;
        };
      spec = base_spec;
      transform = no_transform;
      fetch_floor = 0.93;
    };
    {
      id = "dwarf64";
      summary = ".eh_frame re-encoded in the 64-bit DWARF record format";
      stresses =
        "parser generality: 0xffffffff marker, 8-byte lengths and CIE \
         pointers (SIII-C encoding variations)";
      profile = base_profile;
      spec = { base_spec with cxx = true };
      transform = rewrite_eh_frame ~format64:true Fun.id;
      fetch_floor = 0.93;
    };
    {
      id = "no-eh-frame-hdr";
      summary = ".eh_frame_hdr stripped from the binary";
      stresses =
        "detectors must parse .eh_frame directly, not lean on the \
         runtime search table";
      profile = base_profile;
      spec = base_spec;
      transform = (fun b -> reencode (without_section b.image ".eh_frame_hdr") b);
      fetch_floor = 0.93;
    };
    {
      id = "fde-overlap";
      summary =
        "FDE lists misordered and every third FDE duplicated with an \
         overlapping, over-long range";
      stresses =
        "robustness of range consumers (extents, heights) to \
         non-partitioning FDEs; seeds are unchanged";
      profile = base_profile;
      spec = base_spec;
      transform = rewrite_eh_frame overlap_fdes;
      fetch_floor = 0.93;
    };
  ]

let all = scenarios
let ids () = List.map (fun s -> s.id) scenarios
let find id = List.find_opt (fun s -> s.id = id) scenarios

let build t ~seed = t.transform (Link.build_random ~profile:t.profile ~seed t.spec)
