(** Ground-truth manifest recorded by the synthetic compiler at generation
    time — the analogue of the paper's compiler-interception framework
    ([27]) used to judge every detection strategy. *)

type fn_truth = {
  name : string;
  start : int;  (** the one true function start *)
  size : int;  (** size of the primary (hot) part *)
  parts : (int * int) list;  (** (addr, size) of every part, hot first *)
  is_assembly : bool;
  has_fde : bool;
  noreturn : bool;
  tail_only : bool;  (** reachable only via tail calls *)
  unreachable : bool;  (** never referenced anywhere *)
  leaf : bool;  (** no stack frame at all (no pushes, no rsp adjustment) *)
}

type t = {
  fns : fn_truth list;
  jump_tables : (int * int list) list;  (** table address, case targets *)
  pools : (int * int) list;
      (** (addr, size) of junk/table pools between functions: bytes inside
          [.text] that belong to no function and must not be detected *)
  text_lo : int;
  text_hi : int;
}

(** True function starts — the set every detector is scored against. *)
val starts : t -> int list

(** Hash set of true starts for O(1) membership tests. *)
val start_set : t -> (int, unit) Hashtbl.t

(** Addresses that symbols (and FDEs) additionally claim as starts: the
    secondary parts of non-contiguous functions. *)
val part_starts : t -> int list

val find_by_addr : t -> int -> fn_truth option
val count_if : (fn_truth -> bool) -> t -> int
