(* Tests for fetch.elf: image queries, encoder/decoder round trips. *)

open Fetch_elf

let check = Alcotest.check

let sample_image ?(symbols = []) () =
  let open Image in
  {
    entry = 0x401000;
    sections =
      [
        {
          sec_name = ".text";
          kind = Progbits;
          flags = shf_alloc lor shf_execinstr;
          addr = 0x401000;
          data = "\x55\x48\x89\xe5\xc3";
          addralign = 16;
          entsize = 0;
        };
        {
          sec_name = ".data";
          kind = Progbits;
          flags = shf_alloc lor shf_write;
          addr = 0x600000;
          data = "\x10\x10\x40\x00\x00\x00\x00\x00";
          addralign = 8;
          entsize = 0;
        };
        {
          sec_name = ".comment";
          kind = Progbits;
          flags = 0;
          addr = 0;
          data = "synthcc";
          addralign = 1;
          entsize = 0;
        };
      ];
    symbols;
  }

let fn_sym name value size =
  {
    Image.sym_name = name;
    value;
    size;
    sym_kind = Image.Func;
    bind = Image.Global;
    defined = true;
  }

let test_image_queries () =
  let img = sample_image () in
  check Alcotest.bool ".text found" true (Image.has_section img ".text");
  check Alcotest.bool ".absent" false (Image.has_section img ".bss");
  check Alcotest.int "one exec section" 1 (List.length (Image.exec_sections img));
  check Alcotest.bool "addr in exec" true (Image.in_exec_range img 0x401002);
  check Alcotest.bool "addr out of exec" false (Image.in_exec_range img 0x600000);
  (match Image.read img ~addr:0x401001 ~len:3 with
  | Some "\x48\x89\xe5" -> ()
  | _ -> Alcotest.fail "read mismatch");
  check (Alcotest.option Alcotest.int) "read_u64 in data" (Some 0x401010)
    (Image.read_u64 img 0x600000);
  check Alcotest.bool "read past end" true
    (Image.read img ~addr:0x401003 ~len:10 = None)

let test_roundtrip_plain () =
  let img = sample_image () in
  let raw = Encode.encode img in
  check Alcotest.string "magic" "\x7fELF" (String.sub raw 0 4);
  match Decode.decode raw with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok img' ->
      check Alcotest.int "entry" img.entry img'.entry;
      let t = Option.get (Image.section img' ".text") in
      check Alcotest.int ".text addr" 0x401000 t.addr;
      check Alcotest.string ".text data" "\x55\x48\x89\xe5\xc3" t.data;
      let d = Option.get (Image.section img' ".data") in
      check Alcotest.int ".data addr" 0x600000 d.addr;
      let c = Option.get (Image.section img' ".comment") in
      check Alcotest.string "non-alloc kept" "synthcc" c.data

let test_roundtrip_symbols () =
  let symbols =
    [ fn_sym "main" 0x401000 5; fn_sym "helper" 0x401003 2;
      { (fn_sym "local_fn" 0x401004 1) with bind = Image.Local } ]
  in
  let img = sample_image ~symbols () in
  let raw = Encode.encode img in
  match Decode.decode raw with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok img' ->
      check Alcotest.int "symbol count" 3 (List.length img'.symbols);
      let m = List.find (fun s -> s.Image.sym_name = "main") img'.symbols in
      check Alcotest.int "main value" 0x401000 m.value;
      check Alcotest.int "main size" 5 m.size;
      check Alcotest.bool "main is func" true (m.sym_kind = Image.Func);
      let l = List.find (fun s -> s.Image.sym_name = "local_fn") img'.symbols in
      check Alcotest.bool "local binding" true (l.bind = Image.Local)

let test_func_symbols_filter () =
  let symbols =
    [
      fn_sym "f" 0x401000 1;
      { (fn_sym "obj" 0x600000 8) with sym_kind = Image.Object };
      { (fn_sym "undef" 0 0) with defined = false };
    ]
  in
  let img = sample_image ~symbols () in
  check Alcotest.int "only defined funcs" 1
    (List.length (Image.func_symbols img))

let test_strip () =
  let img = sample_image ~symbols:[ fn_sym "f" 0x401000 1 ] () in
  let raw = Encode.encode img in
  let img' = Result.get_ok (Decode.decode raw) in
  let stripped = Image.strip img' in
  check Alcotest.int "no symbols" 0 (List.length stripped.symbols);
  (* re-encode the stripped image and decode again *)
  let raw2 = Encode.encode stripped in
  let img'' = Result.get_ok (Decode.decode raw2) in
  check Alcotest.int "still no symbols" 0 (List.length img''.symbols);
  check Alcotest.bool ".text survives" true (Image.has_section img'' ".text")

let test_decode_rejects_garbage () =
  check Alcotest.bool "short" true (Result.is_error (Decode.decode "\x7fELF"));
  check Alcotest.bool "bad magic" true
    (Result.is_error (Decode.decode (String.make 100 'A')));
  let img = sample_image () in
  let raw = Encode.encode img in
  (* corrupt the class byte *)
  let b = Bytes.of_string raw in
  Bytes.set b 4 '\001';
  check Alcotest.bool "elf32 rejected" true
    (Result.is_error (Decode.decode (Bytes.to_string b)))

let test_nobits () =
  let open Image in
  let img =
    {
      (sample_image ()) with
      sections =
        (sample_image ()).sections
        @ [
            {
              sec_name = ".bss";
              kind = Nobits;
              flags = shf_alloc lor shf_write;
              addr = 0x700000;
              data = String.make 64 '\000';
              addralign = 8;
              entsize = 0;
            };
          ];
    }
  in
  let raw = Encode.encode img in
  let img' = Result.get_ok (Decode.decode raw) in
  let bss = Option.get (Image.section img' ".bss") in
  check Alcotest.int "bss size preserved" 64 (String.length bss.data);
  check Alcotest.bool "bss is nobits" true (bss.kind = Nobits)

let suite =
  [
    Alcotest.test_case "image queries" `Quick test_image_queries;
    Alcotest.test_case "encode/decode roundtrip" `Quick test_roundtrip_plain;
    Alcotest.test_case "symbol table roundtrip" `Quick test_roundtrip_symbols;
    Alcotest.test_case "func_symbols filters" `Quick test_func_symbols_filter;
    Alcotest.test_case "strip removes symtab" `Quick test_strip;
    Alcotest.test_case "decoder rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "nobits sections" `Quick test_nobits;
  ]
