(* Tests for fetch.x86: encode/decode round trips, assembler layout,
   semantics summaries. *)

open Fetch_x86
module I = Insn

let check = Alcotest.check

let encode_at ~addr insn =
  let b = Fetch_util.Byte_buf.create () in
  Encode.emit b ~addr ~resolve:(function I.To_addr a -> a | I.To_label _ -> 0) insn;
  Fetch_util.Byte_buf.contents b

(* Round-trip a concrete instruction through encode+decode. *)
let roundtrip ?(addr = 0x1000) insn =
  let bytes = encode_at ~addr insn in
  match Decode.decode ~addr bytes with
  | None -> Alcotest.failf "decode failed for %s" (I.to_string insn)
  | Some (decoded, len) ->
      check Alcotest.int
        (Printf.sprintf "length of %s" (I.to_string insn))
        (String.length bytes) len;
      decoded

let expect_same insn =
  let decoded = roundtrip insn in
  if decoded <> insn then
    Alcotest.failf "round trip mismatch: %s vs %s" (I.to_string insn)
      (I.to_string decoded)

let sample_regs = [ Reg.Rax; Rcx; Rsp; Rbp; Rsi; Rdi; R8; R12; R13; R15 ]

let test_push_pop () =
  List.iter (fun r -> expect_same (I.Push r)) sample_regs;
  List.iter (fun r -> expect_same (I.Pop r)) sample_regs

let test_mov_forms () =
  expect_same (I.Mov (I.W64, I.Reg Reg.Rax, I.Reg Reg.Rbx));
  expect_same (I.Mov (I.W32, I.Reg Reg.R9, I.Reg Reg.Rdi));
  expect_same (I.Mov (I.W64, I.Reg Reg.Rcx, I.Imm 77));
  expect_same (I.Mov (I.W32, I.Reg Reg.Rcx, I.Imm 77));
  expect_same (I.Mov (I.W64, I.Reg Reg.Rdx, I.Mem (I.mem ~base:Reg.Rbp ~disp:(-8) ())));
  expect_same (I.Mov (I.W64, I.Mem (I.mem ~base:Reg.Rsp ~disp:24 ()), I.Reg Reg.Rsi));
  expect_same (I.Mov (I.W64, I.Mem (I.mem ~disp:0x600010 ()), I.Reg Reg.Rax));
  expect_same (I.Mov (I.W64, I.Reg Reg.Rax, I.Mem (I.rip_rel 0x1234)));
  expect_same (I.Movabs (Reg.R11, 0x1122334455667788))

let test_mem_addressing_modes () =
  (* exercise SIB, disp8/disp32, r12/r13/rbp corner cases *)
  let mems =
    [
      I.mem ~base:Reg.Rax ();
      I.mem ~base:Reg.Rbp ();
      (* rbp base forces disp8 *)
      I.mem ~base:Reg.R13 ();
      I.mem ~base:Reg.Rsp ();
      (* rsp base forces SIB *)
      I.mem ~base:Reg.R12 ();
      I.mem ~base:Reg.Rbx ~disp:127 ();
      I.mem ~base:Reg.Rbx ~disp:(-128) ();
      I.mem ~base:Reg.Rbx ~disp:128 ();
      I.mem ~base:Reg.Rbx ~disp:(-129) ();
      I.mem ~base:Reg.Rdi ~index:(Reg.Rcx, 4) ~disp:16 ();
      I.mem ~base:Reg.R8 ~index:(Reg.R9, 8) ();
      I.mem ~index:(Reg.Rdx, 8) ~disp:0x500000 ();
      I.mem ~disp:0x500100 ();
    ]
  in
  List.iter (fun m -> expect_same (I.Lea (Reg.Rax, m))) mems;
  List.iter
    (fun m -> expect_same (I.Mov (I.W64, I.Reg Reg.Rcx, I.Mem m)))
    mems

let test_arith_forms () =
  List.iter
    (fun op ->
      expect_same (I.Arith (op, I.W64, I.Reg Reg.Rax, I.Reg Reg.Rdx));
      expect_same (I.Arith (op, I.W32, I.Reg Reg.R10, I.Reg Reg.Rbx));
      expect_same (I.Arith (op, I.W64, I.Reg Reg.Rsp, I.Imm 8));
      expect_same (I.Arith (op, I.W64, I.Reg Reg.Rsp, I.Imm 1024));
      expect_same
        (I.Arith (op, I.W64, I.Reg Reg.Rdi, I.Mem (I.mem ~base:Reg.Rax ~disp:8 ()))))
    [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Cmp ]

let test_misc_insns () =
  expect_same (I.Test (I.W64, Reg.Rax, Reg.Rax));
  expect_same (I.Test (I.W32, Reg.Rdi, Reg.Rdi));
  expect_same (I.Imul (Reg.Rax, I.Reg Reg.Rcx));
  expect_same (I.Shift (`Shl, Reg.Rax, 3));
  expect_same (I.Shift (`Sar, Reg.R9, 63));
  expect_same (I.Neg (I.W64, Reg.Rdx));
  expect_same (I.Inc Reg.Rbx);
  expect_same (I.Dec Reg.R14);
  expect_same (I.Movsxd (Reg.Rax, I.mem ~base:Reg.R11 ~index:(Reg.Rcx, 4) ()));
  expect_same I.Ret;
  expect_same I.Leave;
  expect_same I.Endbr64;
  expect_same I.Ud2;
  expect_same I.Int3;
  expect_same I.Hlt;
  expect_same I.Syscall;
  expect_same I.Cpuid

let test_nops () =
  for n = 1 to 9 do
    expect_same (I.Nop n)
  done

let test_control_flow_targets () =
  (* call/jmp/jcc rel32 resolve to absolute targets on decode *)
  let addr = 0x401000 in
  let cases =
    [
      I.Call (I.To_addr 0x402000);
      I.Jmp (I.To_addr 0x400800);
      I.Jcc (I.Ne, I.To_addr 0x401800);
      I.Jcc (I.A, I.To_addr 0x401004);
    ]
  in
  List.iter
    (fun insn ->
      let d = roundtrip ~addr insn in
      if d <> insn then
        Alcotest.failf "target mismatch: %s vs %s" (I.to_string insn) (I.to_string d))
    cases;
  (* short forms *)
  let d = roundtrip ~addr (I.Jmp_short (I.To_addr (addr + 10))) in
  check Alcotest.bool "short jmp" true (d = I.Jmp_short (I.To_addr (addr + 10)));
  let d = roundtrip ~addr (I.Jcc_short (I.E, I.To_addr (addr - 20))) in
  check Alcotest.bool "short jcc" true (d = I.Jcc_short (I.E, I.To_addr (addr - 20)))

let test_indirect_calls () =
  expect_same (I.Call_ind (I.Reg Reg.Rax));
  expect_same (I.Call_ind (I.Reg Reg.R11));
  expect_same (I.Call_ind (I.Mem (I.rip_rel 0x100)));
  expect_same (I.Jmp_ind (I.Reg Reg.Rdx));
  expect_same (I.Jmp_ind (I.Mem (I.mem ~index:(Reg.Rax, 8) ~disp:0x500000 ())))

let test_rip_sym_resolution () =
  (* lea rax, [rip+target] with a symbolic target resolves correctly *)
  let addr = 0x401000 in
  let target = 0x500040 in
  let b = Fetch_util.Byte_buf.create () in
  Encode.emit b ~addr
    ~resolve:(function I.To_addr a -> a | I.To_label _ -> Alcotest.fail "label")
    (I.Lea (Reg.Rax, I.rip_sym (I.To_addr target)));
  let bytes = Fetch_util.Byte_buf.contents b in
  match Decode.decode ~addr bytes with
  | Some (I.Lea (Reg.Rax, m), len) ->
      check Alcotest.bool "rip rel" true m.rip_rel;
      check Alcotest.int "resolved disp" target (addr + len + m.disp)
  | _ -> Alcotest.fail "decode of rip_sym lea failed"

let test_invalid_bytes () =
  let invalid = [ "\x06"; "\x0f\xff"; "\xd6"; "\x66\x50"; "\xf3\x01\xc0" ] in
  List.iter
    (fun s ->
      match Decode.decode ~addr:0 s with
      | None -> ()
      | Some (i, _) ->
          Alcotest.failf "expected invalid for %s, got %s"
            (Fetch_util.Hex.of_string s) (I.to_string i))
    invalid;
  (* truncated instruction *)
  check Alcotest.bool "truncated call" true (Decode.decode ~addr:0 "\xe8\x01\x02" = None)

let test_rep_ret () =
  match Decode.decode ~addr:0 "\xf3\xc3" with
  | Some (I.Ret, 2) -> ()
  | _ -> Alcotest.fail "rep ret should decode as Ret/2"

let test_asm_labels () =
  let items =
    [
      Asm.Label "f";
      Asm.I (I.Mov (I.W32, I.Reg Reg.Rax, I.Imm 1));
      Asm.I (I.Call (I.To_label "g"));
      Asm.I I.Ret;
      Asm.Align 16;
      Asm.Label "g";
      Asm.I I.Ret;
    ]
  in
  let r = Asm.assemble ~base:0x1000 items in
  check Alcotest.int "f at base" 0x1000 (Asm.label_addr r "f");
  check Alcotest.int "g aligned" 0 (Asm.label_addr r "g" mod 16);
  (* the call must land exactly on g *)
  let call_off = Asm.label_addr r "f" + 5 - r.base in
  match Decode.decode ~addr:(r.base + call_off) ~pos:call_off r.code with
  | Some (I.Call (I.To_addr t), _) ->
      check Alcotest.int "call resolves to g" (Asm.label_addr r "g") t
  | _ -> Alcotest.fail "expected call"

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate labels rejected"
    (Invalid_argument "Asm: duplicate label x") (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.Label "x"; Asm.Label "x" ]))

let test_align_is_nops () =
  let items = [ Asm.I I.Ret; Asm.Align 16; Asm.Label "end" ] in
  let r = Asm.assemble ~base:0 items in
  check Alcotest.int "end at 16" 16 (Asm.label_addr r "end");
  (* every padding byte decodes as part of a NOP *)
  let rec walk pos =
    if pos < 16 then
      match Decode.decode ~addr:pos ~pos r.code with
      | Some (I.Nop _, len) -> walk (pos + len)
      | _ -> Alcotest.failf "non-nop padding at %d" pos
  in
  walk 1

let test_semantics_flow () =
  let open Semantics in
  (match flow (I.Jmp (I.To_addr 5)) with
  | Jump (Direct 5) -> ()
  | _ -> Alcotest.fail "jmp flow");
  (match flow (I.Call_ind (I.Reg Reg.Rax)) with
  | Callf (Indirect _) -> ()
  | _ -> Alcotest.fail "call ind flow");
  check Alcotest.bool "ret" true (flow I.Ret = Ret);
  check Alcotest.bool "ud2 halts" true (flow I.Ud2 = Halt);
  check Alcotest.bool "nop falls" true (flow (I.Nop 3) = Fall)

let test_semantics_sp () =
  let open Semantics in
  check (Alcotest.option Alcotest.int) "push" (Some (-8)) (sp_delta (I.Push Reg.Rax));
  check (Alcotest.option Alcotest.int) "pop" (Some 8) (sp_delta (I.Pop Reg.Rbx));
  check (Alcotest.option Alcotest.int) "sub rsp"
    (Some (-32))
    (sp_delta (I.Arith (I.Sub, I.W64, I.Reg Reg.Rsp, I.Imm 32)));
  check (Alcotest.option Alcotest.int) "add rsp" (Some 40)
    (sp_delta (I.Arith (I.Add, I.W64, I.Reg Reg.Rsp, I.Imm 40)));
  check (Alcotest.option Alcotest.int) "leave unknown" None (sp_delta I.Leave);
  check (Alcotest.option Alcotest.int) "mov rsp unknown" None
    (sp_delta (I.Mov (I.W64, I.Reg Reg.Rsp, I.Reg Reg.Rbp)));
  check (Alcotest.option Alcotest.int) "call net zero" (Some 0)
    (sp_delta (I.Call (I.To_addr 0)))

let test_semantics_uses_defs () =
  let open Semantics in
  (* push is a save, not a use *)
  check (Alcotest.list Alcotest.string) "push uses nothing" []
    (List.map Reg.name64 (uses (I.Push Reg.Rbp)));
  (* xor r,r defines without reading *)
  check Alcotest.bool "xor zeroing" true
    (uses (I.Arith (I.Xor, I.W32, I.Reg Reg.Rax, I.Reg Reg.Rax)) = []);
  check Alcotest.bool "xor defines" true
    (defs (I.Arith (I.Xor, I.W32, I.Reg Reg.Rax, I.Reg Reg.Rax)) = [ Reg.Rax ]);
  (* mov rbp, rsp defines rbp and reads only rsp (elided) *)
  check Alcotest.bool "mov rbp,rsp" true
    (uses (I.Mov (I.W64, I.Reg Reg.Rbp, I.Reg Reg.Rsp)) = []);
  check Alcotest.bool "mem uses base+index" true
    (List.sort compare
       (uses (I.Mov (I.W64, I.Reg Reg.Rax, I.Mem (I.mem ~base:Reg.Rbx ~index:(Reg.Rcx, 8) ()))))
    = List.sort compare [ Reg.Rbx; Reg.Rcx ])

(* Property: every instruction the generator-era encoder can produce decodes
   back to itself at the right length. *)
let arbitrary_insn =
  let open QCheck.Gen in
  let reg = oneofl sample_regs in
  let nonsp = oneofl [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.R8; Reg.R12 ] in
  let width = oneofl [ I.W32; I.W64 ] in
  let memop =
    let* b = nonsp in
    let* d = int_range (-200) 200 in
    return (I.mem ~base:b ~disp:d ())
  in
  oneof
    [
      (let* r = reg in return (I.Push r));
      (let* r = reg in return (I.Pop r));
      (let* w = width and* d = nonsp and* s = nonsp in
       return (I.Mov (w, I.Reg d, I.Reg s)));
      (let* w = width and* d = nonsp and* v = int_range (-1000) 1000 in
       return (I.Mov (w, I.Reg d, I.Imm v)));
      (let* d = nonsp and* m = memop in return (I.Mov (I.W64, I.Reg d, I.Mem m)));
      (let* s = nonsp and* m = memop in return (I.Mov (I.W64, I.Mem m, I.Reg s)));
      (let* d = nonsp and* m = memop in return (I.Lea (d, m)));
      (let* op = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Cmp ]
       and* w = width and* d = nonsp and* s = nonsp in
       return (I.Arith (op, w, I.Reg d, I.Reg s)));
      (let* op = oneofl [ I.Add; I.Sub; I.Cmp ]
       and* d = nonsp and* v = int_range (-300) 300 in
       return (I.Arith (op, I.W64, I.Reg d, I.Imm v)));
      (let* a = nonsp and* b = nonsp in return (I.Test (I.W64, a, b)));
      return I.Ret;
      return I.Leave;
      (let* n = int_range 1 9 in return (I.Nop n));
    ]

let prop_insn_roundtrip =
  QCheck.Test.make ~name:"instruction encode/decode roundtrip" ~count:1000
    (QCheck.make arbitrary_insn ~print:I.to_string)
    (fun insn ->
      let bytes = encode_at ~addr:0x4000 insn in
      match Decode.decode ~addr:0x4000 bytes with
      | Some (d, len) -> d = insn && len = String.length bytes
      | None -> false)

(* Property: decoding never reads past the declared instruction length and
   never crashes on arbitrary bytes. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decoder is total on random bytes" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 20))
    (fun s ->
      match Decode.decode ~addr:0 s with
      | None -> true
      | Some (_, len) -> len > 0 && len <= String.length s)

let suite =
  [
    Alcotest.test_case "push/pop all regs" `Quick test_push_pop;
    Alcotest.test_case "mov forms" `Quick test_mov_forms;
    Alcotest.test_case "memory addressing modes" `Quick test_mem_addressing_modes;
    Alcotest.test_case "arith forms" `Quick test_arith_forms;
    Alcotest.test_case "misc instructions" `Quick test_misc_insns;
    Alcotest.test_case "canonical nops" `Quick test_nops;
    Alcotest.test_case "control flow targets" `Quick test_control_flow_targets;
    Alcotest.test_case "indirect call/jmp" `Quick test_indirect_calls;
    Alcotest.test_case "rip-relative symbol resolution" `Quick test_rip_sym_resolution;
    Alcotest.test_case "invalid byte sequences" `Quick test_invalid_bytes;
    Alcotest.test_case "rep ret" `Quick test_rep_ret;
    Alcotest.test_case "assembler label layout" `Quick test_asm_labels;
    Alcotest.test_case "assembler duplicate label" `Quick test_asm_duplicate_label;
    Alcotest.test_case "alignment padding is nops" `Quick test_align_is_nops;
    Alcotest.test_case "semantics: control flow" `Quick test_semantics_flow;
    Alcotest.test_case "semantics: stack deltas" `Quick test_semantics_sp;
    Alcotest.test_case "semantics: uses/defs" `Quick test_semantics_uses_defs;
    QCheck_alcotest.to_alcotest prop_insn_roundtrip;
    QCheck_alcotest.to_alcotest prop_decode_total;
  ]

(* --- extended instruction subset --- *)

let test_extended_insns () =
  expect_same (I.Movzx (Reg.Rax, `B8, I.Reg Reg.Rcx));
  expect_same (I.Movzx (Reg.R9, `B16, I.Mem (I.mem ~base:Reg.Rbx ~disp:4 ())));
  expect_same (I.Movsx (Reg.Rdx, `B8, I.Reg Reg.Rdi));
  expect_same (I.Movsx (Reg.Rax, `B16, I.Reg Reg.R12));
  expect_same (I.Setcc (I.E, Reg.Rax));
  expect_same (I.Setcc (I.Ne, Reg.Rsi));
  expect_same (I.Setcc (I.G, Reg.R10));
  expect_same (I.Cmov (I.L, Reg.Rax, I.Reg Reg.Rbx));
  expect_same (I.Cmov (I.Ne, Reg.R8, I.Mem (I.mem ~base:Reg.Rdi ())));
  expect_same (I.Div (I.W64, Reg.Rcx));
  expect_same (I.Idiv (I.W64, Reg.Rbx));
  expect_same (I.Idiv (I.W32, Reg.Rsi));
  expect_same (I.Mul (I.W64, Reg.R11));
  expect_same I.Cqo;
  expect_same I.Cdq;
  expect_same (I.Not (I.W64, Reg.Rdx));
  expect_same (I.Xchg (Reg.Rax, Reg.Rbx));
  expect_same (I.Push_imm 5);
  expect_same (I.Push_imm 0x12345);
  expect_same (I.Test_imm (I.W64, Reg.Rdi, 0xff));
  expect_same (I.Test_imm (I.W32, Reg.Rax, 1))

let test_extended_semantics () =
  let open Semantics in
  check (Alcotest.option Alcotest.int) "push imm" (Some (-8))
    (sp_delta (I.Push_imm 3));
  check (Alcotest.option Alcotest.int) "xchg rsp unknown" None
    (sp_delta (I.Xchg (Reg.Rsp, Reg.Rax)));
  check Alcotest.bool "div defines rax+rdx" true
    (List.sort compare (defs (I.Idiv (I.W64, Reg.Rcx)))
    = List.sort compare [ Reg.Rax; Reg.Rdx ]);
  check Alcotest.bool "div reads rax rdx r" true
    (List.sort compare (uses (I.Idiv (I.W64, Reg.Rcx)))
    = List.sort compare [ Reg.Rax; Reg.Rdx; Reg.Rcx ]);
  check Alcotest.bool "setcc partial write" true (defs (I.Setcc (I.E, Reg.Rax)) = []);
  check Alcotest.bool "cmov reads dst" true
    (List.mem Reg.Rax (uses (I.Cmov (I.E, Reg.Rax, I.Reg Reg.Rbx))));
  check Alcotest.bool "cqo reads rax defines rdx" true
    (uses I.Cqo = [ Reg.Rax ] && defs I.Cqo = [ Reg.Rdx ])

let suite =
  suite
  @ [
      Alcotest.test_case "extended instruction roundtrip" `Quick test_extended_insns;
      Alcotest.test_case "extended instruction semantics" `Quick test_extended_semantics;
    ]
