test/test_synth.ml: Alcotest Fetch_analysis Fetch_dwarf Fetch_elf Fetch_synth Fetch_util Fetch_x86 Gen Hashtbl Int32 Lazy Link List Option Printf Profile Result String Truth
