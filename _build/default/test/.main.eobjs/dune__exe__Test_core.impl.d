test/test_core.ml: Alcotest Fetch_analysis Fetch_core Fetch_dwarf Fetch_synth Gen Hashtbl Lazy Link List Option Pipeline Printf Profile QCheck QCheck_alcotest Refs String Truth
