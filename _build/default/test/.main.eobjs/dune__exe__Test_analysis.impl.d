test/test_analysis.ml: Alcotest Asm Callconv Fetch_analysis Fetch_dwarf Fetch_elf Fetch_util Fetch_x86 Hashtbl Insn Linear_sweep List Loaded Prologue Recursive Reg Stack_height String
