test/test_rop.ml: Alcotest Asm Fetch_analysis Fetch_elf Fetch_rop Fetch_x86 Insn List Reg
