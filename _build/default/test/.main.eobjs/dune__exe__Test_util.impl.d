test/test_util.ml: Alcotest Byte_buf Byte_cursor Fetch_util Interval_map List Prng QCheck QCheck_alcotest String Text_table
