test/test_baselines.ml: Alcotest Angr_model Fetch_analysis Fetch_baselines Fetch_elf Fetch_synth Gen Ghidra_model Hashtbl Heuristics Link List Option Pattern_tools Profile Tools Truth
