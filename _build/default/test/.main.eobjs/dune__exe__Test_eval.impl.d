test/test_eval.ml: Alcotest Corpus Exp_heights Exp_strategies Fetch_analysis Fetch_dwarf Fetch_elf Fetch_eval Fetch_synth Hashtbl Int List Metrics Set String
