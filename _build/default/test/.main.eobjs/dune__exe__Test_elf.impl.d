test/test_elf.ml: Alcotest Bytes Decode Encode Fetch_elf Image List Option Result String
