test/test_pe.ml: Alcotest Decode Encode Fetch_pe Fetch_synth Image List Option Pe_gen QCheck QCheck_alcotest Result String Unwind_info
