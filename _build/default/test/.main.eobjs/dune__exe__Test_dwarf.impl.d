test/test_dwarf.ml: Alcotest Array Cfa_table Cfi Eh_frame Eh_frame_hdr Fetch_dwarf Fetch_util Hashtbl Height_oracle List QCheck QCheck_alcotest String Unwind
