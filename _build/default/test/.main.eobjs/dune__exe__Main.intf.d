test/main.mli:
