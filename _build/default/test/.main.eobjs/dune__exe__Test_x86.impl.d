test/test_x86.ml: Alcotest Asm Decode Encode Fetch_util Fetch_x86 Insn List Printf QCheck QCheck_alcotest Reg Semantics String
