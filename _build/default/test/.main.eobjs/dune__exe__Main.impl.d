test/main.ml: Alcotest Test_analysis Test_baselines Test_core Test_dwarf Test_elf Test_eval Test_pe Test_rop Test_synth Test_util Test_x86
