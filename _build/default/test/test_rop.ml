(* Tests for fetch.rop: gadget discovery semantics. *)

open Fetch_x86
module I = Insn

let check = Alcotest.check

let image_of items =
  let asm = Asm.assemble ~base:0x1000 items in
  let open Fetch_elf.Image in
  ( {
      entry = 0x1000;
      sections =
        [
          {
            sec_name = ".text";
            kind = Progbits;
            flags = shf_alloc lor shf_execinstr;
            addr = 0x1000;
            data = asm.code;
            addralign = 16;
            entsize = 0;
          };
        ];
      symbols = [];
    },
    asm )

let test_ret_gadget () =
  let img, asm =
    image_of
      [
        Asm.Label "g";
        Asm.I (I.Pop Reg.Rdi);
        Asm.I (I.Pop Reg.Rsi);
        Asm.I I.Ret;
      ]
  in
  let loaded = Fetch_analysis.Loaded.load img in
  match Fetch_rop.Gadget.at loaded ~depth:4 (Asm.label_addr asm "g") with
  | Some g ->
      check Alcotest.int "three instructions" 3 (List.length g.insns);
      check Alcotest.bool "ret kind" true (g.kind = Fetch_rop.Gadget.Ret_gadget)
  | None -> Alcotest.fail "pop;pop;ret should be a gadget"

let test_jmp_gadget () =
  let img, asm =
    image_of [ Asm.Label "g"; Asm.I (I.Pop Reg.Rax); Asm.I (I.Jmp_ind (I.Reg Reg.Rax)) ]
  in
  let loaded = Fetch_analysis.Loaded.load img in
  match Fetch_rop.Gadget.at loaded ~depth:4 (Asm.label_addr asm "g") with
  | Some g -> check Alcotest.bool "jmp kind" true (g.kind = Fetch_rop.Gadget.Jmp_gadget)
  | None -> Alcotest.fail "pop;jmp rax should be a gadget"

let test_no_gadget_through_branches () =
  let img, asm =
    image_of
      [
        Asm.Label "g";
        Asm.I (I.Jcc (I.E, I.To_label "x"));
        Asm.I I.Ret;
        Asm.Label "x";
        Asm.I I.Ret;
      ]
  in
  let loaded = Fetch_analysis.Loaded.load img in
  check Alcotest.bool "branch breaks gadget" true
    (Fetch_rop.Gadget.at loaded ~depth:4 (Asm.label_addr asm "g") = None)

let test_depth_limit () =
  let img, asm =
    image_of
      [
        Asm.Label "g";
        Asm.I (I.Nop 1); Asm.I (I.Nop 1); Asm.I (I.Nop 1); Asm.I (I.Nop 1);
        Asm.I (I.Nop 1);
        Asm.I I.Ret;
      ]
  in
  let loaded = Fetch_analysis.Loaded.load img in
  check Alcotest.bool "too deep" true
    (Fetch_rop.Gadget.at loaded ~depth:3 (Asm.label_addr asm "g") = None);
  check Alcotest.bool "within depth" true
    (Fetch_rop.Gadget.at loaded ~depth:6 (Asm.label_addr asm "g") <> None)

let test_in_range_counts_offsets () =
  (* pop rdi; pop rsi; ret: gadgets at offset 0 and 1 at least *)
  let img, asm =
    image_of
      [ Asm.Label "g"; Asm.I (I.Pop Reg.Rdi); Asm.I (I.Pop Reg.Rsi); Asm.I I.Ret ]
  in
  let loaded = Fetch_analysis.Loaded.load img in
  let lo = Asm.label_addr asm "g" in
  let gs = Fetch_rop.Gadget.in_range loaded ~depth:4 ~lo ~hi:(lo + 3) in
  check Alcotest.bool "at least 2 gadgets" true (List.length gs >= 2);
  check Alcotest.int "unique count" (List.length gs)
    (Fetch_rop.Gadget.count_unique gs)

let suite =
  [
    Alcotest.test_case "pop;pop;ret" `Quick test_ret_gadget;
    Alcotest.test_case "pop;jmp reg" `Quick test_jmp_gadget;
    Alcotest.test_case "branches break gadgets" `Quick test_no_gadget_through_branches;
    Alcotest.test_case "depth limit" `Quick test_depth_limit;
    Alcotest.test_case "in_range sub-offsets" `Quick test_in_range_counts_offsets;
  ]
