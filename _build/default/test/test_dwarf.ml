(* Tests for fetch.dwarf: CFI codec, eh_frame codec, CFA tables, heights,
   and the reference unwinder. *)

open Fetch_dwarf

let check = Alcotest.check

(* The FDE from the paper's Figure 4 (IDA-Pro 7.2 function at 0xb0). *)
let figure4_fde =
  {
    Eh_frame.pc_begin = 0xb0;
    pc_range = 56;
    lsda = None;
    instrs =
      [
        Cfi.Advance_loc 1;
        (* to b1 *)
        Cfi.Def_cfa_offset 16;
        Cfi.Offset (6, 2);
        (* rbp at cfa-16 *)
        Cfi.Advance_loc 12;
        (* to bd *)
        Cfi.Def_cfa_offset 24;
        Cfi.Offset (3, 3);
        (* rbx at cfa-24 *)
        Cfi.Advance_loc 11;
        (* to c8 *)
        Cfi.Def_cfa_offset 32;
        Cfi.Advance_loc 29;
        (* to e5 *)
        Cfi.Def_cfa_offset 24;
        Cfi.Advance_loc 1;
        (* to e6 *)
        Cfi.Def_cfa_offset 16;
        Cfi.Advance_loc 1;
        (* to e7 *)
        Cfi.Def_cfa_offset 8;
      ];
  }

let figure4_cie = Eh_frame.default_cie ~fdes:[ figure4_fde ] ()

let test_cfi_roundtrip () =
  let instrs =
    [
      Cfi.Def_cfa (7, 8);
      Cfi.Offset (16, 1);
      Cfi.Advance_loc 1;
      Cfi.Advance_loc 63;
      Cfi.Advance_loc 64;
      Cfi.Advance_loc 300;
      Cfi.Advance_loc 70000;
      Cfi.Def_cfa_offset 16;
      Cfi.Def_cfa_register 6;
      Cfi.Offset (6, 2);
      Cfi.Offset (80, 3);
      (* extended form *)
      Cfi.Restore 3;
      Cfi.Restore 70;
      Cfi.Same_value 12;
      Cfi.Undefined 13;
      Cfi.Register (3, 12);
      Cfi.Remember_state;
      Cfi.Restore_state;
      Cfi.Def_cfa_expression "\x77\x08";
      Cfi.Expression (8, "\x77\x2e");
      Cfi.Nop;
    ]
  in
  let b = Fetch_util.Byte_buf.create () in
  List.iter (Cfi.encode b) instrs;
  let decoded =
    Cfi.decode_all (Fetch_util.Byte_cursor.of_string (Fetch_util.Byte_buf.contents b))
  in
  check Alcotest.int "count" (List.length instrs) (List.length decoded);
  List.iter2
    (fun a d ->
      if a <> d then
        Alcotest.failf "cfi mismatch: %s vs %s" (Cfi.to_string a) (Cfi.to_string d))
    instrs decoded

let test_eh_frame_roundtrip () =
  let addr = 0x700000 in
  let fde2 =
    { Eh_frame.pc_begin = 0x200; pc_range = 16; lsda = None; instrs = [ Cfi.Advance_loc 4; Cfi.Def_cfa_offset 16 ] }
  in
  let cies =
    [
      Eh_frame.default_cie ~fdes:[ figure4_fde; fde2 ] ();
      Eh_frame.default_cie ~fdes:[ { Eh_frame.pc_begin = 0x300; pc_range = 8; lsda = None; instrs = [] } ] ();
    ]
  in
  let encoded = Eh_frame.encode ~addr cies in
  match Eh_frame.decode ~addr encoded with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok cies' ->
      check Alcotest.int "CIE count" 2 (List.length cies');
      let all = Eh_frame.all_fdes cies' in
      check Alcotest.int "FDE count" 3 (List.length all);
      let f1 = List.nth all 0 in
      check Alcotest.int "pc_begin" 0xb0 f1.pc_begin;
      check Alcotest.int "pc_range" 56 f1.pc_range;
      (* CFI programs survive modulo trailing padding nops *)
      let strip_nops l = List.filter (fun i -> i <> Cfi.Nop) l in
      check Alcotest.int "fde1 instr count"
        (List.length figure4_fde.instrs)
        (List.length (strip_nops f1.instrs));
      let c1 = List.nth cies' 0 in
      check Alcotest.int "code align" 1 c1.code_align;
      check Alcotest.int "data align" (-8) c1.data_align;
      check Alcotest.int "ra reg" 16 c1.ra_reg

let test_eh_frame_terminator_and_empty () =
  let encoded = Eh_frame.encode ~addr:0 [] in
  check Alcotest.int "empty is just terminator" 4 (String.length encoded);
  check Alcotest.bool "decodes empty" true (Eh_frame.decode ~addr:0 encoded = Ok [])

(* Figure 4's run-time stack: heights at each point of the function. *)
let test_figure4_heights () =
  let rows = Cfa_table.rows ~cie:figure4_cie figure4_fde in
  let height off = Cfa_table.height_at rows off in
  check (Alcotest.option Alcotest.int) "entry" (Some 0) (height 0);
  check (Alcotest.option Alcotest.int) "after push rbp" (Some 8) (height 0x1);
  check (Alcotest.option Alcotest.int) "after push rbx" (Some 16) (height 0xd);
  check (Alcotest.option Alcotest.int) "after sub rsp,8" (Some 24) (height 0x18);
  check (Alcotest.option Alcotest.int) "mid body" (Some 24) (height 0x20);
  check (Alcotest.option Alcotest.int) "after add rsp,8" (Some 16) (height 0x35);
  check (Alcotest.option Alcotest.int) "after pop rbx" (Some 8) (height 0x36);
  check (Alcotest.option Alcotest.int) "at ret" (Some 0) (height 0x37);
  check Alcotest.bool "complete" true (Cfa_table.complete_rsp_heights rows)

let test_rbp_based_incomplete () =
  let fde =
    {
      Eh_frame.pc_begin = 0;
      pc_range = 32;
      lsda = None;
      instrs =
        [
          Cfi.Advance_loc 1;
          Cfi.Def_cfa_offset 16;
          Cfi.Offset (6, 2);
          Cfi.Advance_loc 3;
          Cfi.Def_cfa_register 6;
          (* CFA now rbp-based *)
        ];
    }
  in
  let rows = Cfa_table.rows ~cie:figure4_cie fde in
  check Alcotest.bool "incomplete" false (Cfa_table.complete_rsp_heights rows);
  check (Alcotest.option Alcotest.int) "height before rebase" (Some 8)
    (Cfa_table.height_at rows 2);
  check (Alcotest.option Alcotest.int) "no height after rebase" None
    (Cfa_table.height_at rows 10)

let test_remember_restore () =
  let fde =
    {
      Eh_frame.pc_begin = 0;
      pc_range = 64;
      lsda = None;
      instrs =
        [
          Cfi.Advance_loc 1;
          Cfi.Def_cfa_offset 16;
          Cfi.Advance_loc 9;
          Cfi.Remember_state;
          Cfi.Advance_loc 2;
          Cfi.Def_cfa_offset 8;
          (* inline epilogue *)
          Cfi.Advance_loc 8;
          Cfi.Restore_state;
          (* back to offset 16 *)
        ];
    }
  in
  let rows = Cfa_table.rows ~cie:figure4_cie fde in
  check (Alcotest.option Alcotest.int) "inside epilogue" (Some 0)
    (Cfa_table.height_at rows 13);
  check (Alcotest.option Alcotest.int) "after restore" (Some 8)
    (Cfa_table.height_at rows 20);
  check Alcotest.bool "still complete" true (Cfa_table.complete_rsp_heights rows)

let test_height_oracle () =
  let oracle = Height_oracle.create [ figure4_cie ] in
  check (Alcotest.option Alcotest.int) "abs height" (Some 24)
    (Height_oracle.height_at oracle (0xb0 + 0x20));
  check Alcotest.bool "complete" true (Height_oracle.complete_at oracle 0xb0);
  check (Alcotest.option Alcotest.int) "outside" None
    (Height_oracle.height_at oracle 0x500);
  match Height_oracle.fde_starting_at oracle 0xb0 with
  | Some f -> check Alcotest.int "fde lookup" 56 f.pc_range
  | None -> Alcotest.fail "fde_starting_at"

(* Unwinder: simulate the Figure 4 function mid-body and unwind one frame.
   Stack layout at offset 0x20 (height 24): [rsp] pad, [rsp+8] rbx,
   [rsp+16] rbp, [rsp+24] return address. *)
let test_unwind_figure4 () =
  let rsp = 0x7fff0000 in
  let ra = 0x404242 in
  let mem = Hashtbl.create 8 in
  Hashtbl.replace mem (rsp + 8) 0x1111;
  (* saved rbx *)
  Hashtbl.replace mem (rsp + 16) 0x2222;
  (* saved rbp *)
  Hashtbl.replace mem (rsp + 24) ra;
  let oracle = Height_oracle.create [ figure4_cie ] in
  let m =
    {
      Unwind.pc = 0xb0 + 0x20;
      regs = [ (Cfa_table.dw_rsp, rsp); (6, 0xdead); (3, 0xbeef) ];
      read_u64 = (fun a -> Hashtbl.find_opt mem a);
    }
  in
  match Unwind.step oracle m with
  | Error _ -> Alcotest.fail "unwind failed"
  | Ok f ->
      check Alcotest.int "cfa" (rsp + 32) f.cfa;
      check Alcotest.int "return address" ra f.return_address;
      check (Alcotest.option Alcotest.int) "rbx restored" (Some 0x1111)
        (List.assoc_opt 3 f.caller_regs);
      check (Alcotest.option Alcotest.int) "rbp restored" (Some 0x2222)
        (List.assoc_opt 6 f.caller_regs);
      check (Alcotest.option Alcotest.int) "rsp is cfa" (Some (rsp + 32))
        (List.assoc_opt Cfa_table.dw_rsp f.caller_regs)

let test_unwind_no_fde () =
  let oracle = Height_oracle.create [ figure4_cie ] in
  let m =
    { Unwind.pc = 0x9999; regs = [ (7, 0) ]; read_u64 = (fun _ -> None) }
  in
  match Unwind.step oracle m with
  | Error (Unwind.No_fde 0x9999) -> ()
  | _ -> Alcotest.fail "expected No_fde"

(* Property: random push/sub CFI programs produce heights that match a
   direct simulation. *)
let prop_heights_match_simulation =
  QCheck.Test.make ~name:"cfa rows match simulated stack heights" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) (QCheck.int_range 1 6))
    (fun deltas ->
      (* build: at offset i+1, stack grows by deltas[i]*8 bytes *)
      let instrs =
        List.concat
          (List.mapi
             (fun _i d ->
               [ Cfi.Advance_loc 1; Cfi.Def_cfa_offset (8 + (8 * d)) ])
             deltas)
      in
      let fde =
        { Eh_frame.pc_begin = 0; pc_range = List.length deltas + 2; lsda = None; instrs }
      in
      let rows = Cfa_table.rows ~cie:figure4_cie fde in
      let ok = ref (Cfa_table.height_at rows 0 = Some 0) in
      List.iteri
        (fun i d ->
          if Cfa_table.height_at rows (i + 1) <> Some (8 * d) then ok := false)
        deltas;
      !ok)

let suite =
  [
    Alcotest.test_case "cfi codec roundtrip" `Quick test_cfi_roundtrip;
    Alcotest.test_case "eh_frame codec roundtrip" `Quick test_eh_frame_roundtrip;
    Alcotest.test_case "eh_frame empty/terminator" `Quick test_eh_frame_terminator_and_empty;
    Alcotest.test_case "figure 4 heights" `Quick test_figure4_heights;
    Alcotest.test_case "rbp-based CFI is incomplete" `Quick test_rbp_based_incomplete;
    Alcotest.test_case "remember/restore state" `Quick test_remember_restore;
    Alcotest.test_case "height oracle" `Quick test_height_oracle;
    Alcotest.test_case "unwind figure 4 frame" `Quick test_unwind_figure4;
    Alcotest.test_case "unwind without FDE fails" `Quick test_unwind_no_fde;
    QCheck_alcotest.to_alcotest prop_heights_match_simulation;
  ]

(* --- personality / LSDA augmentations and .eh_frame_hdr --- *)

let test_personality_lsda_roundtrip () =
  let fde_with =
    Eh_frame.make_fde ~lsda:0x6f0010 ~pc_begin:0x1000 ~pc_range:32
      [ Cfi.Advance_loc 4; Cfi.Def_cfa_offset 16 ]
  in
  let fde_without = Eh_frame.make_fde ~pc_begin:0x1040 ~pc_range:16 [] in
  let cies =
    [ Eh_frame.default_cie ~personality:0x402000 ~fdes:[ fde_with; fde_without ] () ]
  in
  let encoded = Eh_frame.encode ~addr:0x700000 cies in
  match Eh_frame.decode ~addr:0x700000 encoded with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok [ cie ] ->
      check (Alcotest.option Alcotest.int) "personality" (Some 0x402000)
        cie.personality;
      (match cie.fdes with
      | [ a; b ] ->
          check (Alcotest.option Alcotest.int) "lsda kept" (Some 0x6f0010) a.lsda;
          check (Alcotest.option Alcotest.int) "no lsda" None b.lsda
      | _ -> Alcotest.fail "fde count");
      (* heights still work through the augmented CIE *)
      let rows = Cfa_table.rows ~cie (List.hd cie.fdes) in
      check (Alcotest.option Alcotest.int) "height" (Some 8)
        (Cfa_table.height_at rows 6)
  | Ok _ -> Alcotest.fail "cie count"

let test_eh_frame_hdr_roundtrip () =
  let index = [ (0x1400, 0x700040); (0x1000, 0x700010); (0x1200, 0x700028) ] in
  let encoded = Eh_frame_hdr.encode ~addr:0x6ff000 ~eh_frame_addr:0x700000 index in
  match Eh_frame_hdr.decode ~addr:0x6ff000 encoded with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok h ->
      check Alcotest.int "eh_frame ptr" 0x700000 h.eh_frame_ptr;
      check Alcotest.int "entries" 3 (Array.length h.entries);
      (* sorted by pc *)
      check Alcotest.int "first pc" 0x1000 (fst h.entries.(0));
      (* binary search semantics *)
      check (Alcotest.option Alcotest.int) "exact" (Some 0x700010)
        (Eh_frame_hdr.search h 0x1000);
      check (Alcotest.option Alcotest.int) "inside" (Some 0x700028)
        (Eh_frame_hdr.search h 0x13ff);
      check (Alcotest.option Alcotest.int) "last" (Some 0x700040)
        (Eh_frame_hdr.search h 0x9999);
      check (Alcotest.option Alcotest.int) "before all" None
        (Eh_frame_hdr.search h 0xfff)

let suite =
  suite
  @ [
      Alcotest.test_case "personality/LSDA roundtrip" `Quick
        test_personality_lsda_roundtrip;
      Alcotest.test_case "eh_frame_hdr roundtrip + search" `Quick
        test_eh_frame_hdr_roundtrip;
    ]

(* Property: arbitrary CFI-sane FDE sets round-trip through the eh_frame
   codec (pc values, ranges and instruction streams survive). *)
let prop_eh_frame_roundtrip =
  let gen =
    QCheck.Gen.(
      let instr =
        oneof
          [
            (let* d = int_range 1 5000 in return (Cfi.Advance_loc d));
            (let* o = int_range 8 512 in return (Cfi.Def_cfa_offset o));
            (let* r = int_bound 15 and* o = int_range 1 16 in
             return (Cfi.Offset (r, o)));
            (let* r = int_bound 15 in return (Cfi.Restore r));
            return Cfi.Remember_state;
            return Cfi.Restore_state;
          ]
      in
      let fde =
        let* pc = int_range 0x1000 0x100000 in
        let* range = int_range 1 4096 in
        let* instrs = list_size (int_bound 8) instr in
        return (Eh_frame.make_fde ~pc_begin:pc ~pc_range:range instrs)
      in
      list_size (int_range 1 6) fde)
  in
  QCheck.Test.make ~name:"eh_frame roundtrip on arbitrary FDEs" ~count:200
    (QCheck.make gen)
    (fun fdes ->
      let cies = [ Eh_frame.default_cie ~fdes () ] in
      let addr = 0x700000 in
      match Eh_frame.decode ~addr (Eh_frame.encode ~addr cies) with
      | Error _ -> false
      | Ok [ cie ] ->
          let strip l = List.filter (fun i -> i <> Cfi.Nop) l in
          List.length cie.fdes = List.length fdes
          && List.for_all2
               (fun (a : Eh_frame.fde) (b : Eh_frame.fde) ->
                 a.pc_begin = b.pc_begin && a.pc_range = b.pc_range
                 && strip a.instrs = strip b.instrs)
               cie.fdes fdes
      | Ok _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_eh_frame_roundtrip ]
