(* Tests for fetch.baselines: each tool model's characteristic behaviour on
   purpose-built binaries. *)

open Fetch_synth
open Fetch_baselines

let check = Alcotest.check

let profile = Profile.make Profile.Synthgcc Profile.O2

let build ?(spec = Gen.default_spec) ?(seed = 555) () =
  let b = Link.build_random ~profile ~seed { spec with Gen.n_funcs = 40 } in
  let stripped = Fetch_elf.Image.strip b.image in
  (b, Fetch_analysis.Loaded.load stripped)

let score (b : Link.built) detected =
  let truth = Truth.starts b.truth in
  let fp = List.filter (fun d -> not (List.mem d truth)) detected in
  let fn = List.filter (fun t -> not (List.mem t detected)) truth in
  (List.length fp, List.length fn)

let test_all_tools_run () =
  let b, loaded = build () in
  List.iter
    (fun (tool : Tools.t) ->
      let detected = tool.detect loaded in
      check Alcotest.bool (tool.name ^ " finds functions") true
        (List.length detected > 10);
      (* every tool finds main's address or at least the entry *)
      ignore (score b detected))
    Tools.all

let test_fde_tools_beat_pattern_tools () =
  (* aggregate over a few seeds to avoid flakiness *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun seed ->
      let b, loaded = build ~seed () in
      List.iter
        (fun (tool : Tools.t) ->
          let fp, fn = score b (tool.detect loaded) in
          let pfp, pfn =
            Option.value ~default:(0, 0) (Hashtbl.find_opt totals tool.name)
          in
          Hashtbl.replace totals tool.name (pfp + fp, pfn + fn))
        Tools.all)
    [ 1; 2; 3; 4 ];
  let fn_of name = snd (Hashtbl.find totals name) in
  let fp_of name = fst (Hashtbl.find totals name) in
  (* FETCH coverage beats every non-FDE tool *)
  List.iter
    (fun t ->
      check Alcotest.bool ("FETCH FN <= " ^ t) true (fn_of "FETCH" <= fn_of t))
    [ "DYNINST"; "BAP"; "RADARE2"; "NUCLEUS"; "IDA Pro" ];
  (* BAP is the false-positive champion, as in Table III *)
  List.iter
    (fun t ->
      check Alcotest.bool ("BAP FP >= " ^ t) true (fp_of "BAP" >= fp_of t))
    [ "DYNINST"; "RADARE2"; "IDA Pro"; "FETCH" ];
  (* RADARE2 conservative: fewest FPs among pattern tools *)
  check Alcotest.bool "RADARE2 FP small" true (fp_of "RADARE2" <= fp_of "DYNINST")

let test_ghidra_thunk_heuristic_fp () =
  (* entry-jump (rotated-loop) functions trick the thunk heuristic *)
  let found = ref false in
  List.iter
    (fun seed ->
      if not !found then begin
        let b, loaded = build ~seed () in
        let no_thunk =
          Ghidra_model.detect
            ~config:
              { recursive = true; cfr = false; thunks = false; fsig = false; tcall = false }
            loaded
        in
        let with_thunk =
          Ghidra_model.detect
            ~config:
              { recursive = true; cfr = false; thunks = true; fsig = false; tcall = false }
            loaded
        in
        let fp_no, _ = score b no_thunk in
        let fp_with, _ = score b with_thunk in
        if fp_with > fp_no then found := true
      end)
    [ 10; 11; 12; 13; 14; 15; 16; 17 ];
  check Alcotest.bool "thunk heuristic introduces FPs on some binary" true !found

let test_ghidra_cfr_loses_coverage () =
  (* Os binaries (no alignment) suffer from control-flow repair *)
  let p = Profile.make Profile.Synthgcc Profile.Os in
  let lost = ref false in
  List.iter
    (fun seed ->
      let b = Link.build_random ~profile:p ~seed { Gen.default_spec with n_funcs = 50 } in
      let loaded = Fetch_analysis.Loaded.load (Fetch_elf.Image.strip b.image) in
      let with_cfr =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = true; thunks = false; fsig = false; tcall = false }
          loaded
      in
      let without =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = false; thunks = false; fsig = false; tcall = false }
          loaded
      in
      let _, fn_with = score b with_cfr in
      let _, fn_without = score b without in
      if fn_with > fn_without then lost := true)
    [ 20; 21; 22; 23; 24 ];
  check Alcotest.bool "CFR removes true starts on some Os binary" true !lost

let test_ghidra_tcall_floods_fps () =
  (* the far-jump heuristic needs binaries with larger function bodies *)
  let p = Profile.make Profile.Synthgcc Profile.O3 in
  let fp_base = ref 0 and fp_tcall = ref 0 in
  List.iter
    (fun seed ->
      let b = Link.build_random ~profile:p ~seed { Gen.default_spec with n_funcs = 60 } in
      let loaded = Fetch_analysis.Loaded.load (Fetch_elf.Image.strip b.image) in
      let run tcall =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = false; thunks = true; fsig = true; tcall }
          loaded
      in
      let f0, _ = score b (run false) in
      let f1, _ = score b (run true) in
      fp_base := !fp_base + f0;
      fp_tcall := !fp_tcall + f1)
    [ 50; 51; 52 ];
  check Alcotest.bool "tcall adds many FPs" true (!fp_tcall > !fp_base + 5)

let test_angr_scan_kills_accuracy () =
  let b, loaded = build () in
  let base = Angr_model.detect loaded in
  let scan =
    Angr_model.detect
      ~config:
        { recursive = true; merge = true; alignment = true; fsig = true;
          tcall = false; scan = true }
      loaded
  in
  let fp_base, _ = score b base in
  let fp_scan, _ = score b scan in
  check Alcotest.bool "scan adds FPs" true (fp_scan >= fp_base)

let test_angr_tcall_finds_tail_only () =
  (* the angr-style tail-call split finds tail-only-reachable functions *)
  let spec = { Gen.default_spec with Gen.n_asm_tailonly = 2 } in
  let hit = ref false in
  List.iter
    (fun seed ->
      let b, loaded = build ~spec ~seed () in
      let base = Angr_model.detect loaded in
      let tc =
        Angr_model.detect
          ~config:
            { recursive = true; merge = true; alignment = true; fsig = true;
              tcall = true; scan = false }
          loaded
      in
      let _, fn_base = score b base in
      let _, fn_tc = score b tc in
      if fn_tc < fn_base then hit := true)
    [ 30; 31; 32; 33; 34 ];
  check Alcotest.bool "tcall recovers tail-only functions somewhere" true !hit

let test_nucleus_merges_tail_targets () =
  (* functions reachable only via jmp get grouped with their caller *)
  let spec = { Gen.default_spec with Gen.n_asm_tailonly = 2 } in
  let merged = ref false in
  List.iter
    (fun seed ->
      let b, loaded = build ~spec ~seed () in
      let detected = Pattern_tools.Nucleus.detect loaded in
      List.iter
        (fun (f : Truth.fn_truth) ->
          if f.tail_only && not (List.mem f.start detected) then merged := true)
        b.truth.fns)
    [ 40; 41; 42 ];
  check Alcotest.bool "nucleus misses some tail-only function" true !merged

let test_heuristics_alignment_finds_unreachable () =
  let spec = { Gen.default_spec with Gen.n_asm_unreachable = 2 } in
  let b, loaded = build ~spec ~seed:77 () in
  let res =
    Fetch_analysis.Recursive.run loaded ~seeds:loaded.Fetch_analysis.Loaded.fde_starts
  in
  let found = Heuristics.alignment_starts loaded res in
  let unreachable =
    List.filter (fun (f : Truth.fn_truth) -> f.unreachable) b.truth.fns
  in
  check Alcotest.bool "has unreachable fns" true (unreachable <> []);
  check Alcotest.bool "alignment heuristic finds at least one" true
    (List.exists (fun (f : Truth.fn_truth) -> List.mem f.start found) unreachable)

let suite =
  [
    Alcotest.test_case "all tools run" `Quick test_all_tools_run;
    Alcotest.test_case "FDE tools beat pattern tools" `Quick test_fde_tools_beat_pattern_tools;
    Alcotest.test_case "ghidra thunk heuristic FPs" `Quick test_ghidra_thunk_heuristic_fp;
    Alcotest.test_case "ghidra CFR loses coverage" `Quick test_ghidra_cfr_loses_coverage;
    Alcotest.test_case "ghidra tcall floods FPs" `Quick test_ghidra_tcall_floods_fps;
    Alcotest.test_case "angr scan hurts accuracy" `Quick test_angr_scan_kills_accuracy;
    Alcotest.test_case "angr tcall finds tail-only fns" `Quick test_angr_tcall_finds_tail_only;
    Alcotest.test_case "nucleus merges tail targets" `Quick test_nucleus_merges_tail_targets;
    Alcotest.test_case "alignment heuristic finds unreachable" `Quick test_heuristics_alignment_finds_unreachable;
  ]
