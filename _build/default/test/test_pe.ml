(* Tests for fetch.pe: PE32+ codec, UNWIND_INFO codec, exception-directory
   generation (the §VII-B generality study substrate). *)

open Fetch_pe

let check = Alcotest.check

let sample_pe =
  {
    Image.image_base = 0x140000000;
    entry_rva = 0x1000;
    sections =
      [
        {
          Image.pname = ".text";
          rva = 0x1000;
          data = "\x48\x83\xec\x28\x90\x48\x83\xc4\x28\xc3";
          characteristics =
            Image.scn_code lor Image.scn_mem_execute lor Image.scn_mem_read;
        };
        {
          Image.pname = ".xdata";
          rva = 0x2000;
          data = "\x01\x04\x01\x00\x04\x42\x00\x00";
          characteristics = Image.scn_initialized_data lor Image.scn_mem_read;
        };
      ];
    pdata = [ { Image.begin_rva = 0x1000; end_rva = 0x100a; unwind_rva = 0x2000 } ];
  }

let test_pe_roundtrip () =
  let raw = Encode.encode sample_pe in
  check Alcotest.string "MZ magic" "MZ" (String.sub raw 0 2);
  match Decode.decode raw with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok pe ->
      check Alcotest.int "image base" sample_pe.image_base pe.image_base;
      check Alcotest.int "entry" sample_pe.entry_rva pe.entry_rva;
      let text = Option.get (Image.section pe ".text") in
      check Alcotest.string "text data"
        (Option.get (Image.section sample_pe ".text")).data text.data;
      check Alcotest.int "one runtime function" 1 (List.length pe.pdata);
      let rf = List.hd pe.pdata in
      check Alcotest.int "begin rva" 0x1000 rf.begin_rva;
      check Alcotest.int "end rva" 0x100a rf.end_rva;
      check Alcotest.int "unwind rva" 0x2000 rf.unwind_rva;
      check (Alcotest.list Alcotest.int) "pdata starts"
        [ 0x140001000 ]
        (Image.pdata_starts pe)

let test_pe_rejects_garbage () =
  check Alcotest.bool "short" true (Result.is_error (Decode.decode "MZ"));
  check Alcotest.bool "not pe" true
    (Result.is_error (Decode.decode (String.make 4096 'A')))

let test_unwind_info_roundtrip () =
  let infos =
    [
      { Unwind_info.prolog_size = 4; frame_reg = 0; frame_offset = 0;
        codes = [ (4, Unwind_info.Alloc_small 40); (1, Unwind_info.Push_nonvol 3) ] };
      { Unwind_info.prolog_size = 11; frame_reg = 5; frame_offset = 0;
        codes =
          [ (11, Unwind_info.Alloc_large 4096); (4, Unwind_info.Set_fpreg);
            (1, Unwind_info.Push_nonvol 5) ] };
      { Unwind_info.prolog_size = 0; frame_reg = 0; frame_offset = 0; codes = [] };
    ]
  in
  List.iter
    (fun info ->
      match Unwind_info.decode (Unwind_info.encode info) with
      | Error e -> Alcotest.failf "unwind decode: %s" e
      | Ok info' ->
          check Alcotest.int "prolog" info.prolog_size info'.prolog_size;
          check Alcotest.int "frame reg" info.frame_reg info'.frame_reg;
          check Alcotest.bool "codes" true
            (List.sort compare info.codes = List.sort compare info'.codes))
    infos

let test_frame_size () =
  let info =
    { Unwind_info.prolog_size = 5; frame_reg = 0; frame_offset = 0;
      codes = [ (5, Unwind_info.Alloc_small 32); (1, Unwind_info.Push_nonvol 3) ] }
  in
  check Alcotest.int "frame size" 40 (Unwind_info.frame_size info)

let test_pe_gen_coverage () =
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let built =
    Fetch_synth.Link.build_random ~profile ~seed:808
      { Fetch_synth.Gen.default_spec with n_funcs = 60 }
  in
  let pe = Pe_gen.of_built built in
  let raw = Encode.encode pe in
  let pe = Result.get_ok (Decode.decode raw) in
  let starts =
    List.map (fun (rf : Image.runtime_function) -> rf.begin_rva + 0x400000) pe.pdata
    |> List.sort_uniq compare
  in
  let truth = built.truth in
  let covered, leaves =
    List.fold_left
      (fun (c, l) (f : Fetch_synth.Truth.fn_truth) ->
        if List.mem f.start starts then (c + 1, l)
        else if f.leaf then (c, l + 1)
        else Alcotest.failf "non-leaf %s missing from .pdata" f.name)
      (0, 0) truth.fns
    in
  check Alcotest.int "all functions accounted" (List.length truth.fns)
    (covered + leaves);
  let ratio = float_of_int covered /. float_of_int (List.length truth.fns) in
  check Alcotest.bool "coverage in the paper's band" true
    (ratio >= 0.55 && ratio <= 0.95);
  (* every record's unwind info parses, and part starts beyond the entry
     appear as extra records (the PE multi-part ambiguity) *)
  let xdata = Option.get (Image.section pe ".xdata") in
  List.iter
    (fun (rf : Image.runtime_function) ->
      let off = rf.unwind_rva - xdata.rva in
      check Alcotest.bool "unwind info parses" true
        (Result.is_ok
           (Unwind_info.decode
              (String.sub xdata.data off (String.length xdata.data - off)))))
    pe.pdata;
  let part_starts =
    List.map (fun a -> a + 0x400000) []
    @ List.map (fun p -> p) (Fetch_synth.Truth.part_starts truth)
  in
  List.iter
    (fun p ->
      check Alcotest.bool "cold part has its own record" true
        (List.mem p starts
        ||
        (* unless its function is leaf (never: cold implies framed) *)
        false))
    part_starts

let suite =
  [
    Alcotest.test_case "PE32+ roundtrip" `Quick test_pe_roundtrip;
    Alcotest.test_case "PE rejects garbage" `Quick test_pe_rejects_garbage;
    Alcotest.test_case "UNWIND_INFO roundtrip" `Quick test_unwind_info_roundtrip;
    Alcotest.test_case "frame size" `Quick test_frame_size;
    Alcotest.test_case "pe_gen coverage band" `Quick test_pe_gen_coverage;
  ]

(* Property: arbitrary unwind-code lists round-trip. *)
let prop_unwind_roundtrip =
  let gen =
    QCheck.Gen.(
      let code =
        oneof
          [
            (let* r = int_bound 15 in return (Unwind_info.Push_nonvol r));
            (let* n = int_range 1 16 in return (Unwind_info.Alloc_small (n * 8)));
            (let* n = int_range 17 4000 in return (Unwind_info.Alloc_large (n * 8)));
            return Unwind_info.Set_fpreg;
          ]
      in
      let* codes = list_size (int_bound 6) code in
      let* prolog = int_bound 60 in
      return
        {
          Unwind_info.prolog_size = prolog;
          frame_reg = 0;
          frame_offset = 0;
          codes = List.mapi (fun i c -> (max 0 (prolog - i), c)) codes;
        })
  in
  QCheck.Test.make ~name:"UNWIND_INFO roundtrip on arbitrary codes" ~count:300
    (QCheck.make gen)
    (fun info ->
      match Unwind_info.decode (Unwind_info.encode info) with
      | Error _ -> false
      | Ok info' ->
          info'.prolog_size = info.prolog_size
          && List.sort compare info'.codes = List.sort compare info.codes)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_unwind_roundtrip ]
