lib/x86/encode.ml: Byte_buf Fetch_util Insn Int64 List Printf Reg
