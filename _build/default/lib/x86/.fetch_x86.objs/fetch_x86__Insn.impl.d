lib/x86/insn.ml: Buffer Printf Reg
