lib/x86/decode.ml: Char Insn Reg String
