lib/x86/asm.mli: Hashtbl Insn
