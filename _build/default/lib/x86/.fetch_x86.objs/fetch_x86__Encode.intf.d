lib/x86/encode.mli: Fetch_util Insn
