lib/x86/semantics.ml: Insn List Reg
