lib/x86/semantics.mli: Insn Reg
