lib/x86/asm.ml: Encode Fetch_util Hashtbl Insn List Printf String
