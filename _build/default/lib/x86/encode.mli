(** x86-64 instruction encoder.

    Encodings follow what GCC/Clang emit for the same instruction forms,
    so the decoder and prologue pattern library see realistic bytes.
    Raises [Invalid_argument] on operand combinations outside the
    supported subset (e.g. immediate overflow, mem-to-mem moves). *)

(** [emit buf ~addr ~resolve insn] appends the machine encoding of
    [insn], which is assumed to start at virtual address [addr];
    [resolve] maps symbolic control-flow / RIP-relative targets to
    absolute addresses (the assembler provides it). *)
val emit :
  Fetch_util.Byte_buf.t ->
  addr:int ->
  resolve:(Insn.target -> int) ->
  Insn.t ->
  unit

(** Encoded size of an instruction.  Sizes do not depend on target
    resolution. *)
val size : Insn.t -> int
