(** x86-64 instruction decoder (disassembler).

    The supported subset is a superset of what {!Encode} emits; bytes
    outside it are treated as invalid, which is the "invalid opcode"
    error used by the paper's conservative pointer-validation pass
    (§IV-E). *)

(** [decode data ~pos ~addr] decodes one instruction starting at byte
    offset [pos] (default 0) within [data] (bounded by [len] when given),
    where that byte lives at virtual address [addr].  Returns the
    instruction and its encoded length, or [None] when the bytes do not
    form an instruction in the supported subset.  Control-flow targets
    come back as absolute [To_addr] values. *)
val decode : ?pos:int -> ?len:int -> addr:int -> string -> (Insn.t * int) option
