(** x86-64 general-purpose registers. *)

type t =
  | Rax
  | Rcx
  | Rdx
  | Rbx
  | Rsp
  | Rbp
  | Rsi
  | Rdi
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [| Rax; Rcx; Rdx; Rbx; Rsp; Rbp; Rsi; Rdi; R8; R9; R10; R11; R12; R13; R14; R15 |]

(** Hardware encoding number (0–15), as used in ModRM/SIB/REX. *)
let number = function
  | Rax -> 0
  | Rcx -> 1
  | Rdx -> 2
  | Rbx -> 3
  | Rsp -> 4
  | Rbp -> 5
  | Rsi -> 6
  | Rdi -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_number n =
  if n < 0 || n > 15 then invalid_arg "Reg.of_number";
  all.(n)

(** DWARF register number, as used in CFI (note rsp = 7, rbp = 6). *)
let dwarf_number = function
  | Rax -> 0
  | Rdx -> 1
  | Rcx -> 2
  | Rbx -> 3
  | Rsi -> 4
  | Rdi -> 5
  | Rbp -> 6
  | Rsp -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let name64 = function
  | Rax -> "rax"
  | Rcx -> "rcx"
  | Rdx -> "rdx"
  | Rbx -> "rbx"
  | Rsp -> "rsp"
  | Rbp -> "rbp"
  | Rsi -> "rsi"
  | Rdi -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let name32 = function
  | Rax -> "eax"
  | Rcx -> "ecx"
  | Rdx -> "edx"
  | Rbx -> "ebx"
  | Rsp -> "esp"
  | Rbp -> "ebp"
  | Rsi -> "esi"
  | Rdi -> "edi"
  | r -> name64 r ^ "d"

(** System-V integer argument registers, in order. *)
let args = [ Rdi; Rsi; Rdx; Rcx; R8; R9 ]

let is_arg r = List.mem r args

(** Callee-saved registers under the System-V ABI. *)
let callee_saved = [ Rbx; Rbp; R12; R13; R14; R15 ]

let is_callee_saved r = List.mem r callee_saved

let equal (a : t) b = a = b
let compare (a : t) b = compare (number a) (number b)
let pp fmt r = Format.pp_print_string fmt (name64 r)
