(** x86-64 general-purpose registers. *)

type t =
  | Rax
  | Rcx
  | Rdx
  | Rbx
  | Rsp
  | Rbp
  | Rsi
  | Rdi
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

(** All sixteen registers, in hardware-number order. *)
val all : t array

(** Hardware encoding number (0–15), as used in ModRM/SIB/REX. *)
val number : t -> int

(** Inverse of {!number}; raises [Invalid_argument] outside 0–15. *)
val of_number : int -> t

(** DWARF register number, as used in CFI (note rsp = 7, rbp = 6). *)
val dwarf_number : t -> int

val name64 : t -> string
val name32 : t -> string

(** System-V integer argument registers, in order:
    rdi, rsi, rdx, rcx, r8, r9. *)
val args : t list

val is_arg : t -> bool

(** Callee-saved registers under the System-V ABI. *)
val callee_saved : t list

val is_callee_saved : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
