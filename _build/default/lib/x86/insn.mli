(** x86-64 instruction AST.

    The subset covers everything the synthetic compiler emits plus the
    encodings real compilers commonly produce for those constructs, so
    the decoder can round-trip generated code and reject arbitrary data
    with a realistic probability.  Operation width is 64 or 32 bits
    (8/16-bit operations are not needed by any analysis in the paper). *)

type width = W32 | W64

(** Control-flow or data target, symbolic until the assembler lays code
    out. *)
type target = To_label of string | To_addr of int

(** Memory operand: [\[base + index*scale + disp\]], or RIP-relative.  A
    RIP-relative operand may carry a symbolic target ([rip_sym]); the
    encoder then computes the displacement from the resolved address. *)
type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** (register, scale in 1/2/4/8) *)
  disp : int;
  rip_rel : bool;  (** when set, [base]/[index] must be [None] *)
  rip_sym : target option;  (** symbolic RIP-relative destination *)
}

(** Plain memory operand constructor. *)
val mem : ?base:Reg.t -> ?index:Reg.t * int -> ?disp:int -> unit -> mem

(** Concrete RIP-relative operand with a fixed displacement. *)
val rip_rel : int -> mem

(** Symbolic RIP-relative operand, resolved at encode time. *)
val rip_sym : target -> mem

type operand = Reg of Reg.t | Imm of int | Mem of mem

type cond = E | Ne | L | Le | G | Ge | B | Be | A | Ae | S | Ns | O | No | P | Np

type arith = Add | Sub | And | Or | Xor | Cmp

type t =
  | Push of Reg.t
  | Pop of Reg.t
  | Mov of width * operand * operand  (** dst, src *)
  | Movabs of Reg.t * int  (** 64-bit immediate load *)
  | Lea of Reg.t * mem
  | Arith of arith * width * operand * operand  (** dst, src *)
  | Test of width * Reg.t * Reg.t
  | Imul of Reg.t * operand
  | Shift of [ `Shl | `Shr | `Sar ] * Reg.t * int
  | Neg of width * Reg.t
  | Inc of Reg.t
  | Dec of Reg.t
  | Movsxd of Reg.t * mem  (** sign-extending 32→64 load (jump tables) *)
  | Movzx of Reg.t * [ `B8 | `B16 ] * operand
      (** zero-extending load from an 8/16-bit register or memory *)
  | Movsx of Reg.t * [ `B8 | `B16 ] * operand  (** sign-extending variant *)
  | Setcc of cond * Reg.t  (** write condition flag into the low byte *)
  | Cmov of cond * Reg.t * operand  (** conditional move (64-bit) *)
  | Div of width * Reg.t  (** unsigned divide rdx:rax by the register *)
  | Idiv of width * Reg.t
  | Mul of width * Reg.t
  | Cqo  (** sign-extend rax into rdx:rax (cdq for 32-bit) *)
  | Cdq
  | Not of width * Reg.t
  | Xchg of Reg.t * Reg.t
  | Push_imm of int
  | Test_imm of width * Reg.t * int
  | Call of target
  | Call_ind of operand
  | Jmp of target
  | Jmp_short of target  (** rel8 encoding *)
  | Jmp_ind of operand
  | Jcc of cond * target
  | Jcc_short of cond * target
  | Ret
  | Leave
  | Nop of int  (** canonical multi-byte NOP of the given length, 1–9 *)
  | Endbr64
  | Ud2
  | Int3
  | Hlt
  | Syscall
  | Cpuid

(** {1 Condition codes} *)

val cond_name : cond -> string

(** The 4-bit [tttn] field of the 0F 8x / 7x opcodes. *)
val cond_code : cond -> int

val cond_of_code : int -> cond

(** {1 Printing} *)

val arith_name : arith -> string
val reg_name : width -> Reg.t -> string
val mem_to_string : mem -> string
val operand_to_string : width -> operand -> string
val target_to_string : target -> string

(** Intel-ish rendering, e.g. ["mov rax, [rbp-0x8]"]. *)
val to_string : t -> string

(** {1 Traversal} *)

(** Apply a function to every memory operand of the instruction. *)
val map_mem : (mem -> mem) -> t -> t

(** The symbolic RIP-relative target of the instruction, if any. *)
val rip_sym_of : t -> target option
