(** Two-pass assembler: lays out a stream of instructions, labels,
    alignment and raw bytes at a base virtual address, resolving symbolic
    targets.

    The synthetic compiler assembles a whole [.text] section as one
    stream with program-unique labels, then reads the label map back to
    build symbol tables, FDEs and jump tables. *)

type item =
  | Label of string
  | I of Insn.t
  | Align of int  (** pad with canonical NOPs to the given power-of-two *)
  | Align_with of int * int  (** pad to alignment with the given byte *)
  | Raw of string  (** verbatim bytes (hand-written machine code, junk) *)

type result = {
  base : int;
  code : string;
  labels : (string, int) Hashtbl.t;
}

(** [assemble ~base items] lays the stream out at virtual address [base].
    Raises [Invalid_argument] on duplicate or undefined labels. *)
val assemble : base:int -> item list -> result

(** Address of a label; raises [Invalid_argument] if undefined. *)
val label_addr : result -> string -> int
