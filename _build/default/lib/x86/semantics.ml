(** Per-instruction semantic summaries used by the analyses: control flow,
    stack-pointer effect, and register use/def sets. *)

open Insn

(** A control-flow destination after decoding: direct targets are absolute
    addresses, indirect ones carry the operand for jump-table analysis. *)
type dest = Direct of int | Indirect of operand

type flow =
  | Fall  (** execution continues at the next instruction only *)
  | Jump of dest
  | Cond of int  (** taken target; also falls through *)
  | Callf of dest
  | Ret
  | Halt  (** ud2 / hlt / int3: execution cannot continue *)

let addr_of_target = function
  | To_addr a -> a
  | To_label _ -> invalid_arg "Semantics: unresolved label"

(** [flow insn] classifies a decoded instruction (targets must be
    [To_addr], as the decoder produces). *)
let flow = function
  | Jmp t | Jmp_short t -> Jump (Direct (addr_of_target t))
  | Jmp_ind o -> Jump (Indirect o)
  | Jcc (_, t) | Jcc_short (_, t) -> Cond (addr_of_target t)
  | Call t -> Callf (Direct (addr_of_target t))
  | Call_ind o -> Callf (Indirect o)
  | Ret -> Ret
  | Ud2 | Hlt | Int3 -> Halt
  | Push _ | Pop _ | Mov _ | Movabs _ | Lea _ | Arith _ | Test _ | Imul _
  | Shift _ | Neg _ | Inc _ | Dec _ | Movsxd _ | Movzx _ | Movsx _ | Setcc _
  | Cmov _ | Div _ | Idiv _ | Mul _ | Cqo | Cdq | Not _ | Xchg _ | Push_imm _
  | Test_imm _ | Leave | Nop _ | Endbr64 | Syscall | Cpuid ->
      Fall

(** Effect on [rsp], in bytes ([Some d] means rsp += d); [None] when the
    instruction writes rsp in a way static analysis cannot track without
    more context ([leave], [mov rsp, ...]). *)
let sp_delta = function
  | Push _ | Push_imm _ -> Some (-8)
  | Xchg (a, b) when Reg.equal a Reg.Rsp || Reg.equal b Reg.Rsp -> None
  | Pop Reg.Rsp -> None
  | Pop _ -> Some 8
  | Arith (Sub, W64, Reg Reg.Rsp, Imm v) -> Some (-v)
  | Arith (Add, W64, Reg Reg.Rsp, Imm v) -> Some v
  | Arith ((Add | Sub | And | Or | Xor), _, Reg Reg.Rsp, _) -> None
  | Mov (_, Reg Reg.Rsp, _) -> None
  | Lea (Reg.Rsp, _) -> None
  | Movabs (Reg.Rsp, _) -> None
  | Leave -> None
  | Ret -> Some 8
  | Call _ | Call_ind _ -> Some 0
      (* net effect seen by the caller after the callee returns *)
  | Mov _ | Movabs _ | Lea _ | Arith _ | Test _ | Imul _ | Shift _ | Neg _
  | Inc _ | Dec _ | Movsxd _ | Movzx _ | Movsx _ | Setcc _ | Cmov _ | Div _
  | Idiv _ | Mul _ | Cqo | Cdq | Not _ | Xchg _ | Test_imm _ | Jmp _
  | Jmp_short _ | Jmp_ind _ | Jcc _ | Jcc_short _ | Nop _ | Endbr64 | Ud2
  | Int3 | Hlt | Syscall | Cpuid ->
      Some 0

let mem_regs (m : mem) =
  (match m.base with Some b -> [ b ] | None -> [])
  @ match m.index with Some (r, _) -> [ r ] | None -> []

let operand_reads = function
  | Reg r -> [ r ]
  | Imm _ -> []
  | Mem m -> mem_regs m

(** Registers read by the instruction, for the calling-convention check of
    §IV-E.  [push reg] is treated as a save, not a use (otherwise every
    [push rbp] prologue would violate the rule); reads of [rsp] are never
    reported. *)
let uses insn =
  let raw =
    match insn with
    | Push _ -> []
    | Pop _ -> []
    | Mov (_, Reg _, src) -> operand_reads src
    | Mov (_, Mem m, src) -> mem_regs m @ operand_reads src
    | Mov (_, Imm _, _) -> []
    | Movabs _ -> []
    | Lea (_, m) -> mem_regs m
    | Arith (Xor, _, Reg d, Reg s) when Reg.equal d s -> [] (* zeroing idiom *)
    | Arith (_, _, Reg d, src) -> d :: operand_reads src
    | Arith (_, _, Mem m, src) -> mem_regs m @ operand_reads src
    | Arith (_, _, Imm _, _) -> []
    | Test (_, a, b) -> [ a; b ]
    | Imul (d, src) -> d :: operand_reads src
    | Shift (_, r, _) -> [ r ]
    | Neg (_, r) -> [ r ]
    | Inc r | Dec r -> [ r ]
    | Movsxd (_, m) -> mem_regs m
    | Movzx (_, _, src) | Movsx (_, _, src) -> operand_reads src
    | Setcc _ -> []
    | Cmov (_, d, src) -> d :: operand_reads src
    | Div (_, r) | Idiv (_, r) -> [ Reg.Rax; Reg.Rdx; r ]
    | Mul (_, r) -> [ Reg.Rax; r ]
    | Cqo | Cdq -> [ Reg.Rax ]
    | Not (_, r) -> [ r ]
    | Xchg (a, b) -> [ a; b ]
    | Push_imm _ -> []
    | Test_imm (_, r, _) -> [ r ]
    | Call_ind o | Jmp_ind o -> operand_reads o
    | Call _ | Jmp _ | Jmp_short _ | Jcc _ | Jcc_short _ -> []
    | Ret | Leave | Nop _ | Endbr64 | Ud2 | Int3 | Hlt | Cpuid -> []
    | Syscall -> [ Reg.Rax ]
  in
  List.filter (fun r -> not (Reg.equal r Reg.Rsp)) raw

(** Registers fully (re)defined by the instruction. *)
let defs = function
  | Pop r -> [ r ]
  | Mov (W64, Reg d, _) | Movabs (d, _) | Lea (d, _) | Movsxd (d, _) -> [ d ]
  | Mov (W32, Reg d, _) -> [ d ] (* 32-bit writes zero the upper half *)
  | Arith (Xor, _, Reg d, Reg s) when Reg.equal d s -> [ d ]
  | Arith (Cmp, _, _, _) | Test _ -> []
  | Arith (_, _, Reg d, _) -> [ d ]
  | Imul (d, _) -> [ d ]
  | Shift (_, r, _) -> [ r ]
  | Neg (_, r) -> [ r ]
  | Inc r | Dec r -> [ r ]
  | Movzx (d, _, _) | Movsx (d, _, _) | Cmov (_, d, _) -> [ d ]
  | Div (_, _) | Idiv (_, _) | Mul (_, _) -> [ Reg.Rax; Reg.Rdx ]
  | Cqo | Cdq -> [ Reg.Rdx ]
  | Not (_, r) -> [ r ]
  | Xchg (a, b) -> [ a; b ]
  | Setcc _ -> [] (* writes only the low byte: not a full definition *)
  | Push_imm _ | Test_imm _ -> []
  | Leave -> [ Reg.Rbp ]
  | Syscall -> [ Reg.Rax; Reg.Rcx; Reg.R11 ]
  | Cpuid -> [ Reg.Rax; Reg.Rbx; Reg.Rcx; Reg.Rdx ]
  | Push _ | Mov (_, (Mem _ | Imm _), _) | Arith (_, _, (Mem _ | Imm _), _)
  | Call _ | Call_ind _ | Jmp _ | Jmp_short _ | Jmp_ind _ | Jcc _
  | Jcc_short _ | Ret | Nop _ | Endbr64 | Ud2 | Int3 | Hlt ->
      []
