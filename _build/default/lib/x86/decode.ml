(** x86-64 instruction decoder (disassembler).

    [decode data ~pos ~addr] decodes one instruction starting at byte offset
    [pos], where that byte lives at virtual address [addr]; returns the
    instruction and its encoded length, or [None] when the bytes do not form
    an instruction in the supported subset.  Control-flow targets come back
    as absolute [To_addr] values.

    The subset is a superset of what {!Encode} emits; bytes outside it are
    treated as invalid, which is the "invalid opcode" error used by the
    paper's conservative pointer-validation pass (§IV-E). *)

open Insn

type state = { data : string; mutable pos : int; limit : int }

exception Bad

let byte s =
  if s.pos >= s.limit then raise Bad;
  let v = Char.code (String.unsafe_get s.data s.pos) in
  s.pos <- s.pos + 1;
  v

let peek s = if s.pos >= s.limit then raise Bad else Char.code s.data.[s.pos]

let i8 s =
  let v = byte s in
  if v >= 0x80 then v - 0x100 else v

let i32 s =
  let b0 = byte s in
  let b1 = byte s in
  let b2 = byte s in
  let b3 = byte s in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let i64 s =
  let lo = i32 s land 0xffffffff in
  let hi = i32 s in
  lo lor (hi lsl 32)

type rex = { w : bool; r : bool; x : bool; b : bool }

let no_rex = { w = false; r = false; x = false; b = false }

let reg_of ~ext n = Reg.of_number (n lor if ext then 8 else 0)

(* Decode ModRM (+ SIB + disp).  Returns the reg field value (3 bits,
   extended by REX.R) and the r/m operand. *)
let modrm s rex =
  let m = byte s in
  let md = m lsr 6 in
  let regf = ((m lsr 3) land 7) lor if rex.r then 8 else 0 in
  let rm = m land 7 in
  if md = 3 then (regf, Reg (reg_of ~ext:rex.b rm))
  else if md = 0 && rm = 5 then begin
    (* RIP-relative *)
    let disp = i32 s in
    (regf, Mem { base = None; index = None; disp; rip_rel = true; rip_sym = None })
  end
  else begin
    let base, index =
      if rm = 4 then begin
        let sb = byte s in
        let scale = 1 lsl (sb lsr 6) in
        let idx = (sb lsr 3) land 7 in
        let bse = sb land 7 in
        let index =
          if idx = 4 && not rex.x then None
          else Some (reg_of ~ext:rex.x idx, scale)
        in
        let base =
          if bse = 5 && md = 0 then None else Some (reg_of ~ext:rex.b bse)
        in
        (base, index)
      end
      else (Some (reg_of ~ext:rex.b rm), None)
    in
    let disp =
      match md with
      | 0 -> if base = None then i32 s else 0
      | 1 -> i8 s
      | 2 -> i32 s
      | _ -> assert false
    in
    (regf, Mem { base; index; disp; rip_rel = false; rip_sym = None })
  end

let as_mem = function Mem m -> m | Reg _ | Imm _ -> raise Bad

let width rex = if rex.w then W64 else W32

(* NOP forms: 0F 1F /0 with any addressing mode. *)
let decode_long_nop s rex start_pos =
  let regf, rm = modrm s rex in
  if regf land 7 <> 0 then raise Bad;
  (match rm with Mem _ -> () | Reg _ | Imm _ -> raise Bad);
  Nop (s.pos - start_pos)

let decode_0f s rex prefix66 prefixf3 start_pos addr =
  let op = byte s in
  match op with
  | 0x05 -> Syscall
  | 0x0b -> Ud2
  | 0xa2 -> Cpuid
  | 0x1e when prefixf3 ->
      (* F3 0F 1E FA = endbr64 *)
      if byte s = 0xfa then Endbr64 else raise Bad
  | 0x1f ->
      ignore prefix66;
      decode_long_nop s rex start_pos
  | 0xaf ->
      let regf, rm = modrm s rex in
      if not rex.w then raise Bad;
      let d = Reg.of_number regf in
      (match rm with
      | Reg r -> Imul (d, Reg r)
      | Mem m -> Imul (d, Mem m)
      | Imm _ -> raise Bad)
  | 0xb6 | 0xb7 | 0xbe | 0xbf ->
      let regf, rm = modrm s rex in
      let d = Reg.of_number regf in
      let sz = if op land 1 = 0 then `B8 else `B16 in
      let src = match rm with Reg r -> Reg r | Mem m -> Mem m | Imm _ -> raise Bad in
      if op < 0xbe then Movzx (d, sz, src) else Movsx (d, sz, src)
  | op when op >= 0x90 && op <= 0x9f ->
      let _regf, rm = modrm s rex in
      (match rm with
      | Reg r -> Setcc (cond_of_code (op land 0xf), r)
      | Mem _ | Imm _ -> raise Bad)
  | op when op >= 0x40 && op <= 0x4f ->
      let regf, rm = modrm s rex in
      let d = Reg.of_number regf in
      let src = match rm with Reg r -> Reg r | Mem m -> Mem m | Imm _ -> raise Bad in
      Cmov (cond_of_code (op land 0xf), d, src)
  | op when op >= 0x80 && op <= 0x8f ->
      let rel = i32 s in
      Jcc (cond_of_code (op land 0xf), To_addr (addr + (s.pos - start_pos) + rel))
  | _ -> raise Bad

let decode_one s rex prefix66 prefixf3 start_pos addr =
  let op = byte s in
  match op with
  | _ when op >= 0x50 && op <= 0x57 -> Push (reg_of ~ext:rex.b (op land 7))
  | _ when op >= 0x58 && op <= 0x5f -> Pop (reg_of ~ext:rex.b (op land 7))
  | 0x0f -> decode_0f s rex prefix66 prefixf3 start_pos addr
  | 0x89 ->
      let regf, rm = modrm s rex in
      let src = Reg.of_number regf in
      (match rm with
      | Reg d -> Mov (width rex, Reg d, Reg src)
      | Mem m -> Mov (width rex, Mem m, Reg src)
      | Imm _ -> raise Bad)
  | 0x8b ->
      let regf, rm = modrm s rex in
      let dst = Reg.of_number regf in
      (match rm with
      | Reg r -> Mov (width rex, Reg dst, Reg r)
      | Mem m -> Mov (width rex, Reg dst, Mem m)
      | Imm _ -> raise Bad)
  | 0x8d ->
      let regf, rm = modrm s rex in
      if not rex.w then raise Bad;
      Lea (Reg.of_number regf, as_mem rm)
  | 0x63 ->
      let regf, rm = modrm s rex in
      if not rex.w then raise Bad;
      Movsxd (Reg.of_number regf, as_mem rm)
  | _ when op >= 0xb8 && op <= 0xbf ->
      let r = reg_of ~ext:rex.b (op land 7) in
      if rex.w then Movabs (r, i64 s) else Mov (W32, Reg r, Imm (i32 s))
  | 0xc7 ->
      let regf, rm = modrm s rex in
      if regf land 7 <> 0 then raise Bad;
      let v = i32 s in
      (match rm with
      | Reg d -> Mov (width rex, Reg d, Imm v)
      | Mem m -> Mov (width rex, Mem m, Imm v)
      | Imm _ -> raise Bad)
  | 0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 ->
      let kind =
        match op with
        | 0x01 -> Add | 0x09 -> Or | 0x21 -> And | 0x29 -> Sub
        | 0x31 -> Xor | _ -> Cmp
      in
      let regf, rm = modrm s rex in
      let src = Reg.of_number regf in
      (match rm with
      | Reg d -> Arith (kind, width rex, Reg d, Reg src)
      | Mem m -> Arith (kind, width rex, Mem m, Reg src)
      | Imm _ -> raise Bad)
  | 0x03 | 0x0b | 0x23 | 0x2b | 0x33 | 0x3b ->
      let kind =
        match op with
        | 0x03 -> Add | 0x0b -> Or | 0x23 -> And | 0x2b -> Sub
        | 0x33 -> Xor | _ -> Cmp
      in
      let regf, rm = modrm s rex in
      let dst = Reg.of_number regf in
      (match rm with
      | Reg r -> Arith (kind, width rex, Reg dst, Reg r)
      | Mem m -> Arith (kind, width rex, Reg dst, Mem m)
      | Imm _ -> raise Bad)
  | 0x81 | 0x83 ->
      let regf, rm = modrm s rex in
      let kind =
        match regf land 7 with
        | 0 -> Add | 1 -> Or | 4 -> And | 5 -> Sub | 6 -> Xor | 7 -> Cmp
        | _ -> raise Bad
      in
      let v = if op = 0x83 then i8 s else i32 s in
      (match rm with
      | Reg d -> Arith (kind, width rex, Reg d, Imm v)
      | Mem m -> Arith (kind, width rex, Mem m, Imm v)
      | Imm _ -> raise Bad)
  | 0x85 ->
      let regf, rm = modrm s rex in
      (match rm with
      | Reg a -> Test (width rex, a, Reg.of_number regf)
      | Mem _ | Imm _ -> raise Bad)
  | 0xc1 ->
      let regf, rm = modrm s rex in
      if not rex.w then raise Bad;
      let kind =
        match regf land 7 with 4 -> `Shl | 5 -> `Shr | 7 -> `Sar | _ -> raise Bad
      in
      let n = byte s in
      (match rm with
      | Reg r -> Shift (kind, r, n)
      | Mem _ | Imm _ -> raise Bad)
  | 0xf7 ->
      let regf, rm = modrm s rex in
      (match (regf land 7, rm) with
      | 0, Reg r ->
          let v = i32 s in
          Test_imm (width rex, r, v)
      | 2, Reg r -> Not (width rex, r)
      | 3, Reg r -> Neg (width rex, r)
      | 4, Reg r -> Mul (width rex, r)
      | 6, Reg r -> Div (width rex, r)
      | 7, Reg r -> Idiv (width rex, r)
      | _ -> raise Bad)
  | 0xff ->
      let regf, rm = modrm s rex in
      (match (regf land 7, rm) with
      | 0, Reg r -> if rex.w then Inc r else raise Bad
      | 1, Reg r -> if rex.w then Dec r else raise Bad
      | 2, (Reg _ as o) | 2, (Mem _ as o) -> Call_ind o
      | 4, (Reg _ as o) | 4, (Mem _ as o) -> Jmp_ind o
      | _ -> raise Bad)
  | 0xe8 ->
      let rel = i32 s in
      Call (To_addr (addr + (s.pos - start_pos) + rel))
  | 0xe9 ->
      let rel = i32 s in
      Jmp (To_addr (addr + (s.pos - start_pos) + rel))
  | 0xeb ->
      let rel = i8 s in
      Jmp_short (To_addr (addr + (s.pos - start_pos) + rel))
  | _ when op >= 0x70 && op <= 0x7f ->
      let rel = i8 s in
      Jcc_short (cond_of_code (op land 0xf), To_addr (addr + (s.pos - start_pos) + rel))
  | 0x87 ->
      let regf, rm = modrm s rex in
      if not rex.w then raise Bad;
      (match rm with
      | Reg a -> Xchg (a, Reg.of_number regf)
      | Mem _ | Imm _ -> raise Bad)
  | 0x99 -> if rex.w then Cqo else Cdq
  | 0x68 -> Push_imm (i32 s)
  | 0x6a -> Push_imm (i8 s)
  | 0xc3 -> Ret
  | 0xc9 -> Leave
  | 0x90 -> if prefix66 then Nop 2 else Nop 1
  | 0xcc -> Int3
  | 0xf4 -> Hlt
  | _ -> raise Bad

let decode ?(pos = 0) ?len ~addr data =
  let limit = match len with None -> String.length data | Some l -> pos + l in
  if pos < 0 || pos >= limit || limit > String.length data then None
  else
    let s = { data; pos; limit } in
    try
      (* Legacy prefixes we accept: 66 (only for NOP forms), F3 (endbr64 /
         rep-ret).  A REX byte must come last, just before the opcode. *)
      let prefix66 = ref false in
      let prefixf3 = ref false in
      let continue = ref true in
      while !continue do
        match peek s with
        | 0x66 ->
            if !prefix66 then raise Bad;
            prefix66 := true;
            ignore (byte s)
        | 0xf3 ->
            if !prefixf3 then raise Bad;
            prefixf3 := true;
            ignore (byte s)
        | _ -> continue := false
      done;
      let rex =
        let b = peek s in
        if b >= 0x40 && b <= 0x4f then begin
          ignore (byte s);
          { w = b land 8 <> 0; r = b land 4 <> 0; x = b land 2 <> 0; b = b land 1 <> 0 }
        end
        else no_rex
      in
      if !prefixf3 && peek s = 0xc3 then begin
        (* rep ret *)
        ignore (byte s);
        Some (Ret, s.pos - pos)
      end
      else begin
        let insn = decode_one s rex !prefix66 !prefixf3 pos addr in
        (* 66-prefixed forms other than NOPs are outside the subset. *)
        (match insn with
        | Nop _ -> ()
        | _ when !prefix66 -> raise Bad
        | _ -> ());
        (match insn with
        | Endbr64 | Ret -> ()
        | _ when !prefixf3 -> raise Bad
        | _ -> ());
        Some (insn, s.pos - pos)
      end
    with Bad -> None
