(** Two-pass assembler: lays out a stream of instructions, labels, alignment
    and raw bytes at a base virtual address, resolving symbolic targets.

    The synthetic compiler assembles a whole [.text] section as one stream
    with program-unique labels, then reads the label map back to build
    symbol tables, FDEs and jump tables. *)

type item =
  | Label of string
  | I of Insn.t
  | Align of int  (** pad with canonical NOPs to the given power-of-two *)
  | Align_with of int * int  (** pad to alignment with the given byte *)
  | Raw of string  (** verbatim bytes (hand-written machine code) *)

type result = {
  base : int;
  code : string;
  labels : (string, int) Hashtbl.t;
}

let pad_amount pos align =
  if align <= 1 then 0
  else
    let rem = pos mod align in
    if rem = 0 then 0 else align - rem

(* Emit [n] bytes of NOP padding as maximal canonical NOPs. *)
let emit_nops buf n =
  let rec go n =
    if n > 0 then begin
      let k = min n 9 in
      Fetch_util.Byte_buf.string buf
        (let b = Fetch_util.Byte_buf.create () in
         Encode.emit b ~addr:0 ~resolve:(fun _ -> 0) (Insn.Nop k);
         Fetch_util.Byte_buf.contents b);
      go (n - k)
    end
  in
  go n

let item_size ~pos = function
  | Label _ -> 0
  | I insn -> Encode.size insn
  | Align a | Align_with (a, _) -> pad_amount pos a
  | Raw s -> String.length s

let assemble ~base items =
  (* Pass 1: assign addresses to labels. *)
  let labels = Hashtbl.create 64 in
  let pos = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label l ->
          if Hashtbl.mem labels l then
            invalid_arg (Printf.sprintf "Asm: duplicate label %s" l);
          Hashtbl.add labels l (base + !pos)
      | I _ | Align _ | Align_with _ | Raw _ -> ());
      pos := !pos + item_size ~pos:!pos item)
    items;
  let resolve = function
    | Insn.To_addr a -> a
    | Insn.To_label l -> (
        match Hashtbl.find_opt labels l with
        | Some a -> a
        | None -> invalid_arg (Printf.sprintf "Asm: undefined label %s" l))
  in
  (* Pass 2: emit. *)
  let buf = Fetch_util.Byte_buf.create ~capacity:(!pos) () in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I insn ->
          Encode.emit buf ~addr:(base + Fetch_util.Byte_buf.length buf) ~resolve insn
      | Align a -> emit_nops buf (pad_amount (Fetch_util.Byte_buf.length buf) a)
      | Align_with (a, byte) ->
          Fetch_util.Byte_buf.fill buf
            ~count:(pad_amount (Fetch_util.Byte_buf.length buf) a)
            ~byte
      | Raw s -> Fetch_util.Byte_buf.string buf s)
    items;
  let code = Fetch_util.Byte_buf.contents buf in
  assert (String.length code = !pos);
  { base; code; labels }

let label_addr r name =
  match Hashtbl.find_opt r.labels name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Asm.label_addr: %s" name)
