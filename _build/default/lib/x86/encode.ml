(** x86-64 instruction encoder.

    [emit buf ~addr ~resolve insn] appends the machine encoding of [insn],
    which is assumed to start at virtual address [addr]; [resolve] maps
    symbolic control-flow targets to absolute addresses (the assembler in
    {!Asm} provides it).  Encodings follow what GCC/Clang emit for the same
    instruction forms, so the decoder and prologue pattern library see
    realistic bytes. *)

open Fetch_util
open Insn

(* REX bit components and ModRM/SIB/displacement tail for an r/m operand
   with register-field value [regf]. *)
type rm_parts = {
  rex_r : bool;
  rex_x : bool;
  rex_b : bool;
  tail : int list;  (** modrm, optional sib, displacement bytes *)
}

let disp8_ok d = d >= -128 && d <= 127

let bytes_of_i32 v =
  [ v land 0xff; (v asr 8) land 0xff; (v asr 16) land 0xff; (v asr 24) land 0xff ]

let modrm md reg rm = ((md land 3) lsl 6) lor ((reg land 7) lsl 3) lor (rm land 7)

let sib scale index base =
  let s = match scale with 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> invalid_arg "sib scale" in
  (s lsl 6) lor ((index land 7) lsl 3) lor (base land 7)

(* reg-direct r/m operand *)
let rm_reg ~regf r =
  {
    rex_r = regf > 7;
    rex_x = false;
    rex_b = Reg.number r > 7;
    tail = [ modrm 3 regf (Reg.number r) ];
  }

let rm_mem ~regf (m : mem) =
  let rex_r = regf > 7 in
  if m.rip_rel then
    { rex_r; rex_x = false; rex_b = false;
      tail = modrm 0 regf 5 :: bytes_of_i32 m.disp }
  else
    match (m.base, m.index) with
    | None, None ->
        (* absolute disp32: SIB with no base, no index *)
        { rex_r; rex_x = false; rex_b = false;
          tail = (modrm 0 regf 4 :: sib 1 4 5 :: bytes_of_i32 m.disp) }
    | None, Some (idx, scale) ->
        if Reg.equal idx Reg.Rsp then invalid_arg "rsp cannot index";
        { rex_r; rex_x = Reg.number idx > 7; rex_b = false;
          tail = (modrm 0 regf 4 :: sib scale (Reg.number idx) 5 :: bytes_of_i32 m.disp) }
    | Some base, index ->
        let bn = Reg.number base in
        let need_sib = index <> None || bn land 7 = 4 in
        let rex_x, sib_bytes =
          if need_sib then
            match index with
            | Some (idx, scale) ->
                if Reg.equal idx Reg.Rsp then invalid_arg "rsp cannot index";
                (Reg.number idx > 7, [ sib scale (Reg.number idx) bn ])
            | None -> (false, [ sib 1 4 bn ])
          else (false, [])
        in
        let rm_field = if need_sib then 4 else bn in
        (* mod 00 with base rbp/r13 means disp32-no-base, so force disp8. *)
        let md, disp_bytes =
          if m.disp = 0 && bn land 7 <> 5 then (0, [])
          else if disp8_ok m.disp then (1, [ m.disp land 0xff ])
          else (2, bytes_of_i32 m.disp)
        in
        { rex_r; rex_x; rex_b = bn > 7;
          tail = (modrm md regf rm_field :: sib_bytes) @ disp_bytes }

(* Emit optional REX, opcode bytes, then the r/m tail. *)
let put buf ~w ~parts opcodes =
  let rex =
    0x40
    lor (if w then 8 else 0)
    lor (if parts.rex_r then 4 else 0)
    lor (if parts.rex_x then 2 else 0)
    lor if parts.rex_b then 1 else 0
  in
  if rex <> 0x40 then Byte_buf.u8 buf rex;
  List.iter (Byte_buf.u8 buf) opcodes;
  List.iter (Byte_buf.u8 buf) parts.tail


let arith_store = function
  | Add -> 0x01 | Or -> 0x09 | And -> 0x21 | Sub -> 0x29 | Xor -> 0x31 | Cmp -> 0x39

let arith_load = function
  | Add -> 0x03 | Or -> 0x0b | And -> 0x23 | Sub -> 0x2b | Xor -> 0x33 | Cmp -> 0x3b

let arith_ext = function
  | Add -> 0 | Or -> 1 | And -> 4 | Sub -> 5 | Xor -> 6 | Cmp -> 7

let is_w = function W64 -> true | W32 -> false

let imm32_ok v = v >= -0x80000000 && v <= 0x7fffffff

let nop_bytes = function
  | 1 -> [ 0x90 ]
  | 2 -> [ 0x66; 0x90 ]
  | 3 -> [ 0x0f; 0x1f; 0x00 ]
  | 4 -> [ 0x0f; 0x1f; 0x40; 0x00 ]
  | 5 -> [ 0x0f; 0x1f; 0x44; 0x00; 0x00 ]
  | 6 -> [ 0x66; 0x0f; 0x1f; 0x44; 0x00; 0x00 ]
  | 7 -> [ 0x0f; 0x1f; 0x80; 0x00; 0x00; 0x00; 0x00 ]
  | 8 -> [ 0x0f; 0x1f; 0x84; 0x00; 0x00; 0x00; 0x00; 0x00 ]
  | 9 -> [ 0x66; 0x0f; 0x1f; 0x84; 0x00; 0x00; 0x00; 0x00; 0x00 ]
  | n -> invalid_arg (Printf.sprintf "Encode: nop%d" n)

(* Relative control transfers: opcode size + 4 for rel32, + 1 for rel8. *)
let emit_rel buf ~addr ~resolve opcodes ~rel8 target =
  List.iter (Byte_buf.u8 buf) opcodes;
  let isize = List.length opcodes + if rel8 then 1 else 4 in
  let dest = resolve target in
  let rel = dest - (addr + isize) in
  if rel8 then begin
    if not (disp8_ok rel) then invalid_arg "Encode: rel8 overflow";
    Byte_buf.u8 buf (rel land 0xff)
  end
  else Byte_buf.i32 buf rel

let rec emit buf ~addr ~resolve (insn : Insn.t) =
  match Insn.rip_sym_of insn with
  | Some tg ->
      (* Resolve a symbolic RIP-relative operand: the displacement depends
         on the instruction's end address, whose size is independent of the
         displacement value (always disp32). *)
      let strip = Insn.map_mem (fun m -> { m with rip_sym = None }) insn in
      let scratch = Byte_buf.create ~capacity:16 () in
      emit scratch ~addr:0 ~resolve:(fun _ -> 0) strip;
      let isize = Byte_buf.length scratch in
      let dest = resolve tg in
      let disp = dest - (addr + isize) in
      emit buf ~addr ~resolve
        (Insn.map_mem
           (fun m -> if m.rip_rel then { m with disp; rip_sym = None } else m)
           insn)
  | None -> (
  match insn with
  | Push r ->
      if Reg.number r > 7 then Byte_buf.u8 buf 0x41;
      Byte_buf.u8 buf (0x50 lor (Reg.number r land 7))
  | Pop r ->
      if Reg.number r > 7 then Byte_buf.u8 buf 0x41;
      Byte_buf.u8 buf (0x58 lor (Reg.number r land 7))
  | Mov (w, Reg d, Reg s) ->
      put buf ~w:(is_w w) ~parts:(rm_reg ~regf:(Reg.number s) d) [ 0x89 ]
  | Mov (w, Reg d, Imm v) ->
      if not (imm32_ok v) then invalid_arg "Encode: mov imm32 overflow";
      if is_w w then begin
        put buf ~w:true ~parts:(rm_reg ~regf:0 d) [ 0xc7 ];
        Byte_buf.i32 buf v
      end
      else begin
        (* B8+r id, the compact 32-bit form *)
        if Reg.number d > 7 then Byte_buf.u8 buf 0x41;
        Byte_buf.u8 buf (0xb8 lor (Reg.number d land 7));
        Byte_buf.i32 buf v
      end
  | Mov (w, Reg d, Mem m) ->
      put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(Reg.number d) m) [ 0x8b ]
  | Mov (w, Mem m, Reg s) ->
      put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(Reg.number s) m) [ 0x89 ]
  | Mov (w, Mem m, Imm v) ->
      if not (imm32_ok v) then invalid_arg "Encode: mov imm32 overflow";
      put buf ~w:(is_w w) ~parts:(rm_mem ~regf:0 m) [ 0xc7 ];
      Byte_buf.i32 buf v
  | Mov _ -> invalid_arg "Encode: unsupported mov form"
  | Movabs (r, v) ->
      let rex = 0x48 lor if Reg.number r > 7 then 1 else 0 in
      Byte_buf.u8 buf rex;
      Byte_buf.u8 buf (0xb8 lor (Reg.number r land 7));
      Byte_buf.i64 buf (Int64.of_int v)
  | Lea (r, m) -> put buf ~w:true ~parts:(rm_mem ~regf:(Reg.number r) m) [ 0x8d ]
  | Arith (op, w, Reg d, Reg s) ->
      put buf ~w:(is_w w) ~parts:(rm_reg ~regf:(Reg.number s) d) [ arith_store op ]
  | Arith (op, w, Reg d, Imm v) ->
      if disp8_ok v then begin
        put buf ~w:(is_w w) ~parts:(rm_reg ~regf:(arith_ext op) d) [ 0x83 ];
        Byte_buf.u8 buf (v land 0xff)
      end
      else begin
        if not (imm32_ok v) then invalid_arg "Encode: arith imm overflow";
        put buf ~w:(is_w w) ~parts:(rm_reg ~regf:(arith_ext op) d) [ 0x81 ];
        Byte_buf.i32 buf v
      end
  | Arith (op, w, Reg d, Mem m) ->
      put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(Reg.number d) m) [ arith_load op ]
  | Arith (op, w, Mem m, Reg s) ->
      put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(Reg.number s) m) [ arith_store op ]
  | Arith (op, w, Mem m, Imm v) ->
      if disp8_ok v then begin
        put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(arith_ext op) m) [ 0x83 ];
        Byte_buf.u8 buf (v land 0xff)
      end
      else begin
        if not (imm32_ok v) then invalid_arg "Encode: arith imm overflow";
        put buf ~w:(is_w w) ~parts:(rm_mem ~regf:(arith_ext op) m) [ 0x81 ];
        Byte_buf.i32 buf v
      end
  | Arith _ -> invalid_arg "Encode: unsupported arith form"
  | Test (w, a, b) ->
      put buf ~w:(is_w w) ~parts:(rm_reg ~regf:(Reg.number b) a) [ 0x85 ]
  | Imul (d, Reg s) ->
      put buf ~w:true ~parts:(rm_reg ~regf:(Reg.number d) s) [ 0x0f; 0xaf ]
  | Imul (d, Mem m) ->
      put buf ~w:true ~parts:(rm_mem ~regf:(Reg.number d) m) [ 0x0f; 0xaf ]
  | Imul _ -> invalid_arg "Encode: unsupported imul form"
  | Shift (k, r, n) ->
      let ext = match k with `Shl -> 4 | `Shr -> 5 | `Sar -> 7 in
      put buf ~w:true ~parts:(rm_reg ~regf:ext r) [ 0xc1 ];
      Byte_buf.u8 buf (n land 0x3f)
  | Neg (w, r) -> put buf ~w:(is_w w) ~parts:(rm_reg ~regf:3 r) [ 0xf7 ]
  | Inc r -> put buf ~w:true ~parts:(rm_reg ~regf:0 r) [ 0xff ]
  | Dec r -> put buf ~w:true ~parts:(rm_reg ~regf:1 r) [ 0xff ]
  | Movsxd (r, m) -> put buf ~w:true ~parts:(rm_mem ~regf:(Reg.number r) m) [ 0x63 ]
  | Movzx (d, sz, src) | Movsx (d, sz, src) ->
      let base = match insn with Movzx _ -> 0xb6 | _ -> 0xbe in
      let opcode = match sz with `B8 -> base | `B16 -> base + 1 in
      let parts =
        match src with
        | Reg r -> rm_reg ~regf:(Reg.number d) r
        | Mem m -> rm_mem ~regf:(Reg.number d) m
        | Imm _ -> invalid_arg "Encode: movzx/movsx imm"
      in
      put buf ~w:true ~parts [ 0x0f; opcode ]
  | Setcc (c, r) ->
      let n = Reg.number r in
      if n >= 8 then Byte_buf.u8 buf 0x41
      else if n >= 4 then Byte_buf.u8 buf 0x40;
      Byte_buf.u8 buf 0x0f;
      Byte_buf.u8 buf (0x90 lor cond_code c);
      Byte_buf.u8 buf (modrm 3 0 (n land 7))
  | Cmov (c, d, src) ->
      let parts =
        match src with
        | Reg r -> rm_reg ~regf:(Reg.number d) r
        | Mem m -> rm_mem ~regf:(Reg.number d) m
        | Imm _ -> invalid_arg "Encode: cmov imm"
      in
      put buf ~w:true ~parts [ 0x0f; 0x40 lor cond_code c ]
  | Div (w, r) -> put buf ~w:(is_w w) ~parts:(rm_reg ~regf:6 r) [ 0xf7 ]
  | Idiv (w, r) -> put buf ~w:(is_w w) ~parts:(rm_reg ~regf:7 r) [ 0xf7 ]
  | Mul (w, r) -> put buf ~w:(is_w w) ~parts:(rm_reg ~regf:4 r) [ 0xf7 ]
  | Cqo ->
      Byte_buf.u8 buf 0x48;
      Byte_buf.u8 buf 0x99
  | Cdq -> Byte_buf.u8 buf 0x99
  | Not (w, r) -> put buf ~w:(is_w w) ~parts:(rm_reg ~regf:2 r) [ 0xf7 ]
  | Xchg (a, b) -> put buf ~w:true ~parts:(rm_reg ~regf:(Reg.number b) a) [ 0x87 ]
  | Push_imm v ->
      if disp8_ok v then begin
        Byte_buf.u8 buf 0x6a;
        Byte_buf.u8 buf (v land 0xff)
      end
      else begin
        if not (imm32_ok v) then invalid_arg "Encode: push imm overflow";
        Byte_buf.u8 buf 0x68;
        Byte_buf.i32 buf v
      end
  | Test_imm (w, r, v) ->
      if not (imm32_ok v) then invalid_arg "Encode: test imm overflow";
      put buf ~w:(is_w w) ~parts:(rm_reg ~regf:0 r) [ 0xf7 ];
      Byte_buf.i32 buf v
  | Call tg -> emit_rel buf ~addr ~resolve [ 0xe8 ] ~rel8:false tg
  | Call_ind (Reg r) -> put buf ~w:false ~parts:(rm_reg ~regf:2 r) [ 0xff ]
  | Call_ind (Mem m) -> put buf ~w:false ~parts:(rm_mem ~regf:2 m) [ 0xff ]
  | Call_ind _ -> invalid_arg "Encode: call imm"
  | Jmp tg -> emit_rel buf ~addr ~resolve [ 0xe9 ] ~rel8:false tg
  | Jmp_short tg -> emit_rel buf ~addr ~resolve [ 0xeb ] ~rel8:true tg
  | Jmp_ind (Reg r) -> put buf ~w:false ~parts:(rm_reg ~regf:4 r) [ 0xff ]
  | Jmp_ind (Mem m) -> put buf ~w:false ~parts:(rm_mem ~regf:4 m) [ 0xff ]
  | Jmp_ind _ -> invalid_arg "Encode: jmp imm"
  | Jcc (c, tg) -> emit_rel buf ~addr ~resolve [ 0x0f; 0x80 lor cond_code c ] ~rel8:false tg
  | Jcc_short (c, tg) -> emit_rel buf ~addr ~resolve [ 0x70 lor cond_code c ] ~rel8:true tg
  | Ret -> Byte_buf.u8 buf 0xc3
  | Leave -> Byte_buf.u8 buf 0xc9
  | Nop n -> List.iter (Byte_buf.u8 buf) (nop_bytes n)
  | Endbr64 -> List.iter (Byte_buf.u8 buf) [ 0xf3; 0x0f; 0x1e; 0xfa ]
  | Ud2 -> List.iter (Byte_buf.u8 buf) [ 0x0f; 0x0b ]
  | Int3 -> Byte_buf.u8 buf 0xcc
  | Hlt -> Byte_buf.u8 buf 0xf4
  | Syscall -> List.iter (Byte_buf.u8 buf) [ 0x0f; 0x05 ]
  | Cpuid -> List.iter (Byte_buf.u8 buf) [ 0x0f; 0xa2 ])

(** Encoded size of [insn].  Sizes do not depend on target resolution, so a
    dummy resolver suffices. *)
let size insn =
  let buf = Byte_buf.create ~capacity:16 () in
  emit buf ~addr:0 ~resolve:(fun _ -> 0) insn;
  Byte_buf.length buf
