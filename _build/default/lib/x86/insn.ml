(** x86-64 instruction AST.

    The subset covers everything the synthetic compiler emits plus the
    encodings real compilers commonly produce for those constructs, so the
    decoder can round-trip generated code and reject arbitrary data with a
    realistic probability.  Operation width is 64 or 32 bits (8/16-bit
    operations are not needed by any analysis in the paper). *)

type width = W32 | W64

(** Control-flow or data target, symbolic until the assembler lays code
    out. *)
type target = To_label of string | To_addr of int

(** Memory operand: [\[base + index*scale + disp\]], or RIP-relative.  A
    RIP-relative operand may carry a symbolic target ([rip_sym]); the
    encoder then computes the displacement from the resolved address. *)
type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** (register, scale in {1,2,4,8}) *)
  disp : int;
  rip_rel : bool;  (** when set, [base]/[index] must be [None] *)
  rip_sym : target option;  (** symbolic RIP-relative destination *)
}

let mem ?base ?index ?(disp = 0) () =
  { base; index; disp; rip_rel = false; rip_sym = None }

let rip_rel disp = { base = None; index = None; disp; rip_rel = true; rip_sym = None }

let rip_sym t = { base = None; index = None; disp = 0; rip_rel = true; rip_sym = Some t }

type operand = Reg of Reg.t | Imm of int | Mem of mem

type cond = E | Ne | L | Le | G | Ge | B | Be | A | Ae | S | Ns | O | No | P | Np

type arith = Add | Sub | And | Or | Xor | Cmp

type t =
  | Push of Reg.t
  | Pop of Reg.t
  | Mov of width * operand * operand  (** dst, src *)
  | Movabs of Reg.t * int  (** 64-bit immediate load *)
  | Lea of Reg.t * mem
  | Arith of arith * width * operand * operand  (** dst, src *)
  | Test of width * Reg.t * Reg.t
  | Imul of Reg.t * operand
  | Shift of [ `Shl | `Shr | `Sar ] * Reg.t * int
  | Neg of width * Reg.t
  | Inc of Reg.t
  | Dec of Reg.t
  | Movsxd of Reg.t * mem  (** sign-extending 32→64 load (jump tables) *)
  | Movzx of Reg.t * [ `B8 | `B16 ] * operand
      (** zero-extending load from an 8/16-bit register or memory *)
  | Movsx of Reg.t * [ `B8 | `B16 ] * operand  (** sign-extending variant *)
  | Setcc of cond * Reg.t  (** write condition flag into the low byte *)
  | Cmov of cond * Reg.t * operand  (** conditional move (64-bit) *)
  | Div of width * Reg.t  (** unsigned divide rdx:rax by the register *)
  | Idiv of width * Reg.t
  | Mul of width * Reg.t
  | Cqo  (** sign-extend rax into rdx:rax (cdq for 32-bit) *)
  | Cdq
  | Not of width * Reg.t
  | Xchg of Reg.t * Reg.t
  | Push_imm of int
  | Test_imm of width * Reg.t * int
  | Call of target
  | Call_ind of operand
  | Jmp of target
  | Jmp_short of target  (** rel8 encoding *)
  | Jmp_ind of operand
  | Jcc of cond * target
  | Jcc_short of cond * target
  | Ret
  | Leave
  | Nop of int  (** canonical multi-byte NOP of the given length, 1–9 *)
  | Endbr64
  | Ud2
  | Int3
  | Hlt
  | Syscall
  | Cpuid

let cond_name = function
  | E -> "e"
  | Ne -> "ne"
  | L -> "l"
  | Le -> "le"
  | G -> "g"
  | Ge -> "ge"
  | B -> "b"
  | Be -> "be"
  | A -> "a"
  | Ae -> "ae"
  | S -> "s"
  | Ns -> "ns"
  | O -> "o"
  | No -> "no"
  | P -> "p"
  | Np -> "np"

(* Condition code (tttn) for 0F 8x / 7x opcodes. *)
let cond_code = function
  | O -> 0x0
  | No -> 0x1
  | B -> 0x2
  | Ae -> 0x3
  | E -> 0x4
  | Ne -> 0x5
  | Be -> 0x6
  | A -> 0x7
  | S -> 0x8
  | Ns -> 0x9
  | P -> 0xa
  | Np -> 0xb
  | L -> 0xc
  | Ge -> 0xd
  | Le -> 0xe
  | G -> 0xf

let cond_of_code = function
  | 0x0 -> O
  | 0x1 -> No
  | 0x2 -> B
  | 0x3 -> Ae
  | 0x4 -> E
  | 0x5 -> Ne
  | 0x6 -> Be
  | 0x7 -> A
  | 0x8 -> S
  | 0x9 -> Ns
  | 0xa -> P
  | 0xb -> Np
  | 0xc -> L
  | 0xd -> Ge
  | 0xe -> Le
  | 0xf -> G
  | _ -> invalid_arg "Insn.cond_of_code"

let arith_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Cmp -> "cmp"

let reg_name w r = match w with W64 -> Reg.name64 r | W32 -> Reg.name32 r

let signed_hex v =
  if v < 0 then Printf.sprintf "-0x%x" (-v) else Printf.sprintf "+0x%x" v

let mem_to_string m =
  if m.rip_rel then Printf.sprintf "[rip%s]" (signed_hex m.disp)
  else
    let buf = Buffer.create 16 in
    Buffer.add_char buf '[';
    (match m.base with
    | Some b -> Buffer.add_string buf (Reg.name64 b)
    | None -> ());
    (match m.index with
    | Some (r, s) ->
        if m.base <> None then Buffer.add_char buf '+';
        Buffer.add_string buf (Printf.sprintf "%s*%d" (Reg.name64 r) s)
    | None -> ());
    if m.disp <> 0 || (m.base = None && m.index = None) then
      Buffer.add_string buf
        (if m.base = None && m.index = None then Printf.sprintf "%#x" m.disp
         else signed_hex m.disp);
    Buffer.add_char buf ']';
    Buffer.contents buf

let operand_to_string w = function
  | Reg r -> reg_name w r
  | Imm i -> Printf.sprintf "%#x" i
  | Mem m -> mem_to_string m

let target_to_string = function
  | To_label l -> l
  | To_addr a -> Printf.sprintf "%#x" a

let to_string t =
  match t with
  | Push r -> "push " ^ Reg.name64 r
  | Pop r -> "pop " ^ Reg.name64 r
  | Mov (w, d, s) ->
      Printf.sprintf "mov %s, %s" (operand_to_string w d) (operand_to_string w s)
  | Movabs (r, i) -> Printf.sprintf "movabs %s, %#x" (Reg.name64 r) i
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (Reg.name64 r) (mem_to_string m)
  | Arith (op, w, d, s) ->
      Printf.sprintf "%s %s, %s" (arith_name op) (operand_to_string w d)
        (operand_to_string w s)
  | Test (w, a, b) -> Printf.sprintf "test %s, %s" (reg_name w a) (reg_name w b)
  | Imul (r, s) -> Printf.sprintf "imul %s, %s" (Reg.name64 r) (operand_to_string W64 s)
  | Shift (k, r, n) ->
      let s = match k with `Shl -> "shl" | `Shr -> "shr" | `Sar -> "sar" in
      Printf.sprintf "%s %s, %d" s (Reg.name64 r) n
  | Neg (w, r) -> "neg " ^ reg_name w r
  | Inc r -> "inc " ^ Reg.name64 r
  | Dec r -> "dec " ^ Reg.name64 r
  | Movsxd (r, m) -> Printf.sprintf "movsxd %s, %s" (Reg.name64 r) (mem_to_string m)
  | Movzx (r, sz, src) ->
      Printf.sprintf "movzx %s, %s%s" (Reg.name64 r)
        (match sz with `B8 -> "byte " | `B16 -> "word ")
        (operand_to_string W64 src)
  | Movsx (r, sz, src) ->
      Printf.sprintf "movsx %s, %s%s" (Reg.name64 r)
        (match sz with `B8 -> "byte " | `B16 -> "word ")
        (operand_to_string W64 src)
  | Setcc (c, r) -> Printf.sprintf "set%s %sb" (cond_name c) (Reg.name64 r)
  | Cmov (c, d, s) ->
      Printf.sprintf "cmov%s %s, %s" (cond_name c) (Reg.name64 d)
        (operand_to_string W64 s)
  | Div (w, r) -> "div " ^ reg_name w r
  | Idiv (w, r) -> "idiv " ^ reg_name w r
  | Mul (w, r) -> "mul " ^ reg_name w r
  | Cqo -> "cqo"
  | Cdq -> "cdq"
  | Not (w, r) -> "not " ^ reg_name w r
  | Xchg (a, b) -> Printf.sprintf "xchg %s, %s" (Reg.name64 a) (Reg.name64 b)
  | Push_imm v -> Printf.sprintf "push %#x" v
  | Test_imm (w, r, v) -> Printf.sprintf "test %s, %#x" (reg_name w r) v
  | Call tg -> "call " ^ target_to_string tg
  | Call_ind o -> "call " ^ operand_to_string W64 o
  | Jmp tg -> "jmp " ^ target_to_string tg
  | Jmp_short tg -> "jmp short " ^ target_to_string tg
  | Jmp_ind o -> "jmp " ^ operand_to_string W64 o
  | Jcc (c, tg) -> Printf.sprintf "j%s %s" (cond_name c) (target_to_string tg)
  | Jcc_short (c, tg) ->
      Printf.sprintf "j%s short %s" (cond_name c) (target_to_string tg)
  | Ret -> "ret"
  | Leave -> "leave"
  | Nop n -> if n = 1 then "nop" else Printf.sprintf "nop%d" n
  | Endbr64 -> "endbr64"
  | Ud2 -> "ud2"
  | Int3 -> "int3"
  | Hlt -> "hlt"
  | Syscall -> "syscall"
  | Cpuid -> "cpuid"

(** Apply [f] to every memory operand of the instruction. *)
let map_mem f t =
  let op = function Mem m -> Mem (f m) | (Reg _ | Imm _) as o -> o in
  match t with
  | Mov (w, d, s) -> Mov (w, op d, op s)
  | Lea (r, m) -> Lea (r, f m)
  | Arith (k, w, d, s) -> Arith (k, w, op d, op s)
  | Imul (r, s) -> Imul (r, op s)
  | Movsxd (r, m) -> Movsxd (r, f m)
  | Movzx (r, sz, o) -> Movzx (r, sz, op o)
  | Movsx (r, sz, o) -> Movsx (r, sz, op o)
  | Cmov (c, d, o) -> Cmov (c, d, op o)
  | Call_ind o -> Call_ind (op o)
  | Jmp_ind o -> Jmp_ind (op o)
  | Push _ | Pop _ | Movabs _ | Test _ | Shift _ | Neg _ | Inc _ | Dec _
  | Setcc _ | Div _ | Idiv _ | Mul _ | Cqo | Cdq | Not _ | Xchg _
  | Push_imm _ | Test_imm _
  | Call _ | Jmp _ | Jmp_short _ | Jcc _ | Jcc_short _ | Ret | Leave | Nop _
  | Endbr64 | Ud2 | Int3 | Hlt | Syscall | Cpuid ->
      t

(** The symbolic RIP-relative target of the instruction, if any (at most
    one memory operand can be RIP-relative). *)
let rip_sym_of t =
  let found = ref None in
  ignore
    (map_mem
       (fun m ->
         (match m.rip_sym with Some tg -> found := Some tg | None -> ());
         m)
       t);
  !found
