(** Per-instruction semantic summaries used by the analyses: control
    flow, stack-pointer effect, and register use/def sets. *)

(** A control-flow destination after decoding: direct targets are
    absolute addresses, indirect ones carry the operand for jump-table
    analysis. *)
type dest = Direct of int | Indirect of Insn.operand

type flow =
  | Fall  (** execution continues at the next instruction only *)
  | Jump of dest
  | Cond of int  (** taken target; also falls through *)
  | Callf of dest
  | Ret
  | Halt  (** ud2 / hlt / int3: execution cannot continue *)

(** Classify a decoded instruction (targets must be [To_addr]; raises
    [Invalid_argument] on unresolved labels). *)
val flow : Insn.t -> flow

(** Effect on [rsp], in bytes ([Some d] means rsp += d); [None] when the
    instruction writes rsp in a way static analysis cannot track without
    more context ([leave], [mov rsp, ...]).  Calls are [Some 0]: the net
    effect the caller observes after the callee returns. *)
val sp_delta : Insn.t -> int option

(** Registers read by the instruction, for the calling-convention check
    of §IV-E.  [push reg] is treated as a save, not a use; reads of [rsp]
    are never reported; [xor r, r] is the zeroing idiom and reads
    nothing. *)
val uses : Insn.t -> Reg.t list

(** Registers fully (re)defined by the instruction (32-bit writes zero
    the upper half, so they count). *)
val defs : Insn.t -> Reg.t list
