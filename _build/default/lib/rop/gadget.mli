(** ROP gadget scanner (the ROPgadget stand-in for the §V-A security
    experiment): sequences of up to [depth] decodable instructions ending
    in a return or an indirect branch, found at every byte offset. *)

type kind = Ret_gadget | Jmp_gadget | Call_gadget

type gadget = {
  addr : int;
  length : int;  (** bytes up to and including the final branch *)
  insns : Fetch_x86.Insn.t list;
  kind : kind;
}

(** The gadget starting exactly at the address, if any (at least two
    instructions, none of them control flow before the final branch). *)
val at : Fetch_analysis.Loaded.t -> depth:int -> int -> gadget option

(** All gadgets with start addresses inside [\[lo, hi)]. *)
val in_range :
  Fetch_analysis.Loaded.t -> depth:int -> lo:int -> hi:int -> gadget list

(** Gadgets reachable from the given block starts: the attack surface a
    trusting CFI policy inherits from false function starts (§V-A). *)
val at_starts :
  Fetch_analysis.Loaded.t -> depth:int -> block_len:int -> int list -> gadget list

(** Number of distinct (address, length) gadgets. *)
val count_unique : gadget list -> int
