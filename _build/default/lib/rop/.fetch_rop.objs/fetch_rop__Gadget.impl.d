lib/rop/gadget.ml: Fetch_analysis Fetch_x86 Insn List Semantics
