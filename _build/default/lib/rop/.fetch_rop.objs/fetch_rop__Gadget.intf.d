lib/rop/gadget.mli: Fetch_analysis Fetch_x86
