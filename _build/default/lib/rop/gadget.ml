(** ROP gadget scanner (the ROPgadget stand-in for the §V-A security
    experiment): sequences of up to [depth] decodable instructions ending
    in a return or an indirect branch, found at every byte offset. *)

open Fetch_x86

type kind = Ret_gadget | Jmp_gadget | Call_gadget

type gadget = {
  addr : int;
  length : int;  (** bytes up to and including the final branch *)
  insns : Insn.t list;
  kind : kind;
}

(* Try to read a gadget starting exactly at [addr]. *)
let at loaded ~depth addr =
  let rec go addr acc n =
    if n > depth then None
    else
      match Fetch_analysis.Loaded.insn_at loaded addr with
      | None -> None
      | Some (insn, len) -> (
          match insn with
          | Insn.Ret -> Some (List.rev (insn :: acc), addr + len, Ret_gadget)
          | Insn.Jmp_ind _ -> Some (List.rev (insn :: acc), addr + len, Jmp_gadget)
          | Insn.Call_ind _ -> Some (List.rev (insn :: acc), addr + len, Call_gadget)
          | _ -> (
              match Semantics.flow insn with
              | Semantics.Fall -> go (addr + len) (insn :: acc) (n + 1)
              | Semantics.Jump _ | Semantics.Cond _ | Semantics.Callf _
              | Semantics.Ret | Semantics.Halt ->
                  None))
  in
  match go addr [] 1 with
  | Some (insns, stop, kind) when List.length insns > 1 ->
      Some { addr; length = stop - addr; insns; kind }
  | Some _ | None -> None

(** All gadgets with start addresses inside [\[lo, hi)]. *)
let in_range loaded ~depth ~lo ~hi =
  let rec scan addr acc =
    if addr >= hi then List.rev acc
    else
      match at loaded ~depth addr with
      | Some g -> scan (addr + 1) (g :: acc)
      | None -> scan (addr + 1) acc
  in
  scan lo []

(** Gadgets reachable from the given block starts: the measure of extra
    attack surface that FDE false positives hand to a CFI policy that
    trusts all "function starts" (§V-A). *)
let at_starts loaded ~depth ~block_len starts =
  List.concat_map
    (fun s -> in_range loaded ~depth ~lo:s ~hi:(s + block_len))
    starts

let count_unique gadgets =
  List.sort_uniq compare (List.map (fun g -> (g.addr, g.length)) gadgets)
  |> List.length
