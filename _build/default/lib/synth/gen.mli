(** Random program generator.

    Produces an {!Ir.program} whose construct mix follows a {!Profile.t}
    and a binary {!spec}.  The spec pins the counts that the paper's
    experiments measure directly: how many assembly functions lack FDEs
    and how each of them is (or is not) referenced, whether the binary
    keeps symbols, and whether it contains hand-broken CFI (Fig. 6b).

    Includes a noreturn-inference + dead-code-elimination pass, as an
    optimizing compiler performs within a translation unit, so no live
    code is ever emitted after a call that provably cannot return. *)

type spec = {
  n_funcs : int;  (** regular compiler-generated functions *)
  n_asm_called : int;  (** asm fns without FDE, reachable by direct call *)
  n_asm_tailonly : int;  (** without FDE, reachable only via one tail call *)
  n_asm_pointer : int;  (** without FDE, referenced from a data pointer *)
  n_asm_code_ptr : int;  (** without FDE, address taken as a code constant *)
  n_asm_unreachable : int;  (** without FDE, never referenced; each drags
                                one equally-unreachable callee along *)
  n_broken_fde : int;  (** Fig. 6b style hand-broken FDEs *)
  cxx : bool;
  strip : bool;
}

val default_spec : spec

(** Generate a program; the same seed (via [rng]) yields the same program
    byte-for-byte. *)
val program : Fetch_util.Prng.t -> Profile.t -> spec -> Ir.program
