(** Final assembly and linking: turn a lowered program into an ELF image
    with [.text], [.rodata], [.data], [.eh_frame] and (optionally)
    symbols, together with the ground-truth manifest. *)

val text_base : int
val rodata_base : int
val data_base : int
val eh_frame_hdr_base : int
val eh_frame_base : int
val except_table_base : int

type built = {
  image : Fetch_elf.Image.t;
  raw : string;  (** the encoded ELF file *)
  truth : Truth.t;
  program : Ir.program;
}

(** Compile, assemble and link a program.  [rng] continues the stream used
    to generate it (data decoys draw from it). *)
val build : profile:Profile.t -> rng:Fetch_util.Prng.t -> Ir.program -> built

(** Generate a program from a spec and build it, deterministically from
    [seed]. *)
val build_random : profile:Profile.t -> seed:int -> Gen.spec -> built
