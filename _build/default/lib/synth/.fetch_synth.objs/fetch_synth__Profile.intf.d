lib/synth/profile.mli:
