lib/synth/link.mli: Fetch_elf Fetch_util Gen Ir Profile Truth
