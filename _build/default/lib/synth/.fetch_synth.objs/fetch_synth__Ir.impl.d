lib/synth/ir.ml: Array Fetch_x86 List
