lib/synth/gen.ml: Array Fetch_util Fetch_x86 Hashtbl Ir List Printf Prng Profile Set String
