lib/synth/gen.mli: Fetch_util Ir Profile
