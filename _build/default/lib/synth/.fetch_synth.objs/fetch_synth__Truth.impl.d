lib/synth/truth.ml: Hashtbl List
