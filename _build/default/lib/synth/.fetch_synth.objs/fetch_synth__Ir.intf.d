lib/synth/ir.mli: Fetch_x86
