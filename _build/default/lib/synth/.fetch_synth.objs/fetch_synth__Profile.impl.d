lib/synth/profile.ml: Printf
