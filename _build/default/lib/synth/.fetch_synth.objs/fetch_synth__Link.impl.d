lib/synth/link.ml: Array Byte_buf Bytes Codegen Fetch_dwarf Fetch_elf Fetch_util Fetch_x86 Gen Hashtbl Int32 Int64 Ir List Prng String Truth
