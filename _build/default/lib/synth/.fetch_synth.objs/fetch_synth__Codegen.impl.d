lib/synth/codegen.ml: Array Asm Byte_buf Bytes Char Fetch_dwarf Fetch_util Fetch_x86 Insn Ir List Option Printf Prng Profile Reg
