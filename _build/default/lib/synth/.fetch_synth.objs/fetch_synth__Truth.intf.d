lib/synth/truth.mli: Hashtbl
