(** Compiler/optimization profiles: the knobs that shape generated code.

    Each profile sets the per-function probabilities of the constructs that
    matter to function detection.  Values are calibrated so that corpus-wide
    statistics track the paper's observations: hot/cold splitting grows with
    optimization (Ofast > O3 > O2 > Os), tail calls appear at all levels but
    more aggressively at O3/Ofast, Os avoids both size-increasing
    transformations, and frame pointers are mostly omitted. *)

type compiler = Synthgcc | Synthllvm

type opt = O2 | O3 | Os | Ofast

let compiler_name = function Synthgcc -> "gcc" | Synthllvm -> "llvm"

let opt_name = function O2 -> "O2" | O3 -> "O3" | Os -> "Os" | Ofast -> "Of"

let all_opts = [ O2; O3; Os; Ofast ]

type t = {
  compiler : compiler;
  opt : opt;
  p_cold_split : float;  (** probability a framed function is split *)
  p_tail_call : float;  (** probability a function ends in a tail call *)
  p_switch : float;  (** probability a function contains a jump table *)
  p_rbp_frame : float;  (** frame-pointer functions (incomplete CFI) *)
  p_frameless : float;
  p_noreturn_call : float;  (** probability a call site targets a noreturn fn *)
  p_entry_jump : float;  (** rotated-loop entries (start with jmp) *)
  p_entry_nops : float;  (** hot-patchable entries (leading nops) *)
  p_indirect_call : float;
  p_reg_pointer_call : float;  (** lea/mov a code address then call reg *)
  pic_tables : bool;  (** PIC-style (offset) jump tables vs absolute *)
  body_scale : float;  (** multiplier on body statement counts *)
  align : int;
  endbr : bool;
  p_orphan : float;
      (** functions never referenced by direct calls (exported-API style):
          trivial for FDE-based detection, invisible to call-graph-only
          tools unless their prologues match *)
  p_text_junk : float;
      (** probability of a junk blob (literal-pool style non-code bytes)
          after a function — the raw material for linear-scan and
          pattern-matching false positives *)
}

let make compiler opt =
  let base =
    {
      compiler;
      opt;
      p_cold_split = 0.0;
      p_tail_call = 0.0;
      p_switch = 0.06;
      p_rbp_frame = 0.08;
      p_frameless = 0.25;
      p_noreturn_call = 0.04;
      p_entry_jump = 0.03;
      p_entry_nops = 0.01;
      p_indirect_call = 0.05;
      p_reg_pointer_call = 0.04;
      pic_tables = (compiler = Synthllvm);
      body_scale = 1.0;
      align = 16;
      endbr = (compiler = Synthgcc);
      p_orphan = 0.12;
      p_text_junk = 0.05;
    }
  in
  match opt with
  | O2 ->
      { base with p_cold_split = 0.015; p_tail_call = 0.06; body_scale = 1.0 }
  | O3 ->
      {
        base with
        p_cold_split = 0.022;
        p_tail_call = 0.08;
        p_switch = 0.07;
        body_scale = 1.25;
      }
  | Os ->
      {
        base with
        p_cold_split = 0.002;
        p_tail_call = 0.10;
        (* -Os prefers tail calls (smaller code) but never splits *)
        p_rbp_frame = 0.05;
        body_scale = 0.7;
        align = 1;
        (* -Os drops function alignment *)
      }
  | Ofast ->
      {
        base with
        p_cold_split = 0.028;
        p_tail_call = 0.09;
        p_switch = 0.07;
        body_scale = 1.3;
      }

let name p = Printf.sprintf "%s-%s" (compiler_name p.compiler) (opt_name p.opt)
