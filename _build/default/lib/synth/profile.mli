(** Compiler/optimization profiles: the knobs that shape generated code.

    Each profile sets the per-function probabilities of the constructs
    that matter to function detection, calibrated so corpus-wide
    statistics track the paper's observations (hot/cold splitting grows
    with optimization, -Os avoids it and drops alignment, etc.). *)

type compiler = Synthgcc | Synthllvm

type opt = O2 | O3 | Os | Ofast

val compiler_name : compiler -> string
val opt_name : opt -> string

(** O2, O3, Os, Ofast — the levels of the paper's corpus (§IV-A). *)
val all_opts : opt list

type t = {
  compiler : compiler;
  opt : opt;
  p_cold_split : float;  (** probability a framed function is split *)
  p_tail_call : float;  (** probability a function ends in a tail call *)
  p_switch : float;  (** probability a statement is a jump-table switch *)
  p_rbp_frame : float;  (** frame-pointer functions (incomplete CFI) *)
  p_frameless : float;
  p_noreturn_call : float;
  p_entry_jump : float;  (** rotated-loop entries (start with jmp) *)
  p_entry_nops : float;  (** hot-patchable entries (leading nops) *)
  p_indirect_call : float;
  p_reg_pointer_call : float;
  pic_tables : bool;  (** PIC-style (offset) jump tables vs absolute *)
  body_scale : float;  (** multiplier on body statement counts *)
  align : int;
  endbr : bool;
  p_orphan : float;
      (** functions never referenced by direct calls (exported-API style) *)
  p_text_junk : float;
      (** probability of a junk blob (literal-pool style) after a function *)
}

val make : compiler -> opt -> t

(** e.g. ["gcc-O2"]. *)
val name : t -> string
