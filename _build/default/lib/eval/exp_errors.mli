(** FDE error experiments: §IV-E (pointer detection), §V-A (quantifying
    FDE-introduced false positives and their ROP attack surface) and §V-C
    (Algorithm 1 evaluation). *)

type tally = {
  mutable bins : int;
  mutable fde_fp : int;
  mutable fde_fp_noncontig : int;
  mutable fde_fp_handwritten : int;
  mutable fde_fp_bins : int;
  mutable rop_gadgets : int;
  mutable xref_added : int;
  mutable xref_fp : int;
  mutable missed_unreachable : int;
  mutable missed_tailonly : int;
  mutable fp_before_fix : int;
  mutable fp_after_fix : int;
  mutable new_fn_from_fix : int;
  mutable full_acc_before : int;
  mutable full_acc_after : int;
  mutable full_cov_before : int;
  mutable full_cov_after : int;
  mutable skipped_incomplete : int;
}

val run : ?scale:float -> unit -> tally
val render : tally -> string
