(** FDE error experiments: §IV-E (pointer detection), §V-A (quantifying
    FDE-introduced false positives and their ROP attack surface) and §V-C
    (Algorithm 1 evaluation). *)

open Fetch_synth
module IS = Set.Make (Int)

type tally = {
  mutable bins : int;
  mutable fde_fp : int;  (** false starts straight from FDE PC Begin *)
  mutable fde_fp_noncontig : int;
  mutable fde_fp_handwritten : int;
  mutable fde_fp_bins : int;
  mutable rop_gadgets : int;  (** gadgets at the FDE false starts *)
  mutable xref_added : int;
  mutable xref_fp : int;
  mutable missed_unreachable : int;
  mutable missed_tailonly : int;
  mutable fp_before_fix : int;
  mutable fp_after_fix : int;
  mutable new_fn_from_fix : int;
  mutable full_acc_before : int;
  mutable full_acc_after : int;
  mutable full_cov_before : int;
  mutable full_cov_after : int;
  mutable skipped_incomplete : int;
}

let tally () =
  {
    bins = 0; fde_fp = 0; fde_fp_noncontig = 0; fde_fp_handwritten = 0;
    fde_fp_bins = 0; rop_gadgets = 0; xref_added = 0; xref_fp = 0;
    missed_unreachable = 0; missed_tailonly = 0; fp_before_fix = 0;
    fp_after_fix = 0; new_fn_from_fix = 0; full_acc_before = 0;
    full_acc_after = 0; full_cov_before = 0; full_cov_after = 0;
    skipped_incomplete = 0;
  }

let run ?(scale = 1.0) () =
  let t = tally () in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      t.bins <- t.bins + 1;
      let truth = bin.built.truth in
      let truth_starts = IS.of_list (Truth.starts truth) in
      let parts = IS.of_list (Truth.part_starts truth) in
      let stripped = Fetch_elf.Image.strip bin.built.image in
      let loaded = Fetch_analysis.Loaded.load stripped in
      (* §V-A: false starts directly from FDEs *)
      let fde_fps =
        List.filter (fun s -> not (IS.mem s truth_starts)) loaded.fde_starts
      in
      if fde_fps <> [] then t.fde_fp_bins <- t.fde_fp_bins + 1;
      t.fde_fp <- t.fde_fp + List.length fde_fps;
      List.iter
        (fun s ->
          if IS.mem s parts then t.fde_fp_noncontig <- t.fde_fp_noncontig + 1
          else t.fde_fp_handwritten <- t.fde_fp_handwritten + 1)
        fde_fps;
      t.rop_gadgets <-
        t.rop_gadgets
        + Fetch_rop.Gadget.count_unique
            (Fetch_rop.Gadget.at_starts loaded ~depth:4 ~block_len:40 fde_fps);
      (* §IV-E: what pointer detection adds on top of safe recursion *)
      let rec_only =
        Fetch_core.Pipeline.run_loaded
          ~config:
            { Fetch_core.Pipeline.default_config with xref = false; fix_fde_errors = false }
          loaded
      in
      let with_xref =
        Fetch_core.Pipeline.run_loaded
          ~config:{ Fetch_core.Pipeline.default_config with fix_fde_errors = false }
          loaded
      in
      let rec_set = IS.of_list rec_only.starts in
      let xref_set = IS.of_list with_xref.starts in
      IS.iter
        (fun s ->
          if not (IS.mem s rec_set) then begin
            t.xref_added <- t.xref_added + 1;
            if not (IS.mem s truth_starts) then t.xref_fp <- t.xref_fp + 1
          end)
        xref_set;
      List.iter
        (fun (f : Truth.fn_truth) ->
          if not (IS.mem f.start xref_set) then
            if f.unreachable then t.missed_unreachable <- t.missed_unreachable + 1
            else if f.tail_only then t.missed_tailonly <- t.missed_tailonly + 1)
        truth.fns;
      (* §V-C: Algorithm 1 before/after *)
      let before = Metrics.score truth with_xref.starts in
      let full = Fetch_core.Pipeline.run_loaded loaded in
      let after = Metrics.score truth full.starts in
      t.fp_before_fix <- t.fp_before_fix + List.length before.fp;
      t.fp_after_fix <- t.fp_after_fix + List.length after.fp;
      (match full.tailcall with
      | Some o -> t.skipped_incomplete <- t.skipped_incomplete + o.skipped_incomplete
      | None -> ());
      t.new_fn_from_fix <-
        t.new_fn_from_fix
        + List.length
            (List.filter (fun a -> not (List.mem a before.fn)) after.fn);
      if Metrics.full_accuracy before then t.full_acc_before <- t.full_acc_before + 1;
      if Metrics.full_accuracy after then t.full_acc_after <- t.full_acc_after + 1;
      if Metrics.full_coverage before then t.full_cov_before <- t.full_cov_before + 1;
      if Metrics.full_coverage after then t.full_cov_after <- t.full_cov_after + 1);
  t

let render (t : tally) =
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  String.concat "\n"
    [
      "SIV-E: function-pointer (xref) detection";
      Printf.sprintf
        "  starts added by pointer validation: %d, of which false: %d  (paper: +154, 0 FPs)"
        t.xref_added t.xref_fp;
      Printf.sprintf
        "  still missed: %d unreachable asm fns, %d tail-call-only fns  (paper: 160 / 254)"
        t.missed_unreachable t.missed_tailonly;
      Printf.sprintf "  per-binary xref reports: %.2f  (paper: 0.31)"
        (float_of_int t.xref_added /. float_of_int (max 1 t.bins));
      "";
      "SV-A: errors introduced by FDEs";
      Printf.sprintf
        "  FDE false starts: %d across %d of %d binaries  (paper: 34,772 across 488 of 1,352)"
        t.fde_fp t.fde_fp_bins t.bins;
      Printf.sprintf
        "  from non-contiguous functions: %d (%.2f%%); from hand-written CFI: %d  (paper: 34,769 vs 3)"
        t.fde_fp_noncontig
        (pct t.fde_fp_noncontig t.fde_fp)
        t.fde_fp_handwritten;
      Printf.sprintf
        "  ROP gadgets reachable at those false starts: %d  (paper: 99,932)"
        t.rop_gadgets;
      "";
      "SV-C: Algorithm 1 (tail-call detection + merging)";
      Printf.sprintf
        "  FDE-introduced FPs: %d -> %d after the fix (%.1f%% removed)  (paper: 34,772 -> 2,659, 92.4%%)"
        t.fp_before_fix t.fp_after_fix
        (pct (t.fp_before_fix - t.fp_after_fix) t.fp_before_fix);
      Printf.sprintf
        "  binaries with full accuracy: %d -> %d  (paper: 864 -> 1,222)"
        t.full_acc_before t.full_acc_after;
      Printf.sprintf
        "  new FNs introduced (merged single-reference tail targets): %d; full coverage %d -> %d  (paper: 161; 1,346 -> 1,334)"
        t.new_fn_from_fix t.full_cov_before t.full_cov_after;
      Printf.sprintf
        "  functions skipped for incomplete CFI heights: %d" t.skipped_incomplete;
      "";
    ]
