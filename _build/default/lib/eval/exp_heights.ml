(** Table IV: coverage and precision of the static stack-height analyses
    (ANGR- and DYNINST-style) against the CFI baseline, at all code
    locations ("Full") and at jump sites only ("Jump").

    Only functions whose CFI passes the §V-B completeness test enter the
    comparison, exactly as the paper does. *)

open Fetch_synth

type style_cells = {
  mutable full : Metrics.pre_rec;
  mutable jump : Metrics.pre_rec;
}

let new_cells () = { full = Metrics.empty_pre_rec; jump = Metrics.empty_pre_rec }

let is_jump_insn insn =
  match Fetch_x86.Semantics.flow insn with
  | Fetch_x86.Semantics.Jump _ | Fetch_x86.Semantics.Cond _ -> true
  | _ -> false

(* Expected heights at true instruction boundaries of one function, from
   the CFI oracle. *)
let expected_heights loaded (truth_fn : Truth.fn_truth) =
  let oracle = loaded.Fetch_analysis.Loaded.oracle in
  List.concat_map
    (fun (lo, size) ->
      let rec walk addr acc =
        if addr >= lo + size then List.rev acc
        else
          match Fetch_analysis.Loaded.insn_at loaded addr with
          | Some (insn, len) -> (
              match Fetch_dwarf.Height_oracle.height_at oracle addr with
              | Some h -> walk (addr + len) ((addr, h, is_jump_insn insn) :: acc)
              | None -> walk (addr + len) acc)
          | None -> List.rev acc
      in
      walk lo [])
    truth_fn.parts

let run ?(scale = 1.0) () =
  let table : (string * Profile.opt, style_cells) Hashtbl.t = Hashtbl.create 16 in
  let cells name opt =
    match Hashtbl.find_opt table (name, opt) with
    | Some c -> c
    | None ->
        let c = new_cells () in
        Hashtbl.replace table (name, opt) c;
        c
  in
  let styles =
    [
      ("ANGR", Fetch_analysis.Stack_height.angr_style);
      ("DYNINST", Fetch_analysis.Stack_height.dyninst_style);
    ]
  in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      let stripped = Fetch_elf.Image.strip bin.built.image in
      let loaded = Fetch_analysis.Loaded.load stripped in
      List.iter
        (fun (f : Truth.fn_truth) ->
          if
            f.has_fde
            && Fetch_dwarf.Height_oracle.complete_at loaded.oracle f.start
          then begin
            let expected = expected_heights loaded f in
            if expected <> [] then
              List.iter
                (fun (sname, style) ->
                  let heights =
                    Fetch_analysis.Stack_height.analyze loaded ~style f.start
                  in
                  let c = cells sname bin.profile.opt in
                  let score jump_only =
                    List.fold_left
                      (fun acc (addr, h, is_jump) ->
                        if jump_only && not is_jump then acc
                        else
                          let reported, correct =
                            match Hashtbl.find_opt heights addr with
                            | Some h' -> (1, if h' = h then 1 else 0)
                            | None -> (0, 0)
                          in
                          Metrics.add_pre_rec acc
                            { Metrics.reported; correct; expected = 1 })
                      Metrics.empty_pre_rec expected
                  in
                  c.full <- Metrics.add_pre_rec c.full (score false);
                  c.jump <- Metrics.add_pre_rec c.jump (score true))
                styles
          end)
        bin.built.truth.fns);
  table

let render table =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table IV: static stack-height analyses vs the CFI baseline (Pre / Rec %)\n";
  let header =
    [ "OPT"; "ANGR Full Pre"; "Rec"; "Jump Pre"; "Rec";
      "DYNINST Full Pre"; "Rec"; "Jump Pre"; "Rec" ]
  in
  let fmt v = Printf.sprintf "%.2f" v in
  let row opt =
    Profile.opt_name opt
    :: List.concat_map
         (fun name ->
           match Hashtbl.find_opt table (name, opt) with
           | Some c ->
               [
                 fmt (Metrics.precision c.full); fmt (Metrics.recall c.full);
                 fmt (Metrics.precision c.jump); fmt (Metrics.recall c.jump);
               ]
           | None -> [ "-"; "-"; "-"; "-" ])
         [ "ANGR"; "DYNINST" ]
  in
  Buffer.add_string buf
    (Fetch_util.Text_table.render ~header (List.map row Profile.all_opts));
  Buffer.add_string buf
    "(paper averages: ANGR Full 94.07/97.71, Jump 98.72/96.40;\n\
    \ DYNINST Full 94.81/98.27, Jump 98.67/99.35 — static analyses are\n\
    \ both incomplete and imprecise relative to CFI, and jump-site-only\n\
    \ precision is higher than full-location precision)\n";
  Buffer.contents buf
