(** Table IV: coverage and precision of the static stack-height analyses
    (ANGR- and DYNINST-style) against the CFI baseline, at all code
    locations ("Full") and at jump sites only ("Jump").  Only functions
    whose CFI passes the §V-B completeness test enter the comparison. *)

open Fetch_synth

type style_cells = {
  mutable full : Metrics.pre_rec;
  mutable jump : Metrics.pre_rec;
}

(** Oracle heights at every true instruction boundary of one function:
    (address, height, is-jump-site). *)
val expected_heights :
  Fetch_analysis.Loaded.t -> Truth.fn_truth -> (int * int * bool) list

val run : ?scale:float -> unit -> (string * Profile.opt, style_cells) Hashtbl.t
val render : (string * Profile.opt, style_cells) Hashtbl.t -> string
