(** Strategy-stack experiments: Q2, Q3 and Figure 5 — how many binaries
    each combination of FDEs + safe/unsafe approaches detects with full
    coverage and full accuracy. *)

open Fetch_baselines

type strategy = {
  sname : string;
  run : Fetch_analysis.Loaded.t -> int list;
}

let fde_only =
  { sname = "FDE"; run = (fun l -> l.Fetch_analysis.Loaded.fde_starts) }

let ghidra_stacks =
  [
    fde_only;
    {
      sname = "FDE+Rec+CFR";
      run =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = true; thunks = true; fsig = false; tcall = false };
    };
    {
      sname = "FDE+Rec";
      run =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = false; thunks = true; fsig = false; tcall = false };
    };
    {
      sname = "FDE+Rec+Fsig";
      run =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = false; thunks = true; fsig = true; tcall = false };
    };
    {
      sname = "FDE+Rec+Fsig+Tcall";
      run =
        Ghidra_model.detect
          ~config:{ recursive = true; cfr = false; thunks = true; fsig = true; tcall = true };
    };
  ]

let angr_stacks =
  [
    fde_only;
    {
      sname = "FDE+Rec+Fmerg";
      run =
        Angr_model.detect
          ~config:
            { recursive = true; merge = true; alignment = true; fsig = false;
              tcall = false; scan = false };
    };
    {
      sname = "FDE+Rec";
      run =
        Angr_model.detect
          ~config:
            { recursive = true; merge = false; alignment = true; fsig = false;
              tcall = false; scan = false };
    };
    {
      sname = "FDE+Rec+Fsig";
      run =
        Angr_model.detect
          ~config:
            { recursive = true; merge = false; alignment = true; fsig = true;
              tcall = false; scan = false };
    };
    {
      sname = "FDE+Rec+Fsig+Tcall";
      run =
        Angr_model.detect
          ~config:
            { recursive = true; merge = false; alignment = true; fsig = true;
              tcall = true; scan = false };
    };
    {
      sname = "FDE+Rec+Fsig+Tcall+Scan";
      run =
        Angr_model.detect
          ~config:
            { recursive = true; merge = false; alignment = true; fsig = true;
              tcall = true; scan = true };
    };
  ]

let fetch_pipeline ~xref ~fix l =
  (Fetch_core.Pipeline.run_loaded
     ~config:
       { Fetch_core.Pipeline.default_config with xref; fix_fde_errors = fix }
     l)
    .Fetch_core.Pipeline.starts

let fetch_stacks =
  [
    fde_only;
    { sname = "FDE+Rec (safe)"; run = fetch_pipeline ~xref:false ~fix:false };
    { sname = "FDE+Rec+Xref"; run = fetch_pipeline ~xref:true ~fix:false };
    { sname = "FDE+Rec+Xref+Fix (FETCH)"; run = fetch_pipeline ~xref:true ~fix:true };
  ]

type stack_result = {
  strategy : string;
  totals : Metrics.totals;
}

(** Run all strategy stacks over the (stripped) self-built corpus. *)
let run ?(scale = 1.0) () =
  let groups =
    [ ("GHIDRA", ghidra_stacks); ("ANGR", angr_stacks); ("FETCH", fetch_stacks) ]
  in
  let results =
    List.map
      (fun (g, stacks) ->
        (g, List.map (fun s -> { strategy = s.sname; totals = Metrics.totals () }) stacks))
      groups
  in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      let stripped = Fetch_elf.Image.strip bin.built.image in
      let loaded = Fetch_analysis.Loaded.load stripped in
      List.iter2
        (fun (_, stacks) (_, rs) ->
          List.iter2
            (fun s r ->
              let detected = s.run loaded in
              Metrics.add r.totals (Metrics.score bin.built.truth detected))
            stacks rs)
        groups results);
  results

let render results =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 5 / Q2 / Q3: binaries with full coverage and full accuracy per strategy stack\n";
  List.iter
    (fun (group, rs) ->
      Buffer.add_string buf (Printf.sprintf "\n  (%s)\n" group);
      let rows =
        List.map
          (fun r ->
            [
              r.strategy;
              string_of_int r.totals.Metrics.full_cov;
              string_of_int r.totals.Metrics.full_acc;
              string_of_int r.totals.Metrics.fp_total;
              string_of_int r.totals.Metrics.fn_total;
            ])
          rs
      in
      Buffer.add_string buf
        (Fetch_util.Text_table.render
           ~header:[ "strategy"; "full-cov#"; "full-acc#"; "FP"; "FN" ]
           rows))
    results;
  Buffer.add_string buf
    "\nPaper shape: safe Rec closes nearly all FDE gaps with no new FPs;\n\
     CFR lowers coverage; Fmerg lowers coverage; Fsig/Tcall/Scan add FPs\n\
     out of proportion to the handful of starts they find; the FETCH\n\
     stack alone reaches both near-full coverage and near-full accuracy.\n";
  Buffer.contents buf
