(** Table III (FP/FN per tool per optimization level) and Table V (mean
    per-binary analysis time) over the stripped self-built corpus. *)

open Fetch_synth

type cell = {
  mutable fp : int;
  mutable fn : int;
  mutable bins : int;
  mutable seconds : float;
}

val run : ?scale:float -> unit -> (string * Profile.opt, cell) Hashtbl.t
val render : (string * Profile.opt, cell) Hashtbl.t -> string
