(** Dataset experiments: Table I (wild binaries), Table II (self-built
    corpus) and Q1 (§IV-B, FDE coverage vs symbols and vs ground truth). *)

(** Render Table I over the wild corpus. *)
val table1 : unit -> string

(** Render Table II and the Q1 summary over the self-built corpus. *)
val table2_q1 : ?scale:float -> unit -> string
