(** §VII-B generality study: repackage a slice of the corpus as x64 PE
    binaries and measure the exception directory's function coverage (the
    paper's preliminary "at least 70%"). *)

type tally = {
  mutable bins : int;
  mutable fns : int;
  mutable covered : int;
  mutable leaf_misses : int;
  mutable other_misses : int;
  mutable multi_part_records : int;
}

val run : ?scale:float -> unit -> tally
val render : tally -> string
