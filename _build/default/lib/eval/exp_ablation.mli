(** Ablation of FETCH's §V-B design choice: drive Algorithm 1 with the CFI
    height oracle (the paper) vs ANGR/DYNINST-style static stack-height
    analyses, and count false positives, false negatives and harmful
    merges (true multi-reference functions deleted). *)

type variant = {
  vname : string;
  config : Fetch_core.Pipeline.config;
}

val variants : variant list

type cell = {
  mutable fp : int;
  mutable fn : int;
  mutable harmful_merges : int;
  mutable tail_calls : int;
}

val run : ?scale:float -> unit -> (variant * cell) list
val render : (variant * cell) list -> string
