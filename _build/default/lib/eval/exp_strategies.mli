(** Strategy-stack experiments: Q2, Q3 and Figure 5 — how many binaries
    each combination of FDEs + safe/unsafe approaches detects with full
    coverage and full accuracy. *)

type strategy = {
  sname : string;
  run : Fetch_analysis.Loaded.t -> int list;
}

(** Figure 5a stacks: FDE; +Rec+CFR; +Rec; +Fsig; +Tcall. *)
val ghidra_stacks : strategy list

(** Figure 5b stacks: FDE; +Rec+Fmerg; +Rec; +Fsig; +Tcall; +Scan. *)
val angr_stacks : strategy list

(** Figure 5c stacks: FDE; +Rec (safe); +Xref; +Fix (full FETCH). *)
val fetch_stacks : strategy list

type stack_result = {
  strategy : string;
  totals : Metrics.totals;
}

val run : ?scale:float -> unit -> (string * stack_result list) list
val render : (string * stack_result list) list -> string
